// Tests for the public batch-analysis and differential-fuzzing API.
package repro_test

import (
	"context"
	"testing"

	"repro"
)

// TestCheckAll drives the public batch API over the embedded case studies
// and checks the aggregate counts match the paper's matrix.
func TestCheckAll(t *testing.T) {
	var jobs []repro.BatchJob
	for _, p := range repro.CaseStudies() {
		jobs = append(jobs,
			repro.BatchJob{Name: p.FileName(repro.Buggy), Source: p.Source(repro.Buggy), Lat: p.Lattice()},
			repro.BatchJob{Name: p.FileName(repro.Fixed), Source: p.Source(repro.Fixed), Lat: p.Lattice()},
		)
	}
	sum, err := repro.CheckAll(context.Background(), jobs, repro.BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Parsed != len(jobs) {
		t.Errorf("parsed %d/%d jobs", sum.Parsed, len(jobs))
	}
	if sum.BaseAccepted != len(jobs) {
		t.Errorf("baseline accepted %d/%d jobs (buggy variants are base-well-typed)", sum.BaseAccepted, len(jobs))
	}
	if want := len(jobs) / 2; sum.IFCAccepted != want {
		t.Errorf("IFC accepted %d jobs, want exactly the %d fixed variants", sum.IFCAccepted, want)
	}
}

// TestDiffFuzzPublicAPI runs a small campaign through the repro facade.
func TestDiffFuzzPublicAPI(t *testing.T) {
	rep, err := repro.DiffFuzz(context.Background(), repro.FuzzConfig{N: 50, Seed: 3, NITrials: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("defects found:\n%s", repro.FormatFuzzReport(rep))
	}
}

// TestPrintProgramRoundtrips checks the public printer parses back.
func TestPrintProgramRoundtrips(t *testing.T) {
	p, _ := repro.CaseStudyByName("Cache")
	prog := repro.MustParse("cache.p4", p.Source(repro.Fixed))
	printed := repro.PrintProgram(prog)
	if _, err := repro.Parse("cache.p4", printed); err != nil {
		t.Fatalf("printed program does not reparse: %v\n%s", err, printed)
	}
}
