// Tests for the public streaming-campaign and minimization API.
package repro_test

import (
	"context"
	"os"
	"strings"
	"testing"

	"repro"
	"repro/internal/gen"
)

// TestCampaignPublicAPI runs a small persistent campaign through the
// facade and resumes it, exercising the whole public surface at once.
func TestCampaignPublicAPI(t *testing.T) {
	dir := t.TempDir()
	cfg := repro.CampaignConfig{
		N:         50,
		Seed:      21,
		Gen:       gen.Config{MaxDepth: 2, MaxStmts: 3, NumFields: 2, WithActions: true},
		NITrials:  2,
		CorpusDir: dir,
		Minimize:  true,
	}
	rep, err := repro.Campaign(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("campaign found defects:\n%s", repro.FormatCampaignReport(rep))
	}
	if rep.Analyzed != 50 || rep.NextIndex != 50 {
		t.Errorf("analyzed %d programs, cursor %d; want 50, 50", rep.Analyzed, rep.NextIndex)
	}
	out := repro.FormatCampaignReport(rep)
	for _, want := range []string{"fuzz campaign", "verdict", "findings:", "PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	cfg.Resume = true
	rep2, err := repro.Campaign(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resumed Campaign: %v", err)
	}
	if rep2.FirstIndex != 50 {
		t.Errorf("resume started at %d, want 50", rep2.FirstIndex)
	}

	// The corpus the two runs left behind replays clean through the facade,
	// and a mutation-enabled continuation draws on it as a seed pool.
	rr, err := repro.Replay(context.Background(), repro.ReplayConfig{CorpusDir: dir})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !rr.OK() || rr.Total == 0 {
		t.Fatalf("corpus replay: total=%d\n%s", rr.Total, repro.FormatReplayReport(rr))
	}
	if !strings.Contains(repro.FormatReplayReport(rr), "PASS") {
		t.Error("clean replay report does not say PASS")
	}
	cfg.Resume = false
	cfg.Mutate = true
	rep3, err := repro.Campaign(context.Background(), cfg)
	if err != nil {
		t.Fatalf("mutation Campaign: %v", err)
	}
	if rep3.SeedPoolSize == 0 || rep3.MutantJobs == 0 {
		t.Errorf("mutation campaign: pool %d, mutants %d; want both > 0", rep3.SeedPoolSize, rep3.MutantJobs)
	}
}

// TestTriageAndRetirePublicAPI drives the triage facade over a freshly
// persisted corpus, then retires an injected "fixed" finding through it.
func TestTriageAndRetirePublicAPI(t *testing.T) {
	dir := t.TempDir()
	rep, err := repro.Campaign(context.Background(), repro.CampaignConfig{
		N:        60,
		Seed:     42,
		Gen:      gen.Config{MaxDepth: 2, MaxStmts: 3, NumFields: 2, WithActions: true},
		NITrials: 2, NITrialsMax: 8,
		CorpusDir: dir,
		Minimize:  true,
	})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if rep.NewFindings == 0 {
		t.Fatal("campaign persisted nothing to triage")
	}

	trep, err := repro.Triage(repro.TriageConfig{CorpusDir: dir})
	if err != nil {
		t.Fatalf("Triage: %v", err)
	}
	if !trep.OK() || trep.Total != rep.NewFindings || len(trep.Clusters) == 0 {
		t.Fatalf("triage: ok=%v total=%d clusters=%d, campaign persisted %d",
			trep.OK(), trep.Total, len(trep.Clusters), rep.NewFindings)
	}
	out := repro.FormatTriageReport(trep)
	for _, want := range []string{"triage:", "size", "shape", "CLUSTER", "PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("triage report missing %q:\n%s", want, out)
		}
	}
	if raw, err := repro.MarshalTriageReport(trep); err != nil || !strings.Contains(string(raw), "\"clusters\"") {
		t.Errorf("MarshalTriageReport: %v", err)
	}

	// Fingerprints from the facade match the clusters' notion of shape.
	prog, err := repro.Parse("x.p4", trep.Clusters[0].Exemplar)
	if err != nil {
		t.Fatal(err)
	}
	if fp := repro.FingerprintProgram(prog); fp != trep.Clusters[0].Fingerprint {
		t.Errorf("FingerprintProgram = %s, cluster says %s", fp, trep.Clusters[0].Fingerprint)
	}

	// "Fix" one finding and retire it through the facade.
	victim := rep.Findings[0]
	fixed := `header data_t { <bit<8>, low> f; }
struct headers { data_t d; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply { hdr.d.f = 8w7; }
}
`
	if err := os.WriteFile(victim.Path, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	promote := t.TempDir()
	rrep, err := repro.Retire(context.Background(), repro.RetireConfig{CorpusDir: dir, PromoteDir: promote})
	if err != nil {
		t.Fatalf("Retire: %v", err)
	}
	if !rrep.OK() || len(rrep.Retired) != 1 || rrep.Retired[0].Path != victim.Path {
		t.Fatalf("retire: ok=%v retired=%v", rrep.OK(), rrep.Retired)
	}
	if !strings.Contains(repro.FormatRetireReport(rrep), "RETIRED") {
		t.Error("retire report missing RETIRED entry")
	}
	if rr, err := repro.Replay(context.Background(), repro.ReplayConfig{CorpusDir: promote}); err != nil || !rr.OK() {
		t.Errorf("retired corpus does not replay clean: %v", err)
	}
}

// TestMutatePublicAPI mutates a case study and checks the contract: the
// mutant parses, base-checks, and differs from its parent's print.
func TestMutatePublicAPI(t *testing.T) {
	cs, _ := repro.CaseStudyByName("D2R")
	src := cs.Source(repro.Fixed)
	mut, err := repro.Mutate(1, "d2r.p4", src, repro.MutateConfig{})
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	prog, err := repro.Parse("d2r-mut.p4", mut)
	if err != nil {
		t.Fatalf("mutant does not parse: %v\n%s", err, mut)
	}
	if !repro.CheckBase(prog).OK {
		t.Fatalf("mutant fails the baseline checker:\n%s", mut)
	}
	parent, _ := repro.Parse("d2r.p4", src)
	if mut == repro.PrintProgram(parent) {
		t.Fatal("identity mutation through the facade")
	}
}

// TestCheckStreamPublicAPI streams a couple of jobs through the facade.
func TestCheckStreamPublicAPI(t *testing.T) {
	jobs := make(chan repro.BatchJob, 2)
	for i, p := range repro.CaseStudies()[:2] {
		jobs <- repro.BatchJob{Name: p.FileName(repro.Fixed), Source: p.Source(repro.Fixed), Lat: p.Lattice(), Seq: int64(i)}
	}
	close(jobs)
	got := 0
	for r := range repro.CheckStream(context.Background(), jobs, repro.BatchOptions{Workers: 2}) {
		got++
		if !r.ParseOK() {
			t.Errorf("%s failed to parse: %v", r.Job.Name, r.ParseErr)
		}
	}
	if got != 2 {
		t.Errorf("streamed %d results, want 2", got)
	}
}

// TestMinimizeProgramPublicAPI shrinks a padded leak down to its core.
func TestMinimizeProgramPublicAPI(t *testing.T) {
	src := `header data_t {
    <bit<8>, low> lo;
    <bit<8>, high> hi;
    <bit<8>, low> pad0;
    <bit<8>, low> pad1;
}
struct headers { data_t d; }
control Leak(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.pad0 = hdr.d.pad1 + 8w1;
        hdr.d.lo = hdr.d.hi;
        hdr.d.pad1 = 8w3;
    }
}
`
	// "Still rejected" must mean rejected *for a flow reason*: without the
	// base-well-typedness conjunct the minimizer happily deletes the header
	// declaration and keeps a program that is "rejected" for being
	// unresolvable.
	rejected := func(cand string) bool {
		prog, err := repro.Parse("cand.p4", cand)
		if err != nil {
			return false
		}
		return repro.CheckBase(prog).OK && !repro.Check(prog, repro.TwoPoint()).OK
	}
	min, err := repro.MinimizeProgram("leak.p4", src, rejected)
	if err != nil {
		t.Fatalf("MinimizeProgram: %v", err)
	}
	if len(min) >= len(src) {
		t.Errorf("no reduction: %d bytes from %d", len(min), len(src))
	}
	if !rejected(min) {
		t.Errorf("minimized program no longer rejected:\n%s", min)
	}
	if !strings.Contains(min, "hdr.d.lo = hdr.d.hi") {
		t.Errorf("core leak lost in minimization:\n%s", min)
	}
}
