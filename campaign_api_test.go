// Tests for the public streaming-campaign and minimization API.
package repro_test

import (
	"context"
	"strings"
	"testing"

	"repro"
	"repro/internal/gen"
)

// TestCampaignPublicAPI runs a small persistent campaign through the
// facade and resumes it, exercising the whole public surface at once.
func TestCampaignPublicAPI(t *testing.T) {
	dir := t.TempDir()
	cfg := repro.CampaignConfig{
		N:         50,
		Seed:      21,
		Gen:       gen.Config{MaxDepth: 2, MaxStmts: 3, NumFields: 2, WithActions: true},
		NITrials:  2,
		CorpusDir: dir,
		Minimize:  true,
	}
	rep, err := repro.Campaign(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("campaign found defects:\n%s", repro.FormatCampaignReport(rep))
	}
	if rep.Analyzed != 50 || rep.NextIndex != 50 {
		t.Errorf("analyzed %d programs, cursor %d; want 50, 50", rep.Analyzed, rep.NextIndex)
	}
	out := repro.FormatCampaignReport(rep)
	for _, want := range []string{"fuzz campaign", "verdict", "findings:", "PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	cfg.Resume = true
	rep2, err := repro.Campaign(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resumed Campaign: %v", err)
	}
	if rep2.FirstIndex != 50 {
		t.Errorf("resume started at %d, want 50", rep2.FirstIndex)
	}
}

// TestCheckStreamPublicAPI streams a couple of jobs through the facade.
func TestCheckStreamPublicAPI(t *testing.T) {
	jobs := make(chan repro.BatchJob, 2)
	for i, p := range repro.CaseStudies()[:2] {
		jobs <- repro.BatchJob{Name: p.FileName(repro.Fixed), Source: p.Source(repro.Fixed), Lat: p.Lattice(), Seq: int64(i)}
	}
	close(jobs)
	got := 0
	for r := range repro.CheckStream(context.Background(), jobs, repro.BatchOptions{Workers: 2}) {
		got++
		if !r.ParseOK() {
			t.Errorf("%s failed to parse: %v", r.Job.Name, r.ParseErr)
		}
	}
	if got != 2 {
		t.Errorf("streamed %d results, want 2", got)
	}
}

// TestMinimizeProgramPublicAPI shrinks a padded leak down to its core.
func TestMinimizeProgramPublicAPI(t *testing.T) {
	src := `header data_t {
    <bit<8>, low> lo;
    <bit<8>, high> hi;
    <bit<8>, low> pad0;
    <bit<8>, low> pad1;
}
struct headers { data_t d; }
control Leak(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.pad0 = hdr.d.pad1 + 8w1;
        hdr.d.lo = hdr.d.hi;
        hdr.d.pad1 = 8w3;
    }
}
`
	// "Still rejected" must mean rejected *for a flow reason*: without the
	// base-well-typedness conjunct the minimizer happily deletes the header
	// declaration and keeps a program that is "rejected" for being
	// unresolvable.
	rejected := func(cand string) bool {
		prog, err := repro.Parse("cand.p4", cand)
		if err != nil {
			return false
		}
		return repro.CheckBase(prog).OK && !repro.Check(prog, repro.TwoPoint()).OK
	}
	min, err := repro.MinimizeProgram("leak.p4", src, rejected)
	if err != nil {
		t.Fatalf("MinimizeProgram: %v", err)
	}
	if len(min) >= len(src) {
		t.Errorf("no reduction: %d bytes from %d", len(min), len(src))
	}
	if !rejected(min) {
		t.Errorf("minimized program no longer rejected:\n%s", min)
	}
	if !strings.Contains(min, "hdr.d.lo = hdr.d.hi") {
		t.Errorf("core leak lost in minimization:\n%s", min)
	}
}
