// Tests for the Session-shared corpus handle and Session.Compact: one
// Open per session lifetime, caches that survive across operations, and
// compaction that loses no finding class.
package repro_test

import (
	"context"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/ast"
	"repro/internal/corpus"
	"repro/internal/metrics"
)

// TestSessionSharesOneCorpusHandle: a full Campaign → Triage → Retire →
// Compact pass over one Session opens the corpus directory exactly once,
// and the handle's parse cache survives across the operations — the same
// entry returns the same *ast.Program pointer before and after.
func TestSessionSharesOneCorpusHandle(t *testing.T) {
	dir := t.TempDir()
	s, err := repro.NewSession(
		repro.WithCorpus(dir),
		repro.WithGenConfig(smallSessionGen()),
		repro.WithSeed(42),
		repro.WithNIBudget(2, 8),
		// Minimized at persistence time, so Compact below mostly keeps the
		// entries — the pointer-equality check needs survivors.
		repro.WithMinimize(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	opensBefore := corpus.Opens()
	rep, err := s.Campaign(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NewFindings == 0 {
		t.Fatal("campaign persisted nothing; the sharing test needs entries")
	}

	// Prime the parse cache through the session handle.
	c, err := s.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]*ast.Program{}
	for e, err := range c.Entries() {
		if err != nil {
			continue
		}
		if p, err := e.Program(); err == nil {
			progs[e.Meta.Key] = p
		}
	}
	if len(progs) == 0 {
		t.Fatal("no parseable entries")
	}

	if _, err := s.Triage(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Retire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}

	if delta := corpus.Opens() - opensBefore; delta != 1 {
		t.Errorf("Campaign→Triage→Retire→Compact opened the corpus %d times, want exactly 1", delta)
	}

	c2, err := s.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Fatal("Session.Corpus returned a different handle")
	}
	shared := 0
	for e, err := range c2.Entries() {
		if err != nil {
			continue
		}
		before, ok := progs[e.Meta.Key]
		if !ok {
			continue // rewritten by Compact under a new key
		}
		after, err := e.Program()
		if err != nil {
			t.Fatalf("%s: cached entry stopped parsing: %v", e.Name, err)
		}
		if after != before {
			t.Errorf("%s: Program() re-parsed across operations (distinct pointers)", e.Name)
		}
		shared++
	}
	if shared == 0 {
		t.Error("no entry survived with its cached parse; nothing was shared")
	}
}

// TestSessionCompactCollapsesOntoExistingKeys: two findings whose
// minimized forms coincide are one defect — compaction removes the
// padded one, the dedup-key set after is a subset of before, the
// survivor carries the removed pair's class, and the corpus replays
// clean on both sides of the compaction.
func TestSessionCompactCollapsesOntoExistingKeys(t *testing.T) {
	// A dead-store precision finding in canonical (printer) form: the
	// rejection is conservative by construction, so its class is stable
	// under any NI budget — and stable under statement deletion of the
	// padding, which is what lets the shrinker land exactly on it.
	minimal := repro.PrintProgram(repro.MustParse("min.p4", `header data_t {
    <bit<8>, low> lo0;
    <bit<8>, high> hi0;
}
struct headers { data_t d; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.lo0 = hdr.d.hi0;
        hdr.d.lo0 = 8w0;
    }
}
`))
	padded := repro.PrintProgram(repro.MustParse("pad.p4", `header data_t {
    <bit<8>, low> lo0;
    <bit<8>, high> hi0;
}
struct headers { data_t d; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.lo0 = hdr.d.hi0;
        hdr.d.lo0 = 8w0;
        hdr.d.lo0 = 8w0;
    }
}
`))
	dir := t.TempDir()
	seed, err := repro.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range []string{minimal, padded} {
		m := corpus.Meta{
			Class: "rejected-clean", Key: corpus.DedupKey("rejected-clean", src),
			Rule: "T-Assign", NITrials: 1, NITrialsMax: 2, NISeed: int64(5 + i),
		}
		if _, err := seed.Put(m, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.SaveIndex(); err != nil {
		t.Fatal(err)
	}

	s, err := repro.NewSession(repro.WithCorpus(dir), repro.WithNIBudget(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keysAndClasses := func() (map[string]bool, map[string]bool) {
		c, err := s.Corpus()
		if err != nil {
			t.Fatal(err)
		}
		keys, classes := map[string]bool{}, map[string]bool{}
		for e, err := range c.Entries() {
			if err != nil {
				continue
			}
			keys[e.Meta.Key] = true
			classes[string(e.Meta.Class)] = true
		}
		return keys, classes
	}

	if rr, err := s.Replay(context.Background()); err != nil || !rr.OK() {
		t.Fatalf("fixture does not replay clean before compaction: %v\n%s", err, repro.FormatReplayReport(rr))
	}
	keysBefore, classesBefore := keysAndClasses()

	rep, err := s.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("compact errored:\n%s", repro.FormatCompactReport(rep))
	}
	if rep.Collapsed != 1 || rep.Minimized != 0 {
		t.Fatalf("want exactly one collapse and no rewrites, got:\n%s", repro.FormatCompactReport(rep))
	}

	keysAfter, classesAfter := keysAndClasses()
	for k := range keysAfter {
		if !keysBefore[k] {
			t.Errorf("compaction invented key %.12s — after must be a subset of before", k)
		}
	}
	if len(keysAfter) != len(keysBefore)-1 {
		t.Errorf("key count %d -> %d, want one fewer", len(keysBefore), len(keysAfter))
	}
	// Every removed pair's class survives in its collapse survivor.
	for cl := range classesBefore {
		if !classesAfter[cl] {
			t.Errorf("compaction lost verdict class %s", cl)
		}
	}
	if rr, err := s.Replay(context.Background()); err != nil || !rr.OK() {
		t.Fatalf("corpus does not replay clean after compaction: %v\n%s", err, repro.FormatReplayReport(rr))
	}

	// The pass's collapse statistics land in the persisted telemetry
	// snapshot — where triage.DiffReports reads them so nightly summaries
	// show corpus convergence.
	snap, err := metrics.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		t.Fatalf("read persisted metrics: %v", err)
	}
	if got := snap.Counter("compact_entries_total"); got != float64(rep.Total) {
		t.Errorf("compact_entries_total = %v, want %d", got, rep.Total)
	}
	if got := snap.Counter("compact_collapsed_total"); got != float64(rep.Collapsed) {
		t.Errorf("compact_collapsed_total = %v, want %d", got, rep.Collapsed)
	}
}

// TestSessionCompactPreservesClassesOnCampaignCorpus: compacting a real
// campaign corpus (persisted without minimization, so the shrinker has
// work) rewrites entries smaller but never loses a verdict class, and
// the corpus replays clean afterwards.
func TestSessionCompactPreservesClassesOnCampaignCorpus(t *testing.T) {
	dir := t.TempDir()
	s, err := repro.NewSession(
		repro.WithCorpus(dir),
		repro.WithGenConfig(smallSessionGen()),
		repro.WithSeed(7),
		repro.WithNIBudget(2, 8),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Campaign(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NewFindings == 0 {
		t.Fatal("campaign persisted nothing")
	}

	c, err := s.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	classesBefore := map[string]int{}
	for e, err := range c.Entries() {
		if err == nil {
			classesBefore[string(e.Meta.Class)]++
		}
	}

	cr, err := s.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !cr.OK() {
		t.Fatalf("compact errored:\n%s", repro.FormatCompactReport(cr))
	}

	classesAfter := map[string]bool{}
	for e, err := range c.Entries() {
		if err == nil {
			classesAfter[string(e.Meta.Class)] = true
		}
	}
	for cl := range classesBefore {
		if !classesAfter[cl] {
			t.Errorf("compaction lost verdict class %s", cl)
		}
	}
	if rr, err := s.Replay(context.Background()); err != nil || !rr.OK() {
		t.Fatalf("corpus does not replay clean after compaction: %v\n%s", err, repro.FormatReplayReport(rr))
	}
}
