// Package difftest is a differential soundness-fuzzing harness for the
// P4BID checker. It generates random programs with gen.Random, pushes them
// through the internal/pipeline batch engine, and cross-checks the three
// oracles the repo implements:
//
//   - the IFC checker (internal/core) — the paper's contribution;
//   - the baseline checker (internal/basecheck) — label-insensitive Core P4;
//   - the NI harness (internal/ni) — empirical non-interference testing.
//
// Each generated program lands in exactly one verdict class:
//
//   - Sound: IFC-accepted and no NI trial found interference. This is the
//     mass of evidence for Theorem 4.3.
//   - SoundnessViolation: IFC-accepted but an NI trial produced an
//     interference witness. Any such program falsifies the implementation
//     (checker bug, interpreter bug, or harness bug) and is reported with
//     its source and seed for replay.
//   - RejectedWitnessed: IFC-rejected and the NI harness found a concrete
//     interference witness — evidence the rejection was a true positive.
//   - RejectedClean: IFC-rejected, baseline-accepted, and NI-clean over
//     the trial budget. Precision data: the rejection may be conservative
//     (flow-insensitivity, label creep) or the trials may simply have
//     missed the leak; the ratio against RejectedWitnessed tracks the
//     checker's observed precision. Under the exhaustive oracle this
//     class splits by how much the enumeration covered: ProvedImprecise
//     (the full public × secret space was enumerated clean: the
//     rejection is definitely conservative), SecretExhausted (every
//     secret assignment was clean at each sampled public probe — strong
//     evidence of imprecision, but a leak at an unprobed public state is
//     not excluded), and UnderTested (enumeration was inconclusive:
//     still ambiguous).
//   - GeneratorBug: the program failed to parse, resolve, or base-check.
//     gen.Random promises syntactically and structurally valid output, so
//     anything here is a generator (or frontend) defect.
//   - RuntimeError: an NI run failed with a runtime error; also a defect,
//     since base-well-typed programs must evaluate cleanly.
package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/events"
	"repro/internal/gen"
	"repro/internal/ni"
	"repro/internal/pipeline"
)

// Verdict classifies one fuzzed program.
type Verdict int

// Verdicts, in severity order: anything above Sound is interesting and
// anything at SoundnessViolation or worse fails the harness.
const (
	Sound Verdict = iota
	RejectedWitnessed
	RejectedClean
	// ProvedImprecise splits the precision class with proof: the
	// exhaustive oracle enumerated the entire public × secret input
	// space at every observer (pipeline.JobResult.NITotal) and certified
	// the rejected program non-interfering — the rejection is definitely
	// conservative, not under-tested.
	ProvedImprecise
	// SecretExhausted is the probe-mode certification: every secret
	// assignment was enumerated clean, but only at sampled public
	// probes, because the public side exceeded the budget. No secret
	// influences the observables at any probed state — strong evidence
	// the rejection is conservative, but not a proof over the whole
	// input space, so it must never be conflated with ProvedImprecise.
	SecretExhausted
	// UnderTested is the residue of the split: the program was
	// rejected, no witness was found, and the exhaustive oracle could not
	// enumerate (width budget, int-typed secrets, ...), so the rejection
	// remains unclassified between imprecision and a missed leak.
	UnderTested
	GeneratorBug
	RuntimeError
	SoundnessViolation
	// NumVerdicts bounds the verdict enum; Report.Counts is indexed by it.
	NumVerdicts
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Sound:
		return "sound (IFC-accepted, NI-clean)"
	case RejectedWitnessed:
		return "rejected, interference witnessed"
	case RejectedClean:
		return "rejected, NI-clean (conservative?)"
	case ProvedImprecise:
		return "rejected, proved non-interfering (imprecise)"
	case SecretExhausted:
		return "rejected, secret-exhaustive (clean at sampled publics)"
	case UnderTested:
		return "rejected, enumeration inconclusive (under-tested)"
	case GeneratorBug:
		return "generator bug (parse/base failure)"
	case RuntimeError:
		return "runtime error"
	case SoundnessViolation:
		return "SOUNDNESS VIOLATION"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Config configures a fuzzing campaign.
type Config struct {
	// N is the number of programs to generate and cross-check.
	N int
	// Seed seeds program generation; program i is generated from a
	// rand.Rand seeded with Seed + i, so any single program can be
	// regenerated without rerunning the campaign.
	Seed int64
	// Gen configures the program generator (zero = gen.DefaultConfig).
	Gen gen.Config
	// NITrials is the per-program NI trial budget (default 8).
	NITrials int
	// NITrialsMax, when greater than NITrials, enables the pipeline's
	// adaptive NI budget: accepted programs get NITrials trials, rejected
	// programs escalate toward NITrialsMax until a witness appears.
	NITrialsMax int
	// Workers bounds the pipeline worker pool (<= 0 = GOMAXPROCS).
	Workers int
	// Oracle selects the NI backend (see pipeline.Options.Oracle; "" is
	// the adaptive default). With pipeline.OracleExhaustive the
	// RejectedClean class splits into ProvedImprecise, SecretExhausted,
	// and UnderTested.
	Oracle string
	// ExhaustBudget and ExhaustProbes configure the exhaustive oracle
	// (0 = defaults).
	ExhaustBudget uint64
	ExhaustProbes int
	// Events receives the run's structured event stream: one job-done per
	// classified program (Op "fuzz", Class the verdict), one finding event
	// per reported finding, and a final progress tick. The batch pipeline
	// classifies after the run drains, so events arrive in index order at
	// the end rather than live — Campaign is the streaming form. nil
	// discards.
	Events events.Sink
}

// Finding is one interesting (non-Sound) program, kept with enough context
// to replay: the generation seed regenerates the source exactly.
type Finding struct {
	Index   int
	Seed    int64
	Verdict Verdict
	Source  string
	// Detail is the witness, rule citations, or error text.
	Detail string
}

// Report is the campaign outcome.
type Report struct {
	// Counts has one entry per verdict class.
	Counts [NumVerdicts]int
	// Findings holds every non-Sound, non-RejectedWitnessed,
	// non-RejectedClean program (those two classes are expected in bulk;
	// only their counts are kept) plus every soundness violation.
	Findings []Finding
	// RulesCited counts, per typing rule, how many rejections cited it.
	RulesCited map[string]int
	// Elapsed and Workers describe the run.
	Elapsed time.Duration
	Workers int
	// Seed, N, and Gen echo the campaign configuration; a finding's
	// regen seed only reproduces its program under the same Gen config.
	Seed int64
	N    int
	Gen  gen.Config
	// Analyzed is the number of programs actually analyzed; less than N
	// only when the campaign was cancelled mid-run.
	Analyzed int
	// TrialsRun totals NI trials across programs; under an adaptive
	// budget it shows where the escalation spent its effort.
	TrialsRun int64
	// Aborted reports that the campaign was cancelled before analyzing
	// all N programs; the counts cover only the analyzed prefix.
	Aborted bool
}

// OK reports whether the campaign found no implementation defects: no
// soundness violations, no generator bugs, no runtime errors.
func (r *Report) OK() bool {
	return r.Counts[SoundnessViolation] == 0 &&
		r.Counts[GeneratorBug] == 0 &&
		r.Counts[RuntimeError] == 0
}

// Run executes the campaign. The returned error is only a context or
// configuration failure; oracle disagreements are reported in the Report,
// not as errors.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("difftest: N must be positive, got %d", cfg.N)
	}
	gcfg := cfg.Gen
	if gcfg == (gen.Config{}) {
		gcfg = gen.DefaultConfig()
	}
	lat, err := gcfg.ResolveLattice()
	if err != nil {
		return nil, fmt.Errorf("difftest: %w", err)
	}

	// Generation is cheap and deterministic per index; do it up front so
	// the pipeline measures pure analysis throughput.
	jobs := make([]pipeline.Job, cfg.N)
	for i := range jobs {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		jobs[i] = pipeline.Job{
			Name:   fmt.Sprintf("fuzz-%d.p4", i),
			Source: gen.Random(rng, gcfg),
			Lat:    lat,
		}
	}

	sum, err := pipeline.Run(ctx, jobs, pipeline.Options{
		Workers:       cfg.Workers,
		NI:            pipeline.NIAll,
		NITrials:      cfg.NITrials,
		NITrialsMax:   cfg.NITrialsMax,
		NISeed:        cfg.Seed,
		Oracle:        cfg.Oracle,
		ExhaustBudget: cfg.ExhaustBudget,
		ExhaustProbes: cfg.ExhaustProbes,
	})
	rep := &Report{
		RulesCited: map[string]int{},
		Elapsed:    sum.Elapsed,
		Workers:    sum.Workers,
		Seed:       cfg.Seed,
		N:          cfg.N,
		Gen:        gcfg,
		Analyzed:   len(sum.Results),
		TrialsRun:  sum.NITrialsRun,
		Aborted:    err != nil,
	}
	for i := range sum.Results {
		r := &sum.Results[i]
		v, detail := Classify(r)
		rep.Counts[v]++
		cfg.Events.Emit(events.Event{
			Kind: events.KindJobDone, Op: "fuzz",
			Index: int64(i), Class: v.String(), Rule: r.CitedRule(),
		})
		if r.IFC != nil && !r.IFC.OK {
			for _, d := range r.IFC.Diags {
				if d.Rule != "" {
					rep.RulesCited[d.Rule]++
				}
			}
		}
		if v == SoundnessViolation || v == GeneratorBug || v == RuntimeError {
			rep.Findings = append(rep.Findings, Finding{
				Index:   i,
				Seed:    cfg.Seed + int64(i),
				Verdict: v,
				Source:  r.Job.Source,
				Detail:  detail,
			})
			cfg.Events.Emit(events.Event{
				Kind: events.KindFinding, Op: "fuzz",
				Index: int64(i), Class: v.String(), Detail: detail,
			})
		}
	}
	cfg.Events.Emit(events.Event{
		Kind: events.KindProgress, Op: "fuzz", Done: rep.Analyzed, Total: cfg.N,
	})
	return rep, err
}

// Classify maps one pipeline result to its verdict class and the detail
// text (witness, rule citation counts, or error) that goes with it. It is
// exported for the campaign engine, which classifies streamed results the
// same way Run classifies batched ones.
func Classify(r *pipeline.JobResult) (Verdict, string) {
	switch {
	case r.ParseErr != nil:
		return GeneratorBug, "parse: " + r.ParseErr.Error()
	case r.ResolveErr != nil:
		return GeneratorBug, "resolve: " + r.ResolveErr.Error()
	case !r.BaseOK():
		detail := "basecheck rejected"
		if r.Base != nil && r.Base.Err() != nil {
			detail = "basecheck: " + r.Base.Err().Error()
		}
		return GeneratorBug, detail
	case r.IFCOK():
		// Witnesses outrank trial errors: ni.Experiment.Run can return
		// violations from early trials alongside an error from a later
		// one, and a witnessed soundness violation must never be masked.
		if len(r.NIViolations) > 0 {
			return SoundnessViolation, r.NIViolations[0].String()
		}
		if r.NIErr != nil {
			return RuntimeError, r.NIErr.Error()
		}
		return Sound, ""
	default:
		if len(r.NIViolations) > 0 {
			return RejectedWitnessed, r.NIViolations[0].String()
		}
		if r.NIErr != nil {
			return RuntimeError, r.NIErr.Error()
		}
		// A clean rejection under the exhaustive oracle carries proof
		// provenance, graded by coverage: a total enumeration certifies
		// the rejection as imprecision; a probe-mode clean sweep (all
		// secrets, sampled publics — NITotal false) only certifies the
		// probed states, so it gets its own class rather than passing as
		// a proof; an inconclusive one leaves the program in the untested
		// gap.
		switch r.NIOutcome {
		case ni.ProvedSecure:
			if r.NITotal {
				return ProvedImprecise, fmt.Sprintf(
					"exhaustive: non-interfering over the full input space (%d assignments)", r.NIAssignments)
			}
			return SecretExhausted, fmt.Sprintf(
				"exhaustive: no secret influence at sampled public probes (%d assignments)", r.NIAssignments)
		case ni.Inconclusive:
			return UnderTested, "exhaustive: " + r.NIReason
		}
		return RejectedClean, ""
	}
}

// Count is the bounds-checked read of Report.Counts: out-of-range
// verdicts (which String renders as "Verdict(%d)") count zero instead of
// panicking, so callers indexing by verdicts from newer (or older)
// binaries stay safe as the enum grows.
func (r *Report) Count(v Verdict) int {
	if v < 0 || v >= NumVerdicts {
		return 0
	}
	return r.Counts[v]
}

// FormatReport renders the verdict table and any findings.
func FormatReport(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "differential soundness fuzzing: %d programs, seed %d, %d workers, %d NI trials, %v\n",
		r.N, r.Seed, r.Workers, r.TrialsRun, r.Elapsed.Round(time.Millisecond))
	lat := r.Gen.Lattice
	if lat == "" {
		lat = "two-point"
	}
	fmt.Fprintf(&b, "  gen config: depth=%d stmts=%d fields=%d actions=%v lattice=%s (regen seeds assume this config)\n",
		r.Gen.MaxDepth, r.Gen.MaxStmts, r.Gen.NumFields, r.Gen.WithActions, lat)
	fmt.Fprintf(&b, "  %-36s %8s\n", "verdict", "count")
	for v := Verdict(0); v < NumVerdicts; v++ {
		fmt.Fprintf(&b, "  %-36s %8d\n", v, r.Counts[v])
	}
	if len(r.RulesCited) > 0 {
		b.WriteString("  rules cited on rejections:")
		for _, rule := range sortedKeys(r.RulesCited) {
			fmt.Fprintf(&b, " %s×%d", rule, r.RulesCited[rule])
		}
		b.WriteByte('\n')
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "\nFINDING #%d (%s, regen seed %d): %s\n%s",
			f.Index, f.Verdict, f.Seed, f.Detail, f.Source)
	}
	switch {
	case r.Aborted:
		fmt.Fprintf(&b, "ABORTED: campaign incomplete — verdicts cover only %d/%d programs\n", r.Analyzed, r.N)
	case r.OK():
		b.WriteString("PASS: no soundness violations, generator bugs, or runtime errors\n")
	default:
		b.WriteString("FAIL: implementation defects found (see findings above)\n")
	}
	return b.String()
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
