package difftest_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/difftest"
)

// campaignSize returns the acceptance-criteria campaign size: >= 1000
// programs, or >= 100 under -short.
func campaignSize(t *testing.T) int {
	if testing.Short() {
		return 100
	}
	return 1000
}

// TestCampaignFindsNoDefects is the headline harness test: a full
// differential campaign over generated programs must find zero soundness
// violations (no IFC-accepted program interferes), zero generator bugs
// (every generated program parses and base-checks), and zero runtime
// errors.
func TestCampaignFindsNoDefects(t *testing.T) {
	rep, err := difftest.Run(context.Background(), difftest.Config{
		N:        campaignSize(t),
		Seed:     20260728,
		NITrials: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("campaign found implementation defects:\n%s", difftest.FormatReport(rep))
	}
	if got := rep.Counts[difftest.SoundnessViolation]; got != 0 {
		t.Errorf("%d soundness violations — Theorem 4.3 falsified by the implementation", got)
	}
	if rep.Counts[difftest.Sound] == 0 {
		t.Error("no program was IFC-accepted — the generator is not exercising the accept path")
	}
	if rep.Counts[difftest.RejectedWitnessed]+rep.Counts[difftest.RejectedClean] == 0 {
		t.Error("no program was IFC-rejected — the generator is not exercising the reject path")
	}
	// The NI harness must be demonstrating rejections are real at least
	// sometimes; an all-clean rejected population would mean the trials
	// never catch anything.
	if rep.Counts[difftest.RejectedWitnessed] == 0 {
		t.Error("no rejected program had interference witnessed — NI trials are toothless")
	}
	t.Logf("\n%s", difftest.FormatReport(rep))
}

// TestCampaignDeterministic re-runs a small campaign with the same seed
// and expects identical verdict counts regardless of scheduling.
func TestCampaignDeterministic(t *testing.T) {
	run := func(workers int) *difftest.Report {
		rep, err := difftest.Run(context.Background(), difftest.Config{
			N: 60, Seed: 99, NITrials: 4, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(8)
	if a.Counts != b.Counts {
		t.Errorf("verdict counts depend on worker count: %v vs %v", a.Counts, b.Counts)
	}
}

// TestCampaignRejectsBadConfig checks the config validation path.
func TestCampaignRejectsBadConfig(t *testing.T) {
	if _, err := difftest.Run(context.Background(), difftest.Config{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
}

// TestCampaignCancellation checks a cancelled campaign reports the context
// error but still returns the partial report.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := difftest.Run(ctx, difftest.Config{N: 50, Seed: 1, NITrials: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("no partial report returned")
	}
	if !rep.Aborted {
		t.Error("cancelled campaign not marked Aborted")
	}
	if !strings.Contains(difftest.FormatReport(rep), "ABORTED") {
		t.Error("report of cancelled campaign does not say ABORTED")
	}
}

// TestFormatReport checks the verdict table renders every class and the
// PASS line.
func TestFormatReport(t *testing.T) {
	rep, err := difftest.Run(context.Background(), difftest.Config{N: 30, Seed: 5, NITrials: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := difftest.FormatReport(rep)
	for _, want := range []string{
		"30 programs", "sound (IFC-accepted, NI-clean)",
		"SOUNDNESS VIOLATION", "generator bug",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
