package difftest

import (
	"errors"
	"testing"

	"repro/internal/basecheck"
	"repro/internal/core"
	"repro/internal/ni"
	"repro/internal/pipeline"
)

// TestClassify drives every verdict branch with synthetic pipeline
// results, including the soundness-violation branch a healthy checker
// never produces organically.
func TestClassify(t *testing.T) {
	okBase := &basecheck.Result{OK: true}
	badBase := &basecheck.Result{OK: false}
	okIFC := &core.Result{OK: true}
	badIFC := &core.Result{OK: false}
	witness := []ni.Violation{{Trial: 0, Where: "hdr", A: "1", B: "2"}}

	for _, tc := range []struct {
		name string
		r    pipeline.JobResult
		want Verdict
	}{
		{"parse failure", pipeline.JobResult{ParseErr: errors.New("x")}, GeneratorBug},
		{"resolve failure", pipeline.JobResult{ResolveErr: errors.New("x")}, GeneratorBug},
		{"base rejection", pipeline.JobResult{Base: badBase}, GeneratorBug},
		{"runtime error", pipeline.JobResult{Base: okBase, IFC: okIFC, NIErr: errors.New("x")}, RuntimeError},
		{"accepted clean", pipeline.JobResult{Base: okBase, IFC: okIFC}, Sound},
		{"accepted interfering", pipeline.JobResult{Base: okBase, IFC: okIFC, NIViolations: witness}, SoundnessViolation},
		{"witness outranks trial error", pipeline.JobResult{Base: okBase, IFC: okIFC, NIViolations: witness, NIErr: errors.New("x")}, SoundnessViolation},
		{"rejected witnessed", pipeline.JobResult{Base: okBase, IFC: badIFC, NIViolations: witness}, RejectedWitnessed},
		{"rejected clean", pipeline.JobResult{Base: okBase, IFC: badIFC}, RejectedClean},
		{"rejected, proved secure over the full space", pipeline.JobResult{Base: okBase, IFC: badIFC, NIOutcome: ni.ProvedSecure, NITotal: true, NIAssignments: 512}, ProvedImprecise},
		{"rejected, clean probe-mode sweep is not a proof", pipeline.JobResult{Base: okBase, IFC: badIFC, NIOutcome: ni.ProvedSecure, NIAssignments: 512}, SecretExhausted},
		{"rejected, enumeration inconclusive", pipeline.JobResult{Base: okBase, IFC: badIFC, NIOutcome: ni.Inconclusive, NIReason: "width-budget-exceeded"}, UnderTested},
		{"witness outranks proof outcome", pipeline.JobResult{Base: okBase, IFC: badIFC, NIViolations: witness, NIOutcome: ni.ProvedInsecure}, RejectedWitnessed},
		{"accepted ignores proof outcome", pipeline.JobResult{Base: okBase, IFC: okIFC, NIOutcome: ni.ProvedSecure, NITotal: true}, Sound},
	} {
		got, _ := Classify(&tc.r)
		if got != tc.want {
			t.Errorf("%s: classified %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestReportCount locks the bounds-checked accessor: in-range verdicts
// read the counts array, out-of-range ones (older or newer binaries'
// enum values) read zero instead of panicking.
func TestReportCount(t *testing.T) {
	var r Report
	r.Counts[ProvedImprecise] = 3
	r.Counts[UnderTested] = 2
	if got := r.Count(ProvedImprecise); got != 3 {
		t.Errorf("Count(ProvedImprecise) = %d, want 3", got)
	}
	if got := r.Count(UnderTested); got != 2 {
		t.Errorf("Count(UnderTested) = %d, want 2", got)
	}
	if got := r.Count(Verdict(-1)); got != 0 {
		t.Errorf("Count(-1) = %d, want 0", got)
	}
	if got := r.Count(NumVerdicts); got != 0 {
		t.Errorf("Count(NumVerdicts) = %d, want 0", got)
	}
	if got := r.Count(Verdict(1000)); got != 0 {
		t.Errorf("Count(1000) = %d, want 0", got)
	}
}
