package difftest

import (
	"errors"
	"testing"

	"repro/internal/basecheck"
	"repro/internal/core"
	"repro/internal/ni"
	"repro/internal/pipeline"
)

// TestClassify drives every verdict branch with synthetic pipeline
// results, including the soundness-violation branch a healthy checker
// never produces organically.
func TestClassify(t *testing.T) {
	okBase := &basecheck.Result{OK: true}
	badBase := &basecheck.Result{OK: false}
	okIFC := &core.Result{OK: true}
	badIFC := &core.Result{OK: false}
	witness := []ni.Violation{{Trial: 0, Where: "hdr", A: "1", B: "2"}}

	for _, tc := range []struct {
		name string
		r    pipeline.JobResult
		want Verdict
	}{
		{"parse failure", pipeline.JobResult{ParseErr: errors.New("x")}, GeneratorBug},
		{"resolve failure", pipeline.JobResult{ResolveErr: errors.New("x")}, GeneratorBug},
		{"base rejection", pipeline.JobResult{Base: badBase}, GeneratorBug},
		{"runtime error", pipeline.JobResult{Base: okBase, IFC: okIFC, NIErr: errors.New("x")}, RuntimeError},
		{"accepted clean", pipeline.JobResult{Base: okBase, IFC: okIFC}, Sound},
		{"accepted interfering", pipeline.JobResult{Base: okBase, IFC: okIFC, NIViolations: witness}, SoundnessViolation},
		{"witness outranks trial error", pipeline.JobResult{Base: okBase, IFC: okIFC, NIViolations: witness, NIErr: errors.New("x")}, SoundnessViolation},
		{"rejected witnessed", pipeline.JobResult{Base: okBase, IFC: badIFC, NIViolations: witness}, RejectedWitnessed},
		{"rejected clean", pipeline.JobResult{Base: okBase, IFC: badIFC}, RejectedClean},
	} {
		got, _ := Classify(&tc.r)
		if got != tc.want {
			t.Errorf("%s: classified %v, want %v", tc.name, got, tc.want)
		}
	}
}
