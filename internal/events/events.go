// Package events defines the structured event stream the campaign stack
// emits while it works: per-job completions, findings as they persist,
// replay drift, triage clusters, retirements, coarse progress ticks, and
// the fleet's lease lifecycle. The engines (internal/campaign,
// internal/triage, internal/fleet) emit through a Sink — a plain nil-able
// callback, so an engine run without a listener pays one nil check per
// event — and the public Session API fans the sink into a buffered
// channel for CLIs and CI to render live.
//
// Events marshal to JSON with the kind spelled as its string name, one
// object per line under `p4fuzz -events-json` — the machine-readable form
// fleet coordinators, CI gates, and dashboards parse instead of scraping
// stderr. Zero-valued kind-dependent fields are omitted.
package events

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Kind discriminates events.
type Kind int

// Event kinds.
const (
	// KindJobDone is one analyzed (or replayed) program: Index is its
	// campaign index (or replay sequence), Class the verdict class the
	// stack assigned.
	KindJobDone Kind = iota
	// KindFinding is one interesting program persisted (or collected) by
	// a campaign; Class, Key, Path, and Detail describe it.
	KindFinding
	// KindDrift is one replayed finding whose classification no longer
	// matches its recorded class: Class is the recorded class, Detail the
	// "now X" explanation.
	KindDrift
	// KindCluster is one ranked triage cluster, emitted in rank order:
	// Class/Rule/Detail carry (class, rule, fingerprint), Done the
	// cluster's size, and Total the report's cluster count.
	KindCluster
	// KindRetired is one corpus entry promoted into the retired corpus
	// and removed from the live one.
	KindRetired
	// KindProgress is a coarse tick: Done of Total units complete for the
	// current operation (Total is 0 when unknown, e.g. replay of an
	// unopened corpus).
	KindProgress
	// KindWarning is a recoverable anomaly the operation worked around —
	// e.g. a corrupt corpus index that was rebuilt from a directory rescan,
	// a corrupt resume cursor recovered as a zero cursor, or events dropped
	// by a slow listener (Done carries the drop count). Detail says what
	// happened, Path where.
	KindWarning
	// KindOpStart and KindOpEnd frame every Session operation's stream: a
	// consumer that saw OpStart but no OpEnd knows the stream was cut short
	// (crashed worker, killed process), and one that saw both knows it has
	// the whole operation — modulo an explicit drop-count warning just
	// before OpEnd. Op names the operation; OpEnd's Detail summarizes the
	// outcome.
	KindOpStart
	KindOpEnd
	// KindLease is one index window leased to a fleet worker: Worker holds
	// the worker id, Lo and Hi the window bounds.
	KindLease
	// KindReclaim is one expired lease reclaimed by the fleet coordinator
	// (the worker's heartbeat went stale); the window returns to the pool
	// and will be re-leased.
	KindReclaim
	// KindWindowDone is one leased window completed by a worker: Done
	// carries the window's new-finding count, Total its analyzed count.
	KindWindowDone
	// KindMerge is one worker finding merged into the fleet's main corpus;
	// Key and Class identify it, Worker where it came from.
	KindMerge
	// KindMetrics is a periodic telemetry snapshot: Snapshot carries the
	// emitting process's metrics registry. Fleet coordinators absorb these
	// from worker streams into a merged view; the final one an operation
	// emits reflects its end state.
	KindMetrics
)

// kindNames is the canonical string form of each kind — the JSON
// vocabulary `-events-json` consumers parse.
var kindNames = [...]string{
	KindJobDone:    "job-done",
	KindFinding:    "finding",
	KindDrift:      "drift",
	KindCluster:    "cluster",
	KindRetired:    "retired",
	KindProgress:   "progress",
	KindWarning:    "warning",
	KindOpStart:    "op-start",
	KindOpEnd:      "op-end",
	KindLease:      "lease",
	KindReclaim:    "reclaim",
	KindWindowDone: "window-done",
	KindMerge:      "merge",
	KindMetrics:    "metrics",
}

// String names the kind.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "event"
}

// KindFromString resolves a kind's string name — the inverse of String,
// used when ingesting a serialized event stream.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// MarshalJSON writes the kind as its string name, so serialized streams
// read ("kind":"job-done") and survive reordering of the Kind enum.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON resolves a kind from its string name.
func (k *Kind) UnmarshalJSON(raw []byte) error {
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return err
	}
	got, ok := KindFromString(s)
	if !ok {
		return fmt.Errorf("events: unknown kind %q", s)
	}
	*k = got
	return nil
}

// Event is one observation from a running operation. Fields beyond Kind,
// Op, and Time are kind-dependent; unused ones are zero (and omitted from
// the JSON form).
type Event struct {
	Kind Kind `json:"kind"`
	// Op names the operation emitting: "campaign", "replay", "triage",
	// "retire", "compact", "check", "fuzz", "fleet".
	Op string `json:"op,omitempty"`
	// Time is when the event was emitted.
	Time time.Time `json:"time"`
	// Worker is the fleet worker id the event came from ("" outside a
	// fleet); coordinators stamp it when ingesting a worker's stream.
	Worker string `json:"worker,omitempty"`
	// Index is the campaign/replay index the event concerns.
	Index int64 `json:"index,omitempty"`
	// Class, Rule, Detail, Key, and Path describe the program or cluster.
	Class  string `json:"class,omitempty"`
	Rule   string `json:"rule,omitempty"`
	Detail string `json:"detail,omitempty"`
	Key    string `json:"key,omitempty"`
	Path   string `json:"path,omitempty"`
	// Done and Total carry progress (and cluster size/rank) counts.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Lo and Hi delimit a fleet lease window [Lo, Hi).
	Lo int64 `json:"lo,omitempty"`
	Hi int64 `json:"hi,omitempty"`
	// JobsPerSec and FindingsPerSec are throughput rates since the
	// operation started, carried on KindProgress ticks when the emitter
	// has a metrics registry to compute them from.
	JobsPerSec     float64 `json:"jobs_per_sec,omitempty"`
	FindingsPerSec float64 `json:"findings_per_sec,omitempty"`
	// Snapshot is the KindMetrics payload. A pointer so Event stays
	// comparable and the field marshals away on every other kind.
	Snapshot *metrics.Snapshot `json:"snapshot,omitempty"`
}

// Sink receives events; a nil Sink discards them. Engines call Emit, not
// the sink directly, so the nil case stays in one place.
type Sink func(Event)

// Emit sends e to s, stamping Time if unset; nil sinks discard.
func (s Sink) Emit(e Event) {
	if s == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	s(e)
}

// Text renders an event as the one-line human form the CLIs print ("" for
// kinds with no text rendering). Every CLI that streams events — p4fuzz
// -events, p4fuzzd — prints this form, so fleet logs read the same no
// matter which process emitted a line.
func (e Event) Text() string {
	switch e.Kind {
	case KindOpStart:
		return fmt.Sprintf("[%s] start", e.Op)
	case KindOpEnd:
		return fmt.Sprintf("[%s] end: %s", e.Op, e.Detail)
	case KindProgress:
		if e.JobsPerSec > 0 {
			return fmt.Sprintf("[%s] %d/%d done (%.1f jobs/s, %.2f findings/s)", e.Op, e.Done, e.Total, e.JobsPerSec, e.FindingsPerSec)
		}
		return fmt.Sprintf("[%s] %d/%d done", e.Op, e.Done, e.Total)
	case KindFinding:
		return fmt.Sprintf("[%s] finding %s (index %d): %s", e.Op, e.Class, e.Index, e.Detail)
	case KindDrift:
		return fmt.Sprintf("[%s] drift %s: recorded %s, %s", e.Op, e.Path, e.Class, e.Detail)
	case KindCluster:
		return fmt.Sprintf("[%s] cluster %s/%s/%s: %d findings", e.Op, e.Class, e.Rule, e.Detail, e.Done)
	case KindRetired:
		return fmt.Sprintf("[%s] retired %s: %s", e.Op, e.Path, e.Detail)
	case KindWarning:
		if e.Path == "" {
			return fmt.Sprintf("[%s] warning: %s", e.Op, e.Detail)
		}
		return fmt.Sprintf("[%s] warning %s: %s", e.Op, e.Path, e.Detail)
	case KindLease:
		return fmt.Sprintf("[%s] %s leased [%d, %d)", e.Op, e.Worker, e.Lo, e.Hi)
	case KindReclaim:
		return fmt.Sprintf("[%s] reclaimed [%d, %d) from %s: %s", e.Op, e.Lo, e.Hi, e.Worker, e.Detail)
	case KindWindowDone:
		return fmt.Sprintf("[%s] %s finished [%d, %d): %d analyzed, %d findings", e.Op, e.Worker, e.Lo, e.Hi, e.Total, e.Done)
	case KindMerge:
		return fmt.Sprintf("[%s] merged %s finding %.12s (%s) from [%d, %d)", e.Op, e.Worker, e.Key, e.Class, e.Lo, e.Hi)
	case KindMetrics:
		if e.Snapshot == nil {
			return fmt.Sprintf("[%s] metrics snapshot", e.Op)
		}
		return fmt.Sprintf("[%s] metrics snapshot: %d counters, %d gauges, %d histograms",
			e.Op, len(e.Snapshot.Counters), len(e.Snapshot.Gauges), len(e.Snapshot.Histograms))
	}
	return ""
}
