// Package events defines the structured event stream the campaign stack
// emits while it works: per-job completions, findings as they persist,
// replay drift, triage clusters, retirements, and coarse progress ticks.
// The engines (internal/campaign, internal/triage) emit through a Sink —
// a plain nil-able callback, so an engine run without a listener pays one
// nil check per event — and the public Session API fans the sink into a
// buffered channel for CLIs and CI to render live.
package events

import "time"

// Kind discriminates events.
type Kind int

// Event kinds.
const (
	// KindJobDone is one analyzed (or replayed) program: Index is its
	// campaign index (or replay sequence), Class the verdict class the
	// stack assigned.
	KindJobDone Kind = iota
	// KindFinding is one interesting program persisted (or collected) by
	// a campaign; Class, Key, Path, and Detail describe it.
	KindFinding
	// KindDrift is one replayed finding whose classification no longer
	// matches its recorded class: Class is the recorded class, Detail the
	// "now X" explanation.
	KindDrift
	// KindCluster is one ranked triage cluster, emitted in rank order:
	// Class/Rule/Detail carry (class, rule, fingerprint), Done the
	// cluster's size, and Total the report's cluster count.
	KindCluster
	// KindRetired is one corpus entry promoted into the retired corpus
	// and removed from the live one.
	KindRetired
	// KindProgress is a coarse tick: Done of Total units complete for the
	// current operation (Total is 0 when unknown, e.g. replay of an
	// unopened corpus).
	KindProgress
	// KindWarning is a recoverable anomaly the operation worked around —
	// e.g. a corrupt corpus index that was rebuilt from a directory rescan.
	// Detail says what happened, Path where.
	KindWarning
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindJobDone:
		return "job-done"
	case KindFinding:
		return "finding"
	case KindDrift:
		return "drift"
	case KindCluster:
		return "cluster"
	case KindRetired:
		return "retired"
	case KindProgress:
		return "progress"
	case KindWarning:
		return "warning"
	default:
		return "event"
	}
}

// Event is one observation from a running operation. Fields beyond Kind,
// Op, and Time are kind-dependent; unused ones are zero.
type Event struct {
	Kind Kind
	// Op names the operation emitting: "campaign", "replay", "triage",
	// "retire".
	Op string
	// Time is when the event was emitted.
	Time time.Time
	// Index is the campaign/replay index the event concerns.
	Index int64
	// Class, Rule, Detail, Key, and Path describe the program or cluster.
	Class  string
	Rule   string
	Detail string
	Key    string
	Path   string
	// Done and Total carry progress (and cluster size/rank) counts.
	Done, Total int
}

// Sink receives events; a nil Sink discards them. Engines call Emit, not
// the sink directly, so the nil case stays in one place.
type Sink func(Event)

// Emit sends e to s, stamping Time if unset; nil sinks discard.
func (s Sink) Emit(e Event) {
	if s == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	s(e)
}
