package events

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestKindStringRoundTrip: every kind's string name resolves back to the
// kind — the JSON vocabulary is total and unambiguous.
func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); int(k) < len(kindNames); k++ {
		name := k.String()
		if name == "event" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindFromString(name)
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v; want %v", name, got, ok, k)
		}
	}
	if _, ok := KindFromString("no-such-kind"); ok {
		t.Error("KindFromString accepted an unknown name")
	}
}

// TestEventJSONRoundTrip: the serialized form spells the kind as a string,
// omits zero-valued optional fields, and unmarshals back to the same
// event — the `-events-json` contract fleet ingestion depends on.
func TestEventJSONRoundTrip(t *testing.T) {
	e := Event{
		Kind:   KindLease,
		Op:     "fleet",
		Time:   time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Worker: "w1",
		Lo:     1000,
		Hi:     2000,
	}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.Contains(s, `"kind":"lease"`) {
		t.Errorf("kind not spelled as string: %s", s)
	}
	for _, absent := range []string{"index", "class", "rule", "detail", "key", "path", "done", "total"} {
		if strings.Contains(s, `"`+absent+`"`) {
			t.Errorf("zero field %q not omitted: %s", absent, s)
		}
	}
	var back Event
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != e {
		t.Errorf("round trip changed the event:\n  in  %+v\n  out %+v", e, back)
	}
}

// TestEventJSONUnknownKind: ingesting a stream from a newer emitter with
// an unknown kind is an explicit error, not a silent zero kind.
func TestEventJSONUnknownKind(t *testing.T) {
	var e Event
	err := json.Unmarshal([]byte(`{"kind":"quantum-leap"}`), &e)
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Errorf("unknown kind unmarshalled with err=%v", err)
	}
}

// TestSinkNilSafe: emitting through a nil sink is a no-op, and Emit stamps
// the time when unset.
func TestSinkNilSafe(t *testing.T) {
	var s Sink
	s.Emit(Event{Kind: KindProgress}) // must not panic

	var got Event
	s = func(e Event) { got = e }
	s.Emit(Event{Kind: KindProgress})
	if got.Time.IsZero() {
		t.Error("Emit did not stamp the time")
	}
}
