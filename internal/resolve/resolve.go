// Package resolve turns syntactic types into semantic security types and
// builds the type-definition context Δ from a program's type declarations.
// It is shared by the base (label-insensitive) checker in internal/basecheck
// and the IFC checker in internal/core.
//
// Resolution implements the unfolding judgement Δ ⊢ τ ⇝ τ′ of the paper:
// named types are looked up in Δ and replaced by their (already resolved)
// definitions, so downstream code only ever sees structural types.
package resolve

import (
	"repro/internal/ast"
	"repro/internal/diag"
	"repro/internal/lattice"
	"repro/internal/token"
	"repro/internal/types"
)

// Resolver resolves syntactic types against a lattice and a Δ.
type Resolver struct {
	Lat   lattice.Lattice
	Defs  *types.TypeDefs
	Diags *diag.List
	// MatchKinds accumulates declared match_kind members (exact, lpm, ...).
	MatchKinds []string
}

// New returns a resolver with an empty Δ pre-populated with the builtin
// standard_metadata_t struct and the builtin match kinds exact, lpm, and
// ternary (programs may extend them with their own match_kind declaration).
func New(lat lattice.Lattice, diags *diag.List) *Resolver {
	r := &Resolver{Lat: lat, Defs: types.NewTypeDefs(), Diags: diags}
	r.MatchKinds = []string{"exact", "lpm", "ternary"}
	low := lat.Bottom()
	std := &types.Record{Fields: []types.Field{
		{Name: "ingress_port", Type: types.SecType{T: types.Bit{W: 9}, L: low}},
		{Name: "egress_spec", Type: types.SecType{T: types.Bit{W: 9}, L: low}},
		{Name: "egress_port", Type: types.SecType{T: types.Bit{W: 9}, L: low}},
		{Name: "priority", Type: types.SecType{T: types.Bit{W: 3}, L: low}},
		{Name: "mcast_grp", Type: types.SecType{T: types.Bit{W: 16}, L: low}},
		{Name: "drop_flag", Type: types.SecType{T: types.Bit{W: 1}, L: low}},
	}}
	_ = r.Defs.Define("standard_metadata_t", types.SecType{T: std, L: low})
	return r
}

// Label resolves a label name against the lattice; the empty name is the
// unannotated default ⊥. Unknown names are reported and ⊥ returned so
// checking can continue.
func (r *Resolver) Label(pos token.Pos, name string) lattice.Label {
	if name == "" {
		return r.Lat.Bottom()
	}
	l, ok := r.Lat.Lookup(name)
	if !ok {
		r.Diags.Errorf(pos, "unknown security label %q in lattice %s", name, r.Lat.Name())
		return r.Lat.Bottom()
	}
	return l
}

// SecType resolves a syntactic security type to a semantic one. Per
// Figure 4, composite types keep ⊥ as their outer label; an annotation on
// a composite type is pushed down onto scalar leaves by joining it with
// each field's own label (a convenience extension: `<hdr_t, high> h` makes
// every field of h at least high).
func (r *Resolver) SecType(t *ast.SecType) types.SecType {
	if t == nil {
		return types.SecType{T: types.Unit{}, L: r.Lat.Bottom()}
	}
	lbl := r.Label(t.P, t.Label)
	// Named types carry their definition's own label (a typedef of
	// <bit<8>, high> stays high when used unannotated); an explicit
	// annotation joins on top of it.
	if nt, ok := t.Base.(*ast.NamedType); ok {
		def, found := r.Defs.Lookup(nt.Name)
		if !found {
			r.Diags.Errorf(nt.P, "unknown type %q", nt.Name)
			return types.SecType{}
		}
		if types.IsScalar(def.T) {
			return types.SecType{T: def.T, L: r.Lat.Join(def.L, lbl)}
		}
		base := def.T
		if t.Label != "" && lbl != r.Lat.Bottom() {
			base = r.raise(base, lbl)
		}
		return types.SecType{T: base, L: r.Lat.Bottom()}
	}
	base := r.Type(t.Base)
	if base == nil {
		return types.SecType{}
	}
	if types.IsScalar(base) {
		return types.SecType{T: base, L: lbl}
	}
	// Composite: outer label ⊥; an explicit annotation is distributed over
	// the leaves.
	if t.Label != "" && lbl != r.Lat.Bottom() {
		base = r.raise(base, lbl)
	}
	return types.SecType{T: base, L: r.Lat.Bottom()}
}

// raise joins lbl onto every scalar leaf of t.
func (r *Resolver) raise(t types.Type, lbl lattice.Label) types.Type {
	switch t := t.(type) {
	case *types.Record:
		fs := make([]types.Field, len(t.Fields))
		for i, f := range t.Fields {
			fs[i] = types.Field{Name: f.Name, Type: r.raiseSec(f.Type, lbl)}
		}
		return &types.Record{Fields: fs}
	case *types.Header:
		fs := make([]types.Field, len(t.Fields))
		for i, f := range t.Fields {
			fs[i] = types.Field{Name: f.Name, Type: r.raiseSec(f.Type, lbl)}
		}
		return &types.Header{Fields: fs}
	case *types.Stack:
		return &types.Stack{Elem: r.raiseSec(t.Elem, lbl), Size: t.Size}
	default:
		return t
	}
}

func (r *Resolver) raiseSec(s types.SecType, lbl lattice.Label) types.SecType {
	if types.IsScalar(s.T) {
		return types.SecType{T: s.T, L: r.Lat.Join(s.L, lbl)}
	}
	return types.SecType{T: r.raise(s.T, lbl), L: s.L}
}

// Type resolves a syntactic base type, unfolding named types through Δ.
// It reports and returns nil for unknown names.
func (r *Resolver) Type(t ast.Type) types.Type {
	switch t := t.(type) {
	case *ast.BoolType:
		return types.Bool{}
	case *ast.IntType:
		return types.Int{}
	case *ast.BitType:
		return types.Bit{W: t.Width}
	case *ast.VoidType:
		return types.Unit{}
	case *ast.NamedType:
		def, ok := r.Defs.Lookup(t.Name)
		if !ok {
			r.Diags.Errorf(t.P, "unknown type %q", t.Name)
			return nil
		}
		return def.T
	case *ast.StackType:
		elem := r.SecType(t.Elem)
		if elem.IsZero() {
			return nil
		}
		if !types.IsScalar(elem.T) {
			if _, isHdr := elem.T.(*types.Header); !isHdr {
				r.Diags.Errorf(t.P, "stack element must be a scalar or header type, got %s", elem.T)
				return nil
			}
		}
		return &types.Stack{Elem: elem, Size: t.Size}
	default:
		r.Diags.Errorf(t.Pos(), "unsupported type syntax")
		return nil
	}
}

// CollectTypeDecls processes the program's type declarations in order,
// populating Δ and the match-kind member list. Header and struct fields
// must resolve to base types (Figure 3 requires ρ fields).
func (r *Resolver) CollectTypeDecls(prog *ast.Program) {
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.TypedefDecl:
			st := r.SecType(d.Type)
			if st.IsZero() {
				continue
			}
			if err := r.Defs.Define(d.Name, st); err != nil {
				r.Diags.Errorf(d.P, "%v", err)
			}
		case *ast.HeaderDecl:
			fields, ok := r.fields(d.Fields)
			if !ok {
				continue
			}
			st := types.SecType{T: &types.Header{Fields: fields}, L: r.Lat.Bottom()}
			if err := r.Defs.Define(d.Name, st); err != nil {
				r.Diags.Errorf(d.P, "%v", err)
			}
		case *ast.StructDecl:
			fields, ok := r.fields(d.Fields)
			if !ok {
				continue
			}
			st := types.SecType{T: &types.Record{Fields: fields}, L: r.Lat.Bottom()}
			if err := r.Defs.Define(d.Name, st); err != nil {
				r.Diags.Errorf(d.P, "%v", err)
			}
		case *ast.MatchKindDecl:
			r.MatchKinds = append(r.MatchKinds, d.Members...)
		}
	}
}

// fields resolves header/struct fields, checking that each is a base type.
func (r *Resolver) fields(fds []ast.FieldDecl) ([]types.Field, bool) {
	out := make([]types.Field, 0, len(fds))
	seen := map[string]bool{}
	ok := true
	for _, fd := range fds {
		if seen[fd.Name] {
			r.Diags.Errorf(fd.P, "duplicate field %q", fd.Name)
			ok = false
			continue
		}
		seen[fd.Name] = true
		st := r.SecType(fd.Type)
		if st.IsZero() {
			ok = false
			continue
		}
		if !types.IsBase(st.T) {
			r.Diags.Errorf(fd.P, "field %q must have a base type, got %s", fd.Name, st.T)
			ok = false
			continue
		}
		out = append(out, types.Field{Name: fd.Name, Type: st})
	}
	return out, ok
}

// IsMatchKind reports whether name is a declared match-kind member.
func (r *Resolver) IsMatchKind(name string) bool {
	for _, m := range r.MatchKinds {
		if m == name {
			return true
		}
	}
	return false
}

// MatchKindType returns the semantic match_kind type covering all declared
// members.
func (r *Resolver) MatchKindType() *types.MatchKind {
	return &types.MatchKind{Members: r.MatchKinds}
}

// Builtins returns the builtin functions bound in the initial Γ:
//
//	mark_to_drop(inout standard_metadata_t): writes only low metadata
//	    fields, so its pc_fn is ⊥;
//	NoAction(): writes nothing, so its pc_fn is ⊤ (callable anywhere).
func (r *Resolver) Builtins() map[string]types.SecType {
	std, _ := r.Defs.Lookup("standard_metadata_t")
	low := r.Lat.Bottom()
	unit := types.SecType{T: types.Unit{}, L: low}
	return map[string]types.SecType{
		"mark_to_drop": {T: &types.Func{
			Params:   []types.Param{{Name: "std_meta", Dir: types.InOut, Type: std}},
			PCFn:     low,
			Ret:      unit,
			IsAction: true,
		}, L: low},
		"NoAction": {T: &types.Func{
			PCFn:     r.Lat.Top(),
			Ret:      unit,
			IsAction: true,
		}, L: low},
	}
}
