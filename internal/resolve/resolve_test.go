package resolve

import (
	"testing"

	"repro/internal/diag"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/token"
	"repro/internal/types"
)

func newTestResolver(t *testing.T) (*Resolver, *diag.List) {
	t.Helper()
	var diags diag.List
	return New(lattice.TwoPoint(), &diags), &diags
}

func TestLabelResolution(t *testing.T) {
	r, diags := newTestResolver(t)
	low := r.Label(pos(), "")
	if low != r.Lat.Bottom() {
		t.Errorf("empty label = %s, want bottom", low)
	}
	high := r.Label(pos(), "high")
	if high.Name() != "high" {
		t.Errorf("high = %s", high)
	}
	_ = r.Label(pos(), "unknownlbl")
	if !diags.HasErrors() {
		t.Error("unknown label not reported")
	}
}

func pos() token.Pos { return token.Pos{File: "t.p4", Line: 1, Col: 1} }

func TestCollectTypeDecls(t *testing.T) {
	prog := parser.MustParse("t.p4", `
typedef bit<32> ip4_t;
typedef <bit<8>, high> sec8_t;
match_kind { range }
header h_t {
    ip4_t addr;
    sec8_t secret;
    <bool, low> flag;
}
struct headers { h_t h; }
control C(inout headers hdr) { apply { } }
`)
	r, diags := newTestResolver(t)
	r.CollectTypeDecls(prog)
	if diags.HasErrors() {
		t.Fatalf("collect: %v", diags.Err())
	}
	// typedef unfolds through Δ.
	st, ok := r.Defs.Lookup("h_t")
	if !ok {
		t.Fatal("h_t not defined")
	}
	h, ok := st.T.(*types.Header)
	if !ok {
		t.Fatalf("h_t is %T", st.T)
	}
	if len(h.Fields) != 3 {
		t.Fatalf("fields = %d", len(h.Fields))
	}
	if !types.Equal(h.Fields[0].Type.T, types.Bit{W: 32}) {
		t.Errorf("addr type = %s, want bit<32> (typedef unfolded)", h.Fields[0].Type.T)
	}
	if h.Fields[1].Type.L.Name() != "high" {
		t.Errorf("secret label = %s; typedef label lost", h.Fields[1].Type.L)
	}
	// match_kind extended with "range" while keeping builtins.
	for _, m := range []string{"exact", "lpm", "ternary", "range"} {
		if !r.IsMatchKind(m) {
			t.Errorf("match kind %q missing", m)
		}
	}
	if r.IsMatchKind("bogus") {
		t.Error("bogus match kind accepted")
	}
}

func TestStandardMetadataBuiltin(t *testing.T) {
	r, _ := newTestResolver(t)
	st, ok := r.Defs.Lookup("standard_metadata_t")
	if !ok {
		t.Fatal("standard_metadata_t not predeclared")
	}
	rec, ok := st.T.(*types.Record)
	if !ok {
		t.Fatalf("standard_metadata_t is %T", st.T)
	}
	if _, ok := types.FieldOf(rec, "egress_spec"); !ok {
		t.Error("no egress_spec field")
	}
	for _, f := range rec.Fields {
		if f.Type.L != r.Lat.Bottom() {
			t.Errorf("metadata field %s not low", f.Name)
		}
	}
}

func TestBuiltins(t *testing.T) {
	r, _ := newTestResolver(t)
	bs := r.Builtins()
	mtd, ok := bs["mark_to_drop"]
	if !ok {
		t.Fatal("no mark_to_drop")
	}
	ft := mtd.T.(*types.Func)
	if ft.PCFn != r.Lat.Bottom() {
		t.Errorf("mark_to_drop pc_fn = %s, want bottom (dropping is observable)", ft.PCFn)
	}
	na := bs["NoAction"].T.(*types.Func)
	if na.PCFn != r.Lat.Top() {
		t.Errorf("NoAction pc_fn = %s, want top (writes nothing)", na.PCFn)
	}
}

func TestAnnotationDistributesOverComposite(t *testing.T) {
	// <hdr_t, high> h raises every scalar leaf to at least high.
	prog := parser.MustParse("t.p4", `
header inner_t {
    <bit<8>, low> a;
    <bit<8>, high> b;
}
typedef <inner_t, high> secret_inner_t;
struct headers { secret_inner_t s; }
control C(inout headers hdr) { apply { } }
`)
	r, diags := newTestResolver(t)
	r.CollectTypeDecls(prog)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	st, _ := r.Defs.Lookup("secret_inner_t")
	h := st.T.(*types.Header)
	for _, f := range h.Fields {
		if f.Type.L.Name() != "high" {
			t.Errorf("field %s label = %s, want high (raised)", f.Name, f.Type.L)
		}
	}
}

func TestUnknownNamedType(t *testing.T) {
	prog := parser.MustParse("t.p4", `
struct headers { mystery_t m; }
control C(inout headers hdr) { apply { } }
`)
	r, diags := newTestResolver(t)
	r.CollectTypeDecls(prog)
	if !diags.HasErrors() {
		t.Error("unknown named type not reported")
	}
}

func TestDuplicateField(t *testing.T) {
	prog := parser.MustParse("t.p4", `
header h_t { bit<8> f; bit<8> f; }
control C(inout standard_metadata_t m) { apply { } }
`)
	r, diags := newTestResolver(t)
	r.CollectTypeDecls(prog)
	if !diags.HasErrors() {
		t.Error("duplicate field not reported")
	}
}

func TestTypeRedefinition(t *testing.T) {
	prog := parser.MustParse("t.p4", `
typedef bit<8> t_t;
typedef bit<16> t_t;
control C(inout standard_metadata_t m) { apply { } }
`)
	r, diags := newTestResolver(t)
	r.CollectTypeDecls(prog)
	if !diags.HasErrors() {
		t.Error("type redefinition not reported")
	}
}

func TestStackResolution(t *testing.T) {
	prog := parser.MustParse("t.p4", `
header h_t { <bit<8>, high> vals[3]; }
struct headers { h_t h; }
control C(inout headers hdr) { apply { } }
`)
	r, diags := newTestResolver(t)
	r.CollectTypeDecls(prog)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	st, _ := r.Defs.Lookup("h_t")
	f := st.T.(*types.Header).Fields[0]
	stack, ok := f.Type.T.(*types.Stack)
	if !ok || stack.Size != 3 {
		t.Fatalf("vals = %s", f.Type)
	}
	if stack.Elem.L.Name() != "high" {
		t.Errorf("element label = %s", stack.Elem.L)
	}
}
