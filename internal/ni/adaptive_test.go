package ni_test

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/ni"
	"repro/internal/parser"
)

const leakSrc = `
header data_t {
    <bit<8>, low> lo;
    <bit<8>, high> hi;
}
struct headers { data_t d; }
control Leak(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.lo = hdr.d.hi;
    }
}
`

const cleanSrc = `
header data_t {
    <bit<8>, low> lo;
    <bit<8>, high> hi;
}
struct headers { data_t d; }
control Clean(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.lo = hdr.d.lo + 8w1;
    }
}
`

// TestRunAdaptiveStopsEarlyOnWitness: a direct leak witnesses in the first
// rounds, so the adaptive run must spend far less than the ceiling.
func TestRunAdaptiveStopsEarlyOnWitness(t *testing.T) {
	e := &ni.Experiment{
		Prog: parser.MustParse("leak.p4", leakSrc),
		Lat:  lattice.TwoPoint(),
	}
	const min, max = 2, 1024
	vs, ran, err := e.RunAdaptive(min, max, 1)
	if err != nil {
		t.Fatalf("RunAdaptive: %v", err)
	}
	if len(vs) == 0 {
		t.Fatal("direct leak produced no witness")
	}
	if ran >= max {
		t.Errorf("adaptive run spent the full ceiling (%d trials) despite an early witness", ran)
	}
	if ran < min {
		t.Errorf("ran %d trials, below the minimum %d", ran, min)
	}
}

// TestRunAdaptiveExhaustsBudgetWhenClean: with no witness to find, the
// escalation must run exactly the ceiling, no more.
func TestRunAdaptiveExhaustsBudgetWhenClean(t *testing.T) {
	e := &ni.Experiment{
		Prog: parser.MustParse("clean.p4", cleanSrc),
		Lat:  lattice.TwoPoint(),
	}
	vs, ran, err := e.RunAdaptive(4, 37, 1)
	if err != nil {
		t.Fatalf("RunAdaptive: %v", err)
	}
	if len(vs) != 0 {
		t.Fatalf("clean program witnessed interference: %v", vs[0])
	}
	if ran != 37 {
		t.Errorf("ran %d trials, want exactly the 37-trial ceiling", ran)
	}
}

// TestRunAdaptiveDegenerateBounds: min clamps to 1 and max clamps up to
// min, so a misconfigured budget still runs at least one trial.
func TestRunAdaptiveDegenerateBounds(t *testing.T) {
	e := &ni.Experiment{
		Prog: parser.MustParse("clean.p4", cleanSrc),
		Lat:  lattice.TwoPoint(),
	}
	_, ran, err := e.RunAdaptive(0, -5, 1)
	if err != nil {
		t.Fatalf("RunAdaptive: %v", err)
	}
	if ran != 1 {
		t.Errorf("ran %d trials, want 1 under degenerate bounds", ran)
	}
}
