package ni_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/ni"
	"repro/internal/parser"
)

// TestSoundnessOnRandomPrograms is the mechanical analogue of the paper's
// Theorem 4.3 quantified over programs: generate random programs in the
// fragment, typecheck them, and for every ACCEPTED program run randomized
// two-run non-interference trials. Any violation would witness a soundness
// bug in the checker or the semantics.
func TestSoundnessOnRandomPrograms(t *testing.T) {
	const (
		programs   = 120
		trialsEach = 25
	)
	lat := lattice.TwoPoint()
	rng := rand.New(rand.NewSource(20220613))
	accepted, rejected := 0, 0
	for i := 0; i < programs; i++ {
		src := gen.Random(rng, gen.DefaultConfig())
		prog, err := parser.Parse("rand.p4", src)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, src)
		}
		res := core.Check(prog, lat)
		if !res.OK {
			rejected++
			// Every rejection must cite a flow-related rule, never an
			// ordinary type error: the generator only emits well-formed
			// base-typed programs.
			for _, d := range res.Diags {
				switch d.Rule {
				case "T-Assign", "T-Call", "T-TblDecl", "T-TblCall",
					"T-VarInit", "T-Return", "T-Exit", "T-Index", "":
				default:
					t.Errorf("program %d: unexpected rule %s: %s\n%s", i, d.Rule, d.Msg, src)
				}
			}
			continue
		}
		accepted++
		e := &ni.Experiment{Prog: prog, Lat: lat}
		vs, err := e.Run(trialsEach, int64(i)*31+7)
		if err != nil {
			t.Fatalf("program %d: run error: %v\n%s", i, err, src)
		}
		if len(vs) != 0 {
			t.Fatalf("SOUNDNESS VIOLATION on accepted program %d: %s\n%s", i, vs[0], src)
		}
	}
	if accepted == 0 {
		t.Error("generator produced no accepted programs; fuzzing is vacuous")
	}
	if rejected == 0 {
		t.Error("generator produced no rejected programs; fuzzing is one-sided")
	}
	t.Logf("random programs: %d accepted, %d rejected", accepted, rejected)
}

// TestRejectedProgramsOftenInterfere samples rejected random programs and
// checks that the harness finds real witnesses for a good fraction of
// them — evidence that the checker's rejections are not vacuous. (Not all
// rejected programs interfere: IFC is sound, not complete.)
func TestRejectedProgramsOftenInterfere(t *testing.T) {
	lat := lattice.TwoPoint()
	rng := rand.New(rand.NewSource(99))
	rejected, witnessed := 0, 0
	for i := 0; i < 200 && rejected < 40; i++ {
		src := gen.Random(rng, gen.DefaultConfig())
		prog, err := parser.Parse("rand.p4", src)
		if err != nil {
			t.Fatal(err)
		}
		if core.Check(prog, lat).OK {
			continue
		}
		rejected++
		e := &ni.Experiment{Prog: prog, Lat: lat}
		vs, err := e.Run(40, int64(i))
		if err != nil {
			t.Fatalf("program %d: %v\n%s", i, err, src)
		}
		if len(vs) > 0 {
			witnessed++
		}
	}
	if rejected == 0 {
		t.Skip("no rejected programs sampled")
	}
	t.Logf("rejected programs with concrete interference witness: %d/%d", witnessed, rejected)
	if witnessed == 0 {
		t.Error("no rejected program had an interference witness; harness may be blind")
	}
}
