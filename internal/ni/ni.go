// Package ni empirically validates the paper's soundness theorem
// (Theorem 4.3: well-typed programs satisfy non-interference) by running
// programs twice on below-observer-equivalent inputs and comparing the
// observable parts of the outputs.
//
// A trial draws a random input state for the control's parameters, builds a
// second state that agrees on every field whose label flows to the observer
// (χ ⊑ l) but is freshly random elsewhere, runs the program on both states
// against the same control plane (Definition C.8 fixes the entries across
// the two runs), and then checks:
//
//   - both runs produce the same signal form (cont/exit/return), and
//   - every observable field of every inout parameter is equal.
//
// For well-typed programs no trial may fail; for the paper's buggy
// programs the harness finds witnesses of interference, which is how the
// tests demonstrate that the rejected programs are genuinely insecure
// rather than false positives.
package ni

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/controlplane"
	"repro/internal/diag"
	"repro/internal/eval"
	"repro/internal/lattice"
	"repro/internal/resolve"
	"repro/internal/types"
)

// Experiment configures a non-interference experiment.
type Experiment struct {
	// Prog is the (parsed) program under test.
	Prog *ast.Program
	// Lat is the security lattice the program is annotated against.
	Lat lattice.Lattice
	// Control names the control block to run ("" = first).
	Control string
	// Observer is the label l of the adversary: fields with χ ⊑ l are
	// observable. Zero means the lattice bottom.
	Observer lattice.Label
	// CP holds the control-plane entries, shared by both runs. Nil means
	// an empty control plane (every table application misses).
	CP *controlplane.ControlPlane
	// FixInputs, if non-nil, adjusts the randomly drawn inputs of each
	// trial's first run before the second run's inputs are derived — e.g.
	// to steer execution into the interesting branch of a case study
	// (observable fields stay equal across the two runs; unobservable
	// fields are still freshly randomized for the second run).
	FixInputs func(map[string]eval.Value)
	// Packets is the number of packets per trial (default 1). With
	// Packets > 1 each run pushes the whole sequence through ONE
	// interpreter, so register state persists across packets — the
	// multi-packet adversary of the paper's Section 7. The two sequences
	// agree on every observable input of every packet; outputs are
	// compared packet by packet.
	Packets int
}

// Violation is a witness of interference found by a trial.
type Violation struct {
	Trial int
	// Where describes the differing observable output (parameter and
	// field path), or "signal" for differing signal forms.
	Where string
	A, B  string // the differing values (or signals), rendered
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("trial %d: observable output %s differs: %s vs %s", v.Trial, v.Where, v.A, v.B)
}

// Run performs trials randomized from seed and returns all violations
// found (empty for a non-interfering program) plus any runtime error.
func (e *Experiment) Run(trials int, seed int64) ([]Violation, error) {
	out, _, err := e.RunN(trials, seed)
	return out, err
}

// RunN is Run, additionally reporting how many trials actually started —
// fewer than requested when a runtime error aborts the loop, which keeps
// trial-budget accounting exact.
func (e *Experiment) RunN(trials int, seed int64) ([]Violation, int, error) {
	rng := rand.New(rand.NewSource(seed))
	obs := e.Observer
	if obs.IsZero() {
		obs = e.Lat.Bottom()
	}
	ctrl := e.findControl()
	if ctrl == nil {
		return nil, 0, fmt.Errorf("ni: control %q not found", e.Control)
	}
	paramTypes, err := e.paramTypes(ctrl)
	if err != nil {
		return nil, 0, err
	}
	packets := e.Packets
	if packets < 1 {
		packets = 1
	}
	var out []Violation
	for t := 0; t < trials; t++ {
		// Draw the packet sequences: every packet's inputs for run A,
		// with run B's derived to agree on all observable fields.
		seqA := make([]map[string]eval.Value, packets)
		seqB := make([]map[string]eval.Value, packets)
		for k := 0; k < packets; k++ {
			inA := map[string]eval.Value{}
			inB := map[string]eval.Value{}
			for _, p := range ctrl.Params {
				inA[p.Name] = eval.Random(paramTypes[p.Name].T, rng)
			}
			if e.FixInputs != nil {
				e.FixInputs(inA)
			}
			for _, p := range ctrl.Params {
				pt := paramTypes[p.Name]
				inB[p.Name] = randomizeAbove(eval.Copy(inA[p.Name]), pt, obs, e.Lat, rng)
			}
			seqA[k] = inA
			seqB[k] = inB
		}
		cp := e.CP
		if cp == nil {
			cp = controlplane.New()
		}
		outA, sigA, err := runSequence(e.Prog, ctrl.Name, cp.Clone(), seqA)
		if err != nil {
			return out, t + 1, fmt.Errorf("ni: trial %d run A: %v", t, err)
		}
		outB, sigB, err := runSequence(e.Prog, ctrl.Name, cp.Clone(), seqB)
		if err != nil {
			return out, t + 1, fmt.Errorf("ni: trial %d run B: %v", t, err)
		}
		violated := false
		for k := 0; k < packets && !violated; k++ {
			if sigA[k].Kind != sigB[k].Kind {
				out = append(out, Violation{Trial: t,
					Where: fmt.Sprintf("packet %d signal", k),
					A:     sigA[k].String(), B: sigB[k].String()})
				violated = true
				break
			}
			for _, p := range ctrl.Params {
				pt := paramTypes[p.Name]
				where := p.Name
				if packets > 1 {
					where = fmt.Sprintf("packet %d: %s", k, p.Name)
				}
				if v, ok := diffObservable(where, outA[k][p.Name], outB[k][p.Name], pt, obs, e.Lat); !ok {
					v.Trial = t
					out = append(out, v)
					violated = true
					break
				}
			}
		}
	}
	return out, trials, nil
}

// RunAdaptive performs trials in escalating rounds — min trials first,
// then doubling round sizes until max total trials have run — and stops at
// the first round that yields a witness (or a runtime error). It returns
// the violations found, the number of trials actually executed, and any
// runtime error.
//
// The point is budget shaping for fuzz campaigns: a program likely to
// interfere (e.g. one the IFC checker rejected) usually witnesses within
// the first rounds and costs barely more than min, while a genuinely
// non-interfering program pays max once and earns a much stronger
// "no witness found" claim than a flat small budget would. Round r draws
// its randomness from seed + trialsSoFar, so the trial sequence is
// deterministic in (min, max, seed) and disjoint rounds never repeat a
// trial's random stream.
func (e *Experiment) RunAdaptive(min, max int, seed int64) ([]Violation, int, error) {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	ran := 0
	round := min
	for ran < max {
		if round > max-ran {
			round = max - ran
		}
		out, executed, err := e.RunN(round, seed+int64(ran))
		ran += executed
		if len(out) > 0 || err != nil {
			return out, ran, err
		}
		round *= 2
	}
	return nil, ran, nil
}

// runSequence pushes a packet sequence through one interpreter so that
// register state persists, returning per-packet outputs and signals.
func runSequence(prog *ast.Program, control string, cp *controlplane.ControlPlane, seq []map[string]eval.Value) ([]map[string]eval.Value, []eval.Signal, error) {
	in, err := eval.New(prog, cp)
	if err != nil {
		return nil, nil, err
	}
	outs := make([]map[string]eval.Value, len(seq))
	sigs := make([]eval.Signal, len(seq))
	for k, inputs := range seq {
		out, sig, err := in.RunControl(control, inputs)
		if err != nil {
			return nil, nil, fmt.Errorf("packet %d: %v", k, err)
		}
		outs[k] = out
		sigs[k] = sig
	}
	return outs, sigs, nil
}

func (e *Experiment) findControl() *ast.ControlDecl {
	for _, c := range e.Prog.Controls {
		if c.Name == e.Control || e.Control == "" {
			return c
		}
	}
	return nil
}

// paramTypes resolves the control's parameter types against the real
// lattice so labels are faithful.
func (e *Experiment) paramTypes(ctrl *ast.ControlDecl) (map[string]types.SecType, error) {
	var diags diag.List
	res := resolve.New(e.Lat, &diags)
	res.CollectTypeDecls(e.Prog)
	out := map[string]types.SecType{}
	for _, p := range ctrl.Params {
		out[p.Name] = res.SecType(p.Type)
	}
	if err := diags.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// randomizeAbove returns v with every scalar leaf whose label does NOT
// flow to obs replaced by a fresh random value; observable leaves are
// preserved, so the result is below-obs-equivalent to v.
func randomizeAbove(v eval.Value, t types.SecType, obs lattice.Label, lat lattice.Lattice, rng *rand.Rand) eval.Value {
	if types.IsScalar(t.T) {
		if lat.Leq(t.L, obs) {
			return v
		}
		return eval.Random(t.T, rng)
	}
	switch tt := t.T.(type) {
	case *types.Record:
		rv, ok := v.(*eval.RecordVal)
		if !ok {
			return v
		}
		fs := make([]eval.NamedValue, len(rv.Fields))
		copy(fs, rv.Fields)
		for i := range fs {
			if f, ok := types.FieldOf(tt, fs[i].Name); ok {
				fs[i].Val = randomizeAbove(fs[i].Val, f.Type, obs, lat, rng)
			}
		}
		return &eval.RecordVal{Fields: fs}
	case *types.Header:
		hv, ok := v.(*eval.HeaderVal)
		if !ok {
			return v
		}
		fs := make([]eval.NamedValue, len(hv.Fields))
		copy(fs, hv.Fields)
		for i := range fs {
			if f, ok := types.FieldOf(tt, fs[i].Name); ok {
				fs[i].Val = randomizeAbove(fs[i].Val, f.Type, obs, lat, rng)
			}
		}
		return &eval.HeaderVal{Valid: hv.Valid, Fields: fs}
	case *types.Stack:
		sv, ok := v.(*eval.StackVal)
		if !ok {
			return v
		}
		es := make([]eval.Value, len(sv.Elems))
		for i, el := range sv.Elems {
			es[i] = randomizeAbove(el, tt.Elem, obs, lat, rng)
		}
		return &eval.StackVal{Elems: es}
	default:
		return v
	}
}

// diffObservable compares the observable (χ ⊑ obs) scalar leaves of a and
// b; on a mismatch it returns the witness and false.
func diffObservable(path string, a, b eval.Value, t types.SecType, obs lattice.Label, lat lattice.Lattice) (Violation, bool) {
	if types.IsScalar(t.T) {
		if !lat.Leq(t.L, obs) {
			return Violation{}, true
		}
		if !eval.ValueEqual(a, b) {
			return Violation{Where: path, A: a.String(), B: b.String()}, false
		}
		return Violation{}, true
	}
	switch tt := t.T.(type) {
	case *types.Record:
		ra, ok1 := a.(*eval.RecordVal)
		rb, ok2 := b.(*eval.RecordVal)
		if !ok1 || !ok2 {
			return Violation{}, true
		}
		for i := range ra.Fields {
			f, ok := types.FieldOf(tt, ra.Fields[i].Name)
			if !ok || i >= len(rb.Fields) {
				continue
			}
			if v, ok := diffObservable(path+"."+ra.Fields[i].Name, ra.Fields[i].Val, rb.Fields[i].Val, f.Type, obs, lat); !ok {
				return v, false
			}
		}
		return Violation{}, true
	case *types.Header:
		ha, ok1 := a.(*eval.HeaderVal)
		hb, ok2 := b.(*eval.HeaderVal)
		if !ok1 || !ok2 {
			return Violation{}, true
		}
		for i := range ha.Fields {
			f, ok := types.FieldOf(tt, ha.Fields[i].Name)
			if !ok || i >= len(hb.Fields) {
				continue
			}
			if v, ok := diffObservable(path+"."+ha.Fields[i].Name, ha.Fields[i].Val, hb.Fields[i].Val, f.Type, obs, lat); !ok {
				return v, false
			}
		}
		return Violation{}, true
	case *types.Stack:
		sa, ok1 := a.(*eval.StackVal)
		sb, ok2 := b.(*eval.StackVal)
		if !ok1 || !ok2 || len(sa.Elems) != len(sb.Elems) {
			return Violation{}, true
		}
		for i := range sa.Elems {
			if v, ok := diffObservable(fmt.Sprintf("%s[%d]", path, i), sa.Elems[i], sb.Elems[i], tt.Elem, obs, lat); !ok {
				return v, false
			}
		}
		return Violation{}, true
	default:
		return Violation{}, true
	}
}
