// Package ni empirically validates the paper's soundness theorem
// (Theorem 4.3: well-typed programs satisfy non-interference) by running
// programs twice on below-observer-equivalent inputs and comparing the
// observable parts of the outputs.
//
// A trial draws a random input state for the control's parameters, builds a
// second state that agrees on every field whose label flows to the observer
// (χ ⊑ l) but is freshly random elsewhere, runs the program on both states
// against the same control plane (Definition C.8 fixes the entries across
// the two runs), and then checks:
//
//   - both runs produce the same signal form (cont/exit/return), and
//   - every observable field of every inout parameter is equal.
//
// For well-typed programs no trial may fail; for the paper's buggy
// programs the harness finds witnesses of interference, which is how the
// tests demonstrate that the rejected programs are genuinely insecure
// rather than false positives.
package ni

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/controlplane"
	"repro/internal/diag"
	"repro/internal/eval"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/resolve"
	"repro/internal/types"
)

// Experiment configures a non-interference experiment.
type Experiment struct {
	// Prog is the (parsed) program under test.
	Prog *ast.Program
	// Lat is the security lattice the program is annotated against.
	Lat lattice.Lattice
	// Control names the control block to run ("" = first).
	Control string
	// Observer is the label l of the adversary: fields with χ ⊑ l are
	// observable. Zero means the lattice bottom.
	Observer lattice.Label
	// CP holds the control-plane entries, shared by both runs. Nil means
	// an empty control plane (every table application misses).
	CP *controlplane.ControlPlane
	// FixInputs, if non-nil, adjusts the randomly drawn inputs of each
	// trial's first run before the second run's inputs are derived — e.g.
	// to steer execution into the interesting branch of a case study
	// (observable fields stay equal across the two runs; unobservable
	// fields are still freshly randomized for the second run).
	FixInputs func(map[string]eval.Value)
	// Packets is the number of packets per trial (default 1). With
	// Packets > 1 each run pushes the whole sequence through ONE
	// interpreter, so register state persists across packets — the
	// multi-packet adversary of the paper's Section 7. The two sequences
	// agree on every observable input of every packet; outputs are
	// compared packet by packet.
	Packets int
	// Code is the compiled form of Prog. When nil (and Interp is unset)
	// the experiment compiles Prog lazily on first RunN and keeps the
	// result, so all trials, observer levels, and packets of this
	// Experiment share one compilation. Callers running many experiments
	// over the same program (the pipeline's observer sweep) should
	// eval.Compile once and set Code on each.
	Code *eval.Compiled
	// Interp forces the tree-walking interpreter, disabling compilation.
	// The two engines are observationally identical (same outputs,
	// signals, error strings, and rng stream); this exists for
	// differential testing and benchmarking.
	Interp bool
	// Metrics, when non-nil, receives ni_trials_total (trials executed),
	// ni_witnesses_total (violations found), and
	// ni_escalation_rounds_total (adaptive rounds beyond the first).
	Metrics *metrics.Registry

	triedCompile bool
	machA, machB *eval.Machine
	machCode     *eval.Compiled
}

// engine returns the compiled program to run trials on, compiling lazily
// on first use. Nil means the tree-walking interpreter: Interp is set, or
// compilation failed (in which case the interpreter reproduces the
// program's load-time error, keeping diagnostics identical).
func (e *Experiment) engine() *eval.Compiled {
	if e.Interp {
		return nil
	}
	if e.Code == nil && !e.triedCompile {
		e.triedCompile = true
		if code, err := eval.Compile(e.Prog); err == nil {
			e.Code = code
		}
	}
	return e.Code
}

// machines returns the experiment's two reusable machines (run A and
// run B), rebound to a fresh clone of the experiment's control plane.
// Both runs of a trial must see the same entries (Definition C.8), so one
// clone is shared: machine runs only read the control plane.
func (e *Experiment) machines(code *eval.Compiled) (*eval.Machine, *eval.Machine) {
	if e.machCode != code {
		e.machA = eval.NewMachine(code, nil)
		e.machB = eval.NewMachine(code, nil)
		e.machCode = code
	}
	cp := e.CP
	if cp == nil {
		cp = controlplane.New()
	}
	cl := cp.Clone()
	e.machA.SetControlPlane(cl)
	e.machB.SetControlPlane(cl)
	return e.machA, e.machB
}

// Violation is a witness of interference found by a trial.
type Violation struct {
	Trial int
	// Where describes the differing observable output (parameter and
	// field path), or "signal" for differing signal forms.
	Where string
	A, B  string // the differing values (or signals), rendered
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("trial %d: observable output %s differs: %s vs %s", v.Trial, v.Where, v.A, v.B)
}

// Run performs trials randomized from seed and returns all violations
// found (empty for a non-interfering program) plus any runtime error.
func (e *Experiment) Run(trials int, seed int64) ([]Violation, error) {
	out, _, err := e.RunN(trials, seed)
	return out, err
}

// RunN is Run, additionally reporting how many trials actually started —
// fewer than requested when a runtime error aborts the loop, which keeps
// trial-budget accounting exact.
func (e *Experiment) RunN(trials int, seed int64) ([]Violation, int, error) {
	out, ran, err := e.runN(trials, seed)
	if e.Metrics != nil {
		e.Metrics.Counter("ni_trials_total").Add(int64(ran))
		e.Metrics.Counter("ni_witnesses_total").Add(int64(len(out)))
	}
	return out, ran, err
}

func (e *Experiment) runN(trials int, seed int64) ([]Violation, int, error) {
	// BatchRand produces the bit-identical stream to
	// rand.New(rand.NewSource(seed)), so the three engine paths below (and
	// any recorded corpus seed) draw exactly the same trials.
	rng := eval.NewBatchRand(seed)
	obs := e.Observer
	if obs.IsZero() {
		obs = e.Lat.Bottom()
	}
	ctrl := e.findControl()
	if ctrl == nil {
		return nil, 0, fmt.Errorf("ni: control %q not found", e.Control)
	}
	paramTypes, err := e.paramTypes(ctrl)
	if err != nil {
		return nil, 0, err
	}
	packets := e.Packets
	if packets < 1 {
		packets = 1
	}
	if code := e.engine(); code != nil {
		if e.FixInputs == nil && uniqueParamNames(ctrl) {
			return e.runCompiledFast(code, ctrl, paramTypes, obs, packets, trials, rng)
		}
		return e.runCompiledMap(code, ctrl, paramTypes, obs, packets, trials, rng)
	}
	var out []Violation
	for t := 0; t < trials; t++ {
		// Draw the packet sequences: every packet's inputs for run A,
		// with run B's derived to agree on all observable fields.
		seqA := make([]map[string]eval.Value, packets)
		seqB := make([]map[string]eval.Value, packets)
		for k := 0; k < packets; k++ {
			inA := map[string]eval.Value{}
			inB := map[string]eval.Value{}
			for _, p := range ctrl.Params {
				inA[p.Name] = eval.RandomFrom(paramTypes[p.Name].T, rng)
			}
			if e.FixInputs != nil {
				e.FixInputs(inA)
			}
			for _, p := range ctrl.Params {
				pt := paramTypes[p.Name]
				inB[p.Name] = randomizeAbove(eval.Copy(inA[p.Name]), pt, obs, e.Lat, rng)
			}
			seqA[k] = inA
			seqB[k] = inB
		}
		cp := e.CP
		if cp == nil {
			cp = controlplane.New()
		}
		outA, sigA, err := runSequence(e.Prog, ctrl.Name, cp.Clone(), seqA)
		if err != nil {
			return out, t + 1, fmt.Errorf("ni: trial %d run A: %v", t, err)
		}
		outB, sigB, err := runSequence(e.Prog, ctrl.Name, cp.Clone(), seqB)
		if err != nil {
			return out, t + 1, fmt.Errorf("ni: trial %d run B: %v", t, err)
		}
		violated := false
		for k := 0; k < packets && !violated; k++ {
			if sigA[k].Kind != sigB[k].Kind {
				out = append(out, Violation{Trial: t,
					Where: fmt.Sprintf("packet %d signal", k),
					A:     sigA[k].String(), B: sigB[k].String()})
				violated = true
				break
			}
			for _, p := range ctrl.Params {
				pt := paramTypes[p.Name]
				where := p.Name
				if packets > 1 {
					where = fmt.Sprintf("packet %d: %s", k, p.Name)
				}
				if v, ok := diffObservable(where, outA[k][p.Name], outB[k][p.Name], pt, obs, e.Lat); !ok {
					v.Trial = t
					out = append(out, v)
					violated = true
					break
				}
			}
		}
	}
	return out, trials, nil
}

// RunAdaptive performs trials in escalating rounds — min trials first,
// then doubling round sizes until max total trials have run — and stops at
// the first round that yields a witness (or a runtime error). It returns
// the violations found, the number of trials actually executed, and any
// runtime error.
//
// The point is budget shaping for fuzz campaigns: a program likely to
// interfere (e.g. one the IFC checker rejected) usually witnesses within
// the first rounds and costs barely more than min, while a genuinely
// non-interfering program pays max once and earns a much stronger
// "no witness found" claim than a flat small budget would. Round r draws
// its randomness from seed + trialsSoFar, so the trial sequence is
// deterministic in (min, max, seed) and disjoint rounds never repeat a
// trial's random stream.
func (e *Experiment) RunAdaptive(min, max int, seed int64) ([]Violation, int, error) {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	ran := 0
	round := min
	rounds := 0
	for ran < max {
		if round > max-ran {
			round = max - ran
		}
		rounds++
		if rounds > 1 && e.Metrics != nil {
			e.Metrics.Counter("ni_escalation_rounds_total").Inc()
		}
		out, executed, err := e.RunN(round, seed+int64(ran))
		ran += executed
		if len(out) > 0 || err != nil {
			return out, ran, err
		}
		round *= 2
	}
	return nil, ran, nil
}

// runSequence pushes a packet sequence through one interpreter so that
// register state persists, returning per-packet outputs and signals.
func runSequence(prog *ast.Program, control string, cp *controlplane.ControlPlane, seq []map[string]eval.Value) ([]map[string]eval.Value, []eval.Signal, error) {
	in, err := eval.New(prog, cp)
	if err != nil {
		return nil, nil, err
	}
	outs := make([]map[string]eval.Value, len(seq))
	sigs := make([]eval.Signal, len(seq))
	for k, inputs := range seq {
		out, sig, err := in.RunControl(control, inputs)
		if err != nil {
			return nil, nil, fmt.Errorf("packet %d: %v", k, err)
		}
		outs[k] = out
		sigs[k] = sig
	}
	return outs, sigs, nil
}

// uniqueParamNames reports whether every control parameter name is
// distinct. The slice-indexed fast path identifies parameters by position;
// duplicate names have map semantics (the last declaration wins for both
// inputs and outputs), which only the map paths reproduce.
func uniqueParamNames(ctrl *ast.ControlDecl) bool {
	for i := range ctrl.Params {
		for j := i + 1; j < len(ctrl.Params); j++ {
			if ctrl.Params[i].Name == ctrl.Params[j].Name {
				return false
			}
		}
	}
	return true
}

// runCompiledFast is the NI hot path: compiled execution with
// slice-indexed parameters — no per-trial interpreter construction, no
// map-keyed input/output marshalling, and no defensive value copies
// (values are immutable trees and machines never mutate them). The rng
// draw order, violation reporting, and error wrapping are identical to the
// tree-walking path.
func (e *Experiment) runCompiledFast(code *eval.Compiled, ctrl *ast.ControlDecl, paramTypes map[string]types.SecType, obs lattice.Label, packets, trials int, rng eval.Rng) ([]Violation, int, error) {
	idx := code.ControlIndex(e.Control)
	machA, machB := e.machines(code)
	n := len(ctrl.Params)
	pts := make([]types.SecType, n)
	samplers := make([]sampler, n)
	for i, p := range ctrl.Params {
		pts[i] = paramTypes[p.Name]
		samplers[i] = compileSampler(pts[i], obs, e.Lat)
	}
	// Trial input sequences, reused across trials (values are overwritten
	// wholesale each trial).
	seqA := make([][]eval.Value, packets)
	seqB := make([][]eval.Value, packets)
	for k := range seqA {
		seqA[k] = make([]eval.Value, n)
		seqB[k] = make([]eval.Value, n)
	}
	outsA := make([][]eval.Value, packets)
	outsB := make([][]eval.Value, packets)
	sigsA := make([]eval.Signal, packets)
	sigsB := make([]eval.Signal, packets)
	var out []Violation
	for t := 0; t < trials; t++ {
		for k := 0; k < packets; k++ {
			inA, inB := seqA[k], seqB[k]
			for i := range samplers {
				inA[i] = samplers[i].draw(rng)
			}
			for i := range samplers {
				inB[i] = samplers[i].vary(inA[i], rng)
			}
		}
		if err := runMachineSeq(machA, idx, seqA, outsA, sigsA); err != nil {
			return out, t + 1, fmt.Errorf("ni: trial %d run A: %v", t, err)
		}
		if err := runMachineSeq(machB, idx, seqB, outsB, sigsB); err != nil {
			return out, t + 1, fmt.Errorf("ni: trial %d run B: %v", t, err)
		}
		violated := false
		for k := 0; k < packets && !violated; k++ {
			if sigsA[k].Kind != sigsB[k].Kind {
				out = append(out, Violation{Trial: t,
					Where: fmt.Sprintf("packet %d signal", k),
					A:     sigsA[k].String(), B: sigsB[k].String()})
				violated = true
				break
			}
			for i, p := range ctrl.Params {
				if v, ok := samplers[i].diff(outsA[k][i], outsB[k][i]); !ok {
					if packets > 1 {
						v.Where = fmt.Sprintf("packet %d: %s%s", k, p.Name, v.Where)
					} else {
						v.Where = p.Name + v.Where
					}
					v.Trial = t
					out = append(out, v)
					violated = true
					break
				}
			}
		}
	}
	return out, trials, nil
}

// runMachineSeq pushes one packet sequence through a reset machine,
// filling outs and sigs. For single-packet sequences the outputs alias the
// machine's control frame (valid until its next run — one trial); longer
// sequences copy the output window per packet, since the frame is
// overwritten by the next packet.
func runMachineSeq(m *eval.Machine, idx int, seq, outs [][]eval.Value, sigs []eval.Signal) error {
	m.Reset()
	for k, inputs := range seq {
		o, sig, err := m.RunIndexed(idx, inputs)
		if err != nil {
			return fmt.Errorf("packet %d: %v", k, err)
		}
		if len(seq) > 1 {
			cp := make([]eval.Value, len(o))
			copy(cp, o)
			o = cp
		}
		outs[k] = o
		sigs[k] = sig
	}
	return nil
}

// runCompiledMap is the compiled engine behind the map-keyed trial shape —
// used when FixInputs needs a map to edit or when duplicate parameter
// names demand map semantics. Per-trial work matches the interpreter path
// minus the interpreter itself.
func (e *Experiment) runCompiledMap(code *eval.Compiled, ctrl *ast.ControlDecl, paramTypes map[string]types.SecType, obs lattice.Label, packets, trials int, rng eval.Rng) ([]Violation, int, error) {
	machA, machB := e.machines(code)
	var out []Violation
	for t := 0; t < trials; t++ {
		seqA := make([]map[string]eval.Value, packets)
		seqB := make([]map[string]eval.Value, packets)
		for k := 0; k < packets; k++ {
			inA := map[string]eval.Value{}
			inB := map[string]eval.Value{}
			for _, p := range ctrl.Params {
				inA[p.Name] = eval.RandomFrom(paramTypes[p.Name].T, rng)
			}
			if e.FixInputs != nil {
				e.FixInputs(inA)
			}
			for _, p := range ctrl.Params {
				pt := paramTypes[p.Name]
				inB[p.Name] = randomizeAbove(eval.Copy(inA[p.Name]), pt, obs, e.Lat, rng)
			}
			seqA[k] = inA
			seqB[k] = inB
		}
		outA, sigA, err := runMachineMapSeq(machA, ctrl.Name, seqA)
		if err != nil {
			return out, t + 1, fmt.Errorf("ni: trial %d run A: %v", t, err)
		}
		outB, sigB, err := runMachineMapSeq(machB, ctrl.Name, seqB)
		if err != nil {
			return out, t + 1, fmt.Errorf("ni: trial %d run B: %v", t, err)
		}
		violated := false
		for k := 0; k < packets && !violated; k++ {
			if sigA[k].Kind != sigB[k].Kind {
				out = append(out, Violation{Trial: t,
					Where: fmt.Sprintf("packet %d signal", k),
					A:     sigA[k].String(), B: sigB[k].String()})
				violated = true
				break
			}
			for _, p := range ctrl.Params {
				pt := paramTypes[p.Name]
				where := p.Name
				if packets > 1 {
					where = fmt.Sprintf("packet %d: %s", k, p.Name)
				}
				if v, ok := diffObservable(where, outA[k][p.Name], outB[k][p.Name], pt, obs, e.Lat); !ok {
					v.Trial = t
					out = append(out, v)
					violated = true
					break
				}
			}
		}
	}
	return out, trials, nil
}

// runMachineMapSeq is runSequence on a reset machine.
func runMachineMapSeq(m *eval.Machine, control string, seq []map[string]eval.Value) ([]map[string]eval.Value, []eval.Signal, error) {
	m.Reset()
	outs := make([]map[string]eval.Value, len(seq))
	sigs := make([]eval.Signal, len(seq))
	for k, inputs := range seq {
		out, sig, err := m.RunControl(control, inputs)
		if err != nil {
			return nil, nil, fmt.Errorf("packet %d: %v", k, err)
		}
		outs[k] = out
		sigs[k] = sig
	}
	return outs, sigs, nil
}

func (e *Experiment) findControl() *ast.ControlDecl {
	for _, c := range e.Prog.Controls {
		if c.Name == e.Control || e.Control == "" {
			return c
		}
	}
	return nil
}

// paramTypes resolves the control's parameter types against the real
// lattice so labels are faithful.
func (e *Experiment) paramTypes(ctrl *ast.ControlDecl) (map[string]types.SecType, error) {
	var diags diag.List
	res := resolve.New(e.Lat, &diags)
	res.CollectTypeDecls(e.Prog)
	out := map[string]types.SecType{}
	for _, p := range ctrl.Params {
		out[p.Name] = res.SecType(p.Type)
	}
	if err := diags.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// sampler is a per-parameter trial plan with the type walk, field lookups,
// and lattice queries of RandomFrom / randomizeAbove / diffObservable
// resolved at experiment setup: draw builds a fresh random input (same rng
// consumption as eval.RandomFrom), vary is randomizeAbove (same draws),
// and diff is diffObservable with lazily built witness paths. Only the
// indexed fast path uses samplers — its values are always sampler-built,
// so positional field access is safe; the map path keeps the generic
// walks since FixInputs may reshape values arbitrarily.
type sampler struct {
	draw func(rng eval.Rng) eval.Value
	vary func(v eval.Value, rng eval.Rng) eval.Value
	diff func(a, b eval.Value) (Violation, bool)
}

func compileSampler(t types.SecType, obs lattice.Label, lat lattice.Lattice) sampler {
	if types.IsScalar(t.T) {
		tt := t.T
		s := sampler{draw: func(rng eval.Rng) eval.Value { return eval.RandomFrom(tt, rng) }}
		if lat.Leq(t.L, obs) {
			s.vary = func(v eval.Value, _ eval.Rng) eval.Value { return v }
			s.diff = func(a, b eval.Value) (Violation, bool) {
				if !eval.ValueEqual(a, b) {
					return Violation{A: a.String(), B: b.String()}, false
				}
				return Violation{}, true
			}
		} else {
			s.vary = func(_ eval.Value, rng eval.Rng) eval.Value { return eval.RandomFrom(tt, rng) }
			s.diff = func(a, b eval.Value) (Violation, bool) { return Violation{}, true }
		}
		return s
	}
	switch tt := t.T.(type) {
	case *types.Record:
		names, subs := fieldSamplers(tt.Fields, obs, lat)
		return sampler{
			draw: func(rng eval.Rng) eval.Value {
				fs := make([]eval.NamedValue, len(subs))
				for i := range subs {
					fs[i] = eval.NamedValue{Name: names[i], Val: subs[i].draw(rng)}
				}
				return &eval.RecordVal{Fields: fs}
			},
			vary: func(v eval.Value, rng eval.Rng) eval.Value {
				rv, ok := v.(*eval.RecordVal)
				if !ok || len(rv.Fields) != len(subs) {
					return randomizeAbove(v, t, obs, lat, rng)
				}
				fs := make([]eval.NamedValue, len(subs))
				for i := range subs {
					fs[i] = eval.NamedValue{Name: names[i], Val: subs[i].vary(rv.Fields[i].Val, rng)}
				}
				return &eval.RecordVal{Fields: fs}
			},
			diff: func(a, b eval.Value) (Violation, bool) {
				ra, ok1 := a.(*eval.RecordVal)
				rb, ok2 := b.(*eval.RecordVal)
				if !ok1 || !ok2 || len(ra.Fields) != len(subs) || len(rb.Fields) != len(subs) {
					return diffObs(a, b, t, obs, lat)
				}
				for i := range subs {
					if v, ok := subs[i].diff(ra.Fields[i].Val, rb.Fields[i].Val); !ok {
						v.Where = "." + names[i] + v.Where
						return v, false
					}
				}
				return Violation{}, true
			},
		}
	case *types.Header:
		names, subs := fieldSamplers(tt.Fields, obs, lat)
		return sampler{
			draw: func(rng eval.Rng) eval.Value {
				fs := make([]eval.NamedValue, len(subs))
				for i := range subs {
					fs[i] = eval.NamedValue{Name: names[i], Val: subs[i].draw(rng)}
				}
				return &eval.HeaderVal{Valid: true, Fields: fs}
			},
			vary: func(v eval.Value, rng eval.Rng) eval.Value {
				hv, ok := v.(*eval.HeaderVal)
				if !ok || len(hv.Fields) != len(subs) {
					return randomizeAbove(v, t, obs, lat, rng)
				}
				fs := make([]eval.NamedValue, len(subs))
				for i := range subs {
					fs[i] = eval.NamedValue{Name: names[i], Val: subs[i].vary(hv.Fields[i].Val, rng)}
				}
				return &eval.HeaderVal{Valid: hv.Valid, Fields: fs}
			},
			diff: func(a, b eval.Value) (Violation, bool) {
				ha, ok1 := a.(*eval.HeaderVal)
				hb, ok2 := b.(*eval.HeaderVal)
				if !ok1 || !ok2 || len(ha.Fields) != len(subs) || len(hb.Fields) != len(subs) {
					return diffObs(a, b, t, obs, lat)
				}
				for i := range subs {
					if v, ok := subs[i].diff(ha.Fields[i].Val, hb.Fields[i].Val); !ok {
						v.Where = "." + names[i] + v.Where
						return v, false
					}
				}
				return Violation{}, true
			},
		}
	case *types.Stack:
		el := compileSampler(tt.Elem, obs, lat)
		size := tt.Size
		return sampler{
			draw: func(rng eval.Rng) eval.Value {
				es := make([]eval.Value, size)
				for i := range es {
					es[i] = el.draw(rng)
				}
				return &eval.StackVal{Elems: es}
			},
			vary: func(v eval.Value, rng eval.Rng) eval.Value {
				sv, ok := v.(*eval.StackVal)
				if !ok {
					return randomizeAbove(v, t, obs, lat, rng)
				}
				es := make([]eval.Value, len(sv.Elems))
				for i := range es {
					es[i] = el.vary(sv.Elems[i], rng)
				}
				return &eval.StackVal{Elems: es}
			},
			diff: func(a, b eval.Value) (Violation, bool) {
				sa, ok1 := a.(*eval.StackVal)
				sb, ok2 := b.(*eval.StackVal)
				if !ok1 || !ok2 || len(sa.Elems) != len(sb.Elems) {
					return Violation{}, true
				}
				for i := range sa.Elems {
					if v, ok := el.diff(sa.Elems[i], sb.Elems[i]); !ok {
						v.Where = fmt.Sprintf("[%d]%s", i, v.Where)
						return v, false
					}
				}
				return Violation{}, true
			},
		}
	default:
		return sampler{
			draw: func(rng eval.Rng) eval.Value { return eval.RandomFrom(t.T, rng) },
			vary: func(v eval.Value, _ eval.Rng) eval.Value { return v },
			diff: func(a, b eval.Value) (Violation, bool) { return Violation{}, true },
		}
	}
}

// fieldSamplers compiles one sampler per declared field, resolving
// FieldOf once. Fields randomizeAbove would skip (absent from the type)
// cannot occur here: fast-path values are built by draw from the type
// itself.
func fieldSamplers(fields []types.Field, obs lattice.Label, lat lattice.Lattice) ([]string, []sampler) {
	names := make([]string, len(fields))
	subs := make([]sampler, len(fields))
	for i, f := range fields {
		names[i] = f.Name
		subs[i] = compileSampler(f.Type, obs, lat)
	}
	return names, subs
}

// randomizeAbove returns v with every scalar leaf whose label does NOT
// flow to obs replaced by a fresh random value; observable leaves are
// preserved, so the result is below-obs-equivalent to v.
func randomizeAbove(v eval.Value, t types.SecType, obs lattice.Label, lat lattice.Lattice, rng eval.Rng) eval.Value {
	if types.IsScalar(t.T) {
		if lat.Leq(t.L, obs) {
			return v
		}
		return eval.RandomFrom(t.T, rng)
	}
	switch tt := t.T.(type) {
	case *types.Record:
		rv, ok := v.(*eval.RecordVal)
		if !ok {
			return v
		}
		fs := make([]eval.NamedValue, len(rv.Fields))
		copy(fs, rv.Fields)
		for i := range fs {
			if f, ok := types.FieldOf(tt, fs[i].Name); ok {
				fs[i].Val = randomizeAbove(fs[i].Val, f.Type, obs, lat, rng)
			}
		}
		return &eval.RecordVal{Fields: fs}
	case *types.Header:
		hv, ok := v.(*eval.HeaderVal)
		if !ok {
			return v
		}
		fs := make([]eval.NamedValue, len(hv.Fields))
		copy(fs, hv.Fields)
		for i := range fs {
			if f, ok := types.FieldOf(tt, fs[i].Name); ok {
				fs[i].Val = randomizeAbove(fs[i].Val, f.Type, obs, lat, rng)
			}
		}
		return &eval.HeaderVal{Valid: hv.Valid, Fields: fs}
	case *types.Stack:
		sv, ok := v.(*eval.StackVal)
		if !ok {
			return v
		}
		es := make([]eval.Value, len(sv.Elems))
		for i, el := range sv.Elems {
			es[i] = randomizeAbove(el, tt.Elem, obs, lat, rng)
		}
		return &eval.StackVal{Elems: es}
	default:
		return v
	}
}

// diffObservable compares the observable (χ ⊑ obs) scalar leaves of a and
// b; on a mismatch it returns the witness and false. Witness paths are
// built only along the failing spine — the match case (virtually every
// trial of every campaign) allocates nothing.
func diffObservable(path string, a, b eval.Value, t types.SecType, obs lattice.Label, lat lattice.Lattice) (Violation, bool) {
	v, ok := diffObs(a, b, t, obs, lat)
	if ok {
		return Violation{}, true
	}
	v.Where = path + v.Where
	return v, false
}

// diffObs is diffObservable with the witness path kept relative: the
// returned Violation's Where is the suffix below the comparison root
// (empty at a scalar leaf), prefixed one step at a time as the failure
// unwinds.
func diffObs(a, b eval.Value, t types.SecType, obs lattice.Label, lat lattice.Lattice) (Violation, bool) {
	if types.IsScalar(t.T) {
		if !lat.Leq(t.L, obs) {
			return Violation{}, true
		}
		if !eval.ValueEqual(a, b) {
			return Violation{A: a.String(), B: b.String()}, false
		}
		return Violation{}, true
	}
	switch tt := t.T.(type) {
	case *types.Record:
		ra, ok1 := a.(*eval.RecordVal)
		rb, ok2 := b.(*eval.RecordVal)
		if !ok1 || !ok2 {
			return Violation{}, true
		}
		for i := range ra.Fields {
			f, ok := types.FieldOf(tt, ra.Fields[i].Name)
			if !ok || i >= len(rb.Fields) {
				continue
			}
			if v, ok := diffObs(ra.Fields[i].Val, rb.Fields[i].Val, f.Type, obs, lat); !ok {
				v.Where = "." + ra.Fields[i].Name + v.Where
				return v, false
			}
		}
		return Violation{}, true
	case *types.Header:
		ha, ok1 := a.(*eval.HeaderVal)
		hb, ok2 := b.(*eval.HeaderVal)
		if !ok1 || !ok2 {
			return Violation{}, true
		}
		for i := range ha.Fields {
			f, ok := types.FieldOf(tt, ha.Fields[i].Name)
			if !ok || i >= len(hb.Fields) {
				continue
			}
			if v, ok := diffObs(ha.Fields[i].Val, hb.Fields[i].Val, f.Type, obs, lat); !ok {
				v.Where = "." + ha.Fields[i].Name + v.Where
				return v, false
			}
		}
		return Violation{}, true
	case *types.Stack:
		sa, ok1 := a.(*eval.StackVal)
		sb, ok2 := b.(*eval.StackVal)
		if !ok1 || !ok2 || len(sa.Elems) != len(sb.Elems) {
			return Violation{}, true
		}
		for i := range sa.Elems {
			if v, ok := diffObs(sa.Elems[i], sb.Elems[i], tt.Elem, obs, lat); !ok {
				v.Where = fmt.Sprintf("[%d]%s", i, v.Where)
				return v, false
			}
		}
		return Violation{}, true
	default:
		return Violation{}, true
	}
}
