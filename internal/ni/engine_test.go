package ni_test

// Engine parity: an Experiment run with Interp (tree-walker) and one run
// with the compiled engine must report byte-identical results — the same
// violations in the same trials with the same rendered witnesses, the same
// executed-trial counts, and the same errors. The fuzz corpus classifies
// and dedups findings by these strings, so parity here is what lets the
// compiled engine replace the interpreter without invalidating recorded
// campaigns.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/ni"
	"repro/internal/parser"
	"repro/internal/progs"
)

func runBoth(t *testing.T, mk func(interp bool) *ni.Experiment, trials int, seed int64) {
	t.Helper()
	vioI, ranI, errI := mk(true).RunN(trials, seed)
	vioC, ranC, errC := mk(false).RunN(trials, seed)
	if ranI != ranC {
		t.Fatalf("trial counts differ: interp %d, compiled %d", ranI, ranC)
	}
	esI, esC := fmt.Sprint(errI), fmt.Sprint(errC)
	if esI != esC {
		t.Fatalf("errors differ:\n  interp:   %s\n  compiled: %s", esI, esC)
	}
	if len(vioI) != len(vioC) {
		t.Fatalf("violation counts differ: interp %d, compiled %d", len(vioI), len(vioC))
	}
	for i := range vioI {
		if vioI[i].String() != vioC[i].String() {
			t.Fatalf("violation %d differs:\n  interp:   %s\n  compiled: %s", i, vioI[i], vioC[i])
		}
	}
}

func TestEnginesAgreeOnGeneratedPrograms(t *testing.T) {
	for _, spec := range []string{"two-point", "chain:4", "nparty:3"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			lat, err := lattice.ByName(spec)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(77))
			cfg := gen.DefaultConfig()
			cfg.Lattice = spec
			for i := 0; i < 40; i++ {
				src := gen.Random(rng, cfg)
				prog, err := parser.Parse(fmt.Sprintf("p%d.p4", i), src)
				if err != nil {
					t.Fatalf("program %d: parse: %v", i, err)
				}
				for _, obs := range lat.Elements() {
					if obs == lat.Top() {
						continue
					}
					obs := obs
					mk := func(interp bool) *ni.Experiment {
						return &ni.Experiment{Prog: prog, Lat: lat, Observer: obs, Interp: interp}
					}
					runBoth(t, mk, 8, int64(i)*31+7)
				}
			}
		})
	}
}

func TestEnginesAgreeOnStatefulMultiPacket(t *testing.T) {
	p := progs.Stateful()
	for _, variant := range []progs.Variant{progs.Buggy, progs.Fixed} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			prog, err := parser.Parse(p.FileName(variant), p.Source(variant))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			mk := func(interp bool) *ni.Experiment {
				return &ni.Experiment{Prog: prog, Lat: p.Lattice(), Packets: 3, Interp: interp}
			}
			runBoth(t, mk, 40, 5)
		})
	}
}

// TestEnginesAgreeWithFixInputs pins the compiled map path (FixInputs
// forces map-shaped trials) against the interpreter.
func TestEnginesAgreeWithFixInputs(t *testing.T) {
	p := progs.Cache()
	prog, err := parser.Parse(p.FileName(progs.Buggy), p.Source(progs.Buggy))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	name := prog.Controls[0].Params[0].Name
	fix := func(in map[string]eval.Value) {
		// A deterministic no-op edit: the hook's presence is what forces
		// the map-shaped trial path on both engines.
		in[name] = eval.Copy(in[name])
	}
	mk := func(interp bool) *ni.Experiment {
		return &ni.Experiment{Prog: prog, Lat: p.Lattice(), FixInputs: fix, Interp: interp}
	}
	runBoth(t, mk, 30, 11)
}

// TestSameSeedSameResults is the determinism contract the benchmark gate
// leans on: two runs of the same experiment with the same seed yield
// identical trial counts and witness tallies.
func TestSameSeedSameResults(t *testing.T) {
	p := progs.Topology()
	prog, err := parser.Parse(p.FileName(progs.Buggy), p.Source(progs.Buggy))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e1 := &ni.Experiment{Prog: prog, Lat: p.Lattice()}
	e2 := &ni.Experiment{Prog: prog, Lat: p.Lattice()}
	v1, r1, err1 := e1.RunAdaptive(8, 256, 99)
	v2, r2, err2 := e2.RunAdaptive(8, 256, 99)
	if r1 != r2 || len(v1) != len(v2) || fmt.Sprint(err1) != fmt.Sprint(err2) {
		t.Fatalf("same-seed runs diverged: (%d,%d,%v) vs (%d,%d,%v)", r1, len(v1), err1, r2, len(v2), err2)
	}
	for i := range v1 {
		if v1[i].String() != v2[i].String() {
			t.Fatalf("witness %d differs: %s vs %s", i, v1[i], v2[i])
		}
	}
}
