package ni_test

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/ni"
	"repro/internal/parser"
	"repro/internal/progs"
	"repro/internal/types"
)

// multiPacketRun pushes a sequence of packets through ONE interpreter (so
// register state persists) and returns the public seen_count of the last
// packet.
func multiPacketRun(t *testing.T, src string, secretIDs, publicIDs []uint64) uint64 {
	t.Helper()
	prog := parser.MustParse("stateful.p4", src)
	in, err := eval.New(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := in.ParamType("Stateful_Ingress", "hdr")
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := range secretIDs {
		hdr := eval.Zero(st.T)
		setField(hdr, []string{"pkt", "secret_id"}, eval.NewBit(8, secretIDs[i]))
		setField(hdr, []string{"pkt", "public_id"}, eval.NewBit(8, publicIDs[i]))
		out, _, err := in.RunControl("", map[string]eval.Value{"hdr": hdr})
		if err != nil {
			t.Fatal(err)
		}
		last = getField(out["hdr"], "pkt", "seen_count").(eval.BitVal).V
	}
	return last
}

// TestRegistersPersistAcrossPackets checks the substrate: the fixed
// program's public counter accumulates across packets.
func TestRegistersPersistAcrossPackets(t *testing.T) {
	p, _ := progs.ByName("Stateful")
	src := p.Source(progs.Fixed)
	// Three packets on public slot 5: the third read returns 3.
	got := multiPacketRun(t, src, []uint64{1, 2, 3}, []uint64{5, 5, 5})
	if got != 3 {
		t.Fatalf("seen_count = %d, want 3 (register state must persist)", got)
	}
	// Distinct public slots each count once.
	got = multiPacketRun(t, src, []uint64{1, 1, 1}, []uint64{5, 6, 7})
	if got != 1 {
		t.Fatalf("seen_count = %d, want 1", got)
	}
}

// TestMultiPacketInterferenceWitness shows the buggy stateful program
// leaks ACROSS packets: two packet sequences equal on all public inputs
// but differing in an earlier packet's secret id produce different public
// outputs on a later packet. This is exactly the multi-packet channel the
// paper's Section 7 anticipates.
func TestMultiPacketInterferenceWitness(t *testing.T) {
	p, _ := progs.ByName("Stateful")
	src := p.Source(progs.Buggy)
	// Packet 1 increments counters[secret & 15]; packet 2 reads
	// counters[public 5]. Sequence A's secret hits slot 5, B's does not.
	outA := multiPacketRun(t, src, []uint64{5, 0}, []uint64{9, 5})
	outB := multiPacketRun(t, src, []uint64{6, 0}, []uint64{9, 5})
	if outA == outB {
		t.Fatalf("no multi-packet leak: both sequences read %d", outA)
	}
	t.Logf("multi-packet witness: public seen_count %d vs %d for secret ids 5 vs 6", outA, outB)
}

// TestMultiPacketNonInterferenceFixed is the corresponding positive check:
// for the fixed program, random packet sequences that agree on public
// inputs always agree on public outputs, regardless of secrets.
func TestMultiPacketNonInterferenceFixed(t *testing.T) {
	p, _ := progs.ByName("Stateful")
	src := p.Source(progs.Fixed)
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(6)
		pub := make([]uint64, n)
		secA := make([]uint64, n)
		secB := make([]uint64, n)
		for i := 0; i < n; i++ {
			pub[i] = uint64(rng.Intn(256))
			secA[i] = uint64(rng.Intn(256))
			secB[i] = uint64(rng.Intn(256))
		}
		outA := multiPacketRun(t, src, secA, pub)
		outB := multiPacketRun(t, src, secB, pub)
		if outA != outB {
			t.Fatalf("trial %d: public outputs differ (%d vs %d) with equal public inputs",
				trial, outA, outB)
		}
	}
}

// TestStatefulParamTypes sanity-checks the resolved header type used
// above.
func TestStatefulParamTypes(t *testing.T) {
	p, _ := progs.ByName("Stateful")
	prog := parser.MustParse("stateful.p4", p.Source(progs.Fixed))
	in, err := eval.New(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := in.ParamType("Stateful_Ingress", "hdr")
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := st.T.(*types.Record)
	if !ok {
		t.Fatalf("hdr type = %T", st.T)
	}
	if _, ok := types.FieldOf(rec, "pkt"); !ok {
		t.Error("no pkt field")
	}
}

// TestPacketsFieldExperiment exercises the first-class multi-packet mode
// of the Experiment harness on the Stateful case study: the buggy program
// leaks across packets (witness found), the fixed program does not.
func TestPacketsFieldExperiment(t *testing.T) {
	p, _ := progs.ByName("Stateful")
	for _, tc := range []struct {
		variant     progs.Variant
		wantWitness bool
	}{
		{progs.Buggy, true},
		{progs.Fixed, false},
	} {
		prog := parser.MustParse(p.FileName(tc.variant), p.Source(tc.variant))
		e := &ni.Experiment{
			Prog:    prog,
			Lat:     p.Lattice(),
			Packets: 4,
			// Keep secret ids in the register index range so run A and
			// run B collide/miss slots often enough to witness quickly.
			FixInputs: func(in map[string]eval.Value) {
				setField(in["hdr"], []string{"pkt", "secret_id"}, eval.NewBit(8, 5))
				setField(in["hdr"], []string{"pkt", "public_id"}, eval.NewBit(8, 5))
			},
		}
		vs, err := e.Run(40, 6)
		if err != nil {
			t.Fatalf("%s: %v", tc.variant, err)
		}
		if tc.wantWitness && len(vs) == 0 {
			t.Errorf("%s: no multi-packet witness found", tc.variant)
		}
		if !tc.wantWitness && len(vs) > 0 {
			t.Errorf("%s: unexpected violation: %s", tc.variant, vs[0])
		}
	}
}
