package ni_test

import (
	"testing"

	"repro/internal/controlplane"
	"repro/internal/eval"
	"repro/internal/ni"
	"repro/internal/parser"
	"repro/internal/progs"
)

// setField destructively sets a (nested) field of a record/header input.
func setField(v eval.Value, path []string, nv eval.Value) {
	for i, f := range path {
		var fields []eval.NamedValue
		switch vv := v.(type) {
		case *eval.RecordVal:
			fields = vv.Fields
		case *eval.HeaderVal:
			fields = vv.Fields
		default:
			panic("setField: cannot project " + v.String())
		}
		for j := range fields {
			if fields[j].Name == f {
				if i == len(path)-1 {
					fields[j].Val = nv
					return
				}
				v = fields[j].Val
				break
			}
		}
	}
}

// getField reads a nested field.
func getField(v eval.Value, path ...string) eval.Value {
	for _, f := range path {
		var fields []eval.NamedValue
		switch vv := v.(type) {
		case *eval.RecordVal:
			fields = vv.Fields
		case *eval.HeaderVal:
			fields = vv.Fields
		default:
			panic("getField: cannot project " + v.String())
		}
		for j := range fields {
			if fields[j].Name == f {
				v = fields[j].Val
				break
			}
		}
	}
	return v
}

func experiment(t *testing.T, p *progs.Program, v progs.Variant, control string) *ni.Experiment {
	t.Helper()
	prog := parser.MustParse(p.FileName(v), p.Source(v))
	return &ni.Experiment{
		Prog:    prog,
		Lat:     p.Lattice(),
		Control: control,
	}
}

// TestNonInterferenceFixedPrograms is the mechanical check of Theorem 4.3:
// every accepted (fixed) case-study program must be non-interfering under
// randomized two-run trials with a populated control plane.
func TestNonInterferenceFixedPrograms(t *testing.T) {
	const trials = 150
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog := parser.MustParse(p.FileName(progs.Fixed), p.Source(progs.Fixed))
			for _, ctrl := range prog.Controls {
				e := &ni.Experiment{
					Prog:    prog,
					Lat:     p.Lattice(),
					Control: ctrl.Name,
					CP:      caseStudyCP(t, p.Name),
				}
				e.FixInputs = caseStudyFix(p.Name)
				vs, err := e.Run(trials, 42)
				if err != nil {
					t.Fatalf("%s: %v", ctrl.Name, err)
				}
				if len(vs) != 0 {
					t.Errorf("%s: %d NI violations in a well-typed program; first: %s",
						ctrl.Name, len(vs), vs[0])
				}
			}
		})
	}
}

// caseStudyCP builds a populated control plane for each case study so the
// trials exercise the tables rather than missing everywhere.
func caseStudyCP(t *testing.T, name string) *controlplane.ControlPlane {
	t.Helper()
	cp := controlplane.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	switch name {
	case "Topology":
		cp.DeclareTable("virtual2phys_topology", []string{"exact"})
		cp.DeclareTable("ipv4_lpm_forward", []string{"lpm"})
		must(cp.Install("virtual2phys_topology", controlplane.Entry{
			Patterns: []controlplane.Pattern{controlplane.Exact(32, 7)},
			Action:   "update_to_phys", Args: []uint64{0xC0A80001, 3},
		}))
		must(cp.Install("ipv4_lpm_forward", controlplane.Entry{
			Patterns: []controlplane.Pattern{controlplane.LPM(32, 0, 0)},
			Action:   "ipv4_forward", Args: []uint64{0xAABB, 4},
		}))
	case "D2R":
		cp.DeclareTable("bfs_step", []string{"exact", "ternary"})
		cp.DeclareTable("forward", []string{"exact"})
		must(cp.Install("forward", controlplane.Entry{
			Patterns: []controlplane.Pattern{controlplane.Exact(32, 5)},
			Action:   "forwarding",
		}))
		must(cp.Install("bfs_step", controlplane.Entry{
			Patterns: []controlplane.Pattern{
				controlplane.Exact(32, 9),
				controlplane.Ternary(32, 0, 0),
			},
			Action: "bfs_step_act", Args: []uint64{5},
		}))
	case "Cache":
		cp.DeclareTable("fetch_from_cache", []string{"exact"})
		must(cp.Install("fetch_from_cache", controlplane.Entry{
			Patterns: []controlplane.Pattern{controlplane.Exact(8, 42)},
			Action:   "cache_hit", Args: []uint64{777},
		}))
	case "App":
		cp.DeclareTable("app_resources", []string{"exact"})
		cp.DeclareTable("ipv4_forward_tbl", []string{"lpm"})
		must(cp.Install("app_resources", controlplane.Entry{
			Patterns: []controlplane.Pattern{controlplane.Exact(32, 3)},
			Action:   "set_priority", Args: []uint64{6},
		}))
		must(cp.Install("ipv4_forward_tbl", controlplane.Entry{
			Patterns: []controlplane.Pattern{controlplane.LPM(32, 0, 0)},
			Action:   "forward", Args: []uint64{9},
		}))
	case "Lattice":
		cp.DeclareTable("update_by_alice", []string{"exact"})
		cp.DeclareTable("update_by_bob", []string{"exact"})
		must(cp.Install("update_by_alice", controlplane.Entry{
			Patterns: []controlplane.Pattern{controlplane.Exact(32, 21)},
			Action:   "set_by_alice", Args: []uint64{11},
		}))
		must(cp.Install("update_by_bob", controlplane.Entry{
			Patterns: []controlplane.Pattern{controlplane.Exact(48, 2)},
			Action:   "set_by_bob",
		}))
	}
	return cp
}

// caseStudyFix steers the random inputs into the interesting branch of
// each case study (e.g. D2R must reach the forward table).
func caseStudyFix(name string) func(map[string]eval.Value) {
	switch name {
	case "D2R":
		return func(in map[string]eval.Value) {
			// Make the BFS "done" so forward.apply() runs, and hit the
			// installed forward entry.
			setField(in["hdr"], []string{"ipv4", "dstAddr"}, eval.NewBit(32, 9))
			setField(in["hdr"], []string{"bfs", "curr"}, eval.NewBit(32, 9))
			setField(in["hdr"], []string{"bfs", "next_node"}, eval.NewBit(32, 5))
			// Land below THRESHOLD in run A: popcount(0xFF)=8, 8-6=2 < 4.
			// Run B re-randomizes the high num_hops and lands above.
			setField(in["hdr"], []string{"bfs", "tried_links"}, eval.NewBit(32, 0xFF))
			setField(in["hdr"], []string{"bfs", "num_hops"}, eval.NewBit(32, 6))
		}
	case "Cache":
		return func(in map[string]eval.Value) {
			// Run A queries the cached key; run B re-randomizes the
			// (high) query and almost surely misses.
			setField(in["hdr"], []string{"req", "query"}, eval.NewBit(8, 42))
		}
	case "NetChain":
		return func(in map[string]eval.Value) {
			setField(in["hdr"], []string{"nc", "role"}, eval.NewBit(16, 1))
		}
	case "Topology":
		return func(in map[string]eval.Value) {
			setField(in["hdr"], []string{"ipv4", "dstAddr"}, eval.NewBit(32, 7))
		}
	case "App":
		return func(in map[string]eval.Value) {
			setField(in["hdr"], []string{"app", "appID"}, eval.NewBit(8, 3))
		}
	default:
		return nil
	}
}

// TestInterferenceWitnesses shows the buggy programs are genuinely
// insecure: the harness finds concrete two-run witnesses for the leaks the
// typechecker reports. This rules out the rejections being false alarms.
func TestInterferenceWitnesses(t *testing.T) {
	cases := []struct {
		name    string
		control string
	}{
		{"NetChain", ""}, // implicit flow: secret role decides public reply
		{"Cache", ""},    // timing: secret query decides public hit bit
		{"D2R", ""},      // implicit flow via table-invoked action
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, ok := progs.ByName(c.name)
			if !ok {
				t.Fatalf("no program %s", c.name)
			}
			e := experiment(t, p, progs.Buggy, c.control)
			e.CP = caseStudyCP(t, c.name)
			e.FixInputs = caseStudyFix(c.name)
			vs, err := e.Run(60, 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(vs) == 0 {
				t.Errorf("%s buggy: no interference witness found in 60 trials", c.name)
			} else {
				t.Logf("%s buggy: %d witnesses, e.g. %s", c.name, len(vs), vs[0])
			}
		})
	}
}

// TestAppIntegrityWitness demonstrates the integrity reading: with high =
// untrusted, a trusted (low) observer sees different priorities when only
// the untrusted appID differs.
func TestAppIntegrityWitness(t *testing.T) {
	p, _ := progs.ByName("App")
	e := experiment(t, p, progs.Buggy, "")
	e.CP = caseStudyCP(t, "App")
	e.FixInputs = caseStudyFix("App")
	vs, err := e.Run(60, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Error("App buggy: no integrity violation witness found")
	}
}

// TestDiamondObservers checks NI of the fixed isolation program at each
// observer level of the diamond lattice.
func TestDiamondObservers(t *testing.T) {
	p, _ := progs.ByName("Lattice")
	prog := parser.MustParse("lattice.p4", p.Source(progs.Fixed))
	lat := p.Lattice()
	for _, obsName := range []string{"bot", "A", "B"} {
		obs, ok := lat.Lookup(obsName)
		if !ok {
			t.Fatalf("no label %s", obsName)
		}
		for _, ctrl := range prog.Controls {
			e := &ni.Experiment{Prog: prog, Lat: lat, Control: ctrl.Name, Observer: obs,
				CP: caseStudyCP(t, "Lattice")}
			vs, err := e.Run(80, 3)
			if err != nil {
				t.Fatalf("%s at %s: %v", ctrl.Name, obsName, err)
			}
			if len(vs) != 0 {
				t.Errorf("%s at observer %s: violation %s", ctrl.Name, obsName, vs[0])
			}
		}
	}
}

// TestBuggyAliceViolatesIsolation: in the buggy Listing 6 Alice writes her
// value into Bob's field; a B-level observer sees outputs depending on
// Alice's (non-B) data.
func TestBuggyAliceViolatesIsolation(t *testing.T) {
	p, _ := progs.ByName("Lattice")
	prog := parser.MustParse("lattice.p4", p.Source(progs.Buggy))
	lat := p.Lattice()
	obs, _ := lat.Lookup("B")
	e := &ni.Experiment{Prog: prog, Lat: lat, Control: "Alice_Ingress", Observer: obs,
		CP: caseStudyCP(t, "Lattice")}
	// Alice's table keys on the top-labelled telemetry count, which is
	// above B: differing telemetry selects hit-vs-miss, and the installed
	// entry writes Bob's field. Steer run A onto the installed entry.
	e.FixInputs = func(in map[string]eval.Value) {
		setField(in["hdr"], []string{"telem", "count"}, eval.NewBit(32, 21))
	}
	vs, err := e.Run(80, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Error("buggy Alice: no isolation violation witness found")
	}
}

// TestObservableOutputsMatchDocs sanity-checks getField against a run.
func TestObservableOutputsMatchDocs(t *testing.T) {
	p, _ := progs.ByName("NetChain")
	prog := parser.MustParse("netchain.p4", p.Source(progs.Buggy))
	in, err := eval.New(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := in.ParamType("NetChain_Ingress", "hdr")
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]eval.Value{"hdr": eval.Zero(st.T)}
	setField(inputs["hdr"], []string{"nc", "role"}, eval.NewBit(16, 1))
	out, _, err := in.RunControl("", inputs)
	if err != nil {
		t.Fatal(err)
	}
	if got := getField(out["hdr"], "nc", "reply"); !eval.ValueEqual(got, eval.NewBit(8, 0)) {
		t.Errorf("reply = %s, want 0 for head role", got)
	}
}
