// Oracle is the abstraction over the repo's non-interference backends.
// The Experiment holds the program, lattice, observer, and engine state;
// an Oracle decides how to spend effort over it — a flat randomized
// budget, an adaptive escalating budget, or (internal/exhaust) full
// enumeration of the secret input space. The pipeline selects one per
// job via Options.Oracle; everything downstream consumes the uniform
// Result, so the campaign stack is oracle-agnostic.
package ni

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/lattice"
	"repro/internal/types"
)

// Outcome is the epistemic strength of an oracle's verdict: what a
// clean (or violated) run actually asserts about the program.
type Outcome int

// Outcomes.
const (
	// Sampled is randomized testing's ceiling: violations are real
	// witnesses, but their absence is evidence, not proof.
	Sampled Outcome = iota
	// ProvedSecure asserts the oracle enumerated every secret
	// assignment at every public input state it visited and found no
	// violation. How strong that is depends on Result.Total: with Total
	// set the whole public × secret space was covered and the program
	// is non-interfering, full stop; without it the public side was
	// only sampled (probe mode), so the verdict certifies that no
	// secret influences the observables at the probed public states —
	// a leak manifesting only at an unvisited public state is not
	// excluded. Consumers that need a proof over the whole input space
	// must check Total, not just this outcome.
	ProvedSecure
	// ProvedInsecure asserts a violation was found by enumeration; the
	// witness is a constructive proof of interference.
	ProvedInsecure
	// Inconclusive means exhaustive enumeration was not possible
	// (width budget exceeded, int-typed inputs, multi-packet
	// adversary, ...); Result.Reason says why. Violations may still be
	// present from the sampling fallback.
	Inconclusive
)

// String renders the outcome in the spelling corpus metadata and event
// streams use.
func (o Outcome) String() string {
	switch o {
	case Sampled:
		return "sampled"
	case ProvedSecure:
		return "proved-secure"
	case ProvedInsecure:
		return "proved-insecure"
	case Inconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result is one oracle check at one observer.
type Result struct {
	// Violations holds the interference witnesses found (nil for a
	// clean check).
	Violations []Violation
	// Trials is the number of program-pair runs (randomized) or
	// enumerated assignment runs (exhaustive) actually executed.
	Trials int
	// Assignments counts input assignments enumerated — zero for the
	// randomized backends.
	Assignments uint64
	// Total reports that the enumeration covered the full public ×
	// secret input space (the strongest proof mode), not just all
	// secrets per sampled public probe.
	Total bool
	// Outcome is the verdict's epistemic strength; Reason explains an
	// Inconclusive one.
	Outcome Outcome
	Reason  string
}

// Oracle is one NI backend.
type Oracle interface {
	// Name is the backend's stable name ("randomized", "adaptive",
	// "exhaustive") — recorded in corpus metadata so replay re-checks
	// under the same oracle.
	Name() string
	// Check runs the backend over e with the given seed.
	Check(e *Experiment, seed int64) (Result, error)
}

// Randomized is the flat-budget randomized backend: Trials trials, every
// violation a sampled witness.
type Randomized struct{ Trials int }

// Name implements Oracle.
func (o Randomized) Name() string { return "randomized" }

// Check implements Oracle; it is RunN behind the uniform Result.
func (o Randomized) Check(e *Experiment, seed int64) (Result, error) {
	vio, ran, err := e.RunN(o.Trials, seed)
	return Result{Violations: vio, Trials: ran, Outcome: Sampled}, err
}

// Adaptive is the escalating randomized backend: Min trials first, then
// doubling rounds up to Max total, stopping at the first witness.
type Adaptive struct{ Min, Max int }

// Name implements Oracle.
func (o Adaptive) Name() string { return "adaptive" }

// Check implements Oracle; it is RunAdaptive behind the uniform Result.
func (o Adaptive) Check(e *Experiment, seed int64) (Result, error) {
	vio, ran, err := e.RunAdaptive(o.Min, o.Max, seed)
	return Result{Violations: vio, Trials: ran, Outcome: Sampled}, err
}

// ControlParams resolves the experiment's control block and its
// parameters' security types — the input surface an alternate oracle
// enumerates over. Exported for internal/exhaust.
func (e *Experiment) ControlParams() (*ast.ControlDecl, map[string]types.SecType, error) {
	ctrl := e.findControl()
	if ctrl == nil {
		return nil, nil, fmt.Errorf("ni: control %q not found", e.Control)
	}
	pts, err := e.paramTypes(ctrl)
	if err != nil {
		return nil, nil, err
	}
	return ctrl, pts, nil
}

// Engine returns the experiment's compiled program, compiling lazily
// like RunN does; nil means only the tree-walking interpreter is
// available (Interp set, or compilation failed).
func (e *Experiment) Engine() *eval.Compiled { return e.engine() }

// Machines exposes the experiment's pooled machine pair, rebound to a
// fresh clone of its control plane — so an alternate oracle enumerating
// over the same compiled program reuses the frames and table state the
// randomized trials already allocated.
func (e *Experiment) Machines(code *eval.Compiled) (*eval.Machine, *eval.Machine) {
	return e.machines(code)
}

// DiffObservable compares the observable (χ ⊑ obs) scalar leaves of a
// and b under t; on a mismatch it returns the witness (Where prefixed
// with path) and false. Exported for oracles that compare outputs
// outside the trial loop.
func DiffObservable(path string, a, b eval.Value, t types.SecType, obs lattice.Label, lat lattice.Lattice) (Violation, bool) {
	return diffObservable(path, a, b, t, obs, lat)
}
