package diag

import (
	"strings"
	"testing"

	"repro/internal/token"
)

func p(line, col int) token.Pos { return token.Pos{File: "f.p4", Line: line, Col: col} }

func TestErrorRendering(t *testing.T) {
	d := &Diagnostic{Pos: p(3, 7), Rule: "T-Assign", Msg: "bad flow"}
	want := "f.p4:3:7: error: bad flow [T-Assign]"
	if got := d.Error(); got != want {
		t.Errorf("rendered %q, want %q", got, want)
	}
	d2 := &Diagnostic{Msg: "no position"}
	if got := d2.Error(); got != "error: no position" {
		t.Errorf("rendered %q", got)
	}
	w := &Diagnostic{Pos: p(1, 1), Severity: Warning, Msg: "heads up"}
	if !strings.Contains(w.Error(), "warning") {
		t.Errorf("warning rendered %q", w.Error())
	}
}

func TestListAccumulation(t *testing.T) {
	var l List
	if l.HasErrors() || l.Len() != 0 || l.Err() != nil {
		t.Error("zero list not empty")
	}
	l.Warnf(p(1, 1), "w1")
	if l.HasErrors() {
		t.Error("warning counted as error")
	}
	if l.Err() != nil {
		t.Error("Err non-nil with only warnings")
	}
	l.Errorf(p(2, 1), "e1")
	l.RuleErrorf(p(1, 5), "T-Cond", "e2 %d", 42)
	if !l.HasErrors() || l.Len() != 3 {
		t.Errorf("HasErrors=%t Len=%d", l.HasErrors(), l.Len())
	}
	err := l.Err()
	if err == nil {
		t.Fatal("Err nil")
	}
	for _, want := range []string{"e1", "e2 42", "T-Cond", "w1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Err %q missing %q", err, want)
		}
	}
}

func TestAllSortsByPosition(t *testing.T) {
	var l List
	l.Errorf(p(5, 1), "third")
	l.Errorf(p(1, 9), "second")
	l.Errorf(p(1, 2), "first")
	all := l.All()
	order := []string{"first", "second", "third"}
	for i, want := range order {
		if all[i].Msg != want {
			t.Errorf("position %d: %s, want %s", i, all[i].Msg, want)
		}
	}
}

func TestSeverityString(t *testing.T) {
	if Error.String() != "error" || Warning.String() != "warning" {
		t.Error("severity names wrong")
	}
}
