// Package diag provides positioned diagnostics shared by the parser and the
// type checkers. Every error produced by the frontend carries a source
// position, a rule name (for checker errors, the violated typing rule, e.g.
// "T-Assign"), and a human-readable explanation.
package diag

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/token"
)

// Severity classifies a diagnostic.
type Severity int

// Severities.
const (
	Error Severity = iota
	Warning
)

// String renders the severity.
func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Diagnostic is a single positioned message.
type Diagnostic struct {
	Pos      token.Pos
	Severity Severity
	Rule     string // violated typing rule, "" for syntax errors
	Msg      string
}

// Error implements error.
func (d *Diagnostic) Error() string {
	var b strings.Builder
	if d.Pos.IsValid() {
		b.WriteString(d.Pos.String())
		b.WriteString(": ")
	}
	b.WriteString(d.Severity.String())
	b.WriteString(": ")
	b.WriteString(d.Msg)
	if d.Rule != "" {
		b.WriteString(" [")
		b.WriteString(d.Rule)
		b.WriteString("]")
	}
	return b.String()
}

// List accumulates diagnostics. The zero value is ready to use.
type List struct {
	diags []*Diagnostic
}

// Errorf appends an error diagnostic with no rule.
func (l *List) Errorf(pos token.Pos, format string, args ...any) {
	l.diags = append(l.diags, &Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// RuleErrorf appends an error attributed to a typing rule.
func (l *List) RuleErrorf(pos token.Pos, rule, format string, args ...any) {
	l.diags = append(l.diags, &Diagnostic{Pos: pos, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// Warnf appends a warning.
func (l *List) Warnf(pos token.Pos, format string, args ...any) {
	l.diags = append(l.diags, &Diagnostic{Pos: pos, Severity: Warning, Msg: fmt.Sprintf(format, args...)})
}

// HasErrors reports whether any error-severity diagnostic was recorded.
func (l *List) HasErrors() bool {
	for _, d := range l.diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Len returns the number of diagnostics.
func (l *List) Len() int { return len(l.diags) }

// All returns the diagnostics sorted by position.
func (l *List) All() []*Diagnostic {
	out := append([]*Diagnostic(nil), l.diags...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return out
}

// Err returns nil if the list holds no errors, otherwise an error whose
// message concatenates all diagnostics, one per line.
func (l *List) Err() error {
	if !l.HasErrors() {
		return nil
	}
	msgs := make([]string, 0, len(l.diags))
	for _, d := range l.All() {
		msgs = append(msgs, d.Error())
	}
	return fmt.Errorf("%s", strings.Join(msgs, "\n"))
}
