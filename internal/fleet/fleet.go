// Package fleet turns the static `-shard i/n` campaign split into a
// work-leasing fleet: one coordinator owns a span of global campaign
// indices, carves it into windows, and leases each window [lo, hi) to
// whichever worker claims it first; workers run the leased window as a
// stride-1 campaign (campaign.Config.Window) into their own staging
// corpus and mark it done; the coordinator merges each completed window's
// findings into the main corpus and reclaims the leases of workers whose
// heartbeats go stale, so a killed worker costs one window's re-run, not
// the campaign.
//
// The whole protocol is files under <corpus>/fleet/ — no sockets, no
// daemons workers must find, any process that can see the directory can
// join:
//
//	fleet/manifest.json        the fleet run: campaign parameters, the
//	                           span [lo, hi), window size, lease TTL.
//	                           Written atomically by the coordinator;
//	                           workers poll for it and take every
//	                           parameter from it, so a worker needs only
//	                           the corpus dir and an identity.
//	fleet/leases/win-L-H.json  one claimed window. Created with
//	                           O_CREATE|O_EXCL — the filesystem is the
//	                           lock — and carrying the worker id; the
//	                           file's mtime is the worker's heartbeat,
//	                           refreshed while the window runs. Only the
//	                           coordinator removes other workers' leases,
//	                           and only when the heartbeat is older than
//	                           the TTL.
//	fleet/done/win-L-H.json    one completed window: worker id, analyzed
//	                           and finding counts, and the dedup keys of
//	                           the window's new findings — the merge
//	                           list. Written atomically, so a marker
//	                           either exists completely or not at all.
//	fleet/staging/<worker>/    the worker's private corpus. Workers never
//	                           write the main corpus; the coordinator
//	                           copies done-marker keys out of staging, so
//	                           a crashed worker's half-minimized strays
//	                           are never merged.
//	fleet/frontier.json        the next unexplored global index, advanced
//	                           when a fleet run completes — how the next
//	                           fleet run knows where the search frontier
//	                           is without a per-shard cursor.
//
// Merging by done-marker key (rather than sweeping staging directories)
// is what keeps the fleet's corpus equal to an unsharded run's: an
// aborted window persists its findings un-minimized (cancellation must
// not sit in a delta-debug loop), so a killed worker's staging holds
// strays under keys an unsharded run would never produce. Those strays
// stay in staging; the reclaimed window is re-run by a live worker, whose
// marker lists the properly minimized keys.
package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/events"
	"repro/internal/gen"
)

// Manifest is the fleet run's contract, written by the coordinator and
// read by every worker: the campaign parameters (so all workers generate
// the same program for the same index) and the leasing geometry.
type Manifest struct {
	// Lo and Hi delimit the fleet run's span of global campaign indices.
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	// Window is the lease granularity: windows are [Lo, Lo+Window),
	// [Lo+Window, Lo+2*Window), ... (the last one clipped to Hi).
	Window int64 `json:"window"`
	// Seed and Gen fix the index → program mapping fleet-wide.
	Seed int64      `json:"seed"`
	Gen  gen.Config `json:"gen"`
	// NITrials and NITrialsMax are the per-program NI budget.
	NITrials    int `json:"ni_trials,omitempty"`
	NITrialsMax int `json:"ni_trials_max,omitempty"`
	// NIOracle, ExhaustBudget, and ExhaustProbes fix the NI backend
	// fleet-wide ("" = adaptive): verdict classes depend on the oracle, so
	// it is part of the campaign identity the same way the seed is.
	NIOracle      string `json:"ni_oracle,omitempty"`
	ExhaustBudget uint64 `json:"exhaust_budget,omitempty"`
	ExhaustProbes int    `json:"exhaust_probes,omitempty"`
	// Mutate, MutateFrac, Minimize, and MaxPerClass mirror the campaign
	// config fields of the same names. Note that under Mutate, workers
	// draw seeds from their own staging corpora, so — exactly like the
	// static sharding it replaces — a mutating fleet is not
	// partition-exact with an unsharded run.
	Mutate      bool    `json:"mutate,omitempty"`
	MutateFrac  float64 `json:"mutate_frac,omitempty"`
	Minimize    bool    `json:"minimize,omitempty"`
	MaxPerClass int     `json:"max_per_class,omitempty"`
	// LeaseTTL is how stale a lease's heartbeat may grow before the
	// coordinator reclaims the window.
	LeaseTTL time.Duration `json:"lease_ttl"`
	// CreatedAt is when the coordinator opened the fleet run.
	CreatedAt time.Time `json:"created_at"`
}

// Lease is the content of one lease file. The claim itself is the file's
// O_EXCL creation and the heartbeat its mtime; the content exists so
// humans and events can say whose lease it is — a lease whose content was
// lost to a crash mid-write still locks, heartbeats, and expires by
// mtime.
type Lease struct {
	Worker   string    `json:"worker"`
	Lo       int64     `json:"lo"`
	Hi       int64     `json:"hi"`
	LeasedAt time.Time `json:"leased_at"`
}

// DoneMarker records one completed window: who ran it, what it analyzed,
// and — the part the coordinator acts on — the dedup keys of the new
// findings its run persisted to the worker's staging corpus.
type DoneMarker struct {
	Worker      string    `json:"worker"`
	Lo          int64     `json:"lo"`
	Hi          int64     `json:"hi"`
	Analyzed    int       `json:"analyzed"`
	NewFindings int       `json:"new_findings"`
	Keys        []string  `json:"keys,omitempty"`
	FinishedAt  time.Time `json:"finished_at"`
}

// frontier is the cross-run search cursor: the first global index no
// fleet run has covered.
type frontier struct {
	NextIndex int64     `json:"next_index"`
	UpdatedAt time.Time `json:"updated_at"`
}

func fleetDir(corpusDir string) string { return filepath.Join(corpusDir, "fleet") }
func manifestPath(corpusDir string) string {
	return filepath.Join(fleetDir(corpusDir), "manifest.json")
}
func leasesDir(corpusDir string) string { return filepath.Join(fleetDir(corpusDir), "leases") }
func doneDir(corpusDir string) string   { return filepath.Join(fleetDir(corpusDir), "done") }
func frontierPath(corpusDir string) string {
	return filepath.Join(fleetDir(corpusDir), "frontier.json")
}

// StagingDir is the private corpus directory of one worker.
func StagingDir(corpusDir, workerID string) string {
	return filepath.Join(fleetDir(corpusDir), "staging", workerID)
}

func windowName(lo, hi int64) string { return fmt.Sprintf("win-%d-%d.json", lo, hi) }

func leasePath(corpusDir string, lo, hi int64) string {
	return filepath.Join(leasesDir(corpusDir), windowName(lo, hi))
}

func donePath(corpusDir string, lo, hi int64) string {
	return filepath.Join(doneDir(corpusDir), windowName(lo, hi))
}

// windows enumerates the manifest's lease windows in index order.
func (m *Manifest) windows() []Window {
	var out []Window
	for lo := m.Lo; lo < m.Hi; lo += m.Window {
		hi := lo + m.Window
		if hi > m.Hi {
			hi = m.Hi
		}
		out = append(out, Window{Lo: lo, Hi: hi})
	}
	return out
}

// Window is one lease's index range [Lo, Hi).
type Window struct {
	Lo, Hi int64
}

// writeJSONAtomic is the protocol's only write primitive: marshal,
// write to a temp file, rename. Every protocol file either exists whole
// or not at all — the property the resume-cursor bug this package was
// hardened against lacked.
func writeJSONAtomic(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encode %s: %w", filepath.Base(path), err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("fleet: write %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: write %s: %w", filepath.Base(path), err)
	}
	return nil
}

// readJSON decodes one protocol file; a missing file returns os.ErrNotExist.
func readJSON(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("fleet: decode %s: %w", filepath.Base(path), err)
	}
	return nil
}

// readManifest loads the fleet manifest, reporting os.ErrNotExist when no
// fleet run is open.
func readManifest(corpusDir string) (*Manifest, error) {
	var m Manifest
	if err := readJSON(manifestPath(corpusDir), &m); err != nil {
		return nil, err
	}
	if m.Window <= 0 || m.Hi <= m.Lo {
		return nil, fmt.Errorf("fleet: manifest %s has an empty span or window", manifestPath(corpusDir))
	}
	return &m, nil
}

// loadFrontier reads the cross-run cursor; missing is index 0, and — like
// the campaign's shard cursor — corrupt is index 0 with a warning, never
// an error: re-covering costs time, dedup absorbs the repeats.
func loadFrontier(corpusDir string, sink events.Sink) int64 {
	var f frontier
	err := readJSON(frontierPath(corpusDir), &f)
	switch {
	case err == nil:
		return f.NextIndex
	case os.IsNotExist(err):
		return 0
	default:
		sink.Emit(events.Event{
			Kind: events.KindWarning, Op: "fleet", Path: frontierPath(corpusDir),
			Detail: fmt.Sprintf("corrupt fleet frontier (%v): starting from index 0 — the span will be re-covered and dedup absorbs repeats", err),
		})
		return 0
	}
}

// acquireLease claims one window for a worker. The O_EXCL create is the
// entire mutual exclusion story: exactly one claimant's create succeeds,
// everyone else sees os.ErrExist. The lease content is best-effort — see
// Lease.
func acquireLease(corpusDir, workerID string, w Window) (bool, error) {
	f, err := os.OpenFile(leasePath(corpusDir, w.Lo, w.Hi), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if os.IsExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("fleet: acquire lease: %w", err)
	}
	raw, _ := json.MarshalIndent(Lease{Worker: workerID, Lo: w.Lo, Hi: w.Hi, LeasedAt: time.Now()}, "", "  ")
	_, werr := f.Write(append(raw, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		// The claim stands (the file exists); only the label is damaged.
		// Reclaim-by-mtime handles it like any other lease.
		return true, nil
	}
	return true, nil
}

// heartbeat refreshes a lease's liveness signal. Failing is fine — it
// means the lease was reclaimed (the worker stalled past the TTL) or the
// run is over; the worker finds out when it tries to finish.
func heartbeat(corpusDir string, w Window) {
	now := time.Now()
	os.Chtimes(leasePath(corpusDir, w.Lo, w.Hi), now, now)
}

// windowDone reports whether a window has a done marker.
func windowDone(corpusDir string, w Window) bool {
	_, err := os.Stat(donePath(corpusDir, w.Lo, w.Hi))
	return err == nil
}
