package fleet

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/events"
	"repro/internal/gen"
)

func smallGen() gen.Config {
	return gen.Config{MaxDepth: 2, MaxStmts: 3, NumFields: 2, WithActions: true}
}

// readKeys collects the dedup keys of every finding persisted under dir.
func readKeys(t *testing.T, dir string) map[string]bool {
	t.Helper()
	keys := map[string]bool{}
	entries, err := os.ReadDir(filepath.Join(dir, "findings"))
	if err != nil {
		t.Fatalf("read corpus: %v", err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") || e.Name() == "index.json" {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, "findings", e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		var m struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("decode %s: %v", e.Name(), err)
		}
		keys[m.Key] = true
	}
	return keys
}

// TestLeaseProtocol: O_EXCL acquisition is exclusive, heartbeats refresh
// the mtime, and done markers outrank leases.
func TestLeaseProtocol(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(leasesDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(doneDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	w := Window{Lo: 0, Hi: 10}
	ok, err := acquireLease(dir, "w1", w)
	if err != nil || !ok {
		t.Fatalf("first acquire: ok=%v err=%v", ok, err)
	}
	ok, err = acquireLease(dir, "w2", w)
	if err != nil || ok {
		t.Fatalf("second acquire must lose: ok=%v err=%v", ok, err)
	}
	var l Lease
	if err := readJSON(leasePath(dir, 0, 10), &l); err != nil || l.Worker != "w1" {
		t.Fatalf("lease content: %+v err=%v", l, err)
	}
	// Heartbeat pushes the mtime forward.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(leasePath(dir, 0, 10), old, old); err != nil {
		t.Fatal(err)
	}
	heartbeat(dir, w)
	info, err := os.Stat(leasePath(dir, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(info.ModTime()) > time.Minute {
		t.Errorf("heartbeat did not refresh the mtime: %v", info.ModTime())
	}
	if windowDone(dir, w) {
		t.Error("window done before any marker")
	}
	if err := writeJSONAtomic(donePath(dir, 0, 10), DoneMarker{Worker: "w1", Lo: 0, Hi: 10}); err != nil {
		t.Fatal(err)
	}
	if !windowDone(dir, w) {
		t.Error("window not done after marker")
	}
}

// TestManifestWindows: the span is carved into [Lo, Lo+W), ... with the
// last window clipped.
func TestManifestWindows(t *testing.T) {
	m := &Manifest{Lo: 10, Hi: 45, Window: 15}
	got := m.windows()
	want := []Window{{10, 25}, {25, 40}, {40, 45}}
	if len(got) != len(want) {
		t.Fatalf("windows %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("windows %v, want %v", got, want)
		}
	}
}

// TestFleetChurn is the acceptance-criteria lock: 3 workers against one
// coordinator, one worker killed on its first lease, and the fleet still
// (a) reclaims and finishes the killed worker's window and (b) ends with
// the main corpus holding exactly the dedup-key set an unsharded run over
// the same span finds.
func TestFleetChurn(t *testing.T) {
	const n = 90
	base := campaign.Config{
		N:           n,
		Seed:        7,
		Gen:         smallGen(),
		NITrials:    2,
		NITrialsMax: 4,
		Workers:     2,
		MaxPerClass: -1,
	}

	// Unsharded baseline.
	whole := t.TempDir()
	wcfg := base
	wcfg.CorpusDir = whole
	if _, err := campaign.Run(context.Background(), wcfg); err != nil {
		t.Fatal(err)
	}
	wantKeys := readKeys(t, whole)
	if len(wantKeys) == 0 {
		t.Fatal("baseline run found nothing; the test needs findings to merge")
	}

	// The fleet over the same span. Worker w0 is killed (its context
	// cancelled, synchronously, so nothing it leased completes) the moment
	// it claims its first window — the lease is left to expire and must be
	// reclaimed and re-run by a surviving worker.
	dir := t.TempDir()
	var events0 []events.Event
	var mu sync.Mutex
	w0ctx, w0kill := context.WithCancel(context.Background())
	defer w0kill()
	w0sink := func(e events.Event) {
		mu.Lock()
		defer mu.Unlock()
		events0 = append(events0, e)
		if e.Kind == events.KindLease {
			w0kill()
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	workerErrs := make([]error, 3)
	for i, wctx := range []context.Context{w0ctx, ctx, ctx} {
		wg.Add(1)
		go func(i int, wctx context.Context) {
			defer wg.Done()
			var sink events.Sink
			if i == 0 {
				sink = w0sink
			}
			_, workerErrs[i] = RunWorker(wctx, dir, WorkerOptions{
				WorkerID: []string{"w0", "w1", "w2"}[i],
				Workers:  2,
				Poll:     25 * time.Millisecond,
				Events:   sink,
			})
		}(i, wctx)
	}

	var coordEvents []events.Event
	rep, err := RunCoordinator(ctx, Config{
		CorpusDir:   dir,
		N:           n,
		WindowSize:  15,
		Seed:        base.Seed,
		Gen:         base.Gen,
		NITrials:    base.NITrials,
		NITrialsMax: base.NITrialsMax,
		MaxPerClass: base.MaxPerClass,
		LeaseTTL:    450 * time.Millisecond,
		Poll:        25 * time.Millisecond,
		Events: func(e events.Event) {
			mu.Lock()
			defer mu.Unlock()
			coordEvents = append(coordEvents, e)
		},
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v (report %+v)", err, rep)
	}

	// The killed worker must have claimed something and died on it.
	mu.Lock()
	leased0 := 0
	for _, e := range events0 {
		if e.Kind == events.KindLease {
			leased0++
		}
	}
	mu.Unlock()
	if leased0 == 0 {
		t.Fatal("w0 never leased a window; the churn premise did not happen")
	}
	if workerErrs[0] == nil {
		t.Error("w0 finished cleanly; it was supposed to die mid-lease")
	}
	if workerErrs[1] != nil || workerErrs[2] != nil {
		t.Fatalf("surviving workers errored: %v, %v", workerErrs[1], workerErrs[2])
	}

	// The coordinator must have reclaimed w0's expired lease...
	if rep.Reclaimed == 0 {
		t.Error("no lease was reclaimed despite a killed worker")
	}
	reclaims := 0
	mu.Lock()
	for _, e := range coordEvents {
		if e.Kind == events.KindReclaim {
			reclaims++
		}
	}
	mu.Unlock()
	if reclaims != rep.Reclaimed {
		t.Errorf("%d reclaim events, report says %d", reclaims, rep.Reclaimed)
	}
	// ...and every window must have been finished by a survivor.
	if got := rep.WindowsByWorker["w1"] + rep.WindowsByWorker["w2"]; got != rep.Windows {
		t.Errorf("survivors completed %d of %d windows: %v", got, rep.Windows, rep.WindowsByWorker)
	}
	if len(rep.Errors) != 0 {
		t.Errorf("merge errors: %v", rep.Errors)
	}

	// The merged main corpus equals the unsharded run, key for key.
	gotKeys := readKeys(t, dir)
	if len(gotKeys) != len(wantKeys) {
		t.Errorf("fleet corpus has %d findings, unsharded %d", len(gotKeys), len(wantKeys))
	}
	for k := range wantKeys {
		if !gotKeys[k] {
			t.Errorf("finding %.12s missing from the fleet corpus", k)
		}
	}
	for k := range gotKeys {
		if !wantKeys[k] {
			t.Errorf("finding %.12s in the fleet corpus but not the unsharded run", k)
		}
	}

	// The run's protocol files are retired; the frontier advanced.
	if _, err := os.Stat(manifestPath(dir)); !os.IsNotExist(err) {
		t.Errorf("manifest still present after completion (err %v)", err)
	}
	if next := loadFrontier(dir, nil); next != n {
		t.Errorf("frontier at %d, want %d", next, n)
	}
}

// TestFleetFrontierAdvance: consecutive fleet runs cover consecutive
// spans — the frontier is the cross-run cursor.
func TestFleetFrontierAdvance(t *testing.T) {
	dir := t.TempDir()
	run := func() *Report {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done := make(chan struct{})
		go func() {
			defer close(done)
			RunWorker(ctx, dir, WorkerOptions{WorkerID: "w", Poll: 10 * time.Millisecond})
		}()
		rep, err := RunCoordinator(ctx, Config{
			CorpusDir: dir, N: 20, WindowSize: 10,
			Seed: 3, Gen: smallGen(), NITrials: 1,
			LeaseTTL: time.Second, Poll: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
		<-done
		return rep
	}
	r1 := run()
	if r1.Lo != 0 || r1.Hi != 20 {
		t.Fatalf("run 1 span [%d, %d), want [0, 20)", r1.Lo, r1.Hi)
	}
	r2 := run()
	if r2.Lo != 20 || r2.Hi != 40 {
		t.Fatalf("run 2 span [%d, %d), want [20, 40)", r2.Lo, r2.Hi)
	}
}

// TestFleetManifestAdoption: a coordinator that dies mid-span leaves the
// manifest; the next coordinator adopts it (same span), but only under
// the same campaign identity.
func TestFleetManifestAdoption(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	cfg := Config{
		CorpusDir: dir, N: 20, WindowSize: 10,
		Seed: 3, Gen: smallGen(), NITrials: 1,
		LeaseTTL: time.Second, Poll: 20 * time.Millisecond,
	}
	// No workers: the span cannot complete; the coordinator dies on ctx.
	if _, err := RunCoordinator(ctx, cfg); err == nil {
		t.Fatal("coordinator with no workers completed an uncovered span")
	}
	if _, err := os.Stat(manifestPath(dir)); err != nil {
		t.Fatalf("manifest not left behind for adoption: %v", err)
	}

	// A different campaign identity must refuse to adopt.
	bad := cfg
	bad.Seed = 99
	ctx2, cancel2 := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel2()
	if _, err := RunCoordinator(ctx2, bad); err == nil || !strings.Contains(err.Error(), "different seed") {
		t.Fatalf("mismatched adoption err = %v, want identity refusal", err)
	}

	// The same identity adopts the open span and finishes it.
	ctx3, cancel3 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel3()
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunWorker(ctx3, dir, WorkerOptions{WorkerID: "w", Poll: 10 * time.Millisecond})
	}()
	rep, err := RunCoordinator(ctx3, cfg)
	if err != nil {
		t.Fatalf("adopting coordinator: %v", err)
	}
	<-done
	if rep.Lo != 0 || rep.Hi != 20 {
		t.Errorf("adopted span [%d, %d), want [0, 20)", rep.Lo, rep.Hi)
	}
}

// TestFleetCorruptFrontier: a corrupt frontier file warns and restarts
// from 0 instead of erroring — the fleet-level analogue of the campaign's
// corrupt-cursor recovery.
func TestFleetCorruptFrontier(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(fleetDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(frontierPath(dir), []byte(`{"next_index": 4`), 0o644); err != nil {
		t.Fatal(err)
	}
	var warned bool
	next := loadFrontier(dir, func(e events.Event) {
		if e.Kind == events.KindWarning && strings.Contains(e.Detail, "corrupt fleet frontier") {
			warned = true
		}
	})
	if next != 0 {
		t.Errorf("corrupt frontier read as %d, want 0", next)
	}
	if !warned {
		t.Error("no corruption warning emitted")
	}
}
