// The coordinator side of the fleet protocol: open (or adopt) the
// manifest, watch done markers land and merge their findings into the
// main corpus, reclaim the leases of dead workers, and advance the
// frontier when the span is covered. The coordinator is the only writer
// of the main corpus and the only process that removes another worker's
// lease — workers are many and expendable, the coordinator is one and
// careful.
package fleet

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/corpus"
	"repro/internal/events"
	"repro/internal/gen"
	"repro/internal/metrics"
)

// Config configures a coordinator run.
type Config struct {
	// CorpusDir is the main corpus the fleet grows; the fleet/ protocol
	// directory lives under it. Required.
	CorpusDir string
	// N is the number of global indices this fleet run covers: the span is
	// [frontier, frontier+N), where the frontier is what previous fleet
	// runs advanced it to.
	N int64
	// WindowSize is the lease granularity (default N/8, at least 1).
	// Smaller windows cost more protocol traffic but lose less work per
	// dead worker.
	WindowSize int64
	// Seed and Gen fix the index → program mapping, manifest-wide.
	Seed int64
	Gen  gen.Config
	// NITrials and NITrialsMax set the per-program NI budget workers run.
	NITrials    int
	NITrialsMax int
	// NIOracle selects the NI backend workers classify with ("" =
	// adaptive); ExhaustBudget and ExhaustProbes configure the exhaustive
	// oracle. Manifest-wide like the seed: every worker must judge an
	// index under the same oracle or the merged corpus mixes verdict
	// semantics.
	NIOracle      string
	ExhaustBudget uint64
	ExhaustProbes int
	// Mutate, MutateFrac, Minimize, and MaxPerClass are passed through to
	// the workers' campaign runs via the manifest.
	Mutate      bool
	MutateFrac  float64
	Minimize    bool
	MaxPerClass int
	// LeaseTTL is how stale a worker heartbeat may grow before its window
	// is reclaimed (default 1 minute). It bounds how long a dead worker's
	// window sits idle, so it should comfortably exceed the worker's
	// heartbeat interval (TTL/3) plus its worst GC-or-IO stall, and no
	// more.
	LeaseTTL time.Duration
	// Poll is the coordinator's scan interval (default LeaseTTL/4).
	Poll time.Duration
	// Log receives merge and reclaim lines (nil = discard).
	Log io.Writer
	// Events receives the coordinator's structured stream: reclaim events
	// as dead leases are harvested, one merge event per finding copied
	// into the main corpus, and warnings. nil discards.
	Events events.Sink
	// Metrics, when non-nil, receives the coordinator's fleet telemetry:
	// active/stale lease and heartbeat-age gauges, reclaim and window
	// counters, per-worker merge counters, and the
	// fleet_last_scan_unix_seconds liveness gauge HealthChecker reads.
	Metrics *metrics.Registry
}

// Report is the coordinator's outcome.
type Report struct {
	// Lo and Hi delimit the covered span; Windows counts its leases.
	Lo, Hi     int64
	WindowSize int64
	Windows    int
	// Reclaimed counts expired leases harvested from dead workers.
	Reclaimed int
	// Merged counts findings copied into the main corpus; Known counts
	// done-marker keys the corpus already had (from earlier runs or from
	// windows whose findings overlap).
	Merged int
	Known  int
	// WindowsByWorker attributes completed windows to worker ids.
	WindowsByWorker map[string]int
	Elapsed         time.Duration
	// Errors lists merge anomalies: marker keys whose finding never
	// became readable in the worker's staging corpus.
	Errors []string
}

// windowState tracks one window's merge progress across scan ticks.
type windowState struct {
	merged bool
	// pending holds marker keys not yet copied (staging entry unreadable
	// or not yet visible); retried every tick until the marker's window
	// counts as merged.
	marker *DoneMarker
}

// RunCoordinator runs a fleet span to completion: it opens (or, after a
// coordinator crash, adopts) the manifest, then scans until every window
// has a done marker and every marker key is merged into the main corpus.
// Cancelling ctx leaves the manifest in place, so a later coordinator
// resumes the same span.
func RunCoordinator(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.CorpusDir == "" {
		return nil, fmt.Errorf("fleet: coordinator needs a corpus dir")
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("fleet: N must be positive, got %d", cfg.N)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = time.Minute
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.LeaseTTL / 4
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	gcfg := cfg.Gen
	if gcfg == (gen.Config{}) {
		gcfg = gen.DefaultConfig()
	}
	for _, d := range []string{leasesDir(cfg.CorpusDir), doneDir(cfg.CorpusDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
	}

	man, err := openManifest(cfg, gcfg)
	if err != nil {
		return nil, err
	}
	main, err := corpus.OpenSink(cfg.CorpusDir, cfg.Events)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}

	windows := man.windows()
	rep := &Report{
		Lo: man.Lo, Hi: man.Hi, WindowSize: man.Window,
		Windows:         len(windows),
		WindowsByWorker: map[string]int{},
	}
	states := make(map[Window]*windowState, len(windows))
	for _, w := range windows {
		states[w] = &windowState{}
	}
	mergedKeys := map[string]bool{}
	start := time.Now()

	// Pre-register the fleet series so a scrape taken the instant the
	// coordinator starts already shows them (at zero), and cache the
	// per-scan handles. All nil and no-op without a registry.
	lastScan := cfg.Metrics.Gauge("fleet_last_scan_unix_seconds")
	cfg.Metrics.Gauge("fleet_active_leases")
	cfg.Metrics.Gauge("fleet_stale_leases")
	cfg.Metrics.Gauge("fleet_lease_heartbeat_age_seconds")
	cfg.Metrics.Counter("fleet_reclaims_total")
	cfg.Metrics.Counter("fleet_windows_done_total")
	cfg.Metrics.Gauge("fleet_windows_total").SetInt(int64(len(windows)))

	for {
		lastScan.SetInt(time.Now().Unix())
		scanDone(ctx, cfg, main, windows, states, mergedKeys, rep)
		if err := reclaimExpired(cfg, man, rep); err != nil {
			return rep, err
		}
		done := 0
		for _, st := range states {
			if st.merged {
				done++
			}
		}
		if done == len(windows) {
			break
		}
		select {
		case <-time.After(cfg.Poll):
		case <-ctx.Done():
			rep.Elapsed = time.Since(start)
			return rep, ctx.Err()
		}
	}

	// The span is covered and merged: persist, advance the frontier, and
	// retire the run's protocol files. Staging corpora stay — they are the
	// workers' dedup memory across fleet runs. The manifest is removed
	// FIRST: workers poll it every pass and stop when it is gone, so no
	// worker can observe the done markers vanishing below and conclude the
	// span needs re-covering.
	if err := main.SaveIndex(); err != nil {
		fmt.Fprintf(cfg.Log, "fleet: %v (index rebuilt on next open)\n", err)
	}
	if err := writeJSONAtomic(frontierPath(cfg.CorpusDir), frontier{NextIndex: man.Hi, UpdatedAt: time.Now()}); err != nil {
		return rep, err
	}
	os.Remove(manifestPath(cfg.CorpusDir))
	for _, w := range windows {
		os.Remove(donePath(cfg.CorpusDir, w.Lo, w.Hi))
		os.Remove(leasePath(cfg.CorpusDir, w.Lo, w.Hi))
	}
	rep.Elapsed = time.Since(start)
	sort.Strings(rep.Errors)
	return rep, nil
}

// openManifest adopts an open fleet run or starts a fresh one at the
// frontier. Adopting validates the campaign identity: merging windows
// generated under a different seed or generator would poison the corpus
// the same way a mismatched resume would.
func openManifest(cfg Config, gcfg gen.Config) (*Manifest, error) {
	man, err := readManifest(cfg.CorpusDir)
	if err == nil {
		if man.Seed != cfg.Seed || man.Gen != gcfg {
			return nil, fmt.Errorf("fleet: an open fleet run at %s was recorded for a different seed or generator config — finish it with matching flags or remove it",
				manifestPath(cfg.CorpusDir))
		}
		// The oracle is part of the campaign identity too: the same window
		// judged under a different NI backend can classify differently.
		if man.NIOracle != cfg.NIOracle || man.ExhaustBudget != cfg.ExhaustBudget || man.ExhaustProbes != cfg.ExhaustProbes {
			return nil, fmt.Errorf("fleet: an open fleet run at %s was recorded for a different NI oracle configuration — finish it with matching flags or remove it",
				manifestPath(cfg.CorpusDir))
		}
		return man, nil
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	// A fresh run starts from a clean slate: leftover lease or done files
	// (a worker that outlived its retired run, say) must not make this
	// run's windows look claimed or covered.
	for _, d := range []string{leasesDir(cfg.CorpusDir), doneDir(cfg.CorpusDir)} {
		ents, rerr := os.ReadDir(d)
		if rerr != nil {
			continue
		}
		for _, de := range ents {
			os.Remove(filepath.Join(d, de.Name()))
		}
	}
	lo := loadFrontier(cfg.CorpusDir, cfg.Events)
	win := cfg.WindowSize
	if win <= 0 {
		win = cfg.N / 8
	}
	if win < 1 {
		win = 1
	}
	man = &Manifest{
		Lo: lo, Hi: lo + cfg.N, Window: win,
		Seed: cfg.Seed, Gen: gcfg,
		NITrials: cfg.NITrials, NITrialsMax: cfg.NITrialsMax,
		NIOracle: cfg.NIOracle, ExhaustBudget: cfg.ExhaustBudget, ExhaustProbes: cfg.ExhaustProbes,
		Mutate: cfg.Mutate, MutateFrac: cfg.MutateFrac,
		Minimize: cfg.Minimize, MaxPerClass: cfg.MaxPerClass,
		LeaseTTL:  cfg.LeaseTTL,
		CreatedAt: time.Now(),
	}
	if err := writeJSONAtomic(manifestPath(cfg.CorpusDir), man); err != nil {
		return nil, err
	}
	return man, nil
}

// scanDone ingests newly landed done markers and merges their keys. A key
// whose staging entry is unreadable this tick (a fresh Open raced a
// non-atomic corpus write, an I/O hiccup) is retried next tick; the
// window only counts as merged once every key is accounted for.
func scanDone(ctx context.Context, cfg Config, main *corpus.Corpus, windows []Window, states map[Window]*windowState, mergedKeys map[string]bool, rep *Report) {
	// One staging handle per worker per tick, opened lazily.
	staging := map[string]*corpus.Corpus{}
	openStaging := func(worker string) *corpus.Corpus {
		if c, ok := staging[worker]; ok {
			return c
		}
		c, err := corpus.Open(StagingDir(cfg.CorpusDir, worker))
		if err != nil {
			fmt.Fprintf(cfg.Log, "fleet: staging %s: %v (retrying)\n", worker, err)
			c = nil
		}
		staging[worker] = c
		return c
	}

	for _, w := range windows {
		st := states[w]
		if st.merged || ctx.Err() != nil {
			continue
		}
		if st.marker == nil {
			var m DoneMarker
			if err := readJSON(donePath(cfg.CorpusDir, w.Lo, w.Hi), &m); err != nil {
				if !os.IsNotExist(err) {
					fmt.Fprintf(cfg.Log, "fleet: %v (retrying)\n", err)
				}
				continue
			}
			st.marker = &m
			rep.WindowsByWorker[m.Worker]++
		}
		sc := openStaging(st.marker.Worker)
		if sc == nil {
			continue
		}
		if mergeMarker(cfg, main, sc, st.marker, mergedKeys, rep) {
			st.merged = true
			cfg.Metrics.Counter("fleet_windows_done_total").Inc()
		}
	}
}

// mergeMarker copies one done marker's findings into the main corpus,
// returning whether every key is now accounted for. Only marker-listed
// keys are merged — never a staging sweep — so the half-minimized strays
// an aborted window leaves behind stay out of the main corpus.
func mergeMarker(cfg Config, main, staging *corpus.Corpus, m *DoneMarker, mergedKeys map[string]bool, rep *Report) bool {
	byKey := map[string]*corpus.Entry{}
	for e, err := range staging.Entries() {
		if err == nil {
			byKey[e.Meta.Key] = e
		}
	}
	all := true
	for _, key := range m.Keys {
		if mergedKeys[key] {
			continue
		}
		if main.Has(key) {
			mergedKeys[key] = true
			rep.Known++
			continue
		}
		e, ok := byKey[key]
		if !ok {
			all = false
			rep.Errors = appendOnce(rep.Errors, fmt.Sprintf("window [%d, %d): key %.12s not in %s's staging corpus", m.Lo, m.Hi, key, m.Worker))
			continue
		}
		src, err := e.Source()
		if err != nil {
			all = false // half-written pair or I/O error: retry next tick
			continue
		}
		if _, err := main.Put(e.Meta, src); err != nil {
			all = false
			fmt.Fprintf(cfg.Log, "fleet: merge %.12s: %v (retrying)\n", key, err)
			continue
		}
		mergedKeys[key] = true
		rep.Merged++
		cfg.Metrics.Counter("fleet_merged_findings_total", "worker", m.Worker).Inc()
		cfg.Events.Emit(events.Event{
			Kind: events.KindMerge, Op: "fleet", Worker: m.Worker,
			Key: key, Class: string(e.Meta.Class), Lo: m.Lo, Hi: m.Hi,
		})
		fmt.Fprintf(cfg.Log, "fleet: merged %s %.12s from %s (window [%d, %d))\n",
			e.Meta.Class, key, m.Worker, m.Lo, m.Hi)
	}
	return all
}

// reclaimExpired harvests leases whose heartbeat went stale: the window
// returns to the pool for any live worker's next pass. Leases of windows
// that already have a done marker are cleaned up silently — the worker
// died (or was killed) between marker and release, and the work stands.
func reclaimExpired(cfg Config, man *Manifest, rep *Report) error {
	ents, err := os.ReadDir(leasesDir(cfg.CorpusDir))
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	// Per-scan lease survey: how many leases are live, how many this scan
	// found stale (and reclaims below), and the oldest live heartbeat —
	// the gauges /healthz summarizes.
	var active, stale int
	var oldest time.Duration
	defer func() {
		cfg.Metrics.Gauge("fleet_active_leases").SetInt(int64(active))
		cfg.Metrics.Gauge("fleet_stale_leases").SetInt(int64(stale))
		cfg.Metrics.Gauge("fleet_lease_heartbeat_age_seconds").Set(oldest.Seconds())
	}()
	for _, de := range ents {
		var lo, hi int64
		if _, err := fmt.Sscanf(de.Name(), "win-%d-%d.json", &lo, &hi); err != nil {
			continue // *.tmp debris or foreign files: not leases
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		if windowDone(cfg.CorpusDir, Window{Lo: lo, Hi: hi}) {
			os.Remove(filepath.Join(leasesDir(cfg.CorpusDir), de.Name()))
			continue
		}
		if age := time.Since(info.ModTime()); age <= man.LeaseTTL {
			active++
			if age > oldest {
				oldest = age
			}
			continue
		}
		stale++
		// Expired. The content is best-effort (the worker may have died
		// mid-create); reclaim is by mtime alone.
		var l Lease
		readJSON(filepath.Join(leasesDir(cfg.CorpusDir), de.Name()), &l)
		if err := os.Remove(filepath.Join(leasesDir(cfg.CorpusDir), de.Name())); err != nil {
			if os.IsNotExist(err) {
				continue // the worker finished in the window between stat and remove
			}
			return fmt.Errorf("fleet: reclaim: %w", err)
		}
		rep.Reclaimed++
		cfg.Metrics.Counter("fleet_reclaims_total").Inc()
		cfg.Events.Emit(events.Event{
			Kind: events.KindReclaim, Op: "fleet", Worker: l.Worker, Lo: lo, Hi: hi,
			Detail: fmt.Sprintf("lease heartbeat stale for > %v; window re-issued", man.LeaseTTL),
		})
		fmt.Fprintf(cfg.Log, "fleet: reclaimed window [%d, %d) from %s (stale heartbeat)\n", lo, hi, l.Worker)
	}
	return nil
}

func appendOnce(xs []string, s string) []string {
	for _, x := range xs {
		if x == s {
			return xs
		}
	}
	return append(xs, s)
}
