// The fleet's liveness surface: a HealthChecker summarizes whether the
// coordinator is making progress, for `p4fuzzd -http`'s /healthz endpoint
// and for tests that inject stalls. It is deliberately read-only — it
// inspects the protocol files and the coordinator's registry, never
// mutates either — so probing health can never perturb the run.
package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/metrics"
)

// Health is one /healthz evaluation.
type Health struct {
	// Healthy is the overall verdict: an open manifest AND a fresh
	// coordinator scan. Detail says which condition failed.
	Healthy bool   `json:"healthy"`
	Detail  string `json:"detail,omitempty"`
	// ManifestOpen reports a readable manifest; Lo/Hi its span when open.
	ManifestOpen bool  `json:"manifest_open"`
	Lo           int64 `json:"lo,omitempty"`
	Hi           int64 `json:"hi,omitempty"`
	// Frontier is the cross-run index frontier on disk.
	Frontier int64 `json:"frontier"`
	// ActiveLeases, StaleLeases, and OldestHeartbeatSeconds summarize the
	// coordinator's last lease scan (from its gauges).
	ActiveLeases           int     `json:"active_leases"`
	StaleLeases            int     `json:"stale_leases"`
	OldestHeartbeatSeconds float64 `json:"oldest_heartbeat_seconds"`
	// LastScanAgeSeconds is how long ago the coordinator's scan loop last
	// ticked — the liveness signal. Negative when it never has.
	LastScanAgeSeconds float64 `json:"last_scan_age_seconds"`
}

// A HealthChecker evaluates fleet liveness for one corpus directory. It
// doubles as an http.Handler: 200 with a Health JSON body while healthy,
// 503 (still with the body, so the probe output explains itself) once the
// manifest is retired or the coordinator stalls.
type HealthChecker struct {
	// CorpusDir roots the fleet protocol files.
	CorpusDir string
	// Metrics is the coordinator's own registry — the one its
	// RunCoordinator writes fleet_last_scan_unix_seconds and the lease
	// gauges into. Nil reads as "never scanned", i.e. unhealthy.
	Metrics *metrics.Registry
	// MaxScanAge is how stale the coordinator's last scan may be before
	// the fleet counts as stalled (default 1 minute; it should
	// comfortably exceed the coordinator's poll interval).
	MaxScanAge time.Duration
}

// Check evaluates current health.
func (h *HealthChecker) Check() Health {
	maxAge := h.MaxScanAge
	if maxAge <= 0 {
		maxAge = time.Minute
	}
	out := Health{LastScanAgeSeconds: -1}
	out.Frontier = loadFrontier(h.CorpusDir, nil)

	man, err := readManifest(h.CorpusDir)
	if err == nil {
		out.ManifestOpen = true
		out.Lo, out.Hi = man.Lo, man.Hi
	}

	snap := h.Metrics.Snapshot()
	out.ActiveLeases = int(snap.Gauge("fleet_active_leases"))
	out.StaleLeases = int(snap.Gauge("fleet_stale_leases"))
	out.OldestHeartbeatSeconds = snap.Gauge("fleet_lease_heartbeat_age_seconds")
	lastScan := snap.Gauge("fleet_last_scan_unix_seconds")
	if lastScan > 0 {
		out.LastScanAgeSeconds = time.Since(time.Unix(int64(lastScan), 0)).Seconds()
	}

	switch {
	case !out.ManifestOpen:
		if os.IsNotExist(err) {
			out.Detail = "no open fleet run (manifest absent — retired or not started)"
		} else {
			out.Detail = fmt.Sprintf("manifest unreadable: %v", err)
		}
	case out.LastScanAgeSeconds < 0:
		out.Detail = "coordinator has not scanned yet"
	case out.LastScanAgeSeconds > maxAge.Seconds():
		out.Detail = fmt.Sprintf("coordinator stalled: last scan %.1fs ago (max %v)", out.LastScanAgeSeconds, maxAge)
	default:
		out.Healthy = true
	}
	return out
}

// ServeHTTP renders Check as JSON: 200 while healthy, 503 otherwise.
func (h *HealthChecker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	out := h.Check()
	w.Header().Set("Content-Type", "application/json")
	if !out.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
