package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/metrics"
)

// TestHealthChecker walks the verdict table: healthy needs an open
// manifest AND a fresh coordinator scan; each missing leg flips the
// handler to 503 with a body that says which leg failed.
func TestHealthChecker(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(fleetDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	hc := &HealthChecker{CorpusDir: dir, Metrics: reg, MaxScanAge: time.Minute}

	probe := func() (int, Health) {
		t.Helper()
		rec := httptest.NewRecorder()
		hc.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		var h Health
		if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
			t.Fatalf("healthz body not JSON: %v\n%s", err, rec.Body.String())
		}
		return rec.Code, h
	}

	// No manifest yet: 503, "not started".
	if code, h := probe(); code != http.StatusServiceUnavailable || h.Healthy {
		t.Fatalf("no-manifest probe: code %d, health %+v", code, h)
	}

	if err := writeJSONAtomic(manifestPath(dir), Manifest{Lo: 0, Hi: 20, Window: 10, LeaseTTL: time.Second}); err != nil {
		t.Fatal(err)
	}

	// Manifest open but the coordinator never scanned: still 503.
	if code, h := probe(); code != http.StatusServiceUnavailable || h.Healthy || !h.ManifestOpen {
		t.Fatalf("never-scanned probe: code %d, health %+v", code, h)
	}
	if _, h := probe(); !strings.Contains(h.Detail, "not scanned") {
		t.Errorf("never-scanned detail = %q", h.Detail)
	}

	// Fresh scan gauge: healthy.
	reg.Gauge("fleet_last_scan_unix_seconds").SetInt(time.Now().Unix())
	code, h := probe()
	if code != http.StatusOK || !h.Healthy {
		t.Fatalf("healthy probe: code %d, health %+v", code, h)
	}
	if h.Lo != 0 || h.Hi != 20 {
		t.Errorf("healthy probe span [%d, %d), want [0, 20)", h.Lo, h.Hi)
	}

	// Scan goes stale past MaxScanAge: stalled, 503.
	reg.Gauge("fleet_last_scan_unix_seconds").SetInt(time.Now().Add(-2 * time.Minute).Unix())
	if code, h := probe(); code != http.StatusServiceUnavailable || !strings.Contains(h.Detail, "stalled") {
		t.Fatalf("stalled probe: code %d, health %+v", code, h)
	}

	// Manifest retired mid-run (the coordinator's cleanup): 503 again even
	// with a fresh scan — the run is over, probes should say so.
	reg.Gauge("fleet_last_scan_unix_seconds").SetInt(time.Now().Unix())
	if err := os.Remove(manifestPath(dir)); err != nil {
		t.Fatal(err)
	}
	if code, h := probe(); code != http.StatusServiceUnavailable || h.ManifestOpen {
		t.Fatalf("retired probe: code %d, health %+v", code, h)
	}
}

// TestFleetMetricsLive runs a real two-worker fleet with the same wiring
// p4fuzzd uses — coordinator registry, per-worker registries shipped as
// KindMetrics events into a merged View, an HTTP server over the view —
// and asserts the acceptance surface: the live /metrics exposition grows
// the pipeline, campaign, and fleet series while the run is up, /healthz
// is 200 mid-run, and retiring the manifest flips it to 503.
func TestFleetMetricsLive(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	view := metrics.NewView(reg)
	hc := &HealthChecker{CorpusDir: dir, Metrics: reg, MaxScanAge: time.Minute}

	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.ExpositionHandler(view.Snapshot))
	mux.Handle("/healthz", hc)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 32*1024)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	// Absorb worker snapshots from the event stream, exactly as p4fuzzd's
	// worker-stdout scanner does; track healthz codes seen mid-run.
	var mu sync.Mutex
	var sawHealthyMidRun bool
	sink := func(e events.Event) {
		if e.Kind != events.KindMetrics || e.Snapshot == nil {
			return
		}
		mu.Lock()
		view.Absorb(e.Worker, *e.Snapshot)
		mu.Unlock()
		if code, _ := get("/healthz"); code == http.StatusOK {
			mu.Lock()
			sawHealthyMidRun = true
			mu.Unlock()
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			wreg := metrics.NewRegistry()
			RunWorker(ctx, dir, WorkerOptions{
				WorkerID: id,
				Workers:  2,
				Poll:     10 * time.Millisecond,
				Events:   sink,
				Metrics:  wreg,
			})
		}(id)
	}
	rep, err := RunCoordinator(ctx, Config{
		CorpusDir: dir, N: 30, WindowSize: 10,
		Seed: 7, Gen: smallGen(), NITrials: 1, MaxPerClass: -1,
		LeaseTTL: time.Second, Poll: 10 * time.Millisecond,
		Metrics: reg,
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if rep.Windows == 0 {
		t.Fatal("fleet completed no windows; nothing to assert on")
	}

	if !sawHealthyMidRun {
		t.Error("/healthz never returned 200 while the run was live")
	}

	// The merged exposition after the run must carry the acceptance
	// series: per-stage pipeline timings and campaign counters from the
	// workers' absorbed snapshots (worker-labeled), and the coordinator's
	// own fleet gauges/counters.
	_, body := get("/metrics")
	for _, want := range []string{
		`pipeline_stage_seconds_bucket{`,
		`campaign_jobs_total{worker="w`,
		"fleet_active_leases",
		"fleet_windows_done_total",
		"fleet_last_scan_unix_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q after the run\n%s", want, body)
		}
	}

	// The run is over: the manifest was retired, so /healthz must be 503.
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz after retirement: code %d, body %s", code, body)
	}
}
