// The worker side of the fleet protocol: claim a window, heartbeat the
// lease, run the window as a stride-1 campaign into the worker's staging
// corpus, write the done marker. Workers are deliberately crash-shaped:
// nothing a worker does needs undoing — a killed worker simply stops
// heartbeating, and the coordinator's reclaim puts its window back in the
// pool.
package fleet

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/events"
	"repro/internal/metrics"
)

// WorkerOptions configures RunWorker. Campaign parameters come from the
// fleet manifest, not from here — every worker must agree on them.
type WorkerOptions struct {
	// WorkerID names this worker in leases, done markers, and events
	// ("" = host-pid). IDs also name staging corpora, so a restarted
	// worker reusing its ID reuses its staging dedup state.
	WorkerID string
	// Workers bounds the worker's analysis pipeline pool (<= 0 =
	// GOMAXPROCS).
	Workers int
	// Poll is how long to wait between passes when every remaining window
	// is leased or the manifest has not appeared yet (default 1s).
	Poll time.Duration
	// Log receives the campaign engines' per-finding lines (nil = discard).
	Log io.Writer
	// Events receives the worker's structured stream: a lease event per
	// claimed window, the leased campaigns' own events, and a window-done
	// event per completed window, all carrying the worker id. nil
	// discards.
	Events events.Sink
	// Metrics, when non-nil, accumulates across every window this worker
	// runs: the leased campaigns (and their pipelines) record into it, and
	// a fleet_worker_windows_total counter tracks completed windows. Each
	// finished window also emits a KindMetrics snapshot event, which is
	// how a coordinator ingesting this worker's stream learns its
	// telemetry without sharing memory.
	Metrics *metrics.Registry
}

// WorkerReport summarizes one worker's participation in a fleet run.
type WorkerReport struct {
	WorkerID string
	// Windows counts the windows this worker completed; Analyzed and
	// NewFindings total their campaign reports.
	Windows     int
	Analyzed    int
	NewFindings int
}

// RunWorker joins the fleet rooted at corpusDir and works until the
// fleet's span is fully covered (every window has a done marker) or ctx
// is cancelled. It polls for the manifest, so workers may start before
// the coordinator.
func RunWorker(ctx context.Context, corpusDir string, opts WorkerOptions) (*WorkerReport, error) {
	id := opts.WorkerID
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	poll := opts.Poll
	if poll <= 0 {
		poll = time.Second
	}
	rep := &WorkerReport{WorkerID: id}

	var man *Manifest
	for {
		var err error
		if man, err = readManifest(corpusDir); err == nil {
			break
		}
		if !os.IsNotExist(err) {
			return rep, err
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return rep, ctx.Err()
		}
	}

	staging := StagingDir(corpusDir, id)
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return rep, fmt.Errorf("fleet: staging: %w", err)
	}

	for {
		if !manifestCurrent(corpusDir, man) {
			// The run this worker joined was retired: its span is covered
			// and merged. (Checked before every pass so the coordinator's
			// cleanup — which removes the done markers — can never read as
			// "nothing is done, re-cover the span".)
			return rep, nil
		}
		claimed, remaining, err := workerPass(ctx, corpusDir, staging, id, man, opts, rep)
		if err != nil {
			return rep, err
		}
		if remaining == 0 {
			return rep, nil
		}
		if claimed == 0 {
			// Everything left is leased to someone else. Wait: either they
			// finish (markers appear) or they die (the coordinator reclaims
			// and the next pass claims).
			select {
			case <-time.After(poll):
			case <-ctx.Done():
				return rep, ctx.Err()
			}
		}
	}
}

// manifestCurrent reports whether the manifest a worker joined is still
// the open fleet run — not retired, not replaced by a later span's.
func manifestCurrent(corpusDir string, man *Manifest) bool {
	cur, err := readManifest(corpusDir)
	return err == nil && cur.CreatedAt.Equal(man.CreatedAt) && cur.Lo == man.Lo && cur.Hi == man.Hi
}

// workerPass sweeps the window list once, running every window it can
// claim. It returns how many windows it completed this pass and how many
// are still not done (by anyone).
func workerPass(ctx context.Context, corpusDir, staging, id string, man *Manifest, opts WorkerOptions, rep *WorkerReport) (claimed, remaining int, err error) {
	for _, w := range man.windows() {
		if ctx.Err() != nil {
			return claimed, remaining, ctx.Err()
		}
		if windowDone(corpusDir, w) {
			continue
		}
		ok, err := acquireLease(corpusDir, id, w)
		if err != nil {
			return claimed, remaining, err
		}
		if !ok {
			remaining++
			continue
		}
		if err := runWindow(ctx, corpusDir, staging, id, man, w, opts, rep); err != nil {
			// The lease is NOT released: a failed window looks exactly like
			// a crashed worker, and the TTL reclaim path re-issues it. One
			// recovery mechanism, not two.
			return claimed, remaining, err
		}
		claimed++
	}
	return claimed, remaining, nil
}

// runWindow executes one leased window: heartbeat in the background, the
// window campaign into staging, the done marker, then — and only then —
// the lease release. A crash anywhere before the marker leaves the lease
// to expire and the window to be re-run; a crash between marker and
// release is benign, since done markers outrank leases everywhere.
func runWindow(ctx context.Context, corpusDir, staging, id string, man *Manifest, w Window, opts WorkerOptions, rep *WorkerReport) error {
	opts.Events.Emit(events.Event{
		Kind: events.KindLease, Op: "fleet", Worker: id, Lo: w.Lo, Hi: w.Hi,
	})
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(man.LeaseTTL / 3)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				heartbeat(corpusDir, w)
			case <-hbStop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	crep, err := campaign.Run(ctx, campaign.Config{
		Window:        &campaign.Window{Lo: w.Lo, Hi: w.Hi},
		Seed:          man.Seed,
		Gen:           man.Gen,
		NITrials:      man.NITrials,
		NITrialsMax:   man.NITrialsMax,
		NIOracle:      man.NIOracle,
		ExhaustBudget: man.ExhaustBudget,
		ExhaustProbes: man.ExhaustProbes,
		Workers:       opts.Workers,
		Mutate:        man.Mutate,
		MutateFrac:    man.MutateFrac,
		CorpusDir:     staging,
		Minimize:      man.Minimize,
		MaxPerClass:   man.MaxPerClass,
		Log:           opts.Log,
		Events:        workerStamped(opts.Events, id),
		Metrics:       opts.Metrics,
	})
	close(hbStop)
	<-hbDone
	if err != nil {
		return err
	}
	if !manifestCurrent(corpusDir, man) {
		// The run was retired while this window ran — it was reclaimed and
		// re-covered by another worker after this one stalled past the TTL.
		// Drop the (duplicate) result: a marker written now would orphan
		// into the next fleet run's done/ directory.
		os.Remove(leasePath(corpusDir, w.Lo, w.Hi))
		return nil
	}
	marker := DoneMarker{
		Worker:      id,
		Lo:          w.Lo,
		Hi:          w.Hi,
		Analyzed:    crep.Analyzed,
		NewFindings: crep.NewFindings,
		FinishedAt:  time.Now(),
	}
	for _, f := range crep.Findings {
		marker.Keys = append(marker.Keys, f.Key)
	}
	if err := writeJSONAtomic(donePath(corpusDir, w.Lo, w.Hi), marker); err != nil {
		return err
	}
	os.Remove(leasePath(corpusDir, w.Lo, w.Hi))
	opts.Events.Emit(events.Event{
		Kind: events.KindWindowDone, Op: "fleet", Worker: id, Lo: w.Lo, Hi: w.Hi,
		Done: crep.NewFindings, Total: crep.Analyzed,
	})
	rep.Windows++
	rep.Analyzed += crep.Analyzed
	rep.NewFindings += crep.NewFindings
	if opts.Metrics != nil {
		opts.Metrics.Counter("fleet_worker_windows_total").Inc()
		// A snapshot after the window counter moved, so the stream's last
		// KindMetrics per window reflects the window it closed.
		snap := opts.Metrics.Snapshot()
		workerStamped(opts.Events, id).Emit(events.Event{
			Kind: events.KindMetrics, Op: "fleet", Snapshot: &snap,
		})
	}
	return nil
}

// workerStamped wraps a sink so every event the leased campaign emits
// carries the worker's id — the form a coordinator ingesting many worker
// streams needs.
func workerStamped(sink events.Sink, id string) events.Sink {
	if sink == nil {
		return nil
	}
	return func(e events.Event) {
		if e.Worker == "" {
			e.Worker = id
		}
		sink(e)
	}
}
