package types

import (
	"testing"

	"repro/internal/lattice"
)

func lbl(t *testing.T, name string) lattice.Label {
	t.Helper()
	l, ok := lattice.TwoPoint().Lookup(name)
	if !ok {
		t.Fatalf("no label %s", name)
	}
	return l
}

func TestEqualScalars(t *testing.T) {
	cases := []struct {
		a, b Type
		eq   bool
	}{
		{Bool{}, Bool{}, true},
		{Int{}, Int{}, true},
		{Unit{}, Unit{}, true},
		{Bit{8}, Bit{8}, true},
		{Bit{8}, Bit{16}, false},
		{Bool{}, Int{}, false},
		{Bit{8}, Int{}, false},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.eq {
			t.Errorf("Equal(%s, %s) = %t, want %t", c.a, c.b, got, c.eq)
		}
	}
}

func TestEqualComposite(t *testing.T) {
	low, high := lbl(t, "low"), lbl(t, "high")
	mk := func(l lattice.Label) *Header {
		return &Header{Fields: []Field{
			{Name: "f", Type: SecType{T: Bit{8}, L: l}},
		}}
	}
	if !Equal(mk(low), mk(low)) {
		t.Error("identical headers unequal")
	}
	// Labels are part of the type: differing field labels make types
	// unequal (this is what forbids inout label changes).
	if Equal(mk(low), mk(high)) {
		t.Error("headers with different field labels compare equal")
	}
	if !BaseEqual(mk(low), mk(high)) {
		t.Error("BaseEqual should ignore labels")
	}
	r1 := &Record{Fields: []Field{{Name: "a", Type: SecType{T: Bool{}, L: low}}}}
	r2 := &Record{Fields: []Field{{Name: "b", Type: SecType{T: Bool{}, L: low}}}}
	if Equal(r1, r2) {
		t.Error("records with different field names compare equal")
	}
	if Equal(mk(low), r1) {
		t.Error("header equals record")
	}
}

func TestEqualStackTableFunc(t *testing.T) {
	low, high := lbl(t, "low"), lbl(t, "high")
	s1 := &Stack{Elem: SecType{T: Bit{8}, L: low}, Size: 4}
	s2 := &Stack{Elem: SecType{T: Bit{8}, L: low}, Size: 4}
	s3 := &Stack{Elem: SecType{T: Bit{8}, L: low}, Size: 5}
	if !Equal(s1, s2) || Equal(s1, s3) {
		t.Error("stack equality wrong")
	}
	t1 := &Table{PCTbl: low}
	t2 := &Table{PCTbl: high}
	if Equal(t1, t2) {
		t.Error("tables with different pc_tbl compare equal")
	}
	f1 := &Func{Params: []Param{{Name: "x", Dir: In, Type: SecType{T: Bit{8}, L: low}}},
		PCFn: low, Ret: SecType{T: Unit{}, L: low}, IsAction: true}
	f2 := &Func{Params: []Param{{Name: "x", Dir: InOut, Type: SecType{T: Bit{8}, L: low}}},
		PCFn: low, Ret: SecType{T: Unit{}, L: low}, IsAction: true}
	if Equal(f1, f2) {
		t.Error("functions with different param directions compare equal")
	}
}

func TestFieldOf(t *testing.T) {
	low := lbl(t, "low")
	h := &Header{Fields: []Field{
		{Name: "a", Type: SecType{T: Bit{8}, L: low}},
		{Name: "b", Type: SecType{T: Bool{}, L: low}},
	}}
	f, ok := FieldOf(h, "b")
	if !ok || f.Name != "b" {
		t.Errorf("FieldOf(b) = %v, %t", f, ok)
	}
	if _, ok := FieldOf(h, "zzz"); ok {
		t.Error("FieldOf(zzz) found")
	}
	if _, ok := FieldOf(Bit{8}, "a"); ok {
		t.Error("FieldOf on scalar found a field")
	}
}

func TestIsBaseIsScalar(t *testing.T) {
	low := lbl(t, "low")
	base := []Type{Bool{}, Int{}, Bit{8}, Unit{},
		&Record{}, &Header{}, &Stack{Elem: SecType{T: Bit{8}, L: low}, Size: 1},
		&MatchKind{Members: []string{"exact"}}}
	for _, b := range base {
		if !IsBase(b) {
			t.Errorf("IsBase(%s) = false", b)
		}
	}
	notBase := []Type{&Table{PCTbl: low}, &Func{}}
	for _, nb := range notBase {
		if IsBase(nb) {
			t.Errorf("IsBase(%s) = true", nb)
		}
	}
	if !IsScalar(Bool{}) || !IsScalar(Bit{4}) || IsScalar(&Record{}) || IsScalar(&Header{}) {
		t.Error("IsScalar classification wrong")
	}
}

func TestStrip(t *testing.T) {
	low, high := lbl(t, "low"), lbl(t, "high")
	h := &Header{Fields: []Field{{Name: "x", Type: SecType{T: Bit{8}, L: high}}}}
	s := Strip(h).(*Header)
	if !s.Fields[0].Type.L.IsZero() {
		t.Error("Strip left a label")
	}
	// Original untouched.
	if h.Fields[0].Type.L != high {
		t.Error("Strip mutated its argument")
	}
	_ = low
}

func TestEnvScoping(t *testing.T) {
	low := lbl(t, "low")
	e := NewEnv()
	e.Bind("x", SecType{T: Bit{8}, L: low})
	child := e.Child()
	child.Bind("y", SecType{T: Bool{}, L: low})
	if _, ok := child.Lookup("x"); !ok {
		t.Error("child cannot see parent binding")
	}
	if _, ok := e.Lookup("y"); ok {
		t.Error("parent sees child binding")
	}
	// Shadowing.
	child.Bind("x", SecType{T: Bool{}, L: low})
	got, _ := child.Lookup("x")
	if _, isBool := got.T.(Bool); !isBool {
		t.Error("shadowing failed")
	}
	orig, _ := e.Lookup("x")
	if _, isBit := orig.T.(Bit); !isBit {
		t.Error("parent binding clobbered by shadow")
	}
	if !child.InCurrentScope("x") || child.InCurrentScope("zzz") {
		t.Error("InCurrentScope wrong")
	}
	if e.InCurrentScope("y") {
		t.Error("InCurrentScope leaked to parent")
	}
}

func TestTypeDefs(t *testing.T) {
	low := lbl(t, "low")
	d := NewTypeDefs()
	if err := d.Define("ip4_t", SecType{T: Bit{32}, L: low}); err != nil {
		t.Fatal(err)
	}
	if err := d.Define("ip4_t", SecType{T: Bit{32}, L: low}); err == nil {
		t.Error("redefinition allowed")
	}
	got, ok := d.Lookup("ip4_t")
	if !ok || !Equal(got.T, Bit{32}) {
		t.Errorf("Lookup = %v, %t", got, ok)
	}
	if _, ok := d.Lookup("nope"); ok {
		t.Error("phantom lookup")
	}
	if len(d.Names()) != 1 {
		t.Errorf("Names = %v", d.Names())
	}
}

func TestStringRendering(t *testing.T) {
	low, high := lbl(t, "low"), lbl(t, "high")
	cases := map[string]string{
		Bit{8}.String():                      "bit<8>",
		Bool{}.String():                      "bool",
		Unit{}.String():                      "unit",
		(&Table{PCTbl: high}).String():       "table(high)",
		SecType{T: Bit{8}, L: high}.String(): "<bit<8>, high>",
		(&Stack{Elem: SecType{T: Bit{8}, L: low}, Size: 3}).String(): "<bit<8>, low>[3]",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("rendered %q, want %q", got, want)
		}
	}
	f := &Func{
		Params:   []Param{{Name: "x", Dir: In, Type: SecType{T: Bit{8}, L: low}}},
		PCFn:     high,
		Ret:      SecType{T: Unit{}, L: low},
		IsAction: true,
	}
	if got := f.String(); got != "action(in <bit<8>, low>) --high--> <unit, low>" {
		t.Errorf("func rendered %q", got)
	}
}
