// Package types defines the semantic types of Core P4 (Figure 3 of the
// P4BID paper) lifted to security types (Figure 4).
//
// A security type is a pair ⟨τ, χ⟩ of an ordinary type and a label from the
// configured lattice. For composite types (records, headers, stacks,
// match_kinds, tables, functions) the label is tracked inside the type —
// per-field for records and headers — and the outer label is ⊥, exactly as
// in Figure 4.
package types

import (
	"fmt"
	"strings"

	"repro/internal/lattice"
)

// Type is a semantic Core P4 type τ. The set of implementations is closed.
type Type interface {
	typeMarker()
	String() string
}

// SecType is the security type ⟨τ, χ⟩.
type SecType struct {
	T Type
	L lattice.Label
}

// String renders ⟨τ, χ⟩.
func (s SecType) String() string {
	if s.L.IsZero() {
		return s.T.String()
	}
	return "<" + s.T.String() + ", " + s.L.String() + ">"
}

// IsZero reports whether s is the zero SecType.
func (s SecType) IsZero() bool { return s.T == nil }

// Bool is the type bool.
type Bool struct{}

// Int is the arbitrary-precision integer type.
type Int struct{}

// Bit is bit<W>.
type Bit struct{ W int }

// Unit is the unit (void) type.
type Unit struct{}

// Field is a named field of a record or header, with its security type.
type Field struct {
	Name string
	Type SecType
}

// Record is the record/struct type { f: ρ }.
type Record struct{ Fields []Field }

// Header is the header type header { f: ρ }.
type Header struct{ Fields []Field }

// Stack is the header-stack/array type ρ[n].
type Stack struct {
	Elem SecType
	Size int
}

// MatchKind is the match_kind enumeration type.
type MatchKind struct{ Members []string }

// Table is the table type table(pc_tbl): applying the table may write only
// at or above PCTbl.
type Table struct{ PCTbl lattice.Label }

// Param is one function/action parameter: direction d, security type, and
// whether the argument is control-plane-supplied (directionless parameters
// of actions, bound when the control plane installs an entry).
type Param struct {
	Name      string
	Dir       Dir
	Type      SecType
	CtrlPlane bool
}

// Dir is a semantic parameter direction.
type Dir int

// Directions. Directionless surface parameters become In with CtrlPlane set.
const (
	In Dir = iota
	Out
	InOut
)

// String renders the direction keyword.
func (d Dir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	default:
		return "inout"
	}
}

// Func is the function/action arrow type d ρ --pc_fn--> ρ_ret. PCFn is the
// lower bound on the labels of everything the body writes; calling the
// function in a context pc requires pc ⊑ PCFn (rule T-Call).
type Func struct {
	Params   []Param
	PCFn     lattice.Label
	Ret      SecType // ⟨unit, ⊥⟩ for actions
	IsAction bool
}

func (Bool) typeMarker()       {}
func (Int) typeMarker()        {}
func (Bit) typeMarker()        {}
func (Unit) typeMarker()       {}
func (*Record) typeMarker()    {}
func (*Header) typeMarker()    {}
func (*Stack) typeMarker()     {}
func (*MatchKind) typeMarker() {}
func (*Table) typeMarker()     {}
func (*Func) typeMarker()      {}

func (Bool) String() string  { return "bool" }
func (Int) String() string   { return "int" }
func (b Bit) String() string { return fmt.Sprintf("bit<%d>", b.W) }
func (Unit) String() string  { return "unit" }

func fieldsString(fs []Field) string {
	var b strings.Builder
	for i, f := range fs {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(f.Name)
		b.WriteString(": ")
		b.WriteString(f.Type.String())
	}
	return b.String()
}

func (r *Record) String() string { return "{" + fieldsString(r.Fields) + "}" }
func (h *Header) String() string { return "header{" + fieldsString(h.Fields) + "}" }
func (s *Stack) String() string  { return s.Elem.String() + fmt.Sprintf("[%d]", s.Size) }

func (m *MatchKind) String() string {
	return "match_kind{" + strings.Join(m.Members, ", ") + "}"
}

func (t *Table) String() string { return fmt.Sprintf("table(%s)", t.PCTbl) }

func (f *Func) String() string {
	var b strings.Builder
	if f.IsAction {
		b.WriteString("action(")
	} else {
		b.WriteString("function(")
	}
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if p.CtrlPlane {
			b.WriteString("@ctrl ")
		} else {
			b.WriteString(p.Dir.String())
			b.WriteString(" ")
		}
		b.WriteString(p.Type.String())
	}
	fmt.Fprintf(&b, ") --%s--> %s", f.PCFn, f.Ret)
	return b.String()
}

// Field returns the field with the given name of a record or header type,
// or false if t has no such field.
func FieldOf(t Type, name string) (Field, bool) {
	var fs []Field
	switch t := t.(type) {
	case *Record:
		fs = t.Fields
	case *Header:
		fs = t.Fields
	default:
		return Field{}, false
	}
	for _, f := range fs {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Equal reports structural equality of types, including security labels of
// nested fields. Function types compare parameter directions, types, PCFn,
// and return types.
func Equal(a, b Type) bool {
	switch a := a.(type) {
	case Bool:
		_, ok := b.(Bool)
		return ok
	case Int:
		_, ok := b.(Int)
		return ok
	case Unit:
		_, ok := b.(Unit)
		return ok
	case Bit:
		b2, ok := b.(Bit)
		return ok && a.W == b2.W
	case *Record:
		b2, ok := b.(*Record)
		return ok && fieldsEqual(a.Fields, b2.Fields)
	case *Header:
		b2, ok := b.(*Header)
		return ok && fieldsEqual(a.Fields, b2.Fields)
	case *Stack:
		b2, ok := b.(*Stack)
		return ok && a.Size == b2.Size && SecEqual(a.Elem, b2.Elem)
	case *MatchKind:
		b2, ok := b.(*MatchKind)
		if !ok || len(a.Members) != len(b2.Members) {
			return false
		}
		for i := range a.Members {
			if a.Members[i] != b2.Members[i] {
				return false
			}
		}
		return true
	case *Table:
		b2, ok := b.(*Table)
		return ok && a.PCTbl == b2.PCTbl
	case *Func:
		b2, ok := b.(*Func)
		if !ok || len(a.Params) != len(b2.Params) || a.PCFn != b2.PCFn ||
			a.IsAction != b2.IsAction || !SecEqual(a.Ret, b2.Ret) {
			return false
		}
		for i := range a.Params {
			p, q := a.Params[i], b2.Params[i]
			if p.Dir != q.Dir || p.CtrlPlane != q.CtrlPlane || !SecEqual(p.Type, q.Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func fieldsEqual(a, b []Field) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || !SecEqual(a[i].Type, b[i].Type) {
			return false
		}
	}
	return true
}

// SecEqual reports equality of security types: equal base types and equal
// labels.
func SecEqual(a, b SecType) bool {
	return a.L == b.L && Equal(a.T, b.T)
}

// BaseEqual reports equality of the underlying types of two security types,
// ignoring all security labels (used by the base, non-IFC checker).
func BaseEqual(a, b Type) bool {
	return Equal(Strip(a), Strip(b))
}

// Strip returns a copy of t with every security label replaced by the zero
// label, for label-insensitive comparisons.
func Strip(t Type) Type {
	switch t := t.(type) {
	case *Record:
		fs := make([]Field, len(t.Fields))
		for i, f := range t.Fields {
			fs[i] = Field{f.Name, SecType{Strip(f.Type.T), lattice.Label{}}}
		}
		return &Record{fs}
	case *Header:
		fs := make([]Field, len(t.Fields))
		for i, f := range t.Fields {
			fs[i] = Field{f.Name, SecType{Strip(f.Type.T), lattice.Label{}}}
		}
		return &Header{fs}
	case *Stack:
		return &Stack{SecType{Strip(t.Elem.T), lattice.Label{}}, t.Size}
	case *Table:
		return &Table{lattice.Label{}}
	case *Func:
		ps := make([]Param, len(t.Params))
		for i, p := range t.Params {
			ps[i] = Param{p.Name, p.Dir, SecType{Strip(p.Type.T), lattice.Label{}}, p.CtrlPlane}
		}
		return &Func{ps, lattice.Label{}, SecType{Strip(t.Ret.T), lattice.Label{}}, t.IsAction}
	default:
		return t
	}
}

// IsBase reports whether t is a base type ρ (Figure 3): bool, int, bit<n>,
// unit, record, header, stack, or match_kind — i.e., not a table or
// function type.
func IsBase(t Type) bool {
	switch t.(type) {
	case *Table, *Func:
		return false
	default:
		return true
	}
}

// IsScalar reports whether t is a scalar value type whose values are
// compared directly in the non-interference relation (Definition C.6's
// first case): bool, int, bit<n>, unit, or match_kind.
func IsScalar(t Type) bool {
	switch t.(type) {
	case Bool, Int, Bit, Unit, *MatchKind:
		return true
	default:
		return false
	}
}

// Env is the typing context Γ: a scoped map from variable names to security
// types. It is persistent in style: child scopes shadow parents.
type Env struct {
	parent *Env
	vars   map[string]SecType
}

// NewEnv returns an empty top-level typing context.
func NewEnv() *Env { return &Env{vars: map[string]SecType{}} }

// Child returns a fresh scope whose lookups fall back to e.
func (e *Env) Child() *Env { return &Env{parent: e, vars: map[string]SecType{}} }

// Bind declares or shadows name at type t in the current scope.
func (e *Env) Bind(name string, t SecType) { e.vars[name] = t }

// Lookup resolves name through the scope chain.
func (e *Env) Lookup(name string) (SecType, bool) {
	for s := e; s != nil; s = s.parent {
		if t, ok := s.vars[name]; ok {
			return t, true
		}
	}
	return SecType{}, false
}

// InCurrentScope reports whether name is bound directly in the innermost
// scope (used to reject duplicate declarations without forbidding
// shadowing).
func (e *Env) InCurrentScope(name string) bool {
	_, ok := e.vars[name]
	return ok
}

// TypeDefs is the type-definition context Δ mapping type names to their
// definitions. Definitions are stored fully resolved, so unfolding
// (Δ ⊢ τ ⇝ τ′) is a single lookup.
type TypeDefs struct {
	defs map[string]SecType
}

// NewTypeDefs returns an empty Δ.
func NewTypeDefs() *TypeDefs { return &TypeDefs{defs: map[string]SecType{}} }

// Define records a type name. It returns an error on redefinition.
func (d *TypeDefs) Define(name string, t SecType) error {
	if _, dup := d.defs[name]; dup {
		return fmt.Errorf("type %s redefined", name)
	}
	d.defs[name] = t
	return nil
}

// Lookup resolves a type name.
func (d *TypeDefs) Lookup(name string) (SecType, bool) {
	t, ok := d.defs[name]
	return t, ok
}

// Names returns the defined type names (unordered).
func (d *TypeDefs) Names() []string {
	out := make([]string, 0, len(d.defs))
	for n := range d.defs {
		out = append(out, n)
	}
	return out
}
