package corpus

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/events"
)

// countSourceReads swaps the package's source-read seam for a counting
// wrapper for the duration of the test. Only Entry.Source goes through
// the seam — metadata and index reads do not — so the count is exactly
// the number of program files read.
func countSourceReads(t *testing.T) *int {
	t.Helper()
	orig := readFile
	n := new(int)
	readFile = func(path string) ([]byte, error) {
		*n++
		return orig(path)
	}
	t.Cleanup(func() { readFile = orig })
	return n
}

// TestOpenIsMetadataOnly: with a fresh index, Open and every
// metadata-shaped consumer — Stats, Has, Len, Select, iteration over
// names and metas — perform zero program-file reads; the first Source
// call reads exactly one.
func TestOpenIsMetadataOnly(t *testing.T) {
	// First open builds and persists the index (it may read nothing
	// either, but it is not the open under test).
	c0, err := Open(regressionCorpus)
	if err != nil {
		t.Fatal(err)
	}
	if c0.Len() < 15 {
		t.Fatalf("regression corpus has %d entries, want >= 15", c0.Len())
	}

	reads := countSourceReads(t)
	c, err := Open(regressionCorpus)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Total != c0.Len() {
		t.Fatalf("Stats.Total = %d, want %d", st.Total, c0.Len())
	}
	var first *Entry
	for e, err := range c.Entries() {
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if !c.Has(e.Meta.Key) {
			t.Fatalf("%s: key not indexed", e.Name)
		}
		if first == nil {
			first = e
		}
	}
	for range c.Select(Filter{Class: "rejected-clean"}) {
	}
	if *reads != 0 {
		t.Fatalf("metadata-only consumers performed %d program reads, want 0", *reads)
	}

	if _, err := first.Source(); err != nil {
		t.Fatal(err)
	}
	if *reads != 1 {
		t.Fatalf("first Source() performed %d reads, want 1", *reads)
	}
	if _, err := first.Source(); err != nil {
		t.Fatal(err)
	}
	if *reads != 1 {
		t.Fatalf("second Source() re-read the file (%d reads)", *reads)
	}
}

// TestIndexRoundTrip: deleting the index and reopening rebuilds it with
// byte-identical statistics — the CI round-trip gate's property.
func TestIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for i, src := range []string{tinyProg, tinyProg + "\n", tinyProg + "\n\n"} {
		m := Meta{Class: "rejected-clean", Key: DedupKey("rejected-clean", src),
			FoundAt: time.Date(2026, 7, 1, i, 0, 0, 0, time.UTC), Origin: "mutate"}
		writePair(t, dir, m, src)
	}
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(dir, "findings", indexName)
	if _, err := os.Stat(indexPath); err != nil {
		t.Fatalf("Open did not persist the index: %v", err)
	}
	before, err := json.Marshal(c1.Stats())
	if err != nil {
		t.Fatal(err)
	}

	if err := os.Remove(indexPath); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	after, err := json.Marshal(c2.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("stats changed across an index rebuild:\nbefore %s\nafter  %s", before, after)
	}
	if _, err := os.Stat(indexPath); err != nil {
		t.Errorf("reopen did not rewrite the index: %v", err)
	}
}

// TestCorruptIndexFallsBackToRescan: a truncated index.json is worked
// around — the corpus rescans the directory, warns through the events
// sink, and rewrites a valid index. Sits next to TestCorruptEntries: that
// one is corrupt content, this one the corrupt cache over it.
func TestCorruptIndexFallsBackToRescan(t *testing.T) {
	dir := t.TempDir()
	m := Meta{Class: "rejected-clean", Key: DedupKey("rejected-clean", tinyProg), FoundAt: time.Now()}
	writePair(t, dir, m, tinyProg)
	if _, err := Open(dir); err != nil { // persists a valid index
		t.Fatal(err)
	}
	indexPath := filepath.Join(dir, "findings", indexName)
	if err := os.WriteFile(indexPath, []byte(`{"version": 1, "entries": [`), 0o644); err != nil {
		t.Fatal(err)
	}

	var warnings []events.Event
	c, err := OpenSink(dir, func(e events.Event) {
		if e.Kind == events.KindWarning {
			warnings = append(warnings, e)
		}
	})
	if err != nil {
		t.Fatalf("corrupt index made Open fail: %v", err)
	}
	if c.Len() != 1 || !c.Has(m.Key) {
		t.Fatalf("rescan fallback lost entries: len=%d has=%v", c.Len(), c.Has(m.Key))
	}
	if len(warnings) != 1 || warnings[0].Path != indexPath {
		t.Fatalf("warnings = %+v, want exactly one naming %s", warnings, indexPath)
	}
	// The rewritten index must load cleanly on the next open.
	raw, err := os.ReadFile(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	var idx indexFile
	if err := json.Unmarshal(raw, &idx); err != nil {
		t.Fatalf("rewritten index is not valid JSON: %v", err)
	}
	if len(idx.Entries) != 1 {
		t.Fatalf("rewritten index holds %d entries, want 1", len(idx.Entries))
	}
}

// TestStaleIndexRescans: a pair written behind the handle's back (another
// shard, a file copy) invalidates the persisted index on the next open —
// the index is a cache, never an alternate truth.
func TestStaleIndexRescans(t *testing.T) {
	dir := t.TempDir()
	a := Meta{Class: "rejected-clean", Key: DedupKey("rejected-clean", tinyProg), FoundAt: time.Now()}
	writePair(t, dir, a, tinyProg)
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	b := Meta{Class: "runtime-error", Key: DedupKey("runtime-error", tinyProg), FoundAt: time.Now()}
	writePair(t, dir, b, tinyProg)

	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || !c.Has(b.Key) {
		t.Fatalf("stale index not rescanned: len=%d has(new)=%v", c.Len(), c.Has(b.Key))
	}
}

// TestRemoveKeepsCacheCoherent: Remove deletes the pair's files and drops
// it from iteration, Has, and Stats without re-opening; a fresh handle
// agrees.
func TestRemoveKeepsCacheCoherent(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := Meta{Class: "rejected-clean", Key: DedupKey("rejected-clean", tinyProg), FoundAt: time.Now()}
	b := Meta{Class: "rejected-clean", Key: DedupKey("rejected-clean", tinyProg+"\n"), FoundAt: time.Now()}
	if _, err := c.Put(a, tinyProg); err != nil {
		t.Fatal(err)
	}
	pathB, err := c.Put(b, tinyProg+"\n")
	if err != nil {
		t.Fatal(err)
	}

	var victim *Entry
	for e, err := range c.Entries() {
		if err == nil && e.Meta.Key == b.Key {
			victim = e
		}
	}
	if victim == nil {
		t.Fatal("put entry not found in iteration")
	}
	if err := c.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if c.Has(b.Key) || c.Len() != 1 {
		t.Fatalf("Remove not reflected: has=%v len=%d", c.Has(b.Key), c.Len())
	}
	if _, err := os.Stat(pathB); !os.IsNotExist(err) {
		t.Errorf("removed program file still on disk: %v", err)
	}
	if err := c.SaveIndex(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Has(b.Key) || c2.Len() != 1 || !c2.Has(a.Key) {
		t.Errorf("fresh handle disagrees: len=%d", c2.Len())
	}
	// Compare via JSON: the live handle's times carry monotonic-clock
	// readings a reloaded index cannot, which DeepEqual would flag.
	live, fresh := mustJSON(t, c.Stats()), mustJSON(t, c2.Stats())
	if !bytes.Equal(live, fresh) {
		t.Errorf("stats diverge:\nlive  %s\nfresh %s", live, fresh)
	}
}
