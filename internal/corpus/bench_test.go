package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// synthCorpus writes n synthetic finding pairs under a fresh temp dir —
// the scale fixture for the Open/Stats benchmarks. Sources vary in size
// so Stats.Bytes exercises the stat-signature path.
func synthCorpus(b *testing.B, n int) string {
	b.Helper()
	dir := b.TempDir()
	findings := filepath.Join(dir, "findings")
	if err := os.MkdirAll(findings, 0o755); err != nil {
		b.Fatal(err)
	}
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("%s// pad %0*d\n", tinyProg, i%64+1, i)
		m := Meta{
			Class: "rejected-clean", Key: DedupKey("rejected-clean", src),
			Rule: "T-Assign", Origin: "gen", FoundAt: base.Add(time.Duration(i) * time.Second),
			Bytes: len(src),
		}
		stem := filepath.Join(findings, fmt.Sprintf("rejected-clean-%s", m.Key[:12]))
		if err := WriteMeta(stem+".json", m); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(stem+".p4", []byte(src), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	return dir
}

const benchEntries = 10_000

// BenchmarkOpenStatsEager is the pre-index baseline: open, then read
// every program source — what the eager corpus did on every Open.
func BenchmarkOpenStatsEager(b *testing.B) {
	dir := synthCorpus(b, benchEntries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		os.Remove(filepath.Join(dir, "findings", indexName))
		c, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		for e, err := range c.Entries() {
			if err == nil {
				if _, err := e.Source(); err != nil {
					b.Fatal(err)
				}
			}
		}
		_ = c.Stats()
	}
}

// BenchmarkOpenStatsRescan is the cold indexed open: no index on disk,
// so Open scans metadata and stat signatures but reads no program files.
func BenchmarkOpenStatsRescan(b *testing.B) {
	dir := synthCorpus(b, benchEntries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		os.Remove(filepath.Join(dir, "findings", indexName))
		c, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		_ = c.Stats()
	}
}

// BenchmarkOpenStatsIndexed is the steady state: a fresh index on disk,
// Open loads it, validates stat signatures, and Stats derives from
// metadata alone.
func BenchmarkOpenStatsIndexed(b *testing.B) {
	dir := synthCorpus(b, benchEntries)
	if _, err := Open(dir); err != nil { // persist the index once
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		_ = c.Stats()
	}
}
