// AST shape fingerprints: the canonical skeleton under which two findings
// count as "the same kind of program". The fingerprint abstracts
// everything a mutation or a fresh generator draw varies freely —
// identifier spellings, literal values, bit widths, which operator of a
// type-class was drawn — while keeping everything the checker's verdict
// actually hinges on: statement and declaration structure, where security
// labels sit and which lattice elements they name, and the type-class of
// each operator. Findings that differ only in renamings, constants, or an
// arith-for-arith operator swap therefore collapse onto one fingerprint,
// and a cluster of them reads as one flow-insensitivity class rather than
// dozens of unrelated programs — the I3DE-style inspectability move,
// applied to our corpus. The implementation lives here (rather than in
// internal/triage, which introduced it) so the seed scheduler can weight
// by shape cluster without importing the triage layer.

package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/token"
)

// FingerprintLen is the length of the hex fingerprint.
const FingerprintLen = 12

// Fingerprint returns the shape fingerprint of a parsed program: the
// first FingerprintLen hex digits of a SHA-256 over its canonical
// skeleton. Equal skeletons — equal program shapes — give equal
// fingerprints; the hash exists only to make them filename- and
// table-sized.
func Fingerprint(prog *ast.Program) string {
	h := sha256.Sum256([]byte(Skeleton(prog)))
	return hex.EncodeToString(h[:])[:FingerprintLen]
}

// FingerprintSource parses src and fingerprints it.
func FingerprintSource(file, src string) (string, error) {
	prog, err := parser.Parse(file, src)
	if err != nil {
		return "", err
	}
	return Fingerprint(prog), nil
}

// Skeleton renders the canonical shape skeleton the fingerprint hashes: a
// compact S-expression over abstracted nodes. It is exported so reports
// and tests can show *why* two programs share a fingerprint.
func Skeleton(prog *ast.Program) string {
	var b strings.Builder
	b.WriteString("(prog")
	for _, d := range prog.Decls {
		b.WriteByte(' ')
		declSkel(&b, d)
	}
	for _, c := range prog.Controls {
		b.WriteByte(' ')
		declSkel(&b, c)
	}
	b.WriteByte(')')
	return b.String()
}

// opClass maps an operator to its type-class, so swapping + for ^ (the
// mutator's type-preserving operator swap) does not change the skeleton,
// while swapping + for == (which changes the expression's type) does.
func opClass(op token.Kind) string {
	switch op {
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.AMP, token.PIPE, token.CARET, token.SHL, token.SHR:
		return "arith"
	case token.EQ, token.NEQ, token.LT, token.GT, token.LEQ, token.GEQ:
		return "cmp"
	case token.AND, token.OR:
		return "logic"
	case token.NOT:
		return "not"
	case token.BITNOT:
		return "bnot"
	default:
		return op.String()
	}
}

// labelSkel keeps a security annotation verbatim: label positions and the
// lattice elements they name are exactly what distinguishes one
// flow-insensitivity class from another. An unannotated position renders
// as "_" (defaults to lattice bottom, but the *absence* of an annotation
// is itself shape).
func labelSkel(label string) string {
	if label == "" {
		return "_"
	}
	return label
}

func typeSkel(b *strings.Builder, t *ast.SecType) {
	b.WriteByte('<')
	baseTypeSkel(b, t.Base)
	b.WriteByte('@')
	b.WriteString(labelSkel(t.Label))
	b.WriteByte('>')
}

func baseTypeSkel(b *strings.Builder, t ast.Type) {
	switch t := t.(type) {
	case *ast.BoolType:
		b.WriteString("bool")
	case *ast.IntType:
		b.WriteString("int")
	case *ast.BitType:
		b.WriteString("bit") // widths are literal-like: abstracted
	case *ast.VoidType:
		b.WriteString("void")
	case *ast.NamedType:
		b.WriteString("named") // names are identifiers: abstracted
	case *ast.StackType:
		b.WriteString("stack(")
		typeSkel(b, t.Elem)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "?type(%T)", t)
	}
}

func exprSkel(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case nil:
		b.WriteByte('_')
	case *ast.BoolLit:
		b.WriteByte('b')
	case *ast.IntLit:
		b.WriteByte('i')
	case *ast.Ident:
		b.WriteByte('x')
	case *ast.Unary:
		b.WriteByte('(')
		b.WriteString(opClass(e.Op))
		b.WriteByte(' ')
		exprSkel(b, e.X)
		b.WriteByte(')')
	case *ast.Binary:
		b.WriteByte('(')
		b.WriteString(opClass(e.Op))
		b.WriteByte(' ')
		exprSkel(b, e.X)
		b.WriteByte(' ')
		exprSkel(b, e.Y)
		b.WriteByte(')')
	case *ast.Index:
		b.WriteString("(ix ")
		exprSkel(b, e.X)
		b.WriteByte(' ')
		exprSkel(b, e.I)
		b.WriteByte(')')
	case *ast.RecordLit:
		fmt.Fprintf(b, "(rec%d", len(e.Fields))
		for _, f := range e.Fields {
			b.WriteByte(' ')
			exprSkel(b, f.Value)
		}
		b.WriteByte(')')
	case *ast.Member:
		// Field names are identifiers (abstracted), but projection depth is
		// structure: hdr.d.f and hdr.d are different shapes.
		b.WriteString("(fld ")
		exprSkel(b, e.X)
		b.WriteByte(')')
	case *ast.Call:
		fmt.Fprintf(b, "(call%d ", len(e.Args))
		exprSkel(b, e.Fun)
		for _, a := range e.Args {
			b.WriteByte(' ')
			exprSkel(b, a)
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "?expr(%T)", e)
	}
}

func stmtSkel(b *strings.Builder, s ast.Stmt) {
	switch s := s.(type) {
	case nil:
		b.WriteByte('_')
	case *ast.AssignStmt:
		b.WriteString("(= ")
		exprSkel(b, s.LHS)
		b.WriteByte(' ')
		exprSkel(b, s.RHS)
		b.WriteByte(')')
	case *ast.IfStmt:
		b.WriteString("(if ")
		exprSkel(b, s.Cond)
		b.WriteByte(' ')
		stmtSkel(b, s.Then)
		b.WriteByte(' ')
		stmtSkel(b, s.Else)
		b.WriteByte(')')
	case *ast.BlockStmt:
		b.WriteString("{")
		for i, st := range s.Stmts {
			if i > 0 {
				b.WriteByte(' ')
			}
			stmtSkel(b, st)
		}
		b.WriteString("}")
	case *ast.ExitStmt:
		b.WriteString("exit")
	case *ast.ReturnStmt:
		b.WriteString("(ret ")
		exprSkel(b, s.X)
		b.WriteByte(')')
	case *ast.ExprStmt:
		b.WriteString("(do ")
		exprSkel(b, s.X)
		b.WriteByte(')')
	case *ast.ApplyStmt:
		b.WriteString("(apply ")
		exprSkel(b, s.Table)
		b.WriteByte(')')
	case *ast.DeclStmt:
		declSkel(b, s.Decl)
	default:
		fmt.Fprintf(b, "?stmt(%T)", s)
	}
}

func paramSkel(b *strings.Builder, p ast.Param) {
	b.WriteByte('(')
	if p.Dir != ast.DirNone {
		b.WriteString(p.Dir.String())
		b.WriteByte(' ')
	}
	typeSkel(b, p.Type)
	b.WriteByte(')')
}

func declSkel(b *strings.Builder, d ast.Decl) {
	switch d := d.(type) {
	case *ast.VarDecl:
		switch {
		case d.Register:
			b.WriteString("(register ")
		case d.Const:
			b.WriteString("(const ")
		default:
			b.WriteString("(var ")
		}
		typeSkel(b, d.Type)
		if d.Init != nil {
			b.WriteByte(' ')
			exprSkel(b, d.Init)
		}
		b.WriteByte(')')
	case *ast.TypedefDecl:
		b.WriteString("(typedef ")
		typeSkel(b, d.Type)
		b.WriteByte(')')
	case *ast.MatchKindDecl:
		fmt.Fprintf(b, "(match_kind%d)", len(d.Members))
	case *ast.HeaderDecl:
		b.WriteString("(header")
		for _, f := range d.Fields {
			b.WriteByte(' ')
			typeSkel(b, f.Type)
		}
		b.WriteByte(')')
	case *ast.StructDecl:
		b.WriteString("(struct")
		for _, f := range d.Fields {
			b.WriteByte(' ')
			typeSkel(b, f.Type)
		}
		b.WriteByte(')')
	case *ast.FuncDecl:
		if d.IsAction {
			b.WriteString("(action")
		} else {
			b.WriteString("(func")
			if d.Ret != nil {
				b.WriteByte(' ')
				typeSkel(b, d.Ret)
			}
		}
		for _, p := range d.Params {
			b.WriteByte(' ')
			paramSkel(b, p)
		}
		b.WriteByte(' ')
		stmtSkel(b, d.Body)
		b.WriteByte(')')
	case *ast.TableDecl:
		b.WriteString("(table keys(")
		for i, k := range d.Keys {
			if i > 0 {
				b.WriteByte(' ')
			}
			exprSkel(b, k.Expr)
			// Match kinds are a small closed vocabulary (exact, lpm,
			// ternary), not free identifiers: keep them.
			b.WriteByte(':')
			b.WriteString(k.MatchKind)
		}
		fmt.Fprintf(b, ") actions%d", len(d.Actions))
		if d.Default != nil {
			b.WriteString(" default")
		}
		b.WriteByte(')')
	case *ast.ControlDecl:
		b.WriteString("(control")
		if d.PCLabel != "" {
			// The @pc annotation is a label position like any other.
			b.WriteString(" @pc:")
			b.WriteString(d.PCLabel)
		}
		for _, p := range d.Params {
			b.WriteByte(' ')
			paramSkel(b, p)
		}
		for _, l := range d.Locals {
			b.WriteByte(' ')
			declSkel(b, l)
		}
		b.WriteByte(' ')
		stmtSkel(b, d.Apply)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "?decl(%T)", d)
	}
}
