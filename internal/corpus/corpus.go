// Package corpus is the single source of truth for on-disk finding
// corpora: the content-addressed layout every campaign-stack operation
// (campaign persistence, replay, triage, retire, the mutation seed pool)
// reads and writes. Before this package existed each of those re-opened,
// re-walked, and re-parsed the same directory with its own ad-hoc walker;
// now they all share one cached, validated handle.
//
//	<dir>/findings/<class>-<key12>.p4    the (possibly minimized) program
//	<dir>/findings/<class>-<key12>.json  verdict metadata (Meta below)
//	<dir>/findings/index.json            the corpus index (this package's)
//	<dir>/state/...                      per-shard cursors and novelty files
//
// Open is metadata-only: it loads the findings index — rebuilding it
// transparently from a directory rescan when it is absent, stale, or
// corrupt — and caches every entry's metadata and load error, but reads
// no program source. Entry.Source, Entry.Program, and Entry.Fingerprint
// defer the file read and the parse until a consumer first asks, and
// each happens at most once per handle no matter how many consumers
// share it; Has, Stats, Filter, and Select are answered entirely from
// the index. Staleness is detected from directory metadata alone (file
// name set, sizes, mtimes), so a valid index makes Open one ReadDir plus
// one small JSON read regardless of corpus size.
//
// The layout is merge-friendly by construction: finding filenames derive
// from a hash of (class, source), so copying the findings/ directories of
// two shards into one corpus deduplicates identical findings by collision
// and never clobbers distinct ones. A stale index copied along rides the
// staleness check and is rebuilt on the next Open.
package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/events"
	"repro/internal/gen"
	"repro/internal/parser"
)

// readFile is the program-source reader, swappable by tests that count
// how many source reads an access pattern performs (the index makes
// metadata-only paths perform zero).
var readFile = os.ReadFile

// opens counts Corpus handles opened by Open/OpenSink since process
// start; tests use it to assert a whole operation chain shared one
// handle.
var opens atomic.Int64

// Opens reports how many corpus handles this process has opened.
func Opens() int64 { return opens.Load() }

// Class names a corpus finding class; it prefixes corpus filenames. The
// class vocabulary (soundness-violation, rejected-clean, ...) is defined
// by internal/campaign, which owns the mapping from differential verdicts
// to classes; this package treats classes as opaque grouping keys.
type Class string

// Meta is the verdict metadata persisted next to each finding.
type Meta struct {
	// Class is the finding's corpus class (the filename prefix).
	Class Class `json:"class"`
	// Rule is the typing rule the IFC checker cited when it rejected the
	// program (e.g. "T-Assign"), "" when the class involves no IFC
	// rejection or the corpus predates rule recording. Triage clusters
	// findings by it; old corpora fall back to extracting the rule from
	// Detail's trailing "[Rule]" marker (see CitedRule).
	Rule string `json:"rule,omitempty"`
	// Detail is the witness, error text, or disagreement description.
	Detail string `json:"detail"`
	// Index is the global campaign index of the generating job; with Gen
	// and GenSeed it regenerates the original (unminimized) program —
	// when Origin is "gen". Mutants are not regenerable from the seed
	// alone (they also depend on the seed pool at mutation time); their
	// provenance is ParentKey.
	Index int64 `json:"index"`
	// GenSeed is the program's generation seed (campaign seed + Index).
	GenSeed int64 `json:"gen_seed"`
	// NISeed seeds the program's NI experiment for exact replay.
	NISeed int64 `json:"ni_seed"`
	// NITrials and NITrialsMax record the NI budget the finding was
	// classified under, so replay re-checks with the same budget (zero
	// in pre-mutation corpora; replay then uses its own defaults).
	NITrials    int `json:"ni_trials,omitempty"`
	NITrialsMax int `json:"ni_trials_max,omitempty"`
	// NIOracle records the NI backend the finding was classified under
	// ("" = the historical adaptive default); ExhaustBudget and
	// ExhaustProbes pin the exhaustive oracle's enumeration parameters so
	// replay reproduces the same eligibility and probe count. Proof
	// provenance: a proved-imprecise or secret-exhaustive entry is only
	// meaningful together with the oracle (and coverage) that certified
	// it.
	NIOracle      string `json:"ni_oracle,omitempty"`
	ExhaustBudget uint64 `json:"exhaust_budget,omitempty"`
	ExhaustProbes int    `json:"exhaust_probes,omitempty"`
	// Gen echoes the generator configuration the seeds assume, including
	// the campaign lattice spec.
	Gen gen.Config `json:"gen"`
	// Origin is "gen" for freshly generated programs and "mutate" for
	// corpus-seeded mutants ("" in pre-mutation corpora, meaning "gen").
	Origin string `json:"origin,omitempty"`
	// ParentKey is the dedup key of the corpus seed a mutant was derived
	// from ("" for fresh programs); MutateOps names the mutation operators
	// applied, in order, for triage.
	ParentKey string `json:"parent_key,omitempty"`
	MutateOps string `json:"mutate_ops,omitempty"`
	// Shard/NumShards record which shard found it (0/1 when unsharded).
	Shard     int `json:"shard"`
	NumShards int `json:"num_shards"`
	// OriginalBytes and Bytes are the program size before and after
	// minimization (equal when minimization was off or unproductive).
	OriginalBytes int  `json:"original_bytes"`
	Bytes         int  `json:"bytes"`
	Minimized     bool `json:"minimized"`
	// Key is the full dedup key (hex SHA-256 over class and source).
	Key string `json:"key"`
	// FoundAt is the wall-clock time the finding was persisted.
	FoundAt time.Time `json:"found_at"`
	// RetiredFrom and RetiredAt are set only on entries of a retired
	// corpus (see internal/triage): the class the finding was originally
	// recorded under before its defect was fixed and the entry was
	// re-recorded under the current stack's verdict, and when.
	RetiredFrom Class     `json:"retired_from,omitempty"`
	RetiredAt   time.Time `json:"retired_at,omitzero"`
}

// CitedRule returns the typing rule this finding's rejection cited: the
// recorded Rule field when present, otherwise (pre-rule corpora) the
// trailing "[Rule]" marker diag.Diagnostic renders into the detail text;
// "-" when there is none. Triage clusters and the seed pool's cluster
// weighting both group by it.
func (m *Meta) CitedRule() string {
	if m.Rule != "" {
		return m.Rule
	}
	if i := strings.LastIndex(m.Detail, "["); i >= 0 {
		if j := strings.Index(m.Detail[i:], "]"); j > 1 {
			if r := m.Detail[i+1 : i+j]; ruleShaped(r) {
				return r
			}
		}
	}
	return "-"
}

// ruleShaped reports whether a bracketed token looks like a typing-rule
// name ("T-Assign", "T-If") rather than incidental brackets in witness
// text such as an array index ("hdr.h[2]"): letter first, then letters,
// digits, and dashes only.
func ruleShaped(r string) bool {
	for i, c := range r {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case i > 0 && (c >= '0' && c <= '9' || c == '-'):
		default:
			return false
		}
	}
	return r != ""
}

// DedupKey is the corpus identity of a finding: programs with the same
// class and (post-minimization) source are the same finding, regardless of
// which seed, shard, or run produced them. Minimization canonicalizes
// aggressively, so minimizing campaigns collapse families of equivalent
// findings onto one corpus entry.
func DedupKey(class Class, source string) string {
	h := sha256.New()
	h.Write([]byte(class))
	h.Write([]byte{0})
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}

// WriteMeta encodes m as indented JSON at path — the corpus metadata
// file format. Retired-corpus writers use it directly so promoted entries
// stay byte-compatible with campaign-written ones.
func WriteMeta(path string, m Meta) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("corpus: encode metadata: %w", err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("corpus: persist metadata: %w", err)
	}
	return nil
}

// Entry is one finding pair as indexed by Open: its metadata and — when
// the pair could not be loaded — the load error. Bad pairs stay in the
// iteration (callers choose whether they are fatal, as replay and
// triage's metadata gate do, or skippable, as the seed pool does); their
// Meta is zero. The program source is not read until Source, Program, or
// Fingerprint first asks for it.
type Entry struct {
	// Name is the metadata filename within findings/ (the iteration key).
	Name string
	// Path is the program file; MetaPath the metadata file beside it.
	Path     string
	MetaPath string
	// Meta is the loaded metadata (zero when Err is set).
	Meta Meta
	// Err is the load failure, if any: unreadable file, foreign or
	// truncated metadata, missing program.
	Err error

	// metaSize/metaMTime and progSize/progMTime are the stat signature
	// the index's staleness check compares against the directory
	// (progSize is -1 when the program file was absent at scan time).
	metaSize  int64
	metaMTime int64
	progSize  int64
	progMTime int64

	srcOnce sync.Once
	loaded  bool // source pre-populated (Put) — skip the file read
	src     string
	srcErr  error

	parseOnce sync.Once
	prog      *ast.Program
	parseErr  error
	fp        string
}

// Source reads the entry's program source, at most once per handle —
// Open itself reads no source files, so consumers that never ask (Has,
// Stats, Filter) never pay for one.
func (e *Entry) Source() (string, error) {
	e.srcOnce.Do(func() {
		if e.loaded {
			return
		}
		if e.Err != nil {
			e.srcErr = e.Err
			return
		}
		raw, err := readFile(e.Path)
		if err != nil {
			e.srcErr = err
			return
		}
		e.src = string(raw)
		e.loaded = true
	})
	return e.src, e.srcErr
}

// Program parses the entry's source, at most once per Open — every later
// call (and Fingerprint) returns the cached result, so triage, the seed
// pool, and any other consumer sharing the handle never re-parse. The
// source itself is lazily read by the first call.
func (e *Entry) Program() (*ast.Program, error) {
	e.parseOnce.Do(func() {
		src, err := e.Source()
		if err != nil {
			e.parseErr = err
			return
		}
		e.prog, e.parseErr = parser.Parse(strings.TrimSuffix(e.Name, ".json")+".p4", src)
		if e.parseErr == nil {
			e.fp = Fingerprint(e.prog)
		}
	})
	return e.prog, e.parseErr
}

// Fingerprint returns the entry's AST shape fingerprint, computed (and
// parsed) at most once. The error is the read or parse failure, if any.
func (e *Entry) Fingerprint() (string, error) {
	_, err := e.Program()
	return e.fp, err
}

// Rule returns the typing rule the entry's rejection cited ("-" if none);
// see Meta.CitedRule.
func (e *Entry) Rule() string { return e.Meta.CitedRule() }

// Corpus is an open, cached, validated handle over a finding corpus. All
// metadata reads go through the in-memory index built by Open; Put and
// Remove keep the index, the dedup map, and the on-disk files coherent.
// The zero value and the nil pointer are both usable as an empty,
// persistence-free corpus for Has.
type Corpus struct {
	dir     string
	sink    events.Sink
	entries []*Entry        // name-sorted
	known   map[string]bool // dedup keys of well-formed entries
	dirty   bool            // in-memory index diverged from findings/index.json
}

// indexName is the on-disk index file within findings/ — excluded from
// entry iteration and rebuilt whenever it is absent, stale, or corrupt.
const indexName = "index.json"

// indexVersion guards the index format; a mismatch forces a rescan.
const indexVersion = 1

// indexEntry is one Entry as persisted in the index: the metadata (or
// load error) plus the stat signature of the files it was scanned from.
type indexEntry struct {
	Name      string `json:"name"`
	Meta      Meta   `json:"meta"`
	Err       string `json:"err,omitempty"`
	MetaSize  int64  `json:"meta_size"`
	MetaMTime int64  `json:"meta_mtime"`
	ProgSize  int64  `json:"prog_size"`
	ProgMTime int64  `json:"prog_mtime"`
}

// indexFile is the findings/index.json document.
type indexFile struct {
	Version int          `json:"version"`
	Entries []indexEntry `json:"entries"`
}

// Open reads the corpus under dir — metadata only, through the findings
// index. A missing findings directory is an empty corpus (the first
// campaign run and triage of a not-yet-created corpus both start from
// nothing); any other directory-level failure is an error. Per-entry
// problems are not errors here — they are cached on the entry and
// surfaced by iteration, so each caller decides whether a corrupt pair
// is fatal.
func Open(dir string) (*Corpus, error) { return OpenSink(dir, nil) }

// OpenSink is Open with an events sink for recoverable anomalies: a
// corrupt or truncated index.json is reported as a warning event, then
// rebuilt from a full rescan. A nil sink discards the warnings.
func OpenSink(dir string, sink events.Sink) (*Corpus, error) {
	if dir == "" {
		return nil, fmt.Errorf("corpus: empty directory")
	}
	c := &Corpus{dir: dir, sink: sink, known: map[string]bool{}}
	findings := filepath.Join(dir, "findings")
	dirents, err := os.ReadDir(findings)
	if os.IsNotExist(err) {
		opens.Add(1)
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	if entries, ok := loadIndex(findings, dirents, sink); ok {
		c.entries = entries
	} else {
		c.entries = scanEntries(findings, dirents)
		c.dirty = true
		// Persist the rebuilt index best-effort: a read-only corpus stays
		// usable (every Open rescans), a writable one amortizes the scan.
		_ = c.SaveIndex()
	}
	for _, e := range c.entries {
		if e.Err == nil {
			c.known[e.Meta.Key] = true
		}
	}
	opens.Add(1)
	return c, nil
}

// scanEntries rebuilds the entry list from the findings directory: one
// entry per metadata file, name-sorted. Only metadata files are read;
// program files are stat'ed for the index signature, never opened.
func scanEntries(findings string, dirents []os.DirEntry) []*Entry {
	var entries []*Entry
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") || de.Name() == indexName {
			continue
		}
		entries = append(entries, scanEntry(findings, de.Name()))
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries
}

// scanEntry loads one finding's metadata by its filename and records the
// pair's stat signature. The program file is stat'ed, not read.
func scanEntry(findings, jsonName string) *Entry {
	e := &Entry{
		Name:     jsonName,
		MetaPath: filepath.Join(findings, jsonName),
		Path:     filepath.Join(findings, strings.TrimSuffix(jsonName, ".json")+".p4"),
		progSize: -1,
	}
	if pi, err := os.Stat(e.Path); err == nil {
		e.progSize, e.progMTime = pi.Size(), pi.ModTime().UnixNano()
	}
	fi, err := os.Stat(e.MetaPath)
	if err != nil {
		e.Err = err
		return e
	}
	e.metaSize, e.metaMTime = fi.Size(), fi.ModTime().UnixNano()
	raw, err := os.ReadFile(e.MetaPath)
	if err != nil {
		e.Err = err
		return e
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		e.Err = fmt.Errorf("corpus: %s: %w", jsonName, err)
		return e
	}
	if m.Key == "" || m.Class == "" {
		e.Err = fmt.Errorf("corpus: %s: not a finding metadata file", jsonName)
		return e
	}
	if e.progSize < 0 {
		e.Err = fmt.Errorf("corpus: %s: missing program file", e.Path)
		return e
	}
	e.Meta = m
	return e
}

// loadIndex reads findings/index.json and validates it against the
// directory listing: the metadata-file name set must match exactly and
// every recorded stat signature (size, mtime) must agree, for metadata
// and program files alike. ok is false when the index is absent, stale,
// or corrupt — corruption additionally warns through the sink; staleness
// and absence are the normal flow of a corpus written by other handles.
func loadIndex(findings string, dirents []os.DirEntry, sink events.Sink) ([]*Entry, bool) {
	path := filepath.Join(findings, indexName)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var idx indexFile
	if err := json.Unmarshal(raw, &idx); err != nil {
		sink.Emit(events.Event{
			Kind: events.KindWarning, Op: "corpus", Path: path,
			Detail: fmt.Sprintf("corrupt corpus index (%v) — rebuilding from a directory rescan", err),
		})
		return nil, false
	}
	if idx.Version != indexVersion {
		return nil, false
	}
	onDisk := map[string]os.DirEntry{}
	jsonCount := 0
	for _, de := range dirents {
		if de.IsDir() {
			continue
		}
		onDisk[de.Name()] = de
		if strings.HasSuffix(de.Name(), ".json") && de.Name() != indexName {
			jsonCount++
		}
	}
	if jsonCount != len(idx.Entries) {
		return nil, false
	}
	entries := make([]*Entry, 0, len(idx.Entries))
	for _, ie := range idx.Entries {
		if !strings.HasSuffix(ie.Name, ".json") || ie.Name == indexName {
			return nil, false
		}
		de, ok := onDisk[ie.Name]
		if !ok {
			return nil, false
		}
		fi, err := de.Info()
		if err != nil || fi.Size() != ie.MetaSize || fi.ModTime().UnixNano() != ie.MetaMTime {
			return nil, false
		}
		progName := strings.TrimSuffix(ie.Name, ".json") + ".p4"
		pde, havePde := onDisk[progName]
		if ie.ProgSize < 0 {
			if havePde {
				return nil, false
			}
		} else {
			if !havePde {
				return nil, false
			}
			pfi, err := pde.Info()
			if err != nil || pfi.Size() != ie.ProgSize || pfi.ModTime().UnixNano() != ie.ProgMTime {
				return nil, false
			}
		}
		e := &Entry{
			Name:      ie.Name,
			Path:      filepath.Join(findings, progName),
			MetaPath:  filepath.Join(findings, ie.Name),
			Meta:      ie.Meta,
			metaSize:  ie.MetaSize,
			metaMTime: ie.MetaMTime,
			progSize:  ie.ProgSize,
			progMTime: ie.ProgMTime,
		}
		if ie.Err != "" {
			e.Err = errors.New(ie.Err)
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, true
}

// SaveIndex persists the in-memory index to findings/index.json when it
// has diverged from disk (after a rescan, Put, or Remove); a clean handle
// is a no-op. The write is atomic (temp file + rename), so concurrent
// readers see the old index or the new one, never a torn file. Engines
// call it at the end of a write-side operation; a missed save self-heals
// through the staleness rescan on the next Open.
func (c *Corpus) SaveIndex() error {
	if c == nil || c.dir == "" || !c.dirty {
		return nil
	}
	findings := filepath.Join(c.dir, "findings")
	idx := indexFile{Version: indexVersion, Entries: make([]indexEntry, 0, len(c.entries))}
	for _, e := range c.entries {
		ie := indexEntry{
			Name:     e.Name,
			Meta:     e.Meta,
			MetaSize: e.metaSize, MetaMTime: e.metaMTime,
			ProgSize: e.progSize, ProgMTime: e.progMTime,
		}
		if e.Err != nil {
			ie.Err = e.Err.Error()
		}
		idx.Entries = append(idx.Entries, ie)
	}
	raw, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("corpus: encode index: %w", err)
	}
	tmp, err := os.CreateTemp(findings, ".index-*")
	if err != nil {
		return fmt.Errorf("corpus: persist index: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: persist index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: persist index: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(findings, indexName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: persist index: %w", err)
	}
	c.dirty = false
	return nil
}

// Dir returns the corpus directory ("" for the zero/nil corpus).
func (c *Corpus) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Len is the number of indexed entries, well-formed and corrupt alike.
func (c *Corpus) Len() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}

// Has reports whether a finding with the given dedup key is present.
func (c *Corpus) Has(key string) bool { return c != nil && c.known[key] }

// Entries iterates every indexed entry in name-sorted order, yielding
// each entry together with its load error (nil for well-formed pairs).
// This is the iter.Seq2 form of the historical forEachFinding walker;
// replay, triage, retire, and the seed pool all consume it.
func (c *Corpus) Entries() iter.Seq2[*Entry, error] {
	return func(yield func(*Entry, error) bool) {
		if c == nil {
			return
		}
		for _, e := range c.entries {
			if !yield(e, e.Err) {
				return
			}
		}
	}
}

// Filter selects corpus entries by metadata. The zero filter matches
// every well-formed entry; corrupt entries never match (their metadata is
// unknown).
type Filter struct {
	// Class matches the finding class exactly ("" = any).
	Class Class
	// Rule matches the cited typing rule, with the same detail-marker
	// fallback triage clustering uses ("" = any; "-" = entries citing no
	// rule).
	Rule string
	// Origin matches the finding origin; "gen" also matches pre-mutation
	// entries with an empty recorded origin ("" = any).
	Origin string
	// Lattice matches the campaign lattice spec the finding was recorded
	// under; "two-point" also matches the pre-lattice empty spec
	// ("" = any).
	Lattice string
}

// Match reports whether e is well-formed and satisfies every set field.
func (f Filter) Match(e *Entry) bool {
	if e.Err != nil {
		return false
	}
	if f.Class != "" && e.Meta.Class != f.Class {
		return false
	}
	if f.Rule != "" && e.Rule() != f.Rule {
		return false
	}
	if f.Origin != "" {
		origin := e.Meta.Origin
		if origin == "" {
			origin = "gen"
		}
		if origin != f.Origin {
			return false
		}
	}
	if f.Lattice != "" {
		lat := e.Meta.Gen.Lattice
		if lat == "" {
			lat = "two-point"
		}
		if lat != f.Lattice {
			return false
		}
	}
	return true
}

// Select iterates the well-formed entries matching f, in name-sorted
// order.
func (c *Corpus) Select(f Filter) iter.Seq[*Entry] {
	return func(yield func(*Entry) bool) {
		if c == nil {
			return
		}
		for _, e := range c.entries {
			if f.Match(e) && !yield(e) {
				return
			}
		}
	}
}

// Stats summarizes an open corpus.
type Stats struct {
	// Total counts well-formed entries; Errors counts corrupt pairs.
	Total  int `json:"total"`
	Errors int `json:"errors"`
	// ByClass and ByOrigin split Total ("gen" absorbs the pre-mutation
	// empty origin).
	ByClass  map[Class]int  `json:"by_class,omitempty"`
	ByOrigin map[string]int `json:"by_origin,omitempty"`
	// Bytes totals the (post-minimization) program sizes.
	Bytes int `json:"bytes"`
	// Oldest and Newest bracket the recorded discovery times (zero for an
	// empty corpus or one predating FoundAt).
	Oldest time.Time `json:"oldest,omitzero"`
	Newest time.Time `json:"newest,omitzero"`
}

// Stats computes summary statistics over the index — program sizes come
// from the index's stat signatures, so no source file is read.
func (c *Corpus) Stats() Stats {
	st := Stats{ByClass: map[Class]int{}, ByOrigin: map[string]int{}}
	if c == nil {
		return st
	}
	for _, e := range c.entries {
		if e.Err != nil {
			st.Errors++
			continue
		}
		st.Total++
		st.ByClass[e.Meta.Class]++
		origin := e.Meta.Origin
		if origin == "" {
			origin = "gen"
		}
		st.ByOrigin[origin]++
		st.Bytes += int(e.progSize)
		if !e.Meta.FoundAt.IsZero() {
			if st.Oldest.IsZero() || e.Meta.FoundAt.Before(st.Oldest) {
				st.Oldest = e.Meta.FoundAt
			}
			if e.Meta.FoundAt.After(st.Newest) {
				st.Newest = e.Meta.FoundAt
			}
		}
	}
	return st
}

// Put persists one finding pair and keeps the handle coherent: the new
// entry joins the name-sorted index (its source already in memory — no
// read-back) and its key the dedup map; the on-disk index is marked
// stale until the next SaveIndex. The findings directory is created on
// first write, so opening a corpus never creates it. It returns the
// program file's path.
func (c *Corpus) Put(m Meta, source string) (string, error) {
	if c == nil || c.dir == "" {
		return "", fmt.Errorf("corpus: Put on a nil corpus")
	}
	if m.Class == "" || len(m.Key) < 12 {
		// The stem embeds Key[:12]; engines pass DedupKey output (64 hex
		// chars), but Put is public surface now and must not panic on a
		// hand-built Meta.
		return "", fmt.Errorf("corpus: Put needs a class and a dedup key of >= 12 chars (use DedupKey), got class %q, key %q", m.Class, m.Key)
	}
	findings := filepath.Join(c.dir, "findings")
	if err := os.MkdirAll(findings, 0o755); err != nil {
		return "", fmt.Errorf("corpus: %w", err)
	}
	stem := fmt.Sprintf("%s-%s", m.Class, m.Key[:12])
	e := &Entry{
		Name:     stem + ".json",
		Path:     filepath.Join(findings, stem+".p4"),
		MetaPath: filepath.Join(findings, stem+".json"),
		Meta:     m,
		src:      source,
		loaded:   true,
		progSize: -1,
	}
	if err := os.WriteFile(e.Path, []byte(source), 0o644); err != nil {
		return "", fmt.Errorf("corpus: persist finding: %w", err)
	}
	if err := WriteMeta(e.MetaPath, m); err != nil {
		return "", err
	}
	// Record the written files' stat signatures so the next SaveIndex
	// captures them and later Opens validate against them.
	if fi, err := os.Stat(e.MetaPath); err == nil {
		e.metaSize, e.metaMTime = fi.Size(), fi.ModTime().UnixNano()
	}
	if pi, err := os.Stat(e.Path); err == nil {
		e.progSize, e.progMTime = pi.Size(), pi.ModTime().UnixNano()
	}
	i := sort.Search(len(c.entries), func(i int) bool { return c.entries[i].Name >= e.Name })
	if i < len(c.entries) && c.entries[i].Name == e.Name {
		c.entries[i] = e // overwrite of an existing pair
	} else {
		c.entries = append(c.entries, nil)
		copy(c.entries[i+1:], c.entries[i:])
		c.entries[i] = e
	}
	c.known[m.Key] = true
	c.dirty = true
	return e.Path, nil
}

// Remove deletes one entry's pair from disk and from the handle: the
// index drops it, its dedup key leaves the map, and the on-disk index is
// marked stale until the next SaveIndex. The program file is removed
// first, so a failure mid-removal leaves a metadata orphan the next scan
// reports rather than a silently half-present finding.
func (c *Corpus) Remove(e *Entry) error {
	if c == nil || c.dir == "" {
		return fmt.Errorf("corpus: Remove on a nil corpus")
	}
	if err := os.Remove(e.Path); err != nil {
		return err
	}
	if err := os.Remove(e.MetaPath); err != nil {
		return err
	}
	i := sort.Search(len(c.entries), func(i int) bool { return c.entries[i].Name >= e.Name })
	if i < len(c.entries) && c.entries[i].Name == e.Name {
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
	}
	if e.Err == nil {
		delete(c.known, e.Meta.Key)
	}
	c.dirty = true
	return nil
}
