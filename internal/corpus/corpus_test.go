package corpus

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// regressionCorpus is the checked-in 15-finding corpus the CI replay and
// triage gates run over.
const regressionCorpus = "../../testdata/regression-corpus"

// walkLikeTheOldWalker re-implements, directly against the filesystem,
// the contract of the historical campaign.forEachFinding: name-sorted
// .json entries under dir/findings, each loaded as (meta, source) or an
// error. The Corpus handle must be observationally equivalent to it.
func walkLikeTheOldWalker(t *testing.T, dir string) (names []string, metas []Meta, sources []string, errs []bool) {
	t.Helper()
	findings := filepath.Join(dir, "findings")
	dirents, err := os.ReadDir(findings)
	if os.IsNotExist(err) {
		return nil, nil, nil, nil
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") || de.Name() == indexName {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		var m Meta
		var src []byte
		raw, err := os.ReadFile(filepath.Join(findings, name))
		bad := err != nil
		if !bad {
			bad = json.Unmarshal(raw, &m) != nil || m.Key == "" || m.Class == ""
		}
		if !bad {
			src, err = os.ReadFile(filepath.Join(findings, strings.TrimSuffix(name, ".json")+".p4"))
			bad = err != nil
		}
		if bad {
			m = Meta{}
			src = nil
		}
		metas = append(metas, m)
		sources = append(sources, string(src))
		errs = append(errs, bad)
	}
	return names, metas, sources, errs
}

// TestEntriesEquivalentToOldWalker: over the checked-in regression
// corpus, Corpus iteration yields exactly the order and content the
// historical walker produced — the property that made swapping every
// consumer onto the handle safe.
func TestEntriesEquivalentToOldWalker(t *testing.T) {
	names, metas, sources, errs := walkLikeTheOldWalker(t, regressionCorpus)
	if len(names) < 15 {
		t.Fatalf("regression corpus has %d entries, want >= 15", len(names))
	}
	c, err := Open(regressionCorpus)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for e, err := range c.Entries() {
		if i >= len(names) {
			t.Fatalf("Corpus yields more than the %d walked entries", len(names))
		}
		if e.Name != names[i] {
			t.Errorf("entry %d: name %q, walker saw %q", i, e.Name, names[i])
		}
		if (err != nil) != errs[i] {
			t.Errorf("entry %d (%s): err=%v, walker bad=%v", i, e.Name, err, errs[i])
		}
		if err == nil {
			if e.Meta != metas[i] {
				t.Errorf("entry %d (%s): meta differs from walker's", i, e.Name)
			}
			if src, err := e.Source(); err != nil || src != sources[i] {
				t.Errorf("entry %d (%s): source differs from walker's (err=%v)", i, e.Name, err)
			}
		}
		i++
	}
	if i != len(names) {
		t.Fatalf("Corpus yielded %d entries, walker %d", i, len(names))
	}
	if c.Len() != len(names) {
		t.Errorf("Len() = %d, want %d", c.Len(), len(names))
	}
}

// TestEntriesEarlyStop: breaking out of the iteration stops it (the
// iter.Seq2 contract the old walker's `return false` became).
func TestEntriesEarlyStop(t *testing.T) {
	c, err := Open(regressionCorpus)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range c.Entries() {
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("early-stopped iteration ran %d times", n)
	}
}

// writePair drops one finding pair into dir's findings directory.
func writePair(t *testing.T, dir string, m Meta, src string) string {
	t.Helper()
	findings := filepath.Join(dir, "findings")
	if err := os.MkdirAll(findings, 0o755); err != nil {
		t.Fatal(err)
	}
	stem := string(m.Class) + "-" + m.Key[:12]
	if err := WriteMeta(filepath.Join(findings, stem+".json"), m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(findings, stem+".p4"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return stem
}

const tinyProg = "header d_t { <bit<8>, low> lo; }\nstruct H { d_t d; }\ncontrol c(inout H hdr) { apply { hdr.d.lo = 8w1; } }\n"

// TestCorruptEntries: every corrupt-pair shape is yielded with an error,
// never silently dropped, and never poisons the well-formed entries.
func TestCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	findings := filepath.Join(dir, "findings")
	good := Meta{Class: "rejected-clean", Key: DedupKey("rejected-clean", tinyProg), FoundAt: time.Now()}
	writePair(t, dir, good, tinyProg)
	// Truncated JSON.
	os.WriteFile(filepath.Join(findings, "a-truncated.json"), []byte("{\"class\":"), 0o644)
	// Foreign JSON (not a finding's metadata).
	os.WriteFile(filepath.Join(findings, "b-foreign.json"), []byte("{\"hello\":1}\n"), 0o644)
	// Metadata without its program file.
	orphan := Meta{Class: "runtime-error", Key: DedupKey("runtime-error", "gone")}
	os.WriteFile(filepath.Join(findings, "c-orphan.json"), mustJSON(t, orphan), 0o644)

	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var goodN, badN int
	for e, err := range c.Entries() {
		if err != nil {
			badN++
			if src, _ := e.Source(); e.Meta != (Meta{}) || src != "" {
				t.Errorf("%s: errored entry carries data", e.Name)
			}
			continue
		}
		goodN++
	}
	if goodN != 1 || badN != 3 {
		t.Fatalf("good=%d bad=%d, want 1 and 3", goodN, badN)
	}
	st := c.Stats()
	if st.Total != 1 || st.Errors != 3 {
		t.Errorf("Stats: total=%d errors=%d, want 1 and 3", st.Total, st.Errors)
	}
	if !c.Has(good.Key) {
		t.Error("well-formed key not indexed")
	}
	if c.Has(orphan.Key) {
		t.Error("orphan (corrupt) key indexed as known")
	}
	// Filters never match corrupt entries.
	n := 0
	for range c.Select(Filter{}) {
		n++
	}
	if n != 1 {
		t.Errorf("Select(zero filter) yielded %d entries, want the 1 well-formed", n)
	}
	// An unparseable program is not a load error — but Fingerprint and
	// Program report the parse failure.
	unparseable := Meta{Class: "generator-bug", Key: DedupKey("generator-bug", "not p4")}
	writePair(t, dir, unparseable, "not p4")
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for e := range c2.Select(Filter{Class: "generator-bug"}) {
		if _, err := e.Fingerprint(); err == nil {
			t.Error("fingerprint of an unparseable program did not error")
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestFilterSemantics: class, rule (with detail-marker fallback), origin
// (gen absorbs the pre-mutation empty origin), and lattice (two-point
// absorbs the pre-lattice empty spec).
func TestFilterSemantics(t *testing.T) {
	dir := t.TempDir()
	a := Meta{Class: "rejected-clean", Key: DedupKey("rejected-clean", "a"), Rule: "T-Assign", Origin: "mutate"}
	a.Gen.Lattice = "chain:4"
	writePair(t, dir, a, tinyProg)
	b := Meta{Class: "runtime-error", Key: DedupKey("runtime-error", "b"),
		Detail: "rejected by [T-If]"} // pre-rule corpus: rule only in the detail marker
	writePair(t, dir, b, tinyProg+"\n")
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	count := func(f Filter) int {
		n := 0
		for range c.Select(f) {
			n++
		}
		return n
	}
	cases := []struct {
		f    Filter
		want int
	}{
		{Filter{}, 2},
		{Filter{Class: "rejected-clean"}, 1},
		{Filter{Class: "soundness-violation"}, 0},
		{Filter{Rule: "T-Assign"}, 1},
		{Filter{Rule: "T-If"}, 1}, // via the detail-marker fallback
		{Filter{Origin: "mutate"}, 1},
		{Filter{Origin: "gen"}, 1}, // empty recorded origin counts as gen
		{Filter{Lattice: "chain:4"}, 1},
		{Filter{Lattice: "two-point"}, 1}, // empty recorded spec counts as two-point
		{Filter{Class: "rejected-clean", Origin: "gen"}, 0},
	}
	for _, tc := range cases {
		if got := count(tc.f); got != tc.want {
			t.Errorf("Select(%+v) = %d entries, want %d", tc.f, got, tc.want)
		}
	}
}

// TestSingleParsePerEntry: Program() parses once and returns the same
// *ast.Program thereafter; Fingerprint rides the same parse.
func TestSingleParsePerEntry(t *testing.T) {
	c, err := Open(regressionCorpus)
	if err != nil {
		t.Fatal(err)
	}
	for e := range c.Select(Filter{}) {
		p1, err1 := e.Program()
		p2, err2 := e.Program()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: regression-corpus program failed to parse: %v %v", e.Name, err1, err2)
		}
		if p1 != p2 {
			t.Fatalf("%s: Program() re-parsed (distinct pointers)", e.Name)
		}
		fp, err := e.Fingerprint()
		if err != nil || len(fp) != FingerprintLen {
			t.Fatalf("%s: fingerprint %q, %v", e.Name, fp, err)
		}
	}
}

// TestPutKeepsCacheCoherent: a Put entry is immediately visible to
// iteration (in sorted position), Has, and Stats without re-opening.
func TestPutKeepsCacheCoherent(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("fresh dir has %d entries", c.Len())
	}
	m := Meta{Class: "rejected-clean", Key: DedupKey("rejected-clean", tinyProg), FoundAt: time.Now()}
	path, err := c.Put(m, tinyProg)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Has(m.Key) || c.Len() != 1 {
		t.Fatalf("Put not reflected: has=%v len=%d", c.Has(m.Key), c.Len())
	}
	if st := c.Stats(); st.Total != 1 || st.ByClass["rejected-clean"] != 1 {
		t.Errorf("Stats after Put: %+v", st)
	}
	// And it is really on disk: a fresh handle sees the same entry.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Has(m.Key) || c2.Len() != 1 {
		t.Errorf("fresh handle: has=%v len=%d", c2.Has(m.Key), c2.Len())
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("program file missing: %v", err)
	}
}

// TestPutValidatesMeta: Put is public surface — a hand-built Meta with a
// missing class or short key is an error, not a panic.
func TestPutValidatesMeta(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(Meta{Class: "x", Key: "short"}, "src"); err == nil {
		t.Error("Put accepted a 5-char key")
	}
	if _, err := c.Put(Meta{Key: DedupKey("x", "src")}, "src"); err == nil {
		t.Error("Put accepted an empty class")
	}
	if c.Len() != 0 {
		t.Errorf("rejected Puts left %d cache entries", c.Len())
	}
}

// TestOpenMissingAndEmpty: a missing findings directory is an empty
// corpus, an empty dir string is an error, and a nil handle is inert.
func TestOpenMissingAndEmpty(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "nonexistent"))
	if err != nil || c.Len() != 0 {
		t.Fatalf("missing dir: %v, len %d", err, c.Len())
	}
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") did not error")
	}
	var nilC *Corpus
	if nilC.Has("x") || nilC.Len() != 0 || nilC.Dir() != "" {
		t.Error("nil corpus is not inert")
	}
	for range nilC.Entries() {
		t.Fatal("nil corpus yielded an entry")
	}
}
