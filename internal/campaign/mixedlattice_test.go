package campaign

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/lattice"
)

// copyCorpus clones the checked-in regression corpus's finding pairs into
// a fresh temp corpus (campaigns write state and index files; the
// checked-in seeds must stay pristine).
func copyCorpus(t *testing.T, from string) string {
	t.Helper()
	dir := t.TempDir()
	findings := filepath.Join(dir, "findings")
	if err := os.MkdirAll(findings, 0o755); err != nil {
		t.Fatal(err)
	}
	dirents, err := os.ReadDir(filepath.Join(from, "findings"))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		if de.IsDir() || de.Name() == "index.json" {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(from, "findings", de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(findings, de.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestSeedPoolFiltersIncompatibleLattices: the checked-in regression
// corpus mixes two-point and chain:4 findings. A two-point campaign's
// seed pool must hold exactly the seeds whose labels two-point resolves
// — the filter is semantic, not a spec comparison: a chain:4 program
// annotated only with low/high remains a valid two-point seed, while one
// using L1/L2 does not. A chain:4 pool takes everything (low/high
// resolve there as aliases).
func TestSeedPoolFiltersIncompatibleLattices(t *testing.T) {
	dir := copyCorpus(t, "../../testdata/regression-corpus")
	c, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the expectation independently of the filter's AST walk: a
	// regex scan of each source's annotation labels against {low, high}.
	labelRE := regexp.MustCompile(`,\s*([A-Za-z_][A-Za-z0-9_]*)>`)
	var total, resolvable, mixed int
	for e, err := range c.Entries() {
		if err != nil {
			t.Fatal(err)
		}
		total++
		src, err := e.Source()
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for _, m := range labelRE.FindAllStringSubmatch(src, -1) {
			if m[1] != "low" && m[1] != "high" {
				ok = false
			}
		}
		if ok {
			resolvable++
		}
		if e.Meta.Gen.Lattice == "chain:4" {
			mixed++
		}
	}
	if mixed == 0 || resolvable == total {
		t.Fatalf("regression corpus no longer exercises the filter: %d chain:4, %d/%d two-point-resolvable",
			mixed, resolvable, total)
	}

	pool, err := loadSeedPool(c, lattice.TwoPoint())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pool.entries); got != resolvable {
		t.Errorf("two-point pool holds %d seeds, want the %d whose labels two-point resolves", got, resolvable)
	}
	wide, err := lattice.ByName("chain:4")
	if err != nil {
		t.Fatal(err)
	}
	widePool, err := loadSeedPool(c, wide)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(widePool.entries); got != total {
		t.Errorf("chain:4 pool holds %d seeds, want all %d", got, total)
	}
	nilPool, err := loadSeedPool(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(nilPool.entries); got != total {
		t.Errorf("nil-lattice pool holds %d seeds, want all %d", got, total)
	}
}

// TestMixedLatticeCampaignNoUnknownLabels locks the seed-noise fix: a
// two-point mutation campaign over the mixed-lattice regression corpus
// must emit zero "unknown security label" resolve errors. Before the
// seed pool filtered by lattice compatibility, chain:4 seeds flowed into
// the two-point mutator and every mutant failed resolution with exactly
// that error, polluting the corpus with phantom runtime-error findings.
func TestMixedLatticeCampaignNoUnknownLabels(t *testing.T) {
	dir := copyCorpus(t, "../../testdata/regression-corpus")
	rep, err := Run(context.Background(), Config{
		N:          60,
		Seed:       1,
		Gen:        smallGen(), // empty Lattice = two-point
		Mutate:     true,
		MutateFrac: 1.0,
		NITrials:   2,
		CorpusDir:  dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		if strings.Contains(f.Detail, "unknown security label") {
			t.Errorf("campaign emitted an unknown-label finding: %s (%s)", f.Detail, f.Class)
		}
	}
	c, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for e, err := range c.Entries() {
		if err != nil {
			continue
		}
		if strings.Contains(e.Meta.Detail, "unknown security label") {
			t.Errorf("corpus polluted with unknown-label finding %s: %s", e.Name, e.Meta.Detail)
		}
	}
}
