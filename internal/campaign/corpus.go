// Corpus access for the campaign engine. The on-disk layout, metadata
// schema, dedup keys, and the cached iteration everything in the stack
// shares live in internal/corpus; this file keeps the campaign-flavored
// names as aliases (the campaign introduced the format, and its tests and
// consumers spell these names) plus the campaign-private resume cursors,
// which are scheduling state rather than corpus content.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/corpus"
	"repro/internal/events"
	"repro/internal/gen"
)

// Class names a corpus finding class; it prefixes corpus filenames.
type Class = corpus.Class

// Meta is the verdict metadata persisted next to each finding.
type Meta = corpus.Meta

// DedupKey is the corpus identity of a finding: programs with the same
// class and (post-minimization) source are the same finding, regardless of
// which seed, shard, or run produced them.
//
// Deprecated: use corpus.DedupKey; this forwarder remains for existing
// callers.
func DedupKey(class Class, source string) string { return corpus.DedupKey(class, source) }

// WriteMeta encodes m as indented JSON at path — the corpus metadata
// file format.
//
// Deprecated: use corpus.WriteMeta; this forwarder remains for existing
// callers.
func WriteMeta(path string, m Meta) error { return corpus.WriteMeta(path, m) }

// ForEachFinding iterates the finding pairs under dir/findings in
// deterministic (name-sorted) order, calling fn with each pair — or with
// the error loading it. fn returning false stops the iteration. A missing
// findings directory iterates nothing; any other directory-level failure
// is returned.
//
// Deprecated: open a corpus.Corpus and range its Entries (or Select)
// instead — the handle caches metadata, sources, parses, and fingerprints
// across consumers where this walker re-reads the directory every call.
// The forwarder remains so pre-Session callers keep compiling; it is one
// Open away from the real thing.
func ForEachFinding(dir string, fn func(jsonName string, m Meta, src string, err error) bool) error {
	if dir == "" {
		dir = "."
	}
	c, err := corpus.Open(dir)
	if err != nil {
		return err
	}
	for e, err := range c.Entries() {
		src, srcErr := e.Source()
		if err == nil {
			err = srcErr
		}
		if !fn(e.Name, e.Meta, src, err) {
			return nil
		}
	}
	return nil
}

// shardState is the resume cursor for one shard of a campaign.
type shardState struct {
	// Seed is the campaign seed the cursor is valid for; resuming with a
	// different seed would silently re-cover different programs, so the
	// engine refuses the mismatch.
	Seed int64 `json:"seed"`
	// NextIndex is the first global index not yet covered.
	NextIndex int64 `json:"next_index"`
	// Gen echoes the generator configuration for the same reason as Seed.
	Gen gen.Config `json:"gen"`
	// Mutate and MutateFrac echo the mutation schedule the covered indices
	// were generated under — a resume with a different schedule would
	// silently change what every index means, exactly like a different
	// Seed. Pointers, because cursors written before these fields existed
	// must keep resuming: an absent field reads as "unrecorded" and
	// matches anything (the legacy escape hatch), where a plain bool would
	// read as false and refuse every legacy mutation campaign.
	Mutate *bool `json:"mutate,omitempty"`
	// MutateFrac is the *effective* fraction (the 0-means-0.5 default
	// resolved, 0 when mutation is off), so spelling the default
	// explicitly and leaving it implicit compare equal.
	MutateFrac *float64 `json:"mutate_frac,omitempty"`
	// Runs counts completed runs contributing to the cursor.
	Runs int `json:"runs"`
	// UpdatedAt is when the cursor last advanced.
	UpdatedAt time.Time `json:"updated_at"`
}

func statePath(dir string, shard, numShards int) string {
	return filepath.Join(dir, "state", fmt.Sprintf("shard-%d-of-%d.json", shard, numShards))
}

// loadState reads the shard's cursor; a missing file is a zero cursor. So
// is a corrupt one — a worker killed mid-write used to leave truncated
// JSON that hard-errored every later run on the shard until someone
// deleted the file by hand; recovery is a warning event and a fresh start
// at index 0, where re-covering the window costs time and dedup absorbs
// the repeats.
func loadState(dir string, shard, numShards int, sink events.Sink) (shardState, error) {
	var st shardState
	path := statePath(dir, shard, numShards)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("campaign: resume state: %w", err)
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		sink.Emit(events.Event{
			Kind: events.KindWarning, Op: "campaign", Path: path,
			Detail: fmt.Sprintf("corrupt resume cursor (%v): treating as index 0 — the window will be re-covered and dedup absorbs repeats", err),
		})
		return shardState{}, nil
	}
	return st, nil
}

// saveState writes the shard's cursor atomically (write-then-rename, the
// same pattern the novelty file and the corpus index use): a worker
// killed mid-write must never leave a truncated cursor behind, because
// the fleet's whole liveness story is that killed workers are routine.
func saveState(dir string, st shardState, shard, numShards int) error {
	if err := os.MkdirAll(filepath.Join(dir, "state"), 0o755); err != nil {
		return fmt.Errorf("campaign: save state: %w", err)
	}
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encode state: %w", err)
	}
	path := statePath(dir, shard, numShards)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: save state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: save state: %w", err)
	}
	return nil
}
