// On-disk corpus: content-addressed finding files with JSON verdict
// metadata, plus per-shard resume state. The layout is merge-friendly by
// construction — finding filenames are derived from a hash of (class,
// source), so copying the findings/ directories of two shards (or two
// machines) into one corpus deduplicates identical findings by collision
// and never clobbers distinct ones; state files are namespaced per
// (shard, numShards) pair and never collide across shards.
//
//	<dir>/findings/<class>-<key12>.p4    the (possibly minimized) program
//	<dir>/findings/<class>-<key12>.json  verdict metadata (Meta below)
//	<dir>/state/shard-<i>-of-<n>.json    resume cursor for one shard
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/gen"
)

// Meta is the verdict metadata persisted next to each finding.
type Meta struct {
	// Class is the finding's corpus class (the filename prefix).
	Class Class `json:"class"`
	// Rule is the typing rule the IFC checker cited when it rejected the
	// program (e.g. "T-Assign"), "" when the class involves no IFC
	// rejection or the corpus predates rule recording. Triage clusters
	// findings by it; old corpora fall back to extracting the rule from
	// Detail's trailing "[Rule]" marker.
	Rule string `json:"rule,omitempty"`
	// Detail is the witness, error text, or disagreement description.
	Detail string `json:"detail"`
	// Index is the global campaign index of the generating job; with Gen
	// and GenSeed it regenerates the original (unminimized) program —
	// when Origin is "gen". Mutants are not regenerable from the seed
	// alone (they also depend on the seed pool at mutation time); their
	// provenance is ParentKey.
	Index int64 `json:"index"`
	// GenSeed is the program's generation seed (campaign seed + Index).
	GenSeed int64 `json:"gen_seed"`
	// NISeed seeds the program's NI experiment for exact replay.
	NISeed int64 `json:"ni_seed"`
	// NITrials and NITrialsMax record the NI budget the finding was
	// classified under, so -replay re-checks with the same budget (zero
	// in pre-mutation corpora; replay then uses its own defaults).
	NITrials    int `json:"ni_trials,omitempty"`
	NITrialsMax int `json:"ni_trials_max,omitempty"`
	// Gen echoes the generator configuration the seeds assume, including
	// the campaign lattice spec.
	Gen gen.Config `json:"gen"`
	// Origin is "gen" for freshly generated programs and "mutate" for
	// corpus-seeded mutants ("" in pre-mutation corpora, meaning "gen").
	Origin string `json:"origin,omitempty"`
	// ParentKey is the dedup key of the corpus seed a mutant was derived
	// from ("" for fresh programs); MutateOps names the mutation operators
	// applied, in order, for triage.
	ParentKey string `json:"parent_key,omitempty"`
	MutateOps string `json:"mutate_ops,omitempty"`
	// Shard/NumShards record which shard found it (0/1 when unsharded).
	Shard     int `json:"shard"`
	NumShards int `json:"num_shards"`
	// OriginalBytes and Bytes are the program size before and after
	// minimization (equal when minimization was off or unproductive).
	OriginalBytes int  `json:"original_bytes"`
	Bytes         int  `json:"bytes"`
	Minimized     bool `json:"minimized"`
	// Key is the full dedup key (hex SHA-256 over class and source).
	Key string `json:"key"`
	// FoundAt is the wall-clock time the finding was persisted.
	FoundAt time.Time `json:"found_at"`
	// RetiredFrom and RetiredAt are set only on entries of a retired
	// corpus (see internal/triage): the class the finding was originally
	// recorded under before its defect was fixed and the entry was
	// re-recorded under the current stack's verdict, and when.
	RetiredFrom Class     `json:"retired_from,omitempty"`
	RetiredAt   time.Time `json:"retired_at,omitzero"`
}

// DedupKey is the corpus identity of a finding: programs with the same
// class and (post-minimization) source are the same finding, regardless of
// which seed, shard, or run produced them. Minimization canonicalizes
// aggressively, so -minimize collapses families of equivalent findings
// onto one corpus entry. Exported so internal/triage can re-key entries
// it re-records under a new class when retiring them.
func DedupKey(class Class, source string) string {
	h := sha256.New()
	h.Write([]byte(class))
	h.Write([]byte{0})
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}

// corpus is an open corpus directory; nil means "no persistence".
type corpus struct {
	dir   string
	known map[string]bool // dedup keys already on disk
}

// openCorpus creates the corpus layout under dir (if needed) and indexes
// the dedup keys of every finding already present.
func openCorpus(dir string) (*corpus, error) {
	if dir == "" {
		return nil, nil
	}
	for _, sub := range []string{"findings", "state"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("campaign: corpus dir: %w", err)
		}
	}
	c := &corpus{dir: dir, known: map[string]bool{}}
	entries, err := os.ReadDir(filepath.Join(dir, "findings"))
	if err != nil {
		return nil, fmt.Errorf("campaign: corpus dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, "findings", e.Name()))
		if err != nil {
			return nil, fmt.Errorf("campaign: corpus dir: %w", err)
		}
		var m Meta
		if err := json.Unmarshal(raw, &m); err != nil || m.Key == "" {
			// A foreign or truncated file; leave it alone and move on.
			continue
		}
		c.known[m.Key] = true
	}
	return c, nil
}

// has reports whether key is already persisted.
func (c *corpus) has(key string) bool { return c != nil && c.known[key] }

// WriteMeta encodes m as indented JSON at path — the corpus metadata
// file format. Exported for internal/triage's retired-corpus writer, so
// promoted entries stay byte-compatible with campaign-written ones.
func WriteMeta(path string, m Meta) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encode metadata: %w", err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: persist metadata: %w", err)
	}
	return nil
}

// put persists one finding and returns the program file's path.
func (c *corpus) put(f *Finding, m Meta) (string, error) {
	stem := fmt.Sprintf("%s-%s", f.Class, f.Key[:12])
	progPath := filepath.Join(c.dir, "findings", stem+".p4")
	metaPath := filepath.Join(c.dir, "findings", stem+".json")
	if err := os.WriteFile(progPath, []byte(f.Source), 0o644); err != nil {
		return "", fmt.Errorf("campaign: persist finding: %w", err)
	}
	if err := WriteMeta(metaPath, m); err != nil {
		return "", err
	}
	c.known[f.Key] = true
	return progPath, nil
}

// readFinding loads one persisted finding pair by its metadata filename
// (<stem>.json next to <stem>.p4 under dir). It errors on unreadable or
// foreign files — callers choose whether that is fatal (replay) or
// skippable (seed pool).
func readFinding(dir, jsonName string) (Meta, string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, jsonName))
	if err != nil {
		return Meta{}, "", err
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return Meta{}, "", fmt.Errorf("campaign: %s: %w", jsonName, err)
	}
	if m.Key == "" || m.Class == "" {
		return Meta{}, "", fmt.Errorf("campaign: %s: not a finding metadata file", jsonName)
	}
	src, err := os.ReadFile(filepath.Join(dir, strings.TrimSuffix(jsonName, ".json")+".p4"))
	if err != nil {
		return Meta{}, "", err
	}
	return m, string(src), nil
}

// ForEachFinding iterates the finding pairs under dir/findings in
// deterministic (name-sorted) order, calling fn with each pair — or with
// the error loading it, so callers choose whether a bad pair is fatal
// (replay, triage's malformed-metadata gate) or skippable (seed pool).
// fn returning false stops the iteration. A missing findings directory
// iterates nothing; any other directory-level failure is returned.
// jsonName is the metadata filename relative to dir/findings; the program
// file sits next to it with a .p4 suffix. internal/triage builds its
// corpus analytics on this iterator.
func ForEachFinding(dir string, fn func(jsonName string, m Meta, src string, err error) bool) error {
	findings := filepath.Join(dir, "findings")
	entries, err := os.ReadDir(findings)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		m, src, err := readFinding(findings, name)
		if !fn(name, m, src, err) {
			return nil
		}
	}
	return nil
}

// shardState is the resume cursor for one shard of a campaign.
type shardState struct {
	// Seed is the campaign seed the cursor is valid for; resuming with a
	// different seed would silently re-cover different programs, so the
	// engine refuses the mismatch.
	Seed int64 `json:"seed"`
	// NextIndex is the first global index not yet covered.
	NextIndex int64 `json:"next_index"`
	// Gen echoes the generator configuration for the same reason as Seed.
	Gen gen.Config `json:"gen"`
	// Runs counts completed runs contributing to the cursor.
	Runs int `json:"runs"`
	// UpdatedAt is when the cursor last advanced.
	UpdatedAt time.Time `json:"updated_at"`
}

func (c *corpus) statePath(shard, numShards int) string {
	return filepath.Join(c.dir, "state", fmt.Sprintf("shard-%d-of-%d.json", shard, numShards))
}

// loadState reads the shard's cursor; a missing file is a zero cursor.
func (c *corpus) loadState(shard, numShards int) (shardState, error) {
	var st shardState
	raw, err := os.ReadFile(c.statePath(shard, numShards))
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("campaign: resume state: %w", err)
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return st, fmt.Errorf("campaign: resume state %s: %w", c.statePath(shard, numShards), err)
	}
	return st, nil
}

// saveState writes the shard's cursor.
func (c *corpus) saveState(st shardState, shard, numShards int) error {
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encode state: %w", err)
	}
	if err := os.WriteFile(c.statePath(shard, numShards), append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: save state: %w", err)
	}
	return nil
}
