package campaign

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
)

// writePoolFinding drops one synthetic finding pair into dir so seed-pool
// tests control class, recency, and keys exactly.
func writePoolFinding(t *testing.T, dir string, class Class, src string, foundAt time.Time) string {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dir, "findings"), 0o755); err != nil {
		t.Fatal(err)
	}
	key := DedupKey(class, src)
	stem := fmt.Sprintf("%s-%s", class, key[:12])
	if err := WriteMeta(filepath.Join(dir, "findings", stem+".json"), Meta{
		Class: class, Key: key, FoundAt: foundAt,
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "findings", stem+".p4"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return key
}

// poolOf opens dir as a corpus handle and builds its seed pool — the
// two-step form every seed-pool test wants in one call.
func poolOf(dir string) (*seedPool, error) {
	c, err := corpus.Open(dir)
	if err != nil {
		return nil, err
	}
	return loadSeedPool(c, nil)
}

// writeNovelty persists one shard's novelty records directly.
func writeNovelty(t *testing.T, dir string, shard, numShards int, seeds map[string]NoveltyStat) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dir, "state"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := saveNoveltyDeltas(dir, seeds, shard, numShards); err != nil {
		t.Fatal(err)
	}
}

// TestNoveltyMergeAcrossShardFiles: readers sum every state/novelty-*.json,
// so shard corpus dirs still merge by file copy.
func TestNoveltyMergeAcrossShardFiles(t *testing.T) {
	dir := t.TempDir()
	writeNovelty(t, dir, 0, 2, map[string]NoveltyStat{"k1": {Mutants: 3, NewKeys: 1}})
	writeNovelty(t, dir, 1, 2, map[string]NoveltyStat{
		"k1": {Mutants: 2, NewKeys: 2},
		"k2": {Mutants: 5},
	})
	// Re-saving into the same shard file merges additively, not clobbers.
	writeNovelty(t, dir, 0, 2, map[string]NoveltyStat{"k1": {Mutants: 1}})

	got, err := LoadNovelty(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := got["k1"]; st.Mutants != 6 || st.NewKeys != 3 {
		t.Errorf("k1 merged to %+v, want mutants=6 new_keys=3", st)
	}
	if st := got["k2"]; st.Mutants != 5 || st.NewKeys != 0 {
		t.Errorf("k2 merged to %+v, want mutants=5", st)
	}
}

// TestNoveltyLoadRejectsCorrupt: a corrupt novelty file is an error, not
// a silent fallback to the static prior.
func TestNoveltyLoadRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "state"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "state", "novelty-0-of-1.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadNovelty(dir); err == nil {
		t.Fatal("corrupt novelty file loaded without error")
	}
	if _, err := poolOf(dir); err == nil {
		t.Fatal("seed pool built over a corrupt novelty file without error")
	}
}

// TestSeedPoolStaticPriorWithoutNovelty: with no novelty records every
// seed gets the same neutral boost, so the sampling distribution reduces
// exactly to the historical class × recency prior — pre-novelty corpora
// schedule as they always did, which is also what keeps PR 3's
// shard-union and chain-reach tests meaningful for the new pool.
func TestSeedPoolStaticPriorWithoutNovelty(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	writePoolFinding(t, dir, ClassRejectedClean, "src-a", base.Add(3*time.Hour))
	writePoolFinding(t, dir, ClassSoundnessViolation, "src-b", base.Add(2*time.Hour))
	writePoolFinding(t, dir, ClassRejectedClean, "src-c", base.Add(1*time.Hour))

	pool, err := poolOf(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pool.size() != 3 {
		t.Fatalf("pool size %d, want 3", pool.size())
	}
	for i := 0; i < pool.size(); i++ {
		want := classWeight(pool.entries[i].class) * math.Pow(recencyDecay, float64(i)) * noveltyExploreBonus
		if got := pool.weightOf(i); math.Abs(got-want) > 1e-9 {
			t.Errorf("seed %d weight %v, want static prior × neutral boost %v", i, got, want)
		}
	}
}

// TestSeedPoolNoveltyDistribution is the scheduling lock: two seeds of
// the same class and adjacent recency, one with a productive novelty
// record and one mined out, must be drawn in proportion to their boosts —
// the productive seed several times as often.
func TestSeedPoolNoveltyDistribution(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	// Same timestamp: rank order falls back to the key, and the recency
	// difference between adjacent ranks (×0.97) is negligible next to the
	// boost ratio asserted below.
	prodKey := writePoolFinding(t, dir, ClassRejectedClean, "src-productive", base)
	barrenKey := writePoolFinding(t, dir, ClassRejectedClean, "src-barren", base)
	writeNovelty(t, dir, 0, 1, map[string]NoveltyStat{
		prodKey:   {Mutants: 10, NewKeys: 8},
		barrenKey: {Mutants: 10, NewKeys: 0},
	})

	pool, err := poolOf(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	draws := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		draws[pool.pick(rng).key]++
	}
	if draws[prodKey]+draws[barrenKey] != n {
		t.Fatalf("draws went to unknown seeds: %v", draws)
	}
	// Expected ratio ≈ boost(8/10) / boost(0/10) = (0.5+3·0.8)/0.5 = 5.8,
	// modulated by the ±3% recency step depending on key order. Assert
	// the productive seed dominates by at least 4x — decisive, but slack
	// enough to be deterministic across rng streams.
	ratio := float64(draws[prodKey]) / float64(draws[barrenKey])
	if ratio < 4 {
		t.Errorf("productive seed drawn only %.2fx as often as the barren one (%d vs %d); novelty feedback is not steering the pool",
			ratio, draws[prodKey], draws[barrenKey])
	}

	// An unexplored seed outranks a mined-out one but not a proven producer.
	unexplored := noveltyBoost(NoveltyStat{}, false)
	barren := noveltyBoost(NoveltyStat{Mutants: 10}, true)
	producer := noveltyBoost(NoveltyStat{Mutants: 10, NewKeys: 9}, true)
	if !(barren < unexplored && unexplored < producer) {
		t.Errorf("boost ordering broken: barren %v, unexplored %v, producer %v", barren, unexplored, producer)
	}
}

// TestCampaignRecordsNovelty: a mutation-enabled run writes its shard's
// novelty file, charging analyzed mutants to their parents and crediting
// parents whose mutants persisted as new keys.
func TestCampaignRecordsNovelty(t *testing.T) {
	dir := t.TempDir()
	seedCorpus(t, dir, Config{
		N: 80, Seed: 11, Gen: smallGen(), NITrials: 1, NITrialsMax: 4,
		CorpusDir: dir, Minimize: true,
	})
	rep, err := Run(context.Background(), Config{
		N: 120, Seed: 7, Gen: smallGen(), NITrials: 1, NITrialsMax: 4,
		Mutate: true, CorpusDir: dir, MaxPerClass: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MutantJobs == 0 {
		t.Fatal("no mutants ran; nothing to record")
	}
	stats, err := LoadNovelty(dir)
	if err != nil {
		t.Fatal(err)
	}
	totalMutants, totalNew := 0, 0
	for key, st := range stats {
		if key == "" {
			t.Error("novelty recorded under an empty parent key")
		}
		totalMutants += st.Mutants
		totalNew += st.NewKeys
		if st.NewKeys > st.Mutants {
			t.Errorf("seed %s: %d new keys from %d mutants", key, st.NewKeys, st.Mutants)
		}
	}
	if totalMutants != rep.MutantJobs {
		t.Errorf("novelty charges %d mutants, report analyzed %d", totalMutants, rep.MutantJobs)
	}
	// One mutant job earns at most one credit even if it surfaced two
	// findings (verdict + parser disagreement), so compare against the
	// distinct job indices behind the new mutant findings.
	mutantJobs := map[int64]bool{}
	for _, f := range rep.Findings {
		if f.Origin == "mutate" {
			mutantJobs[f.Index] = true
		}
	}
	if totalNew != len(mutantJobs) {
		t.Errorf("novelty credits %d new keys, report has new mutant findings from %d jobs", totalNew, len(mutantJobs))
	}
}

// TestCampaignMetaRecordsRule: rejection findings carry their cited
// typing rule in both the in-memory finding and the persisted metadata —
// what triage clusters on.
func TestCampaignMetaRecordsRule(t *testing.T) {
	dir := t.TempDir()
	rep, err := Run(context.Background(), Config{
		N: 80, Seed: 11, Gen: smallGen(), NITrials: 1, NITrialsMax: 4,
		CorpusDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, f := range rep.Findings {
		if f.Class != ClassRejectedClean {
			continue
		}
		checked++
		if f.Rule == "" {
			t.Errorf("rejected-clean finding %s has no cited rule", f.Key)
		}
	}
	if checked == 0 {
		t.Skip("campaign found no rejected-clean findings to check")
	}
	for key, m := range readKeys(t, dir) {
		if m.Class == ClassRejectedClean && m.Rule == "" {
			t.Errorf("persisted rejected-clean %s has no rule in metadata", key)
		}
		if m.Rule != "" && !strings.Contains(m.Detail, "["+m.Rule+"]") {
			t.Errorf("persisted rule %q not the one cited in detail %q", m.Rule, m.Detail)
		}
	}
}

// Cluster-saturation fixtures: progShape1 and progShape1Twin differ only
// in identifier spellings (same AST shape fingerprint); progShape2 has a
// different statement structure (a different fingerprint).
const (
	progShape1 = `header d_t { <bit<8>, low> lo; <bit<8>, high> hi; }
struct H { d_t d; }
control c(inout H hdr) { apply { hdr.d.lo = hdr.d.lo + 8w1; } }
`
	progShape1Twin = `header pkt_t { <bit<8>, low> pub; <bit<8>, high> sec; }
struct H { pkt_t d; }
control ingress(inout H hdr) { apply { hdr.d.pub = hdr.d.pub + 8w7; } }
`
	progShape2 = `header d_t { <bit<8>, low> lo; <bit<8>, high> hi; }
struct H { d_t d; }
control c(inout H hdr) { apply { hdr.d.lo = 8w1; } }
`
)

// TestSeedPoolClusterSaturationDistribution is the cluster-weighting
// lock: when every *explored* member of a shape class is mined out, its
// unexplored members fade too — the whole (class, rule, shape) cluster
// carries the evidence, not just the individual seed. Two individually
// unexplored seeds of the same class: the one sharing a fingerprint with
// a mined-out sibling must be drawn measurably less often than the one in
// an untouched shape class.
func TestSeedPoolClusterSaturationDistribution(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	minedKey := writePoolFinding(t, dir, ClassRejectedClean, progShape1, base.Add(3*time.Hour))    // rank 0
	twinKey := writePoolFinding(t, dir, ClassRejectedClean, progShape1Twin, base.Add(2*time.Hour)) // rank 1, unexplored
	freshKey := writePoolFinding(t, dir, ClassRejectedClean, progShape2, base.Add(1*time.Hour))    // rank 2, unexplored
	writeNovelty(t, dir, 0, 1, map[string]NoveltyStat{minedKey: {Mutants: 30, NewKeys: 0}})

	pool, err := poolOf(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pool.size() != 3 {
		t.Fatalf("pool size %d, want 3", pool.size())
	}
	weight := map[string]float64{}
	for i := range pool.entries {
		weight[pool.entries[i].key] = pool.weightOf(i)
	}
	// Exact weights: classWeight(rejected-clean)=2 throughout.
	//   mined (rank 0): 2 · 0.97⁰ · floor(0.5)   · cluster(0/30 → 0.5)
	//   twin  (rank 1): 2 · 0.97¹ · explore(1.5) · cluster(0/30 → 0.5)
	//   fresh (rank 2): 2 · 0.97² · explore(1.5) · cluster(neutral 1.0)
	wants := map[string]float64{
		minedKey: 2 * noveltyFloor * clusterFloor,
		twinKey:  2 * recencyDecay * noveltyExploreBonus * clusterFloor,
		freshKey: 2 * recencyDecay * recencyDecay * noveltyExploreBonus,
	}
	for key, want := range wants {
		if got := weight[key]; math.Abs(got-want) > 1e-9 {
			t.Errorf("seed %.12s weight %v, want %v", key, got, want)
		}
	}
	// The distribution lock: the untouched shape class dominates the
	// mined-out class's unexplored twin (expected ratio ≈ 1/clusterFloor
	// modulo one recency step ≈ 1.94x; assert a decisive 1.5x), and the
	// twin still outdraws its explored mined-out sibling.
	rng := rand.New(rand.NewSource(7))
	draws := map[string]int{}
	for i := 0; i < 20000; i++ {
		draws[pool.pick(rng).key]++
	}
	if r := float64(draws[freshKey]) / float64(draws[twinKey]); r < 1.5 {
		t.Errorf("fresh-shape seed drawn only %.2fx as often as the mined-out cluster's twin (%d vs %d); cluster saturation is not steering the pool",
			r, draws[freshKey], draws[twinKey])
	}
	if draws[twinKey] <= draws[minedKey] {
		t.Errorf("unexplored twin (%d draws) did not outdraw its explored mined-out sibling (%d)", draws[twinKey], draws[minedKey])
	}
}

// TestSeedPoolClusterLiftsProductiveShapes: the converse — a cluster
// whose explored member keeps finding new keys lifts its unexplored
// members above a neutral untouched shape class.
func TestSeedPoolClusterLiftsProductiveShapes(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	prodKey := writePoolFinding(t, dir, ClassRejectedClean, progShape1, base.Add(3*time.Hour))
	twinKey := writePoolFinding(t, dir, ClassRejectedClean, progShape1Twin, base.Add(2*time.Hour))
	writePoolFinding(t, dir, ClassRejectedClean, progShape2, base.Add(1*time.Hour))
	writeNovelty(t, dir, 0, 1, map[string]NoveltyStat{prodKey: {Mutants: 10, NewKeys: 10}})

	pool, err := poolOf(dir)
	if err != nil {
		t.Fatal(err)
	}
	var twinW, freshW float64
	for i := range pool.entries {
		switch pool.entries[i].key {
		case twinKey:
			twinW = pool.weightOf(i)
		case prodKey:
		default:
			freshW = pool.weightOf(i)
		}
	}
	// twin: 0.97¹ · 1.5 · cluster(10/10 → 1.5); fresh: 0.97² · 1.5 · 1.0.
	if twinW <= freshW {
		t.Errorf("productive cluster's twin (%v) does not outweigh the untouched shape (%v)", twinW, freshW)
	}
}
