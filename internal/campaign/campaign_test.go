package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/difftest"
	"repro/internal/events"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/pipeline"
)

// smallGen keeps test campaigns fast: smaller programs shrink quicker.
func smallGen() gen.Config {
	return gen.Config{MaxDepth: 2, MaxStmts: 3, NumFields: 2, WithActions: true}
}

// readKeys collects the dedup keys of every finding persisted under dir.
func readKeys(t *testing.T, dir string) map[string]Meta {
	t.Helper()
	keys := map[string]Meta{}
	entries, err := os.ReadDir(filepath.Join(dir, "findings"))
	if err != nil {
		t.Fatalf("read corpus: %v", err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") || e.Name() == "index.json" {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, "findings", e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		var m Meta
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("decode %s: %v", e.Name(), err)
		}
		keys[m.Key] = m
	}
	return keys
}

// classifySource reruns the full stage stack on one source and returns its
// difftest verdict, for validating that persisted findings reproduce.
func classifySource(t *testing.T, src string, niSeed int64, trials, max int) difftest.Verdict {
	t.Helper()
	sum, err := pipeline.Run(context.Background(),
		[]pipeline.Job{{Name: "replay.p4", Source: src, Lat: lattice.TwoPoint()}},
		pipeline.Options{Workers: 1, NI: pipeline.NIAll, NITrials: trials, NITrialsMax: max, NISeed: niSeed})
	if err != nil || len(sum.Results) != 1 {
		t.Fatalf("replay failed: %v", err)
	}
	v, _ := difftest.Classify(&sum.Results[0])
	return v
}

// TestCampaignTwoRunDemo is the end-to-end acceptance demo: run 1 persists
// deduplicated, minimized findings with verdict metadata; a re-run over
// the same window skips every known finding; a -resume run continues from
// the cached cursor into fresh indices.
func TestCampaignTwoRunDemo(t *testing.T) {
	dir := t.TempDir()
	base := Config{
		N:           60,
		Seed:        42,
		Gen:         smallGen(),
		NITrials:    2,
		NITrialsMax: 8,
		Workers:     2,
		CorpusDir:   dir,
		Minimize:    true,
	}

	// Run 1: fresh corpus.
	rep1, err := Run(context.Background(), base)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if !rep1.OK() {
		t.Fatalf("run 1 found implementation defects:\n%s", FormatReport(rep1))
	}
	if rep1.NewFindings == 0 {
		t.Fatal("run 1 persisted no findings; the demo needs at least one")
	}
	if rep1.NextIndex != 60 || rep1.FirstIndex != 0 {
		t.Fatalf("run 1 window [%d, %d), want [0, 60)", rep1.FirstIndex, rep1.NextIndex)
	}

	keys := readKeys(t, dir)
	if len(keys) != rep1.NewFindings {
		t.Errorf("corpus holds %d findings, report says %d new", len(keys), rep1.NewFindings)
	}
	// Metadata must be complete enough to replay and to audit.
	for k, m := range keys {
		if m.Key != k || m.Class == "" || m.Gen != base.Gen || m.GenSeed != 42+m.Index {
			t.Errorf("incomplete metadata for %s: %+v", k, m)
		}
		if m.Bytes > m.OriginalBytes {
			t.Errorf("finding %s grew: %d from %d bytes", k, m.Bytes, m.OriginalBytes)
		}
	}

	// Minimization must have produced at least one strictly smaller
	// program that still reproduces its verdict class.
	verifiedMin := false
	for _, f := range rep1.Findings {
		if !f.Minimized || f.Class == ClassParserDisagreement {
			continue
		}
		if len(f.Source) >= f.OriginalBytes {
			t.Fatalf("finding %s marked minimized but not smaller", f.Key)
		}
		if got := classifySource(t, f.Source, f.NISeed, 2, 8); got != f.Verdict {
			t.Errorf("minimized finding %s classifies as %v, want %v:\n%s", f.Key, got, f.Verdict, f.Source)
		}
		verifiedMin = true
		break
	}
	if !verifiedMin {
		t.Error("no finding was minimized; generated findings should carry dead weight")
	}

	// Run 2a: the same window again (no resume) — every finding is
	// already in the corpus, so nothing new lands.
	rep2a, err := Run(context.Background(), base)
	if err != nil {
		t.Fatalf("run 2a: %v", err)
	}
	if rep2a.NewFindings != 0 {
		t.Errorf("re-covering the same window persisted %d new findings, want 0", rep2a.NewFindings)
	}
	if rep2a.KnownFindings == 0 {
		t.Error("re-covering the same window skipped no known findings")
	}
	if got := len(readKeys(t, dir)); got != len(keys) {
		t.Errorf("corpus grew from %d to %d findings on a repeat window", len(keys), got)
	}

	// Run 2b: resume — continues at the cursor into fresh indices.
	resume := base
	resume.Resume = true
	rep2b, err := Run(context.Background(), resume)
	if err != nil {
		t.Fatalf("run 2b: %v", err)
	}
	if rep2b.FirstIndex != 60 || rep2b.NextIndex != 120 {
		t.Fatalf("resume window [%d, %d), want [60, 120)", rep2b.FirstIndex, rep2b.NextIndex)
	}
	if rep2b.Analyzed == 0 {
		t.Error("resume run analyzed nothing")
	}
}

// TestCampaignShardUnion: the union of finding keys and verdict counts
// over shards 0..n-1 must equal the unsharded campaign over the same
// window — sharding partitions, it does not resample.
func TestCampaignShardUnion(t *testing.T) {
	const n, shards = 90, 3
	mk := func(dir string, shard, numShards int) *Report {
		rep, err := Run(context.Background(), Config{
			N:           n,
			Seed:        7,
			Gen:         smallGen(),
			NITrials:    2,
			NITrialsMax: 4,
			Workers:     2,
			Shard:       shard,
			NumShards:   numShards,
			CorpusDir:   dir,
			MaxPerClass: -1,
		})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", shard, numShards, err)
		}
		return rep
	}

	whole := t.TempDir()
	repWhole := mk(whole, 0, 1)

	var shardAnalyzed int
	var shardCounts [difftest.NumVerdicts]int
	union := map[string]bool{}
	for s := 0; s < shards; s++ {
		dir := t.TempDir()
		rep := mk(dir, s, shards)
		shardAnalyzed += rep.Analyzed
		for v, c := range rep.Counts {
			shardCounts[v] += c
		}
		for k := range readKeys(t, dir) {
			union[k] = true
		}
	}

	if shardAnalyzed != repWhole.Analyzed || shardAnalyzed != n {
		t.Errorf("shards analyzed %d programs, unsharded %d, want %d", shardAnalyzed, repWhole.Analyzed, n)
	}
	if shardCounts != repWhole.Counts {
		t.Errorf("shard verdict counts %v != unsharded %v", shardCounts, repWhole.Counts)
	}
	wholeKeys := readKeys(t, whole)
	if len(union) != len(wholeKeys) {
		t.Errorf("shard corpus union has %d findings, unsharded %d", len(union), len(wholeKeys))
	}
	for k := range wholeKeys {
		if !union[k] {
			t.Errorf("finding %s missing from the shard union", k)
		}
	}
}

// TestCampaignWindowUnion: covering [0, n) as a set of explicit lease
// windows finds the same dedup-key set and verdict counts as the
// unsharded run — the partition-exactness the fleet coordinator builds on
// — and window runs never touch the shard cursor.
func TestCampaignWindowUnion(t *testing.T) {
	const n = 90
	base := Config{
		Seed:        7,
		Gen:         smallGen(),
		NITrials:    2,
		NITrialsMax: 4,
		Workers:     2,
		MaxPerClass: -1,
	}

	whole := t.TempDir()
	wcfg := base
	wcfg.N = n
	wcfg.CorpusDir = whole
	repWhole, err := Run(context.Background(), wcfg)
	if err != nil {
		t.Fatal(err)
	}

	var winAnalyzed int
	var winCounts [difftest.NumVerdicts]int
	union := map[string]bool{}
	dir := t.TempDir()
	for _, w := range []Window{{0, 30}, {30, 35}, {35, 90}} {
		cfg := base
		cfg.Window = &Window{Lo: w.Lo, Hi: w.Hi}
		cfg.CorpusDir = dir
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("window [%d, %d): %v", w.Lo, w.Hi, err)
		}
		if rep.FirstIndex != w.Lo || rep.NextIndex != w.Hi {
			t.Errorf("window [%d, %d) reported [%d, %d)", w.Lo, w.Hi, rep.FirstIndex, rep.NextIndex)
		}
		winAnalyzed += rep.Analyzed
		for v, c := range rep.Counts {
			winCounts[v] += c
		}
	}
	for k := range readKeys(t, dir) {
		union[k] = true
	}

	if winAnalyzed != repWhole.Analyzed || winAnalyzed != n {
		t.Errorf("windows analyzed %d programs, unsharded %d, want %d", winAnalyzed, repWhole.Analyzed, n)
	}
	if winCounts != repWhole.Counts {
		t.Errorf("window verdict counts %v != unsharded %v", winCounts, repWhole.Counts)
	}
	wholeKeys := readKeys(t, whole)
	if len(union) != len(wholeKeys) {
		t.Errorf("window corpus union has %d findings, unsharded %d", len(union), len(wholeKeys))
	}
	for k := range wholeKeys {
		if !union[k] {
			t.Errorf("finding %s missing from the window union", k)
		}
	}
	// Window runs track coverage via the coordinator's done markers, never
	// the shard cursor.
	if _, err := os.Stat(statePath(dir, 0, 1)); !os.IsNotExist(err) {
		t.Errorf("window run wrote a shard cursor (stat err %v)", err)
	}
}

// TestCampaignWindowValidation: Window is mutually exclusive with N,
// Resume, and sharding, and must be non-empty.
func TestCampaignWindowValidation(t *testing.T) {
	base := Config{Gen: smallGen(), NITrials: 1}
	for name, cfg := range map[string]Config{
		"empty":    {Window: &Window{Lo: 5, Hi: 5}},
		"inverted": {Window: &Window{Lo: 9, Hi: 3}},
		"negative": {Window: &Window{Lo: -1, Hi: 3}},
		"with-n":   {Window: &Window{Lo: 0, Hi: 3}, N: 3},
		"with-resume": {
			Window: &Window{Lo: 0, Hi: 3}, Resume: true, CorpusDir: t.TempDir(),
		},
		"with-shard": {Window: &Window{Lo: 0, Hi: 3}, Shard: 1, NumShards: 2},
	} {
		cfg.Gen = base.Gen
		cfg.NITrials = base.NITrials
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: invalid window config accepted", name)
		}
	}
}

// TestCampaignCancellation: mid-run cancellation reports Aborted, does not
// advance the resume cursor, and the next run re-covers the window.
func TestCampaignCancellation(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	rep, err := Run(ctx, Config{
		N:         5000,
		Seed:      3,
		Gen:       smallGen(),
		NITrials:  2,
		CorpusDir: dir,
	})
	if err == nil || !rep.Aborted {
		t.Fatalf("cancelled campaign returned err=%v aborted=%v", err, rep.Aborted)
	}
	st, err := loadState(dir, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NextIndex != 0 {
		t.Errorf("aborted run advanced the cursor to %d", st.NextIndex)
	}
}

// TestCampaignCursorNeverRegresses: a short non-Resume run over an old
// window (e.g. reproducing a finding) must not rewind the shard cursor a
// longer campaign established.
func TestCampaignCursorNeverRegresses(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{N: 40, Seed: 5, Gen: smallGen(), NITrials: 1, CorpusDir: dir}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	short := cfg
	short.N = 5
	rep, err := Run(context.Background(), short)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NextIndex != 40 {
		t.Errorf("short run reports NextIndex %d, want the preserved 40", rep.NextIndex)
	}
	st, err := loadState(dir, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NextIndex != 40 {
		t.Errorf("cursor regressed to %d, want 40", st.NextIndex)
	}
}

// TestCampaignResumeMismatch: a resume cursor recorded for one seed or
// generator config refuses to resume under another.
func TestCampaignResumeMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{N: 4, Seed: 1, Gen: smallGen(), NITrials: 1, CorpusDir: dir}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Resume = true
	bad.Seed = 2
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("resume with a different seed must fail")
	}
	bad = cfg
	bad.Resume = true
	bad.Gen.MaxStmts++
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("resume with a different generator config must fail")
	}
}

// TestCampaignTruncatedCursorRecovery: a cursor file truncated mid-write
// (the pre-atomic-save failure mode) must not brick the shard — the next
// run warns and re-covers from index 0 instead of erroring.
func TestCampaignTruncatedCursorRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{N: 4, Seed: 1, Gen: smallGen(), NITrials: 1, CorpusDir: dir}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// Truncate the cursor the way a killed worker's partial write would.
	path := statePath(dir, 0, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var warnings []events.Event
	next := cfg
	next.Resume = true
	next.Events = func(e events.Event) {
		if e.Kind == events.KindWarning {
			warnings = append(warnings, e)
		}
	}
	rep, err := Run(context.Background(), next)
	if err != nil {
		t.Fatalf("truncated cursor bricked the shard: %v", err)
	}
	if rep.FirstIndex != 0 {
		t.Errorf("recovered run started at %d, want 0", rep.FirstIndex)
	}
	found := false
	for _, w := range warnings {
		if strings.Contains(w.Detail, "corrupt resume cursor") && w.Path == path {
			found = true
		}
	}
	if !found {
		t.Errorf("no corrupt-cursor warning emitted; warnings: %+v", warnings)
	}
	// The recovered run rewrote the cursor; a plain resume works again.
	st, err := loadState(dir, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NextIndex != 4 {
		t.Errorf("rewritten cursor at %d, want 4", st.NextIndex)
	}
}

// TestCampaignResumeMutationMismatch: the cursor records the mutation
// schedule, and a resume under a different one is refused — a different
// Mutate/MutateFrac silently changes what every index means, exactly like
// a different seed.
func TestCampaignResumeMutationMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{N: 4, Seed: 1, Gen: smallGen(), NITrials: 1, CorpusDir: dir}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Resume = true
	bad.Mutate = true
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("resume with mutation toggled on must fail")
	}

	mdir := t.TempDir()
	mcfg := Config{N: 4, Seed: 1, Gen: smallGen(), NITrials: 1, CorpusDir: mdir, Mutate: true}
	if _, err := Run(context.Background(), mcfg); err != nil {
		t.Fatal(err)
	}
	// The cursor stores the *effective* fraction, so spelling the 0.5
	// default explicitly still resumes...
	ok := mcfg
	ok.Resume = true
	ok.MutateFrac = 0.5
	if _, err := Run(context.Background(), ok); err != nil {
		t.Errorf("resume with the explicit default fraction failed: %v", err)
	}
	// ...while an actually different fraction is refused.
	bad = mcfg
	bad.Resume = true
	bad.MutateFrac = 0.25
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("resume with a different mutate-frac must fail")
	}
}

// TestCampaignResumeLegacyCursor: cursors written before the mutation
// fields existed (nil Mutate/MutateFrac) resume under any schedule — the
// escape hatch that keeps existing .fuzz-corpus caches resumable.
func TestCampaignResumeLegacyCursor(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{N: 4, Seed: 1, Gen: smallGen(), NITrials: 1, CorpusDir: dir}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// Rewrite the cursor without the mutation fields, as an old build
	// would have left it.
	st, err := loadState(dir, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Mutate = nil
	st.MutateFrac = nil
	if err := saveState(dir, st, 0, 1); err != nil {
		t.Fatal(err)
	}
	next := cfg
	next.Resume = true
	next.Mutate = true
	rep, err := Run(context.Background(), next)
	if err != nil {
		t.Fatalf("legacy cursor refused a resume: %v", err)
	}
	if rep.FirstIndex != 4 {
		t.Errorf("legacy resume started at %d, want 4", rep.FirstIndex)
	}
}

// TestCampaignNoCorpusDir: without a corpus dir the campaign still runs,
// dedups within the run, and keeps findings in memory.
func TestCampaignNoCorpusDir(t *testing.T) {
	rep, err := Run(context.Background(), Config{N: 40, Seed: 9, Gen: smallGen(), NITrials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Analyzed != 40 {
		t.Errorf("analyzed %d, want 40", rep.Analyzed)
	}
	for _, f := range rep.Findings {
		if f.Path != "" {
			t.Errorf("finding %s claims a path without a corpus dir", f.Key)
		}
	}
	if rep.KnownFindings != 0 {
		t.Errorf("known findings %d without a corpus", rep.KnownFindings)
	}
}

// TestCampaignShardValidation: out-of-range shards are configuration
// errors, not silent empty runs.
func TestCampaignShardValidation(t *testing.T) {
	for _, tc := range []struct{ shard, num int }{{2, 2}, {-1, 2}, {1, 1}} {
		if _, err := Run(context.Background(), Config{N: 1, Shard: tc.shard, NumShards: tc.num}); err == nil {
			t.Errorf("shard %d/%d accepted", tc.shard, tc.num)
		}
	}
	// Resume without a corpus has no cursor to read — a silent restart at
	// index 0 every run, so it must be refused too.
	if _, err := Run(context.Background(), Config{N: 1, Resume: true}); err == nil {
		t.Error("Resume without CorpusDir accepted")
	}
}
