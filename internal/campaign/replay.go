// Replay turns the corpus into a regression suite: every persisted
// finding is re-checked against the current checker stack, and any
// verdict drift — a finding that no longer classifies the way its
// metadata records — fails the replay. Drift cuts both ways and both are
// worth a red light: a rejected-clean entry that starts witnessing means
// checker or interpreter behavior changed; a parser-disagreement entry
// that starts roundtripping means the frontend defect it documents was
// fixed and the entry should be retired (or promoted to a test).
package campaign

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/difftest"
	"repro/internal/events"
	"repro/internal/parser"
	"repro/internal/pipeline"
)

// ReplayConfig configures a corpus replay.
type ReplayConfig struct {
	// CorpusDir is the corpus to replay. A missing or empty findings
	// directory replays zero findings and passes — the first nightly run
	// has nothing to regress against.
	CorpusDir string
	// Corpus is an already-open handle over CorpusDir; when set, the
	// replay reads through it (sharing its source and parse caches)
	// instead of opening the directory again. Session threads one handle
	// through every operation this way.
	Corpus *corpus.Corpus
	// NITrials and NITrialsMax are the NI budget for findings whose
	// metadata predates budget recording (defaults 4 and 32, the campaign
	// defaults). Findings recorded with their budget replay under it.
	NITrials    int
	NITrialsMax int
	// Log receives one line per drifted finding (nil = discard).
	Log io.Writer
	// Events receives the replay's structured event stream (job-done per
	// replayed finding, drift per mismatch); nil discards.
	Events events.Sink
}

// Drift is one finding whose replayed classification no longer matches
// the recorded one.
type Drift struct {
	// Path is the finding's program file.
	Path string
	// Recorded is the persisted class; Got is the class (or verdict
	// description) the current stack assigns; Detail explains Got.
	Recorded Class
	Got      string
	Detail   string
}

// ReplayReport is a replay's outcome.
type ReplayReport struct {
	// Total counts findings replayed; ByClass splits them by recorded
	// class. Reproduced counts findings whose replayed class matched the
	// recorded one — Total minus drifts minus entries that errored after
	// being counted.
	Total      int
	Reproduced int
	ByClass    map[Class]int
	// Drifts holds every verdict drift; Errors every finding that could
	// not be replayed at all (unreadable pair, unresolvable lattice).
	Drifts []Drift
	Errors []string
	// Elapsed is wall-clock replay time; CorpusDir echoes the corpus.
	Elapsed   time.Duration
	CorpusDir string
}

// OK reports a clean replay: every finding reproduced its recorded class.
func (r *ReplayReport) OK() bool { return len(r.Drifts) == 0 && len(r.Errors) == 0 }

// Replay re-checks every persisted finding under dir against the current
// checker stack. The returned error is a context or corpus-I/O failure;
// drift is reported in the ReplayReport, not as an error.
func Replay(ctx context.Context, cfg ReplayConfig) (*ReplayReport, error) {
	trials := cfg.NITrials
	if trials <= 0 {
		trials = 4
	}
	max := cfg.NITrialsMax
	if max <= 0 {
		max = 8 * trials
	}
	log := cfg.Log
	if log == nil {
		log = io.Discard
	}
	rep := &ReplayReport{ByClass: map[Class]int{}, CorpusDir: cfg.CorpusDir}
	start := time.Now()
	defer func() { rep.Elapsed = time.Since(start) }()

	c := cfg.Corpus
	if c == nil {
		dir := cfg.CorpusDir
		if dir == "" {
			dir = "."
		}
		var err error
		if c, err = corpus.OpenSink(dir, cfg.Events); err != nil {
			return rep, fmt.Errorf("campaign: replay: %w", err)
		}
	}
	var seq int64
	for e, err := range c.Entries() {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return rep, ctxErr
		}
		if err != nil {
			rep.Errors = append(rep.Errors, err.Error())
			continue
		}
		rep.Total++
		rep.ByClass[e.Meta.Class]++
		src, err := e.Source()
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", e.Path, err))
			continue
		}
		got, detail, err := replayOne(ctx, e.Meta, src, trials, max)
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", e.Path, err))
			continue
		}
		cfg.Events.Emit(events.Event{
			Kind: events.KindJobDone, Op: "replay",
			Index: seq, Class: got, Key: e.Meta.Key, Path: e.Path,
		})
		seq++
		if got != string(e.Meta.Class) {
			rep.Drifts = append(rep.Drifts, Drift{Path: e.Path, Recorded: e.Meta.Class, Got: got, Detail: detail})
			cfg.Events.Emit(events.Event{
				Kind: events.KindDrift, Op: "replay",
				Class: string(e.Meta.Class), Detail: fmt.Sprintf("now %s: %s", got, detail),
				Key: e.Meta.Key, Path: e.Path,
			})
			fmt.Fprintf(log, "drift: %s recorded %s, now %s (%s)\n", e.Path, e.Meta.Class, got, detail)
		} else {
			rep.Reproduced++
		}
	}
	cfg.Events.Emit(events.Event{
		Kind: events.KindProgress, Op: "replay", Done: rep.Total, Total: rep.Total,
	})
	return rep, nil
}

// replayOne re-classifies one finding. The returned string is the corpus
// class the current stack assigns, or a description when the result has
// no corpus class ("sound", "rejected-witnessed", "roundtrip-clean", ...).
func replayOne(ctx context.Context, m Meta, src string, trials, max int) (string, string, error) {
	// A persisted program the frontend no longer parses drifts to
	// "unparseable" uniformly, whatever its recorded class. Verdict
	// classes used to skip this check and fall into the pipeline, where
	// the parse failure resurfaced as a generator-bug verdict — so an
	// unparseable rejected-clean entry drifted to the wrong class and was
	// then double-reported by retire's fingerprint pass. Generator-bug
	// entries are exempt: an unparseable program can be exactly the
	// recorded defect, and the pipeline reproduces it as such.
	if m.Class != ClassGeneratorBug {
		prog, err := parser.Parse("replay.p4", src)
		if err != nil {
			return "unparseable", err.Error(), nil
		}
		if m.Class == ClassParserDisagreement || m.Class == ClassRoundtripClean {
			if detail, bad := roundtripDisagreement("replay.p4", prog); bad {
				return string(ClassParserDisagreement), detail, nil
			}
			return string(ClassRoundtripClean), "parse → print → reparse is now a fixed point", nil
		}
	}

	lat, err := m.Gen.ResolveLattice()
	if err != nil {
		return "", "", err
	}
	if m.NITrials > 0 {
		trials = m.NITrials
	}
	if m.NITrialsMax > 0 {
		max = m.NITrialsMax
	}
	sum, err := pipeline.Run(ctx, []pipeline.Job{{Name: "replay.p4", Source: src, Lat: lat}}, pipeline.Options{
		Workers:     1,
		NI:          pipeline.NIAll,
		NITrials:    trials,
		NITrialsMax: max,
		NISeed:      m.NISeed,
		// Replay under the oracle the finding was classified with: the
		// proved-imprecise/secret-exhaustive/under-tested classes only
		// reproduce under the exhaustive oracle at the recorded budget.
		// Entries predating the oracle split record "" and replay under
		// the default, unchanged.
		Oracle:        m.NIOracle,
		ExhaustBudget: m.ExhaustBudget,
		ExhaustProbes: m.ExhaustProbes,
	})
	if err != nil {
		return "", "", err
	}
	if len(sum.Results) != 1 {
		return "", "", fmt.Errorf("replay produced %d results", len(sum.Results))
	}
	v, detail := difftest.Classify(&sum.Results[0])
	if class, ok := classOf(v); ok {
		return string(class), detail, nil
	}
	switch v {
	case difftest.Sound:
		return string(ClassSound), "IFC-accepted and NI-clean", nil
	case difftest.RejectedWitnessed:
		return string(ClassRejectedWitnessed), detail, nil
	}
	return v.String(), detail, nil
}

// FormatReplayReport renders a replay outcome.
func FormatReplayReport(r *ReplayReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "corpus replay: %s, %d findings, %v\n",
		r.CorpusDir, r.Total, r.Elapsed.Round(time.Millisecond))
	classes := make([]string, 0, len(r.ByClass))
	for c := range r.ByClass {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(&b, "  %-24s %6d\n", c, r.ByClass[Class(c)])
	}
	for _, d := range r.Drifts {
		fmt.Fprintf(&b, "\nDRIFT %s\n  recorded %s, now %s\n  %s\n", d.Path, d.Recorded, d.Got, d.Detail)
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "\nERROR %s\n", e)
	}
	switch {
	case r.OK():
		fmt.Fprintf(&b, "PASS: all %d persisted findings reproduce their recorded classes\n", r.Total)
	default:
		fmt.Fprintf(&b, "FAIL: %d drifted, %d unreplayable (see above)\n", len(r.Drifts), len(r.Errors))
	}
	return b.String()
}
