package campaign

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/difftest"
)

// seedCorpus runs a small plain campaign into dir so later runs have a
// seed pool, and returns the number of findings persisted.
func seedCorpus(t *testing.T, dir string, cfg Config) int {
	t.Helper()
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("seeding campaign: %v", err)
	}
	if rep.NewFindings == 0 {
		t.Fatal("seeding campaign persisted nothing; mutation tests need a pool")
	}
	return rep.NewFindings
}

// copyFindings clones src/findings into dst so several corpus dirs share
// one seed-pool snapshot — the precondition under which mutation-enabled
// sharding stays partition-exact.
func copyFindings(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dst, "findings"), 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(src, "findings"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, "findings", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, "findings", e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// copyNoveltyState clones src/state's novelty-*.json files into dst so
// shard dirs share the full scheduling snapshot — findings and novelty
// records — under which mutation-enabled sharding stays partition-exact.
func copyNoveltyState(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(src, "state"))
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dst, "state"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "novelty-") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, "state", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, "state", e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCampaignMutationShardUnion extends the shard-union determinism
// property to seed scheduling: with every shard holding the same corpus
// snapshot, the mutate-or-generate coin, the weighted seed draw, and the
// mutation itself all run off the global index's rng — so the union of
// mutation-enabled shards still equals the unsharded campaign, verdict
// counts, mutant counts, findings, and all.
func TestCampaignMutationShardUnion(t *testing.T) {
	const n, shards = 90, 3
	seedDir := t.TempDir()
	seedCorpus(t, seedDir, Config{
		N: 80, Seed: 11, Gen: smallGen(), NITrials: 1, NITrialsMax: 4,
		CorpusDir: seedDir, Minimize: true,
	})

	mk := func(dir string, shard, numShards int) *Report {
		copyFindings(t, seedDir, dir)
		rep, err := Run(context.Background(), Config{
			N:           n,
			Seed:        7,
			Gen:         smallGen(),
			NITrials:    1,
			NITrialsMax: 4,
			Workers:     2,
			Shard:       shard,
			NumShards:   numShards,
			Mutate:      true,
			CorpusDir:   dir,
			MaxPerClass: -1,
		})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", shard, numShards, err)
		}
		if rep.SeedPoolSize == 0 {
			t.Fatalf("shard %d/%d started with an empty seed pool", shard, numShards)
		}
		return rep
	}

	whole := t.TempDir()
	repWhole := mk(whole, 0, 1)
	if repWhole.MutantJobs == 0 {
		t.Fatal("mutation-enabled campaign analyzed no mutants; the schedule is not firing")
	}

	var shardAnalyzed, shardMutants int
	var shardCounts [difftest.NumVerdicts]int
	union := map[string]bool{}
	for s := 0; s < shards; s++ {
		dir := t.TempDir()
		rep := mk(dir, s, shards)
		shardAnalyzed += rep.Analyzed
		shardMutants += rep.MutantJobs
		for v, c := range rep.Counts {
			shardCounts[v] += c
		}
		for k := range readKeys(t, dir) {
			union[k] = true
		}
	}

	if shardAnalyzed != repWhole.Analyzed || shardAnalyzed != n {
		t.Errorf("shards analyzed %d programs, unsharded %d, want %d", shardAnalyzed, repWhole.Analyzed, n)
	}
	if shardMutants != repWhole.MutantJobs {
		t.Errorf("shards mutated %d jobs, unsharded %d — seed scheduling is not index-deterministic", shardMutants, repWhole.MutantJobs)
	}
	if shardCounts != repWhole.Counts {
		t.Errorf("shard verdict counts %v != unsharded %v", shardCounts, repWhole.Counts)
	}
	wholeKeys := readKeys(t, whole)
	if len(union) != len(wholeKeys) {
		t.Errorf("shard corpus union has %d findings, unsharded %d", len(union), len(wholeKeys))
	}
	for k := range wholeKeys {
		if !union[k] {
			t.Errorf("finding %s missing from the shard union", k)
		}
	}
}

// TestCampaignMutationShardUnionWithNovelty re-proves the shard-union
// property with novelty feedback in play: the seed corpus now carries
// real novelty records (from a prior mutation run), the pool weights are
// therefore class × recency × novelty, and the union of shards must
// still equal the unsharded campaign exactly — scheduling depends only
// on the shared (findings, novelty) snapshot, never on which shard asks.
func TestCampaignMutationShardUnionWithNovelty(t *testing.T) {
	const n, shards = 90, 3
	seedDir := t.TempDir()
	seedCorpus(t, seedDir, Config{
		N: 80, Seed: 11, Gen: smallGen(), NITrials: 1, NITrialsMax: 4,
		CorpusDir: seedDir, Minimize: true,
	})
	// A mutation run over the seeded corpus leaves novelty records behind.
	prior, err := Run(context.Background(), Config{
		N: 100, Seed: 23, Gen: smallGen(), NITrials: 1, NITrialsMax: 4,
		Mutate: true, CorpusDir: seedDir, MaxPerClass: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prior.MutantJobs == 0 {
		t.Fatal("prior run mutated nothing; the test needs novelty data")
	}
	if stats, err := LoadNovelty(seedDir); err != nil || len(stats) == 0 {
		t.Fatalf("no novelty records after a mutation run (err=%v)", err)
	}

	mk := func(dir string, shard, numShards int) *Report {
		copyFindings(t, seedDir, dir)
		copyNoveltyState(t, seedDir, dir)
		rep, err := Run(context.Background(), Config{
			N:           n,
			Seed:        7,
			Gen:         smallGen(),
			NITrials:    1,
			NITrialsMax: 4,
			Workers:     2,
			Shard:       shard,
			NumShards:   numShards,
			Mutate:      true,
			CorpusDir:   dir,
			MaxPerClass: -1,
		})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", shard, numShards, err)
		}
		return rep
	}

	whole := t.TempDir()
	repWhole := mk(whole, 0, 1)
	if repWhole.MutantJobs == 0 {
		t.Fatal("mutation-enabled campaign analyzed no mutants")
	}

	var shardAnalyzed, shardMutants int
	var shardCounts [difftest.NumVerdicts]int
	union := map[string]bool{}
	for s := 0; s < shards; s++ {
		dir := t.TempDir()
		rep := mk(dir, s, shards)
		shardAnalyzed += rep.Analyzed
		shardMutants += rep.MutantJobs
		for v, c := range rep.Counts {
			shardCounts[v] += c
		}
		for k := range readKeys(t, dir) {
			union[k] = true
		}
	}

	if shardAnalyzed != repWhole.Analyzed || shardAnalyzed != n {
		t.Errorf("shards analyzed %d programs, unsharded %d, want %d", shardAnalyzed, repWhole.Analyzed, n)
	}
	if shardMutants != repWhole.MutantJobs {
		t.Errorf("shards mutated %d jobs, unsharded %d — novelty weighting broke index-determinism", shardMutants, repWhole.MutantJobs)
	}
	if shardCounts != repWhole.Counts {
		t.Errorf("shard verdict counts %v != unsharded %v", shardCounts, repWhole.Counts)
	}
	wholeKeys := readKeys(t, whole)
	if len(union) != len(wholeKeys) {
		t.Errorf("shard corpus union has %d findings, unsharded %d", len(union), len(wholeKeys))
	}
	for k := range wholeKeys {
		if !union[k] {
			t.Errorf("finding %s missing from the shard union", k)
		}
	}
}

// TestCampaignChainMutationReachesNewClasses is the acceptance demo: a
// mutation campaign over a seeded corpus on a chain-4 lattice produces
// deduplicated findings that pure two-point gen.Random sampling cannot
// reach — their programs annotate fields at the intermediate labels L1/L2,
// which the two-point emitter has no way to spell. It also pins that the
// corpus-as-seed-pool loop contributes: at least one finding is a mutant.
func TestCampaignChainMutationReachesNewClasses(t *testing.T) {
	dir := t.TempDir()
	// Seed pool: a plain two-point campaign, as PR-2 nightlies left behind.
	seedCorpus(t, dir, Config{
		N: 80, Seed: 11, Gen: smallGen(), NITrials: 1, NITrialsMax: 4,
		CorpusDir: dir, Minimize: true,
	})

	chainGen := smallGen()
	chainGen.Lattice = "chain:4"
	rep, err := Run(context.Background(), Config{
		N:           200,
		Seed:        5,
		Gen:         chainGen,
		NITrials:    1,
		NITrialsMax: 4,
		Workers:     2,
		Mutate:      true,
		CorpusDir:   dir,
		MaxPerClass: -1,
	})
	if err != nil {
		t.Fatalf("chain-4 mutation campaign: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("chain-4 campaign found implementation defects:\n%s", FormatReport(rep))
	}
	if rep.MutantJobs == 0 {
		t.Fatal("no mutant jobs ran")
	}

	tall, mutants := 0, 0
	for _, f := range rep.Findings {
		if strings.Contains(f.Source, ", L1>") || strings.Contains(f.Source, ", L2>") {
			tall++
		}
		if f.Origin == "mutate" {
			mutants++
			if f.ParentKey == "" {
				t.Errorf("mutant finding %s lacks a parent key", f.Key)
			}
		}
	}
	if tall == 0 {
		t.Fatalf("no finding uses an intermediate chain label; nothing here is out of two-point reach:\n%s", FormatReport(rep))
	}
	if mutants == 0 {
		t.Fatal("no finding originated from a corpus mutant; the seed pool contributed nothing")
	}

	// The new findings replay like any others: the corpus stays a valid
	// regression suite across lattices.
	rr, err := Replay(context.Background(), ReplayConfig{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.OK() {
		t.Fatalf("mixed two-point + chain-4 corpus does not replay clean:\n%s", FormatReplayReport(rr))
	}
}

// TestCampaignChainNoveltyCoversStaticPriorClasses is the novelty
// acceptance lock: under identical seeds and configuration, a chain-4
// mutation campaign whose seed pool carries real novelty records must
// discover at least the finding classes the static class × recency prior
// discovers. (A corpus *without* novelty records schedules identically
// to the static prior by construction — TestSeedPoolStaticPriorWithoutNovelty
// — so the static baseline here is simply the same campaign over the
// snapshot minus its novelty files.)
func TestCampaignChainNoveltyCoversStaticPriorClasses(t *testing.T) {
	seedDir := t.TempDir()
	seedCorpus(t, seedDir, Config{
		N: 80, Seed: 11, Gen: smallGen(), NITrials: 1, NITrialsMax: 4,
		CorpusDir: seedDir, Minimize: true,
	})
	// Generate novelty records with a two-point mutation run, then reset
	// the findings to the original snapshot so both campaigns below start
	// from the same pool membership — only the weights differ.
	noveltyDir := t.TempDir()
	copyFindings(t, seedDir, noveltyDir)
	if _, err := Run(context.Background(), Config{
		N: 100, Seed: 23, Gen: smallGen(), NITrials: 1, NITrialsMax: 4,
		Mutate: true, CorpusDir: noveltyDir, MaxPerClass: -1,
	}); err != nil {
		t.Fatal(err)
	}

	chainGen := smallGen()
	chainGen.Lattice = "chain:4"
	campaignOver := func(dir string) map[Class]bool {
		rep, err := Run(context.Background(), Config{
			N:           200,
			Seed:        5,
			Gen:         chainGen,
			NITrials:    1,
			NITrialsMax: 4,
			Workers:     2,
			Mutate:      true,
			CorpusDir:   dir,
			MaxPerClass: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("chain-4 campaign found implementation defects:\n%s", FormatReport(rep))
		}
		if rep.MutantJobs == 0 {
			t.Fatal("no mutant jobs ran")
		}
		classes := map[Class]bool{}
		for _, f := range rep.Findings {
			classes[f.Class] = true
		}
		return classes
	}

	// Static prior: the original findings snapshot, no novelty data.
	staticDir := t.TempDir()
	copyFindings(t, seedDir, staticDir)
	staticClasses := campaignOver(staticDir)

	// Novelty weighting: same findings snapshot plus the recorded novelty.
	weightedDir := t.TempDir()
	copyFindings(t, seedDir, weightedDir)
	copyNoveltyState(t, noveltyDir, weightedDir)
	if stats, err := LoadNovelty(weightedDir); err != nil || len(stats) == 0 {
		t.Fatalf("novelty snapshot missing (err=%v)", err)
	}
	noveltyClasses := campaignOver(weightedDir)

	if len(staticClasses) == 0 {
		t.Fatal("static-prior campaign found nothing; the comparison is vacuous")
	}
	for c := range staticClasses {
		if !noveltyClasses[c] {
			t.Errorf("novelty-weighted campaign missed class %s that the static prior found (static %v, novelty %v)",
				c, staticClasses, noveltyClasses)
		}
	}
}
