package campaign

import (
	"context"
	"testing"

	"repro/internal/corpus"
)

// TestExhaustiveCampaignSplitsAndReplays runs a small campaign under the
// exhaustive oracle and locks the whole provenance chain: the old
// rejected-clean pool splits into proved-imprecise / secret-exhaustive /
// under-tested corpus classes, each finding records the oracle it was
// judged with, and Replay — which re-judges under the recorded oracle —
// reproduces every class. Generated programs carry ~47 bits of public
// standard_metadata, so their clean sweeps run in probe mode and land in
// secret-exhaustive, not proved-imprecise (which demands a total sweep).
func TestExhaustiveCampaignSplitsAndReplays(t *testing.T) {
	dir := t.TempDir()
	// One bit<8> + one bool secret field = 9 secret bits: inside the
	// default budget, so the enumerator actually proves things. (Two
	// fields put 17 secret bits per program, just over the 2^16 default:
	// every finding would be under-tested.)
	g := smallGen()
	g.NumFields = 1
	rep, err := Run(context.Background(), Config{
		N:           120,
		Seed:        42,
		Gen:         g,
		NITrials:    2,
		NITrialsMax: 8,
		NIOracle:    "exhaustive",
		Workers:     2,
		CorpusDir:   dir,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if rep.NewFindings == 0 {
		t.Fatal("campaign persisted no findings")
	}

	c, err := corpus.Open(dir)
	if err != nil {
		t.Fatalf("open corpus: %v", err)
	}
	byClass := map[Class]int{}
	for e, err := range c.Entries() {
		if err != nil {
			t.Fatalf("entry: %v", err)
		}
		byClass[e.Meta.Class]++
		switch e.Meta.Class {
		case ClassProvedImprecise, ClassSecretExhausted, ClassUnderTested:
			if e.Meta.NIOracle != "exhaustive" {
				t.Errorf("%s: class %s recorded oracle %q, want exhaustive", e.Path, e.Meta.Class, e.Meta.NIOracle)
			}
		case ClassRejectedClean:
			t.Errorf("%s: rejected-clean persisted under the exhaustive oracle — the split must be total", e.Path)
		}
	}
	if byClass[ClassSecretExhausted] == 0 {
		t.Fatalf("no secret-exhaustive findings in %v — the enumerator never certified a rejection", byClass)
	}
	if byClass[ClassProvedImprecise] != 0 {
		t.Fatalf("%d proved-imprecise findings in %v — generated publics exceed the budget, so no sweep can be total", byClass[ClassProvedImprecise], byClass)
	}

	rr, err := Replay(context.Background(), ReplayConfig{CorpusDir: dir})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rr.OK() {
		t.Fatalf("exhaustive-oracle corpus does not replay clean:\n%s", FormatReplayReport(rr))
	}
}
