package campaign

import (
	"context"
	"sync"
	"testing"

	"repro/internal/events"
	"repro/internal/metrics"
)

// TestCampaignMetrics: a campaign with a registry attached (a) counts
// every analyzed job and every persisted finding, (b) stamps throughput
// rates onto its progress events, and (c) ships periodic KindMetrics
// snapshots plus one final snapshot that already reflects the findings.
func TestCampaignMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	var mu sync.Mutex
	var progress, snaps []events.Event
	rep, err := Run(context.Background(), Config{
		N: 60, Seed: 7, Gen: smallGen(), NITrials: 2, Workers: 2,
		CorpusDir: t.TempDir(), MaxPerClass: -1,
		Metrics: reg,
		Events: func(e events.Event) {
			mu.Lock()
			defer mu.Unlock()
			switch e.Kind {
			case events.KindProgress:
				progress = append(progress, e)
			case events.KindMetrics:
				snaps = append(snaps, e)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := int(snap.Counter("campaign_jobs_total")); got != rep.Analyzed {
		t.Errorf("campaign_jobs_total = %d, report analyzed %d", got, rep.Analyzed)
	}
	if got := int(snap.Counter("pipeline_jobs_total")); got < rep.Analyzed {
		t.Errorf("pipeline_jobs_total = %d, want >= %d (every analyzed job ran the pipeline)", got, rep.Analyzed)
	}
	var findings float64
	for _, c := range snap.Counters {
		if c.Name == "campaign_findings_total" {
			findings += c.Value
		}
	}
	if int(findings) != rep.NewFindings {
		t.Errorf("campaign_findings_total sums to %d, report has %d new findings", int(findings), rep.NewFindings)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(progress) == 0 {
		t.Fatal("no progress events")
	}
	rated := 0
	for _, e := range progress {
		if e.JobsPerSec > 0 {
			rated++
		}
	}
	if rated == 0 {
		t.Error("no progress event carried a jobs/sec rate despite an attached registry")
	}

	if len(snaps) == 0 {
		t.Fatal("no KindMetrics events on the stream")
	}
	last := snaps[len(snaps)-1]
	if last.Snapshot == nil {
		t.Fatal("KindMetrics event without a snapshot payload")
	}
	// The final snapshot is emitted after finalization, so its finding
	// counters must agree with the report, not trail it.
	var lastFindings float64
	for _, c := range last.Snapshot.Counters {
		if c.Name == "campaign_findings_total" {
			lastFindings += c.Value
		}
	}
	if int(lastFindings) != rep.NewFindings {
		t.Errorf("final snapshot records %d findings, report %d", int(lastFindings), rep.NewFindings)
	}
}
