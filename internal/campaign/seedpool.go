// Seed scheduling for mutation-enabled campaigns: the persisted corpus
// doubles as the seed pool of the classic coverage-guided loop. Seeds are
// weighted by four multiplied factors:
//
//   - verdict class: defect classes first — a mutant of a program that
//     broke something once is the best candidate to break it again — then
//     the precision frontier;
//   - recency: newer findings describe the current frontier; older ones
//     have had their neighborhoods searched on previous nights;
//   - novelty: true coverage feedback from the corpus's novelty records
//     (state/novelty-*.json) — seeds whose mutants keep landing as new
//     dedup keys are boosted, seeds whose neighborhoods are mined out
//     fade, and seeds never mutated yet carry an exploration bonus;
//   - cluster saturation: the same novelty evidence aggregated over the
//     seed's whole (class, rule, shape-fingerprint) triage cluster — when
//     every explored member of a shape class stopped producing new keys,
//     the *unexplored* members of that class fade too, because they are
//     the same kind of program; a shape class still paying off lifts all
//     its members. Mined-out shape classes fade wholesale, not seed by
//     seed.
//
// A corpus with no novelty records multiplies every seed by the same
// neutral constants, so the distribution reduces exactly to the historical
// class × recency prior — pre-novelty corpora and freshly seeded pools
// schedule byte-identically to PR 3's scheduler (the cluster factor is
// derived from the same records and is neutral without them).
//
// Seeds are drawn per campaign index from the index's own rng, so
// scheduling is deterministic given (seed, pool): the shard-union
// property survives mutation as long as shards share a corpus snapshot —
// findings and novelty files alike.
package campaign

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/ast"
	"repro/internal/corpus"
	"repro/internal/lattice"
)

// seedEntry is one corpus program available for mutation.
type seedEntry struct {
	key     string
	class   Class
	source  string
	cluster string // (class, rule, fingerprint) key; unique for unparseable seeds
}

// seedPool is a weighted sampler over corpus entries.
type seedPool struct {
	entries []seedEntry
	cum     []float64 // cumulative weights, parallel to entries
	total   float64
}

// classWeight ranks finding classes by how promising their neighborhoods
// are: defects first, then the precision frontier, then generator bugs
// (whose mutants usually fail admission anyway).
func classWeight(c Class) float64 {
	switch c {
	case ClassSoundnessViolation:
		return 4
	case ClassParserDisagreement, ClassRuntimeError:
		return 3
	case ClassRejectedClean, ClassProvedImprecise, ClassSecretExhausted,
		ClassUnderTested:
		// The split of rejected-clean stays on the precision frontier:
		// proved-imprecise and secret-exhaustive neighborhoods map the
		// checker's conservatism, under-tested ones may hide real leaks.
		return 2
	default:
		return 1
	}
}

// recencyDecay is the per-rank multiplier applied down the
// newest-to-oldest order; with 0.97, the hundredth-newest seed still
// keeps ~5% of the weight of the newest, so old seeds fade rather than
// vanish.
const recencyDecay = 0.97

// Novelty-boost constants. An unexplored seed sits at the neutral
// exploration bonus; an explored seed interpolates from noveltyFloor (all
// mutants were duplicates) up to noveltyFloor+noveltyGain (every mutant
// was a new key). The floor is positive so barren seeds fade rather than
// vanish — their neighborhoods may still pay off under a different
// lattice or operator mix — and the ceiling exceeds the bonus so proven
// producers outrank unexplored ones.
const (
	noveltyExploreBonus = 1.5
	noveltyFloor        = 0.5
	noveltyGain         = 3.0
)

// Cluster-saturation constants. A cluster none of whose members has been
// mutated yet is neutral (1.0 — the per-seed exploration bonus already
// rewards unexplored seeds); an explored cluster interpolates from
// clusterFloor (every mutant of every member was a duplicate: the shape
// class is mined out and all its members fade, explored or not) up to
// clusterFloor+clusterGain (the class keeps producing). The range brackets
// 1.0 so the factor is a genuine correction around the per-seed signal,
// never the dominant term.
const (
	clusterFloor = 0.5
	clusterGain  = 1.0
)

// noveltyBoost maps a seed's productivity record to a weight multiplier.
// Seeds with no record (or no analyzed mutants yet) are "unexplored".
func noveltyBoost(st NoveltyStat, known bool) float64 {
	if !known || st.Mutants == 0 {
		return noveltyExploreBonus
	}
	p := float64(st.NewKeys) / float64(st.Mutants)
	if p > 1 {
		p = 1 // defensive: hand-edited or merged-twice records
	}
	return noveltyFloor + noveltyGain*p
}

// clusterBoost maps a cluster's aggregated productivity (mutants and new
// keys summed over every member's novelty record) to a weight multiplier
// shared by all its members.
func clusterBoost(mutants, newKeys int) float64 {
	if mutants == 0 {
		return 1
	}
	p := float64(newKeys) / float64(mutants)
	if p > 1 {
		p = 1
	}
	return clusterFloor + clusterGain*p
}

// loadSeedPool builds a weighted pool over the open corpus's well-formed
// entries, applying the corpus's novelty records both per seed and
// aggregated per (class, rule, shape) cluster. A nil handle or an empty
// corpus yields an empty pool (the scheduler then generates everything
// fresh). Ordering — and therefore sampling — is deterministic: entries
// sort newest-first by recorded FoundAt with the dedup key as tiebreaker.
//
// Seeds whose label annotations the campaign lattice cannot resolve are
// excluded: a mixed corpus (chain-4 findings next to two-point ones) must
// not feed chain-4 seeds into a two-point campaign, where every mutant
// inheriting an "L1" annotation fails admission with an unknown-label
// resolve error. A nil lat admits everything (pre-lattice callers).
func loadSeedPool(c *corpus.Corpus, lat lattice.Lattice) (*seedPool, error) {
	p := &seedPool{}
	if c == nil {
		return p, nil
	}
	novelty, err := LoadNovelty(c.Dir())
	if err != nil {
		return nil, err
	}
	type rec struct {
		seedEntry
		foundAt int64
	}
	var recs []rec
	clusterMutants := map[string]int{}
	clusterNewKeys := map[string]int{}
	for e := range c.Select(corpus.Filter{}) {
		if !seedCompatible(e, lat) {
			continue
		}
		src, err := e.Source()
		if err != nil {
			continue // unreadable since Open; not a pool candidate
		}
		ck := clusterKeyOf(e)
		recs = append(recs, rec{
			seedEntry: seedEntry{key: e.Meta.Key, class: e.Meta.Class, source: src, cluster: ck},
			foundAt:   e.Meta.FoundAt.UnixNano(),
		})
		if st, known := novelty[e.Meta.Key]; known {
			clusterMutants[ck] += st.Mutants
			clusterNewKeys[ck] += st.NewKeys
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].foundAt != recs[j].foundAt {
			return recs[i].foundAt > recs[j].foundAt
		}
		return recs[i].key < recs[j].key
	})
	for rank, r := range recs {
		st, known := novelty[r.key]
		w := classWeight(r.class) * math.Pow(recencyDecay, float64(rank)) *
			noveltyBoost(st, known) * clusterBoost(clusterMutants[r.cluster], clusterNewKeys[r.cluster])
		p.total += w
		p.entries = append(p.entries, r.seedEntry)
		p.cum = append(p.cum, p.total)
	}
	return p, nil
}

// seedCompatible reports whether every security label the seed's program
// spells resolves in the campaign lattice. The check is semantic, not a
// comparison of recorded lattice specs: a chain-4 program that only ever
// writes "low"/"high" is a fine two-point seed, while one naming "L1" is
// not. Unparseable seeds pass — they carry no resolvable labels, and
// mutation falls back to fresh generation on them anyway.
func seedCompatible(e *corpus.Entry, lat lattice.Lattice) bool {
	if lat == nil {
		return true
	}
	prog, err := e.Program()
	if err != nil {
		return true
	}
	for _, l := range programLabels(prog) {
		if _, ok := lat.Lookup(l); !ok {
			return false
		}
	}
	return true
}

// programLabels collects every non-empty security label the program
// spells: SecType annotations everywhere the mutator's site walker
// reaches them (typedefs, header/struct fields, vars, function and
// control params, local and statement-level declarations) plus control
// @pc annotations.
func programLabels(p *ast.Program) []string {
	var labels []string
	sec := func(t *ast.SecType) {
		if t != nil && t.Label != "" {
			labels = append(labels, t.Label)
		}
	}
	var decl func(d ast.Decl)
	var block func(b *ast.BlockStmt)
	var stmt func(st ast.Stmt)
	decl = func(d ast.Decl) {
		switch d := d.(type) {
		case *ast.TypedefDecl:
			sec(d.Type)
		case *ast.HeaderDecl:
			for i := range d.Fields {
				sec(d.Fields[i].Type)
			}
		case *ast.StructDecl:
			for i := range d.Fields {
				sec(d.Fields[i].Type)
			}
		case *ast.VarDecl:
			sec(d.Type)
		case *ast.FuncDecl:
			for i := range d.Params {
				sec(d.Params[i].Type)
			}
			block(d.Body)
		}
	}
	block = func(b *ast.BlockStmt) {
		if b == nil {
			return
		}
		for _, st := range b.Stmts {
			stmt(st)
		}
	}
	stmt = func(st ast.Stmt) {
		switch st := st.(type) {
		case *ast.IfStmt:
			block(st.Then)
			if st.Else != nil {
				stmt(st.Else)
			}
		case *ast.BlockStmt:
			block(st)
		case *ast.DeclStmt:
			sec(st.Decl.Type)
		}
	}
	for _, d := range p.Decls {
		decl(d)
	}
	for _, c := range p.Controls {
		if c.PCLabel != "" {
			labels = append(labels, c.PCLabel)
		}
		for i := range c.Params {
			sec(c.Params[i].Type)
		}
		for _, d := range c.Locals {
			decl(d)
		}
		block(c.Apply)
	}
	return labels
}

// clusterKeyOf groups a seed into its triage cluster: (class, cited rule,
// shape fingerprint) — the same triple internal/triage clusters report
// rows by, computed from the same cached parse. A seed whose program does
// not parse (generator-bug entries can be unparseable) has no shape;
// it forms a singleton cluster keyed by its own dedup key, so unknowable
// shapes neither pool their evidence nor damp each other.
func clusterKeyOf(e *corpus.Entry) string {
	fp, err := e.Fingerprint()
	if err != nil {
		return "!unparsed\x00" + e.Meta.Key
	}
	return string(e.Meta.Class) + "\x00" + e.Rule() + "\x00" + fp
}

// size reports how many seeds the pool holds.
func (p *seedPool) size() int { return len(p.entries) }

// pick draws one seed, weight-proportionally, from rng.
func (p *seedPool) pick(rng *rand.Rand) seedEntry {
	x := rng.Float64() * p.total
	i := sort.SearchFloat64s(p.cum, x)
	if i >= len(p.entries) {
		i = len(p.entries) - 1
	}
	return p.entries[i]
}

// weightOf returns the sampling weight of the seed at index i (test and
// triage introspection; the pool's public behavior is pick).
func (p *seedPool) weightOf(i int) float64 {
	if i == 0 {
		return p.cum[0]
	}
	return p.cum[i] - p.cum[i-1]
}
