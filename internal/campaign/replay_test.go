package campaign

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// soundSrc is a trivially sound two-point program, used to inject verdict
// drift into a persisted finding.
const soundSrc = `header data_t {
    <bit<8>, low> lo0;
}
struct headers { data_t d; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.lo0 = 8w1;
    }
}
`

// TestReplayReproducesAndFlagsDrift is the replay regression demo: a
// small campaign persists findings into a temp corpus; Replay then
// reproduces every persisted verdict class cleanly; and after a finding's
// program is tampered with, Replay flags exactly that finding as drifted.
func TestReplayReproducesAndFlagsDrift(t *testing.T) {
	dir := t.TempDir()
	rep, err := Run(context.Background(), Config{
		N:           80,
		Seed:        42,
		Gen:         smallGen(),
		NITrials:    2,
		NITrialsMax: 8,
		Workers:     2,
		CorpusDir:   dir,
		Minimize:    true,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if rep.NewFindings == 0 {
		t.Fatal("campaign persisted no findings; the replay demo needs some")
	}

	// Clean replay: every persisted class reproduces. The finding's
	// recorded NI budget rides along in its metadata, so the replay
	// defaults here are irrelevant.
	rr, err := Replay(context.Background(), ReplayConfig{CorpusDir: dir})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rr.OK() {
		t.Fatalf("fresh corpus does not replay clean:\n%s", FormatReplayReport(rr))
	}
	if rr.Total != rep.NewFindings {
		t.Errorf("replayed %d findings, campaign persisted %d", rr.Total, rep.NewFindings)
	}
	classes := 0
	for _, f := range rep.Findings {
		if rr.ByClass[f.Class] == 0 {
			t.Errorf("persisted class %s missing from the replay's class table", f.Class)
		}
	}
	for range rr.ByClass {
		classes++
	}
	if classes == 0 {
		t.Error("replay saw no classes at all")
	}

	// Injected drift: overwrite one non-parser finding's program with a
	// sound one. Replay must flag that path — and only that path.
	var victim string
	for _, f := range rep.Findings {
		if f.Class != ClassParserDisagreement && f.Path != "" {
			victim = f.Path
			break
		}
	}
	if victim == "" {
		t.Fatal("no persisted verdict-class finding to tamper with")
	}
	if err := os.WriteFile(victim, []byte(soundSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	rr2, err := Replay(context.Background(), ReplayConfig{CorpusDir: dir})
	if err != nil {
		t.Fatalf("replay after tamper: %v", err)
	}
	if rr2.OK() {
		t.Fatal("replay did not flag the injected drift")
	}
	if len(rr2.Drifts) != 1 || rr2.Drifts[0].Path != victim {
		t.Fatalf("replay flagged %v, want exactly the tampered %s", rr2.Drifts, victim)
	}
	if rr2.Drifts[0].Got != "sound" {
		t.Errorf("tampered finding replays as %q, want sound", rr2.Drifts[0].Got)
	}
}

// TestReplayEmptyAndMissingCorpus: nothing persisted means nothing to
// regress against — the gate passes instead of failing the first nightly
// run.
func TestReplayEmptyAndMissingCorpus(t *testing.T) {
	for _, dir := range []string{t.TempDir(), filepath.Join(t.TempDir(), "never-created")} {
		rr, err := Replay(context.Background(), ReplayConfig{CorpusDir: dir})
		if err != nil {
			t.Fatalf("replay of %s: %v", dir, err)
		}
		if !rr.OK() || rr.Total != 0 {
			t.Errorf("empty corpus %s replays as %d findings, ok=%v", dir, rr.Total, rr.OK())
		}
	}
}

// TestReplayFlagsUnreplayablePairs: a metadata file whose program is gone
// is an error entry, not a silent skip.
func TestReplayFlagsUnreplayablePairs(t *testing.T) {
	dir := t.TempDir()
	findings := filepath.Join(dir, "findings")
	if err := os.MkdirAll(findings, 0o755); err != nil {
		t.Fatal(err)
	}
	meta := `{"class":"rejected-clean","key":"deadbeef","detail":"","index":0,"gen_seed":0,"ni_seed":0,"gen":{},"shard":0,"num_shards":1,"original_bytes":1,"bytes":1,"minimized":false,"found_at":"2026-01-01T00:00:00Z"}`
	if err := os.WriteFile(filepath.Join(findings, "rejected-clean-deadbeef.json"), []byte(meta), 0o644); err != nil {
		t.Fatal(err)
	}
	rr, err := Replay(context.Background(), ReplayConfig{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rr.OK() || len(rr.Errors) != 1 {
		t.Fatalf("orphan metadata not flagged: ok=%v errors=%v", rr.OK(), rr.Errors)
	}
	if !strings.Contains(FormatReplayReport(rr), "FAIL") {
		t.Error("report for an unreplayable corpus does not say FAIL")
	}
}

// TestReplayCheckedInRegressionSeeds replays the regression corpus that
// ci.yml gates PRs on, so a checker change that drifts those seeds fails
// go test before it even reaches the workflow.
func TestReplayCheckedInRegressionSeeds(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "regression-corpus")
	if _, err := os.Stat(dir); err != nil {
		t.Skipf("no checked-in regression corpus: %v", err)
	}
	rr, err := Replay(context.Background(), ReplayConfig{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Total == 0 {
		t.Fatal("checked-in regression corpus is empty")
	}
	if !rr.OK() {
		t.Fatalf("checked-in regression seeds drifted:\n%s", FormatReplayReport(rr))
	}
}
