// Novelty tracking: true coverage feedback for the seed scheduler. The
// corpus records per seed how many mutant jobs the campaigns have derived
// from it and how many of those mutants landed as *new* dedup keys — new
// corpus entries, which is the campaign's notion of new coverage. The
// seed pool multiplies its static class × recency prior by a novelty
// boost computed from these counters, so mutation budget drains away from
// seeds whose neighborhoods are mined out and toward seeds that keep
// producing programs the corpus has never seen.
//
// Persistence mirrors the resume cursors: each shard writes its own
//
//	<dir>/state/novelty-<i>-of-<n>.json
//
// and every reader merges all novelty-*.json files additively. That keeps
// the corpus layout merge-friendly (shard dirs still combine by file
// copy, no file is written by two shards) and keeps scheduling
// deterministic: shards that share a corpus snapshot — findings and
// novelty files alike — compute identical pool weights and therefore
// identical per-index seed draws.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// NoveltyStat is the per-seed mutation-productivity record.
type NoveltyStat struct {
	// Mutants counts mutant jobs derived from this seed (analyzed, not
	// merely scheduled: a failed mutation that fell back to generation is
	// not charged).
	Mutants int `json:"mutants"`
	// NewKeys counts mutants that persisted as new dedup keys — new
	// corpus entries, the scheduler's coverage signal. Duplicates and
	// already-known findings don't count.
	NewKeys int `json:"new_keys"`
	// LastNewAt is when this seed last produced a new key.
	LastNewAt time.Time `json:"last_new_at,omitzero"`
}

// add merges another stat record into s (counters sum, timestamps max).
func (s *NoveltyStat) add(o NoveltyStat) {
	s.Mutants += o.Mutants
	s.NewKeys += o.NewKeys
	if o.LastNewAt.After(s.LastNewAt) {
		s.LastNewAt = o.LastNewAt
	}
}

// noveltyFile is the on-disk shape of one shard's novelty records.
type noveltyFile struct {
	// Seeds maps a seed's dedup key to its productivity record.
	Seeds map[string]NoveltyStat `json:"seeds"`
	// UpdatedAt is when this shard last merged a run's deltas in.
	UpdatedAt time.Time `json:"updated_at"`
}

// noveltyPath is one shard's novelty file under dir.
func noveltyPath(dir string, shard, numShards int) string {
	return filepath.Join(dir, "state", fmt.Sprintf("novelty-%d-of-%d.json", shard, numShards))
}

// LoadNovelty merges every state/novelty-*.json under dir into one view.
// A corpus without novelty data (including every pre-novelty corpus)
// yields an empty map — the seed pool then reduces to the static
// class × recency prior. Unreadable or foreign files are an error: the
// scheduler silently falling back to the static prior would be
// indistinguishable from novelty feedback quietly not working.
func LoadNovelty(dir string) (map[string]NoveltyStat, error) {
	out := map[string]NoveltyStat{}
	if dir == "" {
		return out, nil
	}
	stateDir := filepath.Join(dir, "state")
	entries, err := os.ReadDir(stateDir)
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: novelty: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "novelty-") && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(stateDir, name))
		if err != nil {
			return nil, fmt.Errorf("campaign: novelty: %w", err)
		}
		var f noveltyFile
		if err := json.Unmarshal(raw, &f); err != nil {
			return nil, fmt.Errorf("campaign: novelty %s: %w", name, err)
		}
		for key, st := range f.Seeds {
			acc := out[key]
			acc.add(st)
			out[key] = acc
		}
	}
	return out, nil
}

// saveNoveltyDeltas merges one run's per-seed deltas into the shard's own
// novelty file under dir. Other shards' files are never written, so shard
// corpus dirs still merge by file copy.
func saveNoveltyDeltas(dir string, deltas map[string]NoveltyStat, shard, numShards int) error {
	if len(deltas) == 0 {
		return nil
	}
	if err := os.MkdirAll(filepath.Join(dir, "state"), 0o755); err != nil {
		return fmt.Errorf("campaign: save novelty: %w", err)
	}
	path := noveltyPath(dir, shard, numShards)
	f := noveltyFile{Seeds: map[string]NoveltyStat{}}
	raw, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
	case err != nil:
		return fmt.Errorf("campaign: novelty: %w", err)
	default:
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("campaign: novelty %s: %w", path, err)
		}
		if f.Seeds == nil {
			f.Seeds = map[string]NoveltyStat{}
		}
	}
	for key, st := range deltas {
		acc := f.Seeds[key]
		acc.add(st)
		f.Seeds[key] = acc
	}
	f.UpdatedAt = time.Now()
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encode novelty: %w", err)
	}
	// Write-then-rename: LoadNovelty hard-errors on an unparseable
	// novelty file (by design — see its doc), so a run killed mid-write
	// must never leave a truncated file behind, or every later campaign
	// and triage over this corpus would fail until someone deletes it.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(enc, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: save novelty: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: save novelty: %w", err)
	}
	return nil
}
