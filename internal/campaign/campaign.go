// Package campaign is the streaming, shardable differential-fuzz campaign
// engine: the long-running, resumable form of internal/difftest.
//
// Where difftest.Run materializes its whole corpus, classifies it, and
// forgets everything at exit, a campaign
//
//   - generates jobs lazily and feeds them through pipeline.RunStream, so
//     memory is bounded by the worker pool, not the campaign length;
//   - deduplicates interesting programs (soundness findings, precision
//     findings, parser roundtrip disagreements) and persists them to an
//     on-disk corpus with verdict metadata, so findings survive the
//     process and accumulate across runs;
//   - optionally minimizes each finding with internal/shrink before
//     persisting, so corpus entries are the smallest programs that still
//     reproduce their verdict class — and families of equivalent findings
//     collapse onto one entry;
//   - partitions the campaign index space by seed (shard i of n analyzes
//     global indices ≡ i mod n), so independent processes split a campaign
//     deterministically: the shard union equals the unsharded job set and
//     the shards' corpus dirs merge by file copy;
//   - records a per-shard resume cursor, so a later run with Resume set
//     continues the search where the previous run stopped instead of
//     re-covering the same seeds;
//   - spends its NI-trial budget adaptively (pipeline.Options.NITrialsMax):
//     few trials on IFC-accepted programs, escalating on rejected ones
//     where an interference witness would settle rejected-clean vs
//     rejected-witnessed;
//   - optionally closes the coverage-guided loop (Config.Mutate): the
//     persisted corpus becomes the seed pool, and a configurable share of
//     jobs are internal/mutate variants of previous findings — weighted by
//     verdict class and recency — instead of fresh gen.Random samples;
//   - campaigns over any stock lattice (Config.Gen.Lattice), so chain-N
//     and n-party searches reach label flows two-point programs cannot
//     express;
//   - doubles as a regression suite: Replay re-checks every persisted
//     finding against the current checker stack and reports any verdict
//     drift.
//
// Verdict classes and the soundness argument are difftest's; the campaign
// adds one class of its own, parser disagreements (parse → print → reparse
// is not a fixed point), which cross-checks the frontend the same way NI
// cross-checks the checker.
package campaign

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/corpus"
	"repro/internal/difftest"
	"repro/internal/events"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/mutate"
	"repro/internal/parser"
	"repro/internal/pipeline"
	"repro/internal/shrink"
)

// Corpus classes: difftest's interesting verdicts plus the campaign's own
// parser-disagreement check.
const (
	ClassSoundnessViolation Class = "soundness-violation"
	ClassGeneratorBug       Class = "generator-bug"
	ClassRuntimeError       Class = "runtime-error"
	// ClassRejectedClean is the precision class: IFC-rejected,
	// baseline-accepted, and no interference witness over an escalated
	// trial budget — each entry is a candidate conservative rejection.
	ClassRejectedClean Class = "rejected-clean"
	// ClassProvedImprecise is the precision class with proof, produced
	// only under the exhaustive NI oracle: IFC-rejected, but enumeration
	// covered the entire public × secret input space at every observer
	// and certified the program non-interfering, so the rejection is
	// definitely conservative — the checker's true imprecision frontier.
	ClassProvedImprecise Class = "proved-imprecise"
	// ClassSecretExhausted is the probe-mode certification: every secret
	// assignment enumerated clean, but only at sampled public probes
	// (the public side exceeded the budget — the common case for
	// generated programs). Strong evidence of conservatism, weaker than
	// proved-imprecise: a leak at an unprobed public state is not
	// excluded.
	ClassSecretExhausted Class = "secret-exhaustive"
	// ClassUnderTested is the residue of the split: IFC-rejected, no
	// witness, and the exhaustive oracle could not enumerate (width
	// budget, int-typed secrets, ...) — still ambiguous between
	// imprecision and a missed leak.
	ClassUnderTested Class = "under-tested"
	// ClassParserDisagreement marks programs whose parse → print →
	// reparse roundtrip is not a fixed point.
	ClassParserDisagreement Class = "parser-disagreement"
)

// Retired-corpus classes: campaigns never persist these, but retiring a
// drifted finding (internal/triage) re-records it under the class the
// *current* stack assigns, so the retired entry guards the fix — if the
// old defect returns, the re-recorded class drifts and replay goes red.
// Replay understands all three.
const (
	// ClassSound marks a retired entry that now IFC-accepts and runs NI-clean.
	ClassSound Class = "sound"
	// ClassRejectedWitnessed marks a retired rejected-clean entry whose
	// rejection now has an interference witness (a true positive after all).
	ClassRejectedWitnessed Class = "rejected-witnessed"
	// ClassRoundtripClean marks a retired parser-disagreement entry whose
	// parse → print → reparse is now a fixed point.
	ClassRoundtripClean Class = "roundtrip-clean"
)

// classOf maps a difftest verdict to its corpus class, if persisted.
func classOf(v difftest.Verdict) (Class, bool) {
	switch v {
	case difftest.SoundnessViolation:
		return ClassSoundnessViolation, true
	case difftest.GeneratorBug:
		return ClassGeneratorBug, true
	case difftest.RuntimeError:
		return ClassRuntimeError, true
	case difftest.RejectedClean:
		return ClassRejectedClean, true
	case difftest.ProvedImprecise:
		return ClassProvedImprecise, true
	case difftest.SecretExhausted:
		return ClassSecretExhausted, true
	case difftest.UnderTested:
		return ClassUnderTested, true
	}
	return "", false
}

// Window is an explicit global-index window [Lo, Hi) — the unit of work a
// fleet coordinator leases to a worker. Where Shard/NumShards partition by
// residue and the resume cursor decides where a run starts, a window is
// told exactly what to cover and covers it at stride 1.
type Window struct {
	Lo, Hi int64
}

// Config configures a campaign run.
type Config struct {
	// N is the number of global campaign indices this run covers; a shard
	// analyzes its ≈ N/NumShards share of them. The run covers indices
	// [first, first+N), where first is 0 or the resume cursor.
	N int
	// Window, when non-nil, makes the run cover exactly the global indices
	// [Lo, Hi) at stride 1 — the fleet's lease execution mode. Mutually
	// exclusive with N, Resume, and Shard/NumShards: the window already is
	// one worker's slice, and coverage is tracked by the coordinator's
	// done markers, so the run neither reads nor writes the shard cursor.
	Window *Window
	// Seed is the campaign seed: global index i generates its program
	// from Seed+i and seeds its NI experiment with Seed+i, independent of
	// sharding and worker interleaving.
	Seed int64
	// Gen configures the program generator (zero = gen.DefaultConfig).
	Gen gen.Config
	// NITrials is the base NI budget (default 4) — what IFC-accepted
	// programs get.
	NITrials int
	// NITrialsMax is the adaptive escalation ceiling for IFC-rejected
	// programs (default 8 × NITrials; set negative to disable adaptation).
	NITrialsMax int
	// Workers bounds the pipeline worker pool (<= 0 = GOMAXPROCS).
	Workers int
	// NIOracle selects the NI backend (see pipeline.Options.Oracle; "" is
	// the historical adaptive default). "exhaustive" splits the
	// rejected-clean precision class into
	// proved-imprecise/secret-exhaustive/under-tested
	// and is recorded in each finding's Meta so replay re-checks under
	// the same oracle.
	NIOracle string
	// ExhaustBudget and ExhaustProbes configure the exhaustive oracle
	// (0 = defaults: exhaust.DefaultBudget runs, derived probes).
	ExhaustBudget uint64
	ExhaustProbes int
	// Shard and NumShards select this process's slice of the campaign:
	// global indices ≡ Shard (mod NumShards). NumShards <= 1 means
	// unsharded; Shard must then be 0.
	Shard, NumShards int
	// Mutate enables corpus-seeded mutation: a MutateFrac share of the
	// campaign's jobs are AST-level mutants of persisted findings (drawn
	// from the seed pool weighted by verdict class and recency) instead of
	// fresh gen.Random output. Scheduling is deterministic per global
	// index given the pool, so sharded runs stay partition-exact when the
	// shards share a corpus snapshot. With an empty corpus the campaign
	// simply generates everything fresh.
	Mutate bool
	// MutateFrac is the fraction of jobs mutated from seeds when Mutate is
	// set (0 = default 0.5; must be in (0, 1]).
	MutateFrac float64
	// CorpusDir is the persistent corpus directory ("" = keep findings in
	// memory only).
	CorpusDir string
	// Corpus is an already-open handle over CorpusDir; when set, the run
	// reads and writes through it (sharing its caches and dedup map)
	// instead of opening the directory again. Session threads one handle
	// through every operation this way. CorpusDir must still be set — the
	// shard cursor and novelty files live relative to it.
	Corpus *corpus.Corpus
	// Resume continues from the shard's corpus cursor instead of index 0;
	// it requires CorpusDir (a configuration error otherwise).
	Resume bool
	// Minimize shrinks each finding to the smallest program reproducing
	// its class before dedup and persistence.
	Minimize bool
	// MaxPerClass caps findings *processed* per class per run — counted
	// before minimization and dedup, so it bounds both corpus growth and
	// the per-run shrinking bill even once the corpus is saturated and
	// most findings dedup to known entries (default 25; negative =
	// unlimited). Skipped findings are counted, not silently dropped;
	// later runs cover fresh indices, so capped classes drain over time.
	MaxPerClass int
	// Log receives one line per persisted finding (nil = discard).
	Log io.Writer
	// Events receives the run's structured event stream: job-done and
	// progress while the analysis stream runs, then one finding event per
	// new finding as the post-stream finalize phase minimizes and
	// persists it (finding events therefore trail the job-done event of
	// the job that produced them — minimization is deferred so it cannot
	// park the worker pool). nil discards. Events are emitted
	// synchronously, so sinks must be fast and non-blocking — the
	// Session layer's buffered fan-out is the intended consumer.
	Events events.Sink
	// Metrics, when non-nil, receives the run's telemetry — job, verdict,
	// finding, dedup, and seed-draw counters, a corpus-size gauge, and
	// (threaded into the pipeline) per-stage duration histograms — and
	// makes progress ticks carry jobs/sec / findings/sec rates plus
	// periodic KindMetrics snapshot events.
	Metrics *metrics.Registry
}

// Finding is one interesting program collected by the campaign.
type Finding struct {
	Class   Class
	Verdict difftest.Verdict
	// Index is the global campaign index; GenSeed = Seed + Index
	// regenerates the original program (when Origin is "gen"), NISeed
	// replays its experiment.
	Index   int64
	GenSeed int64
	NISeed  int64
	// Origin is "gen" or "mutate"; ParentKey names the corpus seed a
	// mutant came from.
	Origin    string
	ParentKey string
	// Rule is the typing rule the IFC checker cited on rejection ("" when
	// the finding class involves no IFC rejection).
	Rule string
	// Detail is the witness, error text, or disagreement description.
	Detail string
	// Source is the finding as persisted — minimized when Minimize was on
	// and shrinking made progress.
	Source string
	// OriginalBytes is len of the generated source before minimization.
	OriginalBytes int
	// Minimized reports that Source is strictly smaller than the input.
	Minimized bool
	// Key is the dedup key; Path is the corpus file ("" if not persisted).
	Key  string
	Path string
}

// Report is the campaign outcome.
type Report struct {
	// Counts has one entry per difftest verdict class.
	Counts [difftest.NumVerdicts]int
	// ParserDisagreements counts parse→print→reparse mismatches (also
	// collected as findings).
	ParserDisagreements int
	// RulesCited counts, per typing rule, how many rejections cited it.
	RulesCited map[string]int
	// Analyzed is the number of programs this shard analyzed.
	Analyzed int
	// FirstIndex and NextIndex delimit the run's global index window;
	// NextIndex is what a Resume run would start from.
	FirstIndex, NextIndex int64
	// Shard and NumShards echo the sharding (0 of 1 when unsharded).
	Shard, NumShards int
	// New, Dup, Known, and Capped partition the findings encountered:
	// newly persisted/collected; duplicates of one found earlier in this
	// run; already present in the corpus from an earlier run or another
	// shard; skipped by the per-class cap.
	NewFindings, DupFindings, KnownFindings, CappedFindings int
	// Minimized counts findings the shrinker strictly reduced;
	// BytesSaved totals the reduction.
	Minimized  int
	BytesSaved int
	// MutantJobs counts analyzed jobs produced by mutation (the rest were
	// freshly generated); SeedPoolSize is the corpus seed pool the run
	// started with. Both are zero when Mutate is off.
	MutantJobs   int
	SeedPoolSize int
	// TrialsRun totals NI trials; the adaptive budget shows up here.
	TrialsRun int64
	// Elapsed and Workers describe the run; Seed, N, and Gen echo config.
	Elapsed time.Duration
	Workers int
	Seed    int64
	N       int
	Gen     gen.Config
	// Aborted reports mid-run cancellation (the resume cursor does not
	// advance; re-running re-covers the window and dedup absorbs repeats).
	Aborted bool
	// CorpusDir echoes the corpus location ("" = none).
	CorpusDir string
	// Findings holds the new findings of this run, in discovery order.
	Findings []Finding
}

// OK reports whether the campaign found no implementation defects: no
// soundness violations, generator bugs, runtime errors, or parser
// disagreements. Precision findings (rejected-clean) are data, not
// defects.
func (r *Report) OK() bool {
	return r.Counts[difftest.SoundnessViolation] == 0 &&
		r.Counts[difftest.GeneratorBug] == 0 &&
		r.Counts[difftest.RuntimeError] == 0 &&
		r.ParserDisagreements == 0
}

// engine carries one run's wiring.
type engine struct {
	ctx        context.Context
	cfg        Config
	gcfg       gen.Config
	lat        lattice.Lattice
	trials     int
	max        int
	perClass   int
	corp       *corpus.Corpus
	pool       *seedPool
	seen       map[string]bool
	classCount map[Class]int
	log        io.Writer
	sink       events.Sink
	// shardJobs is how many indices this shard covers; tickEvery spaces
	// the progress-tick events (deterministic in the job count).
	shardJobs int
	tickEvery int
	rep       *Report
	pending   []pendingFinding
	// novelty accumulates this run's per-parent-seed productivity deltas
	// (mutants analyzed, new keys persisted), merged into the shard's
	// novelty file at the end of the run. credited marks job indices
	// whose parent already received a NewKeys credit: one mutant job can
	// surface two findings (a verdict class and a parser disagreement),
	// but it is one mutant, so it earns at most one credit — keeping
	// NewKeys <= Mutants per seed.
	novelty  map[string]NoveltyStat
	credited map[int64]bool

	// metric handles, cached once per run; all nil (and no-op) when the
	// config carries no registry. start anchors the rate computations.
	met        *metrics.Registry
	start      time.Time
	mJobs      *metrics.Counter
	mVerdicts  [difftest.NumVerdicts]*metrics.Counter
	mDedup     *metrics.Counter
	mSeedDraws *metrics.Counter
	mCorpus    *metrics.Gauge

	// prov records mutant provenance by global index, written by the job
	// producer and read by the result consumer (concurrent goroutines).
	// Only mutant indices have entries.
	provMu sync.Mutex
	prov   map[int64]provenance
}

// provenance is where one mutant job came from.
type provenance struct {
	parentKey string
	ops       string
}

// pendingFinding is one interesting program noted during the stream.
// Minimization and persistence run after the stream drains: shrinking a
// finding replays hundreds of candidate programs, and doing that inside
// the single result consumer would park every pipeline worker on the
// unbuffered stream channel for the duration.
type pendingFinding struct {
	class   Class
	verdict difftest.Verdict
	detail  string
	name    string
	source  string
	idx     int64
	origin  string // "gen" or "mutate"
	parent  string // dedup key of the mutated seed, for mutants
	ops     string // comma-joined mutation operators, for mutants
	rule    string // typing rule cited by the IFC rejection, if any
}

// Run executes one campaign run (one shard's worth of one index window).
// The returned error is a configuration, corpus-I/O, or context failure;
// oracle disagreements are reported in the Report, not as errors.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Window != nil {
		w := *cfg.Window
		if w.Lo < 0 || w.Hi <= w.Lo {
			return nil, fmt.Errorf("campaign: window [%d, %d) is empty or inverted", w.Lo, w.Hi)
		}
		if cfg.N != 0 {
			return nil, fmt.Errorf("campaign: Window and N are mutually exclusive — the window defines the job count")
		}
		if cfg.Resume {
			return nil, fmt.Errorf("campaign: Window and Resume are mutually exclusive — lease coverage is the coordinator's, not the shard cursor's")
		}
		if cfg.NumShards > 1 || cfg.Shard != 0 {
			return nil, fmt.Errorf("campaign: Window and Shard are mutually exclusive — a window already is one worker's slice")
		}
		cfg.N = int(w.Hi - w.Lo)
	} else if cfg.N <= 0 {
		return nil, fmt.Errorf("campaign: N must be positive, got %d", cfg.N)
	}
	numShards := cfg.NumShards
	if numShards <= 0 {
		numShards = 1
	}
	if cfg.Shard < 0 || cfg.Shard >= numShards {
		return nil, fmt.Errorf("campaign: shard %d out of range for %d shards", cfg.Shard, numShards)
	}
	if cfg.Corpus != nil && cfg.CorpusDir == "" {
		cfg.CorpusDir = cfg.Corpus.Dir() // state and novelty files live beside findings/
	}
	if cfg.Resume && cfg.CorpusDir == "" {
		return nil, fmt.Errorf("campaign: Resume requires CorpusDir — without a corpus there is no cursor, and every run would silently re-cover [0, N)")
	}
	if cfg.MutateFrac < 0 || cfg.MutateFrac > 1 {
		return nil, fmt.Errorf("campaign: MutateFrac %v out of [0, 1] (0 = the default 0.5)", cfg.MutateFrac)
	}
	e := &engine{
		ctx:        ctx,
		cfg:        cfg,
		gcfg:       cfg.Gen,
		trials:     cfg.NITrials,
		max:        cfg.NITrialsMax,
		perClass:   cfg.MaxPerClass,
		seen:       map[string]bool{},
		classCount: map[Class]int{},
		log:        cfg.Log,
		sink:       cfg.Events,
		prov:       map[int64]provenance{},
		novelty:    map[string]NoveltyStat{},
		credited:   map[int64]bool{},
	}
	if e.gcfg == (gen.Config{}) {
		e.gcfg = gen.DefaultConfig()
	}
	// Cache the run's metric handles (nil-and-no-op without a registry)
	// and pre-register every known series at zero, so a snapshot's series
	// set is deterministic — present from the first scrape, not from the
	// first event that would have created it.
	e.met = cfg.Metrics
	e.mJobs = e.met.Counter("campaign_jobs_total")
	for v := difftest.Verdict(0); v < difftest.NumVerdicts; v++ {
		e.mVerdicts[v] = e.met.Counter("campaign_verdicts_total", "class", v.String())
	}
	for _, c := range []Class{ClassSoundnessViolation, ClassGeneratorBug,
		ClassRuntimeError, ClassRejectedClean, ClassProvedImprecise,
		ClassSecretExhausted, ClassUnderTested, ClassParserDisagreement} {
		e.met.Counter("campaign_findings_total", "class", string(c))
	}
	e.mDedup = e.met.Counter("campaign_dedup_hits_total")
	e.mSeedDraws = e.met.Counter("campaign_seed_pool_draws_total")
	e.mCorpus = e.met.Gauge("campaign_corpus_size")
	var err error
	if e.lat, err = e.gcfg.ResolveLattice(); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if e.trials <= 0 {
		e.trials = 4
	}
	if e.max == 0 {
		e.max = 8 * e.trials
	}
	if e.max < e.trials {
		e.max = e.trials // negative or undersized ceiling: fixed budget
	}
	if e.perClass == 0 {
		e.perClass = 25
	}
	if e.log == nil {
		e.log = io.Discard
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	e.corp = cfg.Corpus
	if e.corp == nil && cfg.CorpusDir != "" {
		if e.corp, err = corpus.OpenSink(cfg.CorpusDir, cfg.Events); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}
	if cfg.Mutate {
		if e.pool, err = loadSeedPool(e.corp, e.lat); err != nil {
			return nil, fmt.Errorf("campaign: seed pool: %w", err)
		}
	}
	var first int64
	var prior shardState
	if cfg.Window != nil {
		first = cfg.Window.Lo
	} else if e.corp != nil {
		if prior, err = loadState(cfg.CorpusDir, cfg.Shard, numShards, cfg.Events); err != nil {
			return nil, err
		}
		if cfg.Resume && prior.NextIndex > 0 {
			if prior.Seed != cfg.Seed {
				return nil, fmt.Errorf("campaign: resume cursor was recorded for seed %d, not %d", prior.Seed, cfg.Seed)
			}
			if prior.Gen != e.gcfg {
				return nil, fmt.Errorf("campaign: resume cursor was recorded for a different generator config")
			}
			// The mutation schedule changes what each index means just like
			// Seed and Gen do; cursors from before these fields existed have
			// nil here and resume freely (the legacy escape hatch).
			if prior.Mutate != nil && *prior.Mutate != cfg.Mutate {
				return nil, fmt.Errorf("campaign: resume cursor was recorded with mutation %s", onOff(*prior.Mutate))
			}
			if prior.MutateFrac != nil && *prior.MutateFrac != effectiveMutateFrac(cfg.Mutate, cfg.MutateFrac) {
				return nil, fmt.Errorf("campaign: resume cursor was recorded for mutate-frac %g, not %g",
					*prior.MutateFrac, effectiveMutateFrac(cfg.Mutate, cfg.MutateFrac))
			}
			first = prior.NextIndex
		}
	}
	end := first + int64(cfg.N)

	e.rep = &Report{
		RulesCited: map[string]int{},
		FirstIndex: first,
		NextIndex:  first, // advances on completion
		Shard:      cfg.Shard,
		NumShards:  numShards,
		Workers:    workers,
		Seed:       cfg.Seed,
		N:          cfg.N,
		Gen:        e.gcfg,
		CorpusDir:  cfg.CorpusDir,
	}
	if e.pool != nil {
		e.rep.SeedPoolSize = e.pool.size()
	}
	for idx := first; idx < end; idx++ {
		if idx%int64(numShards) == int64(cfg.Shard) {
			e.shardJobs++
		}
	}
	// Progress ticks land every ~5% of the shard's jobs (at least every
	// job on tiny runs), so a listener renders a steady bar without the
	// engine emitting one tick per program on top of the job-done events.
	e.tickEvery = e.shardJobs / 20
	if e.tickEvery < 1 {
		e.tickEvery = 1
	}
	start := time.Now()
	e.start = start
	if e.corp != nil {
		e.mCorpus.SetInt(int64(e.corp.Len()))
	}

	jobs := make(chan pipeline.Job)
	go func() {
		defer close(jobs)
		for idx := first; idx < end; idx++ {
			if idx%int64(numShards) != int64(cfg.Shard) {
				continue
			}
			job := pipeline.Job{
				Name:   fmt.Sprintf("fuzz-%d.p4", idx),
				Source: e.jobSource(idx),
				Lat:    e.lat,
				Seq:    idx,
			}
			select {
			case jobs <- job:
			case <-ctx.Done():
				return
			}
		}
	}()

	results := pipeline.RunStream(ctx, jobs, pipeline.Options{
		Workers:       workers,
		NI:            pipeline.NIAll,
		NITrials:      e.trials,
		NITrialsMax:   e.max,
		NISeed:        cfg.Seed,
		Oracle:        cfg.NIOracle,
		ExhaustBudget: cfg.ExhaustBudget,
		ExhaustProbes: cfg.ExhaustProbes,
		Metrics:       cfg.Metrics,
	})
	for r := range results {
		e.consume(&r)
	}
	aborted := ctx.Err() != nil
	// Minimization is skipped on abort — cancellation must not sit in a
	// delta-debug loop — but collected findings are still persisted so an
	// interrupted run loses nothing.
	for _, p := range e.pending {
		e.finalize(p, cfg.Minimize && !aborted)
	}
	if e.corp != nil {
		// Novelty deltas persist even on abort, like the findings above: an
		// interrupted run's mutant outcomes are real coverage evidence. A
		// save failure costs feedback quality, not findings — log and go on.
		if err := saveNoveltyDeltas(cfg.CorpusDir, e.novelty, cfg.Shard, numShards); err != nil {
			fmt.Fprintf(e.log, "campaign: %v (novelty feedback lost for this run)\n", err)
		}
		// Likewise the corpus index: a failed save costs the next Open a
		// rescan, never a finding.
		if err := e.corp.SaveIndex(); err != nil {
			fmt.Fprintf(e.log, "campaign: %v (index rebuilt on next open)\n", err)
		}
		e.mCorpus.SetInt(int64(e.corp.Len()))
	}
	// A final snapshot after the finalize loop, so the run's last
	// KindMetrics event reflects its findings — the stream's periodic
	// snapshots predate finalization and cannot.
	e.emitMetrics()
	e.rep.Elapsed = time.Since(start)

	if aborted {
		e.rep.Aborted = true
		return e.rep, ctx.Err()
	}
	e.rep.NextIndex = end
	if e.corp != nil && cfg.Window == nil {
		// Never regress the cursor: a short non-Resume run over an old
		// window (say, reproducing a finding) must not rewind the search
		// frontier a long campaign has built up.
		if prior.NextIndex > end {
			e.rep.NextIndex = prior.NextIndex
		} else {
			mut := cfg.Mutate
			frac := effectiveMutateFrac(cfg.Mutate, cfg.MutateFrac)
			st := shardState{
				Seed:       cfg.Seed,
				NextIndex:  end,
				Gen:        e.gcfg,
				Mutate:     &mut,
				MutateFrac: &frac,
				Runs:       prior.Runs + 1,
				UpdatedAt:  time.Now(),
			}
			if err := saveState(cfg.CorpusDir, st, cfg.Shard, numShards); err != nil {
				return e.rep, err
			}
		}
	}
	return e.rep, nil
}

// jobSource produces the program for one global campaign index: a mutant
// of a weighted corpus seed when mutation is on and the index's own rng
// says so, a fresh gen.Random program otherwise. Everything — the
// mutate-or-generate coin, the seed draw, the mutation operators, and the
// fallback generation — runs off rand.NewSource(Seed+idx), so the mapping
// from index to program depends only on (Seed, Gen, pool): shards agree
// on it whenever they share a corpus snapshot, and a failed mutation
// falls back to generation deterministically.
func (e *engine) jobSource(idx int64) string {
	rng := rand.New(rand.NewSource(e.cfg.Seed + idx))
	if e.cfg.Mutate && e.pool != nil && e.pool.size() > 0 {
		frac := effectiveMutateFrac(e.cfg.Mutate, e.cfg.MutateFrac)
		if rng.Float64() < frac {
			seed := e.pool.pick(rng)
			e.mSeedDraws.Inc()
			mcfg := mutate.Config{Lattice: e.gcfg.Lattice}
			if e.pool.size() > 1 && rng.Intn(4) == 0 {
				mcfg.Donor = e.pool.pick(rng).source
				e.mSeedDraws.Inc()
			}
			res, err := mutate.Mutate(rng, fmt.Sprintf("mut-%d.p4", idx), seed.source, mcfg)
			if err == nil {
				e.provMu.Lock()
				e.prov[idx] = provenance{parentKey: seed.key, ops: strings.Join(res.Ops, ",")}
				e.provMu.Unlock()
				return res.Source
			}
			// Fall through: an unmutable seed (e.g. a generator-bug entry)
			// costs one index of mutation, not the campaign.
		}
	}
	return gen.Random(rng, e.gcfg)
}

// effectiveMutateFrac resolves the mutation probability a config actually
// runs with: 0 when mutation is off, the 0.5 default when on with no
// explicit fraction. Resume cursors record this resolved value so that an
// explicit `-mutate-frac 0.5` and the implicit default compare equal.
func effectiveMutateFrac(mutate bool, frac float64) float64 {
	if !mutate {
		return 0
	}
	if frac == 0 {
		return 0.5
	}
	return frac
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// emitMetrics ships one KindMetrics snapshot event; no-op without a
// registry.
func (e *engine) emitMetrics() {
	if e.met == nil {
		return
	}
	snap := e.met.Snapshot()
	e.sink.Emit(events.Event{Kind: events.KindMetrics, Op: "campaign", Snapshot: &snap})
}

// provenanceOf pops the recorded provenance for one index (zero value for
// fresh jobs).
func (e *engine) provenanceOf(idx int64) (provenance, bool) {
	e.provMu.Lock()
	defer e.provMu.Unlock()
	p, ok := e.prov[idx]
	if ok {
		delete(e.prov, idx)
	}
	return p, ok
}

// consume classifies one streamed result and routes its findings.
func (e *engine) consume(r *pipeline.JobResult) {
	e.rep.Analyzed++
	e.rep.TrialsRun += int64(r.NITrialsRun)
	e.mJobs.Inc()
	prov, mutant := e.provenanceOf(r.Job.Seq)
	if mutant {
		e.rep.MutantJobs++
		st := e.novelty[prov.parentKey]
		st.Mutants++
		e.novelty[prov.parentKey] = st
	}
	v, detail := difftest.Classify(r)
	e.rep.Counts[v]++
	e.mVerdicts[v].Inc()
	rule := r.CitedRule()
	e.sink.Emit(events.Event{
		Kind: events.KindJobDone, Op: "campaign",
		Index: r.Job.Seq, Class: v.String(), Rule: rule,
	})
	if e.rep.Analyzed%e.tickEvery == 0 || e.rep.Analyzed == e.shardJobs {
		ev := events.Event{
			Kind: events.KindProgress, Op: "campaign",
			Done: e.rep.Analyzed, Total: e.shardJobs,
		}
		if e.met != nil {
			// Rates come from the registry's job counter and the live
			// finding count (persisted findings trail the stream in the
			// finalize phase, so pending ones count too — otherwise
			// findings/sec would read 0 for the whole run).
			if elapsed := time.Since(e.start).Seconds(); elapsed > 0 {
				ev.JobsPerSec = float64(e.mJobs.Value()) / elapsed
				ev.FindingsPerSec = float64(e.rep.NewFindings+len(e.pending)) / elapsed
			}
			e.emitMetrics()
		}
		e.sink.Emit(ev)
	}
	if r.IFC != nil && !r.IFC.OK {
		for _, d := range r.IFC.Diags {
			if d.Rule != "" {
				e.rep.RulesCited[d.Rule]++
			}
		}
		if detail == "" && len(r.IFC.Diags) > 0 {
			// RejectedClean carries no witness; cite the rejection itself.
			detail = r.IFC.Diags[0].Error()
		}
	}
	if class, interesting := classOf(v); interesting {
		e.collect(class, v, detail, rule, r, prov, mutant)
	}
	if r.Prog != nil {
		if detail, bad := roundtripDisagreement(r.Job.Name, r.Prog); bad {
			e.rep.ParserDisagreements++
			// The roundtrip defect is a frontend matter; the IFC rule (if
			// any) belongs to the verdict finding, not this one.
			e.collect(ClassParserDisagreement, v, detail, "", r, prov, mutant)
		}
	}
}

// collect notes one interesting program for post-stream processing,
// charging the per-class cap up front so both pending memory and the
// later shrinking bill stay bounded.
func (e *engine) collect(class Class, v difftest.Verdict, detail, rule string, r *pipeline.JobResult, prov provenance, mutant bool) {
	if e.perClass > 0 && e.classCount[class] >= e.perClass {
		e.rep.CappedFindings++
		return
	}
	// The cap meters work, not persistence: dedup runs after (expensive)
	// minimization, so counting only new findings would let a saturated
	// corpus — where nearly everything minimizes onto a known entry —
	// grow the per-run shrinking bill without bound.
	e.classCount[class]++
	origin := "gen"
	if mutant {
		origin = "mutate"
	}
	e.pending = append(e.pending, pendingFinding{
		class:   class,
		verdict: v,
		detail:  detail,
		name:    r.Job.Name,
		source:  r.Job.Source,
		idx:     r.Job.Seq,
		origin:  origin,
		parent:  prov.parentKey,
		ops:     prov.ops,
		rule:    rule,
	})
}

// finalize shrinks, deduplicates, and persists one collected program.
func (e *engine) finalize(p pendingFinding, minimize bool) {
	class, v, idx := p.class, p.verdict, p.idx
	f := Finding{
		Class:         class,
		Verdict:       v,
		Index:         idx,
		GenSeed:       e.cfg.Seed + idx,
		NISeed:        e.cfg.Seed + idx,
		Origin:        p.origin,
		ParentKey:     p.parent,
		Rule:          p.rule,
		Detail:        p.detail,
		Source:        p.source,
		OriginalBytes: len(p.source),
	}
	if minimize {
		if res, err := shrink.Minimize(p.name, f.Source, e.keepClass(class, v, idx)); err == nil {
			if len(res.Source) < len(f.Source) {
				f.Minimized = true
				e.rep.Minimized++
				e.rep.BytesSaved += len(f.Source) - len(res.Source)
			}
			f.Source = res.Source
		}
	}
	f.Key = DedupKey(class, f.Source)
	switch {
	case e.seen[f.Key]:
		e.rep.DupFindings++
		e.mDedup.Inc()
		return
	case e.corp.Has(f.Key):
		e.seen[f.Key] = true
		e.rep.KnownFindings++
		e.mDedup.Inc()
		return
	}
	e.seen[f.Key] = true
	if e.corp != nil {
		path, err := e.corp.Put(Meta{
			Class:         class,
			Rule:          p.rule,
			Detail:        p.detail,
			Index:         idx,
			GenSeed:       f.GenSeed,
			NISeed:        f.NISeed,
			NITrials:      e.trials,
			NITrialsMax:   e.max,
			NIOracle:      e.cfg.NIOracle,
			ExhaustBudget: e.cfg.ExhaustBudget,
			ExhaustProbes: e.cfg.ExhaustProbes,
			Gen:           e.gcfg,
			Origin:        p.origin,
			ParentKey:     p.parent,
			MutateOps:     p.ops,
			Shard:         e.cfg.Shard,
			NumShards:     e.rep.NumShards,
			OriginalBytes: f.OriginalBytes,
			Bytes:         len(f.Source),
			Minimized:     f.Minimized,
			Key:           f.Key,
			FoundAt:       time.Now(),
		}, f.Source)
		if err != nil {
			// Persistence failure must not lose the finding; keep it in
			// the report and say so.
			fmt.Fprintf(e.log, "campaign: %v (finding kept in memory)\n", err)
		} else {
			f.Path = path
		}
	}
	if p.parent != "" && !e.credited[p.idx] {
		// A mutant that landed as a new dedup key is the scheduler's
		// coverage signal: credit the parent seed, once per mutant job.
		e.credited[p.idx] = true
		st := e.novelty[p.parent]
		st.NewKeys++
		st.LastNewAt = time.Now()
		e.novelty[p.parent] = st
	}
	e.rep.NewFindings++
	e.met.Counter("campaign_findings_total", "class", string(class)).Inc()
	e.rep.Findings = append(e.rep.Findings, f)
	e.sink.Emit(events.Event{
		Kind: events.KindFinding, Op: "campaign",
		Index: idx, Class: string(class), Rule: p.rule,
		Detail: p.detail, Key: f.Key, Path: f.Path,
	})
	fmt.Fprintf(e.log, "finding: %s (index %d, %d bytes%s): %s\n",
		class, idx, len(f.Source), minimizedTag(f), p.detail)
}

func minimizedTag(f Finding) string {
	if !f.Minimized {
		return ""
	}
	return fmt.Sprintf(", minimized from %d", f.OriginalBytes)
}

// keepClass is the shrinker predicate: the candidate must land in the same
// corpus class as the original finding.
func (e *engine) keepClass(class Class, v difftest.Verdict, idx int64) shrink.Keep {
	if class == ClassParserDisagreement {
		return func(cand string) bool {
			prog, err := parser.Parse("cand.p4", cand)
			if err != nil {
				return false
			}
			_, bad := roundtripDisagreement("cand.p4", prog)
			return bad
		}
	}
	return func(cand string) bool {
		sum, err := pipeline.Run(e.ctx, []pipeline.Job{{Name: "cand.p4", Source: cand, Lat: e.lat}}, pipeline.Options{
			Workers:       1,
			NI:            pipeline.NIAll,
			NITrials:      e.trials,
			NITrialsMax:   e.max,
			NISeed:        e.cfg.Seed + idx, // same NI randomness as the original job
			Oracle:        e.cfg.NIOracle,   // class must be judged under the same oracle
			ExhaustBudget: e.cfg.ExhaustBudget,
			ExhaustProbes: e.cfg.ExhaustProbes,
			Metrics:       e.met, // shrink replays are real pipeline work
		})
		if err != nil || len(sum.Results) != 1 {
			return false
		}
		got, _ := difftest.Classify(&sum.Results[0])
		return got == v
	}
}

// roundtripDisagreement checks that parse → print → reparse is a fixed
// point; a mismatch is a frontend defect worth a corpus entry.
func roundtripDisagreement(name string, prog *ast.Program) (string, bool) {
	printed := ast.Print(prog)
	re, err := parser.Parse(name, printed)
	if err != nil {
		return "printed form does not reparse: " + err.Error(), true
	}
	if again := ast.Print(re); again != printed {
		return "print is not a fixed point after reparse", true
	}
	return "", false
}

// FormatReport renders the campaign outcome.
func FormatReport(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fuzz campaign: shard %d/%d, indices [%d, %d), seed %d, %d workers, %v\n",
		r.Shard, r.NumShards, r.FirstIndex, r.FirstIndex+int64(r.N), r.Seed, r.Workers,
		r.Elapsed.Round(time.Millisecond))
	lat := r.Gen.Lattice
	if lat == "" {
		lat = "two-point"
	}
	fmt.Fprintf(&b, "  gen config: depth=%d stmts=%d fields=%d actions=%v lattice=%s\n",
		r.Gen.MaxDepth, r.Gen.MaxStmts, r.Gen.NumFields, r.Gen.WithActions, lat)
	fmt.Fprintf(&b, "  analyzed %d programs, %d NI trials\n", r.Analyzed, r.TrialsRun)
	if r.SeedPoolSize > 0 || r.MutantJobs > 0 {
		fmt.Fprintf(&b, "  mutation: %d mutant jobs from a %d-seed pool\n", r.MutantJobs, r.SeedPoolSize)
	}
	fmt.Fprintf(&b, "  %-36s %8s\n", "verdict", "count")
	for v := difftest.Verdict(0); v < difftest.NumVerdicts; v++ {
		fmt.Fprintf(&b, "  %-36s %8d\n", v, r.Counts[v])
	}
	fmt.Fprintf(&b, "  %-36s %8d\n", "parser disagreement", r.ParserDisagreements)
	if len(r.RulesCited) > 0 {
		b.WriteString("  rules cited on rejections:")
		rules := make([]string, 0, len(r.RulesCited))
		for k := range r.RulesCited {
			rules = append(rules, k)
		}
		sort.Strings(rules)
		for _, rule := range rules {
			fmt.Fprintf(&b, " %s×%d", rule, r.RulesCited[rule])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  findings: %d new, %d dup, %d known, %d capped",
		r.NewFindings, r.DupFindings, r.KnownFindings, r.CappedFindings)
	if r.Minimized > 0 {
		fmt.Fprintf(&b, "; %d minimized (%d bytes saved)", r.Minimized, r.BytesSaved)
	}
	b.WriteByte('\n')
	if r.CorpusDir != "" {
		fmt.Fprintf(&b, "  corpus: %s (next index %d)\n", r.CorpusDir, r.NextIndex)
	}
	for _, f := range r.Findings {
		where := f.Path
		if where == "" {
			where = "(not persisted)"
		}
		origin := ""
		if f.Origin == "mutate" {
			origin = fmt.Sprintf(", mutated from %.12s", f.ParentKey)
		}
		fmt.Fprintf(&b, "\nFINDING %s (index %d, regen seed %d, %d bytes%s%s) %s\n  %s\n",
			f.Class, f.Index, f.GenSeed, len(f.Source), minimizedTag(f), origin, where, f.Detail)
	}
	switch {
	case r.Aborted:
		fmt.Fprintf(&b, "ABORTED: campaign incomplete — cursor not advanced; verdicts cover %d programs\n", r.Analyzed)
	case r.OK():
		b.WriteString("PASS: no soundness violations, generator bugs, runtime errors, or parser disagreements\n")
	default:
		b.WriteString("FAIL: implementation defects found (see findings above)\n")
	}
	return b.String()
}
