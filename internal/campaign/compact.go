// Compact: re-minimize the corpus with the current shrinker. A corpus
// accumulates entries minimized by older, weaker shrinkers (or not
// minimized at all, when the finding run had -minimize off); as the
// shrinker improves, distinct entries can share one canonical minimal
// form. Compacting re-runs minimization over every entry under its
// recorded replay budget and folds the corpus onto the smaller forms:
//
//   - an entry whose minimized form hashes to a key already in the corpus
//     collapses — it is removed, and the existing entry (same class by
//     construction: dedup keys hash class and source together) survives
//     as the pair's canonical representative;
//   - an entry whose minimized form is new is rewritten promote-first:
//     the smaller pair is persisted before the old one is removed, so a
//     crash mid-compaction duplicates a finding rather than losing one;
//   - entries that no longer reproduce their recorded class are skipped —
//     drift is Retire's business, and minimizing against a drifted
//     predicate would record the wrong program.
//
// The keep predicate replays candidates with the entry's recorded NI
// seed and trial budget, so a compacted corpus replays clean by the same
// argument the original persistence did.
package campaign

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/shrink"
)

// CompactConfig configures a corpus compaction.
type CompactConfig struct {
	// CorpusDir is the corpus to compact.
	CorpusDir string
	// Corpus is an already-open handle over CorpusDir; when set, the pass
	// runs through it instead of opening the directory again.
	Corpus *corpus.Corpus
	// NITrials and NITrialsMax are the replay budget for entries whose
	// metadata predates budget recording (campaign defaults).
	NITrials    int
	NITrialsMax int
	// Log receives one line per rewritten or collapsed entry (nil =
	// discard).
	Log io.Writer
	// Events receives job-done events per entry and a final progress
	// tick; nil discards.
	Events events.Sink
	// Metrics, when non-nil, receives the pass's collapse statistics
	// (compact_entries_total, compact_minimized_total,
	// compact_collapsed_total, compact_bytes_saved_total,
	// compact_skipped_total). The Session persists them into the corpus's
	// metrics.json, where triage.DiffReports picks them up so nightly
	// summaries show corpus convergence, not just growth.
	Metrics *metrics.Registry
}

// CompactReport is a compaction's outcome.
type CompactReport struct {
	CorpusDir string `json:"corpus_dir"`
	// Total counts well-formed entries examined; Skipped those left alone
	// because they drifted from their recorded class (or their pair was
	// corrupt) — Retire's business, not Compact's.
	Total   int `json:"total"`
	Skipped int `json:"skipped"`
	// Minimized counts entries rewritten to a strictly smaller form under
	// a new key; Collapsed counts entries removed because their minimized
	// form already had a corpus entry. BytesSaved totals the reduction.
	Minimized  int `json:"minimized"`
	Collapsed  int `json:"collapsed"`
	BytesSaved int `json:"bytes_saved"`
	// Errors lists entries that could not be processed; errored entries
	// stay in the corpus untouched.
	Errors []string `json:"errors,omitempty"`
	// Elapsed is wall-clock compaction time.
	Elapsed time.Duration `json:"elapsed"`
}

// OK reports a clean pass.
func (r *CompactReport) OK() bool { return len(r.Errors) == 0 }

// Compact re-minimizes every corpus entry with the current shrinker and
// folds newly-equal dedup keys together, promote-first so no finding is
// lost mid-compaction. The returned error is a context or corpus-I/O
// failure; per-entry problems land in CompactReport.Errors.
func Compact(ctx context.Context, cfg CompactConfig) (*CompactReport, error) {
	trials := cfg.NITrials
	if trials <= 0 {
		trials = 4
	}
	max := cfg.NITrialsMax
	if max <= 0 {
		max = 8 * trials
	}
	log := cfg.Log
	if log == nil {
		log = io.Discard
	}
	rep := &CompactReport{CorpusDir: cfg.CorpusDir}
	start := time.Now()
	defer func() { rep.Elapsed = time.Since(start) }()
	// Pre-register the collapse series so a no-op pass still leaves them
	// (at zero) in the persisted snapshot, then add the final tallies on
	// the way out — the report is built incrementally, so one deferred
	// add covers every exit path.
	met := cfg.Metrics
	met.Counter("compact_entries_total")
	met.Counter("compact_minimized_total")
	met.Counter("compact_collapsed_total")
	met.Counter("compact_bytes_saved_total")
	met.Counter("compact_skipped_total")
	defer func() {
		met.Counter("compact_entries_total").Add(int64(rep.Total))
		met.Counter("compact_minimized_total").Add(int64(rep.Minimized))
		met.Counter("compact_collapsed_total").Add(int64(rep.Collapsed))
		met.Counter("compact_bytes_saved_total").Add(int64(rep.BytesSaved))
		met.Counter("compact_skipped_total").Add(int64(rep.Skipped))
	}()

	corp := cfg.Corpus
	if corp == nil {
		dir := cfg.CorpusDir
		if dir == "" {
			dir = "."
		}
		var err error
		if corp, err = corpus.OpenSink(dir, cfg.Events); err != nil {
			return rep, fmt.Errorf("campaign: compact: %w", err)
		}
	}

	// Snapshot the entry list first: collapse and rewrite both mutate the
	// handle's index, which must not happen under its own iterator.
	var entries []*corpus.Entry
	for e, err := range corp.Entries() {
		if err != nil {
			rep.Skipped++
			continue
		}
		entries = append(entries, e)
	}
	total := len(entries)
	for i, e := range entries {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return rep, ctxErr
		}
		m := e.Meta
		src, err := e.Source()
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", e.Path, err))
			continue
		}
		rep.Total++
		got, _, err := replayOne(ctx, m, src, trials, max)
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", e.Path, err))
			continue
		}
		cfg.Events.Emit(events.Event{
			Kind: events.KindJobDone, Op: "compact",
			Index: int64(i), Class: got, Key: m.Key, Path: e.Path,
		})
		if got != string(m.Class) {
			rep.Skipped++
			continue
		}
		// Minimize under the entry's own recorded replay budget: a
		// candidate is kept iff it replays to the recorded class, so the
		// compacted entry replays clean by construction.
		keep := func(cand string) bool {
			g, _, err := replayOne(ctx, m, cand, trials, max)
			return err == nil && g == string(m.Class)
		}
		name := strings.TrimSuffix(e.Name, ".json") + ".p4"
		res, err := shrink.Minimize(name, src, keep)
		if err != nil || len(res.Source) >= len(src) {
			continue // already minimal (or unshrinkable) — leave as is
		}
		newKey := corpus.DedupKey(m.Class, res.Source)
		if corp.Has(newKey) {
			// The minimized form is an existing finding: the two entries
			// were one defect all along. The survivor shares the dedup
			// key's class, so no verdict class is lost.
			if err := corp.Remove(e); err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("%s: remove: %v", e.Path, err))
				continue
			}
			rep.Collapsed++
			rep.BytesSaved += len(src)
			fmt.Fprintf(log, "collapsed: %s onto %.12s (%d bytes freed)\n", e.Path, newKey, len(src))
			continue
		}
		nm := m
		nm.Key = newKey
		nm.Bytes = len(res.Source)
		nm.Minimized = true
		path, err := corp.Put(nm, res.Source)
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: rewrite: %v", e.Path, err))
			continue
		}
		if err := corp.Remove(e); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: remove: %v", e.Path, err))
			continue
		}
		rep.Minimized++
		rep.BytesSaved += len(src) - len(res.Source)
		fmt.Fprintf(log, "minimized: %s -> %s (%d -> %d bytes)\n", e.Path, path, len(src), len(res.Source))
	}
	if err := corp.SaveIndex(); err != nil {
		fmt.Fprintf(log, "compact: %v (index rebuilt on next open)\n", err)
	}
	cfg.Events.Emit(events.Event{
		Kind: events.KindProgress, Op: "compact", Done: total, Total: total,
	})
	sort.Strings(rep.Errors)
	return rep, nil
}

// FormatCompactReport renders a compaction's outcome.
func FormatCompactReport(r *CompactReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "corpus compact: %s, %d findings examined, %v\n",
		r.CorpusDir, r.Total, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %d minimized, %d collapsed, %d bytes saved, %d skipped\n",
		r.Minimized, r.Collapsed, r.BytesSaved, r.Skipped)
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "\nERROR %s\n", e)
	}
	switch {
	case !r.OK():
		fmt.Fprintf(&b, "FAIL: %d entries could not be compacted (see above)\n", len(r.Errors))
	case r.Minimized+r.Collapsed == 0:
		b.WriteString("PASS: corpus already compact\n")
	default:
		fmt.Fprintf(&b, "PASS: %d entries rewritten smaller, %d collapsed onto existing findings\n",
			r.Minimized, r.Collapsed)
	}
	return b.String()
}
