package campaign

import (
	"context"
	"testing"

	"repro/internal/corpus"
	"repro/internal/difftest"
	"repro/internal/ni"
	"repro/internal/pipeline"
)

// TestRegressionCorpusExhaustiveVerdicts locks the exhaustive oracle's
// coverage guarantee over the committed regression corpus: every entry
// whose secret space fits the budget must get a proof-grade verdict —
// the only admissible inconclusive reason is a genuine width-budget
// overflow. The split this induces (secret-exhaustive vs under-tested;
// proved-imprecise would additionally need the public side inside the
// budget, which generated programs' standard_metadata rules out) is the
// verdict table EXPERIMENTS.md records.
func TestRegressionCorpusExhaustiveVerdicts(t *testing.T) {
	c, err := corpus.Open("../../testdata/regression-corpus")
	if err != nil {
		t.Fatalf("open regression corpus: %v", err)
	}
	split := map[difftest.Verdict]int{}
	for e, err := range c.Entries() {
		if err != nil {
			t.Fatalf("corpus entry: %v", err)
		}
		src, err := e.Source()
		if err != nil {
			t.Fatalf("%s: %v", e.Path, err)
		}
		lat, err := e.Meta.Gen.ResolveLattice()
		if err != nil {
			t.Fatalf("%s: lattice: %v", e.Path, err)
		}
		sum, err := pipeline.Run(context.Background(), []pipeline.Job{{Name: e.Name, Source: src, Lat: lat}}, pipeline.Options{
			Workers:     1,
			NI:          pipeline.NIAll,
			NITrials:    e.Meta.NITrials,
			NITrialsMax: e.Meta.NITrialsMax,
			NISeed:      e.Meta.NISeed,
			Oracle:      pipeline.OracleExhaustive,
		})
		if err != nil {
			t.Fatalf("%s: pipeline: %v", e.Path, err)
		}
		r := &sum.Results[0]
		if r.NIOracle != "exhaustive" {
			t.Fatalf("%s: ran oracle %q, want exhaustive", e.Path, r.NIOracle)
		}
		switch r.NIOutcome {
		case ni.ProvedSecure, ni.ProvedInsecure:
			// Proof-grade: the acceptance bar for within-budget entries.
		case ni.Inconclusive:
			if r.NIReason != "width-budget-exceeded" {
				t.Errorf("%s: inconclusive for %q — an eligible entry did not get a proof", e.Path, r.NIReason)
			}
		default:
			t.Errorf("%s: outcome %v from the exhaustive oracle", e.Path, r.NIOutcome)
		}
		v, _ := difftest.Classify(r)
		split[v]++
	}
	if split[difftest.ProvedImprecise]+split[difftest.SecretExhausted] == 0 {
		t.Error("no regression-corpus entry certified (proved-imprecise or secret-exhaustive) — the enumerator never completed a sweep")
	}
	for v, n := range split {
		t.Logf("verdict split: %-50s %d", v.String(), n)
	}
}
