package pipeline_test

import (
	"context"
	"testing"

	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/ni"
	"repro/internal/pipeline"
)

// imprecisionSrc is IFC-rejected (low write under a high guard) but
// semantically non-interfering: the guarded write is the identity. The
// canonical checker false positive the exhaustive oracle exists to prove.
const imprecisionSrc = `
header data_t {
    <bit<4>, low> lo;
    <bool, high> bhi;
}
struct headers { data_t d; }
control Noop(inout headers hdr) {
    apply {
        if (hdr.d.bhi) {
            hdr.d.lo = (hdr.d.lo ^ 4w0);
        }
    }
}
`

func TestValidOracle(t *testing.T) {
	for _, name := range []string{"", pipeline.OracleAdaptive, pipeline.OracleRandomized, pipeline.OracleExhaustive} {
		if !pipeline.ValidOracle(name) {
			t.Errorf("ValidOracle(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"exhaust", "random", "Adaptive", "proof"} {
		if pipeline.ValidOracle(name) {
			t.Errorf("ValidOracle(%q) = true, want false", name)
		}
	}
}

func runOne(t *testing.T, opts pipeline.Options) *pipeline.JobResult {
	t.Helper()
	jobs := []pipeline.Job{{Name: "oracle.p4", Source: imprecisionSrc, Lat: lattice.TwoPoint()}}
	sum, err := pipeline.Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return &sum.Results[0]
}

// TestOracleSelection locks the dispatch: the default reproduces the
// historical adaptive-on-rejection behavior, "randomized" flattens it,
// and "exhaustive" upgrades the job to a proof with provenance fields.
func TestOracleSelection(t *testing.T) {
	base := pipeline.Options{Workers: 1, NI: pipeline.NIAll, NITrials: 4, NITrialsMax: 32, NISeed: 11}

	r := runOne(t, base)
	if r.NIOracle != "adaptive" {
		t.Errorf("default on a rejected program: oracle %q, want adaptive", r.NIOracle)
	}
	if r.NIOutcome != ni.Sampled {
		t.Errorf("sampling oracle produced outcome %v, want sampled", r.NIOutcome)
	}

	flat := base
	flat.Oracle = pipeline.OracleRandomized
	if r := runOne(t, flat); r.NIOracle != "randomized" {
		t.Errorf("randomized option ran oracle %q", r.NIOracle)
	}

	ex := base
	ex.Oracle = pipeline.OracleExhaustive
	r = runOne(t, ex)
	if r.NIOracle != "exhaustive" {
		t.Errorf("exhaustive option ran oracle %q", r.NIOracle)
	}
	if r.NIOutcome != ni.ProvedSecure {
		t.Errorf("outcome %v (reason %q), want proved-secure", r.NIOutcome, r.NIReason)
	}
	// imprecisionSrc's whole input space (2^4 public × 2 secret) fits the
	// default budget, so the sweep must be total — the grade difftest
	// requires before calling the rejection proved-imprecise.
	if !r.NITotal {
		t.Error("full-space enumeration did not set NITotal")
	}
	if r.NIAssignments == 0 {
		t.Error("proof recorded zero enumerated assignments")
	}
	if len(r.NIViolations) != 0 {
		t.Errorf("proved-secure with %d violations", len(r.NIViolations))
	}
}

// TestExhaustiveMetricsIdentity locks the CI gate's invariant on the
// pre-registered series: every job under the exhaustive oracle lands in
// exactly one verdict bucket, so the buckets sum to the job counter.
func TestExhaustiveMetricsIdentity(t *testing.T) {
	reg := metrics.NewRegistry()
	opts := pipeline.Options{
		Workers: 1, NI: pipeline.NIAll, NITrials: 2, NITrialsMax: 4, NISeed: 3,
		Oracle: pipeline.OracleExhaustive, Metrics: reg,
	}
	jobs := []pipeline.Job{
		{Name: "a.p4", Source: imprecisionSrc, Lat: lattice.TwoPoint()},
		{Name: "b.p4", Source: imprecisionSrc, Lat: lattice.TwoPoint()},
	}
	if _, err := pipeline.Run(context.Background(), jobs, opts); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := reg.Snapshot()
	total := snap.Counter("exhaust_jobs_total")
	if total != 2 {
		t.Fatalf("exhaust_jobs_total = %v, want 2", total)
	}
	sum := 0.0
	for _, outcome := range []string{"proved-secure", "proved-insecure", "inconclusive"} {
		sum += snap.Counter("exhaust_job_verdicts_total", "outcome", outcome)
	}
	if sum != total {
		t.Fatalf("verdict buckets sum to %v, jobs total %v — the split is inconsistent", sum, total)
	}
	if snap.Counter("exhaust_assignments_total") == 0 {
		t.Error("exhaust_assignments_total not recorded")
	}
}
