package pipeline_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/pipeline"
	"repro/internal/progs"
)

// corpus returns n deterministic random-program jobs.
func corpus(n int) []pipeline.Job {
	lat := lattice.TwoPoint()
	cfg := gen.DefaultConfig()
	jobs := make([]pipeline.Job, n)
	for i := range jobs {
		rng := rand.New(rand.NewSource(int64(i) + 1))
		jobs[i] = pipeline.Job{Name: fmt.Sprintf("c%d.p4", i), Source: gen.Random(rng, cfg), Lat: lat}
	}
	return jobs
}

// TestRunMatchesSequential checks that the parallel pool produces exactly
// the verdicts the sequential path does, job for job.
func TestRunMatchesSequential(t *testing.T) {
	jobs := corpus(60)
	opts := pipeline.Options{NI: pipeline.NIAccepted, NITrials: 4, NISeed: 7}
	seqOpts, parOpts := opts, opts
	seqOpts.Workers = 1
	parOpts.Workers = 8
	seq, err := pipeline.Run(context.Background(), jobs, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := pipeline.Run(context.Background(), jobs, parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Results) != len(jobs) || len(par.Results) != len(jobs) {
		t.Fatalf("result counts: seq %d, par %d, want %d", len(seq.Results), len(par.Results), len(jobs))
	}
	for i := range jobs {
		s, p := &seq.Results[i], &par.Results[i]
		if s.ParseOK() != p.ParseOK() || s.BaseOK() != p.BaseOK() || s.IFCOK() != p.IFCOK() {
			t.Errorf("job %d: verdicts differ: seq parse=%v base=%v ifc=%v, par parse=%v base=%v ifc=%v",
				i, s.ParseOK(), s.BaseOK(), s.IFCOK(), p.ParseOK(), p.BaseOK(), p.IFCOK())
		}
		if len(s.NIViolations) != len(p.NIViolations) {
			t.Errorf("job %d: NI violations differ: seq %d, par %d (seeding must be order-independent)",
				i, len(s.NIViolations), len(p.NIViolations))
		}
	}
	if seq.IFCAccepted != par.IFCAccepted || seq.BaseAccepted != par.BaseAccepted {
		t.Errorf("summary counts differ: seq %+v vs par %+v", seq, par)
	}
}

// TestRunCaseStudies pushes every embedded case-study variant through the
// pipeline and checks the expected verdicts survive the batch path.
func TestRunCaseStudies(t *testing.T) {
	var jobs []pipeline.Job
	type expect struct{ baseOK, ifcOK bool }
	var want []expect
	for _, p := range progs.All() {
		jobs = append(jobs,
			pipeline.Job{Name: p.FileName(progs.Buggy), Source: p.Source(progs.Buggy), Lat: p.Lattice()},
			pipeline.Job{Name: p.FileName(progs.Fixed), Source: p.Source(progs.Fixed), Lat: p.Lattice()},
		)
		want = append(want, expect{true, false}, expect{true, true})
	}
	sum, err := pipeline.Run(context.Background(), jobs, pipeline.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		r := &sum.Results[i]
		if !r.ParseOK() {
			t.Errorf("%s: parse/resolve failed: %v %v", r.Job.Name, r.ParseErr, r.ResolveErr)
			continue
		}
		if r.BaseOK() != w.baseOK || r.IFCOK() != w.ifcOK {
			t.Errorf("%s: base=%v ifc=%v, want base=%v ifc=%v",
				r.Job.Name, r.BaseOK(), r.IFCOK(), w.baseOK, w.ifcOK)
		}
	}
}

// TestRunNIModes checks that the NI stage runs exactly where the mode says.
func TestRunNIModes(t *testing.T) {
	jobs := corpus(40)
	for _, tc := range []struct {
		mode pipeline.NIMode
		want func(r *pipeline.JobResult) bool
	}{
		{pipeline.NIOff, func(r *pipeline.JobResult) bool { return false }},
		{pipeline.NIAccepted, func(r *pipeline.JobResult) bool { return r.IFCOK() }},
		{pipeline.NIAll, func(r *pipeline.JobResult) bool { return r.BaseOK() }},
	} {
		sum, err := pipeline.Run(context.Background(), jobs,
			pipeline.Options{Workers: 4, NI: tc.mode, NITrials: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := range sum.Results {
			r := &sum.Results[i]
			if r.NIRan != tc.want(r) {
				t.Errorf("mode %v, job %s: NIRan=%v (ifcOK=%v baseOK=%v)",
					tc.mode, r.Job.Name, r.NIRan, r.IFCOK(), r.BaseOK())
			}
		}
	}
}

// TestRunCancellation cancels mid-batch and expects a context error with a
// dense prefix of results.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := corpus(50)
	sum, err := pipeline.Run(ctx, jobs, pipeline.Options{Workers: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(sum.Results) > len(jobs) {
		t.Fatalf("more results than jobs: %d", len(sum.Results))
	}
	for i := range sum.Results {
		if sum.Results[i].Job.Name == "" {
			t.Fatalf("result %d is a zero value — prefix not dense", i)
		}
	}
}

// TestRunStageTiming checks per-stage durations are recorded for the
// stages that ran.
func TestRunStageTiming(t *testing.T) {
	jobs := corpus(10)
	sum, err := pipeline.Run(context.Background(), jobs, pipeline.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.StageDur[pipeline.StageParse] == 0 {
		t.Error("no parse time recorded")
	}
	if sum.Elapsed == 0 {
		t.Error("no elapsed time recorded")
	}
	for i := range sum.Results {
		r := &sum.Results[i]
		if r.ParseOK() && r.StageDur[pipeline.StageParse] == 0 {
			t.Errorf("job %s parsed but has zero parse duration", r.Job.Name)
		}
	}
}

// TestRunSpeedup is the acceptance check: on a machine with >= 4 cores the
// worker pool must beat the sequential path by >= 3x on a 200-program
// corpus. On smaller machines the parallel path must merely not be
// pathologically slower. Every assertion is gated on the *physical* core
// count (runtime.NumCPU, not GOMAXPROCS, which callers can set above it):
// a single-core CI runner cannot exhibit parallel speedup, and timing two
// schedules against each other there measures only scheduler noise — so
// the test skips outright rather than flake.
func TestRunSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	if runtime.NumCPU() < 2 {
		t.Skipf("speedup is meaningless on %d core(s); skipping", runtime.NumCPU())
	}
	cores := runtime.GOMAXPROCS(0)
	if cores > runtime.NumCPU() {
		cores = runtime.NumCPU() // oversubscription adds no parallelism
	}
	jobs := corpus(200)
	opts := pipeline.Options{NI: pipeline.NIAccepted, NITrials: 8, NISeed: 1}

	measure := func(workers int) time.Duration {
		o := opts
		o.Workers = workers
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 3; rep++ {
			sum, err := pipeline.Run(context.Background(), jobs, o)
			if err != nil {
				t.Fatal(err)
			}
			if sum.Elapsed < best {
				best = sum.Elapsed
			}
		}
		return best
	}

	seq := measure(1)
	par := measure(cores)
	speedup := float64(seq) / float64(par)
	t.Logf("cores=%d: sequential %v, parallel %v, speedup %.2fx", cores, seq, par, speedup)
	if cores >= 4 && runtime.NumCPU() >= 4 {
		if speedup < 3 {
			t.Errorf("speedup %.2fx < 3x on %d cores", speedup, cores)
		}
	} else if speedup < 0.5 {
		t.Errorf("parallel path pathologically slow on %d cores: %.2fx", cores, speedup)
	}
}

// TestFormatSummary smoke-tests the report rendering.
func TestFormatSummary(t *testing.T) {
	sum, err := pipeline.Run(context.Background(), corpus(5), pipeline.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := pipeline.FormatSummary(sum)
	for _, want := range []string{"5 programs", "2 workers", "parse"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestNIObserverSweep: the NI stage observes at every non-top lattice
// element, so flows between non-bottom labels of taller lattices are
// witnessable. A chain-4 program leaking L3 into an L1 field is invisible
// to an L0 observer (the historical single vantage point) but must be
// witnessed by the sweep; pinning the L0 observer explicitly must still
// see nothing.
func TestNIObserverSweep(t *testing.T) {
	lat := lattice.Chain(4)
	src := `header data_t {
    <bit<8>, L1> f1;
    <bit<8>, L3> f3;
}
struct headers { data_t d; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.f1 = hdr.d.f3;
    }
}
`
	job := []pipeline.Job{{Name: "midleak.p4", Source: src, Lat: lat}}
	sum, err := pipeline.Run(context.Background(), job, pipeline.Options{
		Workers: 1, NI: pipeline.NIAll, NITrials: 9, NISeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Results[0]
	if r.IFCOK() {
		t.Fatal("IFC accepted an L3 -> L1 flow")
	}
	if len(r.NIViolations) == 0 {
		t.Fatal("observer sweep found no witness for a direct mid-lattice leak")
	}

	bot, _ := lat.Lookup("L0")
	sum, err = pipeline.Run(context.Background(), job, pipeline.Options{
		Workers: 1, NI: pipeline.NIAll, NITrials: 9, NISeed: 5, Observer: bot,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Results[0].NIViolations; len(got) != 0 {
		t.Fatalf("L0 observer witnessed a leak it cannot see: %v", got)
	}
}
