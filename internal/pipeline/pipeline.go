// Package pipeline is a worker-pool batch-analysis engine: it runs the
// repo's full analysis stack — parse → resolve → baseline-check →
// IFC-check → (optional) non-interference experiment — concurrently over a
// corpus of programs.
//
// The engine exists for two workloads:
//
//   - throughput: checking a large corpus (generated sweeps, case-study
//     matrices, CI gates) as fast as the hardware allows, with bounded
//     parallelism and per-stage timing so regressions are attributable;
//   - fuzzing: internal/difftest drives millions of generated programs
//     through the same stages and cross-checks the oracles' verdicts.
//
// Jobs are independent, so the pool is a plain fan-out: a channel of job
// indices feeds N workers, each writing its own slot of the results slice.
// Cancellation is cooperative per job boundary — workers drain nothing
// after ctx is done, and Run reports ctx.Err() while still returning the
// results completed so far.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/basecheck"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/eval"
	"repro/internal/exhaust"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/ni"
	"repro/internal/parser"
	"repro/internal/resolve"
)

// Stage identifies one analysis stage, in execution order.
type Stage int

// Stages.
const (
	StageParse Stage = iota
	StageResolve
	StageBase
	StageIFC
	StageNI
	NumStages
)

// String renders the stage name.
func (s Stage) String() string {
	switch s {
	case StageParse:
		return "parse"
	case StageResolve:
		return "resolve"
	case StageBase:
		return "basecheck"
	case StageIFC:
		return "ifc"
	case StageNI:
		return "ni"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// NIMode selects which jobs the NI-experiment stage runs on.
type NIMode int

// NI modes.
const (
	// NIOff skips the NI stage entirely.
	NIOff NIMode = iota
	// NIAccepted runs NI experiments only on IFC-accepted programs — the
	// soundness check (Theorem 4.3: accepted ⇒ non-interfering).
	NIAccepted
	// NIAll runs NI experiments on every base-well-typed program,
	// including IFC-rejected ones — the differential harness uses the
	// extra runs to tell true positives (interference witnessed) from
	// conservative rejections (no witness found).
	NIAll
)

// Job is one program to analyze.
type Job struct {
	// Name names the program in diagnostics (used as the parse file name).
	Name string
	// Source is the program text.
	Source string
	// Lat is the security lattice to check against; nil means two-point.
	Lat lattice.Lattice
	// Seq is the job's NI-seed offset: its NI experiment runs with
	// Options.NISeed + Seq, so results are reproducible regardless of
	// worker interleaving or arrival order. Run overwrites Seq with the
	// job's slice index; RunStream callers set it themselves (a sharded
	// campaign uses the global campaign index, keeping per-program NI
	// randomness identical whether or not the campaign is sharded).
	Seq int64
}

// Options configures a batch run.
type Options struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS(0).
	Workers int
	// NI selects the non-interference stage's mode (default NIOff).
	NI NIMode
	// NITrials is the number of randomized trials per NI experiment
	// (default 8 when the NI stage runs).
	NITrials int
	// NITrialsMax, when greater than NITrials, switches the NI stage to an
	// adaptive budget: IFC-accepted programs get NITrials trials (a
	// violation there would be a soundness bug, which bulk evidence makes
	// rare), while IFC-rejected programs escalate in doubling rounds from
	// NITrials up to NITrialsMax total, stopping at the first interference
	// witness — spending trials where rejection witnesses are likely, to
	// separate true positives from conservative rejections.
	NITrialsMax int
	// NISeed seeds the NI experiments; job i runs with NISeed + i so a
	// batch is reproducible regardless of worker interleaving.
	NISeed int64
	// Observer overrides the NI observer label (zero = lattice bottom).
	Observer lattice.Label
	// Oracle selects the NI backend: OracleAdaptive (the default, also
	// chosen by ""), OracleRandomized (flat budget, no escalation), or
	// OracleExhaustive (internal/exhaust enumeration with the adaptive
	// sampler as fallback for enumeration-ineligible jobs). The adaptive
	// default degrades to a flat randomized budget when NITrialsMax
	// doesn't exceed NITrials, exactly as before the oracle split.
	Oracle string
	// ExhaustBudget bounds machine runs per exhaustive observer check
	// (0 = exhaust.DefaultBudget). Only read by OracleExhaustive.
	ExhaustBudget uint64
	// ExhaustProbes fixes the exhaustive oracle's public probes per
	// observer (0 = derived from the budget).
	ExhaustProbes int
	// Metrics, when non-nil, receives per-stage duration histograms
	// (pipeline_stage_seconds{stage=...}), a pipeline_jobs_total counter,
	// and the NI stage's trial/witness counters. Nil costs one no-op call
	// per stage.
	Metrics *metrics.Registry
}

// Oracle names for Options.Oracle.
const (
	OracleAdaptive   = "adaptive"
	OracleRandomized = "randomized"
	OracleExhaustive = "exhaustive"
)

// ValidOracle reports whether name selects a known NI backend ("" is the
// adaptive default).
func ValidOracle(name string) bool {
	switch name {
	case "", OracleAdaptive, OracleRandomized, OracleExhaustive:
		return true
	}
	return false
}

// instruments caches the metric handles a run's hot path touches, so
// workers never take the registry lock per job. The zero value (from a nil
// registry) is all nil handles, whose methods no-op.
type instruments struct {
	jobs   *metrics.Counter
	stages [NumStages]*metrics.Histogram
	// Exhaustive-oracle job accounting, pre-registered when the oracle is
	// selected so the series are present even before the first job (and
	// the CI identity sum(exhaust_job_verdicts_total) ==
	// exhaust_jobs_total holds from the first snapshot).
	exJobs     *metrics.Counter
	exVerdicts map[ni.Outcome]*metrics.Counter
}

func newInstruments(opts Options) instruments {
	r := opts.Metrics
	var ins instruments
	ins.jobs = r.Counter("pipeline_jobs_total")
	for s := Stage(0); s < NumStages; s++ {
		ins.stages[s] = r.Histogram("pipeline_stage_seconds", metrics.DurationBuckets, "stage", s.String())
	}
	if opts.Oracle == OracleExhaustive {
		ins.exJobs = r.Counter("exhaust_jobs_total")
		ins.exVerdicts = map[ni.Outcome]*metrics.Counter{
			ni.ProvedSecure:   r.Counter("exhaust_job_verdicts_total", "outcome", ni.ProvedSecure.String()),
			ni.ProvedInsecure: r.Counter("exhaust_job_verdicts_total", "outcome", ni.ProvedInsecure.String()),
			ni.Inconclusive:   r.Counter("exhaust_job_verdicts_total", "outcome", ni.Inconclusive.String()),
		}
		// The per-enumeration series internal/exhaust records, registered
		// up front for deterministic presence in snapshots.
		r.Counter("exhaust_assignments_total")
		r.Counter("exhaust_proofs_total", "verdict", "secure")
		r.Counter("exhaust_proofs_total", "verdict", "insecure")
		r.Histogram("exhaust_enumeration_seconds", metrics.DurationBuckets)
	}
	return ins
}

// observe records one finished job: stages that never ran (zero duration
// after an earlier stage failed) are not observed.
func (ins instruments) observe(r *JobResult) {
	ins.jobs.Inc()
	for s := Stage(0); s < NumStages; s++ {
		if r.StageDur[s] > 0 {
			ins.stages[s].ObserveDuration(r.StageDur[s])
		}
	}
}

// JobResult is the outcome of all stages for one job. Stages after a
// failing stage are skipped and their fields are zero.
type JobResult struct {
	Job Job
	// Prog is the parsed program (nil if parsing failed).
	Prog *ast.Program
	// ParseErr is the parse failure, if any.
	ParseErr error
	// ResolveErr reports type-declaration resolution failures.
	ResolveErr error
	// Base is the baseline (label-insensitive) verdict.
	Base *basecheck.Result
	// IFC is the P4BID verdict.
	IFC *core.Result
	// NIViolations holds interference witnesses found by the NI stage.
	NIViolations []ni.Violation
	// NIErr is a runtime error from the NI stage (not a violation).
	NIErr error
	// NIRan reports whether the NI stage ran for this job.
	NIRan bool
	// NITrialsRun is the number of NI trials actually executed — less than
	// the configured budget when an adaptive run stopped at a witness,
	// more than NITrials when a rejected program escalated. For the
	// exhaustive oracle each enumerated assignment run counts as one
	// trial.
	NITrialsRun int
	// NIOracle is the backend family the NI stage ran under ("" when the
	// stage was skipped): "randomized", "adaptive", or "exhaustive".
	NIOracle string
	// NIOutcome aggregates the per-observer oracle outcomes for the job
	// (ProvedInsecure > Inconclusive > ProvedSecure; Sampled for the
	// randomized backends). NIReason explains an Inconclusive outcome.
	NIOutcome ni.Outcome
	NIReason  string
	// NIAssignments counts input assignments the exhaustive oracle
	// enumerated across the observer sweep.
	NIAssignments uint64
	// NITotal reports that every oracle check in the observer sweep
	// enumerated the full public × secret input space (ni.Result.Total
	// at each observer). Only then is a ProvedSecure aggregate a proof
	// over the whole input space; without it the public side was merely
	// probed and a clean sweep certifies nothing beyond the probed
	// states. Always false for the sampling backends.
	NITotal bool
	// StageDur records wall-clock time spent per stage.
	StageDur [NumStages]time.Duration
}

// ParseOK reports whether the job parsed and resolved.
func (r *JobResult) ParseOK() bool { return r.ParseErr == nil && r.ResolveErr == nil }

// BaseOK reports whether the baseline checker accepted the job.
func (r *JobResult) BaseOK() bool { return r.Base != nil && r.Base.OK }

// IFCOK reports whether the IFC checker accepted the job.
func (r *JobResult) IFCOK() bool { return r.IFC != nil && r.IFC.OK }

// CitedRule returns the typing rule the IFC checker's first rule-bearing
// diagnostic cites (e.g. "T-Assign"), or "" when the job was accepted,
// never reached the IFC stage, or was rejected without a rule attribution.
// Downstream triage clusters findings by this rule, so it is exposed here
// rather than re-parsed out of rendered diagnostic text.
func (r *JobResult) CitedRule() string {
	if r.IFC == nil {
		return ""
	}
	for _, d := range r.IFC.Diags {
		if d.Rule != "" {
			return d.Rule
		}
	}
	return ""
}

// CitedRules returns every distinct typing rule the IFC checker cited on
// this job, in first-citation order.
func (r *JobResult) CitedRules() []string {
	if r.IFC == nil {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	for _, d := range r.IFC.Diags {
		if d.Rule != "" && !seen[d.Rule] {
			seen[d.Rule] = true
			out = append(out, d.Rule)
		}
	}
	return out
}

// Summary aggregates a batch run.
type Summary struct {
	// Results holds one entry per job, in job order.
	Results []JobResult
	// Workers is the pool size used.
	Workers int
	// Elapsed is the whole batch's wall-clock time.
	Elapsed time.Duration
	// StageDur is the per-stage CPU-ish time summed across jobs (it can
	// exceed Elapsed under parallelism; Elapsed·Workers bounds it).
	StageDur [NumStages]time.Duration
	// Parsed, BaseAccepted, IFCAccepted, and NIViolating count jobs.
	Parsed, BaseAccepted, IFCAccepted, NIViolating int
	// NITrialsRun totals NI trials across jobs (interesting under an
	// adaptive budget, where it differs from jobs × NITrials).
	NITrialsRun int64
}

// Run analyzes all jobs with a bounded worker pool. It returns the partial
// summary and ctx.Err() if the context is cancelled mid-batch; otherwise
// every job has a result.
func Run(ctx context.Context, jobs []Job, opts Options) (*Summary, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	trials := opts.NITrials
	if trials <= 0 {
		trials = 8
	}

	start := time.Now()
	ins := newInstruments(opts)
	results := make([]JobResult, len(jobs))
	done := make([]bool, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				job := jobs[i]
				job.Seq = int64(i)
				results[i] = runJob(job, opts, trials, ins)
				done[i] = true
			}
		}()
	}

	var ctxErr error
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feed
		}
	}
	close(idx)
	wg.Wait()

	sum := &Summary{Workers: workers, Elapsed: time.Since(start)}
	if ctxErr != nil {
		// Keep only the prefix-closed set of completed results so callers
		// see a dense, ordered slice.
		for i := range results {
			if !done[i] {
				results = results[:i]
				break
			}
		}
	}
	sum.Results = results
	for i := range sum.Results {
		r := &sum.Results[i]
		for s := Stage(0); s < NumStages; s++ {
			sum.StageDur[s] += r.StageDur[s]
		}
		if r.ParseOK() {
			sum.Parsed++
		}
		if r.BaseOK() {
			sum.BaseAccepted++
		}
		if r.IFCOK() {
			sum.IFCAccepted++
		}
		if len(r.NIViolations) > 0 {
			sum.NIViolating++
		}
		sum.NITrialsRun += int64(r.NITrialsRun)
	}
	return sum, ctxErr
}

// RunStream is the channel-fed variant of Run for corpora too large (or
// too lazily produced) to materialize: workers pull jobs from the jobs
// channel as they arrive and deliver results on the returned channel in
// completion order. The result channel is unbuffered and closes once all
// workers have drained — after the jobs channel closes or ctx is done,
// whichever comes first.
//
// Cancellation leaks nothing: on ctx.Done every worker stops pulling jobs
// and stops offering results, so a producer that also selects on ctx.Done
// when sending (as any must) and a consumer ranging over the result
// channel both terminate. Each job's NI experiment is seeded with
// Options.NISeed + Job.Seq, so the producer controls reproducibility by
// numbering jobs; Run's slice-index seeding is the special case Seq = i.
func RunStream(ctx context.Context, jobs <-chan Job, opts Options) <-chan JobResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	trials := opts.NITrials
	if trials <= 0 {
		trials = 8
	}
	ins := newInstruments(opts)
	out := make(chan JobResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case job, ok := <-jobs:
					if !ok {
						return
					}
					r := runJob(job, opts, trials, ins)
					select {
					case out <- r:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// runJob pushes one job through the stage sequence.
func runJob(job Job, opts Options, trials int, ins instruments) JobResult {
	niSeed := opts.NISeed + job.Seq
	r := JobResult{Job: job}
	defer func() { ins.observe(&r) }()
	lat := job.Lat
	if lat == nil {
		lat = lattice.TwoPoint()
	}

	t0 := time.Now()
	prog, err := parser.Parse(job.Name, job.Source)
	r.StageDur[StageParse] = time.Since(t0)
	if err != nil {
		r.ParseErr = err
		return r
	}
	r.Prog = prog

	t0 = time.Now()
	var diags diag.List
	res := resolve.New(lat, &diags)
	res.CollectTypeDecls(prog)
	r.ResolveErr = diags.Err()
	r.StageDur[StageResolve] = time.Since(t0)
	if r.ResolveErr != nil {
		return r
	}

	t0 = time.Now()
	r.Base = basecheck.Check(prog)
	r.StageDur[StageBase] = time.Since(t0)
	if !r.Base.OK {
		return r
	}

	t0 = time.Now()
	r.IFC = core.Check(prog, lat)
	r.StageDur[StageIFC] = time.Since(t0)

	runNI := opts.NI == NIAll || (opts.NI == NIAccepted && r.IFC.OK)
	if !runNI {
		return r
	}
	t0 = time.Now()
	// The oracle must observe at every level that can distinguish
	// anything: a single bottom observer is complete for the two-point
	// lattice (the only other observer sees everything, so nothing is
	// randomized for it) but blind to flows between non-bottom labels of
	// taller lattices — an L3 → L1 flow under chain:4 is invisible at L0
	// and only witnessable at L1/L2. The trial budget is split across the
	// observer sweep (ceil division, so every observer gets at least one
	// trial), and the sweep stops at the first witness: one violation
	// settles the classification. An explicit Options.Observer overrides
	// the sweep with that single vantage point.
	observers := []lattice.Label{opts.Observer}
	if opts.Observer.IsZero() {
		observers = observersFor(lat)
	}
	split := len(observers)
	baseT := (trials + split - 1) / split
	maxT := 0
	if opts.NITrialsMax > trials {
		maxT = (opts.NITrialsMax + split - 1) / split
	}
	// Compile once per job: every observer level (and every trial within
	// it) runs the same closure tree. A compile failure pins the whole
	// sweep to the tree-walking interpreter rather than retrying the
	// compilation per observer.
	code, compileErr := eval.Compile(prog)
	orc := selectOracle(opts, baseT, maxT, r.IFC.OK)
	r.NIOracle = orc.Name()
	allTotal := true
	for _, obs := range observers {
		exp := &ni.Experiment{Prog: prog, Lat: lat, Observer: obs,
			Code: code, Interp: compileErr != nil, Metrics: opts.Metrics}
		res, err := orc.Check(exp, niSeed)
		r.NIViolations = append(r.NIViolations, res.Violations...)
		r.NITrialsRun += res.Trials
		r.NIAssignments += res.Assignments
		allTotal = allTotal && res.Total
		if outcomeRank(res.Outcome) > outcomeRank(r.NIOutcome) {
			r.NIOutcome = res.Outcome
			r.NIReason = res.Reason
		}
		if err != nil && r.NIErr == nil {
			r.NIErr = err
		}
		if len(res.Violations) > 0 {
			break
		}
	}
	r.NITotal = allTotal
	r.NIRan = true
	if ins.exJobs != nil {
		ins.exJobs.Inc()
		if c := ins.exVerdicts[r.NIOutcome]; c != nil {
			c.Inc()
		}
	}
	r.StageDur[StageNI] = time.Since(t0)
	return r
}

// selectOracle builds the per-observer NI backend a job runs under. The
// default (and "adaptive") reproduces the historical dispatch exactly —
// escalating rounds only for IFC-rejected jobs with headroom, otherwise
// a flat budget with the identical rng stream — so oracle selection
// never perturbs recorded corpora. The exhaustive oracle wraps that
// default as its sampling fallback for enumeration-ineligible jobs.
func selectOracle(opts Options, baseT, maxT int, ifcOK bool) ni.Oracle {
	sampler := ni.Oracle(ni.Randomized{Trials: baseT})
	if maxT > baseT && !ifcOK {
		// Adaptive budget: a rejected program is where an interference
		// witness is likely, so escalate toward the ceiling, stopping
		// at the first witness.
		sampler = ni.Adaptive{Min: baseT, Max: maxT}
	}
	switch opts.Oracle {
	case OracleRandomized:
		return ni.Randomized{Trials: baseT}
	case OracleExhaustive:
		return exhaust.Oracle{Budget: opts.ExhaustBudget, Probes: opts.ExhaustProbes, Fallback: sampler}
	default:
		return sampler
	}
}

// outcomeRank orders oracle outcomes for per-job aggregation across the
// observer sweep: one proved-insecure observer settles the job; any
// inconclusive observer taints a would-be proof of security; all-secure
// means secure.
func outcomeRank(o ni.Outcome) int {
	switch o {
	case ni.ProvedInsecure:
		return 3
	case ni.Inconclusive:
		return 2
	case ni.ProvedSecure:
		return 1
	default:
		return 0
	}
}

// observersFor returns the observer labels worth sweeping: every element
// except ⊤, whose observer has nothing unobservable to randomize and so
// can never witness anything. For the two-point lattice this is exactly
// the historical single bottom observer. A one-element lattice (where no
// flow can violate anything) degenerates to observing at that element.
func observersFor(lat lattice.Lattice) []lattice.Label {
	var out []lattice.Label
	for _, e := range lat.Elements() {
		if e != lat.Top() {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		out = []lattice.Label{lat.Bottom()}
	}
	return out
}

// FormatSummary renders the batch summary with the per-stage breakdown.
func FormatSummary(s *Summary) string {
	out := fmt.Sprintf("batch: %d programs, %d workers, %v wall-clock\n",
		len(s.Results), s.Workers, s.Elapsed.Round(time.Microsecond))
	out += fmt.Sprintf("  parsed %d, base-accepted %d, IFC-accepted %d, NI-violating %d\n",
		s.Parsed, s.BaseAccepted, s.IFCAccepted, s.NIViolating)
	for st := Stage(0); st < NumStages; st++ {
		if s.StageDur[st] == 0 {
			continue
		}
		out += fmt.Sprintf("  %-10s %12v summed across jobs\n", st, s.StageDur[st].Round(time.Microsecond))
	}
	return out
}
