package pipeline

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/gen"
)

// feedJobs produces n generated jobs on a fresh channel, numbering them
// with their global index, and stops early if ctx is cancelled.
func feedJobs(ctx context.Context, n int, seed int64) <-chan Job {
	jobs := make(chan Job)
	go func() {
		defer close(jobs)
		cfg := gen.DefaultConfig()
		for i := 0; i < n; i++ {
			rng := rand.New(rand.NewSource(seed + int64(i)))
			job := Job{
				Name:   fmt.Sprintf("stream-%d.p4", i),
				Source: gen.Random(rng, cfg),
				Seq:    int64(i),
			}
			select {
			case jobs <- job:
			case <-ctx.Done():
				return
			}
		}
	}()
	return jobs
}

// TestRunStreamMatchesRun: streaming the same jobs through RunStream must
// reproduce Run's per-job verdicts exactly (NI seeding included), just
// without materializing the corpus.
func TestRunStreamMatchesRun(t *testing.T) {
	const n = 60
	cfg := gen.DefaultConfig()
	jobs := make([]Job, n)
	for i := range jobs {
		rng := rand.New(rand.NewSource(7 + int64(i)))
		jobs[i] = Job{Name: fmt.Sprintf("stream-%d.p4", i), Source: gen.Random(rng, cfg)}
	}
	opts := Options{Workers: 4, NI: NIAll, NITrials: 4, NISeed: 7}

	sum, err := Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	byName := map[string]JobResult{}
	for r := range RunStream(context.Background(), feedJobs(context.Background(), n, 7), opts) {
		byName[r.Job.Name] = r
	}
	if len(byName) != n {
		t.Fatalf("stream delivered %d results, want %d", len(byName), n)
	}
	for _, want := range sum.Results {
		got, ok := byName[want.Job.Name]
		if !ok {
			t.Fatalf("stream missing result for %s", want.Job.Name)
		}
		if got.IFCOK() != want.IFCOK() || got.BaseOK() != want.BaseOK() ||
			len(got.NIViolations) != len(want.NIViolations) {
			t.Errorf("%s: stream verdict differs from batch: ifc %v/%v base %v/%v witnesses %d/%d",
				want.Job.Name, got.IFCOK(), want.IFCOK(), got.BaseOK(), want.BaseOK(),
				len(got.NIViolations), len(want.NIViolations))
		}
	}
}

// TestRunStreamCancellationLeaksNoGoroutines: cancelling mid-stream must
// terminate the producer, every worker, and the closer goroutine.
func TestRunStreamCancellationLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	out := RunStream(ctx, feedJobs(ctx, 100000, 1), Options{Workers: 4, NI: NIAll, NITrials: 2, NISeed: 1})

	// Consume a few results, then cancel with the stream mid-flight.
	for i := 0; i < 5; i++ {
		if _, ok := <-out; !ok {
			t.Fatal("stream closed before cancellation")
		}
	}
	cancel()
	for range out { // drain until the workers close the channel
	}

	// The producer observes ctx.Done on its next send; give the runtime a
	// beat to unwind before counting.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before stream, %d after cancellation", before, runtime.NumGoroutine())
}

// TestRunStreamShardUnion: partitioning the index space by idx mod n and
// streaming each shard separately must cover exactly the unsharded job
// set, with per-job results independent of the sharding (the NI seed rides
// on Job.Seq, not arrival order).
func TestRunStreamShardUnion(t *testing.T) {
	const n, shards = 48, 3
	opts := Options{Workers: 2, NI: NIAll, NITrials: 3, NISeed: 11}
	cfg := gen.DefaultConfig()

	shardFeed := func(ctx context.Context, shard int) <-chan Job {
		jobs := make(chan Job)
		go func() {
			defer close(jobs)
			for i := shard; i < n; i += shards {
				rng := rand.New(rand.NewSource(11 + int64(i)))
				job := Job{
					Name:   fmt.Sprintf("stream-%d.p4", i),
					Source: gen.Random(rng, cfg),
					Seq:    int64(i),
				}
				select {
				case jobs <- job:
				case <-ctx.Done():
					return
				}
			}
		}()
		return jobs
	}

	union := map[string]JobResult{}
	for s := 0; s < shards; s++ {
		for r := range RunStream(context.Background(), shardFeed(context.Background(), s), opts) {
			if _, dup := union[r.Job.Name]; dup {
				t.Fatalf("job %s analyzed by two shards", r.Job.Name)
			}
			union[r.Job.Name] = r
		}
	}

	want := map[string]JobResult{}
	for r := range RunStream(context.Background(), feedJobs(context.Background(), n, 11), opts) {
		want[r.Job.Name] = r
	}

	var missing []string
	for name := range want {
		if _, ok := union[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(union) != len(want) || len(missing) > 0 {
		t.Fatalf("shard union covers %d jobs, want %d (missing %v)", len(union), len(want), missing)
	}
	for name, w := range want {
		g := union[name]
		if g.IFCOK() != w.IFCOK() || len(g.NIViolations) != len(w.NIViolations) || g.NITrialsRun != w.NITrialsRun {
			t.Errorf("%s: sharded result differs from unsharded: ifc %v/%v witnesses %d/%d trials %d/%d",
				name, g.IFCOK(), w.IFCOK(), len(g.NIViolations), len(w.NIViolations), g.NITrialsRun, w.NITrialsRun)
		}
	}
}

// TestRunStreamAdaptiveBudget: with an adaptive budget, rejected programs
// may escalate past the base budget while accepted ones never do.
func TestRunStreamAdaptiveBudget(t *testing.T) {
	opts := Options{Workers: 2, NI: NIAll, NITrials: 2, NITrialsMax: 16, NISeed: 3}
	sawEscalation := false
	for r := range RunStream(context.Background(), feedJobs(context.Background(), 80, 3), opts) {
		if !r.NIRan {
			continue
		}
		if r.IFCOK() && r.NITrialsRun != 2 {
			t.Errorf("%s: accepted program ran %d trials, want the base budget 2", r.Job.Name, r.NITrialsRun)
		}
		if !r.IFCOK() && r.NITrialsRun > 16 {
			t.Errorf("%s: rejected program ran %d trials, above the 16-trial ceiling", r.Job.Name, r.NITrialsRun)
		}
		if !r.IFCOK() && r.NITrialsRun > 2 {
			sawEscalation = true
		}
	}
	if !sawEscalation {
		t.Error("no rejected program escalated past the base budget")
	}
}
