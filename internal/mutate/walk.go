// Site collection and AST deep copy for the mutation operators. The
// walker gathers mutable pointers (annotation sites, operators, literals,
// blocks) in syntactic order, so a site draw is uniform over the program;
// the copiers produce alias-free subtrees so clone-and-perturb and splice
// never mutate their source through sharing.
package mutate

import (
	"repro/internal/ast"
)

// sites indexes the mutable structure of one program (or one subtree).
type sites struct {
	secs   []*ast.SecType   // annotation sites (header/struct fields, params, vars, typedefs)
	bins   []*ast.Binary    // operator sites
	ints   []*ast.IntLit    // literal sites
	bools  []*ast.BoolLit   // literal sites
	blocks []*ast.BlockStmt // statement containers (apply, bodies, branches)
	ifs    []*ast.IfStmt    // guard sites
	conds  []ast.Expr       // existing guard expressions (wrap-if material)
	lvals  []ast.Expr       // existing assignment LHSes (wrap-if material)
}

func collect(p *ast.Program) *sites {
	s := &sites{}
	for _, d := range p.Decls {
		s.decl(d)
	}
	for _, c := range p.Controls {
		for i := range c.Params {
			s.sec(c.Params[i].Type)
		}
		for _, d := range c.Locals {
			s.decl(d)
		}
		s.block(c.Apply)
	}
	return s
}

func (s *sites) sec(t *ast.SecType) {
	if t != nil {
		s.secs = append(s.secs, t)
	}
}

func (s *sites) decl(d ast.Decl) {
	switch d := d.(type) {
	case *ast.TypedefDecl:
		s.sec(d.Type)
	case *ast.HeaderDecl:
		for i := range d.Fields {
			s.sec(d.Fields[i].Type)
		}
	case *ast.StructDecl:
		for i := range d.Fields {
			s.sec(d.Fields[i].Type)
		}
	case *ast.VarDecl:
		s.sec(d.Type)
		s.expr(d.Init)
	case *ast.FuncDecl:
		for i := range d.Params {
			s.sec(d.Params[i].Type)
		}
		s.block(d.Body)
	case *ast.TableDecl:
		for i := range d.Keys {
			s.expr(d.Keys[i].Expr)
		}
	}
}

func (s *sites) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	s.blocks = append(s.blocks, b)
	for _, st := range b.Stmts {
		s.stmt(st)
	}
}

func (s *sites) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		s.lvals = append(s.lvals, st.LHS)
		s.expr(st.LHS)
		s.expr(st.RHS)
	case *ast.IfStmt:
		s.ifs = append(s.ifs, st)
		s.conds = append(s.conds, st.Cond)
		s.expr(st.Cond)
		s.block(st.Then)
		if st.Else != nil {
			s.stmt(st.Else)
		}
	case *ast.BlockStmt:
		s.block(st)
	case *ast.ReturnStmt:
		s.expr(st.X)
	case *ast.ExprStmt:
		s.expr(st.X)
	case *ast.ApplyStmt:
		s.expr(st.Table)
	case *ast.DeclStmt:
		s.sec(st.Decl.Type)
		s.expr(st.Decl.Init)
	}
}

func (s *sites) expr(e ast.Expr) {
	switch e := e.(type) {
	case *ast.IntLit:
		s.ints = append(s.ints, e)
	case *ast.BoolLit:
		s.bools = append(s.bools, e)
	case *ast.Unary:
		s.expr(e.X)
	case *ast.Binary:
		s.bins = append(s.bins, e)
		s.expr(e.X)
		s.expr(e.Y)
	case *ast.Index:
		s.expr(e.X)
		s.expr(e.I)
	case *ast.RecordLit:
		for i := range e.Fields {
			s.expr(e.Fields[i].Value)
		}
	case *ast.Member:
		s.expr(e.X)
	case *ast.Call:
		s.expr(e.Fun)
		for _, a := range e.Args {
			s.expr(a)
		}
	}
}

// ---------------------------------------------------------------------------
// Deep copy (expressions and statements; enough for clone/splice/wrap)

func copyExpr(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.BoolLit:
		c := *e
		return &c
	case *ast.IntLit:
		c := *e
		return &c
	case *ast.Ident:
		c := *e
		return &c
	case *ast.Unary:
		return &ast.Unary{P: e.P, Op: e.Op, X: copyExpr(e.X)}
	case *ast.Binary:
		return &ast.Binary{P: e.P, Op: e.Op, X: copyExpr(e.X), Y: copyExpr(e.Y)}
	case *ast.Index:
		return &ast.Index{P: e.P, X: copyExpr(e.X), I: copyExpr(e.I)}
	case *ast.RecordLit:
		fs := make([]ast.FieldInit, len(e.Fields))
		for i, f := range e.Fields {
			fs[i] = ast.FieldInit{P: f.P, Name: f.Name, Value: copyExpr(f.Value)}
		}
		return &ast.RecordLit{P: e.P, Fields: fs}
	case *ast.Member:
		return &ast.Member{P: e.P, X: copyExpr(e.X), Field: e.Field}
	case *ast.Call:
		args := make([]ast.Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = copyExpr(a)
		}
		return &ast.Call{P: e.P, Fun: copyExpr(e.Fun), Args: args}
	default:
		return e // unreachable for the closed Expr set
	}
}

func copyBlock(b *ast.BlockStmt) *ast.BlockStmt {
	if b == nil {
		return nil
	}
	out := &ast.BlockStmt{P: b.P, Stmts: make([]ast.Stmt, len(b.Stmts))}
	for i, s := range b.Stmts {
		out.Stmts[i] = copyStmt(s)
	}
	return out
}

func copyStmt(s ast.Stmt) ast.Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *ast.AssignStmt:
		return &ast.AssignStmt{P: s.P, LHS: copyExpr(s.LHS), RHS: copyExpr(s.RHS)}
	case *ast.IfStmt:
		return &ast.IfStmt{P: s.P, Cond: copyExpr(s.Cond), Then: copyBlock(s.Then), Else: copyStmt(s.Else)}
	case *ast.BlockStmt:
		return copyBlock(s)
	case *ast.ExitStmt:
		c := *s
		return &c
	case *ast.ReturnStmt:
		return &ast.ReturnStmt{P: s.P, X: copyExpr(s.X)}
	case *ast.ExprStmt:
		return &ast.ExprStmt{P: s.P, X: copyExpr(s.X)}
	case *ast.ApplyStmt:
		return &ast.ApplyStmt{P: s.P, Table: copyExpr(s.Table)}
	case *ast.DeclStmt:
		d := *s.Decl
		if d.Type != nil {
			t := *d.Type
			d.Type = &t
		}
		d.Init = copyExpr(d.Init)
		return &ast.DeclStmt{P: s.P, Decl: &d}
	default:
		return s // unreachable for the closed Stmt set
	}
}
