package mutate

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/basecheck"
	"repro/internal/diag"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/resolve"
)

// mustValid asserts the mutator's contract on one mutant: it parses,
// resolves under the campaign lattice, and base-checks.
func mustValid(t *testing.T, name, src string, lat lattice.Lattice) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(name, src)
	if err != nil {
		t.Fatalf("%s does not parse: %v\n%s", name, err, src)
	}
	var diags diag.List
	resolve.New(lat, &diags).CollectTypeDecls(prog)
	if err := diags.Err(); err != nil {
		t.Fatalf("%s does not resolve: %v\n%s", name, err, src)
	}
	if r := basecheck.Check(prog); !r.OK {
		t.Fatalf("%s rejected by the baseline checker: %v\n%s", name, r.Err(), src)
	}
	return prog
}

// TestMutantsParseResolveAndDiffer is the mutator's validity property
// across a 500-seed sweep spanning three campaign lattices: every mutant
// parses, resolves under the campaign lattice, base-checks, and differs
// from its parent's canonical print — no identity mutations. Mutation may
// decline a seed (no admissible mutant within the retry budget), but only
// rarely; the sweep bounds the decline rate.
func TestMutantsParseResolveAndDiffer(t *testing.T) {
	specs := []string{"", "chain:4", "nparty:2"}
	gcfg := gen.Config{MaxDepth: 2, MaxStmts: 4, NumFields: 2, WithActions: true}
	declined := 0
	for seed := int64(0); seed < 500; seed++ {
		spec := specs[seed%int64(len(specs))]
		lat, err := lattice.ByName(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := gcfg
		cfg.Lattice = spec
		rng := rand.New(rand.NewSource(seed))
		parentSrc := gen.Random(rng, cfg)
		name := fmt.Sprintf("seed-%d.p4", seed)

		mcfg := Config{Lattice: spec}
		if seed%5 == 0 {
			// Every fifth seed mutates with a donor, covering splice.
			mcfg.Donor = gen.Random(rand.New(rand.NewSource(seed+10_000)), cfg)
		}
		res, err := Mutate(rng, name, parentSrc, mcfg)
		if err != nil {
			declined++
			continue
		}
		if len(res.Ops) == 0 {
			t.Fatalf("seed %d: mutant reports no applied operators", seed)
		}
		mustValid(t, name, res.Source, lat)
		parent := parser.MustParse(name, parentSrc)
		if res.Source == ast.Print(parent) {
			t.Fatalf("seed %d: identity mutation (ops %v):\n%s", seed, res.Ops, res.Source)
		}
	}
	if declined > 25 { // 5% of the sweep
		t.Fatalf("mutation declined %d/500 seeds; the operator mix should almost always find a site", declined)
	}
}

// TestMutateOperatorCoverage: across a modest sweep, every operator in the
// registry fires at least once — a silent dead operator would quietly
// narrow the search.
func TestMutateOperatorCoverage(t *testing.T) {
	seen := map[string]bool{}
	gcfg := gen.Config{MaxDepth: 3, MaxStmts: 5, NumFields: 2, WithActions: true}
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := gen.Random(rng, gcfg)
		donor := gen.Random(rand.New(rand.NewSource(seed+777)), gcfg)
		res, err := Mutate(rng, "cov.p4", src, Config{Donor: donor, Ops: 3})
		if err != nil {
			continue
		}
		for _, op := range res.Ops {
			seen[op] = true
		}
	}
	for _, o := range operators {
		if !seen[o.name] {
			t.Errorf("operator %q never fired in 300 seeds", o.name)
		}
	}
}

// TestMutateRejectsBadInput: unparseable seeds and unresolvable lattice
// specs are errors, not panics.
func TestMutateRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Mutate(rng, "bad.p4", "not a program", Config{}); err == nil {
		t.Error("unparseable seed accepted")
	}
	src := gen.Random(rng, gen.DefaultConfig())
	if _, err := Mutate(rng, "bad.p4", src, Config{Lattice: "chain:x"}); err == nil {
		t.Error("unresolvable lattice spec accepted")
	}
}

// TestMutateRelabelCrossesLattice: against chain-4, relabeling a two-point
// seed (labels low/high, which alias L0/L3) eventually introduces an
// intermediate label no two-point program can carry — the mechanism behind
// the taller-lattice campaign reaching new finding classes.
func TestMutateRelabelCrossesLattice(t *testing.T) {
	lat, _ := lattice.ByName("chain:4")
	src := gen.Random(rand.New(rand.NewSource(3)), gen.Config{MaxDepth: 2, MaxStmts: 3, NumFields: 2})
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		rng := rand.New(rand.NewSource(seed))
		res, err := Mutate(rng, "x.p4", src, Config{Lattice: "chain:4", Ops: 3})
		if err != nil {
			continue
		}
		prog := mustValid(t, "x.p4", res.Source, lat)
		for _, st := range collect(prog).secs {
			if st.Label == "L1" || st.Label == "L2" {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("50 mutation draws against chain-4 never introduced an intermediate label")
	}
}
