// Package mutate is the coverage-guided half of the fuzzing loop: an
// AST-level mutator that turns persisted corpus findings (and any other
// parsed seed program) into new, semantically-aware variants. Where
// gen.Random samples the program space blindly, Mutate perturbs programs
// that already proved interesting — the classic corpus-as-seed-pool
// workflow — while staying inside the frontend's validity envelope.
//
// Mutation operators, each applied at a random admissible site:
//
//   - relabel: replace one security annotation with a different element of
//     the campaign lattice (raising, lowering, or moving sideways to an
//     incomparable element — the two-point special cases are flip ops);
//   - swap-op: swap a comparison, bitwise/arithmetic, or boolean operator
//     within its class, so the expression's type is preserved;
//   - perturb-lit: re-randomize an integer literal (within its width) or
//     flip a boolean literal;
//   - clone-perturb: deep-copy a statement, perturb the copy, and insert
//     it next to the original;
//   - wrap-if: wrap a statement in a conditional guarded by an expression
//     borrowed from the program (an existing guard, or `lval > k`),
//     creating fresh implicit-flow pressure;
//   - splice: graft a guard or a whole statement from a donor seed
//     (Config.Donor) into the program — crossover between corpus entries;
//   - drop-stmt: delete one statement.
//
// Every returned mutant is guaranteed to parse, to resolve under the
// campaign lattice, to pass the baseline (label-insensitive) checker, and
// to differ from its parent's canonical print — no identity mutations.
// The guarantee is enforced by verification, not hope: Mutate retries with
// fresh operator draws until a valid distinct mutant appears or the retry
// budget is exhausted (then it errors, and callers fall back to fresh
// generation). IFC acceptance is deliberately NOT guaranteed; rejections
// are what the differential campaign is after.
package mutate

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/basecheck"
	"repro/internal/diag"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/resolve"
	"repro/internal/token"
)

// Config configures one mutation.
type Config struct {
	// Lattice is the campaign lattice spec (gen.Config.Lattice syntax;
	// "" = two-point). Relabel draws annotations from its elements, and
	// mutants must resolve under it.
	Lattice string
	// Donor is an optional second seed program; when set, splice operators
	// (guard and statement crossover) join the operator mix. A donor that
	// fails to parse is ignored rather than fatal — the corpus may hold
	// parser-disagreement entries whose value is exactly that they are
	// strange.
	Donor string
	// Ops bounds how many operators are applied per mutant: each attempt
	// applies 1 + rng.Intn(Ops) of them (default 2, so most mutants are
	// one or two edits from their parent — small steps keep the search
	// local to what made the seed interesting).
	Ops int
	// Retries bounds attempts to find a valid, distinct mutant
	// (default 16).
	Retries int
}

// Result is one successful mutation.
type Result struct {
	// Source is the mutant, printed canonically (ast.Print form).
	Source string
	// Ops names the operators applied, in order, for logs and triage.
	Ops []string
}

// Mutate parses src and returns a mutated variant per the package
// contract. It errors if src does not parse, the lattice spec is
// unresolvable, or no valid distinct mutant appears within the retry
// budget.
func Mutate(rng *rand.Rand, file, src string, cfg Config) (Result, error) {
	lat, err := gen.Config{Lattice: cfg.Lattice}.ResolveLattice()
	if err != nil {
		return Result{}, fmt.Errorf("mutate: %w", err)
	}
	parent, err := parser.Parse(file, src)
	if err != nil {
		return Result{}, fmt.Errorf("mutate: seed does not parse: %w", err)
	}
	canon := ast.Print(parent)
	ops := cfg.Ops
	if ops <= 0 {
		ops = 2
	}
	retries := cfg.Retries
	if retries <= 0 {
		retries = 16
	}
	var donor *ast.Program
	if cfg.Donor != "" {
		donor, _ = parser.Parse(file+"#donor", cfg.Donor)
	}

	for attempt := 0; attempt < retries; attempt++ {
		// Each attempt mutates a fresh parse of the seed, so rejected
		// candidates leave no residue.
		prog := parser.MustParse(file, canon)
		m := &mutator{rng: rng, lat: lat, donor: donor}
		applied := m.apply(prog, 1+rng.Intn(ops))
		if len(applied) == 0 {
			continue
		}
		out := ast.Print(prog)
		if out == canon || !valid(file, out, lat) {
			continue
		}
		return Result{Source: out, Ops: applied}, nil
	}
	return Result{}, fmt.Errorf("mutate: no valid mutant of %s within %d attempts", file, retries)
}

// valid is the mutant admission predicate: parse, resolve under lat, and
// base-check. Base-checking matters operationally — the campaign engine
// classifies base-check failures as generator bugs (implementation
// defects), so an undeclared-identifier graft must die here, not there.
func valid(file, src string, lat lattice.Lattice) bool {
	prog, err := parser.Parse(file, src)
	if err != nil {
		return false
	}
	var diags diag.List
	resolve.New(lat, &diags).CollectTypeDecls(prog)
	if diags.Err() != nil {
		return false
	}
	return basecheck.Check(prog).OK
}

// mutator holds one attempt's state.
type mutator struct {
	rng   *rand.Rand
	lat   lattice.Lattice
	donor *ast.Program
}

// op is one mutation operator; it reports whether it found an admissible
// site and mutated it.
type op struct {
	name string
	fn   func(*mutator, *ast.Program, *sites) bool
}

var operators = []op{
	{"relabel", (*mutator).relabel},
	{"swap-op", (*mutator).swapOp},
	{"perturb-lit", (*mutator).perturbLit},
	{"clone-perturb", (*mutator).clonePerturb},
	{"wrap-if", (*mutator).wrapIf},
	{"splice", (*mutator).splice},
	{"drop-stmt", (*mutator).dropStmt},
}

// apply applies up to n operators to prog, re-collecting sites after each
// (an inserted statement is itself a site for the next operator). For each
// application the operator order is shuffled and tried until one finds a
// site, so apply only fails on programs with no mutable structure at all.
func (m *mutator) apply(prog *ast.Program, n int) []string {
	var applied []string
	for i := 0; i < n; i++ {
		s := collect(prog)
		order := m.rng.Perm(len(operators))
		done := false
		for _, oi := range order {
			o := operators[oi]
			if o.fn(m, prog, s) {
				applied = append(applied, o.name)
				done = true
				break
			}
		}
		if !done {
			break
		}
	}
	return applied
}

// ---------------------------------------------------------------------------
// Operators

// relabel rewrites one security annotation to a different lattice element.
func (m *mutator) relabel(_ *ast.Program, s *sites) bool {
	if len(s.secs) == 0 {
		return false
	}
	st := s.secs[m.rng.Intn(len(s.secs))]
	elems := m.lat.Elements()
	// Resolve the current label (aliases included) so "pick different"
	// means semantically different, not just a different spelling.
	cur, known := m.lat.Lookup(st.Label)
	if st.Label == "" {
		cur, known = m.lat.Bottom(), true
	}
	var cands []lattice.Label
	for _, e := range elems {
		if !known || e != cur {
			cands = append(cands, e)
		}
	}
	if len(cands) == 0 {
		return false
	}
	st.Label = cands[m.rng.Intn(len(cands))].Name()
	return true
}

// opClasses groups operators whose swap preserves the expression's base
// type (and avoids division — a zero divisor would turn a mutant into a
// runtime-error finding against the interpreter, which the campaign counts
// as a defect).
var opClasses = [][]token.Kind{
	{token.EQ, token.NEQ, token.LT, token.GT, token.LEQ, token.GEQ},
	{token.PLUS, token.MINUS, token.AMP, token.PIPE, token.CARET},
	{token.AND, token.OR},
}

func opClass(k token.Kind) []token.Kind {
	for _, c := range opClasses {
		for _, o := range c {
			if o == k {
				return c
			}
		}
	}
	return nil
}

// swapOp swaps one binary operator within its class.
func (m *mutator) swapOp(_ *ast.Program, s *sites) bool {
	var cands []*ast.Binary
	for _, b := range s.bins {
		if opClass(b.Op) != nil {
			cands = append(cands, b)
		}
	}
	if len(cands) == 0 {
		return false
	}
	b := cands[m.rng.Intn(len(cands))]
	class := opClass(b.Op)
	next := class[m.rng.Intn(len(class))]
	for next == b.Op {
		next = class[m.rng.Intn(len(class))]
	}
	b.Op = next
	return true
}

// perturbLit re-randomizes one literal, always to a different value.
func (m *mutator) perturbLit(_ *ast.Program, s *sites) bool {
	total := len(s.ints) + len(s.bools)
	if total == 0 {
		return false
	}
	i := m.rng.Intn(total)
	if i < len(s.ints) {
		lit := s.ints[i]
		bound := uint64(256)
		if lit.HasWidth && lit.Width < 8 {
			bound = 1 << lit.Width
		}
		next := uint64(m.rng.Intn(int(bound)))
		for next == lit.Val {
			next = uint64(m.rng.Intn(int(bound)))
		}
		lit.Val = next
		return true
	}
	b := s.bools[i-len(s.ints)]
	b.Val = !b.Val
	return true
}

// clonePerturb duplicates one statement and perturbs the copy in place.
// Declarations are skipped (a duplicate declaration never base-checks).
func (m *mutator) clonePerturb(_ *ast.Program, s *sites) bool {
	type slot struct {
		b *ast.BlockStmt
		i int
	}
	var cands []slot
	for _, b := range s.blocks {
		for i, st := range b.Stmts {
			if _, isDecl := st.(*ast.DeclStmt); !isDecl {
				cands = append(cands, slot{b, i})
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := cands[m.rng.Intn(len(cands))]
	clone := copyStmt(c.b.Stmts[c.i])
	// Perturb inside the clone; a pure duplicate is still a mutation (the
	// program text changed), so a site-less clone is fine.
	cs := &sites{}
	cs.stmt(clone)
	if !m.swapOp(nil, cs) && !m.perturbLit(nil, cs) {
		m.relabel(nil, cs)
	}
	c.b.Stmts = append(c.b.Stmts[:c.i+1], append([]ast.Stmt{clone}, c.b.Stmts[c.i+1:]...)...)
	return true
}

// guardExpr builds a boolean guard from material already in the program:
// a copied existing condition, or `lval > k` over a copied assignment LHS.
func (m *mutator) guardExpr(s *sites) ast.Expr {
	switch {
	case len(s.conds) > 0 && (len(s.lvals) == 0 || m.rng.Intn(2) == 0):
		return copyExpr(s.conds[m.rng.Intn(len(s.conds))])
	case len(s.lvals) > 0:
		return &ast.Binary{
			Op: token.GT,
			X:  copyExpr(s.lvals[m.rng.Intn(len(s.lvals))]),
			Y:  &ast.IntLit{Val: uint64(m.rng.Intn(16))},
		}
	default:
		return nil
	}
}

// wrapIf guards one statement with a fresh conditional.
func (m *mutator) wrapIf(_ *ast.Program, s *sites) bool {
	guard := m.guardExpr(s)
	if guard == nil {
		return false
	}
	var cands []*ast.BlockStmt
	for _, b := range s.blocks {
		if len(b.Stmts) > 0 {
			cands = append(cands, b)
		}
	}
	if len(cands) == 0 {
		return false
	}
	b := cands[m.rng.Intn(len(cands))]
	i := m.rng.Intn(len(b.Stmts))
	if _, isDecl := b.Stmts[i].(*ast.DeclStmt); isDecl {
		return false // hiding a declaration inside an if breaks later uses
	}
	b.Stmts[i] = &ast.IfStmt{
		Cond: guard,
		Then: &ast.BlockStmt{Stmts: []ast.Stmt{b.Stmts[i]}},
	}
	return true
}

// splice grafts donor material: either a donor guard replaces one of the
// program's guards, or a donor statement is inserted into a block. The
// admission predicate rejects grafts that reference structure the target
// program lacks.
func (m *mutator) splice(_ *ast.Program, s *sites) bool {
	if m.donor == nil {
		return false
	}
	ds := collect(m.donor)
	if len(ds.conds) > 0 && len(s.ifs) > 0 && m.rng.Intn(2) == 0 {
		s.ifs[m.rng.Intn(len(s.ifs))].Cond = copyExpr(ds.conds[m.rng.Intn(len(ds.conds))])
		return true
	}
	var cands []ast.Stmt
	for _, b := range ds.blocks {
		for _, st := range b.Stmts {
			if _, isDecl := st.(*ast.DeclStmt); !isDecl {
				cands = append(cands, st)
			}
		}
	}
	if len(cands) == 0 || len(s.blocks) == 0 {
		return false
	}
	b := s.blocks[m.rng.Intn(len(s.blocks))]
	i := m.rng.Intn(len(b.Stmts) + 1)
	clone := copyStmt(cands[m.rng.Intn(len(cands))])
	b.Stmts = append(b.Stmts[:i], append([]ast.Stmt{clone}, b.Stmts[i:]...)...)
	return true
}

// dropStmt deletes one statement from a block with at least two, so the
// program keeps a body.
func (m *mutator) dropStmt(_ *ast.Program, s *sites) bool {
	var cands []*ast.BlockStmt
	for _, b := range s.blocks {
		if len(b.Stmts) >= 2 {
			cands = append(cands, b)
		}
	}
	if len(cands) == 0 {
		return false
	}
	b := cands[m.rng.Intn(len(cands))]
	i := m.rng.Intn(len(b.Stmts))
	b.Stmts = append(b.Stmts[:i], b.Stmts[i+1:]...)
	return true
}
