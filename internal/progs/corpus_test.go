package progs_test

import (
	"testing"

	"repro/internal/basecheck"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/progs"
)

// tallerLattices returns lattices strictly taller than the one a program
// is annotated against but compatible with its label names: chain lattices
// alias low/high to their bottom/top, and NParty keeps A/B/bot/top while
// adding parties. The paper's verdicts must be stable under such
// embeddings — only the relative order of the labels a program mentions
// matters.
func tallerLattices(t *testing.T, p *progs.Program) map[string]lattice.Lattice {
	switch p.LatticeName {
	case "two-point":
		return map[string]lattice.Lattice{
			"chain-4": lattice.Chain(4),
			"chain-8": lattice.Chain(8),
		}
	case "diamond":
		return map[string]lattice.Lattice{
			"3-party": lattice.NParty("A", "B", "C"),
		}
	default:
		t.Fatalf("%s: unexpected lattice %q", p.Name, p.LatticeName)
		return nil
	}
}

// TestCorpusMatrix locks in the accept/reject matrix for every embedded
// case study, under both the program's own lattice and taller ones:
//
//   - buggy variants are rejected by P4BID, with at least one typing rule
//     cited, but accepted by the baseline checker (the leak is a flow
//     property, not a type error);
//   - fixed variants are accepted by both;
//   - unannotated variants are accepted by the baseline checker.
func TestCorpusMatrix(t *testing.T) {
	for _, p := range progs.All() {
		lats := tallerLattices(t, p)
		lats[p.LatticeName] = p.Lattice()
		for latName, lat := range lats {
			t.Run(p.Name+"/"+latName, func(t *testing.T) {
				buggy := parser.MustParse(p.FileName(progs.Buggy), p.Source(progs.Buggy))
				fixed := parser.MustParse(p.FileName(progs.Fixed), p.Source(progs.Fixed))

				if res := core.Check(buggy, lat); res.OK {
					t.Errorf("buggy variant accepted by P4BID under %s", latName)
				} else {
					cited := false
					for _, d := range res.Diags {
						if d.Rule != "" {
							cited = true
							break
						}
					}
					if !cited {
						t.Errorf("buggy rejection cites no typing rule under %s", latName)
					}
				}
				if res := basecheck.Check(buggy); !res.OK {
					t.Errorf("buggy variant rejected by the baseline checker: %v", res.Err())
				}
				if res := core.Check(fixed, lat); !res.OK {
					t.Errorf("fixed variant rejected by P4BID under %s: %v", latName, res.Err())
				}
				if res := basecheck.Check(fixed); !res.OK {
					t.Errorf("fixed variant rejected by the baseline checker: %v", res.Err())
				}
			})
		}
	}
}

// TestCorpusUnannotated checks the Table 1 baseline inputs: stripping
// annotations yields programs the baseline checker accepts, and the IFC
// checker also accepts them trivially (every label defaults to bottom).
func TestCorpusUnannotated(t *testing.T) {
	for _, p := range progs.All() {
		t.Run(p.Name, func(t *testing.T) {
			src := p.Source(progs.Unannotated)
			prog := parser.MustParse(p.FileName(progs.Unannotated), src)
			if res := basecheck.Check(prog); !res.OK {
				t.Errorf("unannotated variant rejected by the baseline checker: %v", res.Err())
			}
			if res := core.Check(prog, p.Lattice()); !res.OK {
				t.Errorf("unannotated variant rejected by P4BID: %v", res.Err())
			}
		})
	}
}
