// Package progs contains the paper's case-study programs (Section 5),
// embedded as source in the P4 subset accepted by the frontend. Each case
// study comes in three variants:
//
//   - Buggy: the insecure program from the paper's listing, rejected by the
//     P4BID checker;
//   - Fixed: the repaired program the paper describes, accepted by the
//     checker;
//   - Unannotated: the Fixed program with all security annotations
//     stripped, used as the baseline input for Table 1's "Unannotated,
//     p4c" column.
//
// The five named programs match Table 1's rows: D2R, App, Lattice,
// Topology, and Cache. NetChain (mentioned in Section 5.1) is included as
// a sixth case study.
package progs

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/lattice"
)

// Variant selects one of the three versions of a case study.
type Variant int

// Variants.
const (
	Buggy Variant = iota
	Fixed
	Unannotated
)

// String renders the variant name.
func (v Variant) String() string {
	switch v {
	case Buggy:
		return "buggy"
	case Fixed:
		return "fixed"
	default:
		return "unannotated"
	}
}

// Program is one case study.
type Program struct {
	// Name is the Table 1 row name (e.g. "D2R").
	Name string
	// Property is the security property the case study demonstrates.
	Property string
	// LatticeName names the lattice the program is checked under
	// ("two-point" or "diamond").
	LatticeName string
	buggy       string
	fixed       string
}

// Lattice returns the lattice the program is annotated against.
func (p *Program) Lattice() lattice.Lattice {
	l, err := lattice.ByName(p.LatticeName)
	if err != nil {
		panic(err)
	}
	return l
}

// Source returns the program text for the given variant.
func (p *Program) Source(v Variant) string {
	switch v {
	case Buggy:
		return p.buggy
	case Fixed:
		return p.fixed
	default:
		return StripAnnotations(p.fixed)
	}
}

// FileName returns a synthetic file name for diagnostics.
func (p *Program) FileName(v Variant) string {
	return strings.ToLower(p.Name) + "_" + v.String() + ".p4"
}

var (
	annRe = regexp.MustCompile(`<\s*([A-Za-z_]\w*(?:\s*<\s*\d+\s*>)?)\s*,\s*[A-Za-z_]\w*\s*>`)
	pcRe  = regexp.MustCompile(`@pc\(\s*[A-Za-z_]\w*\s*\)\s*`)
)

// StripAnnotations removes every <τ, χ> security annotation (keeping τ) and
// every @pc(...) control annotation from src, producing the plain-P4
// program a stock compiler would see.
func StripAnnotations(src string) string {
	out := annRe.ReplaceAllString(src, "$1")
	out = pcRe.ReplaceAllString(out, "")
	return out
}

// All returns the case studies in Table 1 order, followed by NetChain and
// the register-based Stateful extension.
func All() []*Program {
	return []*Program{D2R(), App(), Lattice(), Topology(), Cache(), NetChain(), Stateful()}
}

// ByName returns the case study with the given (case-insensitive) name.
func ByName(name string) (*Program, bool) {
	for _, p := range All() {
		if strings.EqualFold(p.Name, name) {
			return p, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Topology — Listings 1 and 2: virtual-to-physical address translation.
// The buggy program stores the private physical TTL in the public ipv4
// header; the fix stores it in the local (high) header.

// Topology returns the Listing 1/2 case study.
func Topology() *Program {
	const common = `
header local_hdr_t {
    <bit<32>, high> phys_dstAddr;
    <bit<8>, high> phys_ttl;
    <bit<48>, high> next_hop_MAC_addr;
}
header ipv4_t {
    <bit<8>, low> ttl;
    <bit<8>, low> protocol;
    <bit<32>, low> srcAddr;
    <bit<32>, low> dstAddr;
}
header eth_t {
    <bit<48>, low> srcAddr;
    <bit<48>, low> dstAddr;
}
struct headers {
    ipv4_t ipv4;
    eth_t eth;
    local_hdr_t local_hdr;
}
control Obfuscate_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action update_to_phys(<bit<32>, high> phys_dstAddr, <bit<8>, high> phys_ttl) {
        hdr.local_hdr.phys_dstAddr = phys_dstAddr;
        %s
    }
    table virtual2phys_topology {
        key = { hdr.ipv4.dstAddr: exact; }
        actions = { update_to_phys; }
    }
    action ipv4_forward(<bit<48>, low> dstAddr, <bit<9>, low> port) {
        hdr.eth.dstAddr = dstAddr;
        standard_metadata.egress_spec = port;
    }
    action drop() {
        mark_to_drop(standard_metadata);
    }
    table ipv4_lpm_forward {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { ipv4_forward; drop; }
    }
    apply {
        virtual2phys_topology.apply();
        ipv4_lpm_forward.apply();
    }
}
`
	return &Program{
		Name:        "Topology",
		Property:    "confidentiality: local-network details must not leak into public headers",
		LatticeName: "two-point",
		buggy:       fmt.Sprintf(common, "hdr.ipv4.ttl = phys_ttl; // BUG: low <- high"),
		fixed:       fmt.Sprintf(common, "hdr.local_hdr.phys_ttl = phys_ttl; // FIX: high <- high"),
	}
}

// ---------------------------------------------------------------------------
// D2R — Listing 3: dataplane routing with failure-based priorities.
// Counting failures uses the secret num_hops; prioritizing on it leaks.

// D2R returns the Listing 3 case study.
func D2R() *Program {
	const tmpl = `
header bfs_t {
    <bit<32>, low> curr;
    <bit<32>, low> tried_links;
    <bit<32>, high> num_hops;
    <bit<32>, low> next_node;
}
header ipv4_t {
    <bit<3>, low> priority;
    <bit<32>, low> dstAddr;
    <bit<8>, low> ttl;
}
struct headers {
    bfs_t bfs;
    ipv4_t ipv4;
}
const <bit<32>, low> THRESHOLD = 4;
const <bit<3>, low> PRIO_1 = 1;
const <bit<3>, low> PRIO_2 = 2;
control D2R_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    function <bit<32>, low> num_bits_set(in <bit<32>, low> v) {
        <bit<32>, low> c = 0;
        c = c + (v & 1);
        c = c + ((v >> 1) & 1);
        c = c + ((v >> 2) & 1);
        c = c + ((v >> 3) & 1);
        c = c + ((v >> 4) & 1);
        c = c + ((v >> 5) & 1);
        c = c + ((v >> 6) & 1);
        c = c + ((v >> 7) & 1);
        return c;
    }
    <bit<32>, %[1]s> failures = num_bits_set(hdr.bfs.tried_links)%[2]s;
    action forwarding(in <bit<32>, %[1]s> fails) {
        if (fails >= THRESHOLD) {
            hdr.ipv4.priority = PRIO_1;
        } else {
            hdr.ipv4.priority = PRIO_2;
        }
        standard_metadata.egress_spec = 1;
    }
    action bfs_step_act(<bit<32>, low> next) {
        hdr.bfs.curr = next;
        hdr.bfs.tried_links = hdr.bfs.tried_links | next;
    }
    table bfs_step {
        key = { hdr.bfs.curr: exact; hdr.bfs.tried_links: ternary; }
        actions = { bfs_step_act; NoAction; }
    }
    table forward {
        key = { hdr.bfs.next_node: exact; }
        actions = { forwarding(failures); NoAction; }
    }
    apply {
        if (hdr.bfs.curr != hdr.ipv4.dstAddr) {
            bfs_step.apply();
        } else {
            forward.apply();
        }
        if (hdr.bfs.curr != hdr.ipv4.dstAddr) {
            bfs_step.apply();
        } else {
            forward.apply();
        }
        if (hdr.bfs.curr != hdr.ipv4.dstAddr) {
            bfs_step.apply();
        } else {
            forward.apply();
        }
        if (hdr.bfs.curr != hdr.ipv4.dstAddr) {
            bfs_step.apply();
        } else {
            forward.apply();
        }
    }
}
`
	return &Program{
		Name:        "D2R",
		Property:    "confidentiality: link-failure counts derived from secret hop counts must not set public priorities",
		LatticeName: "two-point",
		// Buggy: failures depends on the high num_hops and is high; the
		// forwarding action branches on it and writes the low priority.
		buggy: fmt.Sprintf(tmpl, "high", " - hdr.bfs.num_hops"),
		// Fixed: priority is derived only from the public tried-links
		// count (Section 5.1's proposed remedy).
		fixed: fmt.Sprintf(tmpl, "low", ""),
	}
}

// ---------------------------------------------------------------------------
// Cache — Listing 4: in-network caching with a timing side channel.
// The hit/miss bit models what a timing adversary observes; keying the
// cache table on a secret query leaks through it.

// Cache returns the Listing 4 case study.
func Cache() *Program {
	const tmpl = `
header request_t {
    <bit<8>, high> query;
}
header response_t {
    <bool, %[1]s> hit;
    <bit<32>, %[1]s> value;
}
header eth_t {
    <bit<48>, low> srcAddr;
    <bit<48>, low> dstAddr;
}
struct headers {
    request_t req;
    response_t resp;
    eth_t eth;
}
control Cache_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action cache_hit(<bit<32>, %[1]s> value) {
        hdr.resp.value = value;
        hdr.resp.hit = true;
    }
    action cache_miss() {
        hdr.resp.hit = false;
    }
    table fetch_from_cache {
        key = { hdr.req.query: exact; }
        actions = { cache_hit; cache_miss; }
    }
    apply {
        fetch_from_cache.apply();
    }
}
`
	return &Program{
		Name:        "Cache",
		Property:    "timing: whether a secret query hit the cache must not be observable",
		LatticeName: "two-point",
		// Buggy: the adversary-visible hit bit (low) is written by actions
		// selected by the secret query key.
		buggy: fmt.Sprintf(tmpl, "low"),
		// Fixed: the response fields are high — the timing observation is
		// confined to observers cleared for the query.
		fixed: fmt.Sprintf(tmpl, "high"),
	}
}

// ---------------------------------------------------------------------------
// App — Listing 5: resource allocation at a gateway switch (integrity).
// high = untrusted, low = trusted. Setting the trusted priority from the
// client-controlled appID is an integrity violation.

// App returns the Listing 5 case study.
func App() *Program {
	const tmpl = `
header app_t {
    <bit<8>, high> appID;
}
header ipv4_t {
    <bit<32>, low> dstAddr;
    <bit<3>, low> priority;
    <bit<8>, low> ttl;
}
struct headers {
    app_t app;
    ipv4_t ipv4;
}
control App_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action set_priority(<bit<3>, low> prio) {
        hdr.ipv4.priority = prio;
    }
    action forward(<bit<9>, low> port) {
        standard_metadata.egress_spec = port;
    }
    table app_resources {
        key = { %s: exact; }
        actions = { set_priority; }
    }
    table ipv4_forward_tbl {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { forward; NoAction; }
    }
    apply {
        app_resources.apply();
        ipv4_forward_tbl.apply();
    }
}
`
	return &Program{
		Name:        "App",
		Property:    "integrity: untrusted client appID must not determine the trusted priority",
		LatticeName: "two-point",
		buggy:       fmt.Sprintf(tmpl, "hdr.app.appID"),
		fixed:       fmt.Sprintf(tmpl, "hdr.ipv4.dstAddr"),
	}
}

// ---------------------------------------------------------------------------
// Lattice — Listings 6 and 7: network isolation under the diamond lattice.
// Alice's control is checked at pc = A, Bob's at pc = B. The buggy Alice
// writes Bob's field and keys on the write-only telemetry header.

// Lattice returns the Listing 6/7 case study.
func Lattice() *Program {
	const bob = `
@pc(B)
control Bob_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action set_by_bob() {
        hdr.telem.count = hdr.telem.count + 1;
    }
    table update_by_bob {
        key = { hdr.eth.dstAddr: exact; }
        actions = { set_by_bob; NoAction; }
    }
    apply {
        update_by_bob.apply();
    }
}
`
	const hdrs = `
header alice_t {
    <bit<32>, A> data;
    <bit<32>, A> extra;
}
header bob_t {
    <bit<32>, B> data;
    <bit<32>, B> extra;
}
header telem_t {
    <bit<32>, top> count;
}
header eth_t {
    <bit<48>, bot> srcAddr;
    <bit<48>, bot> dstAddr;
}
struct headers {
    alice_t alice_data;
    bob_t bob_data;
    telem_t telem;
    eth_t eth;
}
`
	buggyAlice := `
@pc(A)
control Alice_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action set_by_alice(<bit<32>, A> value) {
        hdr.bob_data.data = value;
    }
    table update_by_alice {
        key = { hdr.telem.count: exact; }
        actions = { set_by_alice; }
    }
    apply {
        update_by_alice.apply();
    }
}
`
	fixedAlice := `
@pc(A)
control Alice_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action set_by_alice(<bit<32>, A> value) {
        hdr.alice_data.data = value;
    }
    table update_by_alice {
        key = { hdr.alice_data.extra: exact; }
        actions = { set_by_alice; }
    }
    apply {
        update_by_alice.apply();
    }
}
`
	return &Program{
		Name:        "Lattice",
		Property:    "isolation: Alice and Bob touch only their own fields; telemetry is write-only for both",
		LatticeName: "diamond",
		buggy:       hdrs + buggyAlice + bob,
		fixed:       hdrs + fixedAlice + bob,
	}
}

// ---------------------------------------------------------------------------
// NetChain — Section 5.1: chain replication roles. Branching on a secret
// role field to decide whether to reply leaks topology information.

// NetChain returns the NetChain case study.
func NetChain() *Program {
	const tmpl = `
header nc_hdr_t {
    <bit<16>, %[1]s> role;
    <bit<32>, low> keyfield;
    <bit<32>, low> value;
    <bit<8>, low> reply;
}
struct headers {
    nc_hdr_t nc;
}
const <bit<16>, low> ROLE_HEAD = 1;
const <bit<16>, low> ROLE_TAIL = 3;
control NetChain_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        if (hdr.nc.role == ROLE_HEAD) {
            hdr.nc.reply = 0;
        } else {
            if (hdr.nc.role == ROLE_TAIL) {
                hdr.nc.reply = 1;
                standard_metadata.egress_spec = 1;
            }
        }
    }
}
`
	return &Program{
		Name:        "NetChain",
		Property:    "confidentiality: secret chain roles must not determine publicly visible replies",
		LatticeName: "two-point",
		buggy:       fmt.Sprintf(tmpl, "high"),
		fixed:       fmt.Sprintf(tmpl, "low"),
	}
}
