package progs

import "fmt"

// Stateful returns the register extension case study (the paper's
// Section 7 future work: "switches that can maintain internal state ...
// could lead to security leaks if an adversary can observe sequences of
// input and output packets").
//
// A flow counter keeps per-slot packet counts in a register array that
// persists across packets. In the buggy variant the counters are public
// but indexed by the secret flow id: rule T-Index rejects the secret
// index into low-labelled storage, and a multi-packet experiment finds a
// real witness — an earlier packet's secret id changes a later packet's
// public count. The fixed variant keeps secret-indexed state in high
// registers and derives public counts only from public indices.
func Stateful() *Program {
	const hdrs = `
header pkt_t {
    <bit<8>, high> secret_id;
    <bit<8>, low> public_id;
    <bit<8>, low> seen_count;
}
struct headers { pkt_t pkt; }
`
	buggy := hdrs + `
control Stateful_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    register <bit<8>, low> counters[16];
    apply {
        counters[hdr.pkt.secret_id & 15] = counters[hdr.pkt.secret_id & 15] + 1;
        hdr.pkt.seen_count = counters[hdr.pkt.public_id & 15];
    }
}
`
	fixed := hdrs + `
control Stateful_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    register <bit<8>, high> secret_counters[16];
    register <bit<8>, low> public_counters[16];
    apply {
        secret_counters[hdr.pkt.secret_id & 15] = secret_counters[hdr.pkt.secret_id & 15] + 1;
        public_counters[hdr.pkt.public_id & 15] = public_counters[hdr.pkt.public_id & 15] + 1;
        hdr.pkt.seen_count = public_counters[hdr.pkt.public_id & 15];
    }
}
`
	return &Program{
		Name:        "Stateful",
		Property:    "multi-packet confidentiality: persistent register state indexed by secrets must not feed public outputs",
		LatticeName: "two-point",
		buggy:       buggy,
		fixed:       fixed,
	}
}

func init() {
	// Validate at package load that the sources stay in sync with the
	// annotation stripper (cheap sanity check).
	if StripAnnotations(Stateful().fixed) == Stateful().fixed {
		panic(fmt.Sprintf("progs: Stateful fixed variant has no annotations to strip"))
	}
}
