package progs

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

func TestAllProgramsParse(t *testing.T) {
	for _, p := range All() {
		for _, v := range []Variant{Buggy, Fixed, Unannotated} {
			src := p.Source(v)
			if _, err := parser.Parse(p.FileName(v), src); err != nil {
				t.Errorf("%s/%s does not parse: %v", p.Name, v, err)
			}
		}
	}
}

func TestTable1RowsPresent(t *testing.T) {
	want := []string{"D2R", "App", "Lattice", "Topology", "Cache"}
	for _, name := range want {
		if _, ok := ByName(name); !ok {
			t.Errorf("Table 1 row %q missing", name)
		}
	}
	if _, ok := ByName("NetChain"); !ok {
		t.Error("NetChain case study missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("phantom case study found")
	}
	// Case-insensitive lookup.
	if _, ok := ByName("d2r"); !ok {
		t.Error("case-insensitive lookup failed")
	}
}

func TestVariantsDiffer(t *testing.T) {
	for _, p := range All() {
		if p.Source(Buggy) == p.Source(Fixed) {
			t.Errorf("%s: buggy and fixed variants are identical", p.Name)
		}
		if p.Source(Unannotated) == p.Source(Fixed) {
			t.Errorf("%s: unannotated variant still annotated", p.Name)
		}
	}
}

func TestUnannotatedHasNoAnnotations(t *testing.T) {
	for _, p := range All() {
		src := p.Source(Unannotated)
		if strings.Contains(src, "@pc") {
			t.Errorf("%s unannotated retains @pc", p.Name)
		}
		for _, lbl := range []string{", low>", ", high>", ", A>", ", B>", ", top>", ", bot>"} {
			if strings.Contains(src, lbl) {
				t.Errorf("%s unannotated retains %q", p.Name, lbl)
			}
		}
	}
}

func TestStripAnnotationsPreservesTypes(t *testing.T) {
	cases := map[string]string{
		"<bit<32>, high> x;":    "bit<32> x;",
		"<bool, low> b;":        "bool b;",
		"< bit<8> , A > y;":     "bit<8> y;",
		"in <bit<9>, low> port": "in bit<9> port",
		"a < b":                 "a < b",  // comparisons untouched
		"x << 2":                "x << 2", // shifts untouched
		"bit<32> plain;":        "bit<32> plain;",
	}
	for in, want := range cases {
		if got := StripAnnotations(in); got != want {
			t.Errorf("Strip(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLatticeNames(t *testing.T) {
	for _, p := range All() {
		lat := p.Lattice()
		if p.Name == "Lattice" {
			if lat.Name() != "diamond" {
				t.Errorf("Lattice case study uses %s", lat.Name())
			}
		} else if lat.Name() != "two-point" {
			t.Errorf("%s uses %s, want two-point", p.Name, lat.Name())
		}
	}
}

func TestProperties(t *testing.T) {
	for _, p := range All() {
		if p.Property == "" {
			t.Errorf("%s has no property description", p.Name)
		}
	}
}

func TestVariantString(t *testing.T) {
	if Buggy.String() != "buggy" || Fixed.String() != "fixed" || Unannotated.String() != "unannotated" {
		t.Error("variant names wrong")
	}
}
