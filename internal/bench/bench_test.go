package bench

import (
	"strings"
	"testing"
)

func TestTable1Shape(t *testing.T) {
	rows := Table1(3)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 5 programs + average", len(rows))
	}
	order := []string{"D2R", "App", "Lattice", "Topology", "Cache", "Average"}
	for i, want := range order {
		if rows[i].Program != want {
			t.Errorf("row %d = %s, want %s", i, rows[i].Program, want)
		}
		if rows[i].BaseMs <= 0 || rows[i].P4BIDMs <= 0 {
			t.Errorf("row %s has non-positive timing", rows[i].Program)
		}
	}
	out := FormatTable1(rows)
	for _, want := range append(order, "Typechecking time") {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestMatrixReproducesPaper(t *testing.T) {
	rows := Matrix()
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.BuggyRejected {
			t.Errorf("%s: buggy variant not rejected", r.Program)
		}
		if !r.FixedAccepted {
			t.Errorf("%s: fixed variant not accepted", r.Program)
		}
		if len(r.RulesCited) == 0 {
			t.Errorf("%s: no rules cited", r.Program)
		}
		if r.FirstError == "" {
			t.Errorf("%s: no first error recorded", r.Program)
		}
	}
	out := FormatMatrix(rows)
	if !strings.Contains(out, "reject") || !strings.Contains(out, "accept") {
		t.Errorf("formatted matrix:\n%s", out)
	}
}

func TestScalingSweepsRun(t *testing.T) {
	size := ScalingBySize([]int{1, 2}, 1)
	if len(size) != 2 || size[1].SrcKB <= size[0].SrcKB {
		t.Errorf("size sweep: %+v", size)
	}
	lat := ScalingByLattice([]int{2, 4}, 1)
	if len(lat) != 2 || lat[0].P4BIDMs <= 0 {
		t.Errorf("lattice sweep: %+v", lat)
	}
	out := FormatScaling(size, lat)
	if !strings.Contains(out, "program size") || !strings.Contains(out, "lattice height") {
		t.Errorf("formatted scaling:\n%s", out)
	}
}
