package bench

import (
	"strings"
	"testing"
)

// smallExhaustOpts keeps the test fast: two narrow widths, full-space
// proofs still guaranteed by the default budget.
func smallExhaustOpts() ExhaustBenchOptions {
	return ExhaustBenchOptions{Seed: 3, Widths: []int{2, 4}}
}

func TestExhaustBenchDeterministicIdentity(t *testing.T) {
	a, err := ExhaustBench(smallExhaustOpts())
	if err != nil {
		t.Fatalf("ExhaustBench: %v", err)
	}
	b, err := ExhaustBench(smallExhaustOpts())
	if err != nil {
		t.Fatalf("ExhaustBench: %v", err)
	}
	if a.Schema != ExhaustBenchSchema {
		t.Fatalf("schema = %q, want %q", a.Schema, ExhaustBenchSchema)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(a.Rows))
	}
	for i, r := range a.Rows {
		w := smallExhaustOpts().Widths[i]
		if r.Verdict != "proved-secure" || !r.Total {
			t.Errorf("width %d: verdict %q total=%v, want a total proved-secure proof", w, r.Verdict, r.Total)
		}
		// bit<w> secret + the bool guard, times the 2-bit public field.
		want := uint64(1) << (w + 3)
		if r.Assignments != want {
			t.Errorf("width %d: %d assignments, want %d", w, r.Assignments, want)
		}
		if r.Assignments != b.Rows[i].Assignments || r.Verdict != b.Rows[i].Verdict {
			t.Errorf("width %d: two same-seed runs disagree on enumeration identity", w)
		}
	}
	if c := CompareExhaust(a, b); !c.OK() {
		t.Fatalf("self-comparison failed: %v", c.Failures)
	}
}

func TestCompareExhaustCatchesDrift(t *testing.T) {
	base, err := ExhaustBench(smallExhaustOpts())
	if err != nil {
		t.Fatalf("ExhaustBench: %v", err)
	}
	cur := *base
	cur.Rows = append([]ExhaustBenchRow(nil), base.Rows...)
	cur.Rows[0].Assignments++
	cur.Rows[1].Verdict = "inconclusive"
	c := CompareExhaust(base, &cur)
	if c.OK() || len(c.Failures) != 2 {
		t.Fatalf("drifted comparison: OK=%v failures=%v", c.OK(), c.Failures)
	}
	if !strings.Contains(c.Failures[0], "assignments") || !strings.Contains(c.Failures[1], "verdict drift") {
		t.Fatalf("unexpected failure texts: %v", c.Failures)
	}

	schema := *base
	schema.Schema = "p4bench/exhaust/v0"
	if c := CompareExhaust(base, &schema); c.OK() {
		t.Fatal("schema drift must fail the gate")
	}
}
