// Exhaustive-oracle throughput suite: the enumeration point of the
// cross-PR perf trajectory. One synthetic program per secret width runs
// under internal/exhaust with a budget that admits the full space, so
// every row measures a complete proof: the secret space is 2^width, the
// public space a fixed 2 bits, and the measured rate is assignments/sec
// over the compiled engine.
//
// The CI gate compares what is machine-portable — the schema, each row's
// verdict, and its exact assignment count (enumeration is deterministic:
// the same width and budget must enumerate the same space) — and treats
// absolute rates as advisory: a rate warning is telemetry, a verdict or
// count drift is a real semantic change and fails the gate outright.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/exhaust"
	"repro/internal/lattice"
	"repro/internal/ni"
	"repro/internal/parser"
)

// ExhaustBenchSchema versions BENCH_exhaust.json; bump it when the
// workload construction or row semantics change.
const ExhaustBenchSchema = "p4bench/exhaust/v1"

// ExhaustBenchOptions configures the suite. The zero value means
// defaults.
type ExhaustBenchOptions struct {
	// Seed seeds each width's enumeration (probe draws are unused in
	// total mode, but the seed is part of the deterministic contract).
	Seed int64
	// Widths lists the secret widths (bits) to sweep.
	Widths []int
	// Budget is the assignment ceiling handed to the oracle; it must
	// admit 2^(width+2) for the widest width or that row goes
	// inconclusive (the gate will catch it as a verdict drift).
	Budget uint64
}

func (o ExhaustBenchOptions) withDefaults() ExhaustBenchOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Widths) == 0 {
		o.Widths = []int{4, 8, 12, 16}
	}
	if o.Budget == 0 {
		o.Budget = 1 << 22
	}
	return o
}

// ExhaustBenchRow is one measured width cell.
type ExhaustBenchRow struct {
	// Width is the secret field's bit width; SecretSpace is 2^Width.
	Width       int    `json:"width"`
	SecretSpace uint64 `json:"secret_space"`
	// Verdict is the oracle's outcome string ("proved-secure" for every
	// row of a healthy run) and Total whether the whole input space was
	// enumerated; Assignments the exact number of enumerated assignments.
	Verdict     string `json:"verdict"`
	Total       bool   `json:"total"`
	Assignments uint64 `json:"assignments"`
	// ElapsedNS and AssignmentsPerSec are the measured (machine-local,
	// advisory) rate.
	ElapsedNS         int64   `json:"elapsed_ns"`
	AssignmentsPerSec float64 `json:"assignments_per_sec"`
}

// ExhaustBenchDoc is the schema-versioned content of BENCH_exhaust.json.
type ExhaustBenchDoc struct {
	Schema    string              `json:"schema"`
	GoVersion string              `json:"go_version"`
	GOOS      string              `json:"goos"`
	GOARCH    string              `json:"goarch"`
	NumCPU    int                 `json:"num_cpu"`
	Options   ExhaustBenchOptions `json:"options"`
	Rows      []ExhaustBenchRow   `json:"rows"`
}

// exhaustBenchSrc builds the width-parameterized workload program: one
// bit<width> secret the apply block reads but never leaks (the guarded
// write is the identity), one 2-bit public field. The program is
// IFC-rejected — a low write under a high guard — so it exercises
// exactly the proved-imprecise path the oracle exists for, and a clean
// enumeration is the expected verdict.
func exhaustBenchSrc(width int) string {
	return fmt.Sprintf(`
header data_t {
    <bit<2>, low> lo;
    <bit<%d>, high> hi;
    <bool, high> bhi;
}
struct headers { data_t d; }
control Bench(inout headers hdr) {
    apply {
        if (hdr.d.bhi) {
            hdr.d.lo = (hdr.d.lo ^ 2w0);
        }
    }
}
`, width)
}

// ExhaustBench measures every width row.
func ExhaustBench(opts ExhaustBenchOptions) (*ExhaustBenchDoc, error) {
	opts = opts.withDefaults()
	doc := &ExhaustBenchDoc{
		Schema:    ExhaustBenchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Options:   opts,
	}
	for _, w := range opts.Widths {
		prog, err := parser.Parse(fmt.Sprintf("exhaust-%d.p4", w), exhaustBenchSrc(w))
		if err != nil {
			return nil, fmt.Errorf("bench: exhaust width %d: %v", w, err)
		}
		e := &ni.Experiment{Prog: prog, Lat: lattice.TwoPoint()}
		o := exhaust.Oracle{Budget: opts.Budget}
		start := time.Now()
		res, err := o.Check(e, opts.Seed)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: exhaust width %d: %v", w, err)
		}
		row := ExhaustBenchRow{
			Width:       w,
			SecretSpace: uint64(1) << (w + 1), // bit<w> plus the bool guard
			Verdict:     res.Outcome.String(),
			Total:       res.Total,
			Assignments: res.Assignments,
			ElapsedNS:   elapsed.Nanoseconds(),
		}
		if elapsed > 0 {
			row.AssignmentsPerSec = float64(res.Assignments) / elapsed.Seconds()
		}
		doc.Rows = append(doc.Rows, row)
	}
	return doc, nil
}

// ExhaustComparison is the CI gate's judgment of a current run against
// the committed baseline.
type ExhaustComparison struct {
	// Failures are semantic drifts (schema, row set, verdict, assignment
	// count) that fail the gate; Warnings are advisory rate observations.
	Failures []string
	Warnings []string
}

// OK reports a passing gate.
func (c *ExhaustComparison) OK() bool { return len(c.Failures) == 0 }

// exhaustRateWarnFactor is how far a row's assignments/sec may fall below
// the baseline before the comparison notes it. Rates are machine-local so
// this is a warning, never a failure.
const exhaustRateWarnFactor = 0.5

// CompareExhaust gates a current exhaustive-bench document against the
// baseline: enumeration identity (verdicts, assignment counts, the width
// set itself) must be bit-for-bit stable; throughput movement is
// advisory.
func CompareExhaust(base, cur *ExhaustBenchDoc) *ExhaustComparison {
	c := &ExhaustComparison{}
	if base.Schema != cur.Schema {
		c.Failures = append(c.Failures, fmt.Sprintf("schema drift: baseline %q vs current %q — regenerate the baseline deliberately", base.Schema, cur.Schema))
		return c
	}
	baseBy := map[int]ExhaustBenchRow{}
	for _, r := range base.Rows {
		baseBy[r.Width] = r
	}
	seen := map[int]bool{}
	for _, r := range cur.Rows {
		seen[r.Width] = true
		b, ok := baseBy[r.Width]
		if !ok {
			c.Warnings = append(c.Warnings, fmt.Sprintf("width %d: new row, no baseline", r.Width))
			continue
		}
		if r.Verdict != b.Verdict || r.Total != b.Total {
			c.Failures = append(c.Failures, fmt.Sprintf("width %d: verdict drift: baseline %s (total=%v) vs current %s (total=%v)",
				r.Width, b.Verdict, b.Total, r.Verdict, r.Total))
		}
		if r.Assignments != b.Assignments {
			c.Failures = append(c.Failures, fmt.Sprintf("width %d: enumerated %d assignments, baseline enumerated %d — the swept space changed",
				r.Width, r.Assignments, b.Assignments))
		}
		if b.AssignmentsPerSec > 0 && r.AssignmentsPerSec < b.AssignmentsPerSec*exhaustRateWarnFactor {
			c.Warnings = append(c.Warnings, fmt.Sprintf("width %d: %.0f assignments/sec vs baseline %.0f (advisory; rates are machine-local)",
				r.Width, r.AssignmentsPerSec, b.AssignmentsPerSec))
		}
	}
	for _, b := range base.Rows {
		if !seen[b.Width] {
			c.Failures = append(c.Failures, fmt.Sprintf("width %d: row present in baseline but missing from current run", b.Width))
		}
	}
	return c
}

// FormatExhaust renders the suite's rows as text.
func FormatExhaust(doc *ExhaustBenchDoc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "exhaustive NI oracle throughput (%s %s/%s, %d CPUs, budget %d)\n",
		doc.GoVersion, doc.GOOS, doc.GOARCH, doc.NumCPU, doc.Options.Budget)
	fmt.Fprintf(&b, "  %6s  %14s  %12s  %7s  %18s\n", "width", "secret space", "assignments", "verdict", "assignments/sec")
	for _, r := range doc.Rows {
		fmt.Fprintf(&b, "  %6d  %14d  %12d  %7s  %18.0f\n",
			r.Width, r.SecretSpace, r.Assignments, shortVerdict(r.Verdict), r.AssignmentsPerSec)
	}
	return b.String()
}

func shortVerdict(v string) string {
	switch v {
	case "proved-secure":
		return "secure"
	case "proved-insecure":
		return "leak"
	}
	return v
}

// MarkdownExhaust renders the rows as a GitHub-flavored Markdown table —
// the fragment the CI job appends to its step summary.
func MarkdownExhaust(doc *ExhaustBenchDoc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Exhaustive oracle throughput\n\n")
	fmt.Fprintf(&b, "%s %s/%s · %d CPUs · budget %d\n\n", doc.GoVersion, doc.GOOS, doc.GOARCH, doc.NumCPU, doc.Options.Budget)
	b.WriteString("| width | secret space | assignments | verdict | assignments/sec |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, r := range doc.Rows {
		fmt.Fprintf(&b, "| %d | %d | %d | %s | %.0f |\n", r.Width, r.SecretSpace, r.Assignments, r.Verdict, r.AssignmentsPerSec)
	}
	return b.String()
}

// MarkdownCompareExhaust renders the gate's judgment for the step
// summary.
func MarkdownCompareExhaust(c *ExhaustComparison) string {
	var b strings.Builder
	b.WriteString("### Exhaustive oracle gate\n\n")
	switch {
	case !c.OK():
		b.WriteString("**FAIL** — enumeration identity drifted:\n\n")
		for _, f := range c.Failures {
			fmt.Fprintf(&b, "- ❌ %s\n", f)
		}
	default:
		b.WriteString("✅ enumeration identity matches the baseline\n")
	}
	for _, w := range c.Warnings {
		fmt.Fprintf(&b, "- ⚠️ %s\n", w)
	}
	return b.String()
}
