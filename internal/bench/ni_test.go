package bench

import (
	"strings"
	"testing"
)

func smallNIOpts() NIBenchOptions {
	return NIBenchOptions{Seed: 7, Programs: 2, Trials: 16, TrialsMax: 64, Lattices: []string{"two-point"}}
}

// TestNIBenchDeterministic is the contract the CI gate leans on: two
// same-options runs must produce identical workloads — same programs, same
// trial counts, same witness tallies — in every row (timings excluded).
// It also checks engine parity within one run: the interpreter and
// compiled rows of a cell count the same trials and witnesses.
func TestNIBenchDeterministic(t *testing.T) {
	d1, err := NIBench(smallNIOpts())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NIBench(smallNIOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Rows) != len(d2.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(d1.Rows), len(d2.Rows))
	}
	for i := range d1.Rows {
		a, b := d1.Rows[i], d2.Rows[i]
		a.ElapsedNS, b.ElapsedNS = 0, 0
		a.TrialsPerSec, b.TrialsPerSec = 0, 0
		if a != b {
			t.Errorf("row %d diverged between same-seed runs:\n  %+v\n  %+v", i, a, b)
		}
	}
	byCell := map[string][]NIBenchRow{}
	for _, r := range d1.Rows {
		if r.Workers == 1 {
			k := r.Lattice + "/" + r.Mix
			byCell[k] = append(byCell[k], r)
		}
	}
	for k, rows := range byCell {
		if len(rows) != 2 {
			t.Fatalf("cell %s: want interp+compiled rows, got %d", k, len(rows))
		}
		if rows[0].Trials != rows[1].Trials || rows[0].Witnesses != rows[1].Witnesses {
			t.Errorf("cell %s: engines disagree: %+v vs %+v", k, rows[0], rows[1])
		}
	}
}

func gateDoc(speedup, tps float64, trials, witnesses int) *NIBenchDoc {
	return &NIBenchDoc{
		Schema:         NIBenchSchema,
		Rows:           []NIBenchRow{{Lattice: "two-point", Mix: "accept", Engine: "compiled", Workers: 1, Programs: 2, Trials: trials, Witnesses: witnesses, TrialsPerSec: tps}},
		Speedups:       map[string]float64{"two-point/accept": speedup},
		SpeedupGeomean: speedup,
	}
}

func TestCompareNIGate(t *testing.T) {
	base := gateDoc(6.0, 1000, 100, 3)

	if c := CompareNI(base, gateDoc(6.0, 1000, 100, 3)); !c.OK() || len(c.Warnings) != 0 {
		t.Errorf("identical docs should pass cleanly: %+v", c)
	}
	// >10% speedup regression warns, >30% fails.
	if c := CompareNI(base, gateDoc(5.0, 1000, 100, 3)); !c.OK() || len(c.Warnings) == 0 {
		t.Errorf("17%% regression should warn and pass: %+v", c)
	}
	if c := CompareNI(base, gateDoc(3.0, 1000, 100, 3)); c.OK() {
		t.Errorf("50%% regression should fail: %+v", c)
	}
	// Tally drift means the workload is no longer the baseline's.
	if c := CompareNI(base, gateDoc(6.0, 1000, 120, 3)); c.OK() {
		t.Errorf("trial-count drift should fail: %+v", c)
	}
	if c := CompareNI(base, gateDoc(6.0, 1000, 100, 4)); c.OK() {
		t.Errorf("witness drift should fail: %+v", c)
	}
	// Absolute rate drops are machine-dependent: warn, never fail.
	if c := CompareNI(base, gateDoc(6.0, 400, 100, 3)); !c.OK() || len(c.Warnings) == 0 {
		t.Errorf("absolute rate drop should warn and pass: %+v", c)
	}
	// Schema drift refuses the comparison.
	cur := gateDoc(6.0, 1000, 100, 3)
	cur.Schema = "p4bench/ni/v2"
	c := CompareNI(base, cur)
	if c.OK() || !strings.Contains(c.Failures[0], "schema") {
		t.Errorf("schema mismatch should fail: %+v", c)
	}
}
