// Pipeline throughput sweep: sequential vs parallel batch analysis over a
// generated corpus, reported as wall-clock and speedup per worker count.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/pipeline"
)

// PipelineRow is one measured worker count.
type PipelineRow struct {
	Workers  int
	Elapsed  time.Duration
	Speedup  float64 // vs the lowest-worker-count row of the sweep
	PerProg  time.Duration
	Programs int
}

// PipelineCorpus generates a deterministic corpus of n random programs for
// the throughput sweep (same seed → same corpus, so rows are comparable).
func PipelineCorpus(n int, seed int64) []pipeline.Job {
	lat := lattice.TwoPoint()
	cfg := gen.DefaultConfig()
	jobs := make([]pipeline.Job, n)
	for i := range jobs {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		jobs[i] = pipeline.Job{
			Name:   fmt.Sprintf("corpus-%d.p4", i),
			Source: gen.Random(rng, cfg),
			Lat:    lat,
		}
	}
	return jobs
}

// PipelineSweep batch-analyzes the corpus once per worker count, with the
// NI stage on (accepted programs only) so every stage contributes. A
// workerCounts of nil sweeps 1, 2, 4, ... up to GOMAXPROCS.
func PipelineSweep(jobs []pipeline.Job, workerCounts []int) []PipelineRow {
	if workerCounts == nil {
		max := runtime.GOMAXPROCS(0)
		for w := 1; w <= max; w *= 2 {
			workerCounts = append(workerCounts, w)
		}
		if last := workerCounts[len(workerCounts)-1]; last != max {
			workerCounts = append(workerCounts, max)
		}
	}
	var rows []PipelineRow
	for _, w := range workerCounts {
		sum, err := pipeline.Run(context.Background(), jobs, pipeline.Options{
			Workers: w,
			NI:      pipeline.NIAccepted,
			NISeed:  1,
		})
		if err != nil {
			panic(err)
		}
		row := PipelineRow{
			Workers:  sum.Workers,
			Elapsed:  sum.Elapsed,
			Programs: len(jobs),
		}
		if len(jobs) > 0 {
			row.PerProg = sum.Elapsed / time.Duration(len(jobs))
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return rows
	}
	// Normalize every speedup against the lowest-worker-count row, so the
	// baseline is the same for the whole table whatever order (or subset)
	// of counts the caller asked for.
	base := 0
	for i := range rows {
		if rows[i].Workers < rows[base].Workers {
			base = i
		}
	}
	for i := range rows {
		if rows[i].Elapsed > 0 {
			rows[i].Speedup = float64(rows[base].Elapsed) / float64(rows[i].Elapsed)
		}
	}
	return rows
}

// FormatPipeline renders the sweep.
func FormatPipeline(rows []PipelineRow) string {
	var b strings.Builder
	n := 0
	if len(rows) > 0 {
		n = rows[0].Programs
	}
	fmt.Fprintf(&b, "Pipeline throughput: %d-program corpus, parse→resolve→base→IFC→NI per program.\n", n)
	fmt.Fprintf(&b, "%8s %14s %14s %10s\n", "workers", "wall-clock", "per program", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %14v %14v %9.2fx\n",
			r.Workers, r.Elapsed.Round(time.Microsecond), r.PerProg.Round(time.Microsecond), r.Speedup)
	}
	return b.String()
}
