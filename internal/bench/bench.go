// Package bench implements the measurement harnesses behind the paper's
// evaluation artifacts, shared by cmd/p4bench and the root bench_test.go:
//
//   - Table1 reproduces Table 1 (typechecking time in milliseconds for the
//     five case-study programs, baseline vs P4BID);
//   - Matrix reproduces the Section 5 case-study results (buggy rejected,
//     fixed accepted, with the rules cited);
//   - Scaling extends the evaluation with checker time vs program size and
//     vs lattice height.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/basecheck"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/progs"
)

// Table1Row is one measured row of Table 1.
type Table1Row struct {
	Program     string
	BaseMs      float64 // unannotated program through the base checker
	P4BIDMs     float64 // annotated program through the IFC checker
	OverheadPct float64
}

// Table1 measures all five Table 1 programs, repeating each measurement
// reps times and keeping the per-run average. The final row is the
// average, as in the paper.
func Table1(reps int) []Table1Row {
	if reps < 1 {
		reps = 1
	}
	rows := make([]Table1Row, 0, 6)
	var sumBase, sumIFC float64
	for _, p := range progs.All() {
		if p.Name == "NetChain" || p.Name == "Stateful" {
			continue // not in Table 1
		}
		lat := p.Lattice()
		unannotated := p.Source(progs.Unannotated)
		annotated := p.Source(progs.Fixed)
		baseMs := measure(reps, func() {
			prog := parser.MustParse("bench.p4", unannotated)
			if res := basecheck.Check(prog); !res.OK {
				panic("unannotated " + p.Name + " failed base checking: " + res.Err().Error())
			}
		})
		ifcMs := measure(reps, func() {
			prog := parser.MustParse("bench.p4", annotated)
			if res := core.Check(prog, lat); !res.OK {
				panic("annotated " + p.Name + " failed IFC checking: " + res.Err().Error())
			}
		})
		rows = append(rows, Table1Row{
			Program:     p.Name,
			BaseMs:      baseMs,
			P4BIDMs:     ifcMs,
			OverheadPct: 100 * (ifcMs - baseMs) / baseMs,
		})
		sumBase += baseMs
		sumIFC += ifcMs
	}
	n := float64(len(rows))
	rows = append(rows, Table1Row{
		Program:     "Average",
		BaseMs:      sumBase / n,
		P4BIDMs:     sumIFC / n,
		OverheadPct: 100 * (sumIFC - sumBase) / sumBase,
	})
	// Paper order: D2R, App, Lattice, Topology, Cache, Average.
	order := map[string]int{"D2R": 0, "App": 1, "Lattice": 2, "Topology": 3, "Cache": 4, "Average": 5}
	sort.SliceStable(rows, func(i, j int) bool { return order[rows[i].Program] < order[rows[j].Program] })
	return rows
}

func measure(reps int, f func()) float64 {
	// Warm-up run outside the timed region.
	f()
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return float64(time.Since(start).Microseconds()) / float64(reps) / 1000.0
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Typechecking time in milliseconds.\n")
	fmt.Fprintf(&b, "%-10s %18s %18s %10s\n", "Program", "Unannotated, base", "Annotated, P4BID", "Overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %18.3f %18.3f %+9.1f%%\n", r.Program, r.BaseMs, r.P4BIDMs, r.OverheadPct)
	}
	return b.String()
}

// MatrixRow is one case study's accept/reject outcome.
type MatrixRow struct {
	Program  string
	Property string
	// BuggyRejected and FixedAccepted are the paper's claims; RulesCited
	// lists the typing rules the buggy variant's diagnostics cite.
	BuggyRejected bool
	FixedAccepted bool
	RulesCited    []string
	FirstError    string
}

// Matrix checks every case study's buggy and fixed variants.
func Matrix() []MatrixRow {
	var rows []MatrixRow
	for _, p := range progs.All() {
		lat := p.Lattice()
		buggy := core.Check(parser.MustParse(p.FileName(progs.Buggy), p.Source(progs.Buggy)), lat)
		fixed := core.Check(parser.MustParse(p.FileName(progs.Fixed), p.Source(progs.Fixed)), lat)
		seen := map[string]bool{}
		var rules []string
		first := ""
		for _, d := range buggy.Diags {
			if d.Rule != "" && !seen[d.Rule] {
				seen[d.Rule] = true
				rules = append(rules, d.Rule)
			}
			if first == "" {
				first = d.Error()
			}
		}
		sort.Strings(rules)
		rows = append(rows, MatrixRow{
			Program:       p.Name,
			Property:      p.Property,
			BuggyRejected: !buggy.OK,
			FixedAccepted: fixed.OK,
			RulesCited:    rules,
			FirstError:    first,
		})
	}
	return rows
}

// FormatMatrix renders the case-study matrix.
func FormatMatrix(rows []MatrixRow) string {
	var b strings.Builder
	b.WriteString("Section 5 case studies: P4BID verdicts.\n")
	fmt.Fprintf(&b, "%-10s %-8s %-8s %s\n", "Program", "Buggy", "Fixed", "Rules cited on buggy variant")
	for _, r := range rows {
		buggy := "ACCEPT"
		if r.BuggyRejected {
			buggy = "reject"
		}
		fixed := "REJECT"
		if r.FixedAccepted {
			fixed = "accept"
		}
		fmt.Fprintf(&b, "%-10s %-8s %-8s %s\n", r.Program, buggy, fixed, strings.Join(r.RulesCited, ", "))
	}
	return b.String()
}

// ScalingRow is one point of the size-scaling sweep.
type ScalingRow struct {
	Tables  int
	SrcKB   float64
	BaseMs  float64
	P4BIDMs float64
}

// ScalingBySize sweeps synthetic programs with growing table counts.
func ScalingBySize(tableCounts []int, reps int) []ScalingRow {
	lat := lattice.TwoPoint()
	var rows []ScalingRow
	for _, n := range tableCounts {
		src := gen.Synth(n, 4, 8)
		baseMs := measure(reps, func() {
			prog := parser.MustParse("synth.p4", progs.StripAnnotations(src))
			if res := basecheck.Check(prog); !res.OK {
				panic(res.Err())
			}
		})
		ifcMs := measure(reps, func() {
			prog := parser.MustParse("synth.p4", src)
			if res := core.Check(prog, lat); !res.OK {
				panic(res.Err())
			}
		})
		rows = append(rows, ScalingRow{Tables: n, SrcKB: float64(len(src)) / 1024, BaseMs: baseMs, P4BIDMs: ifcMs})
	}
	return rows
}

// LatticeRow is one point of the lattice-height sweep.
type LatticeRow struct {
	Height  int
	P4BIDMs float64
}

// ScalingByLattice sweeps chain lattices of growing height.
func ScalingByLattice(heights []int, reps int) []LatticeRow {
	var rows []LatticeRow
	for _, h := range heights {
		lat := lattice.Chain(h)
		src := gen.SynthChainLabels(h)
		ms := measure(reps, func() {
			prog := parser.MustParse("chain.p4", src)
			if res := core.Check(prog, lat); !res.OK {
				panic(res.Err())
			}
		})
		rows = append(rows, LatticeRow{Height: h, P4BIDMs: ms})
	}
	return rows
}

// FormatScaling renders both sweeps.
func FormatScaling(size []ScalingRow, lat []LatticeRow) string {
	var b strings.Builder
	b.WriteString("Scaling: checker time vs program size (synthetic programs).\n")
	fmt.Fprintf(&b, "%8s %10s %12s %12s\n", "tables", "src KB", "base ms", "P4BID ms")
	for _, r := range size {
		fmt.Fprintf(&b, "%8d %10.1f %12.3f %12.3f\n", r.Tables, r.SrcKB, r.BaseMs, r.P4BIDMs)
	}
	b.WriteString("\nScaling: checker time vs lattice height (chain lattices).\n")
	fmt.Fprintf(&b, "%8s %12s\n", "height", "P4BID ms")
	for _, r := range lat {
		fmt.Fprintf(&b, "%8d %12.3f\n", r.Height, r.P4BIDMs)
	}
	return b.String()
}
