// NI throughput suite: the first point of the cross-PR perf trajectory.
//
// The suite measures NI trials/sec for the tree-walking interpreter and
// the compiled engine over identical workloads — generated programs per
// lattice, split into an accept mix (IFC checker accepts; flat trial
// budget) and a reject mix (checker rejects; adaptive budget, the
// campaign's hot case) — plus a parallel compiled row per workload. Every
// program gets a fixed per-program seed, so the trial counts and witness
// tallies of a run are a pure function of the options: two same-seed runs
// produce identical tallies (only timings move), and the interpreter and
// compiled rows of one run must tally identically (engine parity). That
// determinism is what lets CI gate on this data without flaking.
//
// The CI gate compares speedup ratios (compiled vs interpreter on the
// same machine), not absolute trials/sec: ratios transfer across machines,
// absolute rates do not. Tally drift or schema drift fails the gate
// outright — the baseline must be regenerated deliberately.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/basecheck"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/ni"
	"repro/internal/parser"
)

// NIBenchSchema versions BENCH_ni.json; bump it when the workload
// construction or row semantics change (the gate refuses cross-schema
// comparisons).
const NIBenchSchema = "p4bench/ni/v1"

// NIBenchOptions configures the suite. The zero value means defaults.
type NIBenchOptions struct {
	// Seed derives the whole workload: program generation, the accept/
	// reject split, and every per-program trial seed.
	Seed int64
	// Programs is the number of programs per lattice per mix.
	Programs int
	// Trials is the flat budget per accept-mix program and the adaptive
	// floor per reject-mix program.
	Trials int
	// TrialsMax is the adaptive ceiling for the reject mix.
	TrialsMax int
	// Lattices names the campaign lattices to sweep (lattice.ByName).
	Lattices []string
	// Parallel also measures a compiled row at runtime.NumCPU workers per
	// workload (skipped on single-core hosts).
	Parallel bool
}

func (o NIBenchOptions) withDefaults() NIBenchOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Programs <= 0 {
		o.Programs = 8
	}
	if o.Trials <= 0 {
		o.Trials = 1024
	}
	if o.TrialsMax <= 0 {
		o.TrialsMax = 4 * o.Trials
	}
	if len(o.Lattices) == 0 {
		o.Lattices = []string{"two-point", "chain:4", "nparty:3"}
	}
	return o
}

// NIBenchRow is one measured (lattice, mix, engine, workers) cell.
type NIBenchRow struct {
	Lattice      string  `json:"lattice"`
	Mix          string  `json:"mix"` // "accept" or "reject"
	Engine       string  `json:"engine"`
	Workers      int     `json:"workers"`
	Programs     int     `json:"programs"`
	Trials       int     `json:"trials"`
	Witnesses    int     `json:"witnesses"`
	ElapsedNS    int64   `json:"elapsed_ns"`
	TrialsPerSec float64 `json:"trials_per_sec"`
}

// NIBenchDoc is the schema-versioned content of BENCH_ni.json.
type NIBenchDoc struct {
	Schema    string         `json:"schema"`
	GoVersion string         `json:"go_version"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	NumCPU    int            `json:"num_cpu"`
	Options   NIBenchOptions `json:"options"`
	Rows      []NIBenchRow   `json:"rows"`
	// Speedups maps "lattice/mix" to the single-core compiled-over-
	// interpreter trials/sec ratio — the machine-portable number CI gates
	// on.
	Speedups       map[string]float64 `json:"speedups"`
	SpeedupGeomean float64            `json:"speedup_geomean"`
	// ParallelSpeedup is the geomean parallel-over-single-core compiled
	// ratio, 0 when the parallel sweep did not run.
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
}

// niWorkload is one (lattice, mix) cell's programs, pre-parsed and
// pre-compiled (compilation is once-per-job in production, so it stays
// outside the timed region).
type niWorkload struct {
	spec     string
	mix      string
	lat      lattice.Lattice
	progs    []*ast.Program
	codes    []*eval.Compiled
	seeds    []int64
	adaptive bool
}

// NIBench builds the workloads and measures every row.
func NIBench(opts NIBenchOptions) (*NIBenchDoc, error) {
	opts = opts.withDefaults()
	doc := &NIBenchDoc{
		Schema:    NIBenchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Options:   opts,
		Speedups:  map[string]float64{},
	}
	var ratios, pratios []float64
	for li, spec := range opts.Lattices {
		accept, reject, err := buildNIWorkloads(spec, int64(li), opts)
		if err != nil {
			return nil, err
		}
		for _, w := range []*niWorkload{accept, reject} {
			ri := runNIWorkload(w, "interp", opts)
			rc := runNIWorkload(w, "compiled", opts)
			doc.Rows = append(doc.Rows, ri, rc)
			if ri.TrialsPerSec > 0 {
				ratio := rc.TrialsPerSec / ri.TrialsPerSec
				doc.Speedups[w.spec+"/"+w.mix] = ratio
				ratios = append(ratios, ratio)
			}
			if opts.Parallel && runtime.NumCPU() > 1 {
				rp := runNIWorkloadParallel(w, opts)
				doc.Rows = append(doc.Rows, rp)
				if rc.TrialsPerSec > 0 {
					pratios = append(pratios, rp.TrialsPerSec/rc.TrialsPerSec)
				}
			}
		}
	}
	doc.SpeedupGeomean = geomean(ratios)
	doc.ParallelSpeedup = geomean(pratios)
	return doc, nil
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// buildNIWorkloads generates programs for one lattice until both mixes are
// full, probing each candidate with one interpreter trial (separate seed)
// so runtime-erroring programs never enter the timed workload.
func buildNIWorkloads(spec string, latIdx int64, opts NIBenchOptions) (accept, reject *niWorkload, err error) {
	lat, err := lattice.ByName(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: lattice %q: %v", spec, err)
	}
	cfg := gen.DefaultConfig()
	cfg.Lattice = spec
	rng := rand.New(rand.NewSource(opts.Seed + latIdx*100003))
	accept = &niWorkload{spec: spec, mix: "accept", lat: lat}
	reject = &niWorkload{spec: spec, mix: "reject", lat: lat, adaptive: true}
	attempts, maxAttempts := 0, 400*opts.Programs
	for (len(accept.progs) < opts.Programs || len(reject.progs) < opts.Programs) && attempts < maxAttempts {
		attempts++
		src := gen.Random(rng, cfg)
		prog, perr := parser.Parse(fmt.Sprintf("%s-%d.p4", spec, attempts), src)
		if perr != nil {
			continue
		}
		if !basecheck.Check(prog).OK {
			continue
		}
		w := accept
		if !core.Check(prog, lat).OK {
			w = reject
		}
		if len(w.progs) >= opts.Programs {
			continue
		}
		probe := &ni.Experiment{Prog: prog, Lat: lat, Interp: true}
		if _, _, perr := probe.RunN(1, opts.Seed^0x50be); perr != nil {
			continue
		}
		code, cerr := eval.Compile(prog)
		if cerr != nil {
			continue
		}
		i := len(w.progs)
		w.progs = append(w.progs, prog)
		w.codes = append(w.codes, code)
		w.seeds = append(w.seeds, opts.Seed+latIdx*7919+int64(i)*104729)
	}
	if len(accept.progs) == 0 || len(reject.progs) == 0 {
		return nil, nil, fmt.Errorf("bench: lattice %q: could not fill workloads (%d accept, %d reject after %d attempts)",
			spec, len(accept.progs), len(reject.progs), attempts)
	}
	return accept, reject, nil
}

// runNIProgram runs one program's trial budget and returns (trials run,
// witnesses found). Deterministic in (workload, index): the per-program
// seed is fixed at build time.
func runNIProgram(w *niWorkload, i int, engine string, opts NIBenchOptions) (int, int) {
	e := &ni.Experiment{Prog: w.progs[i], Lat: w.lat}
	if engine == "interp" {
		e.Interp = true
	} else {
		e.Code = w.codes[i]
	}
	var vio []ni.Violation
	var ran int
	var err error
	if w.adaptive {
		vio, ran, err = e.RunAdaptive(opts.Trials, opts.TrialsMax, w.seeds[i])
	} else {
		vio, ran, err = e.RunN(opts.Trials, w.seeds[i])
	}
	if err != nil {
		// Probed at build time; a runtime error here would be an engine
		// bug, which the differential tests exist to catch. Count what ran.
		return ran, len(vio)
	}
	return ran, len(vio)
}

func runNIWorkload(w *niWorkload, engine string, opts NIBenchOptions) NIBenchRow {
	var trials, wit int
	start := time.Now()
	for i := range w.progs {
		t, v := runNIProgram(w, i, engine, opts)
		trials += t
		wit += v
	}
	return finishNIRow(w, engine, 1, trials, wit, time.Since(start))
}

func runNIWorkloadParallel(w *niWorkload, opts NIBenchOptions) NIBenchRow {
	workers := runtime.NumCPU()
	jobs := make(chan int)
	var mu sync.Mutex
	var trials, wit int
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			localT, localW := 0, 0
			for i := range jobs {
				t, v := runNIProgram(w, i, "compiled", opts)
				localT += t
				localW += v
			}
			mu.Lock()
			trials += localT
			wit += localW
			mu.Unlock()
		}()
	}
	for i := range w.progs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return finishNIRow(w, "compiled", workers, trials, wit, time.Since(start))
}

func finishNIRow(w *niWorkload, engine string, workers, trials, wit int, elapsed time.Duration) NIBenchRow {
	row := NIBenchRow{
		Lattice:   w.spec,
		Mix:       w.mix,
		Engine:    engine,
		Workers:   workers,
		Programs:  len(w.progs),
		Trials:    trials,
		Witnesses: wit,
		ElapsedNS: elapsed.Nanoseconds(),
	}
	if elapsed > 0 {
		row.TrialsPerSec = float64(trials) / elapsed.Seconds()
	}
	return row
}

// ---------------------------------------------------------------------------
// Gate

// NICompare is the CI gate's verdict on a current run versus the committed
// baseline.
type NICompare struct {
	Failures []string
	Warnings []string
}

// OK reports whether the gate passes.
func (c *NICompare) OK() bool { return len(c.Failures) == 0 }

// CompareNI gates cur against base:
//
//   - schema mismatch, or any single-core tally drift (trial counts or
//     witness counts per lattice/mix/engine), fails — the workload is no
//     longer the committed one, so the baseline must be regenerated
//     deliberately rather than silently re-interpreted;
//   - a compiled-over-interpreter speedup ratio dropping below 70% of the
//     baseline's fails, below 90% warns (ratios are measured on one
//     machine and so transfer across machines);
//   - absolute trials/sec drops only warn — CI runners are not the
//     machine the baseline was recorded on.
//
// Parallel rows are informational: their worker counts are host-dependent.
func CompareNI(base, cur *NIBenchDoc) *NICompare {
	c := &NICompare{}
	if base.Schema != cur.Schema {
		c.Failures = append(c.Failures, fmt.Sprintf(
			"schema mismatch: baseline %q vs current %q (regenerate the baseline)", base.Schema, cur.Schema))
		return c
	}
	key := func(r NIBenchRow) string { return r.Lattice + "/" + r.Mix + "/" + r.Engine }
	curRows := map[string]NIBenchRow{}
	for _, r := range cur.Rows {
		if r.Workers == 1 {
			curRows[key(r)] = r
		}
	}
	for _, b := range base.Rows {
		if b.Workers != 1 {
			continue
		}
		r, ok := curRows[key(b)]
		if !ok {
			c.Failures = append(c.Failures, fmt.Sprintf("row %s missing from current run (workload drift)", key(b)))
			continue
		}
		if r.Trials != b.Trials || r.Witnesses != b.Witnesses || r.Programs != b.Programs {
			c.Failures = append(c.Failures, fmt.Sprintf(
				"row %s tallies drifted: baseline %d programs/%d trials/%d witnesses, current %d/%d/%d (regenerate the baseline)",
				key(b), b.Programs, b.Trials, b.Witnesses, r.Programs, r.Trials, r.Witnesses))
			continue
		}
		if b.TrialsPerSec > 0 && r.TrialsPerSec < 0.5*b.TrialsPerSec {
			c.Warnings = append(c.Warnings, fmt.Sprintf(
				"row %s absolute rate dropped: %.0f -> %.0f trials/sec (machine-dependent; informational)",
				key(b), b.TrialsPerSec, r.TrialsPerSec))
		}
	}
	keys := make([]string, 0, len(base.Speedups))
	for k := range base.Speedups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bs := base.Speedups[k]
		cs, ok := cur.Speedups[k]
		if !ok {
			c.Failures = append(c.Failures, fmt.Sprintf("speedup %s missing from current run", k))
			continue
		}
		if bs <= 0 {
			continue
		}
		switch {
		case cs < 0.70*bs:
			c.Failures = append(c.Failures, fmt.Sprintf(
				"speedup %s regressed >30%%: baseline %.2fx, current %.2fx", k, bs, cs))
		case cs < 0.90*bs:
			c.Warnings = append(c.Warnings, fmt.Sprintf(
				"speedup %s regressed >10%%: baseline %.2fx, current %.2fx", k, bs, cs))
		}
	}
	if base.SpeedupGeomean > 0 && cur.SpeedupGeomean < 0.70*base.SpeedupGeomean {
		c.Failures = append(c.Failures, fmt.Sprintf(
			"geomean speedup regressed >30%%: baseline %.2fx, current %.2fx",
			base.SpeedupGeomean, cur.SpeedupGeomean))
	}
	return c
}

// ---------------------------------------------------------------------------
// Rendering

// FormatNI renders the suite for terminals.
func FormatNI(doc *NIBenchDoc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "NI throughput: trials/sec per engine (%s, %d-core %s/%s, seed %d).\n",
		doc.GoVersion, doc.NumCPU, doc.GOOS, doc.GOARCH, doc.Options.Seed)
	fmt.Fprintf(&b, "%-10s %-8s %-9s %8s %9s %8s %10s %14s\n",
		"lattice", "mix", "engine", "workers", "programs", "trials", "witnesses", "trials/sec")
	for _, r := range doc.Rows {
		fmt.Fprintf(&b, "%-10s %-8s %-9s %8d %9d %8d %10d %14.0f\n",
			r.Lattice, r.Mix, r.Engine, r.Workers, r.Programs, r.Trials, r.Witnesses, r.TrialsPerSec)
	}
	keys := make([]string, 0, len(doc.Speedups))
	for k := range doc.Speedups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("\nSingle-core compiled speedup over the tree-walking interpreter:\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-20s %6.2fx\n", k, doc.Speedups[k])
	}
	fmt.Fprintf(&b, "  %-20s %6.2fx\n", "geomean", doc.SpeedupGeomean)
	if doc.ParallelSpeedup > 0 {
		fmt.Fprintf(&b, "Parallel compiled speedup over single-core (geomean, %d workers): %.2fx\n",
			doc.NumCPU, doc.ParallelSpeedup)
	}
	return b.String()
}

// MarkdownNI renders the suite as a GitHub-flavored markdown table for the
// CI step summary.
func MarkdownNI(doc *NIBenchDoc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### NI throughput (%s, %d-core %s/%s)\n\n",
		doc.GoVersion, doc.NumCPU, doc.GOOS, doc.GOARCH)
	b.WriteString("| lattice | mix | engine | workers | programs | trials | witnesses | trials/sec |\n")
	b.WriteString("|---|---|---|---:|---:|---:|---:|---:|\n")
	for _, r := range doc.Rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %d | %d | %d | %d | %.0f |\n",
			r.Lattice, r.Mix, r.Engine, r.Workers, r.Programs, r.Trials, r.Witnesses, r.TrialsPerSec)
	}
	fmt.Fprintf(&b, "\n**Compiled speedup (geomean): %.2fx**", doc.SpeedupGeomean)
	if doc.ParallelSpeedup > 0 {
		fmt.Fprintf(&b, " · parallel speedup %.2fx", doc.ParallelSpeedup)
	}
	b.WriteString("\n")
	return b.String()
}

// MarkdownCompare renders the gate verdict for the CI step summary.
func MarkdownCompare(c *NICompare, base, cur *NIBenchDoc) string {
	var b strings.Builder
	b.WriteString("### NI benchmark gate\n\n")
	fmt.Fprintf(&b, "Baseline geomean speedup %.2fx → current %.2fx.\n\n",
		base.SpeedupGeomean, cur.SpeedupGeomean)
	if c.OK() && len(c.Warnings) == 0 {
		b.WriteString("✅ no regression against the committed baseline.\n")
	}
	for _, w := range c.Warnings {
		fmt.Fprintf(&b, "⚠️ %s\n", w)
	}
	for _, f := range c.Failures {
		fmt.Fprintf(&b, "❌ %s\n", f)
	}
	return b.String()
}
