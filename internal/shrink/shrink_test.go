package shrink_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/basecheck"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/resolve"
	"repro/internal/shrink"
)

// verdictClass is the static slice of the campaign's verdict classes: it
// distinguishes frontend failures, baseline rejections, and IFC
// accept/reject, which is what a shrunken finding must preserve.
func verdictClass(src string) string {
	prog, err := parser.Parse("cand.p4", src)
	if err != nil {
		return "parse-error"
	}
	lat := lattice.TwoPoint()
	var diags diag.List
	res := resolve.New(lat, &diags)
	res.CollectTypeDecls(prog)
	if diags.Err() != nil {
		return "resolve-error"
	}
	if !basecheck.Check(prog).OK {
		return "base-reject"
	}
	if core.Check(prog, lat).OK {
		return "accept"
	}
	return "reject"
}

// TestMinimizeProperties: over generated programs, the shrinker's contract
// holds — the result parses, classifies identically, and never grows.
func TestMinimizeProperties(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	cfg := gen.DefaultConfig()
	shrunk, saved := 0, 0
	for seed := 0; seed < seeds; seed++ {
		src := gen.Random(rand.New(rand.NewSource(int64(seed))), cfg)
		class := verdictClass(src)
		keep := func(cand string) bool { return verdictClass(cand) == class }

		res, err := shrink.Minimize(fmt.Sprintf("seed-%d.p4", seed), src, keep)
		if err != nil {
			t.Fatalf("seed %d: Minimize: %v", seed, err)
		}
		if len(res.Source) > len(src) {
			t.Errorf("seed %d: result grew: %d bytes from %d", seed, len(res.Source), len(src))
		}
		if _, err := parser.Parse("min.p4", res.Source); err != nil {
			t.Errorf("seed %d: result does not parse: %v\n%s", seed, err, res.Source)
		}
		if got := verdictClass(res.Source); got != class {
			t.Errorf("seed %d: verdict class changed %s -> %s\n%s", seed, class, got, res.Source)
		}
		if len(res.Source) < len(src) {
			shrunk++
			saved += len(src) - len(res.Source)
		}
	}
	// Generated programs carry plenty of dead weight; if next to none
	// shrink, the sweeps are broken even though the contract holds.
	if shrunk < seeds/2 {
		t.Errorf("only %d/%d programs shrank", shrunk, seeds)
	}
	t.Logf("%d/%d programs shrank, %d bytes saved total", shrunk, seeds, saved)
}

// TestMinimizeExtractsCoreViolation: a rejected program padded with noise
// must shrink to a far smaller program that is still rejected, and the
// offending flow must survive the shrinking (nothing else explains a
// rejection in the residue).
func TestMinimizeExtractsCoreViolation(t *testing.T) {
	src := `
header data_t {
    <bit<8>, low> lo0;
    <bit<8>, low> lo1;
    <bit<8>, high> hi0;
    <bit<8>, high> hi1;
    <bool, low> blo;
}
struct headers { data_t d; }
control Noise(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action benign() {
        hdr.d.hi1 = hdr.d.hi0 + 8w1;
    }
    apply {
        hdr.d.lo1 = hdr.d.lo0 + 8w3;
        benign();
        if (hdr.d.blo) {
            hdr.d.hi0 = hdr.d.hi1 & 8w7;
            hdr.d.lo0 = hdr.d.hi0;
        } else {
            hdr.d.lo1 = 8w9;
        }
        hdr.d.hi1 = hdr.d.hi0 | 8w2;
    }
}
`
	if verdictClass(src) != "reject" {
		t.Fatal("fixture must be IFC-rejected")
	}
	keep := func(cand string) bool { return verdictClass(cand) == "reject" }
	res, err := shrink.Minimize("noise.p4", src, keep)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if len(res.Source) >= len(src)/2 {
		t.Errorf("expected a large reduction, got %d bytes from %d:\n%s", len(res.Source), len(src), res.Source)
	}
	if !strings.Contains(res.Source, "hdr.d.lo0 = hdr.d.hi0") {
		t.Errorf("the explicit flow violation did not survive shrinking:\n%s", res.Source)
	}
	if res.Accepted == 0 || res.Tried < res.Accepted {
		t.Errorf("implausible counters: accepted %d, tried %d", res.Accepted, res.Tried)
	}
}

// TestMinimizeInputErrors: unparseable input and a predicate that rejects
// the input itself are caller errors, not empty results.
func TestMinimizeInputErrors(t *testing.T) {
	if _, err := shrink.Minimize("bad.p4", "control {{{", func(string) bool { return true }); err == nil {
		t.Error("expected an error for unparseable input")
	}
	src := "header data_t { <bit<8>, low> lo; }\nstruct headers { data_t d; }\ncontrol C(inout headers hdr) { apply { hdr.d.lo = 8w1; } }\n"
	if _, err := shrink.Minimize("c.p4", src, func(string) bool { return false }); err == nil {
		t.Error("expected an error when the predicate rejects the input")
	}
}

// TestMinimizeAlreadyMinimal: when nothing can be deleted, the input comes
// back byte-identical.
func TestMinimizeAlreadyMinimal(t *testing.T) {
	src := `header data_t {
    <bit<8>, high> hi;
    <bit<8>, low> lo;
}
struct headers { data_t d; }
control Min(inout headers hdr) {
    apply {
        hdr.d.lo = hdr.d.hi;
    }
}
`
	keep := func(cand string) bool { return verdictClass(cand) == "reject" }
	res, err := shrink.Minimize("min.p4", src, keep)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if got := verdictClass(res.Source); got != "reject" {
		t.Fatalf("verdict class changed to %s", got)
	}
	if len(res.Source) > len(src) {
		t.Errorf("result grew from %d to %d bytes", len(src), len(res.Source))
	}
}
