// Package shrink minimizes P4 programs by AST-level delta debugging: it
// repeatedly deletes program structure — statements, else-branches, control
// locals (actions, tables, variables), table keys and action refs, header
// and struct fields, top-level declarations — re-prints the candidate with
// ast.Print, and keeps the deletion whenever the caller's predicate still
// holds on the strictly smaller source.
//
// The fuzz-campaign engine uses it to turn a generated finding (often
// hundreds of bytes of noise around a two-line flow violation) into the
// smallest program that still reproduces the finding's verdict class, so a
// corpus entry reads like a regression test rather than a core dump. The
// contract, enforced by construction and locked in by the package tests:
//
//   - the result always parses;
//   - the predicate holds on the result;
//   - the result is never larger than the input (byte length), and is the
//     input itself when no deletion survives the predicate.
//
// Deletion is coarse-to-fine for free: removing an if-statement discards
// its whole subtree in one step, and only if that fails does the shrinker
// descend to flatten the branch or delete inner statements one by one.
// Sweeps repeat until a full pass accepts nothing (a fixpoint), so the
// result is 1-minimal with respect to the deletion operators.
package shrink

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/parser"
)

// Keep reports whether a candidate program still exhibits the property
// being minimized (for campaign findings: classifies into the same verdict
// class). It is called on parseable source text only.
type Keep func(src string) bool

// Result is the outcome of a minimization.
type Result struct {
	// Source is the minimized program text; len(Source) <= len(input).
	Source string
	// Accepted counts deletions that survived the predicate.
	Accepted int
	// Tried counts candidate programs tested.
	Tried int
}

// maxSweeps bounds the fixpoint loop; each productive sweep strictly
// shrinks the program, so this is a backstop, not a tuning knob.
const maxSweeps = 100

// Minimize delta-debugs src against keep. It errors if src does not parse
// or keep rejects src itself; otherwise the Result contract above holds.
func Minimize(file, src string, keep Keep) (Result, error) {
	prog, err := parser.Parse(file, src)
	if err != nil {
		return Result{}, fmt.Errorf("shrink: input does not parse: %w", err)
	}
	if !keep(src) {
		return Result{}, fmt.Errorf("shrink: predicate does not hold on the input")
	}
	m := &minimizer{file: file, prog: prog, best: src, keep: keep}

	// The canonical print often already beats the input's formatting; take
	// it if the predicate agrees, then delete structure from there. Even if
	// it is longer than the input, mutations proceed from the AST — best
	// only ever moves to a strictly smaller keep-holding candidate.
	if canon := ast.Print(prog); len(canon) < len(m.best) && m.ok(canon) {
		m.best = canon
	}
	for i := 0; i < maxSweeps; i++ {
		changed := m.sweepDecls()
		for _, c := range prog.Controls {
			changed = m.sweepLocals(c) || changed
			changed = m.sweepBlock(c.Apply) || changed
		}
		if !changed {
			break
		}
	}
	return Result{Source: m.best, Accepted: m.accepted, Tried: m.tried}, nil
}

type minimizer struct {
	file     string
	prog     *ast.Program
	best     string
	keep     Keep
	accepted int
	tried    int
}

// ok reports whether candidate source reparses and keeps the predicate.
func (m *minimizer) ok(src string) bool {
	m.tried++
	if _, err := parser.Parse(m.file, src); err != nil {
		return false
	}
	return m.keep(src)
}

// try applies mutate, tests the printed program, and calls undo when the
// candidate was rejected. Accepted candidates become best only when
// strictly smaller, but the mutation sticks either way — every deletion
// strictly shrinks the canonical print, so the sweep converges on best.
func (m *minimizer) try(mutate, undo func()) bool {
	mutate()
	src := ast.Print(m.prog)
	if !m.ok(src) {
		undo()
		return false
	}
	m.accepted++
	if len(src) < len(m.best) {
		m.best = src
	}
	return true
}

// removeAt tries deleting slice element i, writing the shortened slice via
// set. It reports acceptance (the caller then re-reads the slice).
func removeAt[T any](m *minimizer, s []T, i int, set func([]T)) bool {
	cut := make([]T, 0, len(s)-1)
	cut = append(cut, s[:i]...)
	cut = append(cut, s[i+1:]...)
	return m.try(func() { set(cut) }, func() { set(s) })
}

// sweepDecls tries deleting top-level declarations and, for header and
// struct declarations, individual fields.
func (m *minimizer) sweepDecls() bool {
	changed := false
	for i := 0; i < len(m.prog.Decls); {
		if removeAt(m, m.prog.Decls, i, func(s []ast.Decl) { m.prog.Decls = s }) {
			changed = true
			continue
		}
		switch d := m.prog.Decls[i].(type) {
		case *ast.HeaderDecl:
			changed = m.sweepFields(&d.Fields) || changed
		case *ast.StructDecl:
			changed = m.sweepFields(&d.Fields) || changed
		}
		i++
	}
	return changed
}

// sweepFields tries deleting individual header/struct fields.
func (m *minimizer) sweepFields(fields *[]ast.FieldDecl) bool {
	changed := false
	for i := 0; i < len(*fields); {
		if removeAt(m, *fields, i, func(s []ast.FieldDecl) { *fields = s }) {
			changed = true
			continue
		}
		i++
	}
	return changed
}

// sweepLocals tries deleting a control's local declarations (variables,
// actions, tables); surviving actions have their bodies swept as blocks
// and surviving tables their keys and action lists.
func (m *minimizer) sweepLocals(c *ast.ControlDecl) bool {
	changed := false
	for i := 0; i < len(c.Locals); {
		if removeAt(m, c.Locals, i, func(s []ast.Decl) { c.Locals = s }) {
			changed = true
			continue
		}
		switch d := c.Locals[i].(type) {
		case *ast.FuncDecl:
			changed = m.sweepBlock(d.Body) || changed
		case *ast.TableDecl:
			changed = m.sweepTable(d) || changed
		}
		i++
	}
	return changed
}

// sweepTable tries deleting table keys, action refs, and the default
// action.
func (m *minimizer) sweepTable(d *ast.TableDecl) bool {
	changed := false
	for i := 0; i < len(d.Keys); {
		if removeAt(m, d.Keys, i, func(s []ast.TableKey) { d.Keys = s }) {
			changed = true
			continue
		}
		i++
	}
	for i := 0; i < len(d.Actions); {
		if removeAt(m, d.Actions, i, func(s []ast.ActionRef) { d.Actions = s }) {
			changed = true
			continue
		}
		i++
	}
	if d.Default != nil {
		old := d.Default
		if m.try(func() { d.Default = nil }, func() { d.Default = old }) {
			changed = true
		}
	}
	return changed
}

// sweepBlock tries, for each statement: deleting it outright; for ifs,
// splicing a branch's statements in place of the whole if, dropping the
// else, and recursing into both branches; for nested blocks, recursing.
func (m *minimizer) sweepBlock(b *ast.BlockStmt) bool {
	if b == nil {
		return false
	}
	changed := false
	for i := 0; i < len(b.Stmts); {
		if removeAt(m, b.Stmts, i, func(s []ast.Stmt) { b.Stmts = s }) {
			changed = true
			continue
		}
		switch s := b.Stmts[i].(type) {
		case *ast.IfStmt:
			if m.spliceIf(b, i, s) {
				changed = true
				continue // re-examine the spliced statements at index i
			}
			changed = m.sweepIf(s) || changed
		case *ast.BlockStmt:
			changed = m.sweepBlock(s) || changed
		}
		i++
	}
	return changed
}

// spliceIf tries replacing b.Stmts[i] (the if) with the statements of its
// then-branch, and failing that, of its else-branch — unguarding the body
// so the condition's taint disappears with it.
func (m *minimizer) spliceIf(b *ast.BlockStmt, i int, s *ast.IfStmt) bool {
	orig := b.Stmts
	splice := func(repl []ast.Stmt) bool {
		next := make([]ast.Stmt, 0, len(orig)-1+len(repl))
		next = append(next, orig[:i]...)
		next = append(next, repl...)
		next = append(next, orig[i+1:]...)
		return m.try(func() { b.Stmts = next }, func() { b.Stmts = orig })
	}
	if s.Then != nil && splice(s.Then.Stmts) {
		return true
	}
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		return splice(e.Stmts)
	case *ast.IfStmt:
		return splice([]ast.Stmt{e})
	}
	return false
}

// sweepIf shrinks within an if: drop the else entirely, then recurse into
// the branches.
func (m *minimizer) sweepIf(s *ast.IfStmt) bool {
	changed := false
	if s.Else != nil {
		old := s.Else
		if m.try(func() { s.Else = nil }, func() { s.Else = old }) {
			changed = true
		}
	}
	changed = m.sweepBlock(s.Then) || changed
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		changed = m.sweepBlock(e) || changed
	case *ast.IfStmt:
		changed = m.sweepIf(e) || changed
	}
	return changed
}
