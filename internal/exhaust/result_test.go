package exhaust

import (
	"errors"
	"testing"

	"repro/internal/ni"
)

// TestSweepResultOutcomes locks the sweep-result assembly, in particular
// that an error-interrupted sweep can never carry a proved-secure
// outcome: a partial enumeration proves nothing, so it must degrade to
// Inconclusive with the run-error reason (machine-run errors are not
// reproducible from well-typed sources, which is why this is tested at
// the assembly seam rather than end-to-end).
func TestSweepResultOutcomes(t *testing.T) {
	s := &sweeper{runs: 37}
	vio := &ni.Violation{Trial: 3, Where: "hdr", A: "0", B: "1"}

	if r := s.result(nil, true, nil); r.Outcome != ni.ProvedSecure || !r.Total || r.Assignments != 37 {
		t.Errorf("clean total sweep: %+v, want total proved-secure with 37 assignments", r)
	}
	if r := s.result(nil, false, nil); r.Outcome != ni.ProvedSecure || r.Total {
		t.Errorf("clean probe sweep: %+v, want non-total proved-secure", r)
	}
	if r := s.result(vio, false, nil); r.Outcome != ni.ProvedInsecure || len(r.Violations) != 1 {
		t.Errorf("witnessed sweep: %+v, want proved-insecure with the witness", r)
	}
	r := s.result(nil, true, errors.New("boom"))
	if r.Outcome != ni.ProvedSecure && r.Outcome != ni.Inconclusive {
		t.Fatalf("error-interrupted sweep: outcome %v", r.Outcome)
	}
	if r.Outcome == ni.ProvedSecure {
		t.Fatal("error-interrupted sweep claims proved-secure — a partial sweep must be inconclusive")
	}
	if r.Reason != ReasonRunError || r.Total {
		t.Errorf("error-interrupted sweep: reason %q total=%v, want %q and non-total", r.Reason, r.Total, ReasonRunError)
	}
	if r.Assignments != 37 || r.Trials != 37 {
		t.Errorf("error-interrupted sweep dropped the run counts: %+v", r)
	}
}
