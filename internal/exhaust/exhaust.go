// Package exhaust is the exhaustive non-interference oracle: the third
// NI backend behind the ni.Oracle interface, alongside the randomized
// and adaptive samplers.
//
// Where the randomized backends draw below-observer-equivalent input
// pairs, this one enumerates. For a fixed public (observable) input
// state, non-interference at observer l demands that every secret
// assignment produce identical observable outputs — so the oracle walks
// the whole secret space with an odometer over the control's
// secret-labeled scalar leaves, runs the compiled engine once per
// assignment, and compares each run's observable outputs against the
// first assignment's. Any mismatch is a constructive proof of
// interference (ProvedInsecure); covering the entire public × secret
// space with no mismatch is a proof of security (ProvedSecure).
//
// Enumeration is bounded by a run budget:
//
//   - total mode: |public| × |secret| ≤ Budget — the full input space is
//     enumerated; a clean sweep proves security over the whole space
//     (Result.Total set).
//   - probe mode: |secret| ≤ Budget but the public side is too wide
//     (every generated control carries 47 bits of low-labeled
//     standard_metadata alone) — every secret assignment is enumerated
//     at each randomly drawn public probe. ProvedSecure then asserts
//     only that no secret can influence the observables at the tested
//     public states (Result.Total stays false — a leak reachable only
//     at an unvisited public state is not excluded); ProvedInsecure
//     witnesses remain outright proofs. Downstream classification keys
//     on Total: only total-mode clean sweeps certify imprecision.
//   - ineligible: the secret space itself exceeds the budget, a secret
//     is int-typed (unbounded), or the experiment shape rules out
//     positional enumeration — Inconclusive, optionally delegating to a
//     sampling Fallback so witnesses can still be found.
package exhaust

import (
	"time"

	"repro/internal/eval"
	"repro/internal/metrics"
	"repro/internal/ni"
)

// DefaultBudget bounds machine runs per observer check when
// Oracle.Budget is zero. 2^16 keeps a campaign job under ~a tenth of a
// second; raise it (ISSUE 10 suggests up to 2^24) for proof-grade
// sweeps of a regression corpus.
const DefaultBudget = 1 << 16

// maxDerivedProbes caps the public probes derived from leftover budget
// in probe mode when Oracle.Probes is zero.
const maxDerivedProbes = 16

// Inconclusive reasons (ni.Result.Reason).
const (
	// ReasonSecretBudget: the secret space alone exceeds the run budget.
	ReasonSecretBudget = "width-budget-exceeded"
	// ReasonIntTyped: an int-typed secret input has no finite domain.
	ReasonIntTyped = "int-typed-secret"
	// ReasonOpaque: a parameter type has no enumerable value domain.
	ReasonOpaque = "opaque-typed-input"
	// ReasonMultiPacket: the multi-packet adversary needs sequence
	// enumeration, which the oracle does not attempt.
	ReasonMultiPacket = "multi-packet"
	// ReasonFixedInputs: FixInputs steers trials through a map-shaped
	// path the positional enumerator cannot reproduce.
	ReasonFixedInputs = "fixed-inputs"
	// ReasonDuplicateParams: duplicate parameter names force map-keyed
	// semantics.
	ReasonDuplicateParams = "duplicate-params"
	// ReasonNoCompile: the program only runs on the tree-walking
	// interpreter; enumeration requires the compiled engine.
	ReasonNoCompile = "compile-failed"
	// ReasonRunError: a machine run failed mid-sweep, so the sweep is
	// partial — whatever it covered proves nothing either way.
	ReasonRunError = "machine-run-error"
)

// Oracle is the exhaustive backend. The zero value enumerates with
// DefaultBudget and no fallback.
type Oracle struct {
	// Budget is the maximum machine runs one Check may spend
	// (0 = DefaultBudget). Eligibility and total-vs-probe mode are
	// decided against it before any run happens.
	Budget uint64
	// Probes fixes the number of public probes in probe mode
	// (0 = derived from the budget left after the secret space, capped
	// at 16).
	Probes int
	// Fallback, when non-nil, is consulted for experiments the
	// enumerator cannot touch at all (ineligible shapes, secret space
	// over budget) so sampled witnesses are still found; the combined
	// result keeps Outcome Inconclusive and the enumerator's Reason.
	Fallback ni.Oracle
}

// Name implements ni.Oracle.
func (o Oracle) Name() string { return "exhaustive" }

// Check implements ni.Oracle.
func (o Oracle) Check(e *ni.Experiment, seed int64) (ni.Result, error) {
	budget := o.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	start := time.Now()
	res, ran, err := o.enumerate(e, seed, budget)
	reg := e.Metrics
	reg.Histogram("exhaust_enumeration_seconds", metrics.DurationBuckets).Observe(time.Since(start).Seconds())
	reg.Counter("exhaust_assignments_total").Add(int64(res.Assignments))
	switch res.Outcome {
	case ni.ProvedSecure:
		reg.Counter("exhaust_proofs_total", "verdict", "secure").Inc()
	case ni.ProvedInsecure:
		reg.Counter("exhaust_proofs_total", "verdict", "insecure").Inc()
	case ni.Inconclusive:
		reg.Counter("exhaust_inconclusive_total", "reason", res.Reason).Inc()
	}
	if err != nil {
		return res, err
	}
	if !ran && o.Fallback != nil {
		// Nothing was enumerated; sample instead, but the verdict's
		// strength stays Inconclusive with the enumerator's reason.
		fres, ferr := o.Fallback.Check(e, seed)
		fres.Outcome = ni.Inconclusive
		fres.Reason = res.Reason
		return fres, ferr
	}
	return res, nil
}

// enumerate plans and runs the sweep; ran reports whether any
// enumeration happened (false for ineligible experiments, which makes
// the fallback worthwhile).
func (o Oracle) enumerate(e *ni.Experiment, seed int64, budget uint64) (ni.Result, bool, error) {
	inconclusive := func(reason string) (ni.Result, bool, error) {
		return ni.Result{Outcome: ni.Inconclusive, Reason: reason}, false, nil
	}
	if e.Packets > 1 {
		return inconclusive(ReasonMultiPacket)
	}
	if e.FixInputs != nil {
		return inconclusive(ReasonFixedInputs)
	}
	code := e.Engine()
	if code == nil {
		return inconclusive(ReasonNoCompile)
	}
	_, pts, err := e.ControlParams()
	if err != nil {
		return ni.Result{}, false, err
	}
	idx := code.ControlIndex(e.Control)
	if idx < 0 {
		return inconclusive(ReasonNoCompile)
	}
	names := code.ParamNames(idx)
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			return inconclusive(ReasonDuplicateParams)
		}
		seen[n] = true
	}
	obs := e.Observer
	if obs.IsZero() {
		obs = e.Lat.Bottom()
	}

	p := &plan{lat: e.Lat, obs: obs}
	for _, n := range names {
		st := pts[n]
		root, reason := p.walk(st)
		if reason != "" {
			return inconclusive(reason)
		}
		p.params = append(p.params, root)
		p.ptypes = append(p.ptypes, st)
	}
	secretCount, pubCount := uint64(1), uint64(1)
	for i, lf := range p.leaves {
		switch {
		case lf.radix == 0: // public int: no finite domain, drawn per probe
			p.intLeaves = append(p.intLeaves, i)
			pubCount = satInf
		case lf.secret:
			p.secretIdx = append(p.secretIdx, i)
			secretCount = satMul(secretCount, lf.radix)
		default:
			p.publicIdx = append(p.publicIdx, i)
			pubCount = satMul(pubCount, lf.radix)
		}
	}
	if secretCount > budget {
		return inconclusive(ReasonSecretBudget)
	}

	m, _ := e.Machines(code)
	sweep := &sweeper{plan: p, m: m, idx: idx, names: names}

	if satMul(secretCount, pubCount) <= budget {
		// Total mode: enumerate the whole public × secret space.
		pub := newOdometer(p, p.publicIdx)
		sec := newOdometer(p, p.secretIdx)
		for {
			vio, err := sweep.secrets(sec)
			if err != nil || vio != nil {
				return sweep.result(vio, true, err), true, err
			}
			if !pub.advance(p) {
				break
			}
		}
		return sweep.result(nil, true, nil), true, nil
	}

	// Probe mode: all secrets per randomly drawn public probe.
	probes := o.Probes
	if probes <= 0 {
		probes = maxDerivedProbes
	}
	if secretCount > 0 {
		if max := int(budget / secretCount); probes > max {
			probes = max
		}
	}
	if probes < 1 {
		probes = 1
	}
	rng := eval.NewBatchRand(seed)
	sec := newOdometer(p, p.secretIdx)
	for pr := 0; pr < probes; pr++ {
		for _, li := range p.publicIdx {
			p.vals[li] = eval.RandomFrom(p.leaves[li].t, rng)
		}
		for _, lf := range p.intLeaves {
			p.vals[lf] = eval.RandomFrom(p.leaves[lf].t, rng)
		}
		sec.reset(p)
		vio, err := sweep.secrets(sec)
		if err != nil || vio != nil {
			return sweep.result(vio, false, err), true, err
		}
	}
	return sweep.result(nil, false, nil), true, nil
}

// sweeper runs one enumerated assignment at a time and compares outputs
// against the current public state's baseline.
type sweeper struct {
	plan  *plan
	m     *eval.Machine
	idx   int
	names []string

	runs    uint64
	base    []eval.Value
	baseSig eval.Signal
}

// secrets enumerates the secret odometer for the current public state.
// The first assignment establishes the baseline observable outputs; any
// later assignment differing in an observable leaf (or signal form) is a
// violation.
func (s *sweeper) secrets(sec *odometer) (*ni.Violation, error) {
	p := s.plan
	first := true
	for {
		args := make([]eval.Value, len(p.params))
		for i, root := range p.params {
			args[i] = p.build(root)
		}
		s.m.Reset()
		outs, sig, err := s.m.RunIndexed(s.idx, args)
		s.runs++
		if err != nil {
			return nil, err
		}
		if first {
			first = false
			s.base = s.base[:0]
			for _, v := range outs {
				s.base = append(s.base, eval.Copy(v))
			}
			s.baseSig = sig
		} else {
			if sig.Kind != s.baseSig.Kind {
				return &ni.Violation{Trial: int(s.runs), Where: "signal",
					A: s.baseSig.String(), B: sig.String()}, nil
			}
			for i, v := range outs {
				if vio, ok := ni.DiffObservable(s.names[i], s.base[i], v, p.ptypes[i], p.obs, p.lat); !ok {
					vio.Trial = int(s.runs)
					return &vio, nil
				}
			}
		}
		if !sec.advance(p) {
			return nil, nil
		}
	}
}

// result assembles the uniform ni.Result for a finished,
// witness-interrupted, or error-interrupted sweep. An error means the
// sweep is partial, and a partial clean sweep proves nothing — the
// outcome degrades to Inconclusive so no caller can mistake it for a
// certificate. (A witness and an error never arrive together: secrets
// stops at whichever comes first.)
func (s *sweeper) result(vio *ni.Violation, total bool, err error) ni.Result {
	r := ni.Result{
		Trials:      int(s.runs),
		Assignments: s.runs,
		Total:       total,
		Outcome:     ni.ProvedSecure,
	}
	switch {
	case vio != nil:
		r.Violations = []ni.Violation{*vio}
		r.Outcome = ni.ProvedInsecure
	case err != nil:
		r.Outcome = ni.Inconclusive
		r.Reason = ReasonRunError
		r.Total = false
	}
	return r
}
