package exhaust_test

import (
	"strings"
	"testing"

	"repro/internal/exhaust"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/ni"
	"repro/internal/parser"
)

// insecureSrc leaks the secret guard into lo: whenever bhi is set the
// observable output flips, so enumeration must find a witness at any
// public probe.
const insecureSrc = `
header data_t {
    <bit<4>, low> lo;
    <bit<4>, high> hi;
    <bool, high> bhi;
}
struct headers { data_t d; }
control Leak(inout headers hdr) {
    apply {
        if (hdr.d.bhi) {
            hdr.d.lo = (hdr.d.lo ^ 4w1);
        }
    }
}
`

// secureSrc is IFC-rejected (low write under a high guard) but
// semantically non-interfering: the guarded assignment is the identity.
const secureSrc = `
header data_t {
    <bit<4>, low> lo;
    <bit<4>, high> hi;
    <bool, high> bhi;
}
struct headers { data_t d; }
control Noop(inout headers hdr) {
    apply {
        if (hdr.d.bhi) {
            hdr.d.lo = (hdr.d.lo ^ 4w0);
        }
    }
}
`

// wideSrc has 72 secret bits: far beyond any reasonable budget.
const wideSrc = `
header data_t {
    <bit<8>, low> lo;
    <bit<62>, high> wide0;
    <bit<10>, high> wide1;
}
struct headers { data_t d; }
control Wide(inout headers hdr) {
    apply {
        hdr.d.lo = (hdr.d.lo ^ 8w0);
    }
}
`

func check(t *testing.T, src string, o exhaust.Oracle) ni.Result {
	t.Helper()
	prog := parser.MustParse("exhaust_test.p4", src)
	e := &ni.Experiment{Prog: prog, Lat: lattice.TwoPoint()}
	res, err := o.Check(e, 7)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

func TestProvedInsecure(t *testing.T) {
	res := check(t, insecureSrc, exhaust.Oracle{})
	if res.Outcome != ni.ProvedInsecure {
		t.Fatalf("outcome = %v, want proved-insecure (reason %q)", res.Outcome, res.Reason)
	}
	if len(res.Violations) == 0 {
		t.Fatal("proved-insecure with no witness")
	}
	if res.Assignments == 0 {
		t.Fatal("no assignments counted")
	}
	if !strings.Contains(res.Violations[0].Where, "hdr") {
		t.Errorf("witness path %q does not name the parameter", res.Violations[0].Where)
	}
}

func TestProvedSecure(t *testing.T) {
	res := check(t, secureSrc, exhaust.Oracle{})
	if res.Outcome != ni.ProvedSecure {
		t.Fatalf("outcome = %v (reason %q), want proved-secure", res.Outcome, res.Reason)
	}
	// 2^4 public × 2^5 secret fits the default budget: a total proof.
	if want := uint64(16 * 32); res.Assignments != want {
		t.Errorf("assignments = %d, want %d", res.Assignments, want)
	}
	if !res.Total {
		t.Error("full-space sweep should claim a total proof")
	}
}

// TestProbeMode: a wide public side forces probe mode — all secrets per
// drawn probe, no total claim.
func TestProbeMode(t *testing.T) {
	const src = `
header data_t {
    <bit<40>, low> lo;
    <bit<4>, high> hi;
    <bool, high> bhi;
}
struct headers { data_t d; }
control Probe(inout headers hdr) {
    apply {
        hdr.d.lo = (hdr.d.lo ^ 40w0);
    }
}
`
	res := check(t, src, exhaust.Oracle{})
	if res.Outcome != ni.ProvedSecure {
		t.Fatalf("outcome = %v (reason %q), want proved-secure", res.Outcome, res.Reason)
	}
	if res.Total {
		t.Error("probe-mode sweep must not claim a total proof (40 public bits don't fit)")
	}
	// 2^5 secrets at each of the 16 derived probes.
	if want := uint64(32 * 16); res.Assignments != want {
		t.Errorf("assignments = %d, want %d", res.Assignments, want)
	}
}

// TestTotalProof shrinks the budget question away: a control whose whole
// input space fits the budget gets a Total proof.
func TestTotalProof(t *testing.T) {
	const src = `
header data_t {
    <bit<2>, low> lo;
    <bit<2>, high> hi;
}
struct headers { data_t d; }
control Tiny(inout headers hdr) {
    apply {
        hdr.d.lo = (hdr.d.lo ^ 2w1);
    }
}
`
	res := check(t, src, exhaust.Oracle{})
	if res.Outcome != ni.ProvedSecure || !res.Total {
		t.Fatalf("outcome = %v total=%v, want total proved-secure", res.Outcome, res.Total)
	}
	if res.Assignments != 16 {
		t.Errorf("assignments = %d, want 16 (2^2 public × 2^2 secret)", res.Assignments)
	}
}

func TestInconclusiveOverBudget(t *testing.T) {
	res := check(t, wideSrc, exhaust.Oracle{})
	if res.Outcome != ni.Inconclusive || res.Reason != exhaust.ReasonSecretBudget {
		t.Fatalf("outcome = %v reason=%q, want inconclusive %q", res.Outcome, res.Reason, exhaust.ReasonSecretBudget)
	}
	if res.Assignments != 0 {
		t.Errorf("assignments = %d for an ineligible program", res.Assignments)
	}
}

// TestFallback: an ineligible program still gets sampled witnesses from
// the fallback oracle, but the outcome stays inconclusive.
func TestFallback(t *testing.T) {
	const src = `
header data_t {
    <bit<8>, low> lo;
    <bit<62>, high> wide0;
    <bit<10>, high> wide1;
    <bool, high> bhi;
}
struct headers { data_t d; }
control WideLeak(inout headers hdr) {
    apply {
        if (hdr.d.bhi) {
            hdr.d.lo = (hdr.d.lo ^ 8w1);
        }
    }
}
`
	res := check(t, src, exhaust.Oracle{Fallback: ni.Randomized{Trials: 64}})
	if res.Outcome != ni.Inconclusive || res.Reason != exhaust.ReasonSecretBudget {
		t.Fatalf("outcome = %v reason=%q, want inconclusive %q", res.Outcome, res.Reason, exhaust.ReasonSecretBudget)
	}
	if len(res.Violations) == 0 {
		t.Fatal("fallback found no witness for a leaking program")
	}
}

func TestMetricsRecorded(t *testing.T) {
	reg := metrics.NewRegistry()
	prog := parser.MustParse("exhaust_test.p4", secureSrc)
	e := &ni.Experiment{Prog: prog, Lat: lattice.TwoPoint(), Metrics: reg}
	if _, err := (exhaust.Oracle{}).Check(e, 7); err != nil {
		t.Fatalf("Check: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counter("exhaust_assignments_total") == 0 {
		t.Error("exhaust_assignments_total not recorded")
	}
	if snap.Counter("exhaust_proofs_total", "verdict", "secure") != 1 {
		t.Error("exhaust_proofs_total{verdict=secure} not recorded")
	}
}

// TestDeterministic: same seed, same verdict, same assignment count.
func TestDeterministic(t *testing.T) {
	a := check(t, insecureSrc, exhaust.Oracle{})
	b := check(t, insecureSrc, exhaust.Oracle{})
	if a.Outcome != b.Outcome || a.Assignments != b.Assignments {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a.Outcome, a.Assignments, b.Outcome, b.Assignments)
	}
	if len(a.Violations) > 0 && a.Violations[0].String() != b.Violations[0].String() {
		t.Fatalf("witness drift: %s vs %s", a.Violations[0], b.Violations[0])
	}
}
