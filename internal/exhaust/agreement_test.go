package exhaust_test

import (
	"testing"

	"repro/internal/exhaust"
	"repro/internal/lattice"
	"repro/internal/ni"
	"repro/internal/parser"
)

// Cross-oracle agreement: the exhaustive oracle's proof-grade verdicts
// and randomized sampling must never contradict each other.
//
//   - proved-insecure: the enumerated witness is a real counterexample,
//     so whenever randomized sampling finds its own witness it must point
//     at the same violating observable (same parameter path) — two
//     oracles disagreeing on *where* the leak is would mean one of them
//     diffs the wrong outputs;
//   - proved-secure: the whole secret space was swept clean, so no
//     randomized seed may ever produce a witness. 500 independent seeds
//     lock the claim.

const agreementSeeds = 500

func TestAgreementProvedInsecure(t *testing.T) {
	res := check(t, insecureSrc, exhaust.Oracle{})
	if res.Outcome != ni.ProvedInsecure || len(res.Violations) == 0 {
		t.Fatalf("outcome = %v with %d witnesses, want proved-insecure", res.Outcome, len(res.Violations))
	}
	proved := res.Violations[0]

	prog := parser.MustParse("agreement.p4", insecureSrc)
	e := &ni.Experiment{Prog: prog, Lat: lattice.TwoPoint()}
	found := 0
	for seed := int64(0); seed < agreementSeeds; seed++ {
		sres, err := (ni.Randomized{Trials: 8}).Check(e, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(sres.Violations) == 0 {
			continue
		}
		found++
		for _, v := range sres.Violations {
			if v.Where != proved.Where {
				t.Fatalf("seed %d: randomized witness at %q, exhaustive witness at %q — the oracles disagree on the leaking observable",
					seed, v.Where, proved.Where)
			}
		}
	}
	if found == 0 {
		t.Fatal("randomized sampling never found the enumerated leak — the sampler is not exercising the secret space")
	}
	// The witness-finding rate recorded in EXPERIMENTS.md comes from this
	// measurement: how many of the seeds independently rediscover the
	// proved leak.
	t.Logf("randomized witness-finding rate: %d/%d seeds (%.1f%%) at 8 trials each",
		found, agreementSeeds, 100*float64(found)/float64(agreementSeeds))
}

func TestAgreementProvedSecure(t *testing.T) {
	res := check(t, secureSrc, exhaust.Oracle{})
	if res.Outcome != ni.ProvedSecure {
		t.Fatalf("outcome = %v (reason %q), want proved-secure", res.Outcome, res.Reason)
	}
	// The zero-witness claim below is only sound against a total proof:
	// a probe-mode sweep leaves public states a randomized seed could
	// legitimately find a leak at.
	if !res.Total {
		t.Fatalf("secureSrc swept in probe mode — the agreement property needs a total proof")
	}

	prog := parser.MustParse("agreement.p4", secureSrc)
	e := &ni.Experiment{Prog: prog, Lat: lattice.TwoPoint()}
	for seed := int64(0); seed < agreementSeeds; seed++ {
		sres, err := (ni.Randomized{Trials: 8}).Check(e, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(sres.Violations) > 0 {
			t.Fatalf("seed %d: randomized witness %+v against a proved-secure program — the oracles contradict",
				seed, sres.Violations[0])
		}
	}
}
