package exhaust

import (
	"repro/internal/eval"
	"repro/internal/lattice"
	"repro/internal/types"
)

// satInf is the saturated "too many to count" cardinality.
const satInf = ^uint64(0)

// satMul multiplies saturating at satInf, so space sizes compare safely
// against the budget without overflow.
func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > satInf/b {
		return satInf
	}
	return a * b
}

// leafInfo is one scalar leaf of the control's input surface. radix is
// the size of its value domain (satInf for bit widths ≥ 63, 0 for
// int-typed leaves, which have none).
type leafInfo struct {
	t      types.Type
	radix  uint64
	secret bool
}

// Container node kinds.
const (
	nodeRecord = iota
	nodeHeader
	nodeStack
)

// node mirrors a parameter's type shape: leaves index into plan.leaves,
// containers rebuild a fresh value tree per run (RunIndexed takes
// ownership of containers; scalar leaves are immutable and shared).
type node struct {
	leaf     int // index into plan.leaves, or -1 for a container
	kind     int
	names    []string // field names for record/header
	children []*node
}

// plan is the flattened enumeration state: one slot per scalar leaf,
// odometers spinning the secret (and, in total mode, public) slots, and
// per-param shape trees rebuilding argument values from the slots.
type plan struct {
	lat lattice.Lattice
	obs lattice.Label

	leaves []leafInfo
	vals   []eval.Value

	params []*node
	ptypes []types.SecType

	secretIdx []int // enumerable secret leaves
	publicIdx []int // enumerable public leaves
	intLeaves []int // int-typed public leaves: drawn randomly per probe
}

// walk flattens one parameter's security type into leaves, classifying
// each scalar leaf secret iff its label does not flow to the observer.
// A non-empty reason marks the whole experiment enumeration-ineligible.
func (p *plan) walk(st types.SecType) (*node, string) {
	if types.IsScalar(st.T) {
		radix, ok := leafRadix(st.T)
		if !ok {
			return nil, ReasonOpaque
		}
		secret := !p.lat.Leq(st.L, p.obs)
		if radix == 0 && secret {
			return nil, ReasonIntTyped
		}
		idx := len(p.leaves)
		p.leaves = append(p.leaves, leafInfo{t: st.T, radix: radix, secret: secret})
		p.vals = append(p.vals, zeroValue(st.T))
		return &node{leaf: idx}, ""
	}
	switch tt := st.T.(type) {
	case *types.Record, *types.Header:
		var fields []types.Field
		kind := nodeRecord
		if h, ok := tt.(*types.Header); ok {
			fields, kind = h.Fields, nodeHeader
		} else {
			fields = tt.(*types.Record).Fields
		}
		n := &node{leaf: -1, kind: kind}
		for _, f := range fields {
			c, reason := p.walk(f.Type)
			if reason != "" {
				return nil, reason
			}
			n.names = append(n.names, f.Name)
			n.children = append(n.children, c)
		}
		return n, ""
	case *types.Stack:
		n := &node{leaf: -1, kind: nodeStack}
		for i := 0; i < tt.Size; i++ {
			c, reason := p.walk(tt.Elem)
			if reason != "" {
				return nil, reason
			}
			n.children = append(n.children, c)
		}
		return n, ""
	default:
		return nil, ReasonOpaque
	}
}

// build assembles a fresh argument value tree for one run from the
// current leaf slots.
func (p *plan) build(n *node) eval.Value {
	if n.leaf >= 0 {
		return p.vals[n.leaf]
	}
	switch n.kind {
	case nodeStack:
		es := make([]eval.Value, len(n.children))
		for i, c := range n.children {
			es[i] = p.build(c)
		}
		return &eval.StackVal{Elems: es}
	default:
		fs := make([]eval.NamedValue, len(n.children))
		for i, c := range n.children {
			fs[i] = eval.NamedValue{Name: n.names[i], Val: p.build(c)}
		}
		if n.kind == nodeHeader {
			return &eval.HeaderVal{Valid: true, Fields: fs}
		}
		return &eval.RecordVal{Fields: fs}
	}
}

// leafRadix is the size of a scalar type's value domain; 0 means no
// finite domain (int), !ok means no enumerable domain at all.
func leafRadix(t types.Type) (uint64, bool) {
	switch t := t.(type) {
	case types.Bool:
		return 2, true
	case types.Bit:
		if t.W >= 63 {
			return satInf, true
		}
		return uint64(1) << uint(t.W), true
	case types.Unit:
		return 1, true
	case *types.MatchKind:
		if len(t.Members) == 0 {
			return 1, true
		}
		return uint64(len(t.Members)), true
	case types.Int:
		return 0, true
	default:
		return 0, false
	}
}

// leafValue materializes digit d of a scalar leaf's domain; like
// eval.RandomFrom, headers are always valid and match_kinds with no
// members collapse to "exact".
func leafValue(t types.Type, d uint64) eval.Value {
	switch t := t.(type) {
	case types.Bool:
		return eval.BoolVal(d == 1)
	case types.Bit:
		return eval.NewBit(t.W, d)
	case types.Unit:
		return eval.UnitVal{}
	case *types.MatchKind:
		if len(t.Members) == 0 {
			return eval.MatchKindVal("exact")
		}
		return eval.MatchKindVal(t.Members[d])
	case types.Int:
		return eval.IntVal(int64(d))
	}
	return eval.UnitVal{}
}

// zeroValue is digit 0 of a leaf's domain.
func zeroValue(t types.Type) eval.Value { return leafValue(t, 0) }

// odometer spins a subset of the plan's leaf slots through their full
// cartesian domain, least-significant first. After a full cycle
// (advance returning false) every slot is back at digit 0.
type odometer struct {
	idx    []int
	digits []uint64
}

func newOdometer(p *plan, idx []int) *odometer {
	od := &odometer{idx: idx, digits: make([]uint64, len(idx))}
	od.reset(p)
	return od
}

func (od *odometer) reset(p *plan) {
	for i, li := range od.idx {
		od.digits[i] = 0
		p.vals[li] = zeroValue(p.leaves[li].t)
	}
}

// advance steps to the next assignment, updating only the slots whose
// digits changed; false means the space is exhausted (and reset).
func (od *odometer) advance(p *plan) bool {
	for i, li := range od.idx {
		od.digits[i]++
		if od.digits[i] < p.leaves[li].radix {
			p.vals[li] = leafValue(p.leaves[li].t, od.digits[i])
			return true
		}
		od.digits[i] = 0
		p.vals[li] = zeroValue(p.leaves[li].t)
	}
	return false
}
