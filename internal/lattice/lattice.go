// Package lattice implements the security lattices used by the P4BID
// information-flow control type system.
//
// A security lattice (L, ⊑) supplies the labels χ attached to P4 types.
// The paper uses the two-point lattice {low ⊑ high} for confidentiality,
// integrity, and timing case studies, and the four-point diamond lattice
// {⊥ ⊑ A, B ⊑ ⊤} (Figure 8b) for network isolation. This package provides
// those lattices plus several generalizations mentioned as future work:
// n-party diamonds, powerset lattices, linear chains, and products.
//
// All lattices are finite, and every implementation satisfies the lattice
// laws (commutativity, associativity, idempotence, absorption, and the
// consistency of ⊑ with join/meet); these laws are property-tested in
// lattice_test.go.
package lattice

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Label is an element of a security lattice. Labels are compared only
// through the Lattice that produced them; mixing labels from different
// lattices is a programming error and panics.
type Label struct {
	lat  Lattice
	name string
}

// Name returns the label's name within its lattice (e.g. "high", "A").
func (l Label) Name() string { return l.name }

// String implements fmt.Stringer.
func (l Label) String() string { return l.name }

// Lattice returns the lattice this label belongs to.
func (l Label) Lattice() Lattice { return l.lat }

// IsZero reports whether l is the zero Label (belonging to no lattice).
func (l Label) IsZero() bool { return l.lat == nil }

// Lattice is a finite bounded security lattice.
type Lattice interface {
	// Name returns a short identifier for the lattice (e.g. "two-point").
	Name() string
	// Bottom returns the least element ⊥ (public / most trusted).
	Bottom() Label
	// Top returns the greatest element ⊤ (secret / least trusted).
	Top() Label
	// Leq reports whether a ⊑ b.
	Leq(a, b Label) bool
	// Join returns the least upper bound a ⊔ b.
	Join(a, b Label) Label
	// Meet returns the greatest lower bound a ⊓ b.
	Meet(a, b Label) Label
	// Lookup resolves a label by name; ok is false if the name is unknown.
	Lookup(name string) (Label, bool)
	// Elements returns all elements in a deterministic order.
	Elements() []Label
}

// table is a generic finite-lattice implementation backed by explicit
// join/meet tables computed from a ⊑ relation. All concrete lattices in
// this package reduce to it.
type table struct {
	name  string
	elems []string       // index -> name, deterministic order
	index map[string]int // name -> index
	leq   [][]bool
	join  [][]int
	meet  [][]int
	bot   int
	top   int
}

var _ Lattice = (*table)(nil)

// newTable builds a lattice from element names and the reflexive-transitive
// ⊑ relation described by covers: covers[x] lists elements directly above x.
// It validates that the order has unique joins/meets and unique ⊥/⊤,
// returning an error otherwise.
func newTable(name string, elems []string, covers map[string][]string) (*table, error) {
	n := len(elems)
	if n == 0 {
		return nil, fmt.Errorf("lattice %q: no elements", name)
	}
	t := &table{name: name, elems: elems, index: make(map[string]int, n)}
	for i, e := range elems {
		if _, dup := t.index[e]; dup {
			return nil, fmt.Errorf("lattice %q: duplicate element %q", name, e)
		}
		t.index[e] = i
	}
	// Reflexive-transitive closure of the cover relation.
	t.leq = make([][]bool, n)
	for i := range t.leq {
		t.leq[i] = make([]bool, n)
		t.leq[i][i] = true
	}
	for lo, ups := range covers {
		i, ok := t.index[lo]
		if !ok {
			return nil, fmt.Errorf("lattice %q: cover source %q not an element", name, lo)
		}
		for _, hi := range ups {
			j, ok := t.index[hi]
			if !ok {
				return nil, fmt.Errorf("lattice %q: cover target %q not an element", name, hi)
			}
			t.leq[i][j] = true
		}
	}
	for k := 0; k < n; k++ { // Warshall
		for i := 0; i < n; i++ {
			if !t.leq[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if t.leq[k][j] {
					t.leq[i][j] = true
				}
			}
		}
	}
	// Antisymmetry check.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && t.leq[i][j] && t.leq[j][i] {
				return nil, fmt.Errorf("lattice %q: %s and %s are order-equivalent", name, elems[i], elems[j])
			}
		}
	}
	// Joins and meets by exhaustive search; must exist and be unique.
	t.join = make([][]int, n)
	t.meet = make([][]int, n)
	for i := 0; i < n; i++ {
		t.join[i] = make([]int, n)
		t.meet[i] = make([]int, n)
		for j := 0; j < n; j++ {
			jn, err := t.bound(i, j, true)
			if err != nil {
				return nil, fmt.Errorf("lattice %q: %v", name, err)
			}
			mt, err := t.bound(i, j, false)
			if err != nil {
				return nil, fmt.Errorf("lattice %q: %v", name, err)
			}
			t.join[i][j] = jn
			t.meet[i][j] = mt
		}
	}
	// Unique bottom and top.
	t.bot, t.top = -1, -1
	for i := 0; i < n; i++ {
		isBot, isTop := true, true
		for j := 0; j < n; j++ {
			if !t.leq[i][j] {
				isBot = false
			}
			if !t.leq[j][i] {
				isTop = false
			}
		}
		if isBot {
			t.bot = i
		}
		if isTop {
			t.top = i
		}
	}
	if t.bot < 0 || t.top < 0 {
		return nil, fmt.Errorf("lattice %q: missing bottom or top", name)
	}
	return t, nil
}

// bound returns the least upper bound (upper=true) or greatest lower bound
// (upper=false) of elements i and j, or an error if none exists.
func (t *table) bound(i, j int, upper bool) (int, error) {
	n := len(t.elems)
	var cands []int
	for k := 0; k < n; k++ {
		if upper && t.leq[i][k] && t.leq[j][k] {
			cands = append(cands, k)
		}
		if !upper && t.leq[k][i] && t.leq[k][j] {
			cands = append(cands, k)
		}
	}
	for _, c := range cands {
		least := true
		for _, d := range cands {
			if upper && !t.leq[c][d] {
				least = false
				break
			}
			if !upper && !t.leq[d][c] {
				least = false
				break
			}
		}
		if least {
			return c, nil
		}
	}
	kind := "join"
	if !upper {
		kind = "meet"
	}
	return 0, fmt.Errorf("no unique %s for %s and %s", kind, t.elems[i], t.elems[j])
}

func (t *table) Name() string { return t.name }

func (t *table) Bottom() Label { return Label{t, t.elems[t.bot]} }

func (t *table) Top() Label { return Label{t, t.elems[t.top]} }

func (t *table) idx(l Label) int {
	if l.lat != t {
		panic(fmt.Sprintf("lattice: label %q does not belong to lattice %q", l.name, t.name))
	}
	i, ok := t.index[l.name]
	if !ok {
		panic(fmt.Sprintf("lattice: label %q unknown in lattice %q", l.name, t.name))
	}
	return i
}

func (t *table) Leq(a, b Label) bool { return t.leq[t.idx(a)][t.idx(b)] }

func (t *table) Join(a, b Label) Label { return Label{t, t.elems[t.join[t.idx(a)][t.idx(b)]]} }

func (t *table) Meet(a, b Label) Label { return Label{t, t.elems[t.meet[t.idx(a)][t.idx(b)]]} }

func (t *table) Lookup(name string) (Label, bool) {
	if _, ok := t.index[name]; ok {
		return Label{t, name}, true
	}
	return Label{}, false
}

func (t *table) Elements() []Label {
	out := make([]Label, len(t.elems))
	for i, e := range t.elems {
		out[i] = Label{t, e}
	}
	return out
}

// JoinAll folds Join over labels, starting from the lattice bottom.
func JoinAll(l Lattice, labels ...Label) Label {
	acc := l.Bottom()
	for _, x := range labels {
		acc = l.Join(acc, x)
	}
	return acc
}

// MeetAll folds Meet over labels, starting from the lattice top.
func MeetAll(l Lattice, labels ...Label) Label {
	acc := l.Top()
	for _, x := range labels {
		acc = l.Meet(acc, x)
	}
	return acc
}

// TwoPoint returns the classic {low ⊑ high} lattice used throughout the
// paper's confidentiality, integrity, and timing case studies. The names
// "bot"/"top" and "public"/"secret" are accepted as aliases by Lookup via
// the wrapper returned here.
func TwoPoint() Lattice {
	t, err := newTable("two-point", []string{"low", "high"}, map[string][]string{"low": {"high"}})
	if err != nil {
		panic(err)
	}
	return &aliased{t, map[string]string{
		"bot": "low", "bottom": "low", "public": "low", "trusted": "low",
		"top": "high", "secret": "high", "untrusted": "high",
	}}
}

// Diamond returns the four-point diamond lattice of Figure 8b:
// ⊥ ⊑ A, B ⊑ ⊤ with A and B incomparable. Lookup accepts "alice"/"bob"
// and "low"/"high" aliases to match the paper's Listing 6 annotations.
func Diamond() Lattice {
	t, err := newTable("diamond", []string{"bot", "A", "B", "top"}, map[string][]string{
		"bot": {"A", "B"},
		"A":   {"top"},
		"B":   {"top"},
	})
	if err != nil {
		panic(err)
	}
	return &aliased{t, map[string]string{
		"alice": "A", "bob": "B", "low": "bot", "high": "top",
		"bottom": "bot", "telem": "top",
	}}
}

// NParty returns a diamond lattice with n mutually-incomparable parties
// between ⊥ and ⊤, generalizing Figure 8b as suggested in Section 5.4
// ("the same idea can be directly generalized to more parties"). Parties
// are named P0..P(n-1) unless names are given.
func NParty(names ...string) Lattice {
	if len(names) == 0 {
		panic("lattice: NParty requires at least one party")
	}
	elems := append([]string{"bot"}, names...)
	elems = append(elems, "top")
	covers := map[string][]string{"bot": names}
	for _, p := range names {
		covers[p] = []string{"top"}
	}
	t, err := newTable(fmt.Sprintf("%d-party", len(names)), elems, covers)
	if err != nil {
		panic(err)
	}
	return &aliased{t, map[string]string{"low": "bot", "high": "top", "bottom": "bot"}}
}

// Chain returns a linear lattice L0 ⊑ L1 ⊑ ... ⊑ L(n-1). Chains are used
// by the scaling benchmarks to measure checker cost as lattice height grows.
func Chain(n int) Lattice {
	if n < 1 {
		panic("lattice: Chain requires n >= 1")
	}
	elems := make([]string, n)
	covers := make(map[string][]string, n)
	for i := range elems {
		elems[i] = fmt.Sprintf("L%d", i)
	}
	for i := 0; i+1 < n; i++ {
		covers[elems[i]] = []string{elems[i+1]}
	}
	t, err := newTable(fmt.Sprintf("chain-%d", n), elems, covers)
	if err != nil {
		panic(err)
	}
	return &aliased{t, map[string]string{"low": elems[0], "bot": elems[0], "high": elems[n-1], "top": elems[n-1]}}
}

// Powerset returns the lattice of subsets of the given atoms ordered by
// inclusion: ⊥ = {} and ⊤ = the full set. Element names use the
// label-safe spelling "p_" + "_"-joined sorted atoms — "p_a_b" for
// {a,b}, the bare "p_" for the empty set — so every element lexes as a
// P4 identifier and powerset lattices work end-to-end through generated
// and hand-written annotations alike. The historical brace spellings
// ("{a,b}", "{}") remain accepted by Lookup as aliases, as is each bare
// atom for its singleton. Atoms must be alphanumeric starting with a
// letter and must not contain underscores (which would make the "_"
// joiner ambiguous). Powerset lattices model decentralized-label-style
// policies.
func Powerset(atoms ...string) Lattice {
	if len(atoms) == 0 {
		panic("lattice: Powerset requires at least one atom")
	}
	if len(atoms) > 10 {
		panic("lattice: Powerset limited to 10 atoms")
	}
	for _, a := range atoms {
		if !atomOK(a) {
			panic(fmt.Sprintf("lattice: Powerset atom %q must be alphanumeric (letter first, no underscores)", a))
		}
	}
	sorted := append([]string(nil), atoms...)
	sort.Strings(sorted)
	n := 1 << len(sorted)
	elems := make([]string, n)
	for m := 0; m < n; m++ {
		elems[m] = subsetLabel(sorted, m)
	}
	covers := make(map[string][]string)
	for m := 0; m < n; m++ {
		var ups []string
		for b := 0; b < len(sorted); b++ {
			if m&(1<<b) == 0 {
				ups = append(ups, subsetLabel(sorted, m|1<<b))
			}
		}
		covers[elems[m]] = ups
	}
	t, err := newTable(fmt.Sprintf("powerset-%d", len(sorted)), elems, covers)
	if err != nil {
		panic(err)
	}
	al := map[string]string{"low": elems[0], "bot": elems[0], "high": elems[n-1], "top": elems[n-1]}
	for i, a := range sorted {
		al[a] = subsetLabel(sorted, 1<<i)
	}
	for m := 0; m < n; m++ {
		al[subsetBraces(sorted, m)] = elems[m]
	}
	return &aliased{t, al}
}

// atomOK reports whether a powerset atom yields unambiguous, lexable
// element names: letters and digits only, starting with a letter.
func atomOK(a string) bool {
	for i, r := range a {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return a != ""
}

// subsetLabel spells a subset as a lexable identifier: "p_a_b" for
// {a,b}, "p_" for the empty set.
func subsetLabel(atoms []string, mask int) string {
	name := "p"
	for i, a := range atoms {
		if mask&(1<<i) != 0 {
			name += "_" + a
		}
	}
	if name == "p" {
		return "p_"
	}
	return name
}

// subsetBraces is the historical brace spelling, kept as a Lookup alias.
func subsetBraces(atoms []string, mask int) string {
	var parts []string
	for i, a := range atoms {
		if mask&(1<<i) != 0 {
			parts = append(parts, a)
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Product returns the component-wise product lattice of a and b. Element
// names use the label-safe spelling "x_" + aName + "_" + bName —
// "x_low_high" for (low, high) — so every element lexes as a P4
// identifier and product lattices work end-to-end through generated and
// hand-written annotations alike (the powerset treatment). The historical
// "low×high" spellings remain accepted by Lookup as aliases. Products let
// operators combine, e.g., a confidentiality lattice with an integrity
// lattice.
func Product(a, b Lattice) Lattice {
	ae, be := a.Elements(), b.Elements()
	elems := make([]string, 0, len(ae)*len(be))
	name := func(x, y Label) string { return "x_" + x.Name() + "_" + y.Name() }
	for _, x := range ae {
		for _, y := range be {
			elems = append(elems, name(x, y))
		}
	}
	covers := make(map[string][]string)
	for _, x := range ae {
		for _, y := range be {
			var ups []string
			for _, x2 := range ae {
				for _, y2 := range be {
					if (x.Name() != x2.Name() || y.Name() != y2.Name()) &&
						a.Leq(x, x2) && b.Leq(y, y2) {
						ups = append(ups, name(x2, y2))
					}
				}
			}
			covers[name(x, y)] = ups
		}
	}
	t, err := newTable("product("+a.Name()+","+b.Name()+")", elems, covers)
	if err != nil {
		panic(err)
	}
	al := map[string]string{
		"low":  name(a.Bottom(), b.Bottom()),
		"bot":  name(a.Bottom(), b.Bottom()),
		"high": name(a.Top(), b.Top()),
		"top":  name(a.Top(), b.Top()),
	}
	for _, x := range ae {
		for _, y := range be {
			al[x.Name()+"×"+y.Name()] = name(x, y)
		}
	}
	return &aliased{t, al}
}

// aliased wraps a table lattice with alternate names accepted by Lookup.
type aliased struct {
	*table
	aliases map[string]string
}

func (a *aliased) Lookup(name string) (Label, bool) {
	if canon, ok := a.aliases[name]; ok {
		name = canon
	}
	return a.table.Lookup(name)
}

// ByName constructs one of the named stock lattices: "two-point",
// "diamond", "chain-N"/"chain:N", "nparty:N", "powerset:N" for a
// positive integer N, or "product:a,b" where a and b are themselves
// ByName specs ("product:two-point,diamond", "product:chain:3,two-point").
// It is used by the CLI tools' -lattice flags and by gen.Config.Lattice.
// A powerset:N lattice has atoms a, b, c, … and 2^N elements spelled
// label-safely ("p_a_b"), so powerset campaigns work end-to-end; N is
// capped at 6 here — 64 elements already means 64 generated field groups
// per program, and beyond that the spec is almost certainly a typo.
// Product specs carry the same 64-element cap, and the same label-safe
// treatment ("x_low_high"), for the same reason.
func ByName(name string) (Lattice, error) {
	switch {
	case name == "" || name == "two-point" || name == "2pt":
		return TwoPoint(), nil
	case name == "diamond":
		return Diamond(), nil
	case strings.HasPrefix(name, "product:"):
		parts := strings.Split(strings.TrimPrefix(name, "product:"), ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("lattice: bad product spec %q (want product:a,b — exactly two component specs)", name)
		}
		a, err := ByName(parts[0])
		if err != nil {
			return nil, fmt.Errorf("lattice: product component %q: %w", parts[0], err)
		}
		b, err := ByName(parts[1])
		if err != nil {
			return nil, fmt.Errorf("lattice: product component %q: %w", parts[1], err)
		}
		if n := len(a.Elements()) * len(b.Elements()); n > 64 {
			return nil, fmt.Errorf("lattice: product spec %q has %d elements (cap 64)", name, n)
		}
		return Product(a, b), nil
	case strings.HasPrefix(name, "chain-"), strings.HasPrefix(name, "chain:"):
		n, err := specArg(name)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("lattice: bad chain spec %q (want chain:N, N >= 1)", name)
		}
		return Chain(n), nil
	case strings.HasPrefix(name, "nparty-"), strings.HasPrefix(name, "nparty:"):
		n, err := specArg(name)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("lattice: bad nparty spec %q (want nparty:N, N >= 1)", name)
		}
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("P%d", i)
		}
		return NParty(names...), nil
	case strings.HasPrefix(name, "powerset-"), strings.HasPrefix(name, "powerset:"):
		n, err := specArg(name)
		if err != nil || n < 1 || n > 6 {
			return nil, fmt.Errorf("lattice: bad powerset spec %q (want powerset:N, 1 <= N <= 6)", name)
		}
		atoms := make([]string, n)
		for i := range atoms {
			atoms[i] = string(rune('a' + i))
		}
		return Powerset(atoms...), nil
	default:
		return nil, fmt.Errorf("lattice: unknown lattice %q (want two-point, diamond, chain:N, nparty:N, powerset:N, or product:a,b)", name)
	}
}

// specArg parses the integer argument of a "kind:N" or "kind-N" spec,
// rejecting trailing garbage (Sscanf would accept "chain:4x").
func specArg(spec string) (int, error) {
	arg := spec[strings.IndexAny(spec, ":-")+1:]
	return strconv.Atoi(arg)
}
