package lattice

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func allLattices() map[string]Lattice {
	return map[string]Lattice{
		"two-point": TwoPoint(),
		"diamond":   Diamond(),
		"3-party":   NParty("A", "B", "C"),
		"chain-1":   Chain(1),
		"chain-5":   Chain(5),
		"powerset3": Powerset("a", "b", "c"),
		"product":   Product(TwoPoint(), Diamond()),
	}
}

// randomLabel draws a uniformly random element of l.
func randomLabel(l Lattice, r *rand.Rand) Label {
	es := l.Elements()
	return es[r.Intn(len(es))]
}

func TestLatticeLaws(t *testing.T) {
	for name, l := range allLattices() {
		l := l
		t.Run(name, func(t *testing.T) {
			cfg := &quick.Config{MaxCount: 500}
			// Commutativity.
			if err := quick.Check(func(i, j int) bool {
				es := l.Elements()
				a, b := es[abs(i)%len(es)], es[abs(j)%len(es)]
				return l.Join(a, b) == l.Join(b, a) && l.Meet(a, b) == l.Meet(b, a)
			}, cfg); err != nil {
				t.Errorf("commutativity: %v", err)
			}
			// Associativity.
			if err := quick.Check(func(i, j, k int) bool {
				es := l.Elements()
				a, b, c := es[abs(i)%len(es)], es[abs(j)%len(es)], es[abs(k)%len(es)]
				return l.Join(l.Join(a, b), c) == l.Join(a, l.Join(b, c)) &&
					l.Meet(l.Meet(a, b), c) == l.Meet(a, l.Meet(b, c))
			}, cfg); err != nil {
				t.Errorf("associativity: %v", err)
			}
			// Idempotence and absorption.
			if err := quick.Check(func(i, j int) bool {
				es := l.Elements()
				a, b := es[abs(i)%len(es)], es[abs(j)%len(es)]
				return l.Join(a, a) == a && l.Meet(a, a) == a &&
					l.Join(a, l.Meet(a, b)) == a && l.Meet(a, l.Join(a, b)) == a
			}, cfg); err != nil {
				t.Errorf("idempotence/absorption: %v", err)
			}
			// Order consistency: a ⊑ b iff a⊔b = b iff a⊓b = a.
			if err := quick.Check(func(i, j int) bool {
				es := l.Elements()
				a, b := es[abs(i)%len(es)], es[abs(j)%len(es)]
				return l.Leq(a, b) == (l.Join(a, b) == b) &&
					l.Leq(a, b) == (l.Meet(a, b) == a)
			}, cfg); err != nil {
				t.Errorf("order consistency: %v", err)
			}
		})
	}
}

func abs(i int) int {
	if i < 0 {
		if i == -i { // MinInt
			return 0
		}
		return -i
	}
	return i
}

func TestBounds(t *testing.T) {
	for name, l := range allLattices() {
		bot, top := l.Bottom(), l.Top()
		for _, e := range l.Elements() {
			if !l.Leq(bot, e) {
				t.Errorf("%s: bottom %s not below %s", name, bot, e)
			}
			if !l.Leq(e, top) {
				t.Errorf("%s: %s not below top %s", name, e, top)
			}
		}
	}
}

func TestJoinMeetAreBounds(t *testing.T) {
	for name, l := range allLattices() {
		es := l.Elements()
		for _, a := range es {
			for _, b := range es {
				j, m := l.Join(a, b), l.Meet(a, b)
				if !l.Leq(a, j) || !l.Leq(b, j) {
					t.Errorf("%s: join %s⊔%s=%s is not an upper bound", name, a, b, j)
				}
				if !l.Leq(m, a) || !l.Leq(m, b) {
					t.Errorf("%s: meet %s⊓%s=%s is not a lower bound", name, a, b, m)
				}
				// Leastness/greatestness.
				for _, c := range es {
					if l.Leq(a, c) && l.Leq(b, c) && !l.Leq(j, c) {
						t.Errorf("%s: %s⊔%s=%s not least (%s also ub)", name, a, b, j, c)
					}
					if l.Leq(c, a) && l.Leq(c, b) && !l.Leq(c, m) {
						t.Errorf("%s: %s⊓%s=%s not greatest (%s also lb)", name, a, b, m, c)
					}
				}
			}
		}
	}
}

func TestTwoPoint(t *testing.T) {
	l := TwoPoint()
	low, ok := l.Lookup("low")
	if !ok {
		t.Fatal("no low")
	}
	high, ok := l.Lookup("high")
	if !ok {
		t.Fatal("no high")
	}
	if !l.Leq(low, high) || l.Leq(high, low) {
		t.Fatalf("low/high ordering wrong")
	}
	if l.Bottom() != low || l.Top() != high {
		t.Fatalf("bounds wrong: bot=%s top=%s", l.Bottom(), l.Top())
	}
	for alias, want := range map[string]string{"public": "low", "secret": "high", "bot": "low", "top": "high", "untrusted": "high", "trusted": "low"} {
		got, ok := l.Lookup(alias)
		if !ok || got.Name() != want {
			t.Errorf("alias %q: got %v,%v want %s", alias, got, ok, want)
		}
	}
	if _, ok := l.Lookup("nonsense"); ok {
		t.Error("lookup of unknown name succeeded")
	}
}

func TestDiamond(t *testing.T) {
	l := Diamond()
	a, _ := l.Lookup("A")
	b, _ := l.Lookup("B")
	bot, _ := l.Lookup("bot")
	top, _ := l.Lookup("top")
	if l.Leq(a, b) || l.Leq(b, a) {
		t.Error("A and B should be incomparable")
	}
	if l.Join(a, b) != top {
		t.Errorf("A⊔B = %s, want top", l.Join(a, b))
	}
	if l.Meet(a, b) != bot {
		t.Errorf("A⊓B = %s, want bot", l.Meet(a, b))
	}
	if got, _ := l.Lookup("alice"); got != a {
		t.Errorf("alias alice -> %s, want A", got)
	}
	if got, _ := l.Lookup("bob"); got != b {
		t.Errorf("alias bob -> %s, want B", got)
	}
}

func TestNParty(t *testing.T) {
	l := NParty("A", "B", "C")
	if len(l.Elements()) != 5 {
		t.Fatalf("3-party lattice has %d elements, want 5", len(l.Elements()))
	}
	a, _ := l.Lookup("A")
	c, _ := l.Lookup("C")
	if l.Leq(a, c) || l.Leq(c, a) {
		t.Error("parties should be incomparable")
	}
	if l.Join(a, c) != l.Top() {
		t.Error("join of two parties should be top")
	}
}

func TestChain(t *testing.T) {
	l := Chain(4)
	es := l.Elements()
	if len(es) != 4 {
		t.Fatalf("chain-4 has %d elements", len(es))
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if l.Leq(es[i], es[j]) != (i <= j) {
				t.Errorf("chain order wrong at %d,%d", i, j)
			}
		}
	}
	if l.Bottom() != es[0] || l.Top() != es[3] {
		t.Error("chain bounds wrong")
	}
}

func TestPowerset(t *testing.T) {
	l := Powerset("a", "b")
	if len(l.Elements()) != 4 {
		t.Fatalf("powerset-2 has %d elements, want 4", len(l.Elements()))
	}
	a, ok := l.Lookup("a")
	if !ok {
		t.Fatal("atom a not found")
	}
	b, _ := l.Lookup("b")
	if l.Leq(a, b) || l.Leq(b, a) {
		t.Error("singletons should be incomparable")
	}
	if l.Join(a, b).Name() != "p_a_b" {
		t.Errorf("join = %s, want p_a_b", l.Join(a, b))
	}
	if l.Meet(a, b).Name() != "p_" {
		t.Errorf("meet = %s, want p_", l.Meet(a, b))
	}
	// Every element name must lex as a P4 identifier — the label-spelling
	// scheme that makes powerset campaigns expressible in annotations.
	for _, e := range l.Elements() {
		for i, r := range e.Name() {
			ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || (i > 0 && r >= '0' && r <= '9')
			if !ok {
				t.Errorf("element %q is not a lexable label", e.Name())
			}
		}
	}
	// The historical brace spellings stay available as Lookup aliases.
	for alias, want := range map[string]string{"{a,b}": "p_a_b", "{}": "p_", "{b}": "p_b", "a": "p_a"} {
		got, ok := l.Lookup(alias)
		if !ok || got.Name() != want {
			t.Errorf("Lookup(%q) = %v, %v; want %s", alias, got, ok, want)
		}
	}
}

// TestPowersetAtomValidation: atoms that would make the "_"-joined
// spelling ambiguous or unlexable are rejected up front.
func TestPowersetAtomValidation(t *testing.T) {
	for _, bad := range []string{"a_b", "", "1a", "a,b", "{x}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Powerset(%q) did not panic", bad)
				}
			}()
			Powerset(bad)
		}()
	}
}

func TestProduct(t *testing.T) {
	l := Product(TwoPoint(), TwoPoint())
	if len(l.Elements()) != 4 {
		t.Fatalf("product has %d elements, want 4", len(l.Elements()))
	}
	// Canonical element names are label-safe identifiers ("x_low_high"),
	// so product elements survive the lexer in source annotations; the
	// historical "low×high" spellings remain Lookup aliases and resolve
	// to the same labels.
	lh, ok := l.Lookup("x_low_high")
	if !ok {
		t.Fatal("x_low_high not found")
	}
	if alias, ok := l.Lookup("low×high"); !ok || alias != lh {
		t.Fatalf("alias low×high = %v, %v; want x_low_high", alias, ok)
	}
	for _, e := range l.Elements() {
		if !strings.HasPrefix(e.Name(), "x_") {
			t.Errorf("product element %q is not label-safe spelled", e.Name())
		}
	}
	hl, _ := l.Lookup("high×low")
	if l.Leq(lh, hl) || l.Leq(hl, lh) {
		t.Error("mixed pairs should be incomparable")
	}
	if bot, _ := l.Lookup("bot"); bot != l.Bottom() {
		t.Error("bot alias does not reach the product bottom")
	}
}

func TestJoinAllMeetAll(t *testing.T) {
	l := Diamond()
	a, _ := l.Lookup("A")
	b, _ := l.Lookup("B")
	if JoinAll(l, a, b) != l.Top() {
		t.Error("JoinAll(A,B) != top")
	}
	if MeetAll(l, a, b) != l.Bottom() {
		t.Error("MeetAll(A,B) != bot")
	}
	if JoinAll(l) != l.Bottom() {
		t.Error("empty JoinAll != bottom")
	}
	if MeetAll(l) != l.Top() {
		t.Error("empty MeetAll != top")
	}
}

func TestByName(t *testing.T) {
	cases := []struct {
		in   string
		ok   bool
		want string
	}{
		{"", true, "two-point"},
		{"two-point", true, "two-point"},
		{"2pt", true, "two-point"},
		{"diamond", true, "diamond"},
		{"chain-3", true, "chain-3"},
		{"chain:3", true, "chain-3"},
		{"chain-0", false, ""},
		{"chain:4x", false, ""},
		{"nparty:3", true, "3-party"},
		{"nparty-2", true, "2-party"},
		{"nparty:0", false, ""},
		{"powerset:2", true, "powerset-2"},
		{"powerset-3", true, "powerset-3"},
		{"powerset:0", false, ""},
		{"powerset:7", false, ""},
		{"powerset:2x", false, ""},
		{"product:two-point,diamond", true, "product(two-point,diamond)"},
		{"product:chain:3,two-point", true, "product(chain-3,two-point)"},
		{"product:two-point", false, ""},
		{"product:two-point,weird", false, ""},
		{"product:powerset:6,powerset:6", false, ""}, // 4096 elements: over the cap
		{"weird", false, ""},
	}
	for _, c := range cases {
		l, err := ByName(c.in)
		if c.ok && (err != nil || l.Name() != c.want) {
			t.Errorf("ByName(%q) = %v, %v; want %s", c.in, l, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ByName(%q) succeeded, want error", c.in)
		}
	}
}

func TestMixedLatticePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mixing labels from two lattices did not panic")
		}
	}()
	a := TwoPoint()
	b := Diamond()
	la, _ := a.Lookup("low")
	lb, _ := b.Lookup("A")
	a.Leq(la, lb)
}

func TestDistributivityOfStockLattices(t *testing.T) {
	// The two-point, chain, powerset, diamond (2 incomparable atoms),
	// and their products are distributive. n-party lattices with n >= 3
	// contain M3 and are only modular, so they are excluded here.
	distributive := map[string]Lattice{
		"two-point": TwoPoint(),
		"diamond":   Diamond(),
		"chain-5":   Chain(5),
		"powerset3": Powerset("a", "b", "c"),
		"product":   Product(TwoPoint(), Diamond()),
	}
	for name, l := range distributive {
		es := l.Elements()
		for _, a := range es {
			for _, b := range es {
				for _, c := range es {
					lhs := l.Meet(a, l.Join(b, c))
					rhs := l.Join(l.Meet(a, b), l.Meet(a, c))
					if lhs != rhs {
						t.Errorf("%s: distributivity fails at %s,%s,%s", name, a, b, c)
					}
				}
			}
		}
	}
}

func TestRandomLabelCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	l := Diamond()
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[randomLabel(l, r).Name()] = true
	}
	if len(seen) != 4 {
		t.Errorf("random labels covered %d/4 elements", len(seen))
	}
}
