// Package token defines the lexical tokens of the P4 subset accepted by the
// P4BID frontend, along with source positions used in diagnostics.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keywords occupy the range (keywordBeg, keywordEnd).
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT  // foo, hdr, ipv4_lpm
	INT    // 123, 0x1F, 8w255 (width handled by the lexer as two tokens)
	TRUE   // true
	FALSE  // false
	STRING // "..." (reserved; unused by the core grammar)

	// Punctuation.
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	DOT       // .
	AT        // @

	// Operators.
	ASSIGN  // =
	NOT     // !
	BITNOT  // ~
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	AMP     // &
	PIPE    // |
	CARET   // ^
	AND     // &&
	OR      // ||
	EQ      // ==
	NEQ     // !=
	LT      // <
	GT      // >
	LEQ     // <=
	GEQ     // >=
	SHL     // <<
	SHR     // >>

	keywordBeg
	// Keywords.
	ACTION
	APPLY
	BIT
	BOOL
	CONTROL
	ELSE
	EXIT
	FUNCTION
	HEADER
	IF
	IN
	INOUT
	INT_T // "int" type keyword (INT is the literal)
	MATCH_KIND
	OUT
	RETURN
	STRUCT
	TABLE
	TYPEDEF
	VOID
	CONST
	REGISTER
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "identifier", INT: "integer",
	TRUE: "true", FALSE: "false", STRING: "string",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", COMMA: ",", SEMICOLON: ";", COLON: ":",
	DOT: ".", AT: "@", ASSIGN: "=", NOT: "!", BITNOT: "~",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", PIPE: "|", CARET: "^", AND: "&&", OR: "||",
	EQ: "==", NEQ: "!=", LT: "<", GT: ">", LEQ: "<=", GEQ: ">=",
	SHL: "<<", SHR: ">>",
	ACTION: "action", APPLY: "apply", BIT: "bit", BOOL: "bool",
	CONTROL: "control", ELSE: "else", EXIT: "exit", FUNCTION: "function",
	HEADER: "header", IF: "if", IN: "in", INOUT: "inout", INT_T: "int",
	MATCH_KIND: "match_kind", OUT: "out",
	RETURN: "return", STRUCT: "struct", TABLE: "table", TYPEDEF: "typedef",
	VOID: "void", CONST: "const", REGISTER: "register",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[kindNames[k]] = k
	}
	m["true"] = TRUE
	m["false"] = FALSE
	return m
}()

// LookupIdent maps an identifier spelling to its keyword kind, or IDENT.
func LookupIdent(s string) Kind {
	if k, ok := keywords[s]; ok {
		return k
	}
	return IDENT
}

// Pos is a source position: 1-based line and column plus the file name.
type Pos struct {
	File string
	Line int
	Col  int
}

// String formats the position as file:line:col (or line:col without a file).
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a lexical token with its spelling and position.
type Token struct {
	Kind Kind
	Lit  string // original spelling for IDENT, INT, STRING
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
