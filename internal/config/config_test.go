package config_test

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/progs"
)

const cacheCfg = `
{
  "control": "Cache_Ingress",
  "tables": [
    {
      "name": "fetch_from_cache",
      "entries": [
        {
          "patterns": [{"kind": "exact", "width": 8, "value": 42}],
          "action": "cache_hit",
          "args": [777]
        }
      ],
      "default": {"action": "cache_miss"}
    }
  ],
  "inputs": {
    "hdr": {"req": {"query": 42}}
  }
}
`

func cacheInterp(t *testing.T) *eval.Interp {
	t.Helper()
	p, _ := progs.ByName("Cache")
	prog := parser.MustParse("cache.p4", p.Source(progs.Fixed))
	in, err := eval.New(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestEndToEndConfig(t *testing.T) {
	cfg, err := config.Parse([]byte(cacheCfg))
	if err != nil {
		t.Fatal(err)
	}
	in := cacheInterp(t)
	if err := cfg.Install(in); err != nil {
		t.Fatal(err)
	}
	inputs, err := cfg.BuildInputs(in)
	if err != nil {
		t.Fatal(err)
	}
	out, sig, err := in.RunControl(cfg.Control, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Kind != eval.SigCont {
		t.Fatalf("signal %s", sig)
	}
	enc := config.EncodeValue(out["hdr"]).(map[string]any)
	resp := enc["resp"].(map[string]any)
	if resp["hit"] != true {
		t.Errorf("hit = %v, want true (query 42 is cached)", resp["hit"])
	}
	if resp["value"] != uint64(777) {
		t.Errorf("value = %v (%T), want 777", resp["value"], resp["value"])
	}
}

func TestDefaultActionViaConfig(t *testing.T) {
	cfg, err := config.Parse([]byte(strings.Replace(cacheCfg, `"query": 42`, `"query": 9`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	in := cacheInterp(t)
	if err := cfg.Install(in); err != nil {
		t.Fatal(err)
	}
	inputs, err := cfg.BuildInputs(in)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := in.RunControl(cfg.Control, inputs)
	if err != nil {
		t.Fatal(err)
	}
	resp := config.EncodeValue(out["hdr"]).(map[string]any)["resp"].(map[string]any)
	if resp["hit"] != false {
		t.Errorf("hit = %v, want false (miss -> default cache_miss)", resp["hit"])
	}
}

func TestBadConfigs(t *testing.T) {
	cases := []struct{ name, cfg, want string }{
		{"bad-json", `{`, "config"},
		{"unknown-table", `{"tables":[{"name":"ghost"}]}`, "no table"},
		{"unknown-input-field", `{"inputs":{"hdr":{"req":{"zzz":1}}}}`, "unknown field"},
		{"bad-bit-value", `{"inputs":{"hdr":{"req":{"query":-1}}}}`, "nonnegative"},
		{"fractional", `{"inputs":{"hdr":{"req":{"query":1.5}}}}`, "nonnegative integer"},
		{"bool-for-bit", `{"inputs":{"hdr":{"req":{"query":true}}}}`, "number"},
		{"unknown-param", `{"inputs":{"ghost":{}}}`, "no parameter"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg, err := config.Parse([]byte(c.cfg))
			if err != nil {
				if !strings.Contains(err.Error(), c.want) {
					t.Fatalf("parse error %q does not contain %q", err, c.want)
				}
				return
			}
			in := cacheInterp(t)
			err = cfg.Install(in)
			if err == nil {
				_, err = cfg.BuildInputs(in)
			}
			if err == nil {
				t.Fatalf("config accepted, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestEncodeValueShapes(t *testing.T) {
	v := &eval.RecordVal{Fields: []eval.NamedValue{
		{Name: "h", Val: &eval.HeaderVal{Valid: true, Fields: []eval.NamedValue{
			{Name: "x", Val: eval.NewBit(8, 5)},
			{Name: "b", Val: eval.BoolVal(true)},
		}}},
		{Name: "s", Val: &eval.StackVal{Elems: []eval.Value{eval.NewBit(4, 1), eval.NewBit(4, 2)}}},
		{Name: "n", Val: eval.IntVal(-3)},
		{Name: "u", Val: eval.UnitVal{}},
		{Name: "m", Val: eval.MatchKindVal("exact")},
	}}
	enc := config.EncodeValue(v).(map[string]any)
	h := enc["h"].(map[string]any)
	if h["_valid"] != true || h["x"] != uint64(5) || h["b"] != true {
		t.Errorf("header encoded wrong: %v", h)
	}
	s := enc["s"].([]any)
	if len(s) != 2 || s[1] != uint64(2) {
		t.Errorf("stack encoded wrong: %v", s)
	}
	if enc["n"] != int64(-3) || enc["u"] != nil || enc["m"] != "exact" {
		t.Errorf("scalars encoded wrong: %v", enc)
	}
}

func TestOmittedFieldsAreZero(t *testing.T) {
	cfg, err := config.Parse([]byte(`{"inputs":{"hdr":{}}}`))
	if err != nil {
		t.Fatal(err)
	}
	in := cacheInterp(t)
	inputs, err := cfg.BuildInputs(in)
	if err != nil {
		t.Fatal(err)
	}
	enc := config.EncodeValue(inputs["hdr"]).(map[string]any)
	if enc["req"].(map[string]any)["query"] != uint64(0) {
		t.Errorf("omitted field not zero: %v", enc)
	}
}
