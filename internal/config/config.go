// Package config loads run configurations for the p4run tool: control-plane
// table entries plus initial values for a control's parameters, from a JSON
// document:
//
//	{
//	  "control": "Cache_Ingress",
//	  "tables": [
//	    {
//	      "name": "fetch_from_cache",
//	      "entries": [
//	        {
//	          "patterns": [{"kind": "exact", "width": 8, "value": 42}],
//	          "action": "cache_hit",
//	          "args": [777]
//	        }
//	      ],
//	      "default": {"action": "cache_miss"}
//	    }
//	  ],
//	  "inputs": {
//	    "hdr": {"req": {"query": 42}, "resp": {"hit": false, "value": 0}}
//	  }
//	}
//
// Input values are matched against the control's resolved parameter types:
// numbers fill bit<n>/int fields, booleans fill bool fields, and nested
// objects fill structs and headers. Omitted fields default to zero.
package config

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/controlplane"
	"repro/internal/eval"
	"repro/internal/types"
)

// Pattern mirrors controlplane.Pattern in JSON form.
type Pattern struct {
	Kind      string `json:"kind"`
	Width     int    `json:"width"`
	Value     uint64 `json:"value"`
	PrefixLen int    `json:"prefix_len,omitempty"`
	Mask      uint64 `json:"mask,omitempty"`
}

// Entry mirrors controlplane.Entry.
type Entry struct {
	Patterns []Pattern `json:"patterns"`
	Action   string    `json:"action"`
	Args     []uint64  `json:"args,omitempty"`
	Priority int       `json:"priority,omitempty"`
}

// Default is a table's default action.
type Default struct {
	Action string   `json:"action"`
	Args   []uint64 `json:"args,omitempty"`
}

// Table is the installed state of one table.
type Table struct {
	Name    string   `json:"name"`
	Entries []Entry  `json:"entries,omitempty"`
	Default *Default `json:"default,omitempty"`
}

// Config is a full run configuration.
type Config struct {
	// Control names the control block to run ("" = first).
	Control string `json:"control,omitempty"`
	// Tables lists control-plane entries to install.
	Tables []Table `json:"tables,omitempty"`
	// Inputs maps parameter names to JSON values.
	Inputs map[string]json.RawMessage `json:"inputs,omitempty"`
}

// Parse decodes a JSON configuration.
func Parse(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("config: %v", err)
	}
	return &c, nil
}

// Install applies the configuration's table entries to the interpreter's
// control plane.
func (c *Config) Install(in *eval.Interp) error {
	cp := in.ControlPlane()
	for _, t := range c.Tables {
		if cp.Table(t.Name) == nil {
			return fmt.Errorf("config: program declares no table %q", t.Name)
		}
		for _, e := range t.Entries {
			ps := make([]controlplane.Pattern, len(e.Patterns))
			for i, p := range e.Patterns {
				ps[i] = controlplane.Pattern{
					Kind: p.Kind, Value: p.Value, PrefixLen: p.PrefixLen,
					Mask: p.Mask, Width: p.Width,
				}
				if p.Kind == "ternary" && p.Mask == 0 && p.Value != 0 {
					return fmt.Errorf("config: table %q: ternary pattern with zero mask but nonzero value never constrains", t.Name)
				}
			}
			if err := cp.Install(t.Name, controlplane.Entry{
				Patterns: ps, Action: e.Action, Args: e.Args, Priority: e.Priority,
			}); err != nil {
				return err
			}
		}
		if t.Default != nil {
			if err := cp.SetDefault(t.Name, t.Default.Action, t.Default.Args...); err != nil {
				return err
			}
		}
	}
	return nil
}

// BuildInputs converts the configuration's JSON inputs to runtime values
// using the control's parameter types.
func (c *Config) BuildInputs(in *eval.Interp) (map[string]eval.Value, error) {
	out := map[string]eval.Value{}
	for name, raw := range c.Inputs {
		st, err := in.ParamType(c.Control, name)
		if err != nil {
			return nil, err
		}
		v, err := decodeValue(raw, st.T)
		if err != nil {
			return nil, fmt.Errorf("config: input %q: %v", name, err)
		}
		out[name] = v
	}
	return out, nil
}

func decodeValue(raw json.RawMessage, t types.Type) (eval.Value, error) {
	switch t := t.(type) {
	case types.Bool:
		var b bool
		if err := json.Unmarshal(raw, &b); err != nil {
			return nil, fmt.Errorf("want bool: %v", err)
		}
		return eval.BoolVal(b), nil
	case types.Int:
		var n int64
		if err := json.Unmarshal(raw, &n); err != nil {
			return nil, fmt.Errorf("want integer: %v", err)
		}
		return eval.IntVal(n), nil
	case types.Bit:
		var f float64
		if err := json.Unmarshal(raw, &f); err != nil {
			return nil, fmt.Errorf("want number: %v", err)
		}
		if f < 0 || f != math.Trunc(f) {
			return nil, fmt.Errorf("bit<%d> value must be a nonnegative integer, got %v", t.W, f)
		}
		return eval.NewBit(t.W, uint64(f)), nil
	case *types.Record:
		return decodeFields(raw, t.Fields, false)
	case *types.Header:
		return decodeFields(raw, t.Fields, true)
	case *types.Stack:
		var elems []json.RawMessage
		if err := json.Unmarshal(raw, &elems); err != nil {
			return nil, fmt.Errorf("want array: %v", err)
		}
		if len(elems) > t.Size {
			return nil, fmt.Errorf("stack of size %d given %d elements", t.Size, len(elems))
		}
		es := make([]eval.Value, t.Size)
		for i := range es {
			if i < len(elems) {
				v, err := decodeValue(elems[i], t.Elem.T)
				if err != nil {
					return nil, fmt.Errorf("[%d]: %v", i, err)
				}
				es[i] = v
			} else {
				es[i] = eval.Zero(t.Elem.T)
			}
		}
		return &eval.StackVal{Elems: es}, nil
	default:
		return nil, fmt.Errorf("cannot decode a value of type %s", t)
	}
}

func decodeFields(raw json.RawMessage, fields []types.Field, header bool) (eval.Value, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("want object: %v", err)
	}
	for k := range m {
		found := false
		for _, f := range fields {
			if f.Name == k {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown field %q", k)
		}
	}
	fs := make([]eval.NamedValue, len(fields))
	for i, f := range fields {
		if raw, ok := m[f.Name]; ok {
			v, err := decodeValue(raw, f.Type.T)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", f.Name, err)
			}
			fs[i] = eval.NamedValue{Name: f.Name, Val: v}
		} else {
			fs[i] = eval.NamedValue{Name: f.Name, Val: eval.Zero(f.Type.T)}
		}
	}
	if header {
		return &eval.HeaderVal{Valid: true, Fields: fs}, nil
	}
	return &eval.RecordVal{Fields: fs}, nil
}

// EncodeValue renders a runtime value as JSON-compatible data for output.
func EncodeValue(v eval.Value) any {
	switch v := v.(type) {
	case eval.BoolVal:
		return bool(v)
	case eval.IntVal:
		return int64(v)
	case eval.BitVal:
		return v.V
	case eval.UnitVal:
		return nil
	case eval.MatchKindVal:
		return string(v)
	case *eval.RecordVal:
		m := map[string]any{}
		for _, f := range v.Fields {
			m[f.Name] = EncodeValue(f.Val)
		}
		return m
	case *eval.HeaderVal:
		m := map[string]any{"_valid": v.Valid}
		for _, f := range v.Fields {
			m[f.Name] = EncodeValue(f.Val)
		}
		return m
	case *eval.StackVal:
		out := make([]any, len(v.Elems))
		for i, e := range v.Elems {
			out[i] = EncodeValue(e)
		}
		return out
	default:
		return v.String()
	}
}
