package parser_test

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/progs"
)

// seedCorpus adds every embedded case-study variant plus a few generated
// and adversarial sources to the fuzz corpus.
func seedCorpus(f *testing.F) {
	for _, p := range progs.All() {
		for _, v := range []progs.Variant{progs.Buggy, progs.Fixed, progs.Unannotated} {
			f.Add(p.Source(v))
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4; i++ {
		f.Add(gen.Random(rng, gen.DefaultConfig()))
	}
	f.Add(gen.Synth(2, 2, 2))
	f.Add(gen.SynthChainLabels(3))
	// Adversarial fragments: deep nesting, split >> tokens, stray bytes.
	f.Add("control C(inout bit<8> x) { apply { x = ((((x)))); } }")
	f.Add("header h { bit<8>[4][2] s; }")
	f.Add("typedef <bit<8>, high> t8;")
	f.Add("control C() { apply { if (true) { exit; } else if (false) { return; } } }")
	f.Add("\x00\xff{<>>=")
	f.Add("const bit<64> x = 64w18446744073709551615;")
}

// FuzzParse asserts the parser never panics: it must either return a
// program or a syntax error for arbitrary input.
func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse("fuzz.p4", src)
		if err == nil && prog == nil {
			t.Fatal("nil program with nil error")
		}
	})
}

// FuzzRoundtrip asserts parse → print → reparse is lossless on the printed
// form: any input the parser accepts must print to source the parser also
// accepts, and the second parse must print identically (printing is a
// fixed point after one iteration).
func FuzzRoundtrip(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse("fuzz.p4", src)
		if err != nil {
			t.Skip()
		}
		printed := ast.Print(prog)
		reparsed, err := parser.Parse("fuzz.p4", printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\nprinted:\n%s", err, printed)
		}
		if again := ast.Print(reparsed); again != printed {
			t.Fatalf("print not a fixed point:\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
	})
}
