// Package parser implements a recursive-descent parser for the P4 subset
// of the P4BID paper: the Core P4 fragment of Figure 1 in its natural P4-16
// surface syntax, extended with the security annotations <τ, χ> of
// Listing 2 and an optional @pc("label") annotation on control blocks
// (Section 5.4 checks Alice's control at pc = A and Bob's at pc = B).
//
// The grammar (see testdata in parser_test.go for examples):
//
//	program   := topDecl*
//	topDecl   := typedef | match_kind | header | struct | const | control
//	control   := [ '@' 'pc' '(' label ')' ] 'control' name '(' params ')'
//	             '{' (action | function | table | var | const)* apply '}'
//	action    := 'action' name '(' params ')' block
//	function  := 'function' retType name '(' params ')' block
//	table     := 'table' name '{' 'key' '=' '{' (expr ':' kind ';')* '}'
//	             'actions' '=' '{' (ref ';')* '}' [default_action = ref ';'] '}'
//	secType   := '<' baseType ',' label '>' | baseType
//	baseType  := 'bool' | 'int' | 'bit' '<' INT '>' | 'void' | name, each
//	             optionally suffixed '[' INT ']' for header stacks
//
// Statements and expressions follow Figure 1; t.apply() in statement
// position parses to a dedicated ApplyStmt node.
package parser

import (
	"errors"
	"fmt"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/token"
)

// Parse parses a complete program. file names the source in positions.
func Parse(file, src string) (*ast.Program, error) {
	p := &parser{lx: lexer.New(file, src)}
	prog := &ast.Program{File: file}
	var perr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if b, ok := r.(bailout); ok {
					perr = b.err
					return
				}
				panic(r)
			}
		}()
		// Inside the recovered region: lexing the first token can already
		// fail (e.g. an unterminated string literal).
		p.next()
		for p.tok.Kind != token.EOF {
			d := p.parseTopDecl()
			if c, ok := d.(*ast.ControlDecl); ok {
				prog.Controls = append(prog.Controls, c)
			} else {
				prog.Decls = append(prog.Decls, d)
			}
		}
	}()
	if perr != nil {
		return nil, perr
	}
	return prog, nil
}

// ParseExpr parses a single expression (used by tests and the REPL-ish
// tooling).
func ParseExpr(src string) (e ast.Expr, err error) {
	p := &parser{lx: lexer.New("", src)}
	defer func() {
		if r := recover(); r != nil {
			if b, ok := r.(bailout); ok {
				err = b.err
				return
			}
			panic(r)
		}
	}()
	p.next()
	e = p.parseExpr()
	p.expect(token.EOF)
	return e, nil
}

type bailout struct{ err error }

type parser struct {
	lx  *lexer.Lexer
	tok token.Token
}

func (p *parser) next() {
	t, err := p.lx.Next()
	if err != nil {
		panic(bailout{err})
	}
	p.tok = t
}

func (p *parser) errf(pos token.Pos, format string, args ...any) {
	panic(bailout{fmt.Errorf("%s: syntax error: %s", pos, fmt.Sprintf(format, args...))})
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.tok.Kind != k {
		p.errf(p.tok.Pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	if k != token.EOF {
		p.next()
	}
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// expectCloseAngle consumes a single '>' in type context, splitting a '>>'
// token into two closing angles when necessary (e.g. stack of bit types).
func (p *parser) expectCloseAngle() {
	switch p.tok.Kind {
	case token.GT:
		p.next()
	case token.SHR:
		// Split >> into > >.
		pos := p.tok.Pos
		pos.Col++
		p.next()
		p.lx.Push(token.Token{Kind: token.GT, Pos: pos})
	case token.GEQ:
		// Split >= into > =.
		pos := p.tok.Pos
		pos.Col++
		p.next()
		p.lx.Push(token.Token{Kind: token.ASSIGN, Pos: pos})
	default:
		p.errf(p.tok.Pos, "expected '>' closing type, found %s", p.tok)
	}
}

// ---------------------------------------------------------------------------
// Types

// parseSecType parses <base, label> or a bare base type (label "").
func (p *parser) parseSecType() *ast.SecType {
	pos := p.tok.Pos
	if p.tok.Kind == token.LT {
		p.next()
		base := p.parseBaseType()
		p.expect(token.COMMA)
		lbl := p.expect(token.IDENT).Lit
		p.expectCloseAngle()
		st := &ast.SecType{P: pos, Base: base, Label: lbl}
		return p.parseStackSuffix(st)
	}
	base := p.parseBaseType()
	st := &ast.SecType{P: pos, Base: base}
	return p.parseStackSuffix(st)
}

// parseStackSuffix wraps st in stack types for each [N] suffix.
func (p *parser) parseStackSuffix(st *ast.SecType) *ast.SecType {
	for p.tok.Kind == token.LBRACKET {
		pos := p.tok.Pos
		p.next()
		sz := p.parseIntConst()
		p.expect(token.RBRACKET)
		st = &ast.SecType{P: st.P, Base: &ast.StackType{P: pos, Elem: st, Size: sz}}
	}
	return st
}

func (p *parser) parseIntConst() int {
	t := p.expect(token.INT)
	v, w, hasW, err := lexer.DecodeInt(t.Lit)
	if err != nil {
		p.errf(t.Pos, "%v", err)
	}
	if hasW {
		_ = w // width prefix allowed but ignored in const positions
	}
	if v > 1<<30 {
		p.errf(t.Pos, "constant %d too large", v)
	}
	return int(v)
}

func (p *parser) parseBaseType() ast.Type {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.BOOL:
		p.next()
		return &ast.BoolType{P: pos}
	case token.INT_T:
		p.next()
		return &ast.IntType{P: pos}
	case token.VOID:
		p.next()
		return &ast.VoidType{P: pos}
	case token.BIT:
		p.next()
		p.expect(token.LT)
		w := p.parseIntConst()
		if w < 1 || w > 64 {
			p.errf(pos, "bit width %d out of range [1,64]", w)
		}
		p.expectCloseAngle()
		return &ast.BitType{P: pos, Width: w}
	case token.IDENT:
		name := p.tok.Lit
		p.next()
		return &ast.NamedType{P: pos, Name: name}
	default:
		p.errf(pos, "expected a type, found %s", p.tok)
		return nil
	}
}

// startsType reports whether the current token can begin a type in
// statement position, distinguishing local declarations from expression
// statements. A '<' always starts an annotated type (no expression starts
// with '<'); an identifier starts a type only if followed by another
// identifier (named type + variable name).
func (p *parser) startsType() bool {
	switch p.tok.Kind {
	case token.LT, token.BOOL, token.INT_T, token.BIT, token.VOID:
		return true
	case token.IDENT:
		// Lookahead one token: `name name` is a declaration with a named
		// type; `name[` is indexing (an assignment target), since stack
		// locals are written `bit<8>[4] x` with a keyword type.
		save := p.tok
		t, err := p.lx.Next()
		if err != nil {
			panic(bailout{err})
		}
		p.lx.Push(t)
		p.tok = save
		return t.Kind == token.IDENT
	default:
		return false
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) parseTopDecl() ast.Decl {
	switch p.tok.Kind {
	case token.TYPEDEF:
		return p.parseTypedef()
	case token.MATCH_KIND:
		return p.parseMatchKind()
	case token.HEADER:
		return p.parseHeaderOrStruct(true)
	case token.STRUCT:
		return p.parseHeaderOrStruct(false)
	case token.CONST:
		return p.parseConst()
	case token.AT, token.CONTROL:
		return p.parseControl()
	default:
		p.errf(p.tok.Pos, "expected a declaration, found %s", p.tok)
		return nil
	}
}

func (p *parser) parseTypedef() ast.Decl {
	pos := p.expect(token.TYPEDEF).Pos
	t := p.parseSecType()
	name := p.expect(token.IDENT).Lit
	p.expect(token.SEMICOLON)
	return &ast.TypedefDecl{P: pos, Type: t, Name: name}
}

func (p *parser) parseMatchKind() ast.Decl {
	pos := p.expect(token.MATCH_KIND).Pos
	p.expect(token.LBRACE)
	var members []string
	for p.tok.Kind != token.RBRACE {
		members = append(members, p.expect(token.IDENT).Lit)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RBRACE)
	p.accept(token.SEMICOLON)
	if len(members) == 0 {
		p.errf(pos, "match_kind declaration needs at least one member")
	}
	return &ast.MatchKindDecl{P: pos, Members: members}
}

func (p *parser) parseHeaderOrStruct(isHeader bool) ast.Decl {
	var pos token.Pos
	if isHeader {
		pos = p.expect(token.HEADER).Pos
	} else {
		pos = p.expect(token.STRUCT).Pos
	}
	name := p.expect(token.IDENT).Lit
	p.expect(token.LBRACE)
	var fields []ast.FieldDecl
	for p.tok.Kind != token.RBRACE {
		fp := p.tok.Pos
		ft := p.parseSecType()
		fn := p.expect(token.IDENT).Lit
		// Allow field[N] as an alternative stack spelling.
		for p.tok.Kind == token.LBRACKET {
			bp := p.tok.Pos
			p.next()
			sz := p.parseIntConst()
			p.expect(token.RBRACKET)
			ft = &ast.SecType{P: ft.P, Base: &ast.StackType{P: bp, Elem: ft, Size: sz}}
		}
		p.expect(token.SEMICOLON)
		fields = append(fields, ast.FieldDecl{P: fp, Type: ft, Name: fn})
	}
	p.expect(token.RBRACE)
	p.accept(token.SEMICOLON)
	if isHeader {
		return &ast.HeaderDecl{P: pos, Name: name, Fields: fields}
	}
	return &ast.StructDecl{P: pos, Name: name, Fields: fields}
}

func (p *parser) parseConst() *ast.VarDecl {
	pos := p.expect(token.CONST).Pos
	t := p.parseSecType()
	name := p.expect(token.IDENT).Lit
	p.expect(token.ASSIGN)
	init := p.parseExpr()
	p.expect(token.SEMICOLON)
	return &ast.VarDecl{P: pos, Type: t, Name: name, Init: init, Const: true}
}

func (p *parser) parseControl() *ast.ControlDecl {
	var pcLabel string
	pos := p.tok.Pos
	if p.tok.Kind == token.AT {
		p.next()
		ann := p.expect(token.IDENT)
		if ann.Lit != "pc" {
			p.errf(ann.Pos, "unknown annotation @%s (only @pc is supported)", ann.Lit)
		}
		p.expect(token.LPAREN)
		pcLabel = p.expect(token.IDENT).Lit
		p.expect(token.RPAREN)
	}
	p.expect(token.CONTROL)
	name := p.expect(token.IDENT).Lit
	params := p.parseParams()
	p.expect(token.LBRACE)
	c := &ast.ControlDecl{P: pos, Name: name, Params: params, PCLabel: pcLabel}
	for p.tok.Kind != token.RBRACE {
		switch p.tok.Kind {
		case token.ACTION:
			c.Locals = append(c.Locals, p.parseAction())
		case token.FUNCTION:
			c.Locals = append(c.Locals, p.parseFunction())
		case token.TABLE:
			c.Locals = append(c.Locals, p.parseTable())
		case token.CONST:
			c.Locals = append(c.Locals, p.parseConst())
		case token.REGISTER:
			c.Locals = append(c.Locals, p.parseRegister())
		case token.APPLY:
			ap := p.tok.Pos
			p.next()
			if c.Apply != nil {
				p.errf(ap, "control %s has multiple apply blocks", name)
			}
			c.Apply = p.parseBlock()
		default:
			if p.startsType() {
				c.Locals = append(c.Locals, p.parseVarDecl())
				continue
			}
			p.errf(p.tok.Pos, "expected action, function, table, declaration, or apply; found %s", p.tok)
		}
	}
	p.expect(token.RBRACE)
	if c.Apply == nil {
		p.errf(pos, "control %s has no apply block", name)
	}
	return c
}

func (p *parser) parseParams() []ast.Param {
	p.expect(token.LPAREN)
	var params []ast.Param
	for p.tok.Kind != token.RPAREN {
		pp := p.tok.Pos
		dir := ast.DirNone
		switch p.tok.Kind {
		case token.IN:
			dir = ast.DirIn
			p.next()
		case token.OUT:
			dir = ast.DirOut
			p.next()
		case token.INOUT:
			dir = ast.DirInOut
			p.next()
		}
		t := p.parseSecType()
		name := p.expect(token.IDENT).Lit
		params = append(params, ast.Param{P: pp, Dir: dir, Type: t, Name: name})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	return params
}

func (p *parser) parseAction() *ast.FuncDecl {
	pos := p.expect(token.ACTION).Pos
	name := p.expect(token.IDENT).Lit
	params := p.parseParams()
	body := p.parseBlock()
	return &ast.FuncDecl{P: pos, Name: name, IsAction: true, Params: params, Body: body}
}

func (p *parser) parseFunction() *ast.FuncDecl {
	pos := p.expect(token.FUNCTION).Pos
	var ret *ast.SecType
	if p.tok.Kind == token.VOID {
		p.next()
	} else {
		ret = p.parseSecType()
	}
	name := p.expect(token.IDENT).Lit
	params := p.parseParams()
	body := p.parseBlock()
	return &ast.FuncDecl{P: pos, Name: name, Ret: ret, Params: params, Body: body}
}

func (p *parser) parseTable() *ast.TableDecl {
	pos := p.expect(token.TABLE).Pos
	name := p.expect(token.IDENT).Lit
	p.expect(token.LBRACE)
	tbl := &ast.TableDecl{P: pos, Name: name}
	seenKeys, seenActions := false, false
	for p.tok.Kind != token.RBRACE {
		if p.tok.Kind != token.IDENT {
			p.errf(p.tok.Pos, "expected key, actions, or default_action in table %s; found %s", name, p.tok)
		}
		switch p.tok.Lit {
		case "key":
			kp := p.tok.Pos
			if seenKeys {
				p.errf(kp, "table %s has multiple key properties", name)
			}
			seenKeys = true
			p.next()
			p.expect(token.ASSIGN)
			p.expect(token.LBRACE)
			for p.tok.Kind != token.RBRACE {
				ep := p.tok.Pos
				e := p.parseExpr()
				p.expect(token.COLON)
				mk := p.expect(token.IDENT).Lit
				p.expect(token.SEMICOLON)
				tbl.Keys = append(tbl.Keys, ast.TableKey{P: ep, Expr: e, MatchKind: mk})
			}
			p.expect(token.RBRACE)
		case "actions":
			apos := p.tok.Pos
			if seenActions {
				p.errf(apos, "table %s has multiple actions properties", name)
			}
			seenActions = true
			p.next()
			p.expect(token.ASSIGN)
			p.expect(token.LBRACE)
			for p.tok.Kind != token.RBRACE {
				tbl.Actions = append(tbl.Actions, p.parseActionRef())
				p.expect(token.SEMICOLON)
			}
			p.expect(token.RBRACE)
		case "default_action":
			p.next()
			p.expect(token.ASSIGN)
			ref := p.parseActionRef()
			p.expect(token.SEMICOLON)
			tbl.Default = &ref
		default:
			p.errf(p.tok.Pos, "expected key, actions, or default_action in table %s; found %s", name, p.tok)
		}
	}
	p.expect(token.RBRACE)
	if len(tbl.Actions) == 0 {
		p.errf(pos, "table %s declares no actions", name)
	}
	return tbl
}

func (p *parser) parseActionRef() ast.ActionRef {
	pos := p.tok.Pos
	name := p.expect(token.IDENT).Lit
	ref := ast.ActionRef{P: pos, Name: name}
	if p.tok.Kind == token.LPAREN {
		p.next()
		for p.tok.Kind != token.RPAREN {
			ref.Args = append(ref.Args, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
	}
	return ref
}

// parseRegister parses `register τ name[N];` — a stateful register array
// whose storage persists across packets (Section 7 extension).
func (p *parser) parseRegister() *ast.VarDecl {
	pos := p.expect(token.REGISTER).Pos
	t := p.parseSecType()
	name := p.expect(token.IDENT).Lit
	// Accept size after the name too (`register bit<8> r[16];`).
	for p.tok.Kind == token.LBRACKET {
		bp := p.tok.Pos
		p.next()
		sz := p.parseIntConst()
		p.expect(token.RBRACKET)
		t = &ast.SecType{P: t.P, Base: &ast.StackType{P: bp, Elem: t, Size: sz}}
	}
	p.expect(token.SEMICOLON)
	if _, ok := t.Base.(*ast.StackType); !ok {
		p.errf(pos, "register %s must be an array (register τ %s[N];)", name, name)
	}
	return &ast.VarDecl{P: pos, Type: t, Name: name, Register: true}
}

func (p *parser) parseVarDecl() *ast.VarDecl {
	pos := p.tok.Pos
	t := p.parseSecType()
	name := p.expect(token.IDENT).Lit
	var init ast.Expr
	if p.accept(token.ASSIGN) {
		init = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	return &ast.VarDecl{P: pos, Type: t, Name: name, Init: init}
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseBlock() *ast.BlockStmt {
	pos := p.expect(token.LBRACE).Pos
	b := &ast.BlockStmt{P: pos}
	for p.tok.Kind != token.RBRACE {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.IF:
		return p.parseIf()
	case token.EXIT:
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.ExitStmt{P: pos}
	case token.RETURN:
		p.next()
		var x ast.Expr
		if p.tok.Kind != token.SEMICOLON {
			x = p.parseExpr()
		}
		p.expect(token.SEMICOLON)
		return &ast.ReturnStmt{P: pos, X: x}
	case token.CONST:
		d := p.parseConst()
		return &ast.DeclStmt{P: pos, Decl: d}
	}
	if p.startsType() {
		d := p.parseVarDecl()
		return &ast.DeclStmt{P: pos, Decl: d}
	}
	// Expression statement or assignment.
	lhs := p.parseExpr()
	if p.accept(token.ASSIGN) {
		rhs := p.parseExpr()
		p.expect(token.SEMICOLON)
		return &ast.AssignStmt{P: pos, LHS: lhs, RHS: rhs}
	}
	p.expect(token.SEMICOLON)
	// Recognize t.apply() as a table application.
	if call, ok := lhs.(*ast.Call); ok && len(call.Args) == 0 {
		if m, ok := call.Fun.(*ast.Member); ok && m.Field == "apply" {
			return &ast.ApplyStmt{P: pos, Table: m.X}
		}
	}
	if _, ok := lhs.(*ast.Call); !ok {
		p.errf(pos, "expression statement must be a call, found %s", lhs)
	}
	return &ast.ExprStmt{P: pos, X: lhs}
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.expect(token.IF).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	thenStmt := p.parseStmt()
	thenBlk, ok := thenStmt.(*ast.BlockStmt)
	if !ok {
		thenBlk = &ast.BlockStmt{P: thenStmt.Pos(), Stmts: []ast.Stmt{thenStmt}}
	}
	ifs := &ast.IfStmt{P: pos, Cond: cond, Then: thenBlk}
	if p.accept(token.ELSE) {
		elseStmt := p.parseStmt()
		switch e := elseStmt.(type) {
		case *ast.BlockStmt, *ast.IfStmt:
			ifs.Else = e
		default:
			ifs.Else = &ast.BlockStmt{P: elseStmt.Pos(), Stmts: []ast.Stmt{elseStmt}}
		}
	}
	return ifs
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() ast.Expr { return p.parseOr() }

func (p *parser) parseOr() ast.Expr {
	x := p.parseAnd()
	for p.tok.Kind == token.OR {
		pos := p.tok.Pos
		p.next()
		y := p.parseAnd()
		x = &ast.Binary{P: pos, Op: token.OR, X: x, Y: y}
	}
	return x
}

func (p *parser) parseAnd() ast.Expr {
	x := p.parseCmp()
	for p.tok.Kind == token.AND {
		pos := p.tok.Pos
		p.next()
		y := p.parseCmp()
		x = &ast.Binary{P: pos, Op: token.AND, X: x, Y: y}
	}
	return x
}

func (p *parser) parseCmp() ast.Expr {
	x := p.parseBitOr()
	for {
		switch p.tok.Kind {
		case token.EQ, token.NEQ, token.LT, token.GT, token.LEQ, token.GEQ:
			op, pos := p.tok.Kind, p.tok.Pos
			p.next()
			y := p.parseBitOr()
			x = &ast.Binary{P: pos, Op: op, X: x, Y: y}
		default:
			return x
		}
	}
}

func (p *parser) parseBitOr() ast.Expr {
	x := p.parseBitXor()
	for p.tok.Kind == token.PIPE {
		pos := p.tok.Pos
		p.next()
		y := p.parseBitXor()
		x = &ast.Binary{P: pos, Op: token.PIPE, X: x, Y: y}
	}
	return x
}

func (p *parser) parseBitXor() ast.Expr {
	x := p.parseBitAnd()
	for p.tok.Kind == token.CARET {
		pos := p.tok.Pos
		p.next()
		y := p.parseBitAnd()
		x = &ast.Binary{P: pos, Op: token.CARET, X: x, Y: y}
	}
	return x
}

func (p *parser) parseBitAnd() ast.Expr {
	x := p.parseShift()
	for p.tok.Kind == token.AMP {
		pos := p.tok.Pos
		p.next()
		y := p.parseShift()
		x = &ast.Binary{P: pos, Op: token.AMP, X: x, Y: y}
	}
	return x
}

func (p *parser) parseShift() ast.Expr {
	x := p.parseAdd()
	for p.tok.Kind == token.SHL || p.tok.Kind == token.SHR {
		op, pos := p.tok.Kind, p.tok.Pos
		p.next()
		y := p.parseAdd()
		x = &ast.Binary{P: pos, Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseAdd() ast.Expr {
	x := p.parseMul()
	for p.tok.Kind == token.PLUS || p.tok.Kind == token.MINUS {
		op, pos := p.tok.Kind, p.tok.Pos
		p.next()
		y := p.parseMul()
		x = &ast.Binary{P: pos, Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseMul() ast.Expr {
	x := p.parseUnary()
	for p.tok.Kind == token.STAR || p.tok.Kind == token.SLASH || p.tok.Kind == token.PERCENT {
		op, pos := p.tok.Kind, p.tok.Pos
		p.next()
		y := p.parseUnary()
		x = &ast.Binary{P: pos, Op: op, X: x, Y: y}
	}
	return x
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.NOT, token.MINUS, token.BITNOT:
		op, pos := p.tok.Kind, p.tok.Pos
		p.next()
		x := p.parseUnary()
		return &ast.Unary{P: pos, Op: op, X: x}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.tok.Kind {
		case token.DOT:
			pos := p.tok.Pos
			p.next()
			var f string
			if p.tok.Kind == token.APPLY {
				// `apply` is a keyword, but t.apply() uses it as a
				// member name.
				f = "apply"
				p.next()
			} else {
				f = p.expect(token.IDENT).Lit
			}
			x = &ast.Member{P: pos, X: x, Field: f}
		case token.LBRACKET:
			pos := p.tok.Pos
			p.next()
			i := p.parseExpr()
			p.expect(token.RBRACKET)
			x = &ast.Index{P: pos, X: x, I: i}
		case token.LPAREN:
			pos := p.tok.Pos
			p.next()
			var args []ast.Expr
			for p.tok.Kind != token.RPAREN {
				args = append(args, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			x = &ast.Call{P: pos, Fun: x, Args: args}
		default:
			return x
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.TRUE:
		p.next()
		return &ast.BoolLit{P: pos, Val: true}
	case token.FALSE:
		p.next()
		return &ast.BoolLit{P: pos, Val: false}
	case token.INT:
		lit := p.tok.Lit
		p.next()
		v, w, hasW, err := lexer.DecodeInt(lit)
		if err != nil {
			p.errf(pos, "%v", err)
		}
		return &ast.IntLit{P: pos, Val: v, Width: w, HasWidth: hasW}
	case token.IDENT:
		name := p.tok.Lit
		p.next()
		return &ast.Ident{P: pos, Name: name}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	case token.LBRACE:
		p.next()
		rec := &ast.RecordLit{P: pos}
		for p.tok.Kind != token.RBRACE {
			fp := p.tok.Pos
			name := p.expect(token.IDENT).Lit
			p.expect(token.ASSIGN)
			val := p.parseExpr()
			rec.Fields = append(rec.Fields, ast.FieldInit{P: fp, Name: name, Value: val})
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RBRACE)
		return rec
	default:
		p.errf(pos, "expected an expression, found %s", p.tok)
		return nil
	}
}

// MustParse parses src and panics on error; intended for tests and for the
// embedded case-study programs, which are known-good.
func MustParse(file, src string) *ast.Program {
	prog, err := Parse(file, src)
	if err != nil {
		panic(errors.New("parser.MustParse: " + err.Error()))
	}
	return prog
}
