package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/token"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse("test.p4", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func mustFail(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse("test.p4", src)
	if err == nil {
		t.Fatalf("parse succeeded, want error containing %q", wantSub)
	}
	if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestParseMinimalControl(t *testing.T) {
	prog := mustParse(t, `
control C(inout standard_metadata_t m) {
    apply { }
}
`)
	if len(prog.Controls) != 1 {
		t.Fatalf("controls = %d", len(prog.Controls))
	}
	c := prog.Control()
	if c.Name != "C" || len(c.Params) != 1 || c.Params[0].Dir != ast.DirInOut {
		t.Errorf("control parsed wrong: %+v", c)
	}
}

func TestParseHeaderStructTypedefMatchKind(t *testing.T) {
	prog := mustParse(t, `
typedef bit<32> ip4_t;
match_kind { range, optional }
header h_t {
    <bit<8>, high> secret;
    bit<8> open;
    ip4_t addr;
}
struct headers { h_t h; }
control C(inout headers hdr) { apply { } }
`)
	if len(prog.Decls) != 4 {
		t.Fatalf("decls = %d", len(prog.Decls))
	}
	hdr, ok := prog.Decls[2].(*ast.HeaderDecl)
	if !ok {
		t.Fatalf("decl 2 is %T", prog.Decls[2])
	}
	if len(hdr.Fields) != 3 {
		t.Fatalf("fields = %d", len(hdr.Fields))
	}
	if hdr.Fields[0].Type.Label != "high" {
		t.Errorf("field 0 label = %q", hdr.Fields[0].Type.Label)
	}
	if hdr.Fields[1].Type.Label != "" {
		t.Errorf("field 1 label = %q, want unannotated", hdr.Fields[1].Type.Label)
	}
	mk, ok := prog.Decls[1].(*ast.MatchKindDecl)
	if !ok || len(mk.Members) != 2 || mk.Members[0] != "range" {
		t.Errorf("match_kind parsed wrong: %+v", prog.Decls[1])
	}
}

func TestParseNestedAngles(t *testing.T) {
	// <bit<8>, high> requires splitting no tokens; stacks of annotated
	// types exercise the >>-split path.
	prog := mustParse(t, `
header h_t {
    <bit<8>, high> arr[4];
}
struct headers { h_t h; }
control C(inout headers hdr) { apply { hdr.h.arr[0] = 1; } }
`)
	hd := prog.Decls[0].(*ast.HeaderDecl)
	st, ok := hd.Fields[0].Type.Base.(*ast.StackType)
	if !ok {
		t.Fatalf("field type = %T, want stack", hd.Fields[0].Type.Base)
	}
	if st.Size != 4 || st.Elem.Label != "high" {
		t.Errorf("stack = %+v", st)
	}
}

func TestShrSplitInTypePosition(t *testing.T) {
	// bit<bit<8>> style nesting does not occur, but a SecType whose close
	// angle immediately follows a bit width produces >> in e.g.
	// <bit<8>> is invalid (missing label); use a table-less check of
	// x >> y parsing instead plus generic close.
	e, err := ParseExpr("a >> 2")
	if err != nil {
		t.Fatal(err)
	}
	bin, ok := e.(*ast.Binary)
	if !ok || bin.Op != token.SHR {
		t.Fatalf("expr = %v", e)
	}
}

func TestExprPrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":        "(1 + (2 * 3))",
		"1 * 2 + 3":        "((1 * 2) + 3)",
		"a || b && c":      "(a || (b && c))",
		"a == b + 1":       "(a == (b + 1))",
		"a & b == c":       "((a & b) == c)", // cmp binds looser than &
		"a | b ^ c & d":    "(a | (b ^ (c & d)))",
		"- a + b":          "(-a + b)",
		"!a && b":          "(!a && b)",
		"a << 1 + 1":       "(a << (1 + 1))", // shift binds looser than +, as in P4/C
		"(1 + 2) * 3":      "((1 + 2) * 3)",
		"a.b.c + x[1].f":   "(a.b.c + x[1].f)",
		"f(x, y + 1).g":    "f(x, (y + 1)).g",
		"~a ^ b":           "(~a ^ b)",
		"a < b == (c > d)": "((a < b) == (c > d))",
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if got := e.String(); got != want {
			t.Errorf("%q parsed as %s, want %s", src, got, want)
		}
	}
}

func TestRecordLiteral(t *testing.T) {
	e, err := ParseExpr("{a = 1, b = x + 1}")
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := e.(*ast.RecordLit)
	if !ok || len(rec.Fields) != 2 {
		t.Fatalf("expr = %v", e)
	}
	if rec.Fields[0].Name != "a" || rec.Fields[1].Name != "b" {
		t.Errorf("fields = %v", rec)
	}
}

func TestParseTable(t *testing.T) {
	prog := mustParse(t, `
header h_t { bit<8> f; bit<8> g; }
struct headers { h_t h; }
control C(inout headers hdr) {
    action a1(bit<8> x) { hdr.h.f = x; }
    action a2() { }
    table t {
        key = { hdr.h.f: exact; hdr.h.g: lpm; }
        actions = { a1(hdr.h.g); a2; NoAction; }
        default_action = a2;
    }
    apply { t.apply(); }
}
`)
	var tbl *ast.TableDecl
	for _, d := range prog.Control().Locals {
		if td, ok := d.(*ast.TableDecl); ok {
			tbl = td
		}
	}
	if tbl == nil {
		t.Fatal("no table parsed")
	}
	if len(tbl.Keys) != 2 || tbl.Keys[0].MatchKind != "exact" || tbl.Keys[1].MatchKind != "lpm" {
		t.Errorf("keys = %+v", tbl.Keys)
	}
	if len(tbl.Actions) != 3 || len(tbl.Actions[0].Args) != 1 || tbl.Actions[1].Args != nil {
		t.Errorf("actions = %+v", tbl.Actions)
	}
	if tbl.Default == nil || tbl.Default.Name != "a2" {
		t.Errorf("default = %+v", tbl.Default)
	}
	// Apply statement recognized.
	ap, ok := prog.Control().Apply.Stmts[0].(*ast.ApplyStmt)
	if !ok {
		t.Fatalf("apply stmt = %T", prog.Control().Apply.Stmts[0])
	}
	if id, ok := ap.Table.(*ast.Ident); !ok || id.Name != "t" {
		t.Errorf("apply target = %v", ap.Table)
	}
}

func TestParseStatements(t *testing.T) {
	prog := mustParse(t, `
header h_t { bit<8> f; bool b; }
struct headers { h_t h; }
control C(inout headers hdr) {
    function bit<8> f(in bit<8> x) {
        bit<8> y = x;
        if (y > 1) { return y; } else if (y == 0) { exit; }
        return 0;
    }
    apply {
        hdr.h.f = f(3);
        { hdr.h.b = true; }
    }
}
`)
	fn := prog.Control().Locals[0].(*ast.FuncDecl)
	if fn.IsAction || fn.Ret == nil {
		t.Fatalf("function parsed wrong: %+v", fn)
	}
	stmts := fn.Body.Stmts
	if _, ok := stmts[0].(*ast.DeclStmt); !ok {
		t.Errorf("stmt 0 = %T, want DeclStmt", stmts[0])
	}
	ifs, ok := stmts[1].(*ast.IfStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T", stmts[1])
	}
	if _, ok := ifs.Else.(*ast.IfStmt); !ok {
		t.Errorf("else-if not chained: %T", ifs.Else)
	}
	if _, ok := stmts[2].(*ast.ReturnStmt); !ok {
		t.Errorf("stmt 2 = %T", stmts[2])
	}
}

func TestPCAnnotation(t *testing.T) {
	prog := mustParse(t, `
@pc(A)
control Alice(inout standard_metadata_t m) { apply { } }
`)
	if prog.Control().PCLabel != "A" {
		t.Errorf("PCLabel = %q", prog.Control().PCLabel)
	}
}

func TestConstDecl(t *testing.T) {
	prog := mustParse(t, `
const <bit<8>, low> LIMIT = 16;
control C(inout standard_metadata_t m) {
    const bit<8> LOCAL = 2;
    apply { }
}
`)
	vd, ok := prog.Decls[0].(*ast.VarDecl)
	if !ok || !vd.Const || vd.Name != "LIMIT" {
		t.Fatalf("const parsed wrong: %+v", prog.Decls[0])
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`control C() { }`, "no apply block"},
		{`control C() { apply { } apply { } }`, "multiple apply"},
		{`header h_t { bit<8> }`, "expected identifier"},
		{`control C() { apply { x = ; } }`, "expected an expression"},
		{`control C() { apply { 1 + 2; } }`, "must be a call"},
		{`control C() { table t { actions = { } } apply { } }`, "no actions"},
		{`@wrong(A) control C() { apply { } }`, "unknown annotation"},
		{`typedef bit<0> z;`, "out of range"},
		{`control C() { apply { if x { } } }`, "expected ("},
		{`struct s { bit<8> f; bit<8> f; }`, ""}, // dup field caught later by resolve
	}
	for _, c := range cases {
		if c.want == "" {
			continue
		}
		mustFail(t, c.src, c.want)
	}
}

func TestMatchKindEmpty(t *testing.T) {
	mustFail(t, `match_kind { }`, "at least one member")
}

func TestKeywordFieldNameApply(t *testing.T) {
	// t.apply() works even though apply is a keyword.
	prog := mustParse(t, `
control C(inout standard_metadata_t m) {
    action a() { }
    table t { key = { m.egress_spec: exact; } actions = { a; } }
    apply { t.apply(); }
}
`)
	if _, ok := prog.Control().Apply.Stmts[0].(*ast.ApplyStmt); !ok {
		t.Fatal("t.apply() not recognized")
	}
}

func TestIsLValueAndBase(t *testing.T) {
	cases := []struct {
		src  string
		isLV bool
		base string
	}{
		{"x", true, "x"},
		{"x.f.g", true, "x"},
		{"x[1].f", true, "x"},
		{"x + 1", false, ""},
		{"f(x)", false, ""},
		{"{a = 1}", false, ""},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatal(err)
		}
		if got := ast.IsLValue(e); got != c.isLV {
			t.Errorf("IsLValue(%q) = %t", c.src, got)
		}
		if got := ast.LValueBase(e); got != c.base {
			t.Errorf("LValueBase(%q) = %q, want %q", c.src, got, c.base)
		}
	}
}

func TestWidthLiterals(t *testing.T) {
	e, err := ParseExpr("8w255 + 4w3")
	if err != nil {
		t.Fatal(err)
	}
	bin := e.(*ast.Binary)
	x := bin.X.(*ast.IntLit)
	if !x.HasWidth || x.Width != 8 || x.Val != 255 {
		t.Errorf("lhs = %+v", x)
	}
	if e.String() != "(8w255 + 4w3)" {
		t.Errorf("render = %s", e.String())
	}
}

func TestMultipleControls(t *testing.T) {
	prog := mustParse(t, `
@pc(A)
control Alice(inout standard_metadata_t m) { apply { } }
@pc(B)
control Bob(inout standard_metadata_t m) { apply { } }
`)
	if len(prog.Controls) != 2 {
		t.Fatalf("controls = %d", len(prog.Controls))
	}
	if prog.Controls[1].Name != "Bob" || prog.Controls[1].PCLabel != "B" {
		t.Errorf("second control = %+v", prog.Controls[1])
	}
}

func TestDeepNestingDoesNotOverflow(t *testing.T) {
	depth := 200
	src := "control C(inout standard_metadata_t m) { apply { " +
		strings.Repeat("if (true) { ", depth) + "exit;" +
		strings.Repeat(" }", depth) + " } }"
	if _, err := Parse("deep.p4", src); err != nil {
		t.Fatalf("deep nesting: %v", err)
	}
}
