// Package basecheck implements the ordinary (label-insensitive) Core P4
// type system of Section 3.3 — the role played by the stock p4c typechecker
// in the paper's Table 1 baseline ("Unannotated, p4c").
//
// It performs the same structural work as the IFC checker in internal/core
// — name resolution, typedef unfolding, parameter/argument matching, l-value
// classification, table well-formedness — but ignores every security label
// and enforces no pc, flow, or effect constraints. Comparing its running
// time against internal/core on the same program reproduces the Table 1
// overhead measurement.
package basecheck

import (
	"repro/internal/ast"
	"repro/internal/diag"
	"repro/internal/lattice"
	"repro/internal/resolve"
	"repro/internal/token"
	"repro/internal/types"
)

// Result is the outcome of base-checking a program.
type Result struct {
	OK    bool
	Diags []*diag.Diagnostic
}

// Err returns nil if the program typechecked, otherwise an aggregate error.
func (r *Result) Err() error {
	if r.OK {
		return nil
	}
	var l diag.List
	for _, d := range r.Diags {
		if d.Severity == diag.Error {
			l.RuleErrorf(d.Pos, d.Rule, "%s", d.Msg)
		}
	}
	return l.Err()
}

// Check typechecks prog with the ordinary Core P4 type system, ignoring
// security labels. Label names must still be syntactically present or
// absent — they are resolved against a permissive two-point lattice so the
// same annotated sources can be base-checked.
func Check(prog *ast.Program) *Result {
	c := &checker{lat: permissive{lattice.TwoPoint()}}
	c.res = resolve.New(c.lat, &c.diags)
	c.run(prog)
	return &Result{OK: !c.diags.HasErrors(), Diags: c.diags.All()}
}

// permissive resolves any label name to bottom, so base-checking never
// fails on an annotation (the baseline compiler simply does not know about
// labels).
type permissive struct{ lattice.Lattice }

func (p permissive) Lookup(string) (lattice.Label, bool) { return p.Bottom(), true }

type checker struct {
	lat   lattice.Lattice
	diags diag.List
	res   *resolve.Resolver
}

func (c *checker) run(prog *ast.Program) {
	c.res.CollectTypeDecls(prog)
	env := types.NewEnv()
	for name, t := range c.res.Builtins() {
		env.Bind(name, t)
	}
	mkType := types.SecType{T: c.res.MatchKindType(), L: c.lat.Bottom()}
	for _, m := range c.res.MatchKinds {
		env.Bind(m, mkType)
	}
	for _, d := range prog.Decls {
		if vd, ok := d.(*ast.VarDecl); ok {
			env = c.checkVarDecl(env, vd)
		}
	}
	if len(prog.Controls) == 0 {
		c.diags.Errorf(token.Pos{}, "program has no control block")
		return
	}
	for _, ctrl := range prog.Controls {
		c.checkControl(env, ctrl)
	}
}

func (c *checker) checkControl(global *types.Env, ctrl *ast.ControlDecl) {
	env := global.Child()
	for _, p := range ctrl.Params {
		st := c.res.SecType(p.Type)
		if st.IsZero() {
			continue
		}
		if env.InCurrentScope(p.Name) {
			c.diags.Errorf(p.P, "duplicate parameter %q", p.Name)
			continue
		}
		env.Bind(p.Name, st)
	}
	for _, d := range ctrl.Locals {
		switch d := d.(type) {
		case *ast.VarDecl:
			env = c.checkVarDecl(env, d)
		case *ast.FuncDecl:
			env = c.checkFuncDecl(env, d)
		case *ast.TableDecl:
			env = c.checkTableDecl(env, d)
		default:
			c.diags.Errorf(d.Pos(), "unsupported declaration in control body")
		}
	}
	c.checkBlock(env.Child(), ctrl.Apply)
}

func (c *checker) checkVarDecl(env *types.Env, d *ast.VarDecl) *types.Env {
	declared := c.res.SecType(d.Type)
	if declared.IsZero() {
		return env
	}
	if env.InCurrentScope(d.Name) {
		c.diags.Errorf(d.P, "%q redeclared in this scope", d.Name)
	}
	if d.Init != nil {
		it := c.checkExpr(env, d.Init)
		if !it.IsZero() && !types.BaseEqual(it.T, declared.T) {
			it = coerceLit(it, declared)
			if !types.BaseEqual(it.T, declared.T) {
				c.diags.Errorf(d.P, "cannot initialize %s %s with %s", declared.T, d.Name, it.T)
			}
		}
	}
	env.Bind(d.Name, declared)
	return env
}

func (c *checker) checkFuncDecl(env *types.Env, d *ast.FuncDecl) *types.Env {
	params := make([]types.Param, 0, len(d.Params))
	body := env.Child()
	for _, p := range d.Params {
		st := c.res.SecType(p.Type)
		if st.IsZero() {
			continue
		}
		dir := types.In
		ctrlPlane := false
		switch p.Dir {
		case ast.DirOut:
			dir = types.Out
		case ast.DirInOut:
			dir = types.InOut
		case ast.DirNone:
			ctrlPlane = d.IsAction
		}
		if body.InCurrentScope(p.Name) {
			c.diags.Errorf(p.P, "duplicate parameter %q", p.Name)
			continue
		}
		params = append(params, types.Param{Name: p.Name, Dir: dir, Type: st, CtrlPlane: ctrlPlane})
		body.Bind(p.Name, st)
	}
	ret := types.SecType{T: types.Unit{}, L: c.lat.Bottom()}
	if d.Ret != nil {
		ret = c.res.SecType(d.Ret)
	}
	if d.IsAction && d.Ret != nil {
		c.diags.Errorf(d.P, "action %s cannot have a return type", d.Name)
	}
	body.Bind("return", ret)
	c.checkBlock(body.Child(), d.Body)
	ft := &types.Func{Params: params, PCFn: c.lat.Bottom(), Ret: ret, IsAction: d.IsAction}
	if env.InCurrentScope(d.Name) {
		c.diags.Errorf(d.P, "%q redeclared in this scope", d.Name)
	}
	env.Bind(d.Name, types.SecType{T: ft, L: c.lat.Bottom()})
	return env
}

func (c *checker) checkTableDecl(env *types.Env, d *ast.TableDecl) *types.Env {
	for _, k := range d.Keys {
		kt := c.checkExpr(env, k.Expr)
		if !kt.IsZero() && !types.IsScalar(kt.T) {
			c.diags.Errorf(k.P, "table %s key %s must be a scalar, got %s", d.Name, k.Expr, kt.T)
		}
		if !c.res.IsMatchKind(k.MatchKind) {
			c.diags.Errorf(k.P, "unknown match kind %q for key %s", k.MatchKind, k.Expr)
		}
	}
	refs := append([]ast.ActionRef(nil), d.Actions...)
	if d.Default != nil {
		refs = append(refs, *d.Default)
	}
	for _, ref := range refs {
		at, ok := env.Lookup(ref.Name)
		if !ok {
			c.diags.Errorf(ref.P, "table %s references undeclared action %q", d.Name, ref.Name)
			continue
		}
		ft, ok := at.T.(*types.Func)
		if !ok || !ft.IsAction {
			c.diags.Errorf(ref.P, "table %s: %q is not an action", d.Name, ref.Name)
			continue
		}
		if len(ref.Args) > len(ft.Params) {
			c.diags.Errorf(ref.P, "action %s takes %d parameters but %d arguments are bound",
				ref.Name, len(ft.Params), len(ref.Args))
			continue
		}
		for i, arg := range ref.Args {
			c.checkArg(env, ft.Params[i], arg)
		}
		for _, p := range ft.Params[len(ref.Args):] {
			if !p.CtrlPlane {
				c.diags.Errorf(ref.P, "action %s parameter %q is not bound at table %s and is not control-plane-supplied",
					ref.Name, p.Name, d.Name)
			}
		}
	}
	if env.InCurrentScope(d.Name) {
		c.diags.Errorf(d.P, "%q redeclared in this scope", d.Name)
	}
	env.Bind(d.Name, types.SecType{T: &types.Table{PCTbl: c.lat.Bottom()}, L: c.lat.Bottom()})
	return env
}

func (c *checker) checkBlock(env *types.Env, b *ast.BlockStmt) {
	scope := env.Child()
	for _, s := range b.Stmts {
		scope = c.checkStmt(scope, s)
	}
}

func (c *checker) checkStmt(env *types.Env, s ast.Stmt) *types.Env {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(env, s)
	case *ast.AssignStmt:
		if !ast.IsLValue(s.LHS) {
			c.diags.Errorf(s.P, "%s is not assignable", s.LHS)
			return env
		}
		lt := c.checkExpr(env, s.LHS)
		rt := c.checkExpr(env, s.RHS)
		if !lt.IsZero() && !rt.IsZero() {
			rt = coerceLit(rt, lt)
			if !types.BaseEqual(rt.T, lt.T) {
				c.diags.Errorf(s.P, "cannot assign %s to %s (types %s and %s differ)",
					s.RHS, s.LHS, rt.T, lt.T)
			}
		}
	case *ast.IfStmt:
		gt := c.checkExpr(env, s.Cond)
		if !gt.IsZero() {
			if _, ok := gt.T.(types.Bool); !ok {
				c.diags.Errorf(s.Cond.Pos(), "if condition must be bool, got %s", gt.T)
			}
		}
		c.checkBlock(env, s.Then)
		if s.Else != nil {
			c.checkStmt(env.Child(), s.Else)
		}
	case *ast.ExitStmt:
	case *ast.ReturnStmt:
		ret, ok := env.Lookup("return")
		if !ok {
			c.diags.Errorf(s.P, "return outside of a function body")
			return env
		}
		if s.X == nil {
			if _, isUnit := ret.T.(types.Unit); !isUnit {
				c.diags.Errorf(s.P, "missing return value of type %s", ret.T)
			}
			return env
		}
		xt := c.checkExpr(env, s.X)
		if !xt.IsZero() {
			xt = coerceLit(xt, ret)
			if !types.BaseEqual(xt.T, ret.T) {
				c.diags.Errorf(s.P, "cannot return %s as %s", xt.T, ret.T)
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.Call); ok {
			c.checkCall(env, call)
		} else {
			c.diags.Errorf(s.P, "expression statement must be a call")
		}
	case *ast.ApplyStmt:
		tt := c.checkExpr(env, s.Table)
		if !tt.IsZero() {
			if _, ok := tt.T.(*types.Table); !ok {
				c.diags.Errorf(s.P, "%s is not a table (type %s)", s.Table, tt.T)
			}
		}
	case *ast.DeclStmt:
		return c.checkVarDecl(env, s.Decl)
	default:
		c.diags.Errorf(s.Pos(), "unsupported statement")
	}
	return env
}

func (c *checker) checkExpr(env *types.Env, e ast.Expr) types.SecType {
	switch e := e.(type) {
	case *ast.BoolLit:
		return types.SecType{T: types.Bool{}, L: c.lat.Bottom()}
	case *ast.IntLit:
		if e.HasWidth {
			return types.SecType{T: types.Bit{W: e.Width}, L: c.lat.Bottom()}
		}
		return types.SecType{T: types.Int{}, L: c.lat.Bottom()}
	case *ast.Ident:
		t, ok := env.Lookup(e.Name)
		if !ok {
			c.diags.Errorf(e.P, "undeclared variable %q", e.Name)
			return types.SecType{}
		}
		return t
	case *ast.Unary:
		xt := c.checkExpr(env, e.X)
		if xt.IsZero() {
			return xt
		}
		switch e.Op {
		case token.NOT:
			if _, ok := xt.T.(types.Bool); !ok {
				c.diags.Errorf(e.P, "operator ! needs bool, got %s", xt.T)
				return types.SecType{}
			}
		case token.BITNOT:
			if _, ok := xt.T.(types.Bit); !ok {
				c.diags.Errorf(e.P, "operator ~ needs bit<n>, got %s", xt.T)
				return types.SecType{}
			}
		}
		return xt
	case *ast.Binary:
		xt := c.checkExpr(env, e.X)
		yt := c.checkExpr(env, e.Y)
		if xt.IsZero() || yt.IsZero() {
			return types.SecType{}
		}
		rt, ok := baseBinOpType(e.Op, xt.T, yt.T)
		if !ok {
			c.diags.Errorf(e.P, "operator %s not defined on %s and %s", e.Op, xt.T, yt.T)
			return types.SecType{}
		}
		return types.SecType{T: rt, L: c.lat.Bottom()}
	case *ast.RecordLit:
		fields := make([]types.Field, 0, len(e.Fields))
		for _, f := range e.Fields {
			ft := c.checkExpr(env, f.Value)
			if ft.IsZero() {
				return types.SecType{}
			}
			fields = append(fields, types.Field{Name: f.Name, Type: ft})
		}
		return types.SecType{T: &types.Record{Fields: fields}, L: c.lat.Bottom()}
	case *ast.Member:
		xt := c.checkExpr(env, e.X)
		if xt.IsZero() {
			return xt
		}
		f, ok := types.FieldOf(xt.T, e.Field)
		if !ok {
			c.diags.Errorf(e.P, "%s (type %s) has no field %q", e.X, xt.T, e.Field)
			return types.SecType{}
		}
		return f.Type
	case *ast.Index:
		xt := c.checkExpr(env, e.X)
		if xt.IsZero() {
			return xt
		}
		st, ok := xt.T.(*types.Stack)
		if !ok {
			c.diags.Errorf(e.P, "%s (type %s) is not indexable", e.X, xt.T)
			return types.SecType{}
		}
		it := c.checkExpr(env, e.I)
		if !it.IsZero() {
			switch it.T.(type) {
			case types.Bit, types.Int:
			default:
				c.diags.Errorf(e.I.Pos(), "index must be numeric, got %s", it.T)
			}
		}
		return st.Elem
	case *ast.Call:
		return c.checkCall(env, e)
	default:
		c.diags.Errorf(e.Pos(), "unsupported expression")
		return types.SecType{}
	}
}

func (c *checker) checkCall(env *types.Env, e *ast.Call) types.SecType {
	ft0 := c.checkExpr(env, e.Fun)
	if ft0.IsZero() {
		for _, a := range e.Args {
			c.checkExpr(env, a)
		}
		return types.SecType{}
	}
	ft, ok := ft0.T.(*types.Func)
	if !ok {
		c.diags.Errorf(e.P, "%s is not callable (type %s)", e.Fun, ft0.T)
		return types.SecType{}
	}
	if len(e.Args) != len(ft.Params) {
		c.diags.Errorf(e.P, "%s takes %d arguments, got %d", e.Fun, len(ft.Params), len(e.Args))
		return ft.Ret
	}
	for i, arg := range e.Args {
		c.checkArg(env, ft.Params[i], arg)
	}
	return ft.Ret
}

func (c *checker) checkArg(env *types.Env, p types.Param, arg ast.Expr) {
	at := c.checkExpr(env, arg)
	if at.IsZero() {
		return
	}
	at = coerceLit(at, p.Type)
	if !types.BaseEqual(at.T, p.Type.T) {
		c.diags.Errorf(arg.Pos(), "argument %s: type %s does not match parameter %s %s",
			arg, at.T, p.Name, p.Type.T)
		return
	}
	if (p.Dir == types.Out || p.Dir == types.InOut) && !ast.IsLValue(arg) {
		c.diags.Errorf(arg.Pos(), "argument %s to %s parameter %s must be an assignable l-value",
			arg, p.Dir, p.Name)
	}
}

func baseBinOpType(op token.Kind, a, b types.Type) (types.Type, bool) {
	if _, ok := a.(types.Int); ok {
		if bb, ok := b.(types.Bit); ok {
			a = bb
		}
	}
	if _, ok := b.(types.Int); ok {
		if ab, ok := a.(types.Bit); ok {
			b = ab
		}
	}
	switch op {
	case token.AND, token.OR:
		_, ok1 := a.(types.Bool)
		_, ok2 := b.(types.Bool)
		if ok1 && ok2 {
			return types.Bool{}, true
		}
	case token.EQ, token.NEQ:
		if types.BaseEqual(a, b) && types.IsScalar(a) {
			return types.Bool{}, true
		}
	case token.LT, token.GT, token.LEQ, token.GEQ:
		if baseNumericPair(a, b) {
			return types.Bool{}, true
		}
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT:
		if baseNumericPair(a, b) {
			return a, true
		}
	case token.AMP, token.PIPE, token.CARET:
		ab, ok1 := a.(types.Bit)
		bb, ok2 := b.(types.Bit)
		if ok1 && ok2 && ab.W == bb.W {
			return ab, true
		}
	case token.SHL, token.SHR:
		if ab, ok := a.(types.Bit); ok {
			switch b.(type) {
			case types.Bit, types.Int:
				return ab, true
			}
		}
		if _, ok := a.(types.Int); ok {
			if _, ok := b.(types.Int); ok {
				return types.Int{}, true
			}
		}
	}
	return nil, false
}

func baseNumericPair(a, b types.Type) bool {
	switch a := a.(type) {
	case types.Int:
		switch b.(type) {
		case types.Int, types.Bit:
			return true
		}
	case types.Bit:
		switch b := b.(type) {
		case types.Int:
			return true
		case types.Bit:
			return a.W == b.W
		}
	}
	return false
}

func coerceLit(got, want types.SecType) types.SecType {
	if _, isInt := got.T.(types.Int); !isInt {
		return got
	}
	if wb, isBit := want.T.(types.Bit); isBit {
		return types.SecType{T: wb, L: got.L}
	}
	return got
}
