package basecheck_test

import (
	"strings"
	"testing"

	"repro/internal/basecheck"
	"repro/internal/parser"
)

func check(t *testing.T, src string) *basecheck.Result {
	t.Helper()
	prog, err := parser.Parse("test.p4", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return basecheck.Check(prog)
}

func wrap(body string) string {
	return `
header h_t {
    bit<8> a;
    bit<16> w;
    bool b;
    bit<8> arr[4];
}
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
` + body + `
}
`
}

func TestAcceptsBasics(t *testing.T) {
	res := check(t, wrap(`
    action f(bit<8> x) { hdr.h.a = x; }
    table tb { key = { hdr.h.a: exact; } actions = { f; NoAction; } }
    apply {
        hdr.h.a = hdr.h.a + 1;
        hdr.h.b = hdr.h.a == 3;
        hdr.h.arr[1] = hdr.h.arr[0];
        if (hdr.h.b) { tb.apply(); } else { exit; }
        mark_to_drop(standard_metadata);
    }`))
	if !res.OK {
		t.Fatalf("rejected:\n%v", res.Err())
	}
}

func TestIgnoresLabels(t *testing.T) {
	// The base checker accepts flow violations; that is its role as the
	// Table 1 baseline.
	res := check(t, `
header h_t { <bit<8>, low> lo; <bit<8>, high> hi; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply { hdr.h.lo = hdr.h.hi; }
}
`)
	if !res.OK {
		t.Fatalf("base checker rejected a flow-only violation:\n%v", res.Err())
	}
}

func TestIgnoresUnknownLabelNames(t *testing.T) {
	// Any label name is tolerated: the baseline knows nothing of lattices.
	res := check(t, `
header h_t { <bit<8>, whatever> x; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply { }
}
`)
	if !res.OK {
		t.Fatalf("rejected:\n%v", res.Err())
	}
}

func TestRejectsTypeErrors(t *testing.T) {
	cases := []struct{ name, body, want string }{
		{"undeclared", `apply { ghost = 1; }`, "undeclared"},
		{"bad-field", `apply { hdr.h.zzz = 1; }`, "no field"},
		{"bool-plus", `apply { hdr.h.a = hdr.h.b + 1; }`, "not defined"},
		{"width-mismatch", `apply { hdr.h.a = hdr.h.w; }`, "differ"},
		{"if-not-bool", `apply { if (hdr.h.a) { } }`, "must be bool"},
		{"not-a-table", `apply { hdr.apply(); }`, "not a table"},
		{"call-arity", `
            action f(bit<8> x) { }
            apply { f(1, 2); }`, "takes 1 arguments"},
		{"arg-type", `
            action f(bool x) { }
            apply { f(hdr.h.a); }`, "does not match"},
		{"inout-not-lvalue", `
            action f(inout bit<8> x) { x = 1; }
            apply { f(hdr.h.a + 1); }`, "l-value"},
		{"index-non-stack", `apply { hdr.h.a[0] = 1; }`, "not indexable"},
		{"bad-index-type", `apply { hdr.h.arr[hdr.h.b] = 1; }`, "numeric"},
		{"unknown-matchkind", `
            action f() { }
            table tb { key = { hdr.h.a: fuzzy; } actions = { f; } }
            apply { tb.apply(); }`, "match kind"},
		{"undeclared-action", `
            table tb { key = { hdr.h.a: exact; } actions = { ghost; } }
            apply { tb.apply(); }`, "undeclared action"},
		{"return-type", `
            function bit<8> f() { return true; }
            apply { hdr.h.a = f(); }`, "cannot return"},
		{"redeclared", `
            apply { bit<8> x; bit<8> x; }`, "redeclared"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := check(t, wrap(c.body))
			if res.OK {
				t.Fatalf("accepted, want rejection mentioning %q", c.want)
			}
			if !strings.Contains(res.Err().Error(), c.want) {
				t.Fatalf("diagnostics %q do not mention %q", res.Err(), c.want)
			}
		})
	}
}

func TestNoControl(t *testing.T) {
	res := check(t, `typedef bit<8> t_t;`)
	if res.OK {
		t.Error("program without a control block accepted")
	}
}

func TestIntLiteralCoercion(t *testing.T) {
	res := check(t, wrap(`
    function bit<8> f(in bit<8> x) { return 255; }
    apply {
        hdr.h.a = 200;
        hdr.h.w = 40000;
        hdr.h.a = f(7);
    }`))
	if !res.OK {
		t.Fatalf("literal coercion rejected:\n%v", res.Err())
	}
}

func TestActionWithReturnTypeRejected(t *testing.T) {
	// Surface restriction: actions have no return type; only functions do.
	prog, err := parser.Parse("t.p4", wrap(`
    function void g() { return; }
    apply { g(); }`))
	if err != nil {
		t.Fatal(err)
	}
	if res := basecheck.Check(prog); !res.OK {
		t.Fatalf("void function rejected:\n%v", res.Err())
	}
}
