package triage_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/triage"
)

var update = flag.Bool("update", false, "rewrite the golden cluster table from the current triage output")

// writeFinding drops one synthetic finding pair into dir's corpus.
func writeFinding(t *testing.T, dir string, m campaign.Meta, src string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dir, "findings"), 0o755); err != nil {
		t.Fatal(err)
	}
	if m.Key == "" {
		m.Key = campaign.DedupKey(m.Class, src)
	}
	stem := fmt.Sprintf("%s-%s", m.Class, m.Key[:12])
	if err := campaign.WriteMeta(filepath.Join(dir, "findings", stem+".json"), m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "findings", stem+".p4"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTriageClustersByClassRuleShape: findings that differ only in
// identifier spellings and literals land in one cluster, with the origin
// mix, time bracket, NI budgets, and smallest-member exemplar aggregated;
// a finding with a different shape gets its own cluster.
func TestTriageClustersByClassRuleShape(t *testing.T) {
	dir := t.TempDir()
	progA := `header data_t {
    <bit<8>, low> lo0;
    <bit<8>, high> hi0;
}
struct headers { data_t d; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.lo0 = hdr.d.hi0;
    }
}
`
	// Same shape, renamed identifiers (longer, so progA stays exemplar).
	progB := strings.NewReplacer("lo0", "looong0", "hi0", "hiiigh0").Replace(progA)
	// Different shape: the flow hides under a conditional.
	progC := strings.Replace(progA, "        hdr.d.lo0 = hdr.d.hi0;\n",
		"        if (hdr.d.lo0 == 8w1) {\n            hdr.d.lo0 = hdr.d.hi0;\n        }\n", 1)

	t0 := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	t1 := t0.Add(24 * time.Hour)
	writeFinding(t, dir, campaign.Meta{
		Class: campaign.ClassRejectedClean, Rule: "T-Assign", Detail: "a",
		Origin: "gen", NITrialsMax: 8, FoundAt: t0,
	}, progA)
	writeFinding(t, dir, campaign.Meta{
		Class: campaign.ClassRejectedClean, Rule: "T-Assign", Detail: "b",
		Origin: "mutate", ParentKey: "1234", NITrialsMax: 32, FoundAt: t1,
	}, progB)
	writeFinding(t, dir, campaign.Meta{
		Class: campaign.ClassRejectedClean, Rule: "T-Assign", Detail: "c",
		Origin: "gen", NITrialsMax: 8, FoundAt: t1,
	}, progC)

	rep, err := triage.Triage(triage.Config{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Total != 3 {
		t.Fatalf("triage: ok=%v total=%d errors=%v", rep.OK(), rep.Total, rep.Errors)
	}
	if len(rep.Clusters) != 2 {
		t.Fatalf("got %d clusters, want 2:\n%s", len(rep.Clusters), triage.FormatReport(rep))
	}
	big := rep.Clusters[0]
	if big.Size != 2 || rep.Clusters[1].Size != 1 {
		t.Fatalf("cluster sizes %d/%d, want 2/1", big.Size, rep.Clusters[1].Size)
	}
	if big.Class != campaign.ClassRejectedClean || big.Rule != "T-Assign" {
		t.Errorf("big cluster is %s/%s, want rejected-clean/T-Assign", big.Class, big.Rule)
	}
	if big.Exemplar != progA {
		t.Errorf("exemplar is not the smallest member:\n%s", big.Exemplar)
	}
	if big.GenOrigin != 1 || big.MutantOrigin != 1 {
		t.Errorf("origin mix %dg/%dm, want 1g/1m", big.GenOrigin, big.MutantOrigin)
	}
	if !big.FirstSeen.Equal(t0) || !big.LastSeen.Equal(t1) {
		t.Errorf("time bracket [%v, %v], want [%v, %v]", big.FirstSeen, big.LastSeen, t0, t1)
	}
	if big.NIBudgetMin != 8 || big.NIBudgetMax != 32 {
		t.Errorf("NI budget bracket %d..%d, want 8..32", big.NIBudgetMin, big.NIBudgetMax)
	}
	if rep.Clusters[1].Fingerprint == big.Fingerprint {
		t.Error("structurally different programs share a fingerprint")
	}
}

// TestTriageRuleFallback: corpora written before rule recording extract
// the cited rule from the detail text's trailing "[Rule]" marker.
func TestTriageRuleFallback(t *testing.T) {
	dir := t.TempDir()
	src := `header data_t { <bit<8>, low> f; }
struct headers { data_t d; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply { hdr.d.f = 8w1; }
}
`
	writeFinding(t, dir, campaign.Meta{
		Class:  campaign.ClassRejectedClean,
		Detail: "x.p4:3:1: error: explicit flow: high ⋢ low [T-Assign]",
	}, src)
	rep, err := triage.Triage(triage.Config{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clusters) != 1 || rep.Clusters[0].Rule != "T-Assign" {
		t.Fatalf("rule fallback failed:\n%s", triage.FormatReport(rep))
	}
}

// TestTriageFlagsMalformedCorpus: the PR gate's failure mode — orphan
// metadata, non-finding JSON, and unparseable programs each produce an
// error entry and flip OK to false.
func TestTriageFlagsMalformedCorpus(t *testing.T) {
	dir := t.TempDir()
	findings := filepath.Join(dir, "findings")
	if err := os.MkdirAll(findings, 0o755); err != nil {
		t.Fatal(err)
	}
	// Orphan metadata: no .p4 next to it.
	orphan := campaign.Meta{Class: campaign.ClassRejectedClean, Key: strings.Repeat("ab", 32)}
	if err := campaign.WriteMeta(filepath.Join(findings, "rejected-clean-orphan.json"), orphan); err != nil {
		t.Fatal(err)
	}
	rep, err := triage.Triage(triage.Config{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Errors) != 1 {
		t.Fatalf("orphan pair not flagged: ok=%v errors=%v", rep.OK(), rep.Errors)
	}
	if !strings.Contains(triage.FormatReport(rep), "FAIL") {
		t.Error("report for a malformed corpus does not say FAIL")
	}

	// Unparseable program.
	dir2 := t.TempDir()
	writeFinding(t, dir2, campaign.Meta{Class: campaign.ClassRejectedClean, Detail: "d"}, "not a program {{{")
	rep2, err := triage.Triage(triage.Config{CorpusDir: dir2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.OK() || len(rep2.Errors) != 1 || !strings.Contains(rep2.Errors[0], "does not parse") {
		t.Fatalf("unparseable program not flagged: ok=%v errors=%v", rep2.OK(), rep2.Errors)
	}
}

// TestTriageEmptyAndMissingCorpus: nothing to triage is a clean, empty
// report — the first nightly run has no corpus yet.
func TestTriageEmptyAndMissingCorpus(t *testing.T) {
	for _, dir := range []string{t.TempDir(), filepath.Join(t.TempDir(), "never-created")} {
		rep, err := triage.Triage(triage.Config{CorpusDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() || rep.Total != 0 || len(rep.Clusters) != 0 {
			t.Errorf("empty corpus %s: total=%d clusters=%d ok=%v", dir, rep.Total, len(rep.Clusters), rep.OK())
		}
	}
}

// TestTriageJSONRoundtrips: the JSON artifact form decodes back to the
// same cluster table.
func TestTriageJSONRoundtrips(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "regression-corpus")
	rep, err := triage.Triage(triage.Config{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := triage.MarshalJSONReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back triage.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total != rep.Total || len(back.Clusters) != len(rep.Clusters) {
		t.Fatalf("JSON roundtrip lost clusters: %d/%d vs %d/%d",
			back.Total, len(back.Clusters), rep.Total, len(rep.Clusters))
	}
}

// TestTriageRegressionCorpusGolden is the acceptance lock: triaging the
// checked-in 13-finding regression corpus yields at least two distinct
// clusters, and the (class, rule, fingerprint, size) table matches the
// golden file byte for byte — fingerprints are stable across sessions or
// the golden diff says exactly which shape moved. Regenerate with
//
//	go test ./internal/triage -run Golden -update
func TestTriageRegressionCorpusGolden(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "regression-corpus")
	if _, err := os.Stat(dir); err != nil {
		t.Skipf("no checked-in regression corpus: %v", err)
	}
	rep, err := triage.Triage(triage.Config{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("checked-in corpus has malformed metadata:\n%s", triage.FormatReport(rep))
	}
	if len(rep.Clusters) < 2 {
		t.Fatalf("regression corpus triages into %d clusters, want >= 2", len(rep.Clusters))
	}
	var b strings.Builder
	for _, cl := range rep.Clusters {
		fmt.Fprintf(&b, "%s %s %s %d\n", cl.Class, cl.Rule, cl.Fingerprint, cl.Size)
	}
	got := b.String()

	golden := filepath.Join("testdata", "regression-clusters.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("no golden cluster table (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("cluster table drifted from golden (re-run with -update if intended):\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
