package triage

import (
	"strings"
	"testing"

	"repro/internal/campaign"
)

// mkReport builds a minimal ranked report from (class, rule, fp, size)
// rows.
func mkReport(dir string, rows ...[4]string) *Report {
	r := &Report{CorpusDir: dir}
	for _, row := range rows {
		size := int(row[3][0] - '0')
		r.Clusters = append(r.Clusters, Cluster{
			Class: campaign.Class(row[0]), Rule: row[1], Fingerprint: row[2], Size: size,
		})
		r.Total += size
	}
	return r
}

func TestDiffReports(t *testing.T) {
	old := mkReport("old",
		[4]string{"rejected-clean", "T-Assign", "aaaa", "3"},
		[4]string{"rejected-clean", "T-If", "bbbb", "2"},
		[4]string{"runtime-error", "-", "cccc", "1"},
		[4]string{"parser-disagreement", "-", "dddd", "2"},
	)
	cur := mkReport("new",
		[4]string{"rejected-clean", "T-Assign", "aaaa", "5"}, // grown
		[4]string{"rejected-clean", "T-If", "bbbb", "2"},     // unchanged
		[4]string{"runtime-error", "-", "eeee", "1"},         // new shape
		[4]string{"parser-disagreement", "-", "dddd", "1"},   // shrunk
	)
	d := DiffReports(old, cur)
	if !d.Changed() {
		t.Fatal("diff reports no change")
	}
	if len(d.New) != 1 || d.New[0].Fingerprint != "eeee" {
		t.Errorf("New = %+v, want the eeee cluster", d.New)
	}
	if len(d.Gone) != 1 || d.Gone[0].Fingerprint != "cccc" {
		t.Errorf("Gone = %+v, want the cccc cluster", d.Gone)
	}
	if len(d.Grown) != 1 || d.Grown[0].Fingerprint != "aaaa" || d.Grown[0].OldSize != 3 || d.Grown[0].Size != 5 {
		t.Errorf("Grown = %+v, want aaaa 3->5", d.Grown)
	}
	if len(d.Shrunk) != 1 || d.Shrunk[0].Fingerprint != "dddd" {
		t.Errorf("Shrunk = %+v, want dddd", d.Shrunk)
	}
	if d.Unchanged != 1 {
		t.Errorf("Unchanged = %d, want 1", d.Unchanged)
	}

	txt := FormatDiff(d)
	for _, want := range []string{"NEW CLUSTER runtime-error/-/eeee", "GROWN rejected-clean/T-Assign/aaaa: 3 -> 5", "SHRUNK", "GONE runtime-error/-/cccc"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text diff missing %q:\n%s", want, txt)
		}
	}
	md := MarkdownDiff(d)
	for _, want := range []string{"### Triage diff", "| **new** | runtime-error | - | `eeee` | 1 |", "| grown | rejected-clean | T-Assign | `aaaa` | 3 → 5 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown diff missing %q:\n%s", want, md)
		}
	}
}

// TestDiffRoundTripsThroughJSON: the artifact form (MarshalJSONReport)
// decodes back (UnmarshalReport) into a report that diffs cleanly against
// itself — the path the nightly workflow takes across runs.
func TestDiffRoundTripsThroughJSON(t *testing.T) {
	rep, err := Triage(Config{CorpusDir: "../../testdata/regression-corpus"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || len(rep.Clusters) == 0 {
		t.Fatalf("regression corpus triage not clean: %+v", rep.Errors)
	}
	raw, err := MarshalJSONReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	d := DiffReports(rep, back)
	if d.Changed() {
		t.Fatalf("self-diff after JSON round trip reports changes:\n%s", FormatDiff(d))
	}
	if d.Unchanged != len(rep.Clusters) {
		t.Errorf("unchanged %d, want %d", d.Unchanged, len(rep.Clusters))
	}
}
