package triage

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/metrics"
)

// mkReport builds a minimal ranked report from (class, rule, fp, size)
// rows.
func mkReport(dir string, rows ...[4]string) *Report {
	r := &Report{CorpusDir: dir}
	for _, row := range rows {
		size := int(row[3][0] - '0')
		r.Clusters = append(r.Clusters, Cluster{
			Class: campaign.Class(row[0]), Rule: row[1], Fingerprint: row[2], Size: size,
		})
		r.Total += size
	}
	return r
}

func TestDiffReports(t *testing.T) {
	old := mkReport("old",
		[4]string{"rejected-clean", "T-Assign", "aaaa", "3"},
		[4]string{"rejected-clean", "T-If", "bbbb", "2"},
		[4]string{"runtime-error", "-", "cccc", "1"},
		[4]string{"parser-disagreement", "-", "dddd", "2"},
	)
	cur := mkReport("new",
		[4]string{"rejected-clean", "T-Assign", "aaaa", "5"}, // grown
		[4]string{"rejected-clean", "T-If", "bbbb", "2"},     // unchanged
		[4]string{"runtime-error", "-", "eeee", "1"},         // new shape
		[4]string{"parser-disagreement", "-", "dddd", "1"},   // shrunk
	)
	d := DiffReports(old, cur)
	if !d.Changed() {
		t.Fatal("diff reports no change")
	}
	if len(d.New) != 1 || d.New[0].Fingerprint != "eeee" {
		t.Errorf("New = %+v, want the eeee cluster", d.New)
	}
	if len(d.Gone) != 1 || d.Gone[0].Fingerprint != "cccc" {
		t.Errorf("Gone = %+v, want the cccc cluster", d.Gone)
	}
	if len(d.Grown) != 1 || d.Grown[0].Fingerprint != "aaaa" || d.Grown[0].OldSize != 3 || d.Grown[0].Size != 5 {
		t.Errorf("Grown = %+v, want aaaa 3->5", d.Grown)
	}
	if len(d.Shrunk) != 1 || d.Shrunk[0].Fingerprint != "dddd" {
		t.Errorf("Shrunk = %+v, want dddd", d.Shrunk)
	}
	if d.Unchanged != 1 {
		t.Errorf("Unchanged = %d, want 1", d.Unchanged)
	}

	txt := FormatDiff(d)
	for _, want := range []string{"NEW CLUSTER runtime-error/-/eeee", "GROWN rejected-clean/T-Assign/aaaa: 3 -> 5", "SHRUNK", "GONE runtime-error/-/cccc"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text diff missing %q:\n%s", want, txt)
		}
	}
	md := MarkdownDiff(d)
	for _, want := range []string{"### Triage diff", "| **new** | runtime-error | - | `eeee` | 1 |", "| grown | rejected-clean | T-Assign | `aaaa` | 3 → 5 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown diff missing %q:\n%s", want, md)
		}
	}
}

// TestDiffRoundTripsThroughJSON: the artifact form (MarshalJSONReport)
// decodes back (UnmarshalReport) into a report that diffs cleanly against
// itself — the path the nightly workflow takes across runs.
func TestDiffRoundTripsThroughJSON(t *testing.T) {
	rep, err := Triage(Config{CorpusDir: "../../testdata/regression-corpus"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || len(rep.Clusters) == 0 {
		t.Fatalf("regression corpus triage not clean: %+v", rep.Errors)
	}
	raw, err := MarshalJSONReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	d := DiffReports(rep, back)
	if d.Changed() {
		t.Fatalf("self-diff after JSON round trip reports changes:\n%s", FormatDiff(d))
	}
	if d.Unchanged != len(rep.Clusters) {
		t.Errorf("unchanged %d, want %d", d.Unchanged, len(rep.Clusters))
	}
}

// TestDiffCompactionSummary: when Session.Compact has persisted its
// collapse counters into the corpus's metrics.json, the diff carries a
// one-line convergence summary and both renderers show it; a corpus with
// no (or all-zero) compaction series stays silent.
func TestDiffCompactionSummary(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	reg.Counter("compact_entries_total").Add(12)
	reg.Counter("compact_minimized_total").Add(4)
	reg.Counter("compact_collapsed_total").Add(2)
	reg.Counter("compact_bytes_saved_total").Add(900)
	if err := metrics.WriteFile(filepath.Join(dir, "metrics.json"), reg.Snapshot()); err != nil {
		t.Fatalf("write metrics: %v", err)
	}

	old := mkReport(dir, [4]string{"rejected-clean", "T-Assign", "aaaa", "3"})
	cur := mkReport(dir, [4]string{"rejected-clean", "T-Assign", "aaaa", "3"})
	d := DiffReports(old, cur)
	want := "compaction: 12 entries examined, 4 minimized, 2 collapsed, 900 bytes freed"
	if d.Compaction != want {
		t.Fatalf("Compaction = %q, want %q", d.Compaction, want)
	}
	if txt := FormatDiff(d); !strings.Contains(txt, want) {
		t.Errorf("text diff missing the compaction line:\n%s", txt)
	}
	if md := MarkdownDiff(d); !strings.Contains(md, "_"+want+"_") {
		t.Errorf("markdown diff missing the compaction line:\n%s", md)
	}

	// No snapshot (or a zero one) → no line.
	bare := DiffReports(mkReport("nowhere"), mkReport("nowhere"))
	if bare.Compaction != "" {
		t.Errorf("Compaction = %q for a corpus with no telemetry", bare.Compaction)
	}
}
