// Corpus hygiene: retire findings whose defect was deliberately fixed.
//
// Replay flags drift — a persisted finding that no longer classifies the
// way its metadata records. Drift from a *fix* (a parser disagreement
// that now roundtrips, a conservative rejection that now witnesses or
// accepts) leaves the entry permanently red: the corpus can't tell a
// fixed defect from a regressed checker. Retire resolves that, carefully:
//
//  1. every drifted entry is first *promoted* into a retired corpus —
//     re-recorded under the class the current stack assigns, with its
//     original class kept as retired_from — so the fix itself gains a
//     regression guard (if the old defect returns, the re-recorded class
//     drifts and replaying the retired corpus goes red);
//  2. only then is the entry removed from the live corpus;
//  3. the retire report says, per retired entry, whether its (class,
//     rule, shape) cluster still has live members — retiring one
//     exemplar of a still-live defect class is routine; retiring the
//     *last* member means the class is gone and worth a changelog line.
//
// Entries that drift to "unparseable" are not retired: a program the
// current frontend cannot parse cannot be re-recorded as a meaningful
// regression test, so it is reported as an error for a human to resolve.
package triage

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/corpus"
	"repro/internal/events"
)

// RetireConfig configures a retire pass.
type RetireConfig struct {
	// CorpusDir is the live corpus to clean.
	CorpusDir string
	// Corpus is an already-open handle over CorpusDir; when set, the
	// whole pass — the embedded replay, the promote-and-remove loop, and
	// the final survivor triage — runs through it instead of re-opening
	// the directory (historically Retire opened it three times). Session
	// threads one handle through every operation this way.
	Corpus *corpus.Corpus
	// PromoteDir is the retired corpus drifted entries are promoted into
	// before removal ("" = <CorpusDir>/../retired-corpus when CorpusDir
	// has a parent, else "retired-corpus"). Its layout is a corpus —
	// replay it like any other.
	PromoteDir string
	// NITrials and NITrialsMax are the replay NI budget for findings
	// whose metadata predates budget recording (campaign defaults).
	NITrials    int
	NITrialsMax int
	// Log receives one line per retired entry (nil = discard).
	Log io.Writer
	// Events receives one retired event per promoted-and-removed entry
	// (plus the underlying replay's stream); nil discards.
	Events events.Sink
}

// RetiredFinding is one corpus entry moved to the retired corpus.
type RetiredFinding struct {
	// Key and Path identify the entry as it was in the live corpus.
	Key  string `json:"key"`
	Path string `json:"path"`
	// From is the recorded class, To the class the current stack assigns
	// (the retired entry's new recorded class); Detail explains To.
	From   campaign.Class `json:"from"`
	To     campaign.Class `json:"to"`
	Detail string         `json:"detail"`
	// PromotedPath is the retired corpus program file now guarding the fix.
	PromotedPath string `json:"promoted_path"`
	// Rule is the typing rule the entry's original metadata cited ("-"
	// when none); Fingerprint is its AST shape. ClusterSurvivors counts
	// live findings still in its (From, Rule, shape) cluster after the
	// retire pass — 0 means this was the last member of its defect class.
	Rule             string `json:"rule"`
	Fingerprint      string `json:"fingerprint"`
	ClusterSurvivors int    `json:"cluster_survivors"`
}

// RetireReport is a retire pass's outcome.
type RetireReport struct {
	CorpusDir  string `json:"corpus_dir"`
	PromoteDir string `json:"promote_dir"`
	// Total counts findings replayed; Kept those that still reproduce
	// their recorded class and stayed.
	Total int `json:"total"`
	Kept  int `json:"kept"`
	// Retired lists every promoted-and-removed entry.
	Retired []RetiredFinding `json:"retired,omitempty"`
	// Errors lists entries that could not be retired or replayed:
	// unreadable pairs, unparseable programs, promote/remove I/O
	// failures. Errored entries stay in the live corpus.
	Errors []string `json:"errors,omitempty"`
}

// OK reports a clean pass (retiring zero or more entries is clean;
// failing to process one is not).
func (r *RetireReport) OK() bool { return len(r.Errors) == 0 }

// Retire replays the corpus, promotes every drifted finding into the
// retired corpus under its current classification, and removes it from
// the live corpus. The returned error is a context or directory-level
// failure; per-entry problems land in RetireReport.Errors.
func Retire(ctx context.Context, cfg RetireConfig) (*RetireReport, error) {
	promoteDir := cfg.PromoteDir
	if promoteDir == "" {
		promoteDir = filepath.Join(filepath.Dir(filepath.Clean(cfg.CorpusDir)), "retired-corpus")
	}
	log := cfg.Log
	if log == nil {
		log = io.Discard
	}
	rep := &RetireReport{CorpusDir: cfg.CorpusDir, PromoteDir: promoteDir}

	// One handle for the whole pass: the replay below, the
	// promote-and-remove loop, and the final survivor triage all share
	// its caches and see its removals.
	corp := cfg.Corpus
	if corp == nil {
		dir := cfg.CorpusDir
		if dir == "" {
			dir = "."
		}
		var err error
		if corp, err = corpus.OpenSink(dir, retireSink(cfg.Events)); err != nil {
			return rep, fmt.Errorf("triage: retire: %w", err)
		}
	}

	rr, err := campaign.Replay(ctx, campaign.ReplayConfig{
		CorpusDir:   cfg.CorpusDir,
		Corpus:      corp,
		NITrials:    cfg.NITrials,
		NITrialsMax: cfg.NITrialsMax,
		Events:      retireSink(cfg.Events),
	})
	if err != nil {
		return rep, fmt.Errorf("triage: retire: %w", err)
	}
	rep.Total = rr.Total
	rep.Errors = append(rep.Errors, rr.Errors...)
	drifted := map[string]campaign.Drift{}
	for _, d := range rr.Drifts {
		drifted[d.Path] = d
	}
	// Kept = reproduced the recorded class; entries that errored during
	// replay are neither kept nor retired — they stay and are reported.
	rep.Kept = rr.Reproduced

	// Promote and remove. Iteration is name-sorted, so the pass is
	// deterministic; removal happens per entry only after its promotion
	// succeeded, so a failure mid-pass never loses a finding. Each
	// drifted entry lands in exactly one bucket — Retired or Errors —
	// so Total always equals Kept + Retired + per-entry errors: an entry
	// both drift-flagged and unparseable is one "drifted to unparseable"
	// error, not a drift plus a fingerprint failure (replay now assigns
	// unparseable sources that class uniformly, instead of letting the
	// pipeline relabel them generator-bug).
	// Candidates are gathered first — Remove mutates the handle's index,
	// which must not happen under its own iterator.
	type candidate struct {
		e       *corpus.Entry
		d       campaign.Drift
		fp, src string
	}
	var cands []candidate
	for e, err := range corp.Entries() {
		if err != nil {
			continue // already in rep.Errors via the replay above
		}
		d, ok := drifted[e.Path]
		if !ok {
			continue
		}
		if d.Got == "unparseable" {
			rep.Errors = append(rep.Errors,
				fmt.Sprintf("%s: drifted to unparseable — cannot be re-recorded as a regression test; resolve by hand", e.Path))
			continue
		}
		fp, err := e.Fingerprint()
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", e.Path, err))
			continue
		}
		src, err := e.Source()
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", e.Path, err))
			continue
		}
		cands = append(cands, candidate{e: e, d: d, fp: fp, src: src})
	}
	for _, c := range cands {
		e, d, m := c.e, c.d, c.e.Meta
		promoted, err := promote(promoteDir, m, c.src, campaign.Class(d.Got), d.Detail)
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: promote: %v", e.Path, err))
			continue
		}
		if err := corp.Remove(e); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: remove: %v", e.Path, err))
			continue
		}
		rep.Retired = append(rep.Retired, RetiredFinding{
			Key:          m.Key,
			Path:         e.Path,
			From:         m.Class,
			To:           campaign.Class(d.Got),
			Detail:       d.Detail,
			PromotedPath: promoted,
			Rule:         m.CitedRule(),
			Fingerprint:  c.fp,
		})
		cfg.Events.Emit(events.Event{
			Kind: events.KindRetired, Op: "retire",
			Class: string(m.Class), Rule: m.CitedRule(),
			Detail: fmt.Sprintf("%s -> %s: %s", m.Class, d.Got, d.Detail),
			Key:    m.Key, Path: e.Path,
		})
		fmt.Fprintf(log, "retired: %s (%s -> %s) promoted to %s\n", e.Path, m.Class, d.Got, promoted)
	}
	if err := corp.SaveIndex(); err != nil {
		fmt.Fprintf(log, "retire: %v (index rebuilt on next open)\n", err)
	}

	// Cluster the surviving corpus once and annotate each retired entry
	// with how much of its defect class remains live — through the same
	// handle, which has already dropped the removed entries.
	if len(rep.Retired) > 0 {
		after, err := Triage(Config{CorpusDir: cfg.CorpusDir, Corpus: corp})
		if err != nil {
			return rep, err
		}
		survivors := map[string]int{}
		for i := range after.Clusters {
			survivors[after.Clusters[i].key()] = after.Clusters[i].Size
		}
		for i := range rep.Retired {
			rf := &rep.Retired[i]
			rf.ClusterSurvivors = survivors[(&Cluster{Class: rf.From, Rule: rf.Rule, Fingerprint: rf.Fingerprint}).key()]
		}
	}
	sort.Strings(rep.Errors)
	return rep, nil
}

// retireSink relabels the embedded replay's events as the retire pass's
// own, so a listener sees one coherent operation.
func retireSink(s events.Sink) events.Sink {
	if s == nil {
		return nil
	}
	return func(e events.Event) {
		e.Op = "retire"
		s(e)
	}
}

// promote writes one drifted finding into the retired corpus under its
// new class, preserving provenance. An entry already present (same new
// key) is left as is — two drifted duplicates collapse.
func promote(dir string, m campaign.Meta, src string, to campaign.Class, detail string) (string, error) {
	if err := os.MkdirAll(filepath.Join(dir, "findings"), 0o755); err != nil {
		return "", err
	}
	m.RetiredFrom = m.Class
	m.RetiredAt = time.Now()
	m.Class = to
	m.Detail = detail
	m.Key = campaign.DedupKey(to, src)
	stem := fmt.Sprintf("%s-%s", m.Class, m.Key[:12])
	progPath := filepath.Join(dir, "findings", stem+".p4")
	metaPath := filepath.Join(dir, "findings", stem+".json")
	if _, err := os.Stat(metaPath); err == nil {
		return progPath, nil
	}
	// Program first, metadata last: metadata presence is the
	// already-promoted check above, so it must imply a complete pair — a
	// crash between the two writes then leaves a harmless orphan .p4 that
	// the next retire pass overwrites, not a wedged corpus.
	if err := os.WriteFile(progPath, []byte(src), 0o644); err != nil {
		return "", err
	}
	if err := campaign.WriteMeta(metaPath, m); err != nil {
		return "", err
	}
	return progPath, nil
}

// FormatRetireReport renders a retire pass's outcome.
func FormatRetireReport(r *RetireReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "retire: %s, %d findings replayed, %d kept, %d retired\n",
		r.CorpusDir, r.Total, r.Kept, len(r.Retired))
	for _, rf := range r.Retired {
		fmt.Fprintf(&b, "\nRETIRED %s\n  %s -> %s: %s\n  promoted to %s\n", rf.Path, rf.From, rf.To, rf.Detail, rf.PromotedPath)
		if rf.ClusterSurvivors > 0 {
			fmt.Fprintf(&b, "  defect class still live: %d finding(s) share cluster %s/%s\n",
				rf.ClusterSurvivors, rf.From, rf.Fingerprint)
		} else {
			fmt.Fprintf(&b, "  last member of cluster %s/%s — the defect class is fully retired\n",
				rf.From, rf.Fingerprint)
		}
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "\nERROR %s\n", e)
	}
	switch {
	case !r.OK():
		fmt.Fprintf(&b, "FAIL: %d entries could not be processed (see above)\n", len(r.Errors))
	case len(r.Retired) == 0:
		b.WriteString("PASS: no drift — nothing to retire\n")
	default:
		fmt.Fprintf(&b, "PASS: %d fixed findings promoted to %s and retired from the live corpus\n",
			len(r.Retired), r.PromoteDir)
	}
	return b.String()
}
