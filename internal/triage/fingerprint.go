// AST shape fingerprints, re-exported from internal/corpus. The skeleton
// semantics (identifiers/literals/widths abstracted, operator
// type-classes, every label position kept verbatim) are documented and
// implemented there; triage keeps these names because clustering is where
// fingerprints were introduced and is still their primary consumer.
package triage

import (
	"repro/internal/ast"
	"repro/internal/corpus"
)

// FingerprintLen is the length of the hex fingerprint.
const FingerprintLen = corpus.FingerprintLen

// Fingerprint returns the shape fingerprint of a parsed program: the
// first FingerprintLen hex digits of a SHA-256 over its canonical
// skeleton. Equal skeletons — equal program shapes — give equal
// fingerprints.
func Fingerprint(prog *ast.Program) string { return corpus.Fingerprint(prog) }

// FingerprintSource parses src and fingerprints it.
func FingerprintSource(file, src string) (string, error) {
	return corpus.FingerprintSource(file, src)
}

// Skeleton renders the canonical shape skeleton the fingerprint hashes,
// so reports and tests can show *why* two programs share a fingerprint.
func Skeleton(prog *ast.Program) string { return corpus.Skeleton(prog) }
