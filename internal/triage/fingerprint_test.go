package triage_test

import (
	"strings"
	"testing"

	"repro/internal/triage"
)

// fp fingerprints src or fails the test.
func fp(t *testing.T, src string) string {
	t.Helper()
	f, err := triage.FingerprintSource("fp.p4", src)
	if err != nil {
		t.Fatalf("fingerprint: %v\n%s", err, src)
	}
	return f
}

const fpBase = `header data_t {
    <bit<8>, low> lo0;
    <bit<8>, high> hi0;
    <bool, high> bhi;
}
struct headers { data_t d; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        if (hdr.d.bhi) {
            hdr.d.lo0 = (hdr.d.hi0 + 8w41);
        }
    }
}
`

// TestFingerprintAbstraction: the skeleton must be blind to exactly the
// things a mutation varies freely — identifier spellings, literal
// values, bit widths, operator draws within a type-class — so findings
// that differ only in those collapse onto one fingerprint.
func TestFingerprintAbstraction(t *testing.T) {
	base := fp(t, fpBase)
	equal := map[string]string{
		"renamed identifiers": strings.NewReplacer(
			"lo0", "alpha", "hi0", "beta", "bhi", "gamma", "data_t", "pkt_t",
		).Replace(fpBase),
		"different literal": strings.Replace(fpBase, "8w41", "8w199", 1),
		"arith op swap":     strings.Replace(fpBase, "hdr.d.hi0 + 8w41", "hdr.d.hi0 ^ 8w41", 1),
		"different bit width": strings.NewReplacer(
			"bit<8>", "bit<16>", "8w41", "16w41",
		).Replace(fpBase),
	}
	for name, src := range equal {
		if got := fp(t, src); got != base {
			t.Errorf("%s changed the fingerprint: %s != %s", name, got, base)
		}
	}
}

// TestFingerprintSensitivity: the skeleton must keep what the verdict
// hinges on — statement structure, label positions and their lattice
// elements, operator type-classes.
func TestFingerprintSensitivity(t *testing.T) {
	base := fp(t, fpBase)
	different := map[string]string{
		"label moved":          strings.Replace(fpBase, "<bit<8>, low> lo0;", "<bit<8>, high> lo0;", 1),
		"label renamed":        strings.Replace(fpBase, "<bool, high> bhi;", "<bool, L3> bhi;", 1),
		"op class changed":     strings.Replace(fpBase, "hdr.d.hi0 + 8w41", "hdr.d.hi0 == 8w41", 1),
		"operand kind changed": strings.Replace(fpBase, "hdr.d.hi0 + 8w41", "hdr.d.hi0 + hdr.d.lo0", 1),
		"statement added":      strings.Replace(fpBase, "        }\n", "        }\n        hdr.d.lo0 = 8w1;\n", 1),
		"else branch added":    strings.Replace(fpBase, "        }\n", "        } else {\n            hdr.d.lo0 = (hdr.d.hi0 + 8w41);\n        }\n", 1),
		"field removed":        strings.Replace(fpBase, "    <bit<8>, high> hi0;\n", "", 1),
		"annotation dropped":   strings.Replace(fpBase, "<bool, high> bhi;", "bool bhi;", 1),
	}
	for name, src := range different {
		if got := fp(t, src); got == base {
			t.Errorf("%s did NOT change the fingerprint (%s)", name, got)
		}
	}
	// Sanity: fingerprints are stable across calls.
	if again := fp(t, fpBase); again != base {
		t.Errorf("fingerprint not deterministic: %s then %s", base, again)
	}
	if len(base) != triage.FingerprintLen {
		t.Errorf("fingerprint %q has length %d, want %d", base, len(base), triage.FingerprintLen)
	}
}

// TestFingerprintPCAnnotation: the @pc label is a label position too.
func TestFingerprintPCAnnotation(t *testing.T) {
	plain := `header h_t { <bit<8>, low> f; }
struct headers { h_t d; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply { hdr.d.f = 8w1; }
}
`
	annotated := strings.Replace(plain, "control C", "@pc(high)\ncontrol C", 1)
	if fp(t, plain) == fp(t, annotated) {
		t.Error("@pc annotation does not reach the fingerprint")
	}
}
