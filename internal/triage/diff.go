// Triage time-series: diff two cluster reports. The nightly workflow
// uploads one triage JSON per run; comparing consecutive reports tells a
// maintainer what actually changed overnight — a *new* cluster is a new
// defect class (the interesting event), a *grown* cluster is more of a
// known one (volume, not news), a *gone* cluster means a class emptied
// out (retired or minimized away). The diff is keyed the way clusters
// are: (verdict class, cited rule, shape fingerprint), so renamings and
// fresh exemplars don't masquerade as news.
package triage

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ClusterDelta is one cluster present in both reports whose size changed.
type ClusterDelta struct {
	// Cluster is the cluster as the new report records it.
	Cluster `json:"cluster"`
	// OldSize is its size in the old report.
	OldSize int `json:"old_size"`
}

// DiffReport is the outcome of comparing two triage reports.
type DiffReport struct {
	// OldDir and NewDir echo the compared reports' corpus directories.
	OldDir string `json:"old_dir"`
	NewDir string `json:"new_dir"`
	// New lists clusters present only in the new report — new defect
	// classes, the headline; Gone those present only in the old one.
	New  []Cluster `json:"new,omitempty"`
	Gone []Cluster `json:"gone,omitempty"`
	// Grown and Shrunk list clusters present in both whose size moved.
	Grown  []ClusterDelta `json:"grown,omitempty"`
	Shrunk []ClusterDelta `json:"shrunk,omitempty"`
	// Unchanged counts clusters with identical membership size.
	Unchanged int `json:"unchanged"`
}

// Changed reports whether the diff found any cluster-level movement.
func (d *DiffReport) Changed() bool {
	return len(d.New) > 0 || len(d.Gone) > 0 || len(d.Grown) > 0 || len(d.Shrunk) > 0
}

// DiffReports compares two triage reports cluster by cluster. Both
// reports keep their ranked order, so the diff's slices are ordered by
// the new report's ranking (Gone by the old one's).
func DiffReports(old, new *Report) *DiffReport {
	d := &DiffReport{OldDir: old.CorpusDir, NewDir: new.CorpusDir}
	oldBy := map[string]*Cluster{}
	for i := range old.Clusters {
		oldBy[old.Clusters[i].key()] = &old.Clusters[i]
	}
	seen := map[string]bool{}
	for i := range new.Clusters {
		nc := new.Clusters[i]
		k := nc.key()
		seen[k] = true
		oc, ok := oldBy[k]
		switch {
		case !ok:
			d.New = append(d.New, nc)
		case nc.Size > oc.Size:
			d.Grown = append(d.Grown, ClusterDelta{Cluster: nc, OldSize: oc.Size})
		case nc.Size < oc.Size:
			d.Shrunk = append(d.Shrunk, ClusterDelta{Cluster: nc, OldSize: oc.Size})
		default:
			d.Unchanged++
		}
	}
	for i := range old.Clusters {
		if !seen[old.Clusters[i].key()] {
			d.Gone = append(d.Gone, old.Clusters[i])
		}
	}
	return d
}

// UnmarshalReport decodes a triage report from its JSON artifact form
// (the output of MarshalJSONReport) — the input format of the diff.
func UnmarshalReport(raw []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("triage: decode report: %w", err)
	}
	return &r, nil
}

// FormatDiff renders the diff as text, new defect classes first.
func FormatDiff(d *DiffReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "triage diff: %s -> %s\n", d.OldDir, d.NewDir)
	fmt.Fprintf(&b, "  %d new, %d grown, %d shrunk, %d gone, %d unchanged\n",
		len(d.New), len(d.Grown), len(d.Shrunk), len(d.Gone), d.Unchanged)
	for _, c := range d.New {
		fmt.Fprintf(&b, "\nNEW CLUSTER %s/%s/%s (%d findings)\n  exemplar %s\n  %s\n",
			c.Class, c.Rule, c.Fingerprint, c.Size, c.ExemplarPath, c.ExemplarDetail)
	}
	for _, c := range d.Grown {
		fmt.Fprintf(&b, "\nGROWN %s/%s/%s: %d -> %d\n", c.Class, c.Rule, c.Fingerprint, c.OldSize, c.Size)
	}
	for _, c := range d.Shrunk {
		fmt.Fprintf(&b, "\nSHRUNK %s/%s/%s: %d -> %d\n", c.Class, c.Rule, c.Fingerprint, c.OldSize, c.Size)
	}
	for _, c := range d.Gone {
		fmt.Fprintf(&b, "\nGONE %s/%s/%s (had %d findings)\n", c.Class, c.Rule, c.Fingerprint, c.Size)
	}
	if !d.Changed() {
		b.WriteString("no cluster-level changes\n")
	}
	return b.String()
}

// MarkdownDiff renders the diff as a GitHub-flavored Markdown fragment —
// the form the nightly workflow appends to its job summary.
func MarkdownDiff(d *DiffReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Triage diff\n\n")
	fmt.Fprintf(&b, "%d new · %d grown · %d shrunk · %d gone · %d unchanged\n\n",
		len(d.New), len(d.Grown), len(d.Shrunk), len(d.Gone), d.Unchanged)
	if !d.Changed() {
		b.WriteString("No cluster-level changes since the previous report.\n")
		return b.String()
	}
	b.WriteString("| change | class | rule | shape | size |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, c := range d.New {
		fmt.Fprintf(&b, "| **new** | %s | %s | `%s` | %d |\n", c.Class, c.Rule, c.Fingerprint, c.Size)
	}
	for _, c := range d.Grown {
		fmt.Fprintf(&b, "| grown | %s | %s | `%s` | %d → %d |\n", c.Class, c.Rule, c.Fingerprint, c.OldSize, c.Size)
	}
	for _, c := range d.Shrunk {
		fmt.Fprintf(&b, "| shrunk | %s | %s | `%s` | %d → %d |\n", c.Class, c.Rule, c.Fingerprint, c.OldSize, c.Size)
	}
	for _, c := range d.Gone {
		fmt.Fprintf(&b, "| gone | %s | %s | `%s` | %d → 0 |\n", c.Class, c.Rule, c.Fingerprint, c.Size)
	}
	return b.String()
}
