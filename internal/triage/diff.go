// Triage time-series: diff two cluster reports. The nightly workflow
// uploads one triage JSON per run; comparing consecutive reports tells a
// maintainer what actually changed overnight — a *new* cluster is a new
// defect class (the interesting event), a *grown* cluster is more of a
// known one (volume, not news), a *gone* cluster means a class emptied
// out (retired or minimized away). The diff is keyed the way clusters
// are: (verdict class, cited rule, shape fingerprint), so renamings and
// fresh exemplars don't masquerade as news.
package triage

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// ClusterDelta is one cluster present in both reports whose size changed.
type ClusterDelta struct {
	// Cluster is the cluster as the new report records it.
	Cluster `json:"cluster"`
	// OldSize is its size in the old report.
	OldSize int `json:"old_size"`
}

// DiffReport is the outcome of comparing two triage reports.
type DiffReport struct {
	// OldDir and NewDir echo the compared reports' corpus directories.
	OldDir string `json:"old_dir"`
	NewDir string `json:"new_dir"`
	// New lists clusters present only in the new report — new defect
	// classes, the headline; Gone those present only in the old one.
	New  []Cluster `json:"new,omitempty"`
	Gone []Cluster `json:"gone,omitempty"`
	// Grown and Shrunk list clusters present in both whose size moved.
	Grown  []ClusterDelta `json:"grown,omitempty"`
	Shrunk []ClusterDelta `json:"shrunk,omitempty"`
	// Unchanged counts clusters with identical membership size.
	Unchanged int `json:"unchanged"`
	// Fleet is a one-line summary of the fleet run that produced the new
	// report, read from the metrics.json snapshot p4fuzzd persists next to
	// the corpus: windows covered, lease reclaims, and per-worker merged
	// finding counts. Empty when the corpus has no telemetry snapshot
	// (single-process campaigns, pre-telemetry corpora).
	Fleet string `json:"fleet,omitempty"`
	// Compaction is a one-line summary of corpus convergence, read from
	// the same snapshot: how many entries Session.Compact examined,
	// rewrote smaller, or collapsed onto existing findings, and the bytes
	// freed. Empty when no compaction has recorded statistics — nightly
	// summaries then show growth only.
	Compaction string `json:"compaction,omitempty"`
}

// Changed reports whether the diff found any cluster-level movement.
func (d *DiffReport) Changed() bool {
	return len(d.New) > 0 || len(d.Gone) > 0 || len(d.Grown) > 0 || len(d.Shrunk) > 0
}

// DiffReports compares two triage reports cluster by cluster. Both
// reports keep their ranked order, so the diff's slices are ordered by
// the new report's ranking (Gone by the old one's).
func DiffReports(old, new *Report) *DiffReport {
	d := &DiffReport{OldDir: old.CorpusDir, NewDir: new.CorpusDir}
	oldBy := map[string]*Cluster{}
	for i := range old.Clusters {
		oldBy[old.Clusters[i].key()] = &old.Clusters[i]
	}
	seen := map[string]bool{}
	for i := range new.Clusters {
		nc := new.Clusters[i]
		k := nc.key()
		seen[k] = true
		oc, ok := oldBy[k]
		switch {
		case !ok:
			d.New = append(d.New, nc)
		case nc.Size > oc.Size:
			d.Grown = append(d.Grown, ClusterDelta{Cluster: nc, OldSize: oc.Size})
		case nc.Size < oc.Size:
			d.Shrunk = append(d.Shrunk, ClusterDelta{Cluster: nc, OldSize: oc.Size})
		default:
			d.Unchanged++
		}
	}
	for i := range old.Clusters {
		if !seen[old.Clusters[i].key()] {
			d.Gone = append(d.Gone, old.Clusters[i])
		}
	}
	d.Fleet = fleetSummary(new.CorpusDir)
	d.Compaction = compactionSummary(new.CorpusDir)
	return d
}

// compactionSummary condenses the compact_* counters Session.Compact
// persists into the corpus's metrics.json into one line of convergence
// context. Returns "" when no compaction statistics are recorded.
func compactionSummary(corpusDir string) string {
	if corpusDir == "" {
		return ""
	}
	snap, err := metrics.ReadFile(filepath.Join(corpusDir, "metrics.json"))
	if err != nil {
		return ""
	}
	entries := int(snap.Counter("compact_entries_total"))
	minimized := int(snap.Counter("compact_minimized_total"))
	collapsed := int(snap.Counter("compact_collapsed_total"))
	saved := int(snap.Counter("compact_bytes_saved_total"))
	if entries == 0 && minimized == 0 && collapsed == 0 {
		return ""
	}
	return fmt.Sprintf("compaction: %d entries examined, %d minimized, %d collapsed, %d bytes freed",
		entries, minimized, collapsed, saved)
}

// fleetSummary condenses the corpus's persisted metrics snapshot into one
// line of fleet context for the diff: how much work the run did and who
// contributed the merged findings. Returns "" when no snapshot exists or
// it records no fleet series.
func fleetSummary(corpusDir string) string {
	if corpusDir == "" {
		return ""
	}
	snap, err := metrics.ReadFile(filepath.Join(corpusDir, "metrics.json"))
	if err != nil {
		return ""
	}
	windows := int(snap.Counter("fleet_windows_done_total"))
	reclaims := int(snap.Counter("fleet_reclaims_total"))
	type workerCount struct {
		worker string
		n      int
	}
	var merged []workerCount
	for _, c := range snap.Counters {
		if c.Name == "fleet_merged_findings_total" {
			merged = append(merged, workerCount{c.Labels["worker"], int(c.Value)})
		}
	}
	if windows == 0 && reclaims == 0 && len(merged) == 0 {
		return ""
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].worker < merged[j].worker })
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d windows done, %d reclaims", windows, reclaims)
	if len(merged) > 0 {
		b.WriteString("; merged findings by worker:")
		for _, m := range merged {
			fmt.Fprintf(&b, " %s=%d", m.worker, m.n)
		}
	}
	return b.String()
}

// UnmarshalReport decodes a triage report from its JSON artifact form
// (the output of MarshalJSONReport) — the input format of the diff.
func UnmarshalReport(raw []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("triage: decode report: %w", err)
	}
	return &r, nil
}

// FormatDiff renders the diff as text, new defect classes first.
func FormatDiff(d *DiffReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "triage diff: %s -> %s\n", d.OldDir, d.NewDir)
	fmt.Fprintf(&b, "  %d new, %d grown, %d shrunk, %d gone, %d unchanged\n",
		len(d.New), len(d.Grown), len(d.Shrunk), len(d.Gone), d.Unchanged)
	if d.Fleet != "" {
		fmt.Fprintf(&b, "  %s\n", d.Fleet)
	}
	if d.Compaction != "" {
		fmt.Fprintf(&b, "  %s\n", d.Compaction)
	}
	for _, c := range d.New {
		fmt.Fprintf(&b, "\nNEW CLUSTER %s/%s/%s (%d findings)\n  exemplar %s\n  %s\n",
			c.Class, c.Rule, c.Fingerprint, c.Size, c.ExemplarPath, c.ExemplarDetail)
	}
	for _, c := range d.Grown {
		fmt.Fprintf(&b, "\nGROWN %s/%s/%s: %d -> %d\n", c.Class, c.Rule, c.Fingerprint, c.OldSize, c.Size)
	}
	for _, c := range d.Shrunk {
		fmt.Fprintf(&b, "\nSHRUNK %s/%s/%s: %d -> %d\n", c.Class, c.Rule, c.Fingerprint, c.OldSize, c.Size)
	}
	for _, c := range d.Gone {
		fmt.Fprintf(&b, "\nGONE %s/%s/%s (had %d findings)\n", c.Class, c.Rule, c.Fingerprint, c.Size)
	}
	if !d.Changed() {
		b.WriteString("no cluster-level changes\n")
	}
	return b.String()
}

// MarkdownDiff renders the diff as a GitHub-flavored Markdown fragment —
// the form the nightly workflow appends to its job summary.
func MarkdownDiff(d *DiffReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Triage diff\n\n")
	fmt.Fprintf(&b, "%d new · %d grown · %d shrunk · %d gone · %d unchanged\n\n",
		len(d.New), len(d.Grown), len(d.Shrunk), len(d.Gone), d.Unchanged)
	if d.Fleet != "" {
		fmt.Fprintf(&b, "_%s_\n\n", d.Fleet)
	}
	if d.Compaction != "" {
		fmt.Fprintf(&b, "_%s_\n\n", d.Compaction)
	}
	if !d.Changed() {
		b.WriteString("No cluster-level changes since the previous report.\n")
		return b.String()
	}
	b.WriteString("| change | class | rule | shape | size |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, c := range d.New {
		fmt.Fprintf(&b, "| **new** | %s | %s | `%s` | %d |\n", c.Class, c.Rule, c.Fingerprint, c.Size)
	}
	for _, c := range d.Grown {
		fmt.Fprintf(&b, "| grown | %s | %s | `%s` | %d → %d |\n", c.Class, c.Rule, c.Fingerprint, c.OldSize, c.Size)
	}
	for _, c := range d.Shrunk {
		fmt.Fprintf(&b, "| shrunk | %s | %s | `%s` | %d → %d |\n", c.Class, c.Rule, c.Fingerprint, c.OldSize, c.Size)
	}
	for _, c := range d.Gone {
		fmt.Fprintf(&b, "| gone | %s | %s | `%s` | %d → 0 |\n", c.Class, c.Rule, c.Fingerprint, c.Size)
	}
	return b.String()
}
