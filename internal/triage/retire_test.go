package triage_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/gen"
	"repro/internal/triage"
)

// soundSrc trivially IFC-accepts: overwriting a finding's program with it
// simulates the finding's defect having been deliberately fixed.
const soundSrc = `header data_t {
    <bit<8>, low> lo0;
}
struct headers { data_t d; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.lo0 = 8w1;
    }
}
`

// smallGen keeps test campaigns fast: smaller programs shrink quicker.
func smallGen() gen.Config {
	return gen.Config{MaxDepth: 2, MaxStmts: 3, NumFields: 2, WithActions: true}
}

// TestRetirePromotesFixedFindings is the corpus-hygiene demo end to end:
// a campaign persists findings; one finding's defect is "fixed" (its
// program replaced by a sound one); Retire promotes exactly that entry
// into the retired corpus — re-recorded under its current class, old
// class kept as provenance — and removes it from the live corpus, after
// which both corpora replay clean.
func TestRetirePromotesFixedFindings(t *testing.T) {
	dir := t.TempDir()
	promote := filepath.Join(t.TempDir(), "retired")
	rep, err := campaign.Run(context.Background(), campaign.Config{
		N:           80,
		Seed:        42,
		Gen:         smallGen(),
		NITrials:    2,
		NITrialsMax: 8,
		Workers:     2,
		CorpusDir:   dir,
		Minimize:    true,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if rep.NewFindings < 2 {
		t.Fatalf("campaign persisted %d findings; the retire demo needs at least 2", rep.NewFindings)
	}

	// Nothing drifted yet: retire must be a no-op.
	rr, err := triage.Retire(context.Background(), triage.RetireConfig{CorpusDir: dir, PromoteDir: promote})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.OK() || len(rr.Retired) != 0 || rr.Kept != rep.NewFindings {
		t.Fatalf("clean corpus retire: ok=%v retired=%d kept=%d want kept=%d\n%s",
			rr.OK(), len(rr.Retired), rr.Kept, rep.NewFindings, triage.FormatRetireReport(rr))
	}

	// "Fix" one finding's defect.
	var victim campaign.Finding
	for _, f := range rep.Findings {
		if f.Class == campaign.ClassRejectedClean && f.Path != "" {
			victim = f
			break
		}
	}
	if victim.Path == "" {
		t.Fatal("no rejected-clean finding to fix")
	}
	if err := os.WriteFile(victim.Path, []byte(soundSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	rr2, err := triage.Retire(context.Background(), triage.RetireConfig{CorpusDir: dir, PromoteDir: promote})
	if err != nil {
		t.Fatal(err)
	}
	if !rr2.OK() || len(rr2.Retired) != 1 {
		t.Fatalf("retire after fix: ok=%v retired=%d\n%s", rr2.OK(), len(rr2.Retired), triage.FormatRetireReport(rr2))
	}
	rf := rr2.Retired[0]
	if rf.Path != victim.Path || rf.From != campaign.ClassRejectedClean || rf.To != campaign.ClassSound {
		t.Fatalf("retired %s (%s -> %s), want %s (rejected-clean -> sound)", rf.Path, rf.From, rf.To, victim.Path)
	}
	// The live entry is gone, program and metadata both.
	if _, err := os.Stat(rf.Path); !os.IsNotExist(err) {
		t.Errorf("retired program still in live corpus: %v", err)
	}
	if _, err := os.Stat(strings.TrimSuffix(rf.Path, ".p4") + ".json"); !os.IsNotExist(err) {
		t.Errorf("retired metadata still in live corpus: %v", err)
	}
	// The promoted entry exists, re-recorded under its current class with
	// provenance intact.
	raw, err := os.ReadFile(strings.TrimSuffix(rf.PromotedPath, ".p4") + ".json")
	if err != nil {
		t.Fatalf("promoted metadata missing: %v", err)
	}
	for _, want := range []string{`"class": "sound"`, `"retired_from": "rejected-clean"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("promoted metadata lacks %s:\n%s", want, raw)
		}
	}

	// Both corpora replay clean: the retired entry guards the fix.
	for _, d := range []string{dir, promote} {
		rep, err := campaign.Replay(context.Background(), campaign.ReplayConfig{CorpusDir: d})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("%s does not replay clean after retire:\n%s", d, campaign.FormatReplayReport(rep))
		}
	}

	// Triage still works over the cleaned corpus, and the retire report's
	// survivor annotation agrees with the post-retire cluster table.
	after, err := triage.Triage(triage.Config{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !after.OK() || after.Total != rep.NewFindings-1 {
		t.Errorf("post-retire triage: ok=%v total=%d, want %d", after.OK(), after.Total, rep.NewFindings-1)
	}
	live := 0
	for _, cl := range after.Clusters {
		if cl.Class == rf.From && cl.Rule == rf.Rule && cl.Fingerprint == rf.Fingerprint {
			live = cl.Size
		}
	}
	if live != rf.ClusterSurvivors {
		t.Errorf("retire reports %d cluster survivors, triage counts %d", rf.ClusterSurvivors, live)
	}
	if rf.Rule == "" {
		t.Error("retired finding carries no cited rule (want the recorded one, or '-')")
	}
}

// TestRetireCountsClusterSurvivors: retiring one member of a shape-twin
// pair whose defect persists textually (the checker "fixed" it, the
// program unchanged) reports the twin as a live survivor under the full
// (class, rule, shape) cluster key.
func TestRetireCountsClusterSurvivors(t *testing.T) {
	dir := t.TempDir()
	// Two shape-equal rejected-clean twins: identical skeletons, renamed
	// identifiers. The leak is a dead store (the low field is
	// overwritten with a constant before anything observes it), so the
	// rejection is conservative by construction — no NI trial can ever
	// witness it, and the class is stable under any budget.
	twinA := `header data_t {
    <bit<8>, low> lo0;
    <bit<8>, high> hi0;
}
struct headers { data_t d; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.lo0 = hdr.d.hi0;
        hdr.d.lo0 = 8w0;
    }
}
`
	twinB := strings.NewReplacer("lo0", "dst0", "hi0", "key0").Replace(twinA)
	writeFinding(t, dir, campaign.Meta{
		Class: campaign.ClassRejectedClean, Rule: "T-Assign", Detail: "a",
		NITrials: 1, NITrialsMax: 2, NISeed: 5,
	}, twinA)
	writeFinding(t, dir, campaign.Meta{
		Class: campaign.ClassRejectedClean, Rule: "T-Assign", Detail: "b",
		NITrials: 1, NITrialsMax: 2, NISeed: 6,
	}, twinB)
	// The fixture must replay clean before tampering with it.
	rr0, err := campaign.Replay(context.Background(), campaign.ReplayConfig{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !rr0.OK() {
		t.Fatalf("dead-store fixture does not replay rejected-clean:\n%s", campaign.FormatReplayReport(rr0))
	}
	// "Fix" twin A only.
	fpBefore, err := triage.FingerprintSource("a.p4", twinA)
	if err != nil {
		t.Fatal(err)
	}
	stemA := "rejected-clean-" + campaign.DedupKey(campaign.ClassRejectedClean, twinA)[:12]
	if err := os.WriteFile(filepath.Join(dir, "findings", stemA+".p4"), []byte(soundSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	rr, err := triage.Retire(context.Background(), triage.RetireConfig{
		CorpusDir:  dir,
		PromoteDir: filepath.Join(t.TempDir(), "retired"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.OK() || len(rr.Retired) != 1 {
		t.Fatalf("retire: ok=%v retired=%d\n%s", rr.OK(), len(rr.Retired), triage.FormatRetireReport(rr))
	}
	rf := rr.Retired[0]
	if rf.Rule != "T-Assign" {
		t.Errorf("retired rule %q, want the recorded T-Assign", rf.Rule)
	}
	// The fixed program's shape differs from the twins', so its survivor
	// count is keyed off its own current shape — which has no live
	// members. The *twin's* cluster, however, must still be live in the
	// post-retire triage under the recorded rule.
	after, err := triage.Triage(triage.Config{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	foundTwin := false
	for _, cl := range after.Clusters {
		if cl.Fingerprint == fpBefore && cl.Rule == "T-Assign" && cl.Size == 1 {
			foundTwin = true
		}
	}
	if !foundTwin {
		t.Errorf("surviving twin's (rejected-clean, T-Assign, %s) cluster missing after retire:\n%s",
			fpBefore, triage.FormatReport(after))
	}
}

// TestRetireLeavesUnparseableAlone: an entry whose program no longer
// parses cannot be re-recorded as a regression test — it is reported,
// not silently dropped.
func TestRetireLeavesUnparseableAlone(t *testing.T) {
	dir := t.TempDir()
	rep, err := campaign.Run(context.Background(), campaign.Config{
		N:           60,
		Seed:        7,
		Gen:         smallGen(),
		NITrials:    1,
		NITrialsMax: 4,
		CorpusDir:   dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NewFindings == 0 {
		t.Fatal("campaign persisted nothing")
	}
	victim := rep.Findings[0].Path
	if err := os.WriteFile(victim, []byte("garbage {{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	rr, err := triage.Retire(context.Background(), triage.RetireConfig{
		CorpusDir:  dir,
		PromoteDir: filepath.Join(t.TempDir(), "retired"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rr.OK() || len(rr.Retired) != 0 {
		t.Fatalf("unparseable entry handled as a retire: ok=%v retired=%d", rr.OK(), len(rr.Retired))
	}
	found := false
	for _, e := range rr.Errors {
		if strings.Contains(e, victim) {
			found = true
		}
	}
	if !found {
		t.Fatalf("errors %v do not name the unparseable entry %s", rr.Errors, victim)
	}
	if _, err := os.Stat(victim); err != nil {
		t.Errorf("unparseable entry was removed from the live corpus: %v", err)
	}
}

// TestRetireAccountingSingleCountsUnparseableDrift: an entry that is both
// drift-flagged and unparseable is one problem, not two — it gets exactly
// one dedicated error, and the report's accounting holds together:
// Total = Kept + Retired + Errors. (It used to surface twice, once as
// drift and once as a fingerprint-parse failure, inflating the error
// count past the entry count.)
func TestRetireAccountingSingleCountsUnparseableDrift(t *testing.T) {
	dir := t.TempDir()
	// Two dead-store rejected-clean findings: conservative rejections that
	// replay stably under any budget.
	stable := `header data_t {
    <bit<8>, low> lo0;
    <bit<8>, high> hi0;
}
struct headers { data_t d; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.lo0 = hdr.d.hi0;
        hdr.d.lo0 = 8w0;
    }
}
`
	other := strings.NewReplacer("lo0", "dst0", "hi0", "key0").Replace(stable)
	writeFinding(t, dir, campaign.Meta{
		Class: campaign.ClassRejectedClean, Rule: "T-Assign", Detail: "a",
		NITrials: 1, NITrialsMax: 2, NISeed: 5,
	}, stable)
	writeFinding(t, dir, campaign.Meta{
		Class: campaign.ClassRejectedClean, Rule: "T-Assign", Detail: "b",
		NITrials: 1, NITrialsMax: 2, NISeed: 6,
	}, other)
	// Corrupt one program so replay drifts it to "unparseable".
	victim := filepath.Join(dir, "findings",
		"rejected-clean-"+campaign.DedupKey(campaign.ClassRejectedClean, other)[:12]+".p4")
	if err := os.WriteFile(victim, []byte("garbage {{{"), 0o644); err != nil {
		t.Fatal(err)
	}

	rr, err := triage.Retire(context.Background(), triage.RetireConfig{
		CorpusDir:  dir,
		PromoteDir: filepath.Join(t.TempDir(), "retired"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Errors) != 1 {
		t.Fatalf("drifted+unparseable entry produced %d errors, want exactly 1: %v", len(rr.Errors), rr.Errors)
	}
	if !strings.Contains(rr.Errors[0], victim) || !strings.Contains(rr.Errors[0], "unparseable") {
		t.Errorf("the one error should name the entry and the cause: %q", rr.Errors[0])
	}
	if got := rr.Kept + len(rr.Retired) + len(rr.Errors); rr.Total != 2 || got != rr.Total {
		t.Errorf("accounting broken: total=%d kept=%d retired=%d errors=%d",
			rr.Total, rr.Kept, len(rr.Retired), len(rr.Errors))
	}
	if _, err := os.Stat(victim); err != nil {
		t.Errorf("errored entry left the live corpus: %v", err)
	}
}
