// The clusterer: the on-disk corpus in, a ranked cluster table out. A
// cluster is the set of findings that agree on (verdict class, cited
// typing rule, shape fingerprint) — the triple under which "hundreds of
// rejected-clean entries" decompose into a handful of inspectable
// flow-insensitivity classes, NI trial-budget misses, and frontend
// defect families. Alongside the clusters the report carries the
// corpus's novelty analytics (which seeds' mutants keep finding new
// keys), closing the descriptive half of the feedback loop whose
// prescriptive half is the seed pool's novelty weighting.
package triage

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/campaign"
	"repro/internal/corpus"
	"repro/internal/events"
)

// Cluster is one (class, rule, shape) group of corpus findings.
type Cluster struct {
	// Class is the findings' corpus class; Rule the typing rule their IFC
	// rejection cited ("-" when the class involves no rule: parser
	// disagreements, runtime errors); Fingerprint their shared AST shape.
	Class       campaign.Class `json:"class"`
	Rule        string         `json:"rule"`
	Fingerprint string         `json:"fingerprint"`
	// Size is the member count; Keys lists every member's dedup key in
	// name-sorted corpus order.
	Size int      `json:"size"`
	Keys []string `json:"keys"`
	// Exemplar is the smallest member's program (ties broken by key), the
	// one worth reading first; ExemplarPath is its corpus file.
	Exemplar     string `json:"exemplar"`
	ExemplarPath string `json:"exemplar_path"`
	// ExemplarDetail is the exemplar's recorded witness or error text.
	ExemplarDetail string `json:"exemplar_detail"`
	// FirstSeen and LastSeen bracket the members' recorded discovery
	// times: a cluster still growing last night is live, one untouched
	// for weeks is mined out.
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
	// GenOrigin and MutantOrigin split the members by origin — an
	// all-mutant cluster exists only because the coverage-guided loop
	// reached it.
	GenOrigin    int `json:"gen_origin"`
	MutantOrigin int `json:"mutant_origin"`
	// NIBudgetMin and NIBudgetMax bracket the members' recorded NI
	// escalation ceilings at detection (both 0 when the class never ran
	// NI or the corpus predates budget recording). A rejected-clean
	// cluster detected under a tall ceiling has survived a real witness
	// search; one under a low ceiling may just be a trial-budget miss.
	NIBudgetMin int `json:"ni_budget_min"`
	NIBudgetMax int `json:"ni_budget_max"`
}

// clusterKey orders and groups clusters.
func (c *Cluster) key() string {
	return string(c.Class) + "\x00" + c.Rule + "\x00" + c.Fingerprint
}

// SeedNovelty is one seed's mutation-productivity record, joined with its
// class when the seed is still in the corpus.
type SeedNovelty struct {
	Key     string         `json:"key"`
	Class   campaign.Class `json:"class,omitempty"` // "" when retired/missing
	Mutants int            `json:"mutants"`
	NewKeys int            `json:"new_keys"`
}

// Report is the triage outcome: the corpus as structured analytics.
type Report struct {
	CorpusDir string `json:"corpus_dir"`
	// Total counts findings triaged; ByClass splits them by class.
	Total   int                    `json:"total"`
	ByClass map[campaign.Class]int `json:"by_class"`
	// Clusters is the ranked cluster table: size-descending, ties broken
	// by (class, rule, fingerprint) for a stable order.
	Clusters []Cluster `json:"clusters"`
	// Novelty ranks seeds by recorded mutation productivity (new keys
	// descending); empty for corpora without novelty data.
	Novelty []SeedNovelty `json:"novelty,omitempty"`
	// Errors lists malformed corpus entries: unreadable pairs, metadata
	// that is not a finding's, programs that no longer parse. A corpus
	// whose metadata cannot be triaged is a corpus that cannot be
	// trusted as a regression suite either, so gates treat these as
	// failures.
	Errors []string `json:"errors,omitempty"`
}

// OK reports whether every corpus entry was triaged cleanly.
func (r *Report) OK() bool { return len(r.Errors) == 0 }

// Config configures a triage run.
type Config struct {
	// CorpusDir is the corpus to triage. A missing or empty findings
	// directory triages zero findings (empty report, OK).
	CorpusDir string
	// Corpus is an already-open handle over CorpusDir; when set, triage
	// reads through it (sharing its parse and fingerprint caches) instead
	// of opening the directory again. Session threads one handle through
	// every operation this way.
	Corpus *corpus.Corpus
	// MaxNovelty caps the novelty ranking's length (0 = default 10,
	// negative = unlimited).
	MaxNovelty int
	// Events receives one cluster event per ranked cluster (and a final
	// progress tick); nil discards.
	Events events.Sink
}

// Triage reads every finding under cfg.CorpusDir and builds the cluster
// report. The returned error is a directory-level I/O failure; per-entry
// problems are collected in Report.Errors.
func Triage(cfg Config) (*Report, error) {
	rep := &Report{
		CorpusDir: cfg.CorpusDir,
		ByClass:   map[campaign.Class]int{},
	}
	clusters := map[string]*Cluster{}
	classByKey := map[string]campaign.Class{}
	corp := cfg.Corpus
	if corp == nil {
		dir := cfg.CorpusDir
		if dir == "" {
			dir = "."
		}
		var err error
		if corp, err = corpus.OpenSink(dir, cfg.Events); err != nil {
			return rep, fmt.Errorf("triage: %w", err)
		}
	}
	for e, err := range corp.Entries() {
		if err != nil {
			rep.Errors = append(rep.Errors, err.Error())
			continue
		}
		m := e.Meta
		rep.Total++
		rep.ByClass[m.Class]++
		classByKey[m.Key] = m.Class
		fp, err := e.Fingerprint()
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: program does not parse: %v", e.Path, err))
			continue
		}
		c := Cluster{Class: m.Class, Rule: m.CitedRule(), Fingerprint: fp}
		cl, ok := clusters[c.key()]
		if !ok {
			cl = &c
			cl.FirstSeen = m.FoundAt
			clusters[c.key()] = cl
		}
		cl.Size++
		cl.Keys = append(cl.Keys, m.Key)
		src, _ := e.Source() // cached by the Fingerprint call above
		if cl.Exemplar == "" || len(src) < len(cl.Exemplar) ||
			(len(src) == len(cl.Exemplar) && e.Path < cl.ExemplarPath) {
			cl.Exemplar = src
			cl.ExemplarPath = e.Path
			cl.ExemplarDetail = m.Detail
		}
		if m.FoundAt.Before(cl.FirstSeen) {
			cl.FirstSeen = m.FoundAt
		}
		if m.FoundAt.After(cl.LastSeen) {
			cl.LastSeen = m.FoundAt
		}
		if m.Origin == "mutate" {
			cl.MutantOrigin++
		} else {
			cl.GenOrigin++
		}
		if m.NITrialsMax > 0 {
			if cl.NIBudgetMin == 0 || m.NITrialsMax < cl.NIBudgetMin {
				cl.NIBudgetMin = m.NITrialsMax
			}
			if m.NITrialsMax > cl.NIBudgetMax {
				cl.NIBudgetMax = m.NITrialsMax
			}
		}
	}

	rep.Clusters = make([]Cluster, 0, len(clusters))
	for _, cl := range clusters {
		rep.Clusters = append(rep.Clusters, *cl)
	}
	sort.Slice(rep.Clusters, func(i, j int) bool {
		a, b := &rep.Clusters[i], &rep.Clusters[j]
		if a.Size != b.Size {
			return a.Size > b.Size
		}
		return a.key() < b.key()
	})
	sort.Strings(rep.Errors)
	for i := range rep.Clusters {
		cl := &rep.Clusters[i]
		cfg.Events.Emit(events.Event{
			Kind: events.KindCluster, Op: "triage",
			Class: string(cl.Class), Rule: cl.Rule, Detail: cl.Fingerprint,
			Path: cl.ExemplarPath, Done: cl.Size, Total: len(rep.Clusters),
		})
	}
	cfg.Events.Emit(events.Event{
		Kind: events.KindProgress, Op: "triage", Done: rep.Total, Total: rep.Total,
	})

	if err := rankNovelty(rep, cfg, classByKey); err != nil {
		return rep, err
	}
	return rep, nil
}

// rankNovelty joins the corpus's novelty records against the live
// findings' classes (gathered by Triage's corpus pass) and ranks seeds
// by productivity.
func rankNovelty(rep *Report, cfg Config, classByKey map[string]campaign.Class) error {
	stats, err := campaign.LoadNovelty(cfg.CorpusDir)
	if err != nil {
		return fmt.Errorf("triage: %w", err)
	}
	if len(stats) == 0 {
		return nil
	}
	for key, st := range stats {
		rep.Novelty = append(rep.Novelty, SeedNovelty{
			Key:     key,
			Class:   classByKey[key],
			Mutants: st.Mutants,
			NewKeys: st.NewKeys,
		})
	}
	sort.Slice(rep.Novelty, func(i, j int) bool {
		a, b := rep.Novelty[i], rep.Novelty[j]
		if a.NewKeys != b.NewKeys {
			return a.NewKeys > b.NewKeys
		}
		if a.Mutants != b.Mutants {
			return a.Mutants < b.Mutants // fewer tries for the same yield ranks higher
		}
		return a.Key < b.Key
	})
	max := cfg.MaxNovelty
	if max == 0 {
		max = 10
	}
	if max > 0 && len(rep.Novelty) > max {
		rep.Novelty = rep.Novelty[:max]
	}
	return nil
}
