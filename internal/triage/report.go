// Report rendering: the ranked cluster table as text (for terminals and
// CI logs) and as JSON (for artifacts and downstream tooling — the JSON
// form is just the Report struct, so the two never drift).
package triage

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
)

// FormatReport renders the triage report as text: header, per-class
// counts, the ranked cluster table, exemplars, novelty ranking, errors.
func FormatReport(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "triage: %s, %d findings, %d clusters\n", r.CorpusDir, r.Total, len(r.Clusters))
	classes := make([]campaign.Class, 0, len(r.ByClass))
	for c := range r.ByClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		fmt.Fprintf(&b, "  %-24s %6d\n", c, r.ByClass[c])
	}
	if len(r.Clusters) > 0 {
		fmt.Fprintf(&b, "\n  %4s  %-22s %-12s %-12s %9s %11s %9s\n",
			"size", "class", "rule", "shape", "origin", "ni-budget", "last-seen")
		for _, cl := range r.Clusters {
			fmt.Fprintf(&b, "  %4d  %-22s %-12s %-12s %4dg/%dm %11s %9s\n",
				cl.Size, cl.Class, cl.Rule, cl.Fingerprint,
				cl.GenOrigin, cl.MutantOrigin, budgetRange(&cl), ago(cl.LastSeen))
		}
		for _, cl := range r.Clusters {
			fmt.Fprintf(&b, "\nCLUSTER %s/%s/%s (%d findings, first %s, last %s)\n",
				cl.Class, cl.Rule, cl.Fingerprint, cl.Size,
				cl.FirstSeen.Format("2006-01-02"), cl.LastSeen.Format("2006-01-02"))
			fmt.Fprintf(&b, "  exemplar %s\n  %s\n", cl.ExemplarPath, cl.ExemplarDetail)
			for _, line := range strings.Split(strings.TrimRight(cl.Exemplar, "\n"), "\n") {
				b.WriteString("    | ")
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
	}
	if len(r.Novelty) > 0 {
		fmt.Fprintf(&b, "\n  novelty: most productive seeds (new keys / mutants tried)\n")
		for _, n := range r.Novelty {
			class := n.Class
			if class == "" {
				class = "(retired)"
			}
			fmt.Fprintf(&b, "  %12.12s  %-22s %d/%d\n", n.Key, class, n.NewKeys, n.Mutants)
		}
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "\nERROR %s\n", e)
	}
	switch {
	case !r.OK():
		fmt.Fprintf(&b, "FAIL: %d corpus entries could not be triaged (see above)\n", len(r.Errors))
	case r.Total == 0:
		b.WriteString("empty corpus: nothing to triage\n")
	default:
		fmt.Fprintf(&b, "PASS: %d findings triaged into %d clusters\n", r.Total, len(r.Clusters))
	}
	return b.String()
}

// MarshalJSONReport renders the report as indented JSON (the artifact
// form uploaded by the nightly campaign workflow).
func MarshalJSONReport(r *Report) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("triage: encode report: %w", err)
	}
	return append(out, '\n'), nil
}

// budgetRange renders a cluster's NI escalation-ceiling bracket.
func budgetRange(cl *Cluster) string {
	switch {
	case cl.NIBudgetMax == 0:
		return "-"
	case cl.NIBudgetMin == cl.NIBudgetMax:
		return fmt.Sprintf("%d", cl.NIBudgetMax)
	default:
		return fmt.Sprintf("%d..%d", cl.NIBudgetMin, cl.NIBudgetMax)
	}
}

// ago renders a timestamp as a coarse age ("3d", "2h", "now"); zero
// timestamps (pre-FoundAt corpora) render as "-".
func ago(t time.Time) string {
	if t.IsZero() {
		return "-"
	}
	d := time.Since(t)
	switch {
	case d < 0:
		return "now"
	case d < time.Hour:
		return fmt.Sprintf("%dm", int(d.Minutes()))
	case d < 48*time.Hour:
		return fmt.Sprintf("%dh", int(d.Hours()))
	default:
		return fmt.Sprintf("%dd", int(d.Hours()/24))
	}
}
