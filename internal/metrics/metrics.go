// Package metrics is a dependency-free, race-clean registry of counters,
// gauges, and fixed-bucket histograms for the fuzzing stack.
//
// There are no package-level globals: every component that wants to be
// instrumented accepts a *Registry (usually through its config struct) and
// a nil Registry is always legal — it hands out nil metric handles whose
// methods no-op, so call sites never branch on "is telemetry on".
//
// A Registry serializes to two surfaces: Snapshot() produces a stable,
// sorted, JSON-marshalable value (the schema behind metrics.json and the
// KindMetrics event payload), and Snapshot.WriteExposition renders the
// Prometheus text format served by `p4fuzzd -http`. A View merges the
// snapshots of several processes (the coordinator plus its workers) into
// one exposition, labeling each remote sample with its worker id.
package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DurationBuckets is the default histogram layout for operation latencies,
// in seconds. It spans 100µs to 10s, which covers everything from a single
// parse stage to a whole campaign window.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// A Registry owns a process-local set of metric families. The zero value is
// not usable; construct with NewRegistry. A nil *Registry is usable: every
// lookup returns a nil handle whose methods do nothing.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	meta       map[string]series // key → (name, labels) for snapshots
}

type series struct {
	name   string
	labels map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		meta:       make(map[string]series),
	}
}

// labelsOf pairs up kv ("k1", "v1", "k2", "v2", ...); a trailing odd key is
// ignored. Returns nil for no labels.
func labelsOf(kv []string) map[string]string {
	if len(kv) < 2 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// seriesKey is the canonical map key: name{k1="v1",k2="v2"} with label keys
// sorted, which is also exactly the exposition spelling of the series.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter registers (or finds) a monotonically increasing counter.
// kv are alternating label key/value pairs.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	labels := labelsOf(kv)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{}
	r.counters[key] = c
	r.meta[key] = series{name: name, labels: labels}
	return c
}

// Gauge registers (or finds) a gauge: a float value that may go up or down.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	labels := labelsOf(kv)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[key] = g
	r.meta[key] = series{name: name, labels: labels}
	return g
}

// Histogram registers (or finds) a fixed-bucket histogram. buckets are the
// finite upper bounds, ascending; an implicit +Inf bucket catches the rest.
// All handles for one key share the layout of the first registration.
func (r *Registry) Histogram(name string, buckets []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	labels := labelsOf(kv)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[key]; ok {
		return h
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	h := &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms[key] = h
	r.meta[key] = series{name: name, labels: labels}
	return h
}

// A Counter is a monotonically increasing int64. Nil-safe.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone; negative n is
// ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Nil counters read as 0.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is a float64 that may move in either direction. Nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt is Set for integer quantities (sizes, unix timestamps).
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add moves the gauge by delta (CAS loop; safe under concurrency).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value. Nil gauges read as 0.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// A Histogram counts observations into fixed buckets. Nil-safe.
type Histogram struct {
	bounds []float64      // ascending finite upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations. Nil histograms read as 0.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}
