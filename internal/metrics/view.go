package metrics

import "sync"

// A View merges a local registry with snapshots shipped in from other
// processes. The coordinator in cmd/p4fuzzd holds one: its own fleet
// registry is local, and each worker subprocess periodically ships a
// KindMetrics event whose payload Absorb stores here. Snapshot() then
// yields one combined exposition in which every remote series carries a
// worker="id" label (a remote series that already has a worker label —
// stamped by the worker itself — is kept as-is).
type View struct {
	mu     sync.Mutex
	local  *Registry
	remote map[string]Snapshot
}

// NewView wraps a local registry (which may be nil).
func NewView(local *Registry) *View {
	return &View{local: local, remote: make(map[string]Snapshot)}
}

// Absorb stores the latest snapshot for one remote worker, replacing any
// earlier one.
func (v *View) Absorb(worker string, s Snapshot) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.remote[worker] = s
}

// Snapshot merges local and all absorbed remote series into one sorted
// snapshot. The timestamp is the local registry's (i.e. "now"), not the
// remotes' — remote snapshot ages are visible per-worker via whatever
// gauges the workers export, and the merged artifact should date itself.
func (v *View) Snapshot() Snapshot {
	if v == nil {
		return (*Registry)(nil).Snapshot()
	}
	out := v.local.Snapshot()
	v.mu.Lock()
	defer v.mu.Unlock()
	for worker, rs := range v.remote {
		for _, c := range rs.Counters {
			out.Counters = append(out.Counters, Sample{
				Name:   c.Name,
				Labels: ensureWorker(c.Labels, worker),
				Value:  c.Value,
			})
		}
		for _, g := range rs.Gauges {
			out.Gauges = append(out.Gauges, Sample{
				Name:   g.Name,
				Labels: ensureWorker(g.Labels, worker),
				Value:  g.Value,
			})
		}
		for _, h := range rs.Histograms {
			hs := h
			hs.Labels = ensureWorker(h.Labels, worker)
			out.Histograms = append(out.Histograms, hs)
		}
	}
	out.sort()
	return out
}

func ensureWorker(labels map[string]string, worker string) map[string]string {
	if _, ok := labels["worker"]; ok {
		return copyLabels(labels)
	}
	return withLabel(labels, "worker", worker)
}
