package metrics

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentUpdates hammers one counter, one gauge, and one histogram
// from many goroutines; run under -race this is the registry's
// race-cleanliness proof, and the final values prove no update was lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("jobs_total")
			ga := r.Gauge("queue_depth")
			h := r.Histogram("latency_seconds", DurationBuckets)
			for i := 0; i < per; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	const want = goroutines * per
	if got := r.Counter("jobs_total").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("queue_depth").Value(); got != want {
		t.Errorf("gauge = %v, want %d", got, want)
	}
	h := r.Histogram("latency_seconds", DurationBuckets)
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got, wantSum := h.Sum(), 0.001*want; got < wantSum*0.999 || got > wantSum*1.001 {
		t.Errorf("histogram sum = %v, want ~%v", got, wantSum)
	}
}

// TestHistogramBuckets pins the bucket-boundary semantics: an observation
// equal to a bound lands in that bound's bucket (le is inclusive), one
// just above spills to the next, and anything past the last bound goes to
// the implicit +Inf bucket (visible only through Count).
func TestHistogramBuckets(t *testing.T) {
	bounds := []float64{0.1, 1, 10}
	cases := []struct {
		v    float64
		want []int64 // cumulative counts for bounds after observing only v
	}{
		{0.05, []int64{1, 1, 1}},
		{0.1, []int64{1, 1, 1}},       // equal to bound: inclusive
		{0.1000001, []int64{0, 1, 1}}, // just above: next bucket
		{1, []int64{0, 1, 1}},
		{5, []int64{0, 0, 1}},
		{10, []int64{0, 0, 1}},
		{11, []int64{0, 0, 0}}, // overflow: +Inf only
	}
	for _, tc := range cases {
		r := NewRegistry()
		h := r.Histogram("h", bounds)
		h.Observe(tc.v)
		snap := r.Snapshot()
		if len(snap.Histograms) != 1 {
			t.Fatalf("observe(%v): %d histogram samples", tc.v, len(snap.Histograms))
		}
		hs := snap.Histograms[0]
		if len(hs.Buckets) != len(bounds) {
			t.Fatalf("observe(%v): %d buckets, want %d (finite only)", tc.v, len(hs.Buckets), len(bounds))
		}
		for i, b := range hs.Buckets {
			if b.Le != bounds[i] {
				t.Errorf("observe(%v): bucket[%d].Le = %v, want %v", tc.v, i, b.Le, bounds[i])
			}
			if b.Count != tc.want[i] {
				t.Errorf("observe(%v): bucket[le=%v] = %d, want %d", tc.v, b.Le, b.Count, tc.want[i])
			}
		}
		if hs.Count != 1 {
			t.Errorf("observe(%v): count = %d, want 1", tc.v, hs.Count)
		}
	}
}

// buildSample populates a registry with one series of each kind, labeled
// and unlabeled, in deliberately non-sorted registration order.
func buildSample() *Registry {
	r := NewRegistry()
	r.Counter("campaign_jobs_total").Add(42)
	r.Counter("campaign_findings_total", "class", "soundness-violation").Add(3)
	r.Counter("campaign_findings_total", "class", "generator-bug").Add(1)
	r.Gauge("corpus_size").SetInt(17)
	h := r.Histogram("pipeline_stage_seconds", []float64{0.001, 0.01, 0.1}, "stage", "parse")
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2) // +Inf
	return r
}

// TestExpositionGolden locks the exact Prometheus text rendering.
func TestExpositionGolden(t *testing.T) {
	snap := buildSample().Snapshot()
	var b strings.Builder
	if err := snap.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE campaign_findings_total counter
campaign_findings_total{class="generator-bug"} 1
campaign_findings_total{class="soundness-violation"} 3
# TYPE campaign_jobs_total counter
campaign_jobs_total 42
# TYPE corpus_size gauge
corpus_size 17
# TYPE pipeline_stage_seconds histogram
pipeline_stage_seconds_bucket{le="0.001",stage="parse"} 2
pipeline_stage_seconds_bucket{le="0.01",stage="parse"} 2
pipeline_stage_seconds_bucket{le="0.1",stage="parse"} 3
pipeline_stage_seconds_bucket{le="+Inf",stage="parse"} 4
pipeline_stage_seconds_sum{stage="parse"} 2.051
pipeline_stage_seconds_count{stage="parse"} 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotJSONGolden locks the snapshot's JSON schema (modulo the
// timestamp): stable ordering, finite bucket bounds only, non-nil slices.
func TestSnapshotJSONGolden(t *testing.T) {
	snap := buildSample().Snapshot()
	snap.Time = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "time": "2026-01-02T03:04:05Z",
  "counters": [
    {
      "name": "campaign_findings_total",
      "labels": {
        "class": "generator-bug"
      },
      "value": 1
    },
    {
      "name": "campaign_findings_total",
      "labels": {
        "class": "soundness-violation"
      },
      "value": 3
    },
    {
      "name": "campaign_jobs_total",
      "value": 42
    }
  ],
  "gauges": [
    {
      "name": "corpus_size",
      "value": 17
    }
  ],
  "histograms": [
    {
      "name": "pipeline_stage_seconds",
      "labels": {
        "stage": "parse"
      },
      "count": 4,
      "sum": 2.051,
      "buckets": [
        {
          "le": 0.001,
          "count": 2
        },
        {
          "le": 0.01,
          "count": 2
        },
        {
          "le": 0.1,
          "count": 3
        }
      ]
    }
  ]
}`
	if got := string(data); got != want {
		t.Errorf("snapshot JSON mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestEmptySnapshotJSON: an empty (or nil) registry still marshals with
// all three top-level keys present as arrays — the shape the CI jq gate
// requires of every metrics.json.
func TestEmptySnapshotJSON(t *testing.T) {
	for _, r := range []*Registry{nil, NewRegistry()} {
		data, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"time", "counters", "gauges", "histograms"} {
			if _, ok := m[key]; !ok {
				t.Errorf("empty snapshot lacks %q: %s", key, data)
			}
		}
		if string(m["counters"]) != "[]" {
			t.Errorf("counters = %s, want []", m["counters"])
		}
	}
}

// TestNilSafety: a nil registry hands out nil handles whose methods no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	r.Histogram("h", DurationBuckets).Observe(1)
	r.Histogram("h", DurationBuckets).ObserveDuration(time.Second)
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if v := r.Gauge("g").Value(); v != 0 {
		t.Errorf("nil gauge value = %v", v)
	}
	if v := r.Histogram("h", nil).Count(); v != 0 {
		t.Errorf("nil histogram count = %d", v)
	}
}

// TestWriteFileRoundTrip: WriteFile then ReadFile reproduces the snapshot,
// and the lookup helpers find series by name+labels.
func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := WriteFile(path, buildSample().Snapshot()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Counter("campaign_jobs_total"); v != 42 {
		t.Errorf("campaign_jobs_total = %v, want 42", v)
	}
	if v := got.Counter("campaign_findings_total", "class", "soundness-violation"); v != 3 {
		t.Errorf("findings{soundness-violation} = %v, want 3", v)
	}
	if v := got.Counter("campaign_findings_total", "class", "no-such"); v != 0 {
		t.Errorf("absent series = %v, want 0", v)
	}
	if v := got.Gauge("corpus_size"); v != 17 {
		t.Errorf("corpus_size = %v, want 17", v)
	}
}

// TestUpdateFileMerges: UpdateFile overwrites only the series the new
// snapshot carries — series another process persisted (a fleet run's
// worker-labeled telemetry) survive a later process's write (a triage
// session's op timings). The clobber this prevents: p4triage running
// after p4fuzzd on the same corpus must not erase the fleet snapshot.
func TestUpdateFileMerges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")

	fleet := NewRegistry()
	fleet.Counter("fleet_windows_done_total").Add(8)
	fleet.Counter("campaign_jobs_total", "worker", "local-0").Add(300)
	fleet.Histogram("pipeline_stage_seconds", DurationBuckets, "stage", "parse").Observe(0.002)
	if err := UpdateFile(path, fleet.Snapshot()); err != nil { // no file yet: plain write
		t.Fatal(err)
	}

	triage := NewRegistry()
	triage.Histogram("session_op_seconds", DurationBuckets, "op", "triage").Observe(0.5)
	triage.Counter("campaign_jobs_total", "worker", "local-0").Add(1) // same key: replaces
	if err := UpdateFile(path, triage.Snapshot()); err != nil {
		t.Fatal(err)
	}

	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Counter("fleet_windows_done_total"); v != 8 {
		t.Errorf("fleet series clobbered: fleet_windows_done_total = %v, want 8", v)
	}
	if v := got.Counter("campaign_jobs_total", "worker", "local-0"); v != 1 {
		t.Errorf("same-key series not replaced: jobs{local-0} = %v, want 1", v)
	}
	stages, ops := 0, 0
	for _, h := range got.Histograms {
		switch h.Name {
		case "pipeline_stage_seconds":
			stages++
		case "session_op_seconds":
			ops++
		}
	}
	if stages != 1 || ops != 1 {
		t.Errorf("histograms after merge: %d stage + %d op series, want 1 + 1", stages, ops)
	}
}

// TestViewMerge: remote snapshots appear under worker labels next to local
// series, and a second Absorb for the same worker replaces the first.
func TestViewMerge(t *testing.T) {
	local := NewRegistry()
	local.Gauge("fleet_active_leases").SetInt(2)
	v := NewView(local)

	w1 := NewRegistry()
	w1.Counter("campaign_jobs_total").Add(10)
	v.Absorb("w1", w1.Snapshot())
	w1.Counter("campaign_jobs_total").Add(5)
	v.Absorb("w1", w1.Snapshot()) // replaces, not accumulates

	w2 := NewRegistry()
	w2.Counter("campaign_jobs_total").Add(7)
	v.Absorb("w2", w2.Snapshot())

	snap := v.Snapshot()
	if got := snap.Gauge("fleet_active_leases"); got != 2 {
		t.Errorf("local gauge = %v, want 2", got)
	}
	if got := snap.Counter("campaign_jobs_total", "worker", "w1"); got != 15 {
		t.Errorf("w1 jobs = %v, want 15", got)
	}
	if got := snap.Counter("campaign_jobs_total", "worker", "w2"); got != 7 {
		t.Errorf("w2 jobs = %v, want 7", got)
	}
	var b strings.Builder
	if err := snap.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `campaign_jobs_total{worker="w1"} 15`) {
		t.Errorf("exposition missing merged worker series:\n%s", b.String())
	}
}

// TestLabelEscaping: label values with quotes/backslashes/newlines render
// escaped in the exposition rather than corrupting it.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "k", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.Snapshot().WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	want := `c{k="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition = %q, want contains %q", b.String(), want)
	}
}
