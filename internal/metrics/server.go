package metrics

import (
	"encoding/json"
	"net/http"
)

// ExpositionHandler serves src() in the Prometheus text format. src is
// called per request, so handing in (*Registry).Snapshot or
// (*View).Snapshot gives a live endpoint.
func ExpositionHandler(src func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = src().WriteExposition(w)
	})
}

// JSONHandler serves src() as indented JSON — the same schema WriteFile
// persists, so `curl /metrics.json` and the final metrics.json artifact
// are directly diffable.
func JSONHandler(src func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(src())
	})
}
