package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"
)

// A Snapshot is a point-in-time copy of a registry, sorted by series name
// then label set so equal registries marshal to byte-identical JSON. Bucket
// bounds are finite only — the +Inf bucket is implied by Count and rendered
// in the exposition, never stored (encoding/json cannot represent +Inf).
type Snapshot struct {
	Time       time.Time         `json:"time"`
	Counters   []Sample          `json:"counters"`
	Gauges     []Sample          `json:"gauges"`
	Histograms []HistogramSample `json:"histograms"`
}

// A Sample is one counter or gauge series.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// A HistogramSample is one histogram series. Buckets are cumulative, as in
// the Prometheus exposition.
type HistogramSample struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets []Bucket          `json:"buckets"`
}

// A Bucket is a cumulative count of observations <= Le.
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

func sortKey(name string, labels map[string]string) string {
	return seriesKey(name, labels)
}

// Snapshot copies the registry's current values. Safe to call concurrently
// with updates; each series is read atomically (the snapshot as a whole is
// not a single atomic cut, which is fine for telemetry). Nil registries
// produce an empty (but fully non-nil) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Time:       time.Now().UTC(),
		Counters:   []Sample{},
		Gauges:     []Sample{},
		Histograms: []HistogramSample{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for key, c := range r.counters {
		m := r.meta[key]
		snap.Counters = append(snap.Counters, Sample{Name: m.name, Labels: copyLabels(m.labels), Value: float64(c.Value())})
	}
	for key, g := range r.gauges {
		m := r.meta[key]
		snap.Gauges = append(snap.Gauges, Sample{Name: m.name, Labels: copyLabels(m.labels), Value: g.Value()})
	}
	for key, h := range r.histograms {
		m := r.meta[key]
		hs := HistogramSample{
			Name:    m.name,
			Labels:  copyLabels(m.labels),
			Count:   h.Count(),
			Sum:     h.Sum(),
			Buckets: make([]Bucket, len(h.bounds)),
		}
		var cum int64
		for i, le := range h.bounds {
			cum += h.counts[i].Load()
			hs.Buckets[i] = Bucket{Le: le, Count: cum}
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	snap.sort()
	return snap
}

func copyLabels(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for k, v := range labels {
		m[k] = v
	}
	return m
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool {
		return sortKey(s.Counters[i].Name, s.Counters[i].Labels) < sortKey(s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return sortKey(s.Gauges[i].Name, s.Gauges[i].Labels) < sortKey(s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return sortKey(s.Histograms[i].Name, s.Histograms[i].Labels) < sortKey(s.Histograms[j].Name, s.Histograms[j].Labels)
	})
}

// Counter returns the value of the named counter series (labels as kv
// pairs), or 0 when absent. Convenience for consumers of persisted
// snapshots (triage diff, CI gates, tests).
func (s Snapshot) Counter(name string, kv ...string) float64 {
	key := seriesKey(name, labelsOf(kv))
	for _, c := range s.Counters {
		if seriesKey(c.Name, c.Labels) == key {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the value of the named gauge series, or 0 when absent.
func (s Snapshot) Gauge(name string, kv ...string) float64 {
	key := seriesKey(name, labelsOf(kv))
	for _, g := range s.Gauges {
		if seriesKey(g.Name, g.Labels) == key {
			return g.Value
		}
	}
	return 0
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteExposition renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per family, then one line per
// series, with histograms expanded into cumulative _bucket series (the
// `le="+Inf"` bucket restored from Count) plus _sum and _count.
func (s Snapshot) WriteExposition(w io.Writer) error {
	var lastFamily string
	family := func(name, typ string) error {
		if name == lastFamily {
			return nil
		}
		lastFamily = name
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		return err
	}
	for _, c := range s.Counters {
		if err := family(c.Name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesKey(c.Name, c.Labels), formatFloat(c.Value)); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := family(g.Name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesKey(g.Name, g.Labels), formatFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := family(h.Name, "histogram"); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			labels := withLabel(h.Labels, "le", formatFloat(b.Le))
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesKey(h.Name+"_bucket", labels), b.Count); err != nil {
				return err
			}
		}
		inf := withLabel(h.Labels, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesKey(h.Name+"_bucket", inf), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesKey(h.Name+"_sum", h.Labels), formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesKey(h.Name+"_count", h.Labels), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// withLabel returns labels plus one extra pair, leaving the input intact.
// The "le" key sorts within seriesKey like any other, but Prometheus
// parsers accept label order freely.
func withLabel(labels map[string]string, k, v string) map[string]string {
	m := make(map[string]string, len(labels)+1)
	for lk, lv := range labels {
		m[lk] = lv
	}
	m[k] = v
	return m
}

// WriteFile persists the snapshot as indented JSON via a temp file and
// rename, so a reader never observes a torn write. The file lands with a
// trailing newline, like every other artifact the stack writes.
func WriteFile(path string, s Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".metrics-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads a snapshot previously persisted by WriteFile.
func ReadFile(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// MergeSnapshots overlays upd on base: every series in upd replaces its
// same-key counterpart in base, series only in base survive, and the
// result carries upd's timestamp. This is the "rewrite what you know,
// preserve what you don't" rule UpdateFile applies, so one process's
// snapshot (say, a triage session's op timings) never erases another's
// (a fleet run's worker-labeled telemetry) from a shared artifact.
func MergeSnapshots(base, upd Snapshot) Snapshot {
	out := Snapshot{Time: upd.Time}
	seenC := make(map[string]bool, len(upd.Counters))
	for _, c := range upd.Counters {
		seenC[seriesKey(c.Name, c.Labels)] = true
	}
	out.Counters = append([]Sample{}, upd.Counters...)
	for _, c := range base.Counters {
		if !seenC[seriesKey(c.Name, c.Labels)] {
			out.Counters = append(out.Counters, c)
		}
	}
	seenG := make(map[string]bool, len(upd.Gauges))
	for _, g := range upd.Gauges {
		seenG[seriesKey(g.Name, g.Labels)] = true
	}
	out.Gauges = append([]Sample{}, upd.Gauges...)
	for _, g := range base.Gauges {
		if !seenG[seriesKey(g.Name, g.Labels)] {
			out.Gauges = append(out.Gauges, g)
		}
	}
	seenH := make(map[string]bool, len(upd.Histograms))
	for _, h := range upd.Histograms {
		seenH[seriesKey(h.Name, h.Labels)] = true
	}
	out.Histograms = append([]HistogramSample{}, upd.Histograms...)
	for _, h := range base.Histograms {
		if !seenH[seriesKey(h.Name, h.Labels)] {
			out.Histograms = append(out.Histograms, h)
		}
	}
	out.sort()
	return out
}

// UpdateFile atomically rewrites path with the on-disk snapshot overlaid
// by s (see MergeSnapshots). A missing or unreadable file degrades to a
// plain WriteFile, so first writes and corrupt artifacts both heal.
func UpdateFile(path string, s Snapshot) error {
	if prev, err := ReadFile(path); err == nil {
		s = MergeSnapshots(prev, s)
	}
	return WriteFile(path, s)
}
