// Package ast defines the abstract syntax tree for the Core P4 fragment of
// the P4BID paper (Figure 1), extended with the surface constructs needed to
// express the paper's listings: headers, structs, typedefs, match_kind
// declarations, control blocks with parameters, actions, tables, and the
// security annotations <τ, χ> of Listing 2.
//
// Go has no sum types, so each syntactic category (Expr, Stmt, Decl, Type)
// is an interface with unexported marker methods; the concrete node types
// form the closed set of variants. Every node carries the source position
// of its first token for diagnostics.
package ast

import (
	"strings"

	"repro/internal/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Types (syntactic)

// Type is a syntactic type expression. The checker resolves it (unfolding
// typedefs) to a semantic type in internal/types.
type Type interface {
	Node
	typeNode()
	String() string
}

// BoolType is the type bool.
type BoolType struct{ P token.Pos }

// IntType is the arbitrary-precision integer type int.
type IntType struct{ P token.Pos }

// BitType is bit<Width>.
type BitType struct {
	P     token.Pos
	Width int
}

// VoidType is the unit type (spelled void in function return position).
type VoidType struct{ P token.Pos }

// NamedType refers to a typedef, header, struct, or match_kind by name.
type NamedType struct {
	P    token.Pos
	Name string
}

// StackType is the header-stack / array type Elem[Size].
type StackType struct {
	P    token.Pos
	Elem *SecType
	Size int
}

// SecType is a security-annotated type <Base, Label>. Label is the label
// name to be resolved against the configured lattice; an empty Label means
// the type was written without an annotation and defaults to ⊥.
type SecType struct {
	P     token.Pos
	Base  Type
	Label string // "" = unannotated (defaults to lattice bottom)
}

func (*BoolType) typeNode()  {}
func (*IntType) typeNode()   {}
func (*BitType) typeNode()   {}
func (*VoidType) typeNode()  {}
func (*NamedType) typeNode() {}
func (*StackType) typeNode() {}

func (t *BoolType) Pos() token.Pos  { return t.P }
func (t *IntType) Pos() token.Pos   { return t.P }
func (t *BitType) Pos() token.Pos   { return t.P }
func (t *VoidType) Pos() token.Pos  { return t.P }
func (t *NamedType) Pos() token.Pos { return t.P }
func (t *StackType) Pos() token.Pos { return t.P }
func (t *SecType) Pos() token.Pos   { return t.P }

func (t *BoolType) String() string  { return "bool" }
func (t *IntType) String() string   { return "int" }
func (t *BitType) String() string   { return "bit<" + itoa(t.Width) + ">" }
func (t *VoidType) String() string  { return "void" }
func (t *NamedType) String() string { return t.Name }
func (t *StackType) String() string { return t.Elem.String() + "[" + itoa(t.Size) + "]" }

// String renders a SecType; unannotated types render as their base.
func (t *SecType) String() string {
	if t.Label == "" {
		return t.Base.String()
	}
	return "<" + t.Base.String() + ", " + t.Label + ">"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [24]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression of Figure 1a.
type Expr interface {
	Node
	exprNode()
	String() string
}

// BoolLit is true or false.
type BoolLit struct {
	P   token.Pos
	Val bool
}

// IntLit is an integer literal n or a width-prefixed bit literal n_w.
type IntLit struct {
	P        token.Pos
	Val      uint64
	Width    int  // significant only if HasWidth
	HasWidth bool // true for literals like 8w255
}

// Ident is a variable reference x.
type Ident struct {
	P    token.Pos
	Name string
}

// Unary is a prefix operation: !, -, ~.
type Unary struct {
	P  token.Pos
	Op token.Kind
	X  Expr
}

// Binary is exp1 ⊕ exp2.
type Binary struct {
	P    token.Pos
	Op   token.Kind
	X, Y Expr
}

// Index is exp1[exp2] (header-stack indexing).
type Index struct {
	P    token.Pos
	X, I Expr
}

// FieldInit is a single f = exp inside a record literal.
type FieldInit struct {
	P     token.Pos
	Name  string
	Value Expr
}

// RecordLit is { f_i = exp_i }.
type RecordLit struct {
	P      token.Pos
	Fields []FieldInit
}

// Member is exp.f (record or header field projection).
type Member struct {
	P     token.Pos
	X     Expr
	Field string
}

// Call is exp1(exp2...) — function or action invocation.
type Call struct {
	P    token.Pos
	Fun  Expr
	Args []Expr
}

func (*BoolLit) exprNode()   {}
func (*IntLit) exprNode()    {}
func (*Ident) exprNode()     {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Index) exprNode()     {}
func (*RecordLit) exprNode() {}
func (*Member) exprNode()    {}
func (*Call) exprNode()      {}

func (e *BoolLit) Pos() token.Pos   { return e.P }
func (e *IntLit) Pos() token.Pos    { return e.P }
func (e *Ident) Pos() token.Pos     { return e.P }
func (e *Unary) Pos() token.Pos     { return e.P }
func (e *Binary) Pos() token.Pos    { return e.P }
func (e *Index) Pos() token.Pos     { return e.P }
func (e *RecordLit) Pos() token.Pos { return e.P }
func (e *Member) Pos() token.Pos    { return e.P }
func (e *Call) Pos() token.Pos      { return e.P }

func (e *BoolLit) String() string {
	if e.Val {
		return "true"
	}
	return "false"
}

func (e *IntLit) String() string {
	if e.HasWidth {
		return itoa(e.Width) + "w" + utoa(e.Val)
	}
	return utoa(e.Val)
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func (e *Ident) String() string { return e.Name }

func (e *Unary) String() string { return e.Op.String() + e.X.String() }

func (e *Binary) String() string {
	return "(" + e.X.String() + " " + e.Op.String() + " " + e.Y.String() + ")"
}

func (e *Index) String() string { return e.X.String() + "[" + e.I.String() + "]" }

func (e *RecordLit) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, f := range e.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteString(" = ")
		b.WriteString(f.Value.String())
	}
	b.WriteString("}")
	return b.String()
}

func (e *Member) String() string { return e.X.String() + "." + e.Field }

func (e *Call) String() string {
	var b strings.Builder
	b.WriteString(e.Fun.String())
	b.WriteString("(")
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(")")
	return b.String()
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement of Figure 1b.
type Stmt interface {
	Node
	stmtNode()
}

// AssignStmt is lval = exp (written := in the calculus).
type AssignStmt struct {
	P        token.Pos
	LHS, RHS Expr
}

// IfStmt is if (cond) then else els; Else may be nil (empty block).
type IfStmt struct {
	P    token.Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt (else-if), or nil
}

// BlockStmt is { stmt... }.
type BlockStmt struct {
	P     token.Pos
	Stmts []Stmt
}

// ExitStmt is exit.
type ExitStmt struct{ P token.Pos }

// ReturnStmt is return exp; X may be nil for a bare return.
type ReturnStmt struct {
	P token.Pos
	X Expr
}

// ExprStmt is a function or action call in statement position.
type ExprStmt struct {
	P token.Pos
	X Expr
}

// ApplyStmt is a table application t.apply().
type ApplyStmt struct {
	P     token.Pos
	Table Expr
}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct {
	P    token.Pos
	Decl *VarDecl
}

func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()  {}
func (*ExitStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*ApplyStmt) stmtNode()  {}
func (*DeclStmt) stmtNode()   {}

func (s *AssignStmt) Pos() token.Pos { return s.P }
func (s *IfStmt) Pos() token.Pos     { return s.P }
func (s *BlockStmt) Pos() token.Pos  { return s.P }
func (s *ExitStmt) Pos() token.Pos   { return s.P }
func (s *ReturnStmt) Pos() token.Pos { return s.P }
func (s *ExprStmt) Pos() token.Pos   { return s.P }
func (s *ApplyStmt) Pos() token.Pos  { return s.P }
func (s *DeclStmt) Pos() token.Pos   { return s.P }

// ---------------------------------------------------------------------------
// Declarations

// Decl is a declaration of Figure 1c.
type Decl interface {
	Node
	declNode()
	DeclName() string
}

// Direction is a parameter direction d ∈ {in, out, inout}; the paper's
// fragment uses in and inout (directionless defaults to in).
type Direction int

// Parameter directions.
const (
	DirNone Direction = iota // directionless: control-plane-supplied (acts as in)
	DirIn
	DirOut
	DirInOut
)

// String renders the direction keyword ("" for directionless).
func (d Direction) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	default:
		return ""
	}
}

// Param is a function, action, or control parameter.
type Param struct {
	P    token.Pos
	Dir  Direction
	Type *SecType
	Name string
}

// VarDecl is τ x or τ x = exp; Const marks const declarations; Register
// marks stateful register declarations (register τ x[n]), whose storage
// persists across packets — the paper's Section 7 extension.
type VarDecl struct {
	P        token.Pos
	Type     *SecType
	Name     string
	Init     Expr // may be nil
	Const    bool
	Register bool
}

// TypedefDecl is typedef τ X.
type TypedefDecl struct {
	P    token.Pos
	Type *SecType
	Name string
}

// MatchKindDecl is match_kind { f... }.
type MatchKindDecl struct {
	P       token.Pos
	Members []string
}

// FieldDecl is a single field of a header or struct.
type FieldDecl struct {
	P    token.Pos
	Type *SecType
	Name string
}

// HeaderDecl is header X { fields }.
type HeaderDecl struct {
	P      token.Pos
	Name   string
	Fields []FieldDecl
}

// StructDecl is struct X { fields }.
type StructDecl struct {
	P      token.Pos
	Name   string
	Fields []FieldDecl
}

// FuncDecl is function τ_ret x(d y: τ){stmt}; actions are FuncDecls with
// IsAction set and no return type.
type FuncDecl struct {
	P        token.Pos
	Name     string
	IsAction bool
	Ret      *SecType // nil for actions and void functions
	Params   []Param
	Body     *BlockStmt
}

// TableKey is one key entry exp : match_kind.
type TableKey struct {
	P         token.Pos
	Expr      Expr
	MatchKind string
}

// ActionRef names an action in a table's action list, with the
// compile-time-bound argument expressions (the paper's exp_a).
type ActionRef struct {
	P    token.Pos
	Name string
	Args []Expr
}

// TableDecl is table x { key = {...} actions = {...} }.
type TableDecl struct {
	P       token.Pos
	Name    string
	Keys    []TableKey
	Actions []ActionRef
	Default *ActionRef // optional default_action
}

// ControlDecl is a control block: parameters, local declarations, and the
// apply block.
type ControlDecl struct {
	P      token.Pos
	Name   string
	Params []Param
	Locals []Decl // VarDecl, FuncDecl, TableDecl
	Apply  *BlockStmt
	// PCLabel is an optional @pc("label") annotation giving the security
	// context the control must be checked under (Section 5.4 types Alice's
	// control at pc = A and Bob's at pc = B).
	PCLabel string
}

func (*VarDecl) declNode()       {}
func (*TypedefDecl) declNode()   {}
func (*MatchKindDecl) declNode() {}
func (*HeaderDecl) declNode()    {}
func (*StructDecl) declNode()    {}
func (*FuncDecl) declNode()      {}
func (*TableDecl) declNode()     {}
func (*ControlDecl) declNode()   {}

func (d *VarDecl) Pos() token.Pos       { return d.P }
func (d *TypedefDecl) Pos() token.Pos   { return d.P }
func (d *MatchKindDecl) Pos() token.Pos { return d.P }
func (d *HeaderDecl) Pos() token.Pos    { return d.P }
func (d *StructDecl) Pos() token.Pos    { return d.P }
func (d *FuncDecl) Pos() token.Pos      { return d.P }
func (d *TableDecl) Pos() token.Pos     { return d.P }
func (d *ControlDecl) Pos() token.Pos   { return d.P }

func (d *VarDecl) DeclName() string       { return d.Name }
func (d *TypedefDecl) DeclName() string   { return d.Name }
func (d *MatchKindDecl) DeclName() string { return "match_kind" }
func (d *HeaderDecl) DeclName() string    { return d.Name }
func (d *StructDecl) DeclName() string    { return d.Name }
func (d *FuncDecl) DeclName() string      { return d.Name }
func (d *TableDecl) DeclName() string     { return d.Name }
func (d *ControlDecl) DeclName() string   { return d.Name }

// Program is prg ::= typ_decl... ctrl_body. Decls holds the top-level type,
// constant, and object declarations; Controls the control blocks (most
// programs have exactly one, per Section 3.1).
type Program struct {
	File     string
	Decls    []Decl
	Controls []*ControlDecl
}

// Control returns the single control block, or the first one if several are
// declared. It returns nil for a program with no control block.
func (p *Program) Control() *ControlDecl {
	if len(p.Controls) == 0 {
		return nil
	}
	return p.Controls[0]
}

// ---------------------------------------------------------------------------
// L-values (Appendix F)

// IsLValue reports whether e has the syntactic shape of an l-value:
// x, lval.f, or lval[n]. The type checker additionally requires the
// expression to go inout.
func IsLValue(e Expr) bool {
	switch e := e.(type) {
	case *Ident:
		return true
	case *Member:
		return IsLValue(e.X)
	case *Index:
		return IsLValue(e.X)
	default:
		return false
	}
}

// LValueBase returns the base variable of an l-value (Appendix F's
// lval_base), or "" if e is not an l-value.
func LValueBase(e Expr) string {
	switch e := e.(type) {
	case *Ident:
		return e.Name
	case *Member:
		return LValueBase(e.X)
	case *Index:
		return LValueBase(e.X)
	default:
		return ""
	}
}
