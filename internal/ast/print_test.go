package ast_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/progs"
)

// roundtrip parses src, prints it, reparses, and requires the second print
// to equal the first.
func roundtrip(t *testing.T, name, src string) string {
	t.Helper()
	prog, err := parser.Parse(name, src)
	if err != nil {
		t.Fatalf("%s: seed source does not parse: %v", name, err)
	}
	printed := ast.Print(prog)
	reparsed, err := parser.Parse(name, printed)
	if err != nil {
		t.Fatalf("%s: printed form does not reparse: %v\n%s", name, err, printed)
	}
	if again := ast.Print(reparsed); again != printed {
		t.Fatalf("%s: print is not a fixed point\nfirst:\n%s\nsecond:\n%s", name, printed, again)
	}
	return printed
}

// TestPrintRoundtripCaseStudies roundtrips every embedded case study in
// every variant.
func TestPrintRoundtripCaseStudies(t *testing.T) {
	for _, p := range progs.All() {
		for _, v := range []progs.Variant{progs.Buggy, progs.Fixed, progs.Unannotated} {
			roundtrip(t, p.FileName(v), p.Source(v))
		}
	}
}

// TestPrintRoundtripGenerated roundtrips generated programs, both the
// deterministic synthetic families and random draws.
func TestPrintRoundtripGenerated(t *testing.T) {
	roundtrip(t, "synth.p4", gen.Synth(4, 3, 4))
	roundtrip(t, "chain.p4", gen.SynthChainLabels(5))
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		roundtrip(t, "rand.p4", gen.Random(rng, gen.DefaultConfig()))
	}
}

// TestPrintPreservesVerdict checks printing does not change the IFC
// checker's verdict: the reprinted program is semantically the program.
func TestPrintPreservesVerdict(t *testing.T) {
	for _, p := range progs.All() {
		for _, v := range []progs.Variant{progs.Buggy, progs.Fixed} {
			src := p.Source(v)
			lat := p.Lattice()
			orig := core.Check(parser.MustParse("a.p4", src), lat)
			printed := roundtrip(t, p.FileName(v), src)
			re := core.Check(parser.MustParse("b.p4", printed), lat)
			if orig.OK != re.OK {
				t.Errorf("%s %s: verdict changed after print: %v -> %v",
					p.Name, v, orig.OK, re.OK)
			}
		}
	}
}

// TestPrintSyntaxDetails locks in surface details the parser is picky
// about: @pc annotations, register arrays, default actions, else-if.
func TestPrintSyntaxDetails(t *testing.T) {
	src := `
typedef <bit<8>, high> secret_t;
match_kind { exact, lpm }
header h_t {
    <bit<8>, low> a;
    secret_t b;
}
struct headers { h_t h; }
const bit<8> K = 8w7;
@pc(high)
control C(inout headers hdr, in bit<8> x) {
    register bit<8> r[4];
    action set(bit<8> v) { hdr.h.a = v; }
    function bit<8> id(in bit<8> y) { return y; }
    table t {
        key = { hdr.h.a : exact; }
        actions = { set(1); NoAction; }
        default_action = NoAction;
    }
    apply {
        if (x > 1) { t.apply(); } else if (x == 0) { exit; } else { hdr.h.b = id(K); }
        r[1] = hdr.h.a;
    }
}
`
	printed := roundtrip(t, "details.p4", src)
	for _, want := range []string{
		"@pc(high)", "register bit<8>[4] r;", "default_action = NoAction;",
		"} else if ", "<bit<8>, high>", "function bit<8> id(in bit<8> y)",
	} {
		if !strings.Contains(printed, want) {
			t.Errorf("printed form missing %q:\n%s", want, printed)
		}
	}
}
