// AST-to-source printing. Print renders a Program back into the surface
// syntax accepted by internal/parser, so that print ∘ parse is the identity
// on the printed form: parsing Print's output and printing again yields the
// same text. The parser fuzz targets use this for the parse→print→reparse
// roundtrip property, and the pipeline uses it to persist generated
// counterexamples.
package ast

import (
	"fmt"
	"strings"
)

// Print renders prog as parseable source text. Top-level type and constant
// declarations come first (in declaration order), then the control blocks;
// the parser's Program split loses the original interleaving, so printing is
// canonical rather than position-faithful.
func Print(prog *Program) string {
	p := &printer{}
	for _, d := range prog.Decls {
		p.decl(d)
	}
	for _, c := range prog.Controls {
		p.control(c)
	}
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) linef(format string, args ...any) {
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("    ")
	}
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *TypedefDecl:
		p.linef("typedef %s %s;", d.Type, d.Name)
	case *MatchKindDecl:
		p.linef("match_kind { %s }", strings.Join(d.Members, ", "))
	case *HeaderDecl:
		p.fields("header", d.Name, d.Fields)
	case *StructDecl:
		p.fields("struct", d.Name, d.Fields)
	case *VarDecl:
		p.varDecl(d)
	case *FuncDecl:
		p.funcDecl(d)
	case *TableDecl:
		p.table(d)
	case *ControlDecl:
		p.control(d)
	}
}

func (p *printer) fields(kw, name string, fs []FieldDecl) {
	p.linef("%s %s {", kw, name)
	p.indent++
	for _, f := range fs {
		p.linef("%s %s;", f.Type, f.Name)
	}
	p.indent--
	p.linef("}")
}

func (p *printer) varDecl(d *VarDecl) {
	switch {
	case d.Register:
		p.linef("register %s %s;", d.Type, d.Name)
	case d.Const:
		p.linef("const %s %s = %s;", d.Type, d.Name, d.Init)
	case d.Init != nil:
		p.linef("%s %s = %s;", d.Type, d.Name, d.Init)
	default:
		p.linef("%s %s;", d.Type, d.Name)
	}
}

func (p *printer) params(ps []Param) string {
	parts := make([]string, len(ps))
	for i, pr := range ps {
		if dir := pr.Dir.String(); dir != "" {
			parts[i] = dir + " " + pr.Type.String() + " " + pr.Name
		} else {
			parts[i] = pr.Type.String() + " " + pr.Name
		}
	}
	return strings.Join(parts, ", ")
}

func (p *printer) funcDecl(d *FuncDecl) {
	if d.IsAction {
		p.linef("action %s(%s) {", d.Name, p.params(d.Params))
	} else {
		ret := "void"
		if d.Ret != nil {
			ret = d.Ret.String()
		}
		p.linef("function %s %s(%s) {", ret, d.Name, p.params(d.Params))
	}
	p.indent++
	p.stmts(d.Body)
	p.indent--
	p.linef("}")
}

func (p *printer) actionRef(r ActionRef) string {
	if len(r.Args) == 0 {
		return r.Name
	}
	args := make([]string, len(r.Args))
	for i, a := range r.Args {
		args[i] = a.String()
	}
	return r.Name + "(" + strings.Join(args, ", ") + ")"
}

func (p *printer) table(d *TableDecl) {
	p.linef("table %s {", d.Name)
	p.indent++
	if len(d.Keys) > 0 {
		p.linef("key = {")
		p.indent++
		for _, k := range d.Keys {
			p.linef("%s : %s;", k.Expr, k.MatchKind)
		}
		p.indent--
		p.linef("}")
	}
	p.linef("actions = {")
	p.indent++
	for _, a := range d.Actions {
		p.linef("%s;", p.actionRef(a))
	}
	p.indent--
	p.linef("}")
	if d.Default != nil {
		p.linef("default_action = %s;", p.actionRef(*d.Default))
	}
	p.indent--
	p.linef("}")
}

func (p *printer) control(c *ControlDecl) {
	if c.PCLabel != "" {
		p.linef("@pc(%s)", c.PCLabel)
	}
	p.linef("control %s(%s) {", c.Name, p.params(c.Params))
	p.indent++
	for _, d := range c.Locals {
		p.decl(d)
	}
	p.linef("apply {")
	p.indent++
	p.stmts(c.Apply)
	p.indent--
	p.linef("}")
	p.indent--
	p.linef("}")
}

func (p *printer) stmts(b *BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		p.stmt(s)
	}
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *AssignStmt:
		p.linef("%s = %s;", s.LHS, s.RHS)
	case *IfStmt:
		p.ifStmt(s)
	case *BlockStmt:
		p.linef("{")
		p.indent++
		p.stmts(s)
		p.indent--
		p.linef("}")
	case *ExitStmt:
		p.linef("exit;")
	case *ReturnStmt:
		if s.X != nil {
			p.linef("return %s;", s.X)
		} else {
			p.linef("return;")
		}
	case *ExprStmt:
		p.linef("%s;", s.X)
	case *ApplyStmt:
		p.linef("%s.apply();", s.Table)
	case *DeclStmt:
		p.varDecl(s.Decl)
	}
}

// ifStmt prints an if with its else-if chain flattened onto the closing
// braces (`} else if (...) {`), so nesting does not indent; the parser
// rebuilds the identical IfStmt spine.
func (p *printer) ifStmt(s *IfStmt) {
	p.linef("if (%s) {", s.Cond)
	for {
		p.indent++
		p.stmts(s.Then)
		p.indent--
		switch e := s.Else.(type) {
		case nil:
			p.linef("}")
			return
		case *IfStmt:
			p.linef("} else if (%s) {", e.Cond)
			s = e
		case *BlockStmt:
			p.linef("} else {")
			p.indent++
			p.stmts(e)
			p.indent--
			p.linef("}")
			return
		}
	}
}
