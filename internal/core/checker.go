// Package core implements the P4BID information-flow control type system —
// the paper's primary contribution. It checks the Core P4 fragment of
// Figure 1 against the security typing rules of Figures 5 (expressions),
// 6 (statements), and 7 (declarations), over an arbitrary security lattice.
//
// # Judgements
//
// Expressions:   Γ, Δ ⊢pc exp : ⟨τ, χ⟩ goes d
// Statements:    Γ, Δ ⊢pc stmt ⊣ Γ′
// Declarations:  Γ, Δ ⊢pc decl ⊣ Γ′, Δ′
//
// The checker is algorithmic: the declarative subtyping rules T-SubType-In
// (read-only expressions may raise their label) and T-Subtype-PC are
// applied at use sites — argument passing, assignment right-hand sides,
// guards, and returns. Function and action pc_fn labels (the lower bound on
// everything the body writes, rule T-FuncDecl) are inferred as the meet of
// the body's write effects and recorded in the arrow type; table pc_tbl
// labels are chosen maximal (the meet of the member actions' pc_fn) and
// validated against the key labels per T-TblDecl.
//
// Every rejection cites the violated rule, e.g.:
//
//	cache.p4:12:5: error: assignment to <bool, low> from <bit<8>, high>:
//	high ⋢ low [T-Assign]
package core

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/diag"
	"repro/internal/lattice"
	"repro/internal/resolve"
	"repro/internal/token"
	"repro/internal/types"
)

// Result is the outcome of checking a program.
type Result struct {
	// OK reports whether the program is well-typed (no errors).
	OK bool
	// Diags holds all diagnostics, sorted by position.
	Diags []*diag.Diagnostic
	// ControlPC maps each control block name to the pc it was checked at.
	ControlPC map[string]lattice.Label
	// FuncPC maps each declared function/action (control-qualified,
	// "Ctrl.act") to its inferred pc_fn write-effect label.
	FuncPC map[string]lattice.Label
	// TablePC maps each declared table ("Ctrl.tbl") to its pc_tbl label.
	TablePC map[string]lattice.Label
}

// Err returns nil if the program typechecked, or an error aggregating the
// diagnostics.
func (r *Result) Err() error {
	if r.OK {
		return nil
	}
	var l diag.List
	for _, d := range r.Diags {
		if d.Severity == diag.Error {
			l.RuleErrorf(d.Pos, d.Rule, "%s", d.Msg)
		}
	}
	return l.Err()
}

// Check typechecks prog under the given security lattice with the IFC type
// system. The pc for each control block defaults to ⊥ and can be raised by
// a @pc(label) annotation on the control (Section 5.4).
func Check(prog *ast.Program, lat lattice.Lattice) *Result {
	c := newChecker(prog, lat)
	c.run()
	return c.result()
}

type checker struct {
	prog  *ast.Program
	lat   lattice.Lattice
	diags diag.List
	res   *resolve.Resolver

	controlPC map[string]lattice.Label
	funcPC    map[string]lattice.Label
	tablePC   map[string]lattice.Label

	// effect accumulates the write effect (a meet) of the statement being
	// checked; used to infer pc_fn for function declarations.
	effect lattice.Label

	curControl string
}

func newChecker(prog *ast.Program, lat lattice.Lattice) *checker {
	c := &checker{
		prog:      prog,
		lat:       lat,
		controlPC: map[string]lattice.Label{},
		funcPC:    map[string]lattice.Label{},
		tablePC:   map[string]lattice.Label{},
	}
	c.res = resolve.New(lat, &c.diags)
	c.effect = lat.Top()
	return c
}

func (c *checker) result() *Result {
	return &Result{
		OK:        !c.diags.HasErrors(),
		Diags:     c.diags.All(),
		ControlPC: c.controlPC,
		FuncPC:    c.funcPC,
		TablePC:   c.tablePC,
	}
}

func (c *checker) bot() lattice.Label { return c.lat.Bottom() }

func (c *checker) qualify(name string) string {
	if c.curControl == "" {
		return name
	}
	return c.curControl + "." + name
}

// run checks the whole program.
func (c *checker) run() {
	c.res.CollectTypeDecls(c.prog)
	env := types.NewEnv()
	for name, t := range c.res.Builtins() {
		env.Bind(name, t)
	}
	// Match-kind members are variables of type ⟨match_kind, ⊥⟩ (T-MatchKind).
	mkType := types.SecType{T: c.res.MatchKindType(), L: c.bot()}
	for _, m := range c.res.MatchKinds {
		env.Bind(m, mkType)
	}
	// Top-level constants.
	for _, d := range c.prog.Decls {
		if vd, ok := d.(*ast.VarDecl); ok {
			env = c.checkVarDecl(env, c.bot(), vd)
		}
	}
	if len(c.prog.Controls) == 0 {
		c.diags.Errorf(token.Pos{}, "program has no control block")
		return
	}
	for _, ctrl := range c.prog.Controls {
		c.checkControl(env, ctrl)
	}
}

// checkControl checks one control block: parameters are bound into a child
// Γ, locals are processed in order (declarations extend Γ, per the
// declaration judgement), and the apply block is checked at the control's
// pc (⊥ unless annotated).
func (c *checker) checkControl(global *types.Env, ctrl *ast.ControlDecl) {
	c.curControl = ctrl.Name
	defer func() { c.curControl = "" }()

	pc := c.res.Label(ctrl.P, ctrl.PCLabel)
	c.controlPC[ctrl.Name] = pc

	env := global.Child()
	for _, p := range ctrl.Params {
		st := c.res.SecType(p.Type)
		if st.IsZero() {
			continue
		}
		if env.InCurrentScope(p.Name) {
			c.diags.Errorf(p.P, "duplicate parameter %q", p.Name)
			continue
		}
		env.Bind(p.Name, st)
	}
	for _, d := range ctrl.Locals {
		switch d := d.(type) {
		case *ast.VarDecl:
			env = c.checkVarDecl(env, pc, d)
		case *ast.FuncDecl:
			env = c.checkFuncDecl(env, d)
		case *ast.TableDecl:
			env = c.checkTableDecl(env, d)
		default:
			c.diags.Errorf(d.Pos(), "unsupported declaration in control body")
		}
	}
	c.checkBlock(env.Child(), pc, ctrl.Apply)
}

// ---------------------------------------------------------------------------
// Declarations (Figure 7)

// checkVarDecl implements T-VarDecl and T-VarInit: τ x and τ x := exp.
// The initializer's label must flow into the declared label (T-SubType-In),
// and its base type must unfold to the declared base type.
func (c *checker) checkVarDecl(env *types.Env, pc lattice.Label, d *ast.VarDecl) *types.Env {
	declared := c.res.SecType(d.Type)
	if declared.IsZero() {
		return env
	}
	if env.InCurrentScope(d.Name) {
		c.diags.Errorf(d.P, "%q redeclared in this scope", d.Name)
	}
	if d.Init != nil {
		it, _ := c.checkExpr(env, pc, d.Init)
		if !it.IsZero() {
			it = c.coerceLit(d.Init, it, declared)
			if !types.Equal(it.T, declared.T) {
				c.diags.RuleErrorf(d.P, "T-VarInit",
					"cannot initialize %s %s with %s", declared, d.Name, it)
			} else if !c.lat.Leq(it.L, declared.L) {
				c.diags.RuleErrorf(d.P, "T-VarInit",
					"initializer of %s has label %s which does not flow to declared label %s (%s ⋢ %s)",
					d.Name, it.L, declared.L, it.L, declared.L)
			}
		}
	}
	env.Bind(d.Name, declared)
	// A declaration writes the new variable, so it contributes the declared
	// label to the surrounding write effect only if initialized (the fresh
	// location is unobservable until assigned, but an initializer moves
	// data). We take the conservative reading: initialized declarations
	// contribute their label.
	if d.Init != nil {
		c.addEffect(declared.L)
	}
	return env
}

// checkFuncDecl implements T-FuncDecl. The body is checked in
// Γ1 = Γ[params, return ↦ ⟨τret, χret⟩]; its write effect is accumulated
// and becomes the function's pc_fn, recorded on the arrow type.
func (c *checker) checkFuncDecl(env *types.Env, d *ast.FuncDecl) *types.Env {
	params := make([]types.Param, 0, len(d.Params))
	body := env.Child()
	for _, p := range d.Params {
		st := c.res.SecType(p.Type)
		if st.IsZero() {
			continue
		}
		dir := types.In
		ctrlPlane := false
		switch p.Dir {
		case ast.DirIn:
			dir = types.In
		case ast.DirOut:
			dir = types.Out
		case ast.DirInOut:
			dir = types.InOut
		case ast.DirNone:
			dir, ctrlPlane = types.In, true
		}
		if !d.IsAction && ctrlPlane {
			// Directionless parameters of plain functions behave as in.
			ctrlPlane = false
		}
		if body.InCurrentScope(p.Name) {
			c.diags.Errorf(p.P, "duplicate parameter %q", p.Name)
			continue
		}
		params = append(params, types.Param{Name: p.Name, Dir: dir, Type: st, CtrlPlane: ctrlPlane})
		body.Bind(p.Name, st)
	}
	ret := types.SecType{T: types.Unit{}, L: c.bot()}
	if d.Ret != nil {
		ret = c.res.SecType(d.Ret)
		if ret.IsZero() {
			ret = types.SecType{T: types.Unit{}, L: c.bot()}
		}
	}
	if d.IsAction && d.Ret != nil {
		c.diags.RuleErrorf(d.P, "T-FuncDecl", "action %s cannot have a return type", d.Name)
	}
	body.Bind("return", ret)

	// Check the body at ⊥, accumulating its write effect; the meet of the
	// effects is pc_fn. By monotonicity of the statement rules in pc
	// (validated by property tests), the body also checks at pc_fn itself.
	saved := c.effect
	c.effect = c.lat.Top()
	c.checkBlock(body.Child(), c.bot(), d.Body)
	pcFn := c.effect
	c.effect = saved

	ft := &types.Func{Params: params, PCFn: pcFn, Ret: ret, IsAction: d.IsAction}
	if env.InCurrentScope(d.Name) {
		c.diags.Errorf(d.P, "%q redeclared in this scope", d.Name)
	}
	env.Bind(d.Name, types.SecType{T: ft, L: c.bot()})
	c.funcPC[c.qualify(d.Name)] = pcFn
	return env
}

// checkTableDecl implements T-TblDecl. The table's pc_tbl is chosen
// maximal: pc_tbl = pc_a = ⊓_j pc_fn_j over the member actions. The rule's
// side conditions are then:
//
//	χ_k ⊑ pc_tbl            for every key k (keys act as conditional guards)
//	χ_k ⊑ pc_fn_j           (implied by the above since pc_tbl ⊑ pc_fn_j)
//	bound argument types match the action's leading parameters
//	trailing unbound parameters must be control-plane (directionless)
func (c *checker) checkTableDecl(env *types.Env, d *ast.TableDecl) *types.Env {
	// Key expressions and their labels.
	keyJoin := c.bot()
	for _, k := range d.Keys {
		kt, _ := c.checkExpr(env, c.bot(), k.Expr)
		if !kt.IsZero() {
			if !types.IsScalar(kt.T) {
				c.diags.RuleErrorf(k.P, "T-TblDecl",
					"table %s key %s must be a scalar, got %s", d.Name, k.Expr, kt.T)
			}
			keyJoin = c.lat.Join(keyJoin, kt.L)
		}
		if !c.res.IsMatchKind(k.MatchKind) {
			c.diags.RuleErrorf(k.P, "T-TblDecl",
				"unknown match kind %q for key %s", k.MatchKind, k.Expr)
		}
	}

	// Actions: every referenced action must be in scope with an action
	// type; pc_a is the meet of their pc_fn labels.
	pcA := c.lat.Top()
	refs := append([]ast.ActionRef(nil), d.Actions...)
	if d.Default != nil {
		refs = append(refs, *d.Default)
	}
	for _, ref := range refs {
		at, ok := env.Lookup(ref.Name)
		if !ok {
			c.diags.RuleErrorf(ref.P, "T-TblDecl", "table %s references undeclared action %q", d.Name, ref.Name)
			continue
		}
		ft, ok := at.T.(*types.Func)
		if !ok || !ft.IsAction {
			c.diags.RuleErrorf(ref.P, "T-TblDecl", "table %s: %q is not an action (type %s)", d.Name, ref.Name, at)
			continue
		}
		pcA = c.lat.Meet(pcA, ft.PCFn)
		// Bound (compile-time) arguments cover a prefix of the parameters.
		if len(ref.Args) > len(ft.Params) {
			c.diags.RuleErrorf(ref.P, "T-TblDecl",
				"action %s takes %d parameters but %d arguments are bound", ref.Name, len(ft.Params), len(ref.Args))
			continue
		}
		for i, arg := range ref.Args {
			c.checkArg(env, c.bot(), ref.Name, ft.Params[i], arg)
		}
		// Remaining parameters must be supplied by the control plane.
		for _, p := range ft.Params[len(ref.Args):] {
			if !p.CtrlPlane {
				c.diags.RuleErrorf(ref.P, "T-TblDecl",
					"action %s parameter %q (direction %s) is not bound at table %s and is not control-plane-supplied",
					ref.Name, p.Name, p.Dir, d.Name)
			}
		}
	}

	pcTbl := pcA // maximal pc_tbl with pc_tbl ⊑ pc_a
	if !c.lat.Leq(keyJoin, pcTbl) {
		c.diags.RuleErrorf(d.P, "T-TblDecl",
			"table %s matches on keys at label %s but its actions write at label %s: selecting an action leaks the key (%s ⋢ %s)",
			d.Name, keyJoin, pcTbl, keyJoin, pcTbl)
	}

	if env.InCurrentScope(d.Name) {
		c.diags.Errorf(d.P, "%q redeclared in this scope", d.Name)
	}
	env.Bind(d.Name, types.SecType{T: &types.Table{PCTbl: pcTbl}, L: c.bot()})
	c.tablePC[c.qualify(d.Name)] = pcTbl
	return env
}

// ---------------------------------------------------------------------------
// Statements (Figure 6)

// addEffect meets l into the current write-effect accumulator.
func (c *checker) addEffect(l lattice.Label) { c.effect = c.lat.Meet(c.effect, l) }

// checkBlock checks a statement block (T-Seq/T-Empty), threading Γ through
// declaration statements in a child scope.
func (c *checker) checkBlock(env *types.Env, pc lattice.Label, b *ast.BlockStmt) {
	scope := env.Child()
	for _, s := range b.Stmts {
		scope = c.checkStmt(scope, pc, s)
	}
}

// checkStmt checks one statement at security context pc and returns the
// (possibly extended) Γ′.
func (c *checker) checkStmt(env *types.Env, pc lattice.Label, s ast.Stmt) *types.Env {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(env, pc, s)
		return env

	case *ast.AssignStmt:
		c.checkAssign(env, pc, s)
		return env

	case *ast.IfStmt:
		// T-Cond: guard ⟨bool, χ1⟩; both branches checked at
		// χ2 = χ1 ⊔ pc (the least valid branch context).
		gt, _ := c.checkExpr(env, pc, s.Cond)
		branchPC := pc
		if !gt.IsZero() {
			if _, ok := gt.T.(types.Bool); !ok {
				c.diags.RuleErrorf(s.Cond.Pos(), "T-Cond",
					"if condition must be bool, got %s", gt.T)
			}
			branchPC = c.lat.Join(pc, gt.L)
		}
		c.checkBlock(env, branchPC, s.Then)
		if s.Else != nil {
			c.checkStmt(env.Child(), branchPC, s.Else)
		}
		return env

	case *ast.ExitStmt:
		// T-Exit: well-typed only at pc = ⊥. Exiting is observable
		// (the packet visibly stops being processed).
		if pc != c.bot() {
			c.diags.RuleErrorf(s.P, "T-Exit",
				"exit in a security context %s above ⊥ would leak the branch taken", pc)
		}
		c.addEffect(c.bot())
		return env

	case *ast.ReturnStmt:
		// T-Return: well-typed only at pc = ⊥; the returned expression
		// must flow into the declared return label.
		if pc != c.bot() {
			c.diags.RuleErrorf(s.P, "T-Return",
				"return in a security context %s above ⊥ would leak the branch taken", pc)
		}
		c.addEffect(c.bot())
		ret, ok := env.Lookup("return")
		if !ok {
			c.diags.RuleErrorf(s.P, "T-Return", "return outside of a function body")
			return env
		}
		if s.X == nil {
			if _, isUnit := ret.T.(types.Unit); !isUnit {
				c.diags.RuleErrorf(s.P, "T-Return", "missing return value of type %s", ret)
			}
			return env
		}
		xt, _ := c.checkExpr(env, pc, s.X)
		if !xt.IsZero() {
			xt = c.coerceLit(s.X, xt, ret)
			if !types.Equal(xt.T, ret.T) {
				c.diags.RuleErrorf(s.P, "T-Return", "cannot return %s as %s", xt, ret)
			} else if !c.lat.Leq(xt.L, ret.L) {
				c.diags.RuleErrorf(s.P, "T-Return",
					"returned value at label %s does not flow to return label %s (%s ⋢ %s)",
					xt.L, ret.L, xt.L, ret.L)
			}
		}
		return env

	case *ast.ExprStmt:
		// T-FnCallStmt: the expression must be a well-typed call.
		call, ok := s.X.(*ast.Call)
		if !ok {
			c.diags.Errorf(s.P, "expression statement must be a call")
			return env
		}
		c.checkCall(env, pc, call)
		return env

	case *ast.ApplyStmt:
		// T-TblCall: exp : ⟨table(pc_tbl), ⊥⟩ and pc ⊑ pc_tbl.
		tt, _ := c.checkExpr(env, pc, s.Table)
		if tt.IsZero() {
			return env
		}
		tbl, ok := tt.T.(*types.Table)
		if !ok {
			c.diags.RuleErrorf(s.P, "T-TblCall", "%s is not a table (type %s)", s.Table, tt)
			return env
		}
		if !c.lat.Leq(pc, tbl.PCTbl) {
			c.diags.RuleErrorf(s.P, "T-TblCall",
				"table %s (pc_tbl = %s) applied in a higher security context %s: the branch taken would leak into the table's writes (%s ⋢ %s)",
				s.Table, tbl.PCTbl, pc, pc, tbl.PCTbl)
		}
		c.addEffect(tbl.PCTbl)
		return env

	case *ast.DeclStmt:
		return c.checkVarDecl(env, pc, s.Decl)

	default:
		c.diags.Errorf(s.Pos(), "unsupported statement")
		return env
	}
}

// checkAssign implements T-Assign:
//
//	Γ, Δ ⊢pc exp1 : ⟨τ, χ1⟩ goes inout   Γ, Δ ⊢pc exp2 : ⟨τ, χ2⟩
//	χ2 ⊑ χ1   pc ⊑ χ1
func (c *checker) checkAssign(env *types.Env, pc lattice.Label, s *ast.AssignStmt) {
	if !ast.IsLValue(s.LHS) {
		c.diags.RuleErrorf(s.P, "T-Assign", "%s is not assignable", s.LHS)
		return
	}
	lt, dir := c.checkExpr(env, pc, s.LHS)
	if lt.IsZero() {
		// Still check the RHS for secondary errors.
		c.checkExpr(env, pc, s.RHS)
		return
	}
	if dir != types.InOut {
		c.diags.RuleErrorf(s.P, "T-Assign", "%s is read-only and cannot be assigned", s.LHS)
		return
	}
	rt, _ := c.checkExpr(env, pc, s.RHS)
	if rt.IsZero() {
		return
	}
	rt = c.coerceLit(s.RHS, rt, lt)
	if !types.Equal(rt.T, lt.T) {
		c.diags.RuleErrorf(s.P, "T-Assign",
			"cannot assign %s to %s (types %s and %s differ)", s.RHS, s.LHS, rt.T, lt.T)
		return
	}
	c.addEffect(lt.L)
	if !c.lat.Leq(rt.L, lt.L) {
		c.diags.RuleErrorf(s.P, "T-Assign",
			"explicit flow: %s (label %s) assigned to %s (label %s): %s ⋢ %s",
			s.RHS, rt.L, s.LHS, lt.L, rt.L, lt.L)
		return
	}
	if !c.lat.Leq(pc, lt.L) {
		c.diags.RuleErrorf(s.P, "T-Assign",
			"implicit flow: assignment to %s (label %s) under security context %s: %s ⋢ %s",
			s.LHS, lt.L, pc, pc, lt.L)
	}
}

// ---------------------------------------------------------------------------
// Expressions (Figure 5)

// zeroSec is returned for ill-typed subexpressions; callers skip dependent
// checks when they see it, avoiding error cascades.
var zeroSec types.SecType

// checkExpr implements the expression judgement, returning the security
// type and the direction the expression "goes".
func (c *checker) checkExpr(env *types.Env, pc lattice.Label, e ast.Expr) (types.SecType, types.Dir) {
	switch e := e.(type) {
	case *ast.BoolLit: // T-Bool
		return types.SecType{T: types.Bool{}, L: c.bot()}, types.In

	case *ast.IntLit: // T-Int
		if e.HasWidth {
			return types.SecType{T: types.Bit{W: e.Width}, L: c.bot()}, types.In
		}
		return types.SecType{T: types.Int{}, L: c.bot()}, types.In

	case *ast.Ident: // T-Var
		t, ok := env.Lookup(e.Name)
		if !ok {
			c.diags.RuleErrorf(e.P, "T-Var", "undeclared variable %q", e.Name)
			return zeroSec, types.In
		}
		return t, types.InOut

	case *ast.Unary:
		return c.checkUnary(env, pc, e)

	case *ast.Binary:
		return c.checkBinary(env, pc, e)

	case *ast.RecordLit: // T-Rec
		fields := make([]types.Field, 0, len(e.Fields))
		seen := map[string]bool{}
		for _, f := range e.Fields {
			if seen[f.Name] {
				c.diags.RuleErrorf(f.P, "T-Rec", "duplicate field %q in record literal", f.Name)
				continue
			}
			seen[f.Name] = true
			ft, _ := c.checkExpr(env, pc, f.Value)
			if ft.IsZero() {
				return zeroSec, types.In
			}
			fields = append(fields, types.Field{Name: f.Name, Type: ft})
		}
		return types.SecType{T: &types.Record{Fields: fields}, L: c.bot()}, types.In

	case *ast.Member: // T-MemRec / T-MemHdr
		xt, dir := c.checkExpr(env, pc, e.X)
		if xt.IsZero() {
			return zeroSec, types.In
		}
		f, ok := types.FieldOf(xt.T, e.Field)
		if !ok {
			c.diags.RuleErrorf(e.P, "T-MemRec", "%s (type %s) has no field %q", e.X, xt.T, e.Field)
			return zeroSec, types.In
		}
		return f.Type, dir

	case *ast.Index: // T-Index
		xt, dir := c.checkExpr(env, pc, e.X)
		if xt.IsZero() {
			return zeroSec, types.In
		}
		st, ok := xt.T.(*types.Stack)
		if !ok {
			c.diags.RuleErrorf(e.P, "T-Index", "%s (type %s) is not indexable", e.X, xt.T)
			return zeroSec, types.In
		}
		it, _ := c.checkExpr(env, pc, e.I)
		if !it.IsZero() {
			switch it.T.(type) {
			case types.Bit, types.Int:
			default:
				c.diags.RuleErrorf(e.I.Pos(), "T-Index", "index must be numeric, got %s", it.T)
			}
			// χ2 ⊑ χ1: a secret index into a public-labelled stack would
			// leak which element was read/written.
			if !c.lat.Leq(it.L, st.Elem.L) {
				c.diags.RuleErrorf(e.I.Pos(), "T-Index",
					"index at label %s selects into stack with element label %s (%s ⋢ %s)",
					it.L, st.Elem.L, it.L, st.Elem.L)
			}
		}
		return st.Elem, dir

	case *ast.Call: // T-Call
		return c.checkCall(env, pc, e)

	default:
		c.diags.Errorf(e.Pos(), "unsupported expression")
		return zeroSec, types.In
	}
}

// checkUnary types !, -, ~. The result keeps the operand's label and
// goes in.
func (c *checker) checkUnary(env *types.Env, pc lattice.Label, e *ast.Unary) (types.SecType, types.Dir) {
	xt, _ := c.checkExpr(env, pc, e.X)
	if xt.IsZero() {
		return zeroSec, types.In
	}
	switch e.Op {
	case token.NOT:
		if _, ok := xt.T.(types.Bool); !ok {
			c.diags.RuleErrorf(e.P, "T-BinOp", "operator ! needs bool, got %s", xt.T)
			return zeroSec, types.In
		}
	case token.MINUS:
		switch xt.T.(type) {
		case types.Int, types.Bit:
		default:
			c.diags.RuleErrorf(e.P, "T-BinOp", "operator - needs a numeric type, got %s", xt.T)
			return zeroSec, types.In
		}
	case token.BITNOT:
		if _, ok := xt.T.(types.Bit); !ok {
			c.diags.RuleErrorf(e.P, "T-BinOp", "operator ~ needs bit<n>, got %s", xt.T)
			return zeroSec, types.In
		}
	}
	return types.SecType{T: xt.T, L: xt.L}, types.In
}

// checkBinary implements T-BinOp with the typing oracle T(Δ; ⊕; ρ1; ρ2).
// The result's label is χ1 ⊔ χ2 (the least χ′ with χ1 ⊑ χ′ and χ2 ⊑ χ′).
func (c *checker) checkBinary(env *types.Env, pc lattice.Label, e *ast.Binary) (types.SecType, types.Dir) {
	xt, _ := c.checkExpr(env, pc, e.X)
	yt, _ := c.checkExpr(env, pc, e.Y)
	if xt.IsZero() || yt.IsZero() {
		return zeroSec, types.In
	}
	rt, ok := binOpType(e.Op, xt.T, yt.T)
	if !ok {
		c.diags.RuleErrorf(e.P, "T-BinOp",
			"operator %s not defined on %s and %s", e.Op, xt.T, yt.T)
		return zeroSec, types.In
	}
	return types.SecType{T: rt, L: c.lat.Join(xt.L, yt.L)}, types.In
}

// binOpType is the typing oracle T for binary operators. Arbitrary-width
// int literals coerce to the other operand's bit type.
func binOpType(op token.Kind, a, b types.Type) (types.Type, bool) {
	// Coerce int with bit<n>.
	if _, ok := a.(types.Int); ok {
		if bb, ok := b.(types.Bit); ok {
			a = bb
		}
	}
	if _, ok := b.(types.Int); ok {
		if ab, ok := a.(types.Bit); ok {
			b = ab
		}
	}
	switch op {
	case token.AND, token.OR:
		_, ok1 := a.(types.Bool)
		_, ok2 := b.(types.Bool)
		if ok1 && ok2 {
			return types.Bool{}, true
		}
		return nil, false
	case token.EQ, token.NEQ:
		if types.Equal(types.Strip(a), types.Strip(b)) && types.IsScalar(a) {
			return types.Bool{}, true
		}
		return nil, false
	case token.LT, token.GT, token.LEQ, token.GEQ:
		if numericPair(a, b) {
			return types.Bool{}, true
		}
		return nil, false
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT:
		if numericPair(a, b) {
			return a, true
		}
		return nil, false
	case token.AMP, token.PIPE, token.CARET:
		ab, ok1 := a.(types.Bit)
		bb, ok2 := b.(types.Bit)
		if ok1 && ok2 && ab.W == bb.W {
			return ab, true
		}
		return nil, false
	case token.SHL, token.SHR:
		if ab, ok := a.(types.Bit); ok {
			switch b.(type) {
			case types.Bit, types.Int:
				return ab, true
			}
		}
		if _, ok := a.(types.Int); ok {
			if _, ok := b.(types.Int); ok {
				return types.Int{}, true
			}
		}
		return nil, false
	default:
		return nil, false
	}
}

func numericPair(a, b types.Type) bool {
	switch a := a.(type) {
	case types.Int:
		switch b.(type) {
		case types.Int, types.Bit:
			return true
		}
	case types.Bit:
		switch b := b.(type) {
		case types.Int:
			return true
		case types.Bit:
			return a.W == b.W
		}
	}
	return false
}

// coerceLit adapts the type of an int literal (or int-typed expression)
// to the expected bit type, mirroring P4's implicit cast from arbitrary-
// precision int constants.
func (c *checker) coerceLit(e ast.Expr, got, want types.SecType) types.SecType {
	if _, isInt := got.T.(types.Int); !isInt {
		return got
	}
	if wb, isBit := want.T.(types.Bit); isBit {
		_ = e
		return types.SecType{T: wb, L: got.L}
	}
	return got
}

// checkCall implements T-Call:
//
//	Γ, Δ ⊢pc exp1 : ⟨d ⟨τi, χi⟩ --pc_fn--> ⟨τret, χret⟩, ⊥⟩
//	Γ, Δ ⊢pc exp2 : ⟨τi, χi⟩ goes d          pc ⊑ pc_fn
//
// in arguments may raise their label to the parameter's (T-SubType-In);
// inout arguments must be l-values going inout with exactly the parameter's
// label — subtyping an inout argument is unsound (Section 4.2's
// write_to_high example).
func (c *checker) checkCall(env *types.Env, pc lattice.Label, e *ast.Call) (types.SecType, types.Dir) {
	ft0, _ := c.checkExpr(env, pc, e.Fun)
	if ft0.IsZero() {
		for _, a := range e.Args {
			c.checkExpr(env, pc, a)
		}
		return zeroSec, types.In
	}
	ft, ok := ft0.T.(*types.Func)
	if !ok {
		c.diags.RuleErrorf(e.P, "T-Call", "%s is not callable (type %s)", e.Fun, ft0)
		return zeroSec, types.In
	}
	if len(e.Args) != len(ft.Params) {
		c.diags.RuleErrorf(e.P, "T-Call",
			"%s takes %d arguments, got %d", e.Fun, len(ft.Params), len(e.Args))
		return ft.Ret, types.In
	}
	for i, arg := range e.Args {
		c.checkArg(env, pc, fmt.Sprint(e.Fun), ft.Params[i], arg)
	}
	if !c.lat.Leq(pc, ft.PCFn) {
		c.diags.RuleErrorf(e.P, "T-Call",
			"%s writes at label %s (pc_fn) but is called in a higher security context %s: calling it would leak the branch taken (%s ⋢ %s)",
			e.Fun, ft.PCFn, pc, pc, ft.PCFn)
	}
	c.addEffect(ft.PCFn)
	return ft.Ret, types.In
}

// checkArg checks one argument against one parameter.
func (c *checker) checkArg(env *types.Env, pc lattice.Label, fn string, p types.Param, arg ast.Expr) {
	at, dir := c.checkExpr(env, pc, arg)
	if at.IsZero() {
		return
	}
	at = c.coerceLit(arg, at, p.Type)
	switch p.Dir {
	case types.In:
		if !types.Equal(at.T, p.Type.T) {
			c.diags.RuleErrorf(arg.Pos(), "T-Call",
				"argument %s to %s: type %s does not match parameter %s %s", arg, fn, at.T, p.Name, p.Type.T)
			return
		}
		// T-SubType-In: a read-only use may raise its label.
		if !c.lat.Leq(at.L, p.Type.L) {
			c.diags.RuleErrorf(arg.Pos(), "T-Call",
				"argument %s at label %s does not flow to in-parameter %s at label %s (%s ⋢ %s)",
				arg, at.L, p.Name, p.Type.L, at.L, p.Type.L)
		}
	case types.Out, types.InOut:
		if !ast.IsLValue(arg) || dir != types.InOut {
			c.diags.RuleErrorf(arg.Pos(), "T-Call",
				"argument %s to %s parameter %s must be an assignable l-value", arg, p.Dir, p.Name)
			return
		}
		if !types.Equal(at.T, p.Type.T) {
			c.diags.RuleErrorf(arg.Pos(), "T-Call",
				"argument %s to %s: type %s does not match parameter %s %s", arg, fn, at.T, p.Name, p.Type.T)
			return
		}
		// No subtyping for inout: labels must match exactly
		// (T-SubType-In applies only to expressions going in).
		if at.L != p.Type.L {
			c.diags.RuleErrorf(arg.Pos(), "T-Call",
				"%s argument %s has label %s but parameter %s has label %s: inout arguments cannot change label",
				p.Dir, arg, at.L, p.Name, p.Type.L)
		}
		// Writing back through the parameter is a write effect at the
		// parameter's label.
		c.addEffect(p.Type.L)
	}
}
