package core_test

import (
	"strings"
	"testing"

	"repro/internal/basecheck"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/progs"
)

// checkSrc parses and IFC-checks src under lat (default two-point).
func checkSrc(t *testing.T, lat lattice.Lattice, src string) *core.Result {
	t.Helper()
	if lat == nil {
		lat = lattice.TwoPoint()
	}
	prog, err := parser.Parse("test.p4", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return core.Check(prog, lat)
}

// mustReject asserts the program is rejected and that some diagnostic cites
// the given rule.
func mustReject(t *testing.T, lat lattice.Lattice, src, rule string) {
	t.Helper()
	res := checkSrc(t, lat, src)
	if res.OK {
		t.Fatalf("program accepted, want rejection by %s", rule)
	}
	if rule == "" {
		return
	}
	for _, d := range res.Diags {
		if d.Rule == rule {
			return
		}
	}
	t.Fatalf("no diagnostic cites %s; got:\n%v", rule, res.Err())
}

func mustAccept(t *testing.T, lat lattice.Lattice, src string) *core.Result {
	t.Helper()
	res := checkSrc(t, lat, src)
	if !res.OK {
		t.Fatalf("program rejected:\n%v", res.Err())
	}
	return res
}

// wrap builds a minimal program around a control body.
func wrap(body string) string {
	return `
header h_t {
    <bit<8>, low> lo;
    <bit<8>, high> hi;
    <bool, low> blo;
    <bool, high> bhi;
}
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
` + body + `
}
`
}

// ---------------------------------------------------------------------------
// Section 5 case-study matrix: buggy variants rejected, fixed accepted,
// unannotated accepted by both the base checker and (trivially, all-low)
// the IFC checker.

func TestCaseStudyMatrix(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			lat := p.Lattice()

			buggy := parser.MustParse(p.FileName(progs.Buggy), p.Source(progs.Buggy))
			if res := core.Check(buggy, lat); res.OK {
				t.Errorf("%s buggy variant accepted by P4BID, want rejection", p.Name)
			}

			fixed := parser.MustParse(p.FileName(progs.Fixed), p.Source(progs.Fixed))
			if res := core.Check(fixed, lat); !res.OK {
				t.Errorf("%s fixed variant rejected by P4BID:\n%v", p.Name, res.Err())
			}

			// The buggy variant is a type-correct P4 program: the base
			// checker (p4c stand-in) accepts it — that is the paper's
			// point.
			if res := basecheck.Check(buggy); !res.OK {
				t.Errorf("%s buggy variant rejected by base checker:\n%v", p.Name, res.Err())
			}

			un := parser.MustParse(p.FileName(progs.Unannotated), p.Source(progs.Unannotated))
			if res := basecheck.Check(un); !res.OK {
				t.Errorf("%s unannotated variant rejected by base checker:\n%v", p.Name, res.Err())
			}
			// With no annotations everything is ⊥, so the IFC checker
			// accepts too.
			if res := core.Check(un, lat); !res.OK {
				t.Errorf("%s unannotated variant rejected by P4BID:\n%v", p.Name, res.Err())
			}
		})
	}
}

func TestCaseStudyRuleCited(t *testing.T) {
	wantRule := map[string]string{
		"Topology": "T-Assign",  // explicit flow low <- high
		"D2R":      "T-Assign",  // implicit flow under high guard
		"Cache":    "T-TblDecl", // high key, low-writing actions
		"App":      "T-TblDecl", // untrusted key, trusted writes
		"Lattice":  "T-Assign",  // Alice writes Bob's field
		"NetChain": "T-Assign",  // implicit flow under role guard
		"Stateful": "T-Index",   // secret index into low register array
	}
	for _, p := range progs.All() {
		rule := wantRule[p.Name]
		prog := parser.MustParse(p.FileName(progs.Buggy), p.Source(progs.Buggy))
		res := core.Check(prog, p.Lattice())
		found := false
		for _, d := range res.Diags {
			if d.Rule == rule {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no diagnostic cites %s; diagnostics:\n%v", p.Name, rule, res.Err())
		}
	}
}

// ---------------------------------------------------------------------------
// Targeted rule tests (Figures 5-7)

func TestAssignExplicitFlow(t *testing.T) {
	mustReject(t, nil, wrap(`apply { hdr.h.lo = hdr.h.hi; }`), "T-Assign")
	mustAccept(t, nil, wrap(`apply { hdr.h.hi = hdr.h.lo; }`)) // up is fine
	mustAccept(t, nil, wrap(`apply { hdr.h.lo = hdr.h.lo; }`))
	mustAccept(t, nil, wrap(`apply { hdr.h.hi = hdr.h.hi; }`))
}

func TestAssignImplicitFlow(t *testing.T) {
	mustReject(t, nil, wrap(`apply { if (hdr.h.bhi) { hdr.h.lo = 1; } }`), "T-Assign")
	mustAccept(t, nil, wrap(`apply { if (hdr.h.bhi) { hdr.h.hi = 1; } }`))
	mustAccept(t, nil, wrap(`apply { if (hdr.h.blo) { hdr.h.lo = 1; } }`))
	// Nested: low guard outside, high inside.
	mustReject(t, nil, wrap(`apply { if (hdr.h.blo) { if (hdr.h.bhi) { hdr.h.lo = 1; } } }`), "T-Assign")
	// Else branch leaks too.
	mustReject(t, nil, wrap(`apply { if (hdr.h.bhi) { hdr.h.hi = 1; } else { hdr.h.lo = 1; } }`), "T-Assign")
}

func TestGuardJoin(t *testing.T) {
	// Guard joining low and high data is high.
	mustReject(t, nil, wrap(`apply { if (hdr.h.hi == hdr.h.lo) { hdr.h.lo = 1; } }`), "T-Assign")
}

func TestBinOpLabelJoin(t *testing.T) {
	mustReject(t, nil, wrap(`apply { hdr.h.lo = hdr.h.lo + hdr.h.hi; }`), "T-Assign")
	mustAccept(t, nil, wrap(`apply { hdr.h.hi = hdr.h.lo + hdr.h.hi; }`))
}

func TestExitInHighContext(t *testing.T) {
	mustReject(t, nil, wrap(`apply { if (hdr.h.bhi) { exit; } }`), "T-Exit")
	mustAccept(t, nil, wrap(`apply { if (hdr.h.blo) { exit; } }`))
	mustAccept(t, nil, wrap(`apply { exit; }`))
}

func TestReturnInHighContext(t *testing.T) {
	mustReject(t, nil, wrap(`
    function <bit<8>, low> f(in <bool, high> b) {
        if (b) { return 1; }
        return 0;
    }
    apply { hdr.h.lo = f(hdr.h.bhi); }`), "T-Return")
	mustAccept(t, nil, wrap(`
    function <bit<8>, low> f(in <bool, low> b) {
        if (b) { return 1; }
        return 0;
    }
    apply { hdr.h.lo = f(hdr.h.blo); }`))
}

func TestReturnLabelFlow(t *testing.T) {
	// Returning a high value from a low-returning function is rejected.
	mustReject(t, nil, wrap(`
    function <bit<8>, low> f(in <bit<8>, high> x) {
        return x;
    }
    apply { hdr.h.lo = f(hdr.h.hi); }`), "T-Return")
	// High return type accepts low values by subtyping.
	mustAccept(t, nil, wrap(`
    function <bit<8>, high> f(in <bit<8>, low> x) {
        return x;
    }
    apply { hdr.h.hi = f(hdr.h.lo); }`))
}

func TestFnCallPCConstraint(t *testing.T) {
	// A function that writes low cannot be called under a high guard
	// (T-Call: pc ⊑ pc_fn).
	mustReject(t, nil, wrap(`
    action set_lo() { hdr.h.lo = 1; }
    apply { if (hdr.h.bhi) { set_lo(); } }`), "T-Call")
	mustAccept(t, nil, wrap(`
    action set_hi() { hdr.h.hi = 1; }
    apply { if (hdr.h.bhi) { set_hi(); } }`))
}

func TestInferredPCFn(t *testing.T) {
	res := mustAccept(t, nil, wrap(`
    action writes_low() { hdr.h.lo = 1; }
    action writes_high() { hdr.h.hi = 1; }
    action writes_both() { hdr.h.lo = 1; hdr.h.hi = 2; }
    action writes_nothing() { }
    apply { writes_low(); }`))
	want := map[string]string{
		"Main.writes_low":     "low",
		"Main.writes_high":    "high",
		"Main.writes_both":    "low",
		"Main.writes_nothing": "high", // ⊤: callable anywhere
	}
	for name, lbl := range want {
		got, ok := res.FuncPC[name]
		if !ok {
			t.Fatalf("no inferred pc_fn for %s", name)
		}
		if got.Name() != lbl {
			t.Errorf("pc_fn(%s) = %s, want %s", name, got, lbl)
		}
	}
}

func TestSubtypeInArguments(t *testing.T) {
	// A low argument can be passed to a high in-parameter (T-SubType-In).
	mustAccept(t, nil, wrap(`
    action f(in <bit<8>, high> x) { hdr.h.hi = x; }
    apply { f(hdr.h.lo); }`))
	// But a high argument cannot be passed to a low in-parameter.
	mustReject(t, nil, wrap(`
    action f(in <bit<8>, low> x) { hdr.h.hi = x; }
    apply { f(hdr.h.hi); }`), "T-Call")
}

func TestNoSubtypeForInout(t *testing.T) {
	// Section 4.2's write_to_high example: passing a low variable to an
	// inout high parameter must be rejected.
	mustReject(t, nil, wrap(`
    action write_to_high(inout <bool, high> b) { b = true; }
    apply { write_to_high(hdr.h.blo); }`), "T-Call")
	mustAccept(t, nil, wrap(`
    action write_to_high(inout <bool, high> b) { b = true; }
    apply { write_to_high(hdr.h.bhi); }`))
	// And the dual: high into a low inout parameter is also rejected.
	mustReject(t, nil, wrap(`
    action f(inout <bool, low> b) { b = true; }
    apply { f(hdr.h.bhi); }`), "T-Call")
}

func TestInoutArgMustBeLValue(t *testing.T) {
	mustReject(t, nil, wrap(`
    action f(inout <bit<8>, low> x) { x = 1; }
    apply { f(hdr.h.lo + 1); }`), "T-Call")
}

func TestTableKeyLeak(t *testing.T) {
	// High key with low-writing action: rejected at declaration.
	mustReject(t, nil, wrap(`
    action set_lo() { hdr.h.lo = 1; }
    table t {
        key = { hdr.h.hi: exact; }
        actions = { set_lo; }
    }
    apply { t.apply(); }`), "T-TblDecl")
	// High key with high-writing action: fine.
	mustAccept(t, nil, wrap(`
    action set_hi() { hdr.h.hi = 1; }
    table t {
        key = { hdr.h.hi: exact; }
        actions = { set_hi; }
    }
    apply { t.apply(); }`))
	// Join of keys matters: one low and one high key still leaks.
	mustReject(t, nil, wrap(`
    action set_lo() { hdr.h.lo = 1; }
    table t {
        key = { hdr.h.lo: exact; hdr.h.hi: ternary; }
        actions = { set_lo; }
    }
    apply { t.apply(); }`), "T-TblDecl")
}

func TestTableCallPCConstraint(t *testing.T) {
	// Applying a low-writing table under a high guard leaks (T-TblCall).
	mustReject(t, nil, wrap(`
    action set_lo() { hdr.h.lo = 1; }
    table t {
        key = { hdr.h.lo: exact; }
        actions = { set_lo; }
    }
    apply { if (hdr.h.bhi) { t.apply(); } }`), "T-TblCall")
	mustAccept(t, nil, wrap(`
    action set_hi() { hdr.h.hi = 1; }
    table t {
        key = { hdr.h.lo: exact; }
        actions = { set_hi; }
    }
    apply { if (hdr.h.bhi) { t.apply(); } }`))
}

func TestTableBoundArguments(t *testing.T) {
	// Bound argument flows into the action parameter: high arg into a low
	// in-parameter rejected.
	mustReject(t, nil, wrap(`
    action f(in <bit<8>, low> x) { hdr.h.lo = x; }
    table t {
        key = { hdr.h.lo: exact; }
        actions = { f(hdr.h.hi); }
    }
    apply { t.apply(); }`), "T-Call")
	// Trailing non-control-plane parameter unbound: rejected.
	mustReject(t, nil, wrap(`
    action f(in <bit<8>, low> x) { hdr.h.lo = x; }
    table t {
        key = { hdr.h.lo: exact; }
        actions = { f; }
    }
    apply { t.apply(); }`), "T-TblDecl")
	// Control-plane (directionless) parameters may stay unbound.
	mustAccept(t, nil, wrap(`
    action f(<bit<8>, low> x) { hdr.h.lo = x; }
    table t {
        key = { hdr.h.lo: exact; }
        actions = { f; }
    }
    apply { t.apply(); }`))
}

func TestVarInitFlow(t *testing.T) {
	mustReject(t, nil, wrap(`apply { <bit<8>, low> x = hdr.h.hi; }`), "T-VarInit")
	mustAccept(t, nil, wrap(`apply { <bit<8>, high> x = hdr.h.lo; hdr.h.hi = x; }`))
}

func TestDeclaredPCControl(t *testing.T) {
	lat := lattice.Diamond()
	src := `
header h_t {
    <bit<8>, A> a;
    <bit<8>, B> b;
    <bit<8>, top> t;
    <bit<8>, bot> lo;
}
struct headers { h_t h; }
@pc(A)
control Alice(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply { %s }
}
`
	reject := []string{
		`hdr.h.b = 1;`,       // pc=A cannot write B
		`hdr.h.lo = 1;`,      // pc=A cannot write ⊥
		`hdr.h.a = hdr.h.t;`, // top does not flow to A
	}
	accept := []string{
		`hdr.h.a = 1;`,
		`hdr.h.t = hdr.h.a;`, // A flows up to top
		`hdr.h.a = hdr.h.lo;`,
		`hdr.h.t = hdr.h.t + 1;`,
	}
	for _, body := range reject {
		res := checkSrc(t, lat, sprintf(src, body))
		if res.OK {
			t.Errorf("accepted at pc=A: %s", body)
		}
	}
	for _, body := range accept {
		res := checkSrc(t, lat, sprintf(src, body))
		if !res.OK {
			t.Errorf("rejected at pc=A: %s\n%v", body, res.Err())
		}
	}
}

func sprintf(format string, args ...any) string {
	return strings.Replace(format, "%s", args[0].(string), 1)
}

func TestIsolationDiamond(t *testing.T) {
	p, _ := progs.ByName("Lattice")
	lat := p.Lattice()

	buggy := parser.MustParse("lattice_buggy.p4", p.Source(progs.Buggy))
	res := core.Check(buggy, lat)
	if res.OK {
		t.Fatal("buggy isolation program accepted")
	}
	// Both of the paper's Listing 6 errors must be caught: Alice writing
	// Bob's field (T-Assign) and Alice keying on the telemetry header.
	var sawAssign, sawTbl bool
	for _, d := range res.Diags {
		switch d.Rule {
		case "T-Assign":
			sawAssign = true
		case "T-TblDecl", "T-TblCall":
			sawTbl = true
		}
	}
	if !sawAssign {
		t.Error("Alice writing Bob's field not flagged (T-Assign)")
	}
	if !sawTbl {
		t.Error("Alice keying on telemetry not flagged (T-TblDecl/T-TblCall)")
	}

	fixed := parser.MustParse("lattice_fixed.p4", p.Source(progs.Fixed))
	fres := core.Check(fixed, lat)
	if !fres.OK {
		t.Fatalf("fixed isolation program rejected:\n%v", fres.Err())
	}
	if got := fres.ControlPC["Alice_Ingress"].Name(); got != "A" {
		t.Errorf("Alice checked at pc=%s, want A", got)
	}
	if got := fres.ControlPC["Bob_Ingress"].Name(); got != "B" {
		t.Errorf("Bob checked at pc=%s, want B", got)
	}
}

func TestIndexLabel(t *testing.T) {
	src := `
header h_t {
    <bit<8>, low> arr[4];
    <bit<8>, high> harr[4];
    <bit<32>, high> hidx;
    <bit<32>, low> lidx;
}
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply { %s }
}
`
	// Secret index into a low-element stack leaks which element is read.
	res := checkSrc(t, nil, sprintf(src, `hdr.h.arr[hdr.h.hidx] = 1;`))
	if res.OK {
		t.Error("secret index into low stack accepted")
	}
	res = checkSrc(t, nil, sprintf(src, `hdr.h.harr[hdr.h.hidx] = 1;`))
	if !res.OK {
		t.Errorf("secret index into high stack rejected:\n%v", res.Err())
	}
	res = checkSrc(t, nil, sprintf(src, `hdr.h.arr[hdr.h.lidx] = 1;`))
	if !res.OK {
		t.Errorf("low index into low stack rejected:\n%v", res.Err())
	}
}

func TestUndeclaredAndTypeErrors(t *testing.T) {
	mustReject(t, nil, wrap(`apply { nosuch = 1; }`), "T-Var")
	mustReject(t, nil, wrap(`apply { hdr.h.nofield = 1; }`), "T-MemRec")
	mustReject(t, nil, wrap(`apply { hdr.h.lo = hdr.h.blo; }`), "T-Assign")
	mustReject(t, nil, wrap(`apply { hdr.h.blo = hdr.h.lo + hdr.h.blo; }`), "T-BinOp")
}

func TestMarkToDropBuiltin(t *testing.T) {
	mustAccept(t, nil, wrap(`
    action drop() { mark_to_drop(standard_metadata); }
    apply { drop(); }`))
	// Dropping is a low write: cannot happen under a high guard.
	mustReject(t, nil, wrap(`
    action drop() { mark_to_drop(standard_metadata); }
    apply { if (hdr.h.bhi) { drop(); } }`), "T-Call")
}

func TestUnknownLabel(t *testing.T) {
	res := checkSrc(t, nil, `
header h_t { <bit<8>, mystery> x; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply { }
}
`)
	if res.OK {
		t.Error("unknown label accepted")
	}
}

func TestStripAnnotations(t *testing.T) {
	in := `<bit<32>, high> x = 1; <bool, low> b; @pc(A)
control C() {}`
	out := progs.StripAnnotations(in)
	if strings.Contains(out, "high") || strings.Contains(out, "@pc") {
		t.Errorf("annotations survive stripping: %q", out)
	}
	if !strings.Contains(out, "bit<32> x") || !strings.Contains(out, "bool b") {
		t.Errorf("base types damaged by stripping: %q", out)
	}
}
