package core_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/parser"
)

// TestPCMonotonicity checks the monotonicity property the checker's
// write-effect inference relies on (see checkFuncDecl): if a control's
// apply block typechecks in a raised security context @pc(high), then it
// also typechecks at the default ⊥ context — lowering pc only relaxes the
// T-Assign / T-Call / T-TblCall side conditions.
func TestPCMonotonicity(t *testing.T) {
	lat := lattice.TwoPoint()
	rng := rand.New(rand.NewSource(17))
	cfg := gen.DefaultConfig()
	cfg.WithActions = false // direct action calls interact with pc via pc_fn anyway
	checkedHigh := 0
	for i := 0; i < 300; i++ {
		src := gen.Random(rng, cfg)
		highSrc := strings.Replace(src, "control Rand_Ingress", "@pc(high)\ncontrol Rand_Ingress", 1)
		highProg := parser.MustParse("high.p4", highSrc)
		if !core.Check(highProg, lat).OK {
			continue
		}
		checkedHigh++
		lowProg := parser.MustParse("low.p4", src)
		if res := core.Check(lowProg, lat); !res.OK {
			t.Fatalf("program %d accepted at pc=high but rejected at pc=⊥:\n%v\n%s",
				i, res.Err(), src)
		}
	}
	if checkedHigh == 0 {
		t.Error("no program typechecked at pc=high; property test vacuous")
	} else {
		t.Logf("%d/300 random programs typecheck at pc=high", checkedHigh)
	}
}

// TestInferredPCFnSufficient re-checks each case-study program after
// raising the whole control to its least-restrictive inferred effect:
// since every accepted function body was validated at ⊥ and pc_fn is the
// meet of its write effects, checking the body at pc_fn itself must
// succeed. We approximate by re-annotating controls whose inferred
// FuncPC values are all 'high' and asserting acceptance.
func TestInferredPCFnSufficient(t *testing.T) {
	lat := lattice.TwoPoint()
	src := `
header h_t { <bit<8>, high> hi; <bit<8>, low> lo; }
struct headers { h_t h; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action only_high() {
        hdr.h.hi = hdr.h.hi + 1;
        if (hdr.h.hi > 3) { hdr.h.hi = 0; }
    }
    apply { only_high(); }
}
`
	prog := parser.MustParse("t.p4", src)
	res := core.Check(prog, lat)
	if !res.OK {
		t.Fatal(res.Err())
	}
	pc := res.FuncPC["C.only_high"]
	if pc.Name() != "high" {
		t.Fatalf("pc_fn = %s, want high", pc)
	}
	// The same body hoisted into a control checked at pc = pc_fn must be
	// accepted: that is exactly the judgement T-FuncDecl requires.
	raised := strings.Replace(src, "control C", "@pc(high)\ncontrol C", 1)
	raised = strings.Replace(raised, "apply { only_high(); }", "apply { }", 1)
	rprog := parser.MustParse("raised.p4", raised)
	if rres := core.Check(rprog, lat); !rres.OK {
		t.Fatalf("body rejected at its inferred pc_fn:\n%v", rres.Err())
	}
}

// TestDiamondFlowsExhaustive enumerates every ordered pair of diamond
// labels and checks that a direct assignment between fields at those
// labels is accepted iff the source flows to the destination.
func TestDiamondFlowsExhaustive(t *testing.T) {
	lat := lattice.Diamond()
	names := []string{"bot", "A", "B", "top"}
	for _, from := range names {
		for _, to := range names {
			src := `
header h_t { <bit<8>, ` + from + `> src; <bit<8>, ` + to + `> dst; }
struct headers { h_t h; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply { hdr.h.dst = hdr.h.src; }
}
`
			prog := parser.MustParse("t.p4", src)
			res := core.Check(prog, lat)
			fl, _ := lat.Lookup(from)
			tl, _ := lat.Lookup(to)
			want := lat.Leq(fl, tl)
			if res.OK != want {
				t.Errorf("flow %s -> %s: accepted=%t, want %t", from, to, res.OK, want)
			}
		}
	}
}

// TestGuardFlowsExhaustive does the same for implicit flows: branching on
// a guard at one label and writing at another.
func TestGuardFlowsExhaustive(t *testing.T) {
	lat := lattice.Diamond()
	names := []string{"bot", "A", "B", "top"}
	for _, guard := range names {
		for _, target := range names {
			src := `
header h_t { <bit<8>, ` + guard + `> g; <bit<8>, ` + target + `> w; }
struct headers { h_t h; }
control C(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply { if (hdr.h.g > 1) { hdr.h.w = 1; } }
}
`
			prog := parser.MustParse("t.p4", src)
			res := core.Check(prog, lat)
			gl, _ := lat.Lookup(guard)
			tl, _ := lat.Lookup(target)
			want := lat.Leq(gl, tl)
			if res.OK != want {
				t.Errorf("guard %s writing %s: accepted=%t, want %t", guard, target, res.OK, want)
			}
		}
	}
}

// TestCheckerIsDeterministic runs the checker repeatedly on the same
// program and compares diagnostics — important because Γ uses maps
// internally.
func TestCheckerIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20; i++ {
		src := gen.Random(rng, gen.DefaultConfig())
		prog := parser.MustParse("t.p4", src)
		first := core.Check(prog, lattice.TwoPoint())
		for j := 0; j < 3; j++ {
			again := core.Check(prog, lattice.TwoPoint())
			if again.OK != first.OK || len(again.Diags) != len(first.Diags) {
				t.Fatalf("nondeterministic checking on program %d", i)
			}
			for k := range first.Diags {
				if first.Diags[k].Error() != again.Diags[k].Error() {
					t.Fatalf("diag %d changed: %s vs %s", k, first.Diags[k], again.Diags[k])
				}
			}
		}
	}
}
