package eval_test

import (
	"strings"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/progs"
)

// run parses src and runs its first control with the given inputs.
func run(t *testing.T, src string, cp *controlplane.ControlPlane, inputs map[string]eval.Value) (map[string]eval.Value, eval.Signal) {
	t.Helper()
	prog := parser.MustParse("test.p4", src)
	in, err := eval.New(prog, cp)
	if err != nil {
		t.Fatalf("eval.New: %v", err)
	}
	out, sig, err := in.RunControl("", inputs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out, sig
}

// field extracts a dotted path from an output value.
func field(t *testing.T, v eval.Value, path ...string) eval.Value {
	t.Helper()
	for _, f := range path {
		switch vv := v.(type) {
		case *eval.RecordVal:
			found := false
			for _, nf := range vv.Fields {
				if nf.Name == f {
					v, found = nf.Val, true
					break
				}
			}
			if !found {
				t.Fatalf("no field %q in %s", f, vv)
			}
		case *eval.HeaderVal:
			found := false
			for _, nf := range vv.Fields {
				if nf.Name == f {
					v, found = nf.Val, true
					break
				}
			}
			if !found {
				t.Fatalf("no field %q in %s", f, vv)
			}
		default:
			t.Fatalf("cannot project %q from %s", f, v)
		}
	}
	return v
}

const simpleSrc = `
header h_t {
    <bit<8>, low> a;
    <bit<8>, low> b;
    <bool, low> flag;
}
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        %s
    }
}
`

func simple(body string) string { return strings.Replace(simpleSrc, "%s", body, 1) }

func TestAssignAndArith(t *testing.T) {
	out, sig := run(t, simple(`
        hdr.h.a = 3;
        hdr.h.b = hdr.h.a + 4;
        hdr.h.a = hdr.h.b * 2;
    `), nil, nil)
	if sig.Kind != eval.SigCont {
		t.Fatalf("signal = %s, want cont", sig)
	}
	if got := field(t, out["hdr"], "h", "b"); !eval.ValueEqual(got, eval.NewBit(8, 7)) {
		t.Errorf("b = %s, want 7", got)
	}
	if got := field(t, out["hdr"], "h", "a"); !eval.ValueEqual(got, eval.NewBit(8, 14)) {
		t.Errorf("a = %s, want 14", got)
	}
}

func TestBitWrapAround(t *testing.T) {
	out, _ := run(t, simple(`
        hdr.h.a = 250;
        hdr.h.a = hdr.h.a + 10;
    `), nil, nil)
	if got := field(t, out["hdr"], "h", "a"); !eval.ValueEqual(got, eval.NewBit(8, 4)) {
		t.Errorf("a = %s, want 4 (mod 256)", got)
	}
}

func TestIfElse(t *testing.T) {
	out, _ := run(t, simple(`
        hdr.h.a = 5;
        if (hdr.h.a > 3) {
            hdr.h.b = 1;
        } else {
            hdr.h.b = 2;
        }
        if (hdr.h.a > 100) {
            hdr.h.flag = true;
        }
    `), nil, nil)
	if got := field(t, out["hdr"], "h", "b"); !eval.ValueEqual(got, eval.NewBit(8, 1)) {
		t.Errorf("b = %s, want 1", got)
	}
	if got := field(t, out["hdr"], "h", "flag"); !eval.ValueEqual(got, eval.BoolVal(false)) {
		t.Errorf("flag = %s, want false", got)
	}
}

func TestExitSignal(t *testing.T) {
	out, sig := run(t, simple(`
        hdr.h.a = 1;
        exit;
        hdr.h.a = 2;
    `), nil, nil)
	if sig.Kind != eval.SigExit {
		t.Fatalf("signal = %s, want exit", sig)
	}
	if got := field(t, out["hdr"], "h", "a"); !eval.ValueEqual(got, eval.NewBit(8, 1)) {
		t.Errorf("a = %s, want 1 (statement after exit must not run)", got)
	}
}

func TestFunctionCallCopyInOut(t *testing.T) {
	out, _ := run(t, `
header h_t { <bit<8>, low> a; <bit<8>, low> b; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    function <bit<8>, low> double(in <bit<8>, low> x) {
        return x + x;
    }
    action bump(inout <bit<8>, low> x, in <bit<8>, low> by) {
        x = x + by;
    }
    apply {
        hdr.h.a = double(21);
        bump(hdr.h.b, 5);
        bump(hdr.h.b, 1);
    }
}
`, nil, nil)
	if got := field(t, out["hdr"], "h", "a"); !eval.ValueEqual(got, eval.NewBit(8, 42)) {
		t.Errorf("a = %s, want 42", got)
	}
	if got := field(t, out["hdr"], "h", "b"); !eval.ValueEqual(got, eval.NewBit(8, 6)) {
		t.Errorf("b = %s, want 6", got)
	}
}

func TestInParamIsCopied(t *testing.T) {
	// Writing to an in-parameter inside the body must not affect the
	// caller (copy-in semantics). The IFC checker would reject writes to
	// in-params in full P4; our fragment binds them as ordinary variables,
	// so the write stays local to the copy.
	out, _ := run(t, `
header h_t { <bit<8>, low> a; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action f(in <bit<8>, low> x) {
        x = 99;
    }
    apply {
        hdr.h.a = 7;
        f(hdr.h.a);
    }
}
`, nil, nil)
	if got := field(t, out["hdr"], "h", "a"); !eval.ValueEqual(got, eval.NewBit(8, 7)) {
		t.Errorf("a = %s, want 7 (in-param must be a copy)", got)
	}
}

func TestStacks(t *testing.T) {
	out, _ := run(t, `
header h_t { <bit<8>, low> arr[4]; <bit<8>, low> x; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.h.arr[0] = 10;
        hdr.h.arr[1] = 20;
        hdr.h.arr[3] = hdr.h.arr[0] + hdr.h.arr[1];
        hdr.h.x = hdr.h.arr[3];
    }
}
`, nil, nil)
	if got := field(t, out["hdr"], "h", "x"); !eval.ValueEqual(got, eval.NewBit(8, 30)) {
		t.Errorf("x = %s, want 30", got)
	}
}

func TestLocalVarsAndShadowing(t *testing.T) {
	out, _ := run(t, simple(`
        <bit<8>, low> tmp = 9;
        hdr.h.a = tmp;
        {
            <bit<8>, low> tmp2 = 1;
            hdr.h.b = tmp + tmp2;
        }
    `), nil, nil)
	if got := field(t, out["hdr"], "h", "a"); !eval.ValueEqual(got, eval.NewBit(8, 9)) {
		t.Errorf("a = %s, want 9", got)
	}
	if got := field(t, out["hdr"], "h", "b"); !eval.ValueEqual(got, eval.NewBit(8, 10)) {
		t.Errorf("b = %s, want 10", got)
	}
}

func TestTableExactMatch(t *testing.T) {
	src := `
header h_t { <bit<8>, low> key; <bit<8>, low> res; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action set_out(<bit<8>, low> v) {
        hdr.h.res = v;
    }
    action miss_out() {
        hdr.h.res = 255;
    }
    table t {
        key = { hdr.h.key: exact; }
        actions = { set_out; miss_out; }
        default_action = miss_out;
    }
    apply {
        t.apply();
    }
}
`
	cp := controlplane.New()
	cp.DeclareTable("t", []string{"exact"})
	if err := cp.Install("t", controlplane.Entry{
		Patterns: []controlplane.Pattern{controlplane.Exact(8, 42)},
		Action:   "set_out",
		Args:     []uint64{7},
	}); err != nil {
		t.Fatal(err)
	}
	mk := func(key uint64) map[string]eval.Value {
		return map[string]eval.Value{"hdr": &eval.RecordVal{Fields: []eval.NamedValue{
			{Name: "h", Val: &eval.HeaderVal{Valid: true, Fields: []eval.NamedValue{
				{Name: "key", Val: eval.NewBit(8, key)},
				{Name: "res", Val: eval.NewBit(8, 0)},
			}}},
		}}}
	}
	out, _ := run(t, src, cp.Clone(), mk(42))
	if got := field(t, out["hdr"], "h", "res"); !eval.ValueEqual(got, eval.NewBit(8, 7)) {
		t.Errorf("hit: out = %s, want 7", got)
	}
	out, _ = run(t, src, cp.Clone(), mk(41))
	if got := field(t, out["hdr"], "h", "res"); !eval.ValueEqual(got, eval.NewBit(8, 255)) {
		t.Errorf("miss: out = %s, want default 255", got)
	}
}

func TestTableLPM(t *testing.T) {
	src := `
header h_t { <bit<32>, low> dst; <bit<8>, low> port; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action set_port(<bit<8>, low> p) {
        hdr.h.port = p;
    }
    table route {
        key = { hdr.h.dst: lpm; }
        actions = { set_port; NoAction; }
    }
    apply {
        route.apply();
    }
}
`
	cp := controlplane.New()
	cp.DeclareTable("route", []string{"lpm"})
	// 10.0.0.0/8 -> port 1; 10.1.0.0/16 -> port 2.
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(cp.Install("route", controlplane.Entry{
		Patterns: []controlplane.Pattern{controlplane.LPM(32, 10<<24, 8)},
		Action:   "set_port", Args: []uint64{1},
	}))
	must(cp.Install("route", controlplane.Entry{
		Patterns: []controlplane.Pattern{controlplane.LPM(32, 10<<24|1<<16, 16)},
		Action:   "set_port", Args: []uint64{2},
	}))
	mk := func(dst uint64) map[string]eval.Value {
		return map[string]eval.Value{"hdr": &eval.RecordVal{Fields: []eval.NamedValue{
			{Name: "h", Val: &eval.HeaderVal{Valid: true, Fields: []eval.NamedValue{
				{Name: "dst", Val: eval.NewBit(32, dst)},
				{Name: "port", Val: eval.NewBit(8, 0)},
			}}},
		}}}
	}
	// 10.2.3.4 matches only /8.
	out, _ := run(t, src, cp.Clone(), mk(10<<24|2<<16|3<<8|4))
	if got := field(t, out["hdr"], "h", "port"); !eval.ValueEqual(got, eval.NewBit(8, 1)) {
		t.Errorf("10.2.3.4: port = %s, want 1", got)
	}
	// 10.1.9.9 matches /16 (longest prefix wins).
	out, _ = run(t, src, cp.Clone(), mk(10<<24|1<<16|9<<8|9))
	if got := field(t, out["hdr"], "h", "port"); !eval.ValueEqual(got, eval.NewBit(8, 2)) {
		t.Errorf("10.1.9.9: port = %s, want 2", got)
	}
	// 11.0.0.1 misses entirely: port unchanged.
	out, _ = run(t, src, cp.Clone(), mk(11<<24|1))
	if got := field(t, out["hdr"], "h", "port"); !eval.ValueEqual(got, eval.NewBit(8, 0)) {
		t.Errorf("11.0.0.1: port = %s, want 0 (miss)", got)
	}
}

func TestMarkToDrop(t *testing.T) {
	out, _ := run(t, simple(`
        mark_to_drop(standard_metadata);
    `), nil, nil)
	got := field(t, out["standard_metadata"], "drop_flag")
	if !eval.ValueEqual(got, eval.NewBit(1, 1)) {
		t.Errorf("drop_flag = %s, want 1", got)
	}
	spec := field(t, out["standard_metadata"], "egress_spec")
	if !eval.ValueEqual(spec, eval.NewBit(9, 511)) {
		t.Errorf("egress_spec = %s, want 511", spec)
	}
}

func TestTopologyFixedEndToEnd(t *testing.T) {
	// Run the fixed Listing 1/2 program with installed entries and check
	// the full pipeline: virt2phys rewrite then LPM forwarding.
	p := progs.Topology()
	prog := parser.MustParse("topo.p4", p.Source(progs.Fixed))
	cp := controlplane.New()
	in, err := eval.New(prog, cp)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(cp.Install("virtual2phys_topology", controlplane.Entry{
		Patterns: []controlplane.Pattern{controlplane.Exact(32, 0x0A000001)},
		Action:   "update_to_phys",
		Args:     []uint64{0xC0A80001, 3},
	}))
	must(cp.Install("ipv4_lpm_forward", controlplane.Entry{
		Patterns: []controlplane.Pattern{controlplane.LPM(32, 0x0A000000, 8)},
		Action:   "ipv4_forward",
		Args:     []uint64{0xAABBCCDDEEFF, 4},
	}))
	hdr := &eval.RecordVal{Fields: []eval.NamedValue{
		{Name: "ipv4", Val: &eval.HeaderVal{Valid: true, Fields: []eval.NamedValue{
			{Name: "ttl", Val: eval.NewBit(8, 64)},
			{Name: "protocol", Val: eval.NewBit(8, 6)},
			{Name: "srcAddr", Val: eval.NewBit(32, 0x0A000002)},
			{Name: "dstAddr", Val: eval.NewBit(32, 0x0A000001)},
		}}},
		{Name: "eth", Val: &eval.HeaderVal{Valid: true, Fields: []eval.NamedValue{
			{Name: "srcAddr", Val: eval.NewBit(48, 1)},
			{Name: "dstAddr", Val: eval.NewBit(48, 2)},
		}}},
		{Name: "local_hdr", Val: &eval.HeaderVal{Valid: true, Fields: []eval.NamedValue{
			{Name: "phys_dstAddr", Val: eval.NewBit(32, 0)},
			{Name: "phys_ttl", Val: eval.NewBit(8, 0)},
			{Name: "next_hop_MAC_addr", Val: eval.NewBit(48, 0)},
		}}},
	}}
	out, sig, err := in.RunControl("", map[string]eval.Value{"hdr": hdr})
	if err != nil {
		t.Fatal(err)
	}
	if sig.Kind != eval.SigCont {
		t.Fatalf("signal = %s", sig)
	}
	if got := field(t, out["hdr"], "local_hdr", "phys_dstAddr"); !eval.ValueEqual(got, eval.NewBit(32, 0xC0A80001)) {
		t.Errorf("phys_dstAddr = %s, want 0xC0A80001", got)
	}
	if got := field(t, out["hdr"], "local_hdr", "phys_ttl"); !eval.ValueEqual(got, eval.NewBit(8, 3)) {
		t.Errorf("phys_ttl = %s, want 3", got)
	}
	// Public ttl untouched in the fixed version.
	if got := field(t, out["hdr"], "ipv4", "ttl"); !eval.ValueEqual(got, eval.NewBit(8, 64)) {
		t.Errorf("ipv4.ttl = %s, want 64 (unchanged)", got)
	}
	if got := field(t, out["hdr"], "eth", "dstAddr"); !eval.ValueEqual(got, eval.NewBit(48, 0xAABBCCDDEEFF)) {
		t.Errorf("eth.dstAddr = %s, want rewritten MAC", got)
	}
	if got := field(t, out["standard_metadata"], "egress_spec"); !eval.ValueEqual(got, eval.NewBit(9, 4)) {
		t.Errorf("egress_spec = %s, want 4", got)
	}
}

func TestDivisionByZero(t *testing.T) {
	prog := parser.MustParse("t.p4", simple(`hdr.h.a = hdr.h.b / hdr.h.a;`))
	in, err := eval.New(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = in.RunControl("", nil)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v, want division by zero", err)
	}
}

func TestAllFixedProgramsRun(t *testing.T) {
	// Every fixed case study must at least execute on zero inputs with an
	// empty control plane (all tables miss).
	for _, p := range progs.All() {
		prog := parser.MustParse(p.FileName(progs.Fixed), p.Source(progs.Fixed))
		in, err := eval.New(prog, nil)
		if err != nil {
			t.Errorf("%s: eval.New: %v", p.Name, err)
			continue
		}
		for _, ctrl := range prog.Controls {
			if _, _, err := in.RunControl(ctrl.Name, nil); err != nil {
				t.Errorf("%s/%s: run: %v", p.Name, ctrl.Name, err)
			}
		}
	}
}
