package eval

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/controlplane"
	"repro/internal/diag"
	"repro/internal/lattice"
	"repro/internal/resolve"
	"repro/internal/token"
	"repro/internal/types"
)

// SigKind classifies the control-flow signal a statement evaluates to.
type SigKind int

// Signals.
const (
	SigCont SigKind = iota
	SigExit
	SigReturn
)

// Signal is the result signal of a statement: cont, exit, or return(val).
type Signal struct {
	Kind SigKind
	Val  Value // return value for SigReturn
}

// String renders the signal.
func (s Signal) String() string {
	switch s.Kind {
	case SigExit:
		return "exit"
	case SigReturn:
		return fmt.Sprintf("return %s", s.Val)
	default:
		return "cont"
	}
}

// astBody adapts an AST block to the Body interface in value.go.
type astBody struct{ blk *ast.BlockStmt }

func (astBody) bodyMarker() {}

// tableBody adapts a table declaration to the Body interface.
type tableBody struct{ decl *ast.TableDecl }

func (tableBody) bodyMarker() {}

// permissive resolves any label name, so the interpreter can load programs
// annotated against any lattice: evaluation is label-blind.
type permissive struct{ lattice.Lattice }

func (p permissive) Lookup(string) (lattice.Label, bool) { return p.Bottom(), true }

// Interp evaluates a program against a control plane.
type Interp struct {
	prog  *ast.Program
	cp    *controlplane.ControlPlane
	store *Store
	res   *resolve.Resolver
	diags diag.List

	global *Env
	// registers holds the persistent storage locations of register
	// declarations, keyed "Control.name". Register state survives across
	// RunControl calls, modelling the multi-packet switch state of the
	// paper's Section 7 extension.
	registers map[string]Loc
	// fuel bounds the number of statements evaluated, guarding against
	// interpreter bugs (well-typed Core P4 programs always terminate).
	fuel int
	// depth tracks closure-call nesting; Core P4 forbids recursion, so a
	// deep stack indicates an ill-formed program and is rejected rather
	// than allowed to exhaust the host stack.
	depth int
}

// DefaultFuel is the default statement budget per control invocation.
const DefaultFuel = 1 << 20

// MaxCallDepth bounds closure-call nesting (P4 has no recursion; real
// programs nest a handful of calls at most).
const MaxCallDepth = 512

// New prepares an interpreter for prog: type declarations are collected,
// builtins and match-kind members bound, and top-level constants evaluated.
// The control plane may be nil (all table applies miss).
func New(prog *ast.Program, cp *controlplane.ControlPlane) (*Interp, error) {
	if cp == nil {
		cp = controlplane.New()
	}
	in := &Interp{prog: prog, cp: cp, store: NewStore(), fuel: DefaultFuel,
		registers: map[string]Loc{}}
	in.res = resolve.New(permissive{lattice.TwoPoint()}, &in.diags)
	in.res.CollectTypeDecls(prog)
	if err := in.diags.Err(); err != nil {
		return nil, err
	}
	in.global = NewEnv()
	for _, name := range []string{"mark_to_drop", "NoAction"} {
		in.global.Bind(name, in.store.Alloc(BuiltinVal(name)))
	}
	for _, m := range in.res.MatchKinds {
		in.global.Bind(m, in.store.Alloc(MatchKindVal(m)))
	}
	for _, d := range prog.Decls {
		vd, ok := d.(*ast.VarDecl)
		if !ok {
			continue
		}
		env, _, err := in.evalVarDecl(in.global, vd)
		if err != nil {
			return nil, err
		}
		in.global = env
	}
	// Declare all tables of all controls with the control plane so entries
	// can be installed before running.
	for _, ctrl := range prog.Controls {
		for _, d := range ctrl.Locals {
			if td, ok := d.(*ast.TableDecl); ok {
				kinds := make([]string, len(td.Keys))
				for i, k := range td.Keys {
					kinds[i] = k.MatchKind
				}
				if in.cp.Table(td.Name) == nil {
					in.cp.DeclareTable(td.Name, kinds)
				}
			}
		}
	}
	return in, nil
}

// ControlPlane returns the interpreter's control plane for entry
// installation.
func (in *Interp) ControlPlane() *controlplane.ControlPlane { return in.cp }

// ParamType returns the resolved type of a control parameter.
func (in *Interp) ParamType(control, param string) (types.SecType, error) {
	ctrl := in.findControl(control)
	if ctrl == nil {
		return types.SecType{}, fmt.Errorf("eval: no control %q", control)
	}
	for _, p := range ctrl.Params {
		if p.Name == param {
			st := in.res.SecType(p.Type)
			if err := in.diags.Err(); err != nil {
				return types.SecType{}, err
			}
			return st, nil
		}
	}
	return types.SecType{}, fmt.Errorf("eval: control %q has no parameter %q", control, param)
}

func (in *Interp) findControl(name string) *ast.ControlDecl {
	for _, c := range in.prog.Controls {
		if c.Name == name || name == "" {
			return c
		}
	}
	return nil
}

// RunControl executes the named control block ("" = the first control).
// inputs supplies the initial values of the control's parameters (missing
// parameters get zero values); outputs returns their final values, i.e.
// the copied-out inout state.
func (in *Interp) RunControl(name string, inputs map[string]Value) (map[string]Value, Signal, error) {
	ctrl := in.findControl(name)
	if ctrl == nil {
		return nil, Signal{}, fmt.Errorf("eval: no control %q", name)
	}
	in.fuel = DefaultFuel
	env := in.global.Child()
	paramLocs := map[string]Loc{}
	for _, p := range ctrl.Params {
		st := in.res.SecType(p.Type)
		if err := in.diags.Err(); err != nil {
			return nil, Signal{}, err
		}
		var v Value
		if given, ok := inputs[p.Name]; ok {
			v = Copy(given)
		} else {
			v = Zero(st.T)
		}
		l := in.store.Alloc(v)
		paramLocs[p.Name] = l
		env.Bind(p.Name, l)
	}
	for _, d := range ctrl.Locals {
		var err error
		switch d := d.(type) {
		case *ast.VarDecl:
			if d.Register {
				// Registers keep their storage across packets.
				key := ctrl.Name + "." + d.Name
				loc, seen := in.registers[key]
				if !seen {
					st := in.res.SecType(d.Type)
					if derr := in.diags.Err(); derr != nil {
						return nil, Signal{}, derr
					}
					loc = in.store.Alloc(Zero(st.T))
					in.registers[key] = loc
				}
				env.Bind(d.Name, loc)
				continue
			}
			env, _, err = in.evalVarDecl(env, d)
		case *ast.FuncDecl:
			ft := in.funcType(d)
			clos := &ClosVal{Name: d.Name, Env: env, Fn: ft, Body: astBody{d.Body}}
			env.Bind(d.Name, in.store.Alloc(clos))
		case *ast.TableDecl:
			tv := &TableVal{Name: d.Name, Env: env, Decl: tableBody{d}}
			env.Bind(d.Name, in.store.Alloc(tv))
		default:
			err = fmt.Errorf("%s: unsupported declaration in control body", d.Pos())
		}
		if err != nil {
			return nil, Signal{}, err
		}
	}
	_, sig, err := in.evalBlock(env, ctrl.Apply)
	if err != nil {
		return nil, sig, err
	}
	out := map[string]Value{}
	for name, l := range paramLocs {
		out[name] = Copy(in.store.Get(l))
	}
	return out, sig, nil
}

// funcType resolves a function declaration's semantic parameter list; the
// IFC-specific PCFn is irrelevant at run time and left at the zero label.
func (in *Interp) funcType(d *ast.FuncDecl) *types.Func {
	params := make([]types.Param, 0, len(d.Params))
	for _, p := range d.Params {
		st := in.res.SecType(p.Type)
		dir := types.In
		ctrlPlane := false
		switch p.Dir {
		case ast.DirOut:
			dir = types.Out
		case ast.DirInOut:
			dir = types.InOut
		case ast.DirNone:
			ctrlPlane = d.IsAction
		}
		params = append(params, types.Param{Name: p.Name, Dir: dir, Type: st, CtrlPlane: ctrlPlane})
	}
	ret := types.SecType{T: types.Unit{}}
	if d.Ret != nil {
		ret = in.res.SecType(d.Ret)
	}
	return &types.Func{Params: params, Ret: ret, IsAction: d.IsAction}
}

// ---------------------------------------------------------------------------
// Declarations

func (in *Interp) evalVarDecl(env *Env, d *ast.VarDecl) (*Env, Signal, error) {
	st := in.res.SecType(d.Type)
	if err := in.diags.Err(); err != nil {
		return env, Signal{}, err
	}
	var v Value
	if d.Init != nil {
		iv, err := in.evalExpr(env, d.Init)
		if err != nil {
			return env, Signal{}, err
		}
		v = coerceValue(iv, st.T)
	} else {
		v = Zero(st.T)
	}
	env.Bind(d.Name, in.store.Alloc(v))
	return env, Signal{Kind: SigCont}, nil
}

// coerceValue adapts an IntVal to the declared bit width (the dynamic
// counterpart of the checker's literal coercion).
func coerceValue(v Value, t types.Type) Value {
	if iv, ok := v.(IntVal); ok {
		if bt, ok := t.(types.Bit); ok {
			return NewBit(bt.W, uint64(iv))
		}
	}
	return v
}

// ---------------------------------------------------------------------------
// Statements

func (in *Interp) evalBlock(env *Env, b *ast.BlockStmt) (*Env, Signal, error) {
	scope := env.Child()
	for _, s := range b.Stmts {
		var sig Signal
		var err error
		scope, sig, err = in.evalStmt(scope, s)
		if err != nil {
			return scope, sig, err
		}
		if sig.Kind != SigCont {
			return scope, sig, nil
		}
	}
	return scope, Signal{Kind: SigCont}, nil
}

func (in *Interp) evalStmt(env *Env, s ast.Stmt) (*Env, Signal, error) {
	in.fuel--
	if in.fuel <= 0 {
		return env, Signal{}, fmt.Errorf("%s: evaluation fuel exhausted", s.Pos())
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		_, sig, err := in.evalBlock(env, s)
		return env, sig, err

	case *ast.AssignStmt:
		lv, err := in.evalLValue(env, s.LHS)
		if err != nil {
			return env, Signal{}, err
		}
		rv, err := in.evalExpr(env, s.RHS)
		if err != nil {
			return env, Signal{}, err
		}
		if err := in.writeLValue(env, lv, rv); err != nil {
			return env, Signal{}, err
		}
		return env, Signal{Kind: SigCont}, nil

	case *ast.IfStmt:
		cv, err := in.evalExpr(env, s.Cond)
		if err != nil {
			return env, Signal{}, err
		}
		b, ok := cv.(BoolVal)
		if !ok {
			return env, Signal{}, fmt.Errorf("%s: if condition evaluated to %s, not bool", s.P, cv)
		}
		if bool(b) {
			_, sig, err := in.evalBlock(env, s.Then)
			return env, sig, err
		}
		if s.Else != nil {
			_, sig, err := in.evalStmt(env.Child(), s.Else)
			return env, sig, err
		}
		return env, Signal{Kind: SigCont}, nil

	case *ast.ExitStmt:
		return env, Signal{Kind: SigExit}, nil

	case *ast.ReturnStmt:
		if s.X == nil {
			return env, Signal{Kind: SigReturn, Val: UnitVal{}}, nil
		}
		v, err := in.evalExpr(env, s.X)
		if err != nil {
			return env, Signal{}, err
		}
		return env, Signal{Kind: SigReturn, Val: v}, nil

	case *ast.ExprStmt:
		call, ok := s.X.(*ast.Call)
		if !ok {
			return env, Signal{}, fmt.Errorf("%s: expression statement is not a call", s.P)
		}
		_, sig, err := in.evalCall(env, call)
		if err != nil {
			return env, Signal{}, err
		}
		// A return signal from a callee is absorbed by the call; exit
		// propagates (petr4 semantics).
		if sig.Kind == SigExit {
			return env, sig, nil
		}
		return env, Signal{Kind: SigCont}, nil

	case *ast.ApplyStmt:
		sig, err := in.applyTable(env, s)
		return env, sig, err

	case *ast.DeclStmt:
		return in.evalVarDecl(env, s.Decl)

	default:
		return env, Signal{}, fmt.Errorf("%s: unsupported statement", s.Pos())
	}
}

// ---------------------------------------------------------------------------
// L-values (Appendices F and G)

type accessor struct {
	field string // set for lval.f
	index int    // used when field == ""
}

// lvalue is an evaluated l-value: a base variable plus a path of field
// projections and (evaluated) indices.
type lvalue struct {
	pos  token.Pos
	base string
	path []accessor
}

func (in *Interp) evalLValue(env *Env, e ast.Expr) (lvalue, error) {
	switch e := e.(type) {
	case *ast.Ident:
		return lvalue{pos: e.P, base: e.Name}, nil
	case *ast.Member:
		lv, err := in.evalLValue(env, e.X)
		if err != nil {
			return lvalue{}, err
		}
		lv.path = append(lv.path, accessor{field: e.Field})
		return lv, nil
	case *ast.Index:
		lv, err := in.evalLValue(env, e.X)
		if err != nil {
			return lvalue{}, err
		}
		iv, err := in.evalExpr(env, e.I)
		if err != nil {
			return lvalue{}, err
		}
		idx, err := toIndex(iv)
		if err != nil {
			return lvalue{}, fmt.Errorf("%s: %v", e.P, err)
		}
		lv.path = append(lv.path, accessor{index: idx})
		return lv, nil
	default:
		return lvalue{}, fmt.Errorf("%s: %s is not an l-value", e.Pos(), e)
	}
}

func toIndex(v Value) (int, error) {
	switch v := v.(type) {
	case BitVal:
		return int(v.V), nil
	case IntVal:
		if v < 0 {
			return 0, fmt.Errorf("negative index %d", v)
		}
		return int(v), nil
	default:
		return 0, fmt.Errorf("index evaluated to %s, not a number", v)
	}
}

// readLValue reads the value at an evaluated l-value.
func (in *Interp) readLValue(env *Env, lv lvalue) (Value, error) {
	l, ok := env.Lookup(lv.base)
	if !ok {
		return nil, fmt.Errorf("%s: undeclared variable %q", lv.pos, lv.base)
	}
	v := in.store.Get(l)
	for _, acc := range lv.path {
		var err error
		v, err = project(v, acc)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lv.pos, err)
		}
	}
	return Copy(v), nil
}

func project(v Value, acc accessor) (Value, error) {
	if acc.field != "" {
		switch v := v.(type) {
		case *RecordVal:
			if f := fieldSlot(v.Fields, acc.field); f != nil {
				return f.Val, nil
			}
		case *HeaderVal:
			if f := fieldSlot(v.Fields, acc.field); f != nil {
				return f.Val, nil
			}
		}
		return nil, fmt.Errorf("value %s has no field %q", v, acc.field)
	}
	st, ok := v.(*StackVal)
	if !ok {
		return nil, fmt.Errorf("value %s is not indexable", v)
	}
	if acc.index < 0 || acc.index >= len(st.Elems) {
		// Out-of-bounds reads yield a havoc value per the semantics; we
		// use the zero value of the first element's shape.
		if len(st.Elems) == 0 {
			return UnitVal{}, nil
		}
		return Copy(st.Elems[0]), nil
	}
	return st.Elems[acc.index], nil
}

// writeLValue implements the ⇓write judgement of Appendix G: the base
// variable's value is functionally updated along the path and stored back.
// Out-of-bounds stack writes are dropped (the havoc case).
func (in *Interp) writeLValue(env *Env, lv lvalue, nv Value) error {
	l, ok := env.Lookup(lv.base)
	if !ok {
		return fmt.Errorf("%s: undeclared variable %q", lv.pos, lv.base)
	}
	old := in.store.Get(l)
	updated, err := updateAlong(old, lv.path, nv)
	if err != nil {
		return fmt.Errorf("%s: %v", lv.pos, err)
	}
	in.store.Set(l, updated)
	return nil
}

func updateAlong(v Value, path []accessor, nv Value) (Value, error) {
	if len(path) == 0 {
		// Adapt literal ints to the written slot's width.
		if bv, ok := v.(BitVal); ok {
			if iv, ok2 := nv.(IntVal); ok2 {
				return NewBit(bv.W, uint64(iv)), nil
			}
			if b2, ok2 := nv.(BitVal); ok2 {
				return NewBit(bv.W, b2.V), nil
			}
		}
		return Copy(nv), nil
	}
	acc := path[0]
	if acc.field != "" {
		switch v := v.(type) {
		case *RecordVal:
			fs := make([]NamedValue, len(v.Fields))
			copy(fs, v.Fields)
			slot := fieldSlot(fs, acc.field)
			if slot == nil {
				return nil, fmt.Errorf("value %s has no field %q", v, acc.field)
			}
			inner, err := updateAlong(slot.Val, path[1:], nv)
			if err != nil {
				return nil, err
			}
			slot.Val = inner
			return &RecordVal{fs}, nil
		case *HeaderVal:
			fs := make([]NamedValue, len(v.Fields))
			copy(fs, v.Fields)
			slot := fieldSlot(fs, acc.field)
			if slot == nil {
				return nil, fmt.Errorf("value %s has no field %q", v, acc.field)
			}
			inner, err := updateAlong(slot.Val, path[1:], nv)
			if err != nil {
				return nil, err
			}
			slot.Val = inner
			return &HeaderVal{v.Valid, fs}, nil
		default:
			return nil, fmt.Errorf("value %s has no field %q", v, acc.field)
		}
	}
	st, ok := v.(*StackVal)
	if !ok {
		return nil, fmt.Errorf("value %s is not indexable", v)
	}
	if acc.index < 0 || acc.index >= len(st.Elems) {
		return v, nil // out-of-bounds write: havoc, dropped
	}
	es := make([]Value, len(st.Elems))
	copy(es, st.Elems)
	inner, err := updateAlong(es[acc.index], path[1:], nv)
	if err != nil {
		return nil, err
	}
	es[acc.index] = inner
	return &StackVal{es}, nil
}

// ---------------------------------------------------------------------------
// Expressions

func (in *Interp) evalExpr(env *Env, e ast.Expr) (Value, error) {
	switch e := e.(type) {
	case *ast.BoolLit:
		return BoolVal(e.Val), nil
	case *ast.IntLit:
		if e.HasWidth {
			return NewBit(e.Width, e.Val), nil
		}
		return IntVal(int64(e.Val)), nil
	case *ast.Ident:
		l, ok := env.Lookup(e.Name)
		if !ok {
			return nil, fmt.Errorf("%s: undeclared variable %q", e.P, e.Name)
		}
		return in.store.Get(l), nil
	case *ast.Unary:
		return in.evalUnary(env, e)
	case *ast.Binary:
		return in.evalBinary(env, e)
	case *ast.RecordLit:
		fs := make([]NamedValue, 0, len(e.Fields))
		for _, f := range e.Fields {
			v, err := in.evalExpr(env, f.Value)
			if err != nil {
				return nil, err
			}
			fs = append(fs, NamedValue{f.Name, v})
		}
		return &RecordVal{fs}, nil
	case *ast.Member:
		xv, err := in.evalExpr(env, e.X)
		if err != nil {
			return nil, err
		}
		v, err := project(xv, accessor{field: e.Field})
		if err != nil {
			return nil, fmt.Errorf("%s: %v", e.P, err)
		}
		return v, nil
	case *ast.Index:
		xv, err := in.evalExpr(env, e.X)
		if err != nil {
			return nil, err
		}
		iv, err := in.evalExpr(env, e.I)
		if err != nil {
			return nil, err
		}
		idx, err := toIndex(iv)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", e.P, err)
		}
		v, err := project(xv, accessor{index: idx})
		if err != nil {
			return nil, fmt.Errorf("%s: %v", e.P, err)
		}
		return v, nil
	case *ast.Call:
		v, sig, err := in.evalCall(env, e)
		if err != nil {
			return nil, err
		}
		if sig.Kind == SigExit {
			return nil, fmt.Errorf("%s: exit inside an expression call", e.P)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("%s: unsupported expression", e.Pos())
	}
}

func (in *Interp) evalUnary(env *Env, e *ast.Unary) (Value, error) {
	xv, err := in.evalExpr(env, e.X)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case token.NOT:
		b, ok := xv.(BoolVal)
		if !ok {
			return nil, fmt.Errorf("%s: ! on %s", e.P, xv)
		}
		return BoolVal(!bool(b)), nil
	case token.MINUS:
		switch v := xv.(type) {
		case IntVal:
			return IntVal(-int64(v)), nil
		case BitVal:
			return NewBit(v.W, -v.V), nil
		}
		return nil, fmt.Errorf("%s: - on %s", e.P, xv)
	case token.BITNOT:
		b, ok := xv.(BitVal)
		if !ok {
			return nil, fmt.Errorf("%s: ~ on %s", e.P, xv)
		}
		return NewBit(b.W, ^b.V), nil
	default:
		return nil, fmt.Errorf("%s: unsupported unary operator %s", e.P, e.Op)
	}
}

// numPair coerces a (BitVal, IntVal) mix to a pair of same-width bit
// values, or two IntVals, for arithmetic.
func numPair(a, b Value) (Value, Value, bool) {
	switch av := a.(type) {
	case IntVal:
		switch bv := b.(type) {
		case IntVal:
			return av, bv, true
		case BitVal:
			return NewBit(bv.W, uint64(av)), bv, true
		}
	case BitVal:
		switch bv := b.(type) {
		case IntVal:
			return av, NewBit(av.W, uint64(bv)), true
		case BitVal:
			if av.W == bv.W {
				return av, bv, true
			}
		}
	}
	return nil, nil, false
}

func (in *Interp) evalBinary(env *Env, e *ast.Binary) (Value, error) {
	// Short-circuit booleans first.
	if e.Op == token.AND || e.Op == token.OR {
		xv, err := in.evalExpr(env, e.X)
		if err != nil {
			return nil, err
		}
		xb, ok := xv.(BoolVal)
		if !ok {
			return nil, fmt.Errorf("%s: %s on %s", e.P, e.Op, xv)
		}
		if e.Op == token.AND && !bool(xb) {
			return BoolVal(false), nil
		}
		if e.Op == token.OR && bool(xb) {
			return BoolVal(true), nil
		}
		yv, err := in.evalExpr(env, e.Y)
		if err != nil {
			return nil, err
		}
		yb, ok := yv.(BoolVal)
		if !ok {
			return nil, fmt.Errorf("%s: %s on %s", e.P, e.Op, yv)
		}
		return yb, nil
	}
	xv, err := in.evalExpr(env, e.X)
	if err != nil {
		return nil, err
	}
	yv, err := in.evalExpr(env, e.Y)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case token.EQ:
		a, b, ok := numPair(xv, yv)
		if ok {
			return BoolVal(ValueEqual(a, b)), nil
		}
		return BoolVal(ValueEqual(xv, yv)), nil
	case token.NEQ:
		a, b, ok := numPair(xv, yv)
		if ok {
			return BoolVal(!ValueEqual(a, b)), nil
		}
		return BoolVal(!ValueEqual(xv, yv)), nil
	}
	a, b, ok := numPair(xv, yv)
	if !ok {
		return nil, fmt.Errorf("%s: operator %s on %s and %s", e.P, e.Op, xv, yv)
	}
	if ai, ok := a.(IntVal); ok {
		bi := b.(IntVal)
		return evalIntOp(e, int64(ai), int64(bi))
	}
	ab := a.(BitVal)
	bb := b.(BitVal)
	return evalBitOp(e, ab, bb)
}

func evalIntOp(e *ast.Binary, a, b int64) (Value, error) {
	switch e.Op {
	case token.PLUS:
		return IntVal(a + b), nil
	case token.MINUS:
		return IntVal(a - b), nil
	case token.STAR:
		return IntVal(a * b), nil
	case token.SLASH:
		if b == 0 {
			return nil, fmt.Errorf("%s: division by zero", e.P)
		}
		return IntVal(a / b), nil
	case token.PERCENT:
		if b == 0 {
			return nil, fmt.Errorf("%s: modulo by zero", e.P)
		}
		return IntVal(a % b), nil
	case token.LT:
		return BoolVal(a < b), nil
	case token.GT:
		return BoolVal(a > b), nil
	case token.LEQ:
		return BoolVal(a <= b), nil
	case token.GEQ:
		return BoolVal(a >= b), nil
	case token.SHL:
		return IntVal(a << uint(b&63)), nil
	case token.SHR:
		return IntVal(a >> uint(b&63)), nil
	default:
		return nil, fmt.Errorf("%s: operator %s undefined on int", e.P, e.Op)
	}
}

func evalBitOp(e *ast.Binary, a, b BitVal) (Value, error) {
	w := a.W
	switch e.Op {
	case token.PLUS:
		return NewBit(w, a.V+b.V), nil
	case token.MINUS:
		return NewBit(w, a.V-b.V), nil
	case token.STAR:
		return NewBit(w, a.V*b.V), nil
	case token.SLASH:
		if b.V == 0 {
			return nil, fmt.Errorf("%s: division by zero", e.P)
		}
		return NewBit(w, a.V/b.V), nil
	case token.PERCENT:
		if b.V == 0 {
			return nil, fmt.Errorf("%s: modulo by zero", e.P)
		}
		return NewBit(w, a.V%b.V), nil
	case token.LT:
		return BoolVal(a.V < b.V), nil
	case token.GT:
		return BoolVal(a.V > b.V), nil
	case token.LEQ:
		return BoolVal(a.V <= b.V), nil
	case token.GEQ:
		return BoolVal(a.V >= b.V), nil
	case token.AMP:
		return NewBit(w, a.V&b.V), nil
	case token.PIPE:
		return NewBit(w, a.V|b.V), nil
	case token.CARET:
		return NewBit(w, a.V^b.V), nil
	case token.SHL:
		if b.V >= uint64(w) {
			return NewBit(w, 0), nil
		}
		return NewBit(w, a.V<<b.V), nil
	case token.SHR:
		if b.V >= uint64(w) {
			return NewBit(w, 0), nil
		}
		return NewBit(w, a.V>>b.V), nil
	default:
		return nil, fmt.Errorf("%s: operator %s undefined on bit<%d>", e.P, e.Op, w)
	}
}

// ---------------------------------------------------------------------------
// Calls (Appendix H: copy-in / copy-out)

// argSpec is either a syntactic argument (evaluated per the parameter's
// direction) or a pre-evaluated control-plane value (always in).
type argSpec struct {
	expr ast.Expr
	val  Value
}

func (in *Interp) evalCall(env *Env, call *ast.Call) (Value, Signal, error) {
	fv, err := in.evalExpr(env, call.Fun)
	if err != nil {
		return nil, Signal{}, err
	}
	args := make([]argSpec, len(call.Args))
	for i, a := range call.Args {
		args[i] = argSpec{expr: a}
	}
	return in.invoke(env, call.P, fv, args)
}

// invoke calls a closure or builtin with the given arguments, evaluating
// syntactic arguments in callerEnv.
func (in *Interp) invoke(callerEnv *Env, pos token.Pos, fv Value, args []argSpec) (Value, Signal, error) {
	switch fv := fv.(type) {
	case BuiltinVal:
		return in.invokeBuiltin(callerEnv, pos, fv, args)
	case *ClosVal:
	default:
		return nil, Signal{}, fmt.Errorf("%s: %s is not callable", pos, fv)
	}
	clos := fv.(*ClosVal)
	if in.depth >= MaxCallDepth {
		return nil, Signal{}, fmt.Errorf("%s: call depth exceeds %d (recursion is not allowed in Core P4)", pos, MaxCallDepth)
	}
	in.depth++
	defer func() { in.depth-- }()
	if len(args) != len(clos.Fn.Params) {
		return nil, Signal{}, fmt.Errorf("%s: %s takes %d arguments, got %d",
			pos, clos.Name, len(clos.Fn.Params), len(args))
	}
	type writeback struct {
		lv  lvalue
		loc Loc
	}
	var wbs []writeback
	callEnv := clos.Env.Child()
	for i, p := range clos.Fn.Params {
		a := args[i]
		var loc Loc
		switch {
		case a.val != nil:
			loc = in.store.Alloc(coerceValue(a.val, p.Type.T))
		case p.Dir == types.In:
			v, err := in.evalExpr(callerEnv, a.expr)
			if err != nil {
				return nil, Signal{}, err
			}
			loc = in.store.Alloc(Copy(coerceValue(v, p.Type.T)))
		case p.Dir == types.Out:
			lv, err := in.evalLValue(callerEnv, a.expr)
			if err != nil {
				return nil, Signal{}, err
			}
			loc = in.store.Alloc(Zero(p.Type.T))
			wbs = append(wbs, writeback{lv, loc})
		default: // inout
			lv, err := in.evalLValue(callerEnv, a.expr)
			if err != nil {
				return nil, Signal{}, err
			}
			v, err := in.readLValue(callerEnv, lv)
			if err != nil {
				return nil, Signal{}, err
			}
			loc = in.store.Alloc(coerceValue(v, p.Type.T))
			wbs = append(wbs, writeback{lv, loc})
		}
		callEnv.Bind(p.Name, loc)
	}
	body, ok := clos.Body.(astBody)
	if !ok {
		return nil, Signal{}, fmt.Errorf("%s: closure %s has no body", pos, clos.Name)
	}
	_, sig, err := in.evalBlock(callEnv, body.blk)
	if err != nil {
		return nil, Signal{}, err
	}
	// Copy out (also on exit, so partial writes are visible, matching the
	// store-passing semantics in which writes happen eagerly).
	for _, wb := range wbs {
		if err := in.writeLValue(callerEnv, wb.lv, in.store.Get(wb.loc)); err != nil {
			return nil, Signal{}, err
		}
	}
	switch sig.Kind {
	case SigReturn:
		return sig.Val, Signal{Kind: SigCont}, nil
	case SigExit:
		return UnitVal{}, sig, nil
	default:
		return UnitVal{}, Signal{Kind: SigCont}, nil
	}
}

func (in *Interp) invokeBuiltin(callerEnv *Env, pos token.Pos, b BuiltinVal, args []argSpec) (Value, Signal, error) {
	switch string(b) {
	case "NoAction":
		return UnitVal{}, Signal{Kind: SigCont}, nil
	case "mark_to_drop":
		if len(args) != 1 || args[0].expr == nil {
			return nil, Signal{}, fmt.Errorf("%s: mark_to_drop takes one inout argument", pos)
		}
		lv, err := in.evalLValue(callerEnv, args[0].expr)
		if err != nil {
			return nil, Signal{}, err
		}
		v, err := in.readLValue(callerEnv, lv)
		if err != nil {
			return nil, Signal{}, err
		}
		rec, ok := v.(*RecordVal)
		if !ok {
			return nil, Signal{}, fmt.Errorf("%s: mark_to_drop argument is %s, not standard metadata", pos, v)
		}
		fs := make([]NamedValue, len(rec.Fields))
		copy(fs, rec.Fields)
		if f := fieldSlot(fs, "egress_spec"); f != nil {
			if bv, ok := f.Val.(BitVal); ok {
				f.Val = NewBit(bv.W, Mask(bv.W, ^uint64(0))) // drop port: all ones
			}
		}
		if f := fieldSlot(fs, "drop_flag"); f != nil {
			if bv, ok := f.Val.(BitVal); ok {
				f.Val = NewBit(bv.W, 1)
			}
		}
		if err := in.writeLValue(callerEnv, lv, &RecordVal{fs}); err != nil {
			return nil, Signal{}, err
		}
		return UnitVal{}, Signal{Kind: SigCont}, nil
	default:
		return nil, Signal{}, fmt.Errorf("%s: unknown builtin %s", pos, b)
	}
}

// ---------------------------------------------------------------------------
// Table application

// applyTable implements table invocation: evaluate the keys in the table's
// captured environment, ask the control plane for a matching entry, and
// invoke the selected action with its compile-time-bound arguments plus the
// control-plane-supplied ones. A miss with no default action is a no-op.
func (in *Interp) applyTable(env *Env, s *ast.ApplyStmt) (Signal, error) {
	tv0, err := in.evalExpr(env, s.Table)
	if err != nil {
		return Signal{}, err
	}
	tv, ok := tv0.(*TableVal)
	if !ok {
		return Signal{}, fmt.Errorf("%s: %s is not a table", s.P, tv0)
	}
	decl := tv.Decl.(tableBody).decl
	keys := make([]uint64, len(decl.Keys))
	for i, k := range decl.Keys {
		kv, err := in.evalExpr(tv.Env, k.Expr)
		if err != nil {
			return Signal{}, err
		}
		u, err := scalarToUint(kv)
		if err != nil {
			return Signal{}, fmt.Errorf("%s: table %s key %d: %v", s.P, tv.Name, i, err)
		}
		keys[i] = u
	}
	call, ok := in.cp.Lookup(tv.Name, keys)
	if !ok {
		// Miss with no control-plane default: fall back to the
		// default_action declared in the source, if any; otherwise no-op.
		if decl.Default == nil {
			return Signal{Kind: SigCont}, nil
		}
		call = &controlplane.ActionCall{Action: decl.Default.Name}
	}
	// Locate the declared action reference with this name (default refs
	// may also name any declared action).
	var ref *ast.ActionRef
	for i := range decl.Actions {
		if decl.Actions[i].Name == call.Action {
			ref = &decl.Actions[i]
			break
		}
	}
	if ref == nil && decl.Default != nil && decl.Default.Name == call.Action {
		ref = decl.Default
	}
	if ref == nil {
		return Signal{}, fmt.Errorf("%s: control plane selected action %q not declared by table %s",
			s.P, call.Action, tv.Name)
	}
	l, ok := tv.Env.Lookup(ref.Name)
	if !ok {
		return Signal{}, fmt.Errorf("%s: action %q not in scope of table %s", s.P, ref.Name, tv.Name)
	}
	av := in.store.Get(l)
	// Assemble arguments: bound expressions first (evaluated in the
	// table's captured environment), then control-plane values.
	var args []argSpec
	for _, a := range ref.Args {
		args = append(args, argSpec{expr: a})
	}
	if clos, ok := av.(*ClosVal); ok {
		bound := len(args)
		need := len(clos.Fn.Params) - bound
		if need < 0 || len(call.Args) < need {
			return Signal{}, fmt.Errorf("%s: control plane supplied %d args for %s, need %d",
				s.P, len(call.Args), ref.Name, need)
		}
		for i := 0; i < need; i++ {
			p := clos.Fn.Params[bound+i]
			args = append(args, argSpec{val: uintToScalar(call.Args[i], p.Type.T)})
		}
	}
	_, sig, err := in.invoke(tv.Env, s.P, av, args)
	if err != nil {
		return Signal{}, err
	}
	if sig.Kind == SigExit {
		return sig, nil
	}
	return Signal{Kind: SigCont}, nil
}

func scalarToUint(v Value) (uint64, error) {
	switch v := v.(type) {
	case BitVal:
		return v.V, nil
	case IntVal:
		return uint64(v), nil
	case BoolVal:
		if v {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("value %s is not a scalar key", v)
	}
}

func uintToScalar(u uint64, t types.Type) Value {
	switch t := t.(type) {
	case types.Bit:
		return NewBit(t.W, u)
	case types.Bool:
		return BoolVal(u != 0)
	case types.Int:
		return IntVal(int64(u))
	default:
		return NewBit(64, u)
	}
}
