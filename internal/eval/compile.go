// Compilation of a resolved program into a closure tree.
//
// Compile lowers a *ast.Program into pre-bound evaluator closures: every
// name reference becomes a (region, slot) index into flat value frames,
// every statement and expression becomes a Go closure over those slots, and
// every error message is precomputed at compile time. Running a trial on the
// resulting Machine costs input-state setup plus closure invocation — no AST
// walking, no map-based environment or store lookups, and no per-node
// allocation beyond the values the program itself constructs.
//
// The compiled form is observationally identical to the tree-walking
// interpreter in interp.go: same outputs, same signals, and byte-identical
// error strings (the NI harness and the fuzz campaign classify findings by
// those strings, so equivalence is load-bearing, not cosmetic). Programs the
// compiler cannot handle make Compile return an error and callers fall back
// to the interpreter.
//
// A Compiled program is immutable and safe for concurrent use; each Machine
// is single-threaded state (frames, fuel, scratch stacks) built on top of
// it.
package eval

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/ast"
	"repro/internal/controlplane"
	"repro/internal/diag"
	"repro/internal/lattice"
	"repro/internal/resolve"
	"repro/internal/token"
	"repro/internal/types"
)

// cExpr is a compiled expression: evaluate against the machine state.
type cExpr func(*Machine) (Value, error)

// cStmt is a compiled statement.
type cStmt func(*Machine) (Signal, error)

// Storage regions a compiled name reference can address.
const (
	rGlobal = iota // program-level constants, builtins, match kinds
	rCtrl          // the running control's frame (params + locals)
	rLocal         // the innermost call frame (function params + locals)
	rReg           // persistent register storage (survives RunControl)
)

// varRef is a resolved name: a region plus a slot index within it.
type varRef struct {
	region uint8
	slot   int
}

// cParam is a compiled control parameter.
type cParam struct {
	name string
	st   types.SecType
	zero Value
}

// cControl is a compiled control block. Slots [0, len(params)) of its frame
// hold the parameters (and, at the end of a run, the outputs).
type cControl struct {
	name      string
	params    []cParam
	frameSize int
	prologue  []func(*Machine) error // locals: var inits, closure/table binds
	body      []cStmt                // the apply block
}

// cClos is a compiled function/action closure value. It is immutable and
// shared by every Machine of its Compiled program; ValueEqual and the
// interpreter compare closures by identity, which pointer equality mirrors.
type cClos struct {
	name      string
	fn        *types.Func
	frameSize int
	body      []cStmt
	zeros     []Value // per-param Zero(type) templates (out params)
}

func (*cClos) valueMarker()     {}
func (v *cClos) String() string { return "clos(" + v.name + ")" }

// cActRef is a compiled table action reference: the action's resolved slot
// plus its compile-time-bound argument plans.
type cActRef struct {
	name     string
	ref      varRef
	resolved bool
	args     []*cArg
}

// cTable is a compiled table value.
type cTable struct {
	name      string
	keys      []cExpr
	actions   []cActRef
	deflt     *cActRef
	defltName string
	missCall  *controlplane.ActionCall // static miss-with-source-default call
}

func (*cTable) valueMarker()     {}
func (v *cTable) String() string { return "table(" + v.name + ")" }

// cArg is a compiled call argument: the expression (for in-parameters) and,
// when the expression has l-value shape, the compiled l-value (for out and
// inout parameters). lvErr carries the interpreter's "is not an l-value"
// message for arguments that need one but lack the shape.
type cArg struct {
	expr  cExpr
	lv    *cLValue
	lvErr string
}

// cAccessor is one step of an l-value path: a field projection or an index
// expression (evaluated at l-value-evaluation time, as in Appendix F).
type cAccessor struct {
	field  string
	idx    cExpr  // nil for field accessors
	idxPos string // index node position prefix ("file:l:c: ")
}

// cLValue is a compiled l-value: resolved base plus accessor path. baseErr
// is set when the base name is not in scope — the interpreter reports that
// only at read/write time (after index evaluation), so the compiled form
// defers it the same way.
type cLValue struct {
	baseErr string
	ref     varRef
	pos     string // base identifier position prefix ("file:l:c: ")
	path    []cAccessor
}

// tableInfo records a table declaration for control-plane registration.
type tableInfo struct {
	name  string
	kinds []string
}

// Compiled is a program lowered to closures. It is immutable after Compile
// and safe to share across goroutines; per-run state lives in Machine.
type Compiled struct {
	controls []*cControl
	globals  []Value // evaluated top-level state template
	regZero  []Value // zero templates for register slots
	tables   []tableInfo
}

// compiler carries the compile-time scope chain and frame allocators.
type compiler struct {
	res   *resolve.Resolver
	diags diag.List
	err   error

	sc          *cscope
	frame       *int  // slot allocator of the frame being compiled
	frameRegion uint8 // region those slots live in (rCtrl or rLocal)
	regZero     []Value
}

// cscope is the compile-time scope chain mirroring Env.
type cscope struct {
	parent *cscope
	names  map[string]varRef
}

func (s *cscope) child() *cscope { return &cscope{parent: s, names: map[string]varRef{}} }

func (s *cscope) bind(name string, r varRef) { s.names[name] = r }

func (s *cscope) lookup(name string) (varRef, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if r, ok := sc.names[name]; ok {
			return r, true
		}
	}
	return varRef{}, false
}

func (c *compiler) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// check records the first resolver diagnostic as the compile error.
func (c *compiler) check() bool {
	if err := c.diags.Err(); err != nil {
		c.fail(err)
		return false
	}
	return true
}

// Compile lowers prog into a closure tree. Top-level constants are
// evaluated now (they are deterministic), so NewMachine only copies a
// template. An error means the program uses something the compiler does not
// handle (or is ill-formed in a way the interpreter would also reject at
// load time); callers should fall back to the tree-walking interpreter.
func Compile(prog *ast.Program) (*Compiled, error) {
	c := &compiler{}
	c.res = resolve.New(permissive{lattice.TwoPoint()}, &c.diags)
	c.res.CollectTypeDecls(prog)
	if err := c.diags.Err(); err != nil {
		return nil, err
	}
	out := &Compiled{}

	// Globals: builtins, match kinds, then top-level vars in declaration
	// order, exactly as New binds them. Inits are evaluated on a bootstrap
	// machine; store writes during evaluation land in the template.
	gsc := &cscope{names: map[string]varRef{}}
	var globals []Value
	bindGlobal := func(name string, v Value) {
		gsc.bind(name, varRef{rGlobal, len(globals)})
		globals = append(globals, v)
	}
	for _, name := range []string{"mark_to_drop", "NoAction"} {
		bindGlobal(name, BuiltinVal(name))
	}
	for _, m := range c.res.MatchKinds {
		bindGlobal(m, MatchKindVal(m))
	}
	boot := &Machine{fuel: DefaultFuel}
	for _, d := range prog.Decls {
		vd, ok := d.(*ast.VarDecl)
		if !ok {
			continue
		}
		st := c.res.SecType(vd.Type)
		if !c.check() {
			return nil, c.err
		}
		var v Value
		if vd.Init != nil {
			c.sc = gsc
			init := c.compileExpr(vd.Init)
			if c.err != nil {
				return nil, c.err
			}
			boot.globals = globals
			iv, err := init(boot)
			if err != nil {
				return nil, err
			}
			globals = boot.globals
			v = coerceValue(iv, st.T)
		} else {
			v = Zero(st.T)
		}
		bindGlobal(vd.Name, v)
	}
	out.globals = globals

	// Table registrations, mirroring New's declaration pass.
	for _, ctrl := range prog.Controls {
		for _, d := range ctrl.Locals {
			if td, ok := d.(*ast.TableDecl); ok {
				kinds := make([]string, len(td.Keys))
				for i, k := range td.Keys {
					kinds[i] = k.MatchKind
				}
				out.tables = append(out.tables, tableInfo{td.Name, kinds})
			}
		}
	}

	for _, ctrl := range prog.Controls {
		cc, err := c.compileControl(ctrl, gsc)
		if err != nil {
			return nil, err
		}
		out.controls = append(out.controls, cc)
	}
	out.regZero = c.regZero
	return out, nil
}

// ControlIndex returns the index of the named control ("" = the first), or
// -1 if the program has no such control.
func (c *Compiled) ControlIndex(name string) int {
	for i, ctrl := range c.controls {
		if ctrl.name == name || name == "" {
			return i
		}
	}
	return -1
}

// ParamNames returns the declared parameter names of a control, in order
// (duplicates preserved).
func (c *Compiled) ParamNames(idx int) []string {
	ps := c.controls[idx].params
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.name
	}
	return out
}

// compileControl lowers one control. Parameter and local slots live in the
// control frame; var-decl inits compile against the progressive scope (they
// see only earlier bindings, as the interpreter's locals loop does), while
// function bodies and table keys/arguments compile against the full control
// scope (the interpreter's closures capture the mutable control env, so by
// call time every local is visible).
func (c *compiler) compileControl(ctrl *ast.ControlDecl, gsc *cscope) (*cControl, error) {
	cc := &cControl{name: ctrl.Name}
	sc := gsc.child()
	size := 0
	for _, p := range ctrl.Params {
		st := c.res.SecType(p.Type)
		if !c.check() {
			return nil, c.err
		}
		sc.bind(p.Name, varRef{rCtrl, size})
		cc.params = append(cc.params, cParam{name: p.Name, st: st, zero: Zero(st.T)})
		size++
	}
	var deferred []func() error
	for _, d := range ctrl.Locals {
		switch d := d.(type) {
		case *ast.VarDecl:
			if d.Register {
				st := c.res.SecType(d.Type)
				if !c.check() {
					return nil, c.err
				}
				sc.bind(d.Name, varRef{rReg, len(c.regZero)})
				c.regZero = append(c.regZero, Zero(st.T))
				continue
			}
			st := c.res.SecType(d.Type)
			if !c.check() {
				return nil, c.err
			}
			var init cExpr
			if d.Init != nil {
				c.sc = sc
				c.frame, c.frameRegion = &size, rCtrl
				init = c.compileExpr(d.Init)
			}
			slot := size
			size++
			if init != nil {
				t := st.T
				cc.prologue = append(cc.prologue, func(m *Machine) error {
					iv, err := init(m)
					if err != nil {
						return err
					}
					m.ctrl[slot] = own(coerceValue(iv, t))
					return nil
				})
			} else {
				zero := Zero(st.T)
				cc.prologue = append(cc.prologue, func(m *Machine) error {
					m.ctrl[slot] = Copy(zero)
					return nil
				})
			}
			sc.bind(d.Name, varRef{rCtrl, slot})
		case *ast.FuncDecl:
			fn := c.funcType(d)
			if !c.check() {
				return nil, c.err
			}
			clos := &cClos{name: d.Name, fn: fn}
			clos.zeros = make([]Value, len(fn.Params))
			for i, p := range fn.Params {
				clos.zeros[i] = Zero(p.Type.T)
			}
			slot := size
			size++
			cc.prologue = append(cc.prologue, func(m *Machine) error {
				m.ctrl[slot] = clos
				return nil
			})
			sc.bind(d.Name, varRef{rCtrl, slot})
			body := d.Body
			deferred = append(deferred, func() error { return c.compileFuncBody(clos, body, sc) })
		case *ast.TableDecl:
			tv := &cTable{name: d.Name}
			slot := size
			size++
			cc.prologue = append(cc.prologue, func(m *Machine) error {
				m.ctrl[slot] = tv
				return nil
			})
			sc.bind(d.Name, varRef{rCtrl, slot})
			decl := d
			deferred = append(deferred, func() error { return c.compileTable(tv, decl, sc) })
		default:
			return nil, fmt.Errorf("%s: unsupported declaration in control body", d.Pos())
		}
	}
	c.sc = sc
	c.frame, c.frameRegion = &size, rCtrl
	cc.body = c.compileBlock(ctrl.Apply)
	for _, fn := range deferred {
		if err := fn(); err != nil {
			return nil, err
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	cc.frameSize = size
	return cc, nil
}

// funcType mirrors Interp.funcType.
func (c *compiler) funcType(d *ast.FuncDecl) *types.Func {
	params := make([]types.Param, 0, len(d.Params))
	for _, p := range d.Params {
		st := c.res.SecType(p.Type)
		dir := types.In
		ctrlPlane := false
		switch p.Dir {
		case ast.DirOut:
			dir = types.Out
		case ast.DirInOut:
			dir = types.InOut
		case ast.DirNone:
			ctrlPlane = d.IsAction
		}
		params = append(params, types.Param{Name: p.Name, Dir: dir, Type: st, CtrlPlane: ctrlPlane})
	}
	ret := types.SecType{T: types.Unit{}}
	if d.Ret != nil {
		ret = c.res.SecType(d.Ret)
	}
	return &types.Func{Params: params, Ret: ret, IsAction: d.IsAction}
}

// compileFuncBody lowers a function body against the full control scope;
// parameters occupy the head of a fresh local frame.
func (c *compiler) compileFuncBody(clos *cClos, body *ast.BlockStmt, ctrlScope *cscope) error {
	sc := ctrlScope.child()
	size := 0
	for _, p := range clos.fn.Params {
		sc.bind(p.Name, varRef{rLocal, size})
		size++
	}
	c.sc = sc
	c.frame, c.frameRegion = &size, rLocal
	clos.body = c.compileBlock(body)
	clos.frameSize = size
	return c.err
}

// compileTable lowers table keys and action references against the full
// control scope (the interpreter evaluates them in the table's captured
// environment at apply time, when every control local is bound).
func (c *compiler) compileTable(tv *cTable, d *ast.TableDecl, ctrlScope *cscope) error {
	c.sc = ctrlScope
	for _, k := range d.Keys {
		tv.keys = append(tv.keys, c.compileExpr(k.Expr))
	}
	mk := func(ref *ast.ActionRef) cActRef {
		ar := cActRef{name: ref.Name}
		if r, ok := ctrlScope.lookup(ref.Name); ok {
			ar.ref, ar.resolved = r, true
		}
		for _, a := range ref.Args {
			ar.args = append(ar.args, c.compileArg(a))
		}
		return ar
	}
	for i := range d.Actions {
		tv.actions = append(tv.actions, mk(&d.Actions[i]))
	}
	if d.Default != nil {
		dd := mk(d.Default)
		tv.deflt = &dd
		tv.defltName = d.Default.Name
		tv.missCall = &controlplane.ActionCall{Action: d.Default.Name}
	}
	return c.err
}

// ---------------------------------------------------------------------------
// Statements

func (c *compiler) compileBlock(b *ast.BlockStmt) []cStmt {
	saved := c.sc
	c.sc = saved.child()
	out := make([]cStmt, len(b.Stmts))
	for i, s := range b.Stmts {
		out[i] = c.compileStmt(s)
	}
	c.sc = saved
	return out
}

// fuelOrErr is the statement preamble every compiled statement starts with,
// mirroring evalStmt's per-statement fuel decrement.
func fuelMsg(s ast.Stmt) string { return s.Pos().String() + ": evaluation fuel exhausted" }

func (c *compiler) compileStmt(s ast.Stmt) cStmt {
	fuel := fuelMsg(s)
	switch s := s.(type) {
	case *ast.BlockStmt:
		body := c.compileBlock(s)
		return func(m *Machine) (Signal, error) {
			m.fuel--
			if m.fuel <= 0 {
				return Signal{}, errors.New(fuel)
			}
			return runBody(m, body)
		}

	case *ast.AssignStmt:
		lv, lvErr := c.compileLValue(s.LHS)
		rhs := c.compileExpr(s.RHS)
		if lv == nil {
			return func(m *Machine) (Signal, error) {
				m.fuel--
				if m.fuel <= 0 {
					return Signal{}, errors.New(fuel)
				}
				return Signal{}, errors.New(lvErr)
			}
		}
		return func(m *Machine) (Signal, error) {
			m.fuel--
			if m.fuel <= 0 {
				return Signal{}, errors.New(fuel)
			}
			ib, err := lv.evalIdx(m)
			if err != nil {
				return Signal{}, err
			}
			rv, err := rhs(m)
			if err == nil {
				err = lv.write(m, ib, rv)
			}
			m.idxs = m.idxs[:ib]
			if err != nil {
				return Signal{}, err
			}
			return Signal{Kind: SigCont}, nil
		}

	case *ast.IfStmt:
		cond := c.compileExpr(s.Cond)
		then := c.compileBlock(s.Then)
		var els cStmt
		if s.Else != nil {
			saved := c.sc
			c.sc = saved.child()
			els = c.compileStmt(s.Else)
			c.sc = saved
		}
		prefix := s.P.String() + ": "
		return func(m *Machine) (Signal, error) {
			m.fuel--
			if m.fuel <= 0 {
				return Signal{}, errors.New(fuel)
			}
			cv, err := cond(m)
			if err != nil {
				return Signal{}, err
			}
			b, ok := cv.(BoolVal)
			if !ok {
				return Signal{}, fmt.Errorf("%sif condition evaluated to %s, not bool", prefix, cv)
			}
			if bool(b) {
				return runBody(m, then)
			}
			if els != nil {
				return els(m)
			}
			return Signal{Kind: SigCont}, nil
		}

	case *ast.ExitStmt:
		return func(m *Machine) (Signal, error) {
			m.fuel--
			if m.fuel <= 0 {
				return Signal{}, errors.New(fuel)
			}
			return Signal{Kind: SigExit}, nil
		}

	case *ast.ReturnStmt:
		if s.X == nil {
			return func(m *Machine) (Signal, error) {
				m.fuel--
				if m.fuel <= 0 {
					return Signal{}, errors.New(fuel)
				}
				return Signal{Kind: SigReturn, Val: UnitVal{}}, nil
			}
		}
		x := c.compileExpr(s.X)
		return func(m *Machine) (Signal, error) {
			m.fuel--
			if m.fuel <= 0 {
				return Signal{}, errors.New(fuel)
			}
			v, err := x(m)
			if err != nil {
				return Signal{}, err
			}
			return Signal{Kind: SigReturn, Val: v}, nil
		}

	case *ast.ExprStmt:
		call, ok := s.X.(*ast.Call)
		if !ok {
			msg := s.P.String() + ": expression statement is not a call"
			return func(m *Machine) (Signal, error) {
				m.fuel--
				if m.fuel <= 0 {
					return Signal{}, errors.New(fuel)
				}
				return Signal{}, errors.New(msg)
			}
		}
		fun := c.compileExpr(call.Fun)
		args := c.compileArgs(call.Args)
		posStr := call.P.String()
		return func(m *Machine) (Signal, error) {
			m.fuel--
			if m.fuel <= 0 {
				return Signal{}, errors.New(fuel)
			}
			fv, err := fun(m)
			if err != nil {
				return Signal{}, err
			}
			_, sig, err := m.invoke(posStr, fv, args, nil)
			if err != nil {
				return Signal{}, err
			}
			if sig.Kind == SigExit {
				return sig, nil
			}
			return Signal{Kind: SigCont}, nil
		}

	case *ast.ApplyStmt:
		tbl := c.compileExpr(s.Table)
		posStr := s.P.String()
		return func(m *Machine) (Signal, error) {
			m.fuel--
			if m.fuel <= 0 {
				return Signal{}, errors.New(fuel)
			}
			tv0, err := tbl(m)
			if err != nil {
				return Signal{}, err
			}
			tv, ok := tv0.(*cTable)
			if !ok {
				return Signal{}, fmt.Errorf("%s: %s is not a table", posStr, tv0)
			}
			return m.applyTable(posStr, tv)
		}

	case *ast.DeclStmt:
		return c.compileDeclStmt(s, fuel)

	default:
		msg := s.Pos().String() + ": unsupported statement"
		return func(m *Machine) (Signal, error) {
			m.fuel--
			if m.fuel <= 0 {
				return Signal{}, errors.New(fuel)
			}
			return Signal{}, errors.New(msg)
		}
	}
}

// compileDeclStmt lowers a local variable declaration: evaluate the init in
// the progressive scope, then bind a fresh slot in the enclosing frame. The
// Register and Const flags are ignored in statement position, exactly as
// evalVarDecl ignores them.
func (c *compiler) compileDeclStmt(s *ast.DeclStmt, fuel string) cStmt {
	d := s.Decl
	st := c.res.SecType(d.Type)
	if !c.check() {
		return func(m *Machine) (Signal, error) { return Signal{}, c.err }
	}
	var init cExpr
	if d.Init != nil {
		init = c.compileExpr(d.Init)
	}
	slot := *c.frame
	*c.frame = slot + 1
	ref := varRef{c.frameRegion, slot}
	// Bind after compiling the init so the init sees the outer binding, as
	// the interpreter's evaluate-then-bind order does.
	c.sc.bind(d.Name, ref)
	t := st.T
	if init != nil {
		return func(m *Machine) (Signal, error) {
			m.fuel--
			if m.fuel <= 0 {
				return Signal{}, errors.New(fuel)
			}
			iv, err := init(m)
			if err != nil {
				return Signal{}, err
			}
			m.set(ref, own(coerceValue(iv, t)))
			return Signal{Kind: SigCont}, nil
		}
	}
	zero := Zero(st.T)
	return func(m *Machine) (Signal, error) {
		m.fuel--
		if m.fuel <= 0 {
			return Signal{}, errors.New(fuel)
		}
		m.set(ref, Copy(zero))
		return Signal{Kind: SigCont}, nil
	}
}

// ---------------------------------------------------------------------------
// L-values

// compileLValue returns the compiled l-value, or nil plus the interpreter's
// "is not an l-value" message when the expression lacks l-value shape. An
// out-of-scope base still compiles (the interpreter reports it only at
// read/write time, after index evaluation).
func (c *compiler) compileLValue(e ast.Expr) (*cLValue, string) {
	switch e := e.(type) {
	case *ast.Ident:
		lv := &cLValue{pos: e.P.String() + ": "}
		if ref, ok := c.sc.lookup(e.Name); ok {
			lv.ref = ref
		} else {
			lv.baseErr = e.P.String() + ": undeclared variable " + strconv.Quote(e.Name)
		}
		return lv, ""
	case *ast.Member:
		lv, msg := c.compileLValue(e.X)
		if lv == nil {
			return nil, msg
		}
		lv.path = append(lv.path, cAccessor{field: e.Field})
		return lv, ""
	case *ast.Index:
		lv, msg := c.compileLValue(e.X)
		if lv == nil {
			return nil, msg
		}
		idx := c.compileExpr(e.I)
		lv.path = append(lv.path, cAccessor{idx: idx, idxPos: e.P.String() + ": "})
		return lv, ""
	default:
		return nil, fmt.Sprintf("%s: %s is not an l-value", e.Pos(), e)
	}
}

// compileArg lowers one call argument: the expression always, plus the
// l-value plan when the argument has that shape.
func (c *compiler) compileArg(e ast.Expr) *cArg {
	a := &cArg{expr: c.compileExpr(e)}
	a.lv, a.lvErr = c.compileLValue(e)
	return a
}

func (c *compiler) compileArgs(es []ast.Expr) []*cArg {
	out := make([]*cArg, len(es))
	for i, e := range es {
		out[i] = c.compileArg(e)
	}
	return out
}

// ---------------------------------------------------------------------------
// Expressions

func (c *compiler) compileExpr(e ast.Expr) cExpr {
	switch e := e.(type) {
	case *ast.BoolLit:
		v := BoolVal(e.Val)
		return func(*Machine) (Value, error) { return v, nil }

	case *ast.IntLit:
		var v Value
		if e.HasWidth {
			v = boxBit(e.Width, e.Val)
		} else {
			v = IntVal(int64(e.Val))
		}
		return func(*Machine) (Value, error) { return v, nil }

	case *ast.Ident:
		if ref, ok := c.sc.lookup(e.Name); ok {
			slot := ref.slot
			switch ref.region {
			case rGlobal:
				return func(m *Machine) (Value, error) { return m.globals[slot], nil }
			case rCtrl:
				return func(m *Machine) (Value, error) { return m.ctrl[slot], nil }
			case rLocal:
				return func(m *Machine) (Value, error) { return m.cur[slot], nil }
			default:
				return func(m *Machine) (Value, error) { return m.regs[slot], nil }
			}
		}
		msg := e.P.String() + ": undeclared variable " + strconv.Quote(e.Name)
		return func(*Machine) (Value, error) { return nil, errors.New(msg) }

	case *ast.Unary:
		return c.compileUnary(e)

	case *ast.Binary:
		return c.compileBinary(e)

	case *ast.RecordLit:
		names := make([]string, len(e.Fields))
		exprs := make([]cExpr, len(e.Fields))
		for i, f := range e.Fields {
			names[i] = f.Name
			exprs[i] = c.compileExpr(f.Value)
		}
		return func(m *Machine) (Value, error) {
			fs := make([]NamedValue, len(exprs))
			for i, ex := range exprs {
				v, err := ex(m)
				if err != nil {
					return nil, err
				}
				fs[i] = NamedValue{names[i], v}
			}
			return &RecordVal{fs}, nil
		}

	case *ast.Member:
		x := c.compileExpr(e.X)
		field := e.Field
		prefix := e.P.String() + ": "
		return func(m *Machine) (Value, error) {
			xv, err := x(m)
			if err != nil {
				return nil, err
			}
			v, err := project(xv, accessor{field: field})
			if err != nil {
				return nil, errors.New(prefix + err.Error())
			}
			return v, nil
		}

	case *ast.Index:
		x := c.compileExpr(e.X)
		ix := c.compileExpr(e.I)
		prefix := e.P.String() + ": "
		return func(m *Machine) (Value, error) {
			xv, err := x(m)
			if err != nil {
				return nil, err
			}
			iv, err := ix(m)
			if err != nil {
				return nil, err
			}
			idx, err := toIndex(iv)
			if err != nil {
				return nil, errors.New(prefix + err.Error())
			}
			v, err := project(xv, accessor{index: idx})
			if err != nil {
				return nil, errors.New(prefix + err.Error())
			}
			return v, nil
		}

	case *ast.Call:
		fun := c.compileExpr(e.Fun)
		args := c.compileArgs(e.Args)
		posStr := e.P.String()
		exitMsg := posStr + ": exit inside an expression call"
		return func(m *Machine) (Value, error) {
			fv, err := fun(m)
			if err != nil {
				return nil, err
			}
			v, sig, err := m.invoke(posStr, fv, args, nil)
			if err != nil {
				return nil, err
			}
			if sig.Kind == SigExit {
				return nil, errors.New(exitMsg)
			}
			return v, nil
		}

	default:
		msg := e.Pos().String() + ": unsupported expression"
		return func(*Machine) (Value, error) { return nil, errors.New(msg) }
	}
}

func (c *compiler) compileUnary(e *ast.Unary) cExpr {
	x := c.compileExpr(e.X)
	prefix := e.P.String() + ": "
	switch e.Op {
	case token.NOT:
		return func(m *Machine) (Value, error) {
			xv, err := x(m)
			if err != nil {
				return nil, err
			}
			b, ok := xv.(BoolVal)
			if !ok {
				return nil, fmt.Errorf("%s! on %s", prefix, xv)
			}
			return BoolVal(!bool(b)), nil
		}
	case token.MINUS:
		return func(m *Machine) (Value, error) {
			xv, err := x(m)
			if err != nil {
				return nil, err
			}
			switch v := xv.(type) {
			case IntVal:
				return IntVal(-int64(v)), nil
			case BitVal:
				return boxBit(v.W, -v.V), nil
			}
			return nil, fmt.Errorf("%s- on %s", prefix, xv)
		}
	case token.BITNOT:
		return func(m *Machine) (Value, error) {
			xv, err := x(m)
			if err != nil {
				return nil, err
			}
			b, ok := xv.(BitVal)
			if !ok {
				return nil, fmt.Errorf("%s~ on %s", prefix, xv)
			}
			return boxBit(b.W, ^b.V), nil
		}
	default:
		opStr := e.Op.String()
		return func(m *Machine) (Value, error) {
			if _, err := x(m); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%sunsupported unary operator %s", prefix, opStr)
		}
	}
}

func (c *compiler) compileBinary(e *ast.Binary) cExpr {
	x := c.compileExpr(e.X)
	y := c.compileExpr(e.Y)
	prefix := e.P.String() + ": "
	opStr := e.Op.String()
	switch e.Op {
	case token.AND, token.OR:
		isAnd := e.Op == token.AND
		return func(m *Machine) (Value, error) {
			xv, err := x(m)
			if err != nil {
				return nil, err
			}
			xb, ok := xv.(BoolVal)
			if !ok {
				return nil, fmt.Errorf("%s%s on %s", prefix, opStr, xv)
			}
			if isAnd && !bool(xb) {
				return BoolVal(false), nil
			}
			if !isAnd && bool(xb) {
				return BoolVal(true), nil
			}
			yv, err := y(m)
			if err != nil {
				return nil, err
			}
			yb, ok := yv.(BoolVal)
			if !ok {
				return nil, fmt.Errorf("%s%s on %s", prefix, opStr, yv)
			}
			return yb, nil
		}
	case token.EQ, token.NEQ:
		neq := e.Op == token.NEQ
		return func(m *Machine) (Value, error) {
			xv, err := x(m)
			if err != nil {
				return nil, err
			}
			yv, err := y(m)
			if err != nil {
				return nil, err
			}
			// numPair's coercions, inlined unboxed: re-packing the pair
			// through the Value interface would heap-allocate per comparison.
			var eq bool
			switch av := xv.(type) {
			case IntVal:
				switch bv := yv.(type) {
				case IntVal:
					eq = av == bv
				case BitVal:
					eq = NewBit(bv.W, uint64(av)) == bv
				default:
					eq = ValueEqual(xv, yv)
				}
			case BitVal:
				switch bv := yv.(type) {
				case IntVal:
					eq = av == NewBit(av.W, uint64(bv))
				case BitVal:
					eq = av == bv
				default:
					eq = ValueEqual(xv, yv)
				}
			default:
				eq = ValueEqual(xv, yv)
			}
			if neq {
				eq = !eq
			}
			return BoolVal(eq), nil
		}
	default:
		op := e.Op
		return func(m *Machine) (Value, error) {
			xv, err := x(m)
			if err != nil {
				return nil, err
			}
			yv, err := y(m)
			if err != nil {
				return nil, err
			}
			// numPair's coercions, inlined unboxed (see the EQ case).
			switch av := xv.(type) {
			case IntVal:
				switch bv := yv.(type) {
				case IntVal:
					return intOp(op, prefix, opStr, int64(av), int64(bv))
				case BitVal:
					return bitOp(op, prefix, opStr, NewBit(bv.W, uint64(av)), bv)
				}
			case BitVal:
				switch bv := yv.(type) {
				case IntVal:
					return bitOp(op, prefix, opStr, av, NewBit(av.W, uint64(bv)))
				case BitVal:
					if av.W == bv.W {
						return bitOp(op, prefix, opStr, av, bv)
					}
				}
			}
			return nil, fmt.Errorf("%soperator %s on %s and %s", prefix, opStr, xv, yv)
		}
	}
}
