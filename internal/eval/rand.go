package eval

import (
	"math/rand"

	"repro/internal/types"
)

// Rng is the draw interface the random-value generator needs. Both
// *math/rand.Rand and *BatchRand satisfy it.
type Rng interface {
	Intn(n int) int
	Int63n(n int64) int64
	Uint64() uint64
}

// BatchRand is a drop-in replacement for rand.New(rand.NewSource(seed))
// that prefetches source words in batches instead of calling into the
// source per draw. It produces the *bit-identical* stream to math/rand for
// every method it implements — callers that recorded seeds against the
// stock generator (the fuzz corpus, NI trial classifications) replay
// unchanged. That exactness is what lets the NI hot path batch rng draws
// per trial without invalidating any persisted finding.
type BatchRand struct {
	s64 rand.Source64
	src rand.Source // fallback when the source is not a Source64
	buf [256]uint64
	n   int
	i   int
}

// NewBatchRand returns a batching generator seeded like
// rand.New(rand.NewSource(seed)).
func NewBatchRand(seed int64) *BatchRand {
	src := rand.NewSource(seed)
	r := &BatchRand{src: src}
	if s64, ok := src.(rand.Source64); ok {
		r.s64 = s64
	}
	return r
}

func (r *BatchRand) word() uint64 {
	if r.i >= r.n {
		for j := range r.buf {
			r.buf[j] = r.s64.Uint64()
		}
		r.n, r.i = len(r.buf), 0
	}
	w := r.buf[r.i]
	r.i++
	return w
}

// Uint64 mirrors rand.Rand.Uint64.
func (r *BatchRand) Uint64() uint64 {
	if r.s64 == nil {
		return uint64(r.src.Int63())>>31 | uint64(r.src.Int63())<<32
	}
	return r.word()
}

// Int63 mirrors rand.Rand.Int63.
func (r *BatchRand) Int63() int64 {
	if r.s64 == nil {
		return r.src.Int63()
	}
	return int64(r.word() &^ (1 << 63))
}

// Int31 mirrors rand.Rand.Int31.
func (r *BatchRand) Int31() int32 { return int32(r.Int63() >> 32) }

// Int63n mirrors rand.Rand.Int63n, including its power-of-two fast path
// and rejection sampling, so the consumed word count matches exactly.
func (r *BatchRand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("invalid argument to Int63n")
	}
	if n&(n-1) == 0 {
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Int31n mirrors rand.Rand.Int31n.
func (r *BatchRand) Int31n(n int32) int32 {
	if n <= 0 {
		panic("invalid argument to Int31n")
	}
	if n&(n-1) == 0 {
		return r.Int31() & (n - 1)
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := r.Int31()
	for v > max {
		v = r.Int31()
	}
	return v % n
}

// Intn mirrors rand.Rand.Intn.
func (r *BatchRand) Intn(n int) int {
	if n <= 0 {
		panic("invalid argument to Intn")
	}
	if n <= 1<<31-1 {
		return int(r.Int31n(int32(n)))
	}
	return int(r.Int63n(int64(n)))
}

// RandomFrom is Random generalized over the draw source, so the NI harness
// can feed it a BatchRand. The draw order per type is identical to Random.
func RandomFrom(t types.Type, r Rng) Value {
	switch t := t.(type) {
	case types.Bool:
		return BoolVal(r.Intn(2) == 1)
	case types.Int:
		return IntVal(r.Int63n(1 << 20))
	case types.Bit:
		return NewBit(t.W, r.Uint64())
	case types.Unit:
		return UnitVal{}
	case *types.Record:
		fs := make([]NamedValue, len(t.Fields))
		for i, f := range t.Fields {
			fs[i] = NamedValue{f.Name, RandomFrom(f.Type.T, r)}
		}
		return &RecordVal{fs}
	case *types.Header:
		fs := make([]NamedValue, len(t.Fields))
		for i, f := range t.Fields {
			fs[i] = NamedValue{f.Name, RandomFrom(f.Type.T, r)}
		}
		return &HeaderVal{Valid: true, Fields: fs}
	case *types.Stack:
		es := make([]Value, t.Size)
		for i := range es {
			es[i] = RandomFrom(t.Elem.T, r)
		}
		return &StackVal{es}
	case *types.MatchKind:
		if len(t.Members) > 0 {
			return MatchKindVal(t.Members[r.Intn(len(t.Members))])
		}
		return MatchKindVal("exact")
	default:
		return UnitVal{}
	}
}
