// Package eval implements a big-step interpreter for the Core P4 fragment,
// following the petr4 operational semantics the paper builds on:
//
//	⟨C, Δ, μ, ε, exp⟩  ⇓ ⟨μ′, val⟩
//	⟨C, Δ, μ, ε, stmt⟩ ⇓ ⟨μ′, ε′, sig⟩
//	⟨C, Δ, μ, ε, decl⟩ ⇓ ⟨Δ′, μ′, ε′, sig⟩
//
// with a store μ mapping locations to values, environments ε mapping names
// to locations, the control plane C supplied by internal/controlplane, the
// copy-in/copy-out calling convention of Appendix H, and l-value evaluation
// and writing per Appendices F and G. Signals are cont, exit, and
// return(val).
//
// The interpreter exists to validate the paper's soundness theorem
// empirically: internal/ni runs well-typed programs on pairs of
// low-equivalent states and checks that the observable outputs agree.
package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/types"
)

// Value is a runtime value. The set of implementations is closed.
type Value interface {
	valueMarker()
	String() string
}

// BoolVal is a boolean value.
type BoolVal bool

// IntVal is an arbitrary-precision integer value (modelled as int64; the
// paper's programs stay well within range).
type IntVal int64

// BitVal is an n-bit unsigned value; V is always masked to W bits.
type BitVal struct {
	W int
	V uint64
}

// UnitVal is the unit value.
type UnitVal struct{}

// NamedValue pairs a field name with its value.
type NamedValue struct {
	Name string
	Val  Value
}

// RecordVal is a struct/record value with ordered fields.
type RecordVal struct {
	Fields []NamedValue
}

// HeaderVal is a header value: a validity bit plus ordered fields.
type HeaderVal struct {
	Valid  bool
	Fields []NamedValue
}

// StackVal is a header-stack/array value.
type StackVal struct {
	Elems []Value
}

// MatchKindVal is a match_kind member value (e.g. "exact").
type MatchKindVal string

// ClosVal is a function/action closure: the captured environment, the
// parameters, the return type, and the body (Appendix C's clos(ε, ...)).
type ClosVal struct {
	Name string
	Env  *Env
	Fn   *types.Func
	Body Body
}

// Body abstracts the closure body so value.go need not import the AST;
// interp.go supplies the concrete implementation.
type Body interface{ bodyMarker() }

// TableVal is a table closure: the captured environment plus the declared
// keys and action references (Appendix C's table_l(ε, ...)).
type TableVal struct {
	Name string
	Env  *Env
	Decl Body
}

// BuiltinVal names a builtin function (mark_to_drop, NoAction).
type BuiltinVal string

func (BoolVal) valueMarker()      {}
func (IntVal) valueMarker()       {}
func (BitVal) valueMarker()       {}
func (UnitVal) valueMarker()      {}
func (*RecordVal) valueMarker()   {}
func (*HeaderVal) valueMarker()   {}
func (*StackVal) valueMarker()    {}
func (MatchKindVal) valueMarker() {}
func (*ClosVal) valueMarker()     {}
func (*TableVal) valueMarker()    {}
func (BuiltinVal) valueMarker()   {}

func (v BoolVal) String() string { return fmt.Sprintf("%t", bool(v)) }
func (v IntVal) String() string  { return fmt.Sprintf("%d", int64(v)) }
func (v BitVal) String() string  { return fmt.Sprintf("%dw%d", v.W, v.V) }
func (UnitVal) String() string   { return "()" }

func (v *RecordVal) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, f := range v.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", f.Name, f.Val)
	}
	b.WriteString("}")
	return b.String()
}

func (v *HeaderVal) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "header{valid = %t", v.Valid)
	for _, f := range v.Fields {
		fmt.Fprintf(&b, ", %s = %s", f.Name, f.Val)
	}
	b.WriteString("}")
	return b.String()
}

func (v *StackVal) String() string {
	var b strings.Builder
	b.WriteString("stack[")
	for i, e := range v.Elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteString("]")
	return b.String()
}

func (v MatchKindVal) String() string { return string(v) }
func (v *ClosVal) String() string     { return "clos(" + v.Name + ")" }
func (v *TableVal) String() string    { return "table(" + v.Name + ")" }
func (v BuiltinVal) String() string   { return "builtin(" + string(v) + ")" }

// Mask returns v truncated to w bits.
func Mask(w int, v uint64) uint64 {
	if w >= 64 {
		return v
	}
	return v & ((1 << uint(w)) - 1)
}

// NewBit returns a masked BitVal.
func NewBit(w int, v uint64) BitVal { return BitVal{W: w, V: Mask(w, v)} }

// bitBox holds pre-boxed BitVal interface values for narrow widths and
// small values. A BitVal is a two-word struct, so every conversion to the
// Value interface heap-allocates; the compiled evaluator produces one per
// arithmetic result, which dominates allocation on the NI hot path.
// BitVal compares by value (ValueEqual and ==), so sharing boxes is
// unobservable.
var bitBox [17][]Value

func init() {
	for w := 1; w <= 16; w++ {
		n := 256
		if w < 8 {
			n = 1 << uint(w)
		}
		s := make([]Value, n)
		for v := range s {
			s[v] = BitVal{W: w, V: uint64(v)}
		}
		bitBox[w] = s
	}
}

// boxBit is NewBit returning an interface value, served from the
// pre-boxed cache when possible.
func boxBit(w int, v uint64) Value {
	v = Mask(w, v)
	if w >= 1 && w <= 16 && v < uint64(len(bitBox[w])) {
		return bitBox[w][v]
	}
	return BitVal{W: w, V: v}
}

// field returns a pointer to the named field's slot, or nil.
func fieldSlot(fs []NamedValue, name string) *NamedValue {
	for i := range fs {
		if fs[i].Name == name {
			return &fs[i]
		}
	}
	return nil
}

// Copy returns a deep copy of v; closures and tables are shared (they are
// immutable, per the semantics' closure-preservation lemmas).
func Copy(v Value) Value {
	switch v := v.(type) {
	case *RecordVal:
		fs := make([]NamedValue, len(v.Fields))
		for i, f := range v.Fields {
			fs[i] = NamedValue{f.Name, Copy(f.Val)}
		}
		return &RecordVal{fs}
	case *HeaderVal:
		fs := make([]NamedValue, len(v.Fields))
		for i, f := range v.Fields {
			fs[i] = NamedValue{f.Name, Copy(f.Val)}
		}
		return &HeaderVal{v.Valid, fs}
	case *StackVal:
		es := make([]Value, len(v.Elems))
		for i, e := range v.Elems {
			es[i] = Copy(e)
		}
		return &StackVal{es}
	default:
		return v
	}
}

// ValueEqual reports deep structural equality of two values. Closures and
// tables compare by identity.
func ValueEqual(a, b Value) bool {
	switch a := a.(type) {
	case BoolVal:
		b2, ok := b.(BoolVal)
		return ok && a == b2
	case IntVal:
		b2, ok := b.(IntVal)
		return ok && a == b2
	case BitVal:
		b2, ok := b.(BitVal)
		return ok && a == b2
	case UnitVal:
		_, ok := b.(UnitVal)
		return ok
	case MatchKindVal:
		b2, ok := b.(MatchKindVal)
		return ok && a == b2
	case *RecordVal:
		b2, ok := b.(*RecordVal)
		if !ok || len(a.Fields) != len(b2.Fields) {
			return false
		}
		for i := range a.Fields {
			if a.Fields[i].Name != b2.Fields[i].Name || !ValueEqual(a.Fields[i].Val, b2.Fields[i].Val) {
				return false
			}
		}
		return true
	case *HeaderVal:
		b2, ok := b.(*HeaderVal)
		if !ok || a.Valid != b2.Valid || len(a.Fields) != len(b2.Fields) {
			return false
		}
		for i := range a.Fields {
			if a.Fields[i].Name != b2.Fields[i].Name || !ValueEqual(a.Fields[i].Val, b2.Fields[i].Val) {
				return false
			}
		}
		return true
	case *StackVal:
		b2, ok := b.(*StackVal)
		if !ok || len(a.Elems) != len(b2.Elems) {
			return false
		}
		for i := range a.Elems {
			if !ValueEqual(a.Elems[i], b2.Elems[i]) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

// Zero returns the init_Δ τ default value of a semantic type: false, 0,
// invalid headers with zeroed fields, etc.
func Zero(t types.Type) Value {
	switch t := t.(type) {
	case types.Bool:
		return BoolVal(false)
	case types.Int:
		return IntVal(0)
	case types.Bit:
		return BitVal{W: t.W}
	case types.Unit:
		return UnitVal{}
	case *types.Record:
		fs := make([]NamedValue, len(t.Fields))
		for i, f := range t.Fields {
			fs[i] = NamedValue{f.Name, Zero(f.Type.T)}
		}
		return &RecordVal{fs}
	case *types.Header:
		fs := make([]NamedValue, len(t.Fields))
		for i, f := range t.Fields {
			fs[i] = NamedValue{f.Name, Zero(f.Type.T)}
		}
		return &HeaderVal{Valid: true, Fields: fs}
	case *types.Stack:
		es := make([]Value, t.Size)
		for i := range es {
			es[i] = Zero(t.Elem.T)
		}
		return &StackVal{es}
	case *types.MatchKind:
		if len(t.Members) > 0 {
			return MatchKindVal(t.Members[0])
		}
		return MatchKindVal("exact")
	default:
		return UnitVal{}
	}
}

// Random returns a uniformly random value of type t (headers are valid).
// Used by the non-interference harness.
func Random(t types.Type, r *rand.Rand) Value {
	return RandomFrom(t, r)
}

// ---------------------------------------------------------------------------
// Store and environment

// Loc is a store location.
type Loc int

// Store is the memory store μ.
type Store struct {
	m    map[Loc]Value
	next Loc
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{m: map[Loc]Value{}} }

// Alloc places v at a fresh location.
func (s *Store) Alloc(v Value) Loc {
	l := s.next
	s.next++
	s.m[l] = v
	return l
}

// Get reads a location; it panics on a dangling location (an interpreter
// bug, not a program error).
func (s *Store) Get(l Loc) Value {
	v, ok := s.m[l]
	if !ok {
		panic(fmt.Sprintf("eval: dangling location %d", l))
	}
	return v
}

// Set overwrites a location.
func (s *Store) Set(l Loc, v Value) {
	if _, ok := s.m[l]; !ok {
		panic(fmt.Sprintf("eval: write to unallocated location %d", l))
	}
	s.m[l] = v
}

// Len returns the number of allocated locations.
func (s *Store) Len() int { return len(s.m) }

// Env is the environment ε mapping names to locations, with lexical
// scoping.
type Env struct {
	parent *Env
	names  map[string]Loc
}

// NewEnv returns an empty top-level environment.
func NewEnv() *Env { return &Env{names: map[string]Loc{}} }

// Child returns a nested scope.
func (e *Env) Child() *Env { return &Env{parent: e, names: map[string]Loc{}} }

// Bind binds name to a location in the current scope.
func (e *Env) Bind(name string, l Loc) { e.names[name] = l }

// Lookup resolves name through the scope chain.
func (e *Env) Lookup(name string) (Loc, bool) {
	for s := e; s != nil; s = s.parent {
		if l, ok := s.names[name]; ok {
			return l, true
		}
	}
	return 0, false
}

// Names returns all visible names, innermost shadowing outer, sorted.
func (e *Env) Names() []string {
	seen := map[string]bool{}
	for s := e; s != nil; s = s.parent {
		for n := range s.names {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
