package eval

import (
	"math/rand"
	"testing"
)

// TestBatchRandMatchesMathRand proves BatchRand produces the bit-identical
// stream to rand.New(rand.NewSource(seed)) under an adversarial interleaving
// of every method the NI harness draws through. Recorded corpus findings
// and replay gates classify by values derived from this stream, so exact
// equality is required, not just distributional equivalence.
func TestBatchRandMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		ref := rand.New(rand.NewSource(seed))
		got := NewBatchRand(seed)
		pick := rand.New(rand.NewSource(seed ^ 0x9E3779B9))
		for i := 0; i < 20000; i++ {
			switch pick.Intn(6) {
			case 0:
				if a, b := ref.Uint64(), got.Uint64(); a != b {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, a, b)
				}
			case 1:
				if a, b := ref.Int63(), got.Int63(); a != b {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, a, b)
				}
			case 2:
				n := int64(pick.Intn(1<<24) + 1)
				if a, b := ref.Int63n(n), got.Int63n(n); a != b {
					t.Fatalf("seed %d draw %d: Int63n(%d) %d != %d", seed, i, n, a, b)
				}
			case 3:
				n := int32(pick.Intn(1<<20) + 1)
				if a, b := ref.Int31n(n), got.Int31n(n); a != b {
					t.Fatalf("seed %d draw %d: Int31n(%d) %d != %d", seed, i, n, a, b)
				}
			case 4:
				n := pick.Intn(257) + 1 // crosses the power-of-two fast path
				if a, b := ref.Intn(n), got.Intn(n); a != b {
					t.Fatalf("seed %d draw %d: Intn(%d) %d != %d", seed, i, n, a, b)
				}
			default:
				// The Int63n(1<<20) draw Random uses for Int fields.
				if a, b := ref.Int63n(1<<20), got.Int63n(1<<20); a != b {
					t.Fatalf("seed %d draw %d: Int63n(2^20) %d != %d", seed, i, a, b)
				}
			}
		}
	}
}
