package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lattice"
	"repro/internal/types"
)

func low(t *testing.T) lattice.Label {
	t.Helper()
	l, _ := lattice.TwoPoint().Lookup("low")
	return l
}

func sampleTypes(t *testing.T) []types.Type {
	lo := low(t)
	return []types.Type{
		types.Bool{},
		types.Int{},
		types.Bit{W: 1},
		types.Bit{W: 8},
		types.Bit{W: 64},
		types.Unit{},
		&types.MatchKind{Members: []string{"exact", "lpm"}},
		&types.Header{Fields: []types.Field{
			{Name: "a", Type: types.SecType{T: types.Bit{W: 8}, L: lo}},
			{Name: "b", Type: types.SecType{T: types.Bool{}, L: lo}},
		}},
		&types.Record{Fields: []types.Field{
			{Name: "x", Type: types.SecType{T: types.Bit{W: 4}, L: lo}},
		}},
		&types.Stack{Elem: types.SecType{T: types.Bit{W: 8}, L: lo}, Size: 3},
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		w    int
		v    uint64
		want uint64
	}{
		{8, 0xFFF, 0xFF},
		{8, 0x7F, 0x7F},
		{1, 3, 1},
		{64, ^uint64(0), ^uint64(0)},
		{32, 1 << 40, 0},
	}
	for _, c := range cases {
		if got := Mask(c.w, c.v); got != c.want {
			t.Errorf("Mask(%d, %#x) = %#x, want %#x", c.w, c.v, got, c.want)
		}
	}
}

func TestNewBitAlwaysMasked(t *testing.T) {
	f := func(w8 uint8, v uint64) bool {
		w := int(w8%64) + 1
		b := NewBit(w, v)
		return b.V == Mask(w, b.V)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroMatchesType(t *testing.T) {
	for _, typ := range sampleTypes(t) {
		v := Zero(typ)
		checkShape(t, v, typ)
	}
}

func TestRandomMatchesType(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, typ := range sampleTypes(t) {
		for i := 0; i < 20; i++ {
			checkShape(t, Random(typ, r), typ)
		}
	}
}

func checkShape(t *testing.T, v Value, typ types.Type) {
	t.Helper()
	switch typ := typ.(type) {
	case types.Bool:
		if _, ok := v.(BoolVal); !ok {
			t.Errorf("value of %s is %T", typ, v)
		}
	case types.Int:
		if _, ok := v.(IntVal); !ok {
			t.Errorf("value of %s is %T", typ, v)
		}
	case types.Bit:
		b, ok := v.(BitVal)
		if !ok || b.W != typ.W || b.V != Mask(typ.W, b.V) {
			t.Errorf("value of %s is %v", typ, v)
		}
	case types.Unit:
		if _, ok := v.(UnitVal); !ok {
			t.Errorf("value of %s is %T", typ, v)
		}
	case *types.MatchKind:
		if _, ok := v.(MatchKindVal); !ok {
			t.Errorf("value of %s is %T", typ, v)
		}
	case *types.Header:
		h, ok := v.(*HeaderVal)
		if !ok || len(h.Fields) != len(typ.Fields) {
			t.Fatalf("value of %s is %v", typ, v)
		}
		for i, f := range typ.Fields {
			if h.Fields[i].Name != f.Name {
				t.Errorf("field %d name %s, want %s", i, h.Fields[i].Name, f.Name)
			}
			checkShape(t, h.Fields[i].Val, f.Type.T)
		}
	case *types.Record:
		r, ok := v.(*RecordVal)
		if !ok || len(r.Fields) != len(typ.Fields) {
			t.Fatalf("value of %s is %v", typ, v)
		}
		for i, f := range typ.Fields {
			checkShape(t, r.Fields[i].Val, f.Type.T)
		}
	case *types.Stack:
		s, ok := v.(*StackVal)
		if !ok || len(s.Elems) != typ.Size {
			t.Fatalf("value of %s is %v", typ, v)
		}
		for _, e := range s.Elems {
			checkShape(t, e, typ.Elem.T)
		}
	}
}

func TestValueEqualReflexiveOnRandom(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, typ := range sampleTypes(t) {
		for i := 0; i < 10; i++ {
			v := Random(typ, r)
			if !ValueEqual(v, v) {
				t.Errorf("value %s not equal to itself", v)
			}
			if !ValueEqual(v, Copy(v)) {
				t.Errorf("copy of %s compares unequal", v)
			}
		}
	}
}

func TestValueEqualDistinguishes(t *testing.T) {
	if ValueEqual(BoolVal(true), BoolVal(false)) {
		t.Error("true == false")
	}
	if ValueEqual(NewBit(8, 1), NewBit(8, 2)) {
		t.Error("1 == 2")
	}
	if ValueEqual(NewBit(8, 1), NewBit(16, 1)) {
		t.Error("8w1 == 16w1 (widths differ)")
	}
	if ValueEqual(NewBit(8, 1), IntVal(1)) {
		t.Error("bit == int")
	}
	h1 := &HeaderVal{Valid: true, Fields: []NamedValue{{Name: "a", Val: NewBit(8, 1)}}}
	h2 := &HeaderVal{Valid: false, Fields: []NamedValue{{Name: "a", Val: NewBit(8, 1)}}}
	if ValueEqual(h1, h2) {
		t.Error("validity bit ignored")
	}
}

func TestCopyIsDeep(t *testing.T) {
	orig := &RecordVal{Fields: []NamedValue{
		{Name: "h", Val: &HeaderVal{Valid: true, Fields: []NamedValue{
			{Name: "x", Val: NewBit(8, 1)},
		}}},
		{Name: "s", Val: &StackVal{Elems: []Value{NewBit(8, 9)}}},
	}}
	cp := Copy(orig).(*RecordVal)
	// Mutate the copy's nested header.
	cp.Fields[0].Val.(*HeaderVal).Fields[0].Val = NewBit(8, 99)
	cp.Fields[1].Val.(*StackVal).Elems[0] = NewBit(8, 42)
	if got := orig.Fields[0].Val.(*HeaderVal).Fields[0].Val; !ValueEqual(got, NewBit(8, 1)) {
		t.Errorf("original header mutated through copy: %s", got)
	}
	if got := orig.Fields[1].Val.(*StackVal).Elems[0]; !ValueEqual(got, NewBit(8, 9)) {
		t.Errorf("original stack mutated through copy: %s", got)
	}
}

func TestStoreAllocGetSet(t *testing.T) {
	s := NewStore()
	l1 := s.Alloc(NewBit(8, 1))
	l2 := s.Alloc(NewBit(8, 2))
	if l1 == l2 {
		t.Fatal("allocations share a location")
	}
	if !ValueEqual(s.Get(l1), NewBit(8, 1)) {
		t.Error("Get(l1) wrong")
	}
	s.Set(l1, NewBit(8, 7))
	if !ValueEqual(s.Get(l1), NewBit(8, 7)) {
		t.Error("Set did not take")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStorePanicsOnDangling(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Get on dangling location did not panic")
		}
	}()
	NewStore().Get(42)
}

func TestEnvScopes(t *testing.T) {
	e := NewEnv()
	e.Bind("x", 1)
	c := e.Child()
	c.Bind("y", 2)
	c.Bind("x", 3) // shadow
	if l, _ := c.Lookup("x"); l != 3 {
		t.Errorf("shadowed x = %d", l)
	}
	if l, _ := e.Lookup("x"); l != 1 {
		t.Errorf("parent x = %d", l)
	}
	if _, ok := e.Lookup("y"); ok {
		t.Error("parent sees child binding")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("Names = %v", names)
	}
}

func TestValueStrings(t *testing.T) {
	cases := map[string]string{
		BoolVal(true).String():       "true",
		IntVal(-5).String():          "-5",
		NewBit(8, 255).String():      "8w255",
		(UnitVal{}).String():         "()",
		MatchKindVal("lpm").String(): "lpm",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("rendered %q, want %q", got, want)
		}
	}
	h := &HeaderVal{Valid: true, Fields: []NamedValue{{Name: "a", Val: NewBit(4, 2)}}}
	if h.String() != "header{valid = true, a = 4w2}" {
		t.Errorf("header rendered %q", h.String())
	}
}
