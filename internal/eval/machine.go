// Machine is the runtime for compiled programs: flat value frames addressed
// by (region, slot), a frame pool for calls, and scratch stacks for l-value
// indices and copy-out writebacks. One Machine is single-threaded state; the
// Compiled program it runs is immutable and shared.
package eval

import (
	"errors"
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/token"
	"repro/internal/types"
)

// Machine executes a Compiled program against a control plane. It is
// reusable across runs: Reset restores register state, and the control
// frame and call frames are pooled, so steady-state execution allocates
// only the values the program itself constructs.
type Machine struct {
	code *Compiled
	cp   *controlplane.ControlPlane

	globals []Value // working copy of the global template
	regs    []Value // persistent register storage (survives runs until Reset)
	ctrl    []Value // the running control's frame
	cur     []Value // the innermost call frame (== ctrl outside calls)

	ctrlBuf   []Value   // reusable control-frame backing store
	framePool [][]Value // reusable call frames

	idxs []int // evaluated l-value indices, stack-disciplined
	wbs  []mwb // pending copy-out writebacks, stack-disciplined

	fuel  int
	depth int
}

// mwb is a pending copy-out writeback: the destination l-value, the window
// of its evaluated indices in m.idxs, and the callee frame slot to copy
// from.
type mwb struct {
	lv      *cLValue
	idxBase int
	frame   []Value
	slot    int
}

// NewMachine prepares a machine for code. The control plane may be nil (all
// table applies miss); tables the program declares are registered with it,
// mirroring New.
func NewMachine(code *Compiled, cp *controlplane.ControlPlane) *Machine {
	if cp == nil {
		cp = controlplane.New()
	}
	m := &Machine{code: code, cp: cp}
	m.declareTables()
	m.globals = make([]Value, len(code.globals))
	m.regs = make([]Value, len(code.regZero))
	m.Reset()
	return m
}

func (m *Machine) declareTables() {
	for _, t := range m.code.tables {
		if m.cp.Table(t.name) == nil {
			m.cp.DeclareTable(t.name, t.kinds)
		}
	}
}

// Reset restores the machine to its just-constructed state: globals from
// the compile-time template, registers zeroed. Equivalent to running on a
// fresh interpreter.
func (m *Machine) Reset() {
	copy(m.globals, m.code.globals)
	for i, z := range m.code.regZero {
		m.regs[i] = Copy(z)
	}
	m.depth = 0
	m.idxs = m.idxs[:0]
	m.wbs = m.wbs[:0]
}

// ControlPlane returns the machine's control plane.
func (m *Machine) ControlPlane() *controlplane.ControlPlane { return m.cp }

// SetControlPlane swaps the control plane (declaring any missing tables).
func (m *Machine) SetControlPlane(cp *controlplane.ControlPlane) {
	if cp == nil {
		cp = controlplane.New()
	}
	m.cp = cp
	m.declareTables()
}

func (m *Machine) get(r varRef) Value {
	switch r.region {
	case rGlobal:
		return m.globals[r.slot]
	case rCtrl:
		return m.ctrl[r.slot]
	case rLocal:
		return m.cur[r.slot]
	default:
		return m.regs[r.slot]
	}
}

func (m *Machine) set(r varRef, v Value) {
	switch r.region {
	case rGlobal:
		m.globals[r.slot] = v
	case rCtrl:
		m.ctrl[r.slot] = v
	case rLocal:
		m.cur[r.slot] = v
	default:
		m.regs[r.slot] = v
	}
}

// RunControl executes the named control block ("" = the first control),
// mirroring Interp.RunControl: missing inputs get zero values, outputs are
// deep copies of the final parameter values.
func (m *Machine) RunControl(name string, inputs map[string]Value) (map[string]Value, Signal, error) {
	idx := m.code.ControlIndex(name)
	if idx < 0 {
		return nil, Signal{}, fmt.Errorf("eval: no control %q", name)
	}
	c := m.code.controls[idx]
	frame := m.controlFrame(c)
	for i, p := range c.params {
		if given, ok := inputs[p.name]; ok {
			frame[i] = Copy(given)
		} else {
			frame[i] = Zero(p.st.T)
		}
	}
	sig, err := m.run(c, frame)
	if err != nil {
		return nil, sig, err
	}
	out := map[string]Value{}
	for i, p := range c.params {
		out[p.name] = Copy(frame[i])
	}
	return out, sig, nil
}

// RunIndexed executes control idx with pre-positioned argument values: one
// per declared parameter, in declaration order. The argument values are
// installed without copying and the machine takes ownership of their
// container nodes — it may mutate them in place during the run, so the
// caller must pass freshly built trees (sharing immutable scalar leaves is
// fine) and must not reuse them afterwards. The returned slice aliases the
// control frame — it is valid only until the machine's next run. This is
// the NI hot path.
func (m *Machine) RunIndexed(idx int, args []Value) ([]Value, Signal, error) {
	c := m.code.controls[idx]
	if len(args) != len(c.params) {
		return nil, Signal{}, fmt.Errorf("eval: control %s takes %d parameters, got %d",
			c.name, len(c.params), len(args))
	}
	frame := m.controlFrame(c)
	copy(frame, args)
	sig, err := m.run(c, frame)
	if err != nil {
		return nil, sig, err
	}
	return frame[:len(c.params)], sig, nil
}

// controlFrame returns the reusable control-frame buffer sized for c.
func (m *Machine) controlFrame(c *cControl) []Value {
	if cap(m.ctrlBuf) < c.frameSize {
		m.ctrlBuf = make([]Value, c.frameSize)
	}
	return m.ctrlBuf[:c.frameSize]
}

// run executes a control whose parameter slots are already populated.
func (m *Machine) run(c *cControl, frame []Value) (Signal, error) {
	m.fuel = DefaultFuel
	m.ctrl, m.cur = frame, frame
	for _, p := range c.prologue {
		if err := p(m); err != nil {
			return Signal{}, err
		}
	}
	sig, err := runBody(m, c.body)
	if err != nil {
		return Signal{}, err
	}
	return sig, nil
}

// runBody executes a statement sequence, mirroring evalBlock's signal
// handling.
func runBody(m *Machine, body []cStmt) (Signal, error) {
	for _, s := range body {
		sig, err := s(m)
		if err != nil {
			return Signal{}, err
		}
		if sig.Kind != SigCont {
			return sig, nil
		}
	}
	return Signal{Kind: SigCont}, nil
}

func (m *Machine) getFrame(n int) []Value {
	if last := len(m.framePool) - 1; last >= 0 {
		f := m.framePool[last]
		m.framePool = m.framePool[:last]
		if cap(f) >= n {
			return f[:n]
		}
	}
	return make([]Value, n)
}

func (m *Machine) putFrame(f []Value) { m.framePool = append(m.framePool, f) }

// ---------------------------------------------------------------------------
// Calls (Appendix H: copy-in / copy-out)

// invoke calls a closure or builtin. args are the syntactic arguments
// (evaluated in the caller's frame context); extra are pre-evaluated
// control-plane values appended after them, each bound as-is (the
// interpreter's argSpec.val path).
func (m *Machine) invoke(pos string, fv Value, args []*cArg, extra []Value) (Value, Signal, error) {
	clos, ok := fv.(*cClos)
	if !ok {
		if b, ok := fv.(BuiltinVal); ok {
			return m.invokeBuiltin(pos, b, args, extra)
		}
		return nil, Signal{}, fmt.Errorf("%s: %s is not callable", pos, fv)
	}
	if m.depth >= MaxCallDepth {
		return nil, Signal{}, fmt.Errorf("%s: call depth exceeds %d (recursion is not allowed in Core P4)", pos, MaxCallDepth)
	}
	m.depth++
	defer func() { m.depth-- }()
	if len(args)+len(extra) != len(clos.fn.Params) {
		return nil, Signal{}, fmt.Errorf("%s: %s takes %d arguments, got %d",
			pos, clos.name, len(clos.fn.Params), len(args)+len(extra))
	}
	idxBase0 := len(m.idxs)
	wbBase := len(m.wbs)
	frame := m.getFrame(clos.frameSize)
	fail := func(err error) (Value, Signal, error) {
		m.idxs = m.idxs[:idxBase0]
		m.wbs = m.wbs[:wbBase]
		m.putFrame(frame)
		return nil, Signal{}, err
	}
	// Copy-in, evaluated in the caller's frame context (m.cur unchanged).
	for i, p := range clos.fn.Params {
		if i >= len(args) {
			frame[i] = coerceValue(extra[i-len(args)], p.Type.T)
			continue
		}
		a := args[i]
		switch p.Dir {
		case types.In:
			v, err := a.expr(m)
			if err != nil {
				return fail(err)
			}
			frame[i] = Copy(coerceValue(v, p.Type.T))
		case types.Out:
			if a.lv == nil {
				return fail(errors.New(a.lvErr))
			}
			ib, err := a.lv.evalIdx(m)
			if err != nil {
				return fail(err)
			}
			frame[i] = Copy(clos.zeros[i])
			m.wbs = append(m.wbs, mwb{lv: a.lv, idxBase: ib, frame: frame, slot: i})
		default: // inout
			if a.lv == nil {
				return fail(errors.New(a.lvErr))
			}
			ib, err := a.lv.evalIdx(m)
			if err != nil {
				return fail(err)
			}
			v, err := a.lv.read(m, ib)
			if err != nil {
				return fail(err)
			}
			frame[i] = coerceValue(v, p.Type.T)
			m.wbs = append(m.wbs, mwb{lv: a.lv, idxBase: ib, frame: frame, slot: i})
		}
	}
	savedCur := m.cur
	m.cur = frame
	sig, err := runBody(m, clos.body)
	m.cur = savedCur
	if err != nil {
		return fail(err)
	}
	// Copy out (also on exit), against the caller's frames.
	for _, wb := range m.wbs[wbBase:] {
		if err := wb.lv.write(m, wb.idxBase, wb.frame[wb.slot]); err != nil {
			return fail(err)
		}
	}
	m.idxs = m.idxs[:idxBase0]
	m.wbs = m.wbs[:wbBase]
	m.putFrame(frame)
	switch sig.Kind {
	case SigReturn:
		return sig.Val, Signal{Kind: SigCont}, nil
	case SigExit:
		return UnitVal{}, sig, nil
	default:
		return UnitVal{}, Signal{Kind: SigCont}, nil
	}
}

func (m *Machine) invokeBuiltin(pos string, b BuiltinVal, args []*cArg, extra []Value) (Value, Signal, error) {
	switch string(b) {
	case "NoAction":
		return UnitVal{}, Signal{Kind: SigCont}, nil
	case "mark_to_drop":
		if len(args) != 1 || len(extra) != 0 {
			return nil, Signal{}, fmt.Errorf("%s: mark_to_drop takes one inout argument", pos)
		}
		a := args[0]
		if a.lv == nil {
			return nil, Signal{}, errors.New(a.lvErr)
		}
		ib, err := a.lv.evalIdx(m)
		if err != nil {
			return nil, Signal{}, err
		}
		v, err := a.lv.read(m, ib)
		if err != nil {
			m.idxs = m.idxs[:ib]
			return nil, Signal{}, err
		}
		rec, ok := v.(*RecordVal)
		if !ok {
			m.idxs = m.idxs[:ib]
			return nil, Signal{}, fmt.Errorf("%s: mark_to_drop argument is %s, not standard metadata", pos, v)
		}
		fs := make([]NamedValue, len(rec.Fields))
		copy(fs, rec.Fields)
		if f := fieldSlot(fs, "egress_spec"); f != nil {
			if bv, ok := f.Val.(BitVal); ok {
				f.Val = NewBit(bv.W, Mask(bv.W, ^uint64(0))) // drop port: all ones
			}
		}
		if f := fieldSlot(fs, "drop_flag"); f != nil {
			if bv, ok := f.Val.(BitVal); ok {
				f.Val = NewBit(bv.W, 1)
			}
		}
		err = a.lv.write(m, ib, &RecordVal{fs})
		m.idxs = m.idxs[:ib]
		if err != nil {
			return nil, Signal{}, err
		}
		return UnitVal{}, Signal{Kind: SigCont}, nil
	default:
		return nil, Signal{}, fmt.Errorf("%s: unknown builtin %s", pos, b)
	}
}

// ---------------------------------------------------------------------------
// Table application

// applyTable mirrors Interp.applyTable over a compiled table.
func (m *Machine) applyTable(pos string, tv *cTable) (Signal, error) {
	var kbuf [8]uint64
	keys := kbuf[:0]
	for i, k := range tv.keys {
		kv, err := k(m)
		if err != nil {
			return Signal{}, err
		}
		u, err := scalarToUint(kv)
		if err != nil {
			return Signal{}, fmt.Errorf("%s: table %s key %d: %v", pos, tv.name, i, err)
		}
		keys = append(keys, u)
	}
	call, ok := m.cp.Lookup(tv.name, keys)
	if !ok {
		if tv.missCall == nil {
			return Signal{Kind: SigCont}, nil
		}
		call = tv.missCall
	}
	var ref *cActRef
	for i := range tv.actions {
		if tv.actions[i].name == call.Action {
			ref = &tv.actions[i]
			break
		}
	}
	if ref == nil && tv.deflt != nil && tv.defltName == call.Action {
		ref = tv.deflt
	}
	if ref == nil {
		return Signal{}, fmt.Errorf("%s: control plane selected action %q not declared by table %s",
			pos, call.Action, tv.name)
	}
	if !ref.resolved {
		return Signal{}, fmt.Errorf("%s: action %q not in scope of table %s", pos, ref.name, tv.name)
	}
	av := m.get(ref.ref)
	var extra []Value
	if clos, ok := av.(*cClos); ok {
		bound := len(ref.args)
		need := len(clos.fn.Params) - bound
		if need < 0 || len(call.Args) < need {
			return Signal{}, fmt.Errorf("%s: control plane supplied %d args for %s, need %d",
				pos, len(call.Args), ref.name, need)
		}
		if need > 0 {
			extra = make([]Value, need)
			for i := 0; i < need; i++ {
				p := clos.fn.Params[bound+i]
				extra[i] = uintToScalar(call.Args[i], p.Type.T)
			}
		}
	}
	_, sig, err := m.invoke(pos, av, ref.args, extra)
	if err != nil {
		return Signal{}, err
	}
	if sig.Kind == SigExit {
		return sig, nil
	}
	return Signal{Kind: SigCont}, nil
}

// ---------------------------------------------------------------------------
// Compiled l-values

// evalIdx evaluates the l-value's index expressions onto m.idxs, returning
// the base offset of its window. The caller truncates m.idxs back when the
// l-value is done (assignments immediately; call writebacks after copy-out).
func (lv *cLValue) evalIdx(m *Machine) (int, error) {
	base := len(m.idxs)
	for i := range lv.path {
		acc := &lv.path[i]
		if acc.idx == nil {
			continue
		}
		iv, err := acc.idx(m)
		if err != nil {
			m.idxs = m.idxs[:base]
			return base, err
		}
		n, err := toIndex(iv)
		if err != nil {
			m.idxs = m.idxs[:base]
			return base, errors.New(acc.idxPos + err.Error())
		}
		m.idxs = append(m.idxs, n)
	}
	return base, nil
}

// read mirrors readLValue: project along the path and return a deep copy.
func (lv *cLValue) read(m *Machine, idxBase int) (Value, error) {
	if lv.baseErr != "" {
		return nil, errors.New(lv.baseErr)
	}
	v := m.get(lv.ref)
	k := idxBase
	for i := range lv.path {
		acc := &lv.path[i]
		var err error
		if acc.idx == nil {
			v, err = project(v, accessor{field: acc.field})
		} else {
			v, err = project(v, accessor{index: m.idxs[k]})
			k++
		}
		if err != nil {
			return nil, errors.New(lv.pos + err.Error())
		}
	}
	return Copy(v), nil
}

// write mirrors writeLValue's observable behavior. Globals update
// functionally (their root trees alias the Compiled template shared by
// every machine); everything else mutates the slot's tree in place, which
// is safe because slot trees are private to their slot: every leaf store
// deep-copies composites (storeValue), every init and copy-in copies, and
// RunIndexed callers transfer ownership of the argument trees.
func (lv *cLValue) write(m *Machine, idxBase int, nv Value) error {
	if lv.baseErr != "" {
		return errors.New(lv.baseErr)
	}
	if len(lv.path) == 0 || lv.ref.region == rGlobal {
		old := m.get(lv.ref)
		updated, err := lv.update(m, old, 0, idxBase, nv)
		if err != nil {
			return errors.New(lv.pos + err.Error())
		}
		m.set(lv.ref, updated)
		return nil
	}
	v := m.get(lv.ref)
	k := idxBase
	for pi := range lv.path {
		acc := &lv.path[pi]
		last := pi == len(lv.path)-1
		if acc.idx == nil {
			var slot *NamedValue
			switch vv := v.(type) {
			case *RecordVal:
				slot = fieldSlot(vv.Fields, acc.field)
			case *HeaderVal:
				slot = fieldSlot(vv.Fields, acc.field)
			}
			if slot == nil {
				return errors.New(lv.pos + fmt.Sprintf("value %s has no field %q", v, acc.field))
			}
			if last {
				slot.Val = storeValue(slot.Val, nv)
				return nil
			}
			v = slot.Val
			continue
		}
		st, ok := v.(*StackVal)
		if !ok {
			return errors.New(lv.pos + fmt.Sprintf("value %s is not indexable", v))
		}
		idx := m.idxs[k]
		k++
		if idx < 0 || idx >= len(st.Elems) {
			return nil // out-of-bounds write: havoc, dropped
		}
		if last {
			st.Elems[idx] = storeValue(st.Elems[idx], nv)
			return nil
		}
		v = st.Elems[idx]
	}
	return nil
}

// own returns a value safe to install as a slot root: composites are
// deep-copied (they may alias another slot's tree), immutable scalars,
// closures, and tables pass through.
func own(v Value) Value {
	switch v.(type) {
	case *RecordVal, *HeaderVal, *StackVal:
		return Copy(v)
	default:
		return v
	}
}

// storeValue is the leaf store: bit writes adapt to the destination's
// declared width (mirroring updateAlong), and composites are deep-copied
// so slot trees never share structure.
func storeValue(old, nv Value) Value {
	if bv, ok := old.(BitVal); ok {
		if iv, ok2 := nv.(IntVal); ok2 {
			return boxBit(bv.W, uint64(iv))
		}
		if b2, ok2 := nv.(BitVal); ok2 {
			return boxBit(bv.W, b2.V)
		}
	}
	return Copy(nv)
}

// update is updateAlong over the compiled path; pi walks the accessors and
// k walks the evaluated-index window.
func (lv *cLValue) update(m *Machine, v Value, pi, k int, nv Value) (Value, error) {
	if pi == len(lv.path) {
		if bv, ok := v.(BitVal); ok {
			if iv, ok2 := nv.(IntVal); ok2 {
				return boxBit(bv.W, uint64(iv)), nil
			}
			if b2, ok2 := nv.(BitVal); ok2 {
				return boxBit(bv.W, b2.V), nil
			}
		}
		return Copy(nv), nil
	}
	acc := &lv.path[pi]
	if acc.idx == nil {
		switch v := v.(type) {
		case *RecordVal:
			fs := make([]NamedValue, len(v.Fields))
			copy(fs, v.Fields)
			slot := fieldSlot(fs, acc.field)
			if slot == nil {
				return nil, fmt.Errorf("value %s has no field %q", v, acc.field)
			}
			inner, err := lv.update(m, slot.Val, pi+1, k, nv)
			if err != nil {
				return nil, err
			}
			slot.Val = inner
			return &RecordVal{fs}, nil
		case *HeaderVal:
			fs := make([]NamedValue, len(v.Fields))
			copy(fs, v.Fields)
			slot := fieldSlot(fs, acc.field)
			if slot == nil {
				return nil, fmt.Errorf("value %s has no field %q", v, acc.field)
			}
			inner, err := lv.update(m, slot.Val, pi+1, k, nv)
			if err != nil {
				return nil, err
			}
			slot.Val = inner
			return &HeaderVal{v.Valid, fs}, nil
		default:
			return nil, fmt.Errorf("value %s has no field %q", v, acc.field)
		}
	}
	st, ok := v.(*StackVal)
	if !ok {
		return nil, fmt.Errorf("value %s is not indexable", v)
	}
	idx := m.idxs[k]
	if idx < 0 || idx >= len(st.Elems) {
		return v, nil // out-of-bounds write: havoc, dropped
	}
	es := make([]Value, len(st.Elems))
	copy(es, st.Elems)
	inner, err := lv.update(m, es[idx], pi+1, k+1, nv)
	if err != nil {
		return nil, err
	}
	es[idx] = inner
	return &StackVal{es}, nil
}

// ---------------------------------------------------------------------------
// Arithmetic, mirroring evalIntOp/evalBitOp with precomputed position
// prefixes (errors are cold; results are boxed through the BitVal cache).

func intOp(op token.Kind, prefix, opStr string, a, b int64) (Value, error) {
	switch op {
	case token.PLUS:
		return IntVal(a + b), nil
	case token.MINUS:
		return IntVal(a - b), nil
	case token.STAR:
		return IntVal(a * b), nil
	case token.SLASH:
		if b == 0 {
			return nil, errors.New(prefix + "division by zero")
		}
		return IntVal(a / b), nil
	case token.PERCENT:
		if b == 0 {
			return nil, errors.New(prefix + "modulo by zero")
		}
		return IntVal(a % b), nil
	case token.LT:
		return BoolVal(a < b), nil
	case token.GT:
		return BoolVal(a > b), nil
	case token.LEQ:
		return BoolVal(a <= b), nil
	case token.GEQ:
		return BoolVal(a >= b), nil
	case token.SHL:
		return IntVal(a << uint(b&63)), nil
	case token.SHR:
		return IntVal(a >> uint(b&63)), nil
	default:
		return nil, errors.New(prefix + "operator " + opStr + " undefined on int")
	}
}

func bitOp(op token.Kind, prefix, opStr string, a, b BitVal) (Value, error) {
	w := a.W
	switch op {
	case token.PLUS:
		return boxBit(w, a.V+b.V), nil
	case token.MINUS:
		return boxBit(w, a.V-b.V), nil
	case token.STAR:
		return boxBit(w, a.V*b.V), nil
	case token.SLASH:
		if b.V == 0 {
			return nil, errors.New(prefix + "division by zero")
		}
		return boxBit(w, a.V/b.V), nil
	case token.PERCENT:
		if b.V == 0 {
			return nil, errors.New(prefix + "modulo by zero")
		}
		return boxBit(w, a.V%b.V), nil
	case token.LT:
		return BoolVal(a.V < b.V), nil
	case token.GT:
		return BoolVal(a.V > b.V), nil
	case token.LEQ:
		return BoolVal(a.V <= b.V), nil
	case token.GEQ:
		return BoolVal(a.V >= b.V), nil
	case token.AMP:
		return boxBit(w, a.V&b.V), nil
	case token.PIPE:
		return boxBit(w, a.V|b.V), nil
	case token.CARET:
		return boxBit(w, a.V^b.V), nil
	case token.SHL:
		if b.V >= uint64(w) {
			return boxBit(w, 0), nil
		}
		return boxBit(w, a.V<<b.V), nil
	case token.SHR:
		if b.V >= uint64(w) {
			return boxBit(w, 0), nil
		}
		return boxBit(w, a.V>>b.V), nil
	default:
		return nil, fmt.Errorf("%soperator %s undefined on bit<%d>", prefix, opStr, w)
	}
}
