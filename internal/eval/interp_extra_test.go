package eval_test

import (
	"strings"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/eval"
	"repro/internal/parser"
)

func TestExitPropagatesThroughAction(t *testing.T) {
	out, sig := run(t, `
header h_t { <bit<8>, low> a; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action bail() {
        hdr.h.a = 1;
        exit;
    }
    apply {
        bail();
        hdr.h.a = 2;
    }
}
`, nil, nil)
	if sig.Kind != eval.SigExit {
		t.Fatalf("signal = %s, want exit to propagate out of the action", sig)
	}
	if got := field(t, out["hdr"], "h", "a"); !eval.ValueEqual(got, eval.NewBit(8, 1)) {
		t.Errorf("a = %s, want 1 (write before exit persists, after-exit skipped)", got)
	}
}

func TestExitPropagatesThroughTable(t *testing.T) {
	src := `
header h_t { <bit<8>, low> k; <bit<8>, low> a; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action bail() { exit; }
    table tb {
        key = { hdr.h.k: exact; }
        actions = { bail; NoAction; }
        default_action = NoAction;
    }
    apply {
        tb.apply();
        hdr.h.a = 9;
    }
}
`
	cp := controlplane.New()
	cp.DeclareTable("tb", []string{"exact"})
	if err := cp.Install("tb", controlplane.Entry{
		Patterns: []controlplane.Pattern{controlplane.Exact(8, 0)},
		Action:   "bail",
	}); err != nil {
		t.Fatal(err)
	}
	out, sig := run(t, src, cp, nil) // k defaults to 0 -> hits bail
	if sig.Kind != eval.SigExit {
		t.Fatalf("signal = %s, want exit", sig)
	}
	if got := field(t, out["hdr"], "h", "a"); !eval.ValueEqual(got, eval.NewBit(8, 0)) {
		t.Errorf("a = %s, want 0 (statement after exiting table skipped)", got)
	}
}

func TestWholeHeaderAssignment(t *testing.T) {
	out, _ := run(t, `
header pair_t { <bit<8>, low> x; <bit<8>, low> y; }
struct headers { pair_t a; pair_t b; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.a.x = 3;
        hdr.a.y = 4;
        hdr.b = hdr.a;
        hdr.a.x = 9;
    }
}
`, nil, nil)
	if got := field(t, out["hdr"], "b", "x"); !eval.ValueEqual(got, eval.NewBit(8, 3)) {
		t.Errorf("b.x = %s, want 3 (header copied by value)", got)
	}
	if got := field(t, out["hdr"], "a", "x"); !eval.ValueEqual(got, eval.NewBit(8, 9)) {
		t.Errorf("a.x = %s", got)
	}
}

func TestFunctionCallsFunction(t *testing.T) {
	out, _ := run(t, `
header h_t { <bit<8>, low> a; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    function <bit<8>, low> inc(in <bit<8>, low> x) {
        return x + 1;
    }
    function <bit<8>, low> inc2(in <bit<8>, low> x) {
        return inc(inc(x));
    }
    apply {
        hdr.h.a = inc2(40);
    }
}
`, nil, nil)
	if got := field(t, out["hdr"], "h", "a"); !eval.ValueEqual(got, eval.NewBit(8, 42)) {
		t.Errorf("a = %s, want 42", got)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	// (x != 0) && (10 / x > 1) must not divide by zero when x == 0.
	out, _ := run(t, `
header h_t { <bit<8>, low> x; <bool, low> b; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.h.x = 0;
        hdr.h.b = (hdr.h.x != 0) && ((10 / hdr.h.x) > 1);
    }
}
`, nil, nil)
	if got := field(t, out["hdr"], "h", "b"); !eval.ValueEqual(got, eval.BoolVal(false)) {
		t.Errorf("b = %s, want false via short circuit", got)
	}
}

func TestOutOfBoundsIndexIsHavocNotCrash(t *testing.T) {
	// Reads out of range return a havoc value; writes are dropped.
	out, sig := run(t, `
header h_t { <bit<8>, low> arr[2]; <bit<8>, low> x; <bit<8>, low> idx; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.h.idx = 7;
        hdr.h.arr[hdr.h.idx] = 5;
        hdr.h.x = 3;
    }
}
`, nil, nil)
	if sig.Kind != eval.SigCont {
		t.Fatalf("signal = %s", sig)
	}
	if got := field(t, out["hdr"], "h", "x"); !eval.ValueEqual(got, eval.NewBit(8, 3)) {
		t.Errorf("x = %s (program must continue after OOB write)", got)
	}
}

func TestUnaryOperators(t *testing.T) {
	out, _ := run(t, `
header h_t { <bit<8>, low> a; <bit<8>, low> b; <bool, low> f; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.h.a = ~8w0;
        hdr.h.b = -8w1;
        hdr.h.f = !(1 == 2);
    }
}
`, nil, nil)
	if got := field(t, out["hdr"], "h", "a"); !eval.ValueEqual(got, eval.NewBit(8, 255)) {
		t.Errorf("~0 = %s", got)
	}
	if got := field(t, out["hdr"], "h", "b"); !eval.ValueEqual(got, eval.NewBit(8, 255)) {
		t.Errorf("-1 = %s", got)
	}
	if got := field(t, out["hdr"], "h", "f"); !eval.ValueEqual(got, eval.BoolVal(true)) {
		t.Errorf("!(1==2) = %s", got)
	}
}

func TestShiftSemantics(t *testing.T) {
	out, _ := run(t, `
header h_t { <bit<8>, low> a; <bit<8>, low> b; <bit<8>, low> c; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.h.a = 8w1 << 3;
        hdr.h.b = 8w128 >> 7;
        hdr.h.c = 8w255 << 9;
    }
}
`, nil, nil)
	if got := field(t, out["hdr"], "h", "a"); !eval.ValueEqual(got, eval.NewBit(8, 8)) {
		t.Errorf("1<<3 = %s", got)
	}
	if got := field(t, out["hdr"], "h", "b"); !eval.ValueEqual(got, eval.NewBit(8, 1)) {
		t.Errorf("128>>7 = %s", got)
	}
	if got := field(t, out["hdr"], "h", "c"); !eval.ValueEqual(got, eval.NewBit(8, 0)) {
		t.Errorf("255<<9 = %s, want 0 (overshift)", got)
	}
}

func TestFuelExhaustion(t *testing.T) {
	// A pathological (non-P4) self-recursive function must hit the fuel
	// limit rather than hang. Core P4 forbids recursion; the interpreter's
	// closure environment actually makes self-reference unresolvable, so
	// this errors on the undeclared name instead — either way, it
	// terminates with an error.
	prog := parser.MustParse("t.p4", `
header h_t { <bit<8>, low> a; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    function <bit<8>, low> loop(in <bit<8>, low> x) {
        return loop(x);
    }
    apply { hdr.h.a = loop(1); }
}
`)
	in, err := eval.New(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = in.RunControl("", nil)
	if err == nil {
		t.Fatal("self-recursive program ran to completion")
	}
	if !strings.Contains(err.Error(), "fuel") && !strings.Contains(err.Error(), "depth") &&
		!strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunUnknownControl(t *testing.T) {
	prog := parser.MustParse("t.p4", simple(`hdr.h.a = 1;`))
	in, err := eval.New(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := in.RunControl("Ghost", nil); err == nil {
		t.Fatal("running an unknown control succeeded")
	}
	if _, err := in.ParamType("Main", "ghost"); err == nil {
		t.Fatal("ParamType on unknown parameter succeeded")
	}
}

func TestTernaryTableMatch(t *testing.T) {
	src := `
header h_t { <bit<8>, low> k; <bit<8>, low> r; }
struct headers { h_t h; }
control Main(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action mark(<bit<8>, low> v) { hdr.h.r = v; }
    table tb {
        key = { hdr.h.k: ternary; }
        actions = { mark; NoAction; }
        default_action = NoAction;
    }
    apply { tb.apply(); }
}
`
	cp := controlplane.New()
	cp.DeclareTable("tb", []string{"ternary"})
	// Match any key with the low nibble 0xA.
	if err := cp.Install("tb", controlplane.Entry{
		Patterns: []controlplane.Pattern{controlplane.Ternary(8, 0x0A, 0x0F)},
		Action:   "mark", Args: []uint64{1},
	}); err != nil {
		t.Fatal(err)
	}
	mk := func(k uint64) map[string]eval.Value {
		return map[string]eval.Value{"hdr": &eval.RecordVal{Fields: []eval.NamedValue{
			{Name: "h", Val: &eval.HeaderVal{Valid: true, Fields: []eval.NamedValue{
				{Name: "k", Val: eval.NewBit(8, k)},
				{Name: "r", Val: eval.NewBit(8, 0)},
			}}},
		}}}
	}
	out, _ := run(t, src, cp.Clone(), mk(0x3A))
	if got := field(t, out["hdr"], "h", "r"); !eval.ValueEqual(got, eval.NewBit(8, 1)) {
		t.Errorf("0x3A: r = %s, want 1", got)
	}
	out, _ = run(t, src, cp.Clone(), mk(0x3B))
	if got := field(t, out["hdr"], "h", "r"); !eval.ValueEqual(got, eval.NewBit(8, 0)) {
		t.Errorf("0x3B: r = %s, want 0 (miss)", got)
	}
}
