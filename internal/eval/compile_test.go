package eval_test

// Differential equivalence: the compiled engine must be observationally
// identical to the tree-walking interpreter — same outputs, same signals,
// and byte-identical error strings — across generated programs on three
// lattices and the embedded case studies (including multi-packet stateful
// runs). Run under -race this also exercises sharing one Compiled program
// across goroutines, which is how internal/ni uses it.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/controlplane"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/progs"
)

// runInterpSeq runs a packet sequence on a fresh interpreter, stopping at
// the first error (state after an error is unspecified).
func runInterpSeq(prog *ast.Program, cp *controlplane.ControlPlane, seq []map[string]eval.Value) ([]map[string]eval.Value, []eval.Signal, error) {
	in, err := eval.New(prog, cp)
	if err != nil {
		return nil, nil, err
	}
	outs := make([]map[string]eval.Value, 0, len(seq))
	sigs := make([]eval.Signal, 0, len(seq))
	for _, inputs := range seq {
		out, sig, err := in.RunControl("", inputs)
		if err != nil {
			return outs, sigs, err
		}
		outs = append(outs, out)
		sigs = append(sigs, sig)
	}
	return outs, sigs, nil
}

// runMachineSeq is runInterpSeq on a reset compiled machine.
func runMachineSeq(m *eval.Machine, seq []map[string]eval.Value) ([]map[string]eval.Value, []eval.Signal, error) {
	m.Reset()
	outs := make([]map[string]eval.Value, 0, len(seq))
	sigs := make([]eval.Signal, 0, len(seq))
	for _, inputs := range seq {
		out, sig, err := m.RunControl("", inputs)
		if err != nil {
			return outs, sigs, err
		}
		outs = append(outs, out)
		sigs = append(sigs, sig)
	}
	return outs, sigs, nil
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// diffProgram runs both engines over identical random packet sequences and
// reports the first divergence.
func diffProgram(prog *ast.Program, code *eval.Compiled, trials, packets int, seed int64) error {
	if len(prog.Controls) == 0 {
		return nil
	}
	ctrl := prog.Controls[0]
	in, err := eval.New(prog, nil)
	if err != nil {
		return fmt.Errorf("interp load: %v", err)
	}
	mach := eval.NewMachine(code, nil)
	rng := rand.New(rand.NewSource(seed))
	for tr := 0; tr < trials; tr++ {
		seq := make([]map[string]eval.Value, packets)
		for k := range seq {
			inputs := map[string]eval.Value{}
			for _, p := range ctrl.Params {
				st, err := in.ParamType(ctrl.Name, p.Name)
				if err != nil {
					return fmt.Errorf("param %s: %v", p.Name, err)
				}
				inputs[p.Name] = eval.Random(st.T, rng)
			}
			seq[k] = inputs
		}
		outsI, sigsI, errI := runInterpSeq(prog, nil, seq)
		outsC, sigsC, errC := runMachineSeq(mach, seq)
		if errString(errI) != errString(errC) {
			return fmt.Errorf("trial %d: error mismatch:\n  interp:   %s\n  compiled: %s", tr, errString(errI), errString(errC))
		}
		if len(outsI) != len(outsC) {
			return fmt.Errorf("trial %d: packet count mismatch: %d vs %d", tr, len(outsI), len(outsC))
		}
		for k := range outsI {
			if sigsI[k].Kind != sigsC[k].Kind || sigsI[k].String() != sigsC[k].String() {
				return fmt.Errorf("trial %d packet %d: signal mismatch: %s vs %s", tr, k, sigsI[k], sigsC[k])
			}
			for name, vi := range outsI[k] {
				vc, ok := outsC[k][name]
				if !ok {
					return fmt.Errorf("trial %d packet %d: compiled output missing %q", tr, k, name)
				}
				if !eval.ValueEqual(vi, vc) {
					return fmt.Errorf("trial %d packet %d: output %s differs:\n  interp:   %s\n  compiled: %s", tr, k, name, vi, vc)
				}
			}
			if len(outsI[k]) != len(outsC[k]) {
				return fmt.Errorf("trial %d packet %d: output arity mismatch", tr, k)
			}
		}
	}
	return nil
}

func TestCompiledMatchesInterpGenerated(t *testing.T) {
	specs := []string{"two-point", "chain:4", "nparty:3"}
	perLattice := 170 // ≥500 programs total across the three lattices
	if testing.Short() {
		perLattice = 30
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0x5eed + int64(len(spec))))
			cfg := gen.DefaultConfig()
			cfg.Lattice = spec
			type job struct {
				i   int
				src string
			}
			jobs := make(chan job)
			var wg sync.WaitGroup
			workers := runtime.NumCPU()
			if workers < 2 {
				workers = 2
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := range jobs {
						prog, err := parser.Parse(fmt.Sprintf("%s-%d.p4", spec, j.i), j.src)
						if err != nil {
							t.Errorf("program %d: parse: %v", j.i, err)
							continue
						}
						code, cerr := eval.Compile(prog)
						if cerr != nil {
							// The compiler must cover everything the
							// interpreter loads; a compile failure is only
							// acceptable when loading fails identically.
							if _, lerr := eval.New(prog, nil); lerr == nil {
								t.Errorf("program %d: compile failed on loadable program: %v\n%s", j.i, cerr, j.src)
							} else if errString(lerr) != errString(cerr) {
								t.Errorf("program %d: load/compile error mismatch: %q vs %q", j.i, lerr, cerr)
							}
							continue
						}
						if err := diffProgram(prog, code, 4, 2, int64(j.i)*7919+1); err != nil {
							t.Errorf("program %d: %v\n%s", j.i, err, j.src)
						}
					}
				}()
			}
			for i := 0; i < perLattice; i++ {
				jobs <- job{i, gen.Random(rng, cfg)}
			}
			close(jobs)
			wg.Wait()
		})
	}
}

func TestCompiledMatchesInterpCaseStudies(t *testing.T) {
	cases := append(progs.All(), progs.Stateful())
	for _, p := range cases {
		for _, variant := range []progs.Variant{progs.Buggy, progs.Fixed} {
			p, variant := p, variant
			t.Run(p.Name+"/"+variant.String(), func(t *testing.T) {
				t.Parallel()
				src := p.Source(variant)
				prog, err := parser.Parse(p.FileName(variant), src)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				code, cerr := eval.Compile(prog)
				if cerr != nil {
					t.Fatalf("compile: %v", cerr)
				}
				// Multi-packet: register state must evolve identically.
				if err := diffProgram(prog, code, 6, 3, 0xCA5E); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCompiledSharedAcrossGoroutines runs several machines over one shared
// Compiled program concurrently; under -race this proves the compiled form
// is immutable in practice, not just by intent.
func TestCompiledSharedAcrossGoroutines(t *testing.T) {
	p := progs.Stateful()
	prog, err := parser.Parse("stateful.p4", p.Source(progs.Fixed))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	code, cerr := eval.Compile(prog)
	if cerr != nil {
		t.Fatalf("compile: %v", cerr)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if err := diffProgram(prog, code, 4, 3, int64(g)); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}
